# Development targets for the duedate reproduction. Everything is
# stdlib-only Go; no external tools are required beyond the toolchain.

GO ?= go

.PHONY: all build vet test race cover bench bench-hotpath experiments examples clean verify-diff fuzz serve docs-lint server-smoke jobs-smoke serve-allocs autocal-smoke

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Time the metaheuristic hot path (full fused evaluators, the
# incremental delta paths — single-machine and the parallel genome
# variant — and the batch core) and record the numbers as JSON.
bench-hotpath:
	( $(GO) test -run '^$$' -bench 'BenchmarkEvaluator(CDD|CDDDelta|UCDDCP|Genome)|BenchmarkBatchEvaluator' -benchmem -benchtime 1s . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkServe(Solve|Batch)Allocs' -benchmem -benchtime 2000x ./internal/server/ ) \
		| $(GO) run ./cmd/benchjson -out BENCH_evaluator.json

# Cross-engine differential verification: every generator family through
# the evaluator-agreement chain, the exact oracles, the metamorphic
# properties and all registered drivers, then a reduced-trial machine
# matrix forcing every family onto 1, 2 and 3 machines (the parallel
# generalization must hold on every landscape, not just the dedicated
# parallel families). Exits nonzero on any discrepancy.
verify-diff:
	$(GO) run ./cmd/verify -trials 200 -dp-trials 50 -out verify-report.json
	$(GO) run ./cmd/verify -trials 40 -machines 1
	$(GO) run ./cmd/verify -trials 40 -machines 2
	$(GO) run ./cmd/verify -trials 40 -machines 3

# Run each native fuzz target briefly (go test runs one target at a time).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzCDDDeltaVsFull$$' -fuzztime $(FUZZTIME) ./internal/cdd
	$(GO) test -run '^$$' -fuzz '^FuzzUCDDCPDeltaVsFull$$' -fuzztime $(FUZZTIME) ./internal/ucddcp
	$(GO) test -run '^$$' -fuzz '^FuzzParseInstance$$' -fuzztime $(FUZZTIME) ./internal/problem
	$(GO) test -run '^$$' -fuzz '^FuzzBatchEvaluator$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzExactDPVsBrute$$' -fuzztime $(FUZZTIME) ./internal/exact
	$(GO) test -run '^$$' -fuzz '^FuzzSolveFacade$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzAutoPick$$' -fuzztime $(FUZZTIME) ./internal/auto

# Run the batch-solving daemon locally on its default address (:8337).
serve:
	$(GO) run ./cmd/duedated

# Exported-documentation check over every package (revive/golint-style
# exported rule, stdlib-only), plus example coverage on the facade: every
# exported top-level facade function must have a runnable godoc example.
# Fails on any missing doc comment or example.
docs-lint:
	$(GO) run ./cmd/docslint . ./cmd/* ./examples/* ./internal/*
	$(GO) run ./cmd/docslint -examples .

# Calibration pipeline smoke test: tiny autocal sweep into a temp file,
# bit-identical Marshal round-trip, and an end-to-end AUTO solve that
# must route through the exact DP gate with an optimality certificate.
autocal-smoke:
	$(GO) run ./cmd/autocal -smoke

# Serve-path allocation guard: benchmark the steady-state POST /v1/solve
# and /v1/batch paths and fail if allocs/op exceeds the checked-in
# threshold (scripts/serve-allocs-threshold).
serve-allocs:
	scripts/serve-allocs-guard.sh

# End-to-end smoke test of the daemon: build, serve, post one CDD and
# one UCDDCP instance from testdata/server/, assert a cache hit, then
# SIGTERM and require a clean graceful drain.
server-smoke:
	scripts/server-smoke.sh

# End-to-end smoke test of the async job API against a live daemon:
# submit → poll → done, shared-cache agreement with /v1/solve, SSE to
# the terminal result event, DELETE cancellation, job gauges in
# /metrics, then a clean graceful drain.
jobs-smoke:
	scripts/jobs-smoke.sh

# Regenerate the paper's tables and figures (scaled preset, ~minutes).
experiments:
	$(GO) run ./cmd/experiments -exp all -preset scaled -out results/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ucddcp_compression
	$(GO) run ./examples/exact_oracle
	$(GO) run ./examples/gpu_pipeline
	$(GO) run ./examples/orlib_cdd

clean:
	rm -rf results/ test_output.txt bench_output.txt verify-report.json
