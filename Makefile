# Development targets for the duedate reproduction. Everything is
# stdlib-only Go; no external tools are required beyond the toolchain.

GO ?= go

.PHONY: all build vet test race cover bench bench-hotpath experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Time the metaheuristic hot path (full fused evaluators and the
# incremental delta path) and record the numbers as JSON.
bench-hotpath:
	$(GO) test -run '^$$' -bench 'BenchmarkEvaluator(CDD|CDDDelta|UCDDCP)' -benchmem -benchtime 1s . \
		| $(GO) run ./cmd/benchjson -out BENCH_evaluator.json

# Regenerate the paper's tables and figures (scaled preset, ~minutes).
experiments:
	$(GO) run ./cmd/experiments -exp all -preset scaled -out results/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ucddcp_compression
	$(GO) run ./examples/exact_oracle
	$(GO) run ./examples/gpu_pipeline
	$(GO) run ./examples/orlib_cdd

clean:
	rm -rf results/ test_output.txt bench_output.txt
