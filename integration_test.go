// Integration tests across module boundaries: benchmark files round-trip
// through the OR-library format into solvers, every engine agrees with
// the exact oracles on small instances, GPU and CPU ensembles produce
// statistically comparable quality, and the two problems compose (a
// UCDDCP instance with zero compression capacity must optimize exactly
// like its CDD projection).
package duedate_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	duedate "repro"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/harness"
	"repro/internal/lpref"
	"repro/internal/orlib"
	"repro/internal/parallel"
	"repro/internal/problem"
	"repro/internal/sa"
	"repro/internal/stats"
	"repro/internal/verify"
)

// TestBenchmarkFileToSolverFlow drives the genbench → file → reader →
// solver path end to end through a temp directory.
func TestBenchmarkFileToSolverFlow(t *testing.T) {
	dir := t.TempDir()
	raws := orlib.GenerateCDD(25, 3, 99)
	path := filepath.Join(dir, "sch25.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := orlib.WriteCDD(f, raws); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	back, err := orlib.ReadCDD(g, 25)
	if err != nil {
		t.Fatal(err)
	}
	in, err := orlib.CDDInstance(back[1], 25, 1, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := duedate.Solve(in, duedate.Options{
		Iterations: 200, Grid: 2, Block: 16, TempSamples: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := duedate.Cost(in, res.BestSeq)
	if err != nil {
		t.Fatal(err)
	}
	if got != res.BestCost {
		t.Errorf("solver reported %d, sequence costs %d", res.BestCost, got)
	}
}

// TestAllEnginesAgreeWithExactOracle runs every engine on one small
// unrestricted instance where the global optimum is known exactly; every
// engine must reach it (tiny search space, healthy budgets).
func TestAllEnginesAgreeWithExactOracle(t *testing.T) {
	ins, err := orlib.BenchmarkCDD(7, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	in := ins[3].Clone() // h = 0.8
	in.D = in.SumP() + 5 // make it unrestricted so SubsetCDD applies
	opt, err := exact.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// Every registered pairing runs, with per-algorithm budgets (ES
	// converges on smaller populations; the others share one shape). The
	// persistent-kernel SA variant is appended manually — it is an option
	// on SA×GPU, not a pairing of its own.
	budgets := map[duedate.Algorithm]duedate.Options{
		duedate.SA:   {Iterations: 300, Grid: 2, Block: 16, TempSamples: 200},
		duedate.DPSO: {Iterations: 300, Grid: 2, Block: 16},
		duedate.TA:   {Iterations: 300, Grid: 1, Block: 8, TempSamples: 200},
		duedate.ES:   {Iterations: 120, Grid: 1, Block: 4},
		// AUTO model-routes this shape (no deadline, DP declines the
		// asymmetric weights) to its calibrated static pairing, so the SA
		// budget shape exercises the passthrough dispatch end to end.
		duedate.Auto: {Iterations: 300, Grid: 2, Block: 16, TempSamples: 200},
	}
	var opts []duedate.Options
	for _, p := range duedate.Pairings() {
		if p.Algorithm == duedate.ExactDP {
			// The DP's provable domain needs an agreeable ratio order and
			// this orlib draw has general asymmetric weights; the verify
			// subsystem's dedicated DP leg covers the exact layer instead.
			continue
		}
		o := budgets[p.Algorithm]
		o.Algorithm, o.Engine = p.Algorithm, p.Engine
		opts = append(opts, o)
	}
	persistent := budgets[duedate.SA]
	persistent.Algorithm, persistent.Engine, persistent.Persistent = duedate.SA, duedate.EngineGPU, true
	opts = append(opts, persistent)
	for _, o := range opts {
		o.Seed = 7
		res, err := duedate.Solve(in, o)
		if err != nil {
			t.Fatal(err)
		}
		if res.BestCost < opt.Cost {
			t.Fatalf("%v/%v: %d beats the exact optimum %d — solver or oracle bug",
				o.Algorithm, o.Engine, res.BestCost, opt.Cost)
		}
		if res.BestCost != opt.Cost {
			t.Errorf("%v/%v: %d missed the exact optimum %d on n=7",
				o.Algorithm, o.Engine, res.BestCost, opt.Cost)
		}
	}
}

// TestGPUAndCPUEnsemblesStatisticallyComparable: across seeds, the GPU
// pipeline's best costs and the CPU ensemble's best costs must come from
// the same quality regime (means within 10%) — they run the same
// algorithm, differing only in RNG stream usage details.
func TestGPUAndCPUEnsemblesStatisticallyComparable(t *testing.T) {
	ins, err := orlib.BenchmarkCDD(40, 1, 17)
	if err != nil {
		t.Fatal(err)
	}
	in := ins[2]
	cfg := sa.Config{Iterations: 150, TempSamples: 200}
	var gpu, cpu []float64
	for seed := uint64(1); seed <= 8; seed++ {
		g := (&parallel.GPUSA{Inst: in, SA: cfg, Grid: 2, Block: 8, Seed: seed}).MustSolve()
		c := (&parallel.AsyncSA{Inst: in, SA: cfg,
			Ens: parallel.Ensemble{Chains: 16, Seed: seed}, Parallel: true}).MustSolve()
		gpu = append(gpu, float64(g.BestCost))
		cpu = append(cpu, float64(c.BestCost))
	}
	gm, cm := stats.Mean(gpu), stats.Mean(cpu)
	if diff := (gm - cm) / cm; diff > 0.10 || diff < -0.10 {
		t.Errorf("GPU mean %f vs CPU mean %f differ by %.1f%%", gm, cm, diff*100)
	}
}

// TestZeroCapacityUCDDCPEqualsCDD: a controllable instance in which no
// job can be compressed must optimize to exactly the same value as the
// CDD instance with the same data, across the whole stack (evaluator, LP
// and GPU solver).
func TestZeroCapacityUCDDCPEqualsCDD(t *testing.T) {
	p := []int{5, 3, 7, 2, 6, 4}
	alpha := []int{4, 2, 7, 1, 3, 5}
	beta := []int{3, 6, 2, 5, 4, 1}
	var sum int64
	for _, v := range p {
		sum += int64(v)
	}
	d := sum + 4
	mEq := append([]int(nil), p...) // M = P: zero capacity
	gamma := []int{1, 1, 1, 1, 1, 1}
	ucd, err := duedate.NewUCDDCPInstance("zc", p, mEq, alpha, beta, gamma, d)
	if err != nil {
		t.Fatal(err)
	}
	cdd, err := duedate.NewCDDInstance("zc-cdd", p, alpha, beta, d)
	if err != nil {
		t.Fatal(err)
	}
	seq := []int{3, 1, 5, 0, 4, 2}
	_, cu, err := duedate.OptimizeSequence(ucd, seq)
	if err != nil {
		t.Fatal(err)
	}
	_, cc, err := duedate.OptimizeSequence(cdd, seq)
	if err != nil {
		t.Fatal(err)
	}
	if cu != cc {
		t.Fatalf("zero-capacity UCDDCP %d != CDD %d on the same sequence", cu, cc)
	}
	lpU, err := lpref.Solve(ucd, seq)
	if err != nil {
		t.Fatal(err)
	}
	if lpU.RoundedCost() != cc {
		t.Errorf("LP on zero-capacity UCDDCP = %d, want %d", lpU.RoundedCost(), cc)
	}
	gU, err := duedate.Solve(ucd, duedate.Options{Iterations: 200, Grid: 1, Block: 16, TempSamples: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gC, err := duedate.Solve(cdd, duedate.Options{Iterations: 200, Grid: 1, Block: 16, TempSamples: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if gU.BestCost != gC.BestCost {
		t.Errorf("GPU solvers disagree on equivalent instances: %d vs %d", gU.BestCost, gC.BestCost)
	}
}

// TestUCDDCPNeverWorseThanCDD: allowing compression can only help — for
// any sequence, the UCDDCP optimum is ≤ the CDD optimum of the
// uncompressed data.
func TestUCDDCPNeverWorseThanCDD(t *testing.T) {
	ins, err := orlib.BenchmarkUCDDCP(20, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, inU := range ins {
		p := make([]int, inU.N())
		alpha := make([]int, inU.N())
		beta := make([]int, inU.N())
		for i, j := range inU.Jobs {
			p[i], alpha[i], beta[i] = j.P, j.Alpha, j.Beta
		}
		inC, err := duedate.NewCDDInstance("proj", p, alpha, beta, inU.D)
		if err != nil {
			t.Fatal(err)
		}
		evalU := core.NewEvaluator(inU)
		evalC := core.NewEvaluator(inC)
		seq := problem.IdentitySequence(inU.N())
		for trial := 0; trial < 20; trial++ {
			if cu, cc := evalU.Cost(seq), evalC.Cost(seq); cu > cc {
				t.Fatalf("%s: compression hurt: UCDDCP %d > CDD %d", inU.Name, cu, cc)
			}
			// Next permutation via a couple of swaps.
			a, b := trial%inU.N(), (trial*7+3)%inU.N()
			seq[a], seq[b] = seq[b], seq[a]
		}
	}
}

// TestSweepArchiveRegressionFlow exercises the archive → reload →
// compare path the harness offers for tracking quality across versions.
func TestSweepArchiveRegressionFlow(t *testing.T) {
	sw, err := harness.RunSweep(context.Background(), harness.Quick(), problem.CDD, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sw.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := harness.ReadSweepJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := harness.CompareSweeps(back, sw)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		if !bytes.Contains([]byte(l), []byte("+0.000")) {
			t.Errorf("self-comparison shows drift: %s", l)
		}
	}
}

// TestDifferentialVerificationOverRegistry runs the cross-engine
// verification subsystem over every registered pairing (enumerated from
// duedate.Pairings() at run time, so a future engine is covered the
// moment it self-registers). A small per-family trial count keeps the
// test quick; `make verify-diff` runs the full sweep.
func TestDifferentialVerificationOverRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	drivers := verify.RegisteredDrivers(verify.Budget{})
	if want := len(duedate.Pairings()) + 1; len(drivers) != want { // +1: persistent SA/GPU
		t.Fatalf("RegisteredDrivers returned %d drivers, want %d (registry out of sync)", len(drivers), want)
	}
	rep, err := verify.Run(context.Background(), verify.Config{Trials: 2, Seed: 42, MaxN: 7}, drivers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Discrepancies {
		t.Errorf("%s family=%s instance=%s driver=%s: %s", d.Check, d.Family, d.Instance, d.Driver, d.Detail)
	}
	for name, st := range rep.DriverStats {
		if st.Runs == 0 {
			t.Errorf("driver %s never ran", name)
		}
	}
}

// TestInstanceJSONThroughPublicAPI serializes an instance, reloads it and
// solves both copies identically.
func TestInstanceJSONThroughPublicAPI(t *testing.T) {
	in := duedate.PaperExample(duedate.UCDDCP)
	var buf bytes.Buffer
	if err := problem.WriteInstanceJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := problem.ReadInstanceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	o := duedate.Options{Iterations: 100, Grid: 1, Block: 8, TempSamples: 50, Seed: 2}
	a, err := duedate.Solve(in, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := duedate.Solve(back, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost {
		t.Errorf("JSON roundtrip changed the solve: %d vs %d", a.BestCost, b.BestCost)
	}
}
