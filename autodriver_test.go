package duedate_test

import (
	"context"
	"testing"
	"time"

	duedate "repro"
	"repro/internal/auto"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/problem"
)

// agreeableCDD builds an n-job CDD instance with symmetric (agreeable)
// weights so the exact DP applies; d is unrestricted.
func agreeableCDD(t *testing.T, n int) *duedate.Instance {
	t.Helper()
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := range p {
		p[i] = 1 + (i*7)%13
		alpha[i] = 1 + (i*5)%7
		beta[i] = alpha[i]
		sum += int64(p[i])
	}
	in, err := duedate.NewCDDInstance("auto-test-agreeable", p, alpha, beta, sum+5)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// asymmetricCDD builds an n-job CDD instance whose weights defeat every
// agreeable order, so the DP route declines and AUTO must model-route.
func asymmetricCDD(t *testing.T, n int) *duedate.Instance {
	t.Helper()
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := range p {
		p[i] = 1 + (i*11)%17
		alpha[i] = 1 + (i*3)%9
		beta[i] = 1 + ((i+4)*5)%11
		sum += int64(p[i])
	}
	in, err := duedate.NewCDDInstance("auto-test-asymmetric", p, alpha, beta, sum*6/10+1)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestKnownPairingsRegistered pins the contract between the calibration
// layer and the registry: every pairing the picker may return must be
// live in Pairings(), and the registry's static pairings (minus AUTO)
// must all be reachable by a calibration table.
func TestKnownPairingsRegistered(t *testing.T) {
	live := map[string]bool{}
	for _, p := range duedate.Pairings() {
		live[p.Algorithm.String()+"/"+p.Engine.String()] = true
	}
	for pairing := range auto.KnownPairings {
		if !live[pairing] {
			t.Errorf("auto.KnownPairings lists %q, which is not in the live registry %v", pairing, live)
		}
	}
	for pairing := range live {
		if pairing == "AUTO/cpu-parallel" {
			continue // the meta-driver never recurses into itself
		}
		if !auto.KnownPairings[pairing] {
			t.Errorf("registered pairing %q missing from auto.KnownPairings", pairing)
		}
	}
}

// TestAutoModelModeBitIdentical is the dispatch-passthrough contract:
// with no deadline, AUTO's result is bit-identical to invoking the
// calibration's picked pairing directly with the same options and seed.
func TestAutoModelModeBitIdentical(t *testing.T) {
	in := asymmetricCDD(t, 24)
	dec := auto.Default().Pick(in.Kind, in.N(), in.MachineCount())
	if dec.AttemptDP {
		// Gates route the shape to the DP, but the asymmetric weights make
		// it decline into model mode — the comparison below still holds.
		if _, err := exact.SolveDP(in); err == nil {
			t.Fatal("test instance unexpectedly DP-solvable; bit-identity vs the static pairing would not be exercised")
		}
	}
	base := duedate.Options{Iterations: 80, Grid: 2, Block: 16, TempSamples: 60, Seed: 5}

	ao := base
	ao.Algorithm = duedate.Auto
	ares, err := duedate.Solve(in, ao)
	if err != nil {
		t.Fatalf("AUTO solve: %v", err)
	}

	alg, err := duedate.ParseAlgorithm(dec.Choice.Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := duedate.ParseEngine(dec.Choice.Engine)
	if err != nil {
		t.Fatal(err)
	}
	so := base
	so.Algorithm, so.Engine = alg, eng
	sres, err := duedate.Solve(in, so)
	if err != nil {
		t.Fatalf("static %s solve: %v", dec.Choice.Pairing(), err)
	}

	if ares.BestCost != sres.BestCost {
		t.Fatalf("AUTO cost %d != picked pairing %s cost %d (seed/option passthrough broke)",
			ares.BestCost, dec.Choice.Pairing(), sres.BestCost)
	}
	if len(ares.BestSeq) != len(sres.BestSeq) {
		t.Fatalf("sequence lengths differ: %d vs %d", len(ares.BestSeq), len(sres.BestSeq))
	}
	for i := range ares.BestSeq {
		if ares.BestSeq[i] != sres.BestSeq[i] {
			t.Fatalf("AUTO sequence diverges from the picked pairing at %d: %v vs %v", i, ares.BestSeq, sres.BestSeq)
		}
	}
	if ares.Iterations != sres.Iterations || ares.Evaluations != sres.Evaluations {
		t.Fatalf("AUTO accounting diverges: iters %d/%d evals %d/%d",
			ares.Iterations, sres.Iterations, ares.Evaluations, sres.Evaluations)
	}
}

// TestAutoDPCertificate pins the free-certificate route: a DP-eligible
// agreeable small must come back Optimal at exactly the DP optimum, with
// the pick recorded in Metrics.
func TestAutoDPCertificate(t *testing.T) {
	in := agreeableCDD(t, 20)
	dp, err := exact.SolveDP(in)
	if err != nil {
		t.Fatalf("DP oracle on the agreeable instance: %v", err)
	}
	res, err := duedate.Solve(in, duedate.Options{Algorithm: duedate.Auto, Seed: 3, Metrics: duedate.MetricsCounters})
	if err != nil {
		t.Fatalf("AUTO solve: %v", err)
	}
	if !res.Optimal {
		t.Fatalf("AUTO skipped the DP certificate on a DP-eligible instance (cost %d)", res.BestCost)
	}
	if res.BestCost != dp.Cost {
		t.Fatalf("AUTO certificate cost %d != DP optimum %d", res.BestCost, dp.Cost)
	}
	if res.Metrics == nil || res.Metrics.AutoPick != "EXACT-DP/cpu-serial" {
		t.Fatalf("Metrics.AutoPick = %+v, want the EXACT-DP route recorded", res.Metrics)
	}
	if res.Metrics.RaceReason != "dp-certificate" {
		t.Fatalf("Metrics.RaceReason = %q, want dp-certificate", res.Metrics.RaceReason)
	}
}

// TestAutoRaceSmoke runs a deadline-gated race end to end and checks the
// result contract: honest feasible best, Interrupted always set (races
// are wall-clock-dependent), and the race attribution in Metrics.
func TestAutoRaceSmoke(t *testing.T) {
	in := asymmetricCDD(t, 40)
	res, err := duedate.Solve(in, duedate.Options{
		Algorithm: duedate.Auto,
		Seed:      9,
		Deadline:  time.Now().Add(300 * time.Millisecond),
		Metrics:   duedate.MetricsCounters,
	})
	if err != nil {
		t.Fatalf("AUTO race: %v", err)
	}
	if !res.Interrupted {
		t.Fatal("race result must report Interrupted=true (wall-clock-dependent, cache-ineligible)")
	}
	if !problem.IsPermutation(res.BestSeq) {
		t.Fatalf("race best %v is not a permutation", res.BestSeq)
	}
	if honest := core.NewEvaluator(in).Cost(res.BestSeq); honest != res.BestCost {
		t.Fatalf("race reported cost %d, sequence re-evaluates to %d", res.BestCost, honest)
	}
	if res.Metrics == nil {
		t.Fatal("race dropped the metrics envelope")
	}
	if len(res.Metrics.RaceCandidates) < 2 {
		t.Fatalf("RaceCandidates = %v, want the raced set", res.Metrics.RaceCandidates)
	}
	if res.Metrics.RaceWinner == "" || res.Metrics.AutoPick != res.Metrics.RaceWinner {
		t.Fatalf("race attribution inconsistent: pick %q winner %q", res.Metrics.AutoPick, res.Metrics.RaceWinner)
	}
	switch res.Metrics.RaceReason {
	case "leader-at-checkpoint", "best-at-deadline":
	default:
		t.Fatalf("RaceReason = %q, want a race verdict", res.Metrics.RaceReason)
	}
}

// TestAutoRaceCancelMidRace is the racing cancellation contract: a
// caller context cancelled mid-race must promptly yield an honest
// Interrupted best-so-far from the leading candidate, not an error and
// not a wait for the full deadline. Run under -race this also proves the
// per-lane progress plumbing is race-clean.
func TestAutoRaceCancelMidRace(t *testing.T) {
	in := asymmetricCDD(t, 300)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := duedate.SolveContext(ctx, in, duedate.Options{
		Algorithm: duedate.Auto,
		Seed:      11,
		Deadline:  time.Now().Add(30 * time.Second), // far away: cancel must win
		Metrics:   duedate.MetricsCounters,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancelled race returned an error instead of best-so-far: %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled race took %v; the cancellation did not propagate to the lanes", elapsed)
	}
	if !res.Interrupted {
		t.Fatal("cancelled race must report Interrupted=true")
	}
	if !problem.IsPermutation(res.BestSeq) {
		t.Fatalf("cancelled race best %v is not a permutation", res.BestSeq)
	}
	if honest := core.NewEvaluator(in).Cost(res.BestSeq); honest != res.BestCost {
		t.Fatalf("cancelled race reported cost %d, sequence re-evaluates to %d", res.BestCost, honest)
	}
	if res.Metrics == nil || len(res.Metrics.RaceCandidates) < 2 {
		t.Fatalf("cancelled race lost its attribution: %+v", res.Metrics)
	}
}

// TestAutoRaceProgressMonotone subscribes a Progress callback to a race
// and requires the forwarded ensemble-best stream to be strictly
// improving (the per-lane forwarding must serialize and filter).
func TestAutoRaceProgressMonotone(t *testing.T) {
	in := asymmetricCDD(t, 60)
	var costs []int64
	_, err := duedate.Solve(in, duedate.Options{
		Algorithm: duedate.Auto,
		Seed:      13,
		Deadline:  time.Now().Add(250 * time.Millisecond),
		Progress:  func(snap duedate.Snapshot) { costs = append(costs, snap.BestCost) },
	})
	if err != nil {
		t.Fatalf("AUTO race: %v", err)
	}
	if len(costs) == 0 {
		t.Fatal("race emitted no progress snapshots")
	}
	for i := 1; i < len(costs)-1; i++ {
		if costs[i] >= costs[i-1] {
			t.Fatalf("forwarded snapshots not strictly improving at %d: %v", i, costs)
		}
	}
	// The final snapshot restates the winner and may repeat the best cost.
	if len(costs) > 1 && costs[len(costs)-1] > costs[len(costs)-2] {
		t.Fatalf("final snapshot regressed: %v", costs)
	}
}

// TestAutoEngineFoldsToCanonical pins the normalization rule: AUTO on
// any requested engine resolves to the one registered meta-driver.
func TestAutoEngineFoldsToCanonical(t *testing.T) {
	in := agreeableCDD(t, 10)
	for _, eng := range []duedate.Engine{duedate.EngineGPU, duedate.EngineCPUParallel, duedate.EngineCPUSerial} {
		res, err := duedate.Solve(in, duedate.Options{Algorithm: duedate.Auto, Engine: eng, Seed: 2})
		if err != nil {
			t.Fatalf("AUTO on engine %v: %v", eng, err)
		}
		if !res.Optimal {
			t.Fatalf("AUTO on engine %v missed the DP certificate", eng)
		}
	}
}

// TestAutoRaceSizeGuard pins the raceMaxN policy: above the guard a
// deadline-carrying solve dispatches the model's single pick instead of
// racing, so the whole budget funds one trajectory.
func TestAutoRaceSizeGuard(t *testing.T) {
	in := asymmetricCDD(t, 600)
	res, err := duedate.Solve(in, duedate.Options{
		Algorithm: duedate.Auto,
		Seed:      9,
		Deadline:  time.Now().Add(150 * time.Millisecond),
		Metrics:   duedate.MetricsCounters,
	})
	if err != nil {
		t.Fatalf("AUTO above race guard: %v", err)
	}
	if res.Metrics == nil {
		t.Fatal("no metrics attached")
	}
	if res.Metrics.RaceReason != "model-pick" {
		t.Fatalf("raceReason %q, want model-pick (no race above raceMaxN)", res.Metrics.RaceReason)
	}
	if len(res.Metrics.RaceCandidates) != 0 {
		t.Fatalf("race candidates %v recorded on a model-mode dispatch", res.Metrics.RaceCandidates)
	}
}
