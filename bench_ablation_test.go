// Ablation benchmarks for the design choices the paper fixes by
// experiment (cooling rate, perturbation size, block size), the options it
// leaves open (reduction frequency, initial configurations, DPSO
// communication) and its stated future work (texture memory, concurrent
// kernels). Each benchmark reports the quantity the choice trades off —
// simulated device milliseconds or solution quality (%Δ against a common
// reference).
package duedate_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cudasim"
	"repro/internal/dpso"
	"repro/internal/heuristic"
	"repro/internal/parallel"
	"repro/internal/problem"
	"repro/internal/sa"
)

// BenchmarkAblationPTimeAccess compares the three processing-time read
// modes of the fitness kernel: the optimistic coalesced default, the
// worst-case scattered reads of the paper's uncached accesses, and the
// texture path of the paper's future work.
func BenchmarkAblationPTimeAccess(b *testing.B) {
	in := benchInstance(b, problem.CDD, 100)
	for _, mode := range []struct {
		name string
		mode parallel.PAccess
	}{
		{"coalesced", parallel.PAccessCoalesced},
		{"scattered", parallel.PAccessScattered},
		{"texture", parallel.PAccessTexture},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var sim float64
			var cost int64
			for i := 0; i < b.N; i++ {
				res := (&parallel.GPUSA{
					Inst: in, SA: sa.Config{Iterations: benchItersLow, TempSamples: benchTemp},
					Grid: benchGrid, Block: benchBlock, Seed: 1,
					PTimeAccess: mode.mode,
				}).MustSolve()
				sim = res.SimSeconds
				cost = res.BestCost
			}
			b.ReportMetric(sim*1e3, "sim-ms")
			b.ReportMetric(float64(cost), "cost")
		})
	}
}

// BenchmarkAblationReduceEvery varies the reduction-kernel frequency (the
// paper launches it every iteration): less frequent reductions trade
// result-tracking latency for launch overhead and atomics.
func BenchmarkAblationReduceEvery(b *testing.B) {
	in := benchInstance(b, problem.CDD, 50)
	for _, every := range []int{1, 10, benchItersLow} {
		b.Run(fmt.Sprintf("every%d", every), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				res := (&parallel.GPUSA{
					Inst: in, SA: sa.Config{Iterations: benchItersLow, TempSamples: benchTemp},
					Grid: benchGrid, Block: benchBlock, Seed: 1,
					ReduceEvery: every,
				}).MustSolve()
				sim = res.SimSeconds
			}
			b.ReportMetric(sim*1e3, "sim-ms")
		})
	}
}

// BenchmarkAblationBlockSize reproduces the paper's block-size experiment
// ("the best results for both problems are achieved with a block size of
// 192"): the same 768-thread ensemble split into different block shapes.
func BenchmarkAblationBlockSize(b *testing.B) {
	in := benchInstance(b, problem.CDD, 50)
	for _, shape := range []struct{ grid, block int }{
		{24, 32}, {12, 64}, {6, 128}, {4, 192}, {2, 384}, {1, 768},
	} {
		b.Run(fmt.Sprintf("grid%dx%d", shape.grid, shape.block), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				res := (&parallel.GPUSA{
					Inst: in, SA: sa.Config{Iterations: 40, TempSamples: benchTemp},
					Grid: shape.grid, Block: shape.block, Seed: 1,
				}).MustSolve()
				sim = res.SimSeconds
			}
			b.ReportMetric(sim*1e3, "sim-ms")
		})
	}
}

// BenchmarkAblationDPSOCommunication quantifies the central DPSO design
// question: the paper's communication-free asynchronous scheme versus a
// swarm that broadcasts its reduced best each generation.
func BenchmarkAblationDPSOCommunication(b *testing.B) {
	in := benchInstance(b, problem.CDD, 50)
	ref := referenceCost(b, in)
	for _, mode := range []struct {
		name  string
		share bool
	}{
		{"async_paper", false},
		{"shared_gbest", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var dev float64
			for i := 0; i < b.N; i++ {
				res := (&parallel.GPUDPSO{
					Inst: in, PSO: dpso.Config{Iterations: benchItersLow},
					Grid: benchGrid, Block: benchBlock, Seed: uint64(i) + 1,
					ShareSwarmBest: mode.share,
				}).MustSolve()
				dev = core.PercentDeviation(res.BestCost, ref)
			}
			b.ReportMetric(dev, "%Δ")
		})
	}
}

// BenchmarkAblationWarmStart compares random initial sequences (the
// paper's choice) against warm-starting every chain from the V-shape
// constructive heuristic.
func BenchmarkAblationWarmStart(b *testing.B) {
	in := benchInstance(b, problem.CDD, 50)
	ref := referenceCost(b, in)
	warm := heuristic.VShape(in)
	for _, mode := range []struct {
		name string
		init []int
	}{
		{"random_init", nil},
		{"heuristic_init", warm},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var dev float64
			for i := 0; i < b.N; i++ {
				res := (&parallel.GPUSA{
					Inst: in, SA: sa.Config{Iterations: benchItersLow, TempSamples: benchTemp},
					Grid: benchGrid, Block: benchBlock, Seed: uint64(i) + 1,
					InitialSeq: mode.init,
				}).MustSolve()
				dev = core.PercentDeviation(res.BestCost, ref)
			}
			b.ReportMetric(dev, "%Δ")
		})
	}
}

// BenchmarkAblationCooling sweeps the exponential cooling factor around
// the paper's 0.88 ("inferred from our experiments over a range of
// cooling rates").
func BenchmarkAblationCooling(b *testing.B) {
	in := benchInstance(b, problem.CDD, 50)
	ref := referenceCost(b, in)
	for _, mu := range []float64{0.80, 0.88, 0.95, 0.99} {
		b.Run(fmt.Sprintf("mu%.2f", mu), func(b *testing.B) {
			var dev float64
			for i := 0; i < b.N; i++ {
				res := (&parallel.GPUSA{
					Inst: in, SA: sa.Config{Iterations: benchItersLow, Cooling: mu, TempSamples: benchTemp},
					Grid: benchGrid, Block: benchBlock, Seed: uint64(i) + 1,
				}).MustSolve()
				dev = core.PercentDeviation(res.BestCost, ref)
			}
			b.ReportMetric(dev, "%Δ")
		})
	}
}

// BenchmarkAblationPert sweeps the perturbation size around the paper's
// Pert = 4.
func BenchmarkAblationPert(b *testing.B) {
	in := benchInstance(b, problem.CDD, 50)
	ref := referenceCost(b, in)
	for _, pert := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("pert%d", pert), func(b *testing.B) {
			var dev float64
			for i := 0; i < b.N; i++ {
				res := (&parallel.GPUSA{
					Inst: in, SA: sa.Config{Iterations: benchItersLow, Pert: pert, TempSamples: benchTemp},
					Grid: benchGrid, Block: benchBlock, Seed: uint64(i) + 1,
				}).MustSolve()
				dev = core.PercentDeviation(res.BestCost, ref)
			}
			b.ReportMetric(dev, "%Δ")
		})
	}
}

// BenchmarkAblationCooperativeHostCost measures the host-side price of
// the faithful goroutine-per-thread barrier execution versus sequential
// in-order blocks (results are identical; only host wall time differs).
func BenchmarkAblationCooperativeHostCost(b *testing.B) {
	in := benchInstance(b, problem.CDD, 30)
	for _, mode := range []struct {
		name string
		coop bool
	}{
		{"sequential", false},
		{"cooperative", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				(&parallel.GPUSA{
					Inst: in, SA: sa.Config{Iterations: 20, TempSamples: 50},
					Grid: 2, Block: 32, Seed: 1,
					Cooperative: mode.coop,
				}).MustSolve()
			}
		})
	}
}

// BenchmarkAblationStreamOverlap bounds the benefit of running
// independent kernels on concurrent streams (the simulator's optimistic
// overlap model): two equal-cost kernels serial versus overlapped.
func BenchmarkAblationStreamOverlap(b *testing.B) {
	work := func(c *cudasim.Ctx) { c.ChargeArith(50000) }
	cfg := cudasim.LaunchConfig{Name: "w", Grid: cudasim.Dim(4), Block: cudasim.Dim(64)}
	b.Run("serial", func(b *testing.B) {
		var sim float64
		for i := 0; i < b.N; i++ {
			d := cudasim.NewDevice(cudasim.GT560M())
			d.MustLaunch(cfg, work)
			d.MustLaunch(cfg, work)
			sim = d.SimTime()
		}
		b.ReportMetric(sim*1e3, "sim-ms")
	})
	b.Run("overlapped", func(b *testing.B) {
		var sim float64
		for i := 0; i < b.N; i++ {
			d := cudasim.NewDevice(cudasim.GT560M())
			s1, s2 := d.NewStream(), d.NewStream()
			if err := s1.Launch(cfg, work); err != nil {
				b.Fatal(err)
			}
			if err := s2.Launch(cfg, work); err != nil {
				b.Fatal(err)
			}
			d.Join(s1, s2)
			sim = d.SimTime()
		}
		b.ReportMetric(sim*1e3, "sim-ms")
	})
}

// BenchmarkAblationPersistentKernel compares the paper's four launches
// per iteration against a single persistent kernel (identical results,
// no per-iteration launch overhead).
func BenchmarkAblationPersistentKernel(b *testing.B) {
	in := benchInstance(b, problem.CDD, 50)
	saCfg := sa.Config{Iterations: benchItersLow, TempSamples: benchTemp}
	b.Run("four_kernels", func(b *testing.B) {
		var sim float64
		for i := 0; i < b.N; i++ {
			sim = (&parallel.GPUSA{Inst: in, SA: saCfg, Grid: benchGrid, Block: benchBlock, Seed: 1}).MustSolve().SimSeconds
		}
		b.ReportMetric(sim*1e3, "sim-ms")
	})
	b.Run("persistent", func(b *testing.B) {
		var sim float64
		for i := 0; i < b.N; i++ {
			sim = (&parallel.PersistentGPUSA{Inst: in, SA: saCfg, Grid: benchGrid, Block: benchBlock, Seed: 1}).MustSolve().SimSeconds
		}
		b.ReportMetric(sim*1e3, "sim-ms")
	})
}
