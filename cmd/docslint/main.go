// Command docslint is the repository's exported-documentation check, a
// dependency-free stand-in for the revive/golint exported rule: every
// package it is pointed at must carry a package comment, and every
// exported top-level identifier — functions, methods on exported types,
// types, and const/var specs — must carry a doc comment (a spec is
// covered by its declaration group's comment). Findings print one per
// line as file:line: message and the exit status is 1 when any exist, so
// the CI docs-lint job fails on missing docs.
//
//	docslint . ./internal/server
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("docslint: ")
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	var findings []string
	for _, dir := range dirs {
		f, err := lintDir(dir)
		if err != nil {
			log.Fatal(err)
		}
		findings = append(findings, f...)
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		log.Fatalf("%d missing-documentation finding(s)", len(findings))
	}
}

// lintDir parses one package directory (tests excluded) and returns its
// findings.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	for name, pkg := range pkgs {
		findings = append(findings, lintPackage(fset, dir, name, pkg)...)
	}
	return findings, nil
}

// lintPackage checks the package comment and every exported top-level
// declaration of one parsed package.
func lintPackage(fset *token.FileSet, dir, name string, pkg *ast.Package) []string {
	var findings []string
	hasPackageDoc := false
	for _, file := range pkg.Files {
		if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
			hasPackageDoc = true
		}
	}
	if !hasPackageDoc {
		findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", filepath.Clean(dir), name))
	}
	for fname, file := range pkg.Files {
		for _, decl := range file.Decls {
			findings = append(findings, lintDecl(fset, fname, decl)...)
		}
	}
	return findings
}

// lintDecl reports the undocumented exported identifiers of one
// top-level declaration.
func lintDecl(fset *token.FileSet, fname string, decl ast.Decl) []string {
	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		findings = append(findings, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		// Methods on unexported types are not public surface.
		if d.Recv != nil && !receiverExported(d.Recv) {
			return nil
		}
		what := "function"
		if d.Recv != nil {
			what = "method"
		}
		report(d.Pos(), "exported %s %s has no doc comment", what, d.Name.Name)
	case *ast.GenDecl:
		groupDocumented := d.Doc != nil
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && sp.Doc == nil && !groupDocumented {
					report(sp.Pos(), "exported type %s has no doc comment", sp.Name.Name)
				}
			case *ast.ValueSpec:
				// A group comment (e.g. over a const block) covers its
				// specs, matching the repository's documentation style.
				if sp.Doc != nil || sp.Comment != nil || groupDocumented {
					continue
				}
				for _, n := range sp.Names {
					if n.IsExported() {
						report(n.Pos(), "exported %s %s has no doc comment", d.Tok, n.Name)
					}
				}
			}
		}
	}
	return findings
}

// receiverExported reports whether a method's receiver names an exported
// type.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
