// Command docslint is the repository's exported-documentation check, a
// dependency-free stand-in for the revive/golint exported rule: every
// package it is pointed at must carry a package comment, and every
// exported top-level identifier — functions, methods on exported types,
// types, and const/var specs — must carry a doc comment (a spec is
// covered by its declaration group's comment). Findings print one per
// line as file:line: message and the exit status is 1 when any exist, so
// the CI docs-lint job fails on missing docs.
//
// With -examples the check switches to example coverage: every exported
// top-level function of the listed packages must have a runnable
// Example<Name> godoc function (an Example<Name>_suffix variant
// counts) in the package's test files. The repository applies it to the
// facade only, where examples are the primary entry-point documentation.
//
//	docslint . ./internal/server
//	docslint -examples .
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("docslint: ")
	examples := flag.Bool("examples", false, "require an Example<Name> godoc function for every exported top-level function instead of checking doc comments")
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	lint := lintDir
	what := "missing-documentation"
	if *examples {
		lint = lintExamples
		what = "missing-example"
	}
	var findings []string
	for _, dir := range dirs {
		f, err := lint(dir)
		if err != nil {
			log.Fatal(err)
		}
		findings = append(findings, f...)
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		log.Fatalf("%d %s finding(s)", len(findings), what)
	}
}

// lintExamples parses one package directory including its test files and
// reports every exported top-level function without an Example<Name>
// godoc function. The example may live in the package itself or its
// external _test package, and suffix variants (Example<Name>_race) cover
// their base name.
func lintExamples(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	exampled := map[string]bool{}
	type exported struct {
		name string
		pos  token.Pos
	}
	var funcs []exported
	for _, pkg := range pkgs {
		for fname, file := range pkg.Files {
			isTest := strings.HasSuffix(fname, "_test.go")
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil {
					continue
				}
				if isTest {
					if base, ok := strings.CutPrefix(fd.Name.Name, "Example"); ok {
						base, _, _ = strings.Cut(base, "_")
						exampled[base] = true
					}
					continue
				}
				if fd.Name.IsExported() {
					funcs = append(funcs, exported{fd.Name.Name, fd.Pos()})
				}
			}
		}
	}
	var findings []string
	for _, f := range funcs {
		if !exampled[f.name] {
			findings = append(findings, fmt.Sprintf("%s: exported function %s has no Example%s godoc function",
				fset.Position(f.pos), f.name, f.name))
		}
	}
	return findings, nil
}

// lintDir parses one package directory (tests excluded) and returns its
// findings.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	for name, pkg := range pkgs {
		findings = append(findings, lintPackage(fset, dir, name, pkg)...)
	}
	return findings, nil
}

// lintPackage checks the package comment and every exported top-level
// declaration of one parsed package.
func lintPackage(fset *token.FileSet, dir, name string, pkg *ast.Package) []string {
	var findings []string
	hasPackageDoc := false
	for _, file := range pkg.Files {
		if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
			hasPackageDoc = true
		}
	}
	if !hasPackageDoc {
		findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", filepath.Clean(dir), name))
	}
	for fname, file := range pkg.Files {
		for _, decl := range file.Decls {
			findings = append(findings, lintDecl(fset, fname, decl)...)
		}
	}
	return findings
}

// lintDecl reports the undocumented exported identifiers of one
// top-level declaration.
func lintDecl(fset *token.FileSet, fname string, decl ast.Decl) []string {
	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		findings = append(findings, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		// Methods on unexported types are not public surface.
		if d.Recv != nil && !receiverExported(d.Recv) {
			return nil
		}
		what := "function"
		if d.Recv != nil {
			what = "method"
		}
		report(d.Pos(), "exported %s %s has no doc comment", what, d.Name.Name)
	case *ast.GenDecl:
		groupDocumented := d.Doc != nil
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && sp.Doc == nil && !groupDocumented {
					report(sp.Pos(), "exported type %s has no doc comment", sp.Name.Name)
				}
			case *ast.ValueSpec:
				// A group comment (e.g. over a const block) covers its
				// specs, matching the repository's documentation style.
				if sp.Doc != nil || sp.Comment != nil || groupDocumented {
					continue
				}
				for _, n := range sp.Names {
					if n.IsExported() {
						report(n.Pos(), "exported %s %s has no doc comment", d.Tok, n.Name)
					}
				}
			}
		}
	}
	return findings
}

// receiverExported reports whether a method's receiver names an exported
// type.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
