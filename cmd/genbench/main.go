// Command genbench writes OR-library-style benchmark files for the CDD,
// UCDDCP and parallel-machine early-work problems, reproducing the
// Biskup–Feldmann distributions deterministically (see internal/orlib).
//
//	genbench -out bench/                 # full paper suite, all problems
//	genbench -kind cdd -sizes 10,50 -records 10 -out bench/
//	genbench -kind earlywork -sizes 10 -records 4 -out bench/
//
// Early-work records carry processing times only; the machine count and
// the restrictive-h due date are applied at load time
// (orlib.EarlyWorkInstance), like the h sweep of the CDD files.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/orlib"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genbench: ")
	var (
		kind    = flag.String("kind", "all", "cdd, ucddcp, earlywork, both (cdd+ucddcp) or all")
		sizes   = flag.String("sizes", "10,20,50,100,200,500,1000", "comma-separated job counts")
		records = flag.Int("records", orlib.InstancesPerSize, "records per size")
		seed    = flag.Uint64("seed", orlib.DefaultSeed, "generator seed")
		out     = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	sizeList, err := parseSizes(*sizes)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, n := range sizeList {
		if *kind == "cdd" || *kind == "both" || *kind == "all" {
			path := filepath.Join(*out, fmt.Sprintf("sch%d.txt", n))
			if err := writeFile(path, func(f *os.File) error {
				return orlib.WriteCDD(f, orlib.GenerateCDD(n, *records, *seed))
			}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s (%d records, h applied at load time)\n", path, *records)
		}
		if *kind == "ucddcp" || *kind == "both" || *kind == "all" {
			path := filepath.Join(*out, fmt.Sprintf("ucddcp%d.txt", n))
			if err := writeFile(path, func(f *os.File) error {
				return orlib.WriteUCDDCP(f, orlib.GenerateUCDDCP(n, *records, *seed))
			}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s (%d records)\n", path, *records)
		}
		if *kind == "earlywork" || *kind == "all" {
			path := filepath.Join(*out, fmt.Sprintf("ew%d.txt", n))
			if err := writeFile(path, func(f *os.File) error {
				return orlib.WriteEarlyWork(f, orlib.GenerateEarlyWork(n, *records, *seed))
			}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s (%d records, m and h applied at load time)\n", path, *records)
		}
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
