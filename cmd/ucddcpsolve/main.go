// Command ucddcpsolve solves Unrestricted Common Due-Date instances with
// Controllable Processing Times.
//
// With no flags it solves the paper's worked example (Table I with
// d = 22, optimal penalty 77 under the identity sequence). Generated
// benchmark instances and record files use the same flags as cddsolve:
//
//	ucddcpsolve -size 100 -record 1 -algo sa -engine gpu -iters 5000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	duedate "repro"
	"repro/internal/orlib"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ucddcpsolve: ")
	var (
		file    = flag.String("file", "", "UCDDCP record file to read (requires -n)")
		n       = flag.Int("n", 0, "jobs per record in -file")
		size    = flag.Int("size", 0, "generate a benchmark instance of this size instead of -file")
		record  = flag.Int("record", 0, "record index within the file or generated benchmark")
		seed    = flag.Uint64("seed", orlib.DefaultSeed, "benchmark generator seed")
		algo    = duedate.SA
		engine  = duedate.EngineGPU
		iters   = flag.Int("iters", 1000, "iterations per chain")
		grid    = flag.Int("grid", 4, "GPU grid size (blocks)")
		block   = flag.Int("block", 192, "GPU block size (threads per block)")
		rngSeed = flag.Uint64("solver-seed", 1, "solver RNG seed")
		workers = flag.Int("workers", 0, "host goroutines for -engine cpu (0 = GOMAXPROCS)")
		timeout = flag.Duration("timeout", 0, "wall-clock budget; on expiry the best-so-far is printed")
		showX   = flag.Bool("compressions", true, "print the per-job compressions of the best schedule")
	)
	flag.Var(&algo, "algo", "algorithm: SA, DPSO, TA or ES")
	flag.Var(&engine, "engine", "engine: gpu, cpu-parallel (cpu) or cpu-serial (serial)")
	flag.Parse()

	in, err := loadInstance(*file, *n, *size, *record, *seed)
	if err != nil {
		log.Fatal(err)
	}
	opts := duedate.Options{
		Algorithm:  algo,
		Engine:     engine,
		Iterations: *iters,
		Grid:       *grid,
		Block:      *block,
		Seed:       *rngSeed,
		Workers:    *workers,
	}
	if *timeout > 0 {
		opts.Deadline = time.Now().Add(*timeout)
	}

	// Ctrl-C cancels cooperatively: the engine stops at its next
	// chain/level boundary and the best-so-far is printed below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := duedate.SolveContext(ctx, in, opts)
	if err != nil {
		log.Fatal(err)
	}
	sched := res.Schedule(in)
	fmt.Printf("instance    %s (n=%d, d=%d, ΣP=%d)\n", in.Name, in.N(), in.D, in.SumP())
	fmt.Printf("algorithm   %s on %s\n", opts.Algorithm, opts.Engine)
	if res.Interrupted {
		fmt.Println("note        interrupted — best solution found so far:")
	}
	fmt.Printf("best cost   %d\n", res.BestCost)
	fmt.Printf("start       %d\n", sched.Start)
	fmt.Printf("wall time   %s\n", res.Elapsed)
	if res.SimSeconds > 0 {
		fmt.Printf("device      %.4f s (simulated)\n", res.SimSeconds)
	}
	if *showX && sched.X != nil {
		total := int64(0)
		for job, x := range sched.X {
			if x > 0 {
				fmt.Printf("compress    job %d by %d (P %d → %d, γ %d)\n",
					job+1, x, in.Jobs[job].P, in.Jobs[job].P-int(x), in.Jobs[job].Gamma)
				total += x
			}
		}
		fmt.Printf("compressed  %d time units total\n", total)
	}
}

func loadInstance(file string, n, size, record int, seed uint64) (*duedate.Instance, error) {
	switch {
	case file != "":
		if n <= 0 {
			return nil, fmt.Errorf("-file requires -n (jobs per record)")
		}
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		raws, err := orlib.ReadUCDDCP(f, n)
		if err != nil {
			return nil, err
		}
		if record < 0 || record >= len(raws) {
			return nil, fmt.Errorf("record %d outside [0,%d)", record, len(raws))
		}
		return orlib.UCDDCPInstance(raws[record], n, record)
	case size > 0:
		raws := orlib.GenerateUCDDCP(size, record+1, seed)
		return orlib.UCDDCPInstance(raws[record], size, record)
	default:
		return duedate.PaperExample(duedate.UCDDCP), nil
	}
}
