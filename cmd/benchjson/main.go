// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark numbers can be committed, diffed and consumed by
// tooling without re-parsing the bench format.
//
//	go test -run '^$' -bench 'BenchmarkEvaluator' -benchmem . | benchjson -out BENCH_evaluator.json
//
// Each benchmark line becomes one record with its iteration count,
// ns/op, and any additional reported metrics (B/op, allocs/op, custom
// b.ReportMetric units). Context lines (goos/goarch/pkg/cpu) are captured
// into the header. When both a full-evaluation benchmark and its Delta
// counterpart appear (BenchmarkEvaluatorCDD vs BenchmarkEvaluatorCDDDelta
// at the same size), the speedup ratio is computed into the summary.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	Context    map[string]string  `json:"context,omitempty"`
	Benchmarks []Bench            `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	doc := Doc{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		default:
			if k, v, ok := strings.Cut(line, ":"); ok {
				doc.Context[strings.TrimSpace(k)] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	doc.Speedups = speedups(doc.Benchmarks)

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parseBench parses one result line:
//
//	BenchmarkX/n100-8   123456   987 ns/op   0 B/op   0 allocs/op   1.5 x-label
func parseBench(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		if fields[i+1] == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[fields[i+1]] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}

// speedups derives "<base>/<size>: full ns / delta ns" ratios for every
// benchmark pair named <base>Delta/<size> and <base>/<size>, plus
// batch-vs-single per-sequence ratios for every
// BenchmarkBatchEvaluator/<kind>/<n>/B<batch> row against its same-row
// /single baseline (both report the ns/seq metric; a ratio above 1
// means the batch call scores a sequence faster than single calls on
// the identical workload).
func speedups(benches []Bench) map[string]float64 {
	byName := map[string]float64{}
	singleSeq := map[string]float64{}
	for _, b := range benches {
		byName[b.Name] = b.NsPerOp
		if family, mode, ok := strings.Cut(strings.TrimPrefix(b.Name, "BenchmarkBatchEvaluator/"), "/single"); ok && mode == "" {
			singleSeq[family] = b.Metrics["ns/seq"]
		}
	}
	out := map[string]float64{}
	for _, b := range benches {
		if base, size, ok := strings.Cut(b.Name, "Delta/"); ok {
			if full, exists := byName[base+"/"+size]; exists && b.NsPerOp > 0 {
				out[strings.TrimPrefix(base, "Benchmark")+"/"+size] = full / b.NsPerOp
			}
			continue
		}
		rest := strings.TrimPrefix(b.Name, "BenchmarkBatchEvaluator/")
		if rest == b.Name {
			continue
		}
		if family, mode, ok := strings.Cut(rest, "/B"); ok && mode != "" {
			if single, perSeq := singleSeq[family], b.Metrics["ns/seq"]; single > 0 && perSeq > 0 {
				out["BatchEvaluator/"+rest] = single / perSeq
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
