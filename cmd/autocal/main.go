// Command autocal fits the AUTO meta-driver's calibration table
// (internal/auto/calibration.json) from fixed-seed sweeps: for each
// (kind, size-bucket) it generates OR-library-style instances, runs the
// candidate pairings under one equal iteration budget, ranks them by
// mean best cost, and writes the winner (plus the runner-up racing set)
// into the bucket. The output is deterministic for a fixed -seed, so the
// checked-in table is reviewable and regenerable:
//
//	go run ./cmd/autocal -out internal/auto/calibration.json
//
// Modes:
//
//	-smoke   tiny sweep + self-checks for CI: the written table must
//	         round-trip through auto.Load bit-identically, the default
//	         gates must route an n=20 agreeable CDD to EXACT-DP, and a
//	         real AUTO solve on that instance must return Optimal.
//	-bench   the acceptance benchmark: 30 fixed-seed mixed instances
//	         (n ∈ {20,100,1000} × CDD/UCDDCP/EARLYWORK) under a -budget
//	         wall deadline, AUTO vs every static candidate pairing, with
//	         per-instance match-or-beat accounting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	duedate "repro"
	"repro/internal/auto"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("autocal: ")
	var (
		out     = flag.String("out", "internal/auto/calibration.json", "write the fitted calibration table here")
		seed    = flag.Uint64("seed", 7, "master seed for the sweep's fixed-seed instances and solves")
		records = flag.Int("records", 2, "instances per (kind, bucket) sample size")
		iters   = flag.Int("iters", 150, "per-chain iteration budget of every sweep solve")
		smoke   = flag.Bool("smoke", false, "tiny sweep + round-trip and DP-route self-checks (CI mode)")
		bench   = flag.Bool("bench", false, "run the fixed-seed AUTO-vs-statics acceptance benchmark instead of a sweep")
		budget  = flag.Duration("budget", 200*time.Millisecond, "per-solve wall budget of the -bench mode")
	)
	flag.Parse()

	switch {
	case *smoke:
		if err := runSmoke(*seed); err != nil {
			log.Fatal(err)
		}
		fmt.Println("autocal smoke: PASS")
	case *bench:
		if err := runBench(*seed, *budget); err != nil {
			log.Fatal(err)
		}
	default:
		cal, err := runSweep(sweepSpec{seed: *seed, records: *records, iters: *iters})
		if err != nil {
			log.Fatal(err)
		}
		if err := writeCalibration(cal, *out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("calibration written to %s (%d buckets)\n", *out, len(cal.Buckets))
	}
}

// sweepSpec parameterizes one calibration fit.
type sweepSpec struct {
	seed    uint64
	records int
	iters   int
	tiny    bool // -smoke: one small bucket per kind, two candidates
}

// candidatePool is the configuration space the sweep ranks. The pool
// deliberately sticks to deployable CPU engines (the simulated GPU's
// wall-clock cost is not representative of real deployments); the
// racing layer happily accepts any registered pairing the table names.
func candidatePool(tiny bool) []auto.Choice {
	if tiny {
		return []auto.Choice{
			{Algorithm: "SA", Engine: "cpu-parallel"},
			{Algorithm: "DPSO", Engine: "cpu-parallel"},
		}
	}
	return []auto.Choice{
		{Algorithm: "SA", Engine: "cpu-parallel"},
		{Algorithm: "DPSO", Engine: "cpu-parallel"},
		{Algorithm: "TA", Engine: "cpu-parallel"},
		{Algorithm: "ES", Engine: "cpu-parallel"},
		{Algorithm: "SA", Engine: "cpu-serial"},
	}
}

// bucketSpec is one (kind, bound) cell of the sweep with the sample size
// its instances are generated at.
type bucketSpec struct {
	kind    duedate.Kind
	maxN    int // 0 = open-ended tail bucket
	sampleN int
}

func sweepBuckets(tiny bool) []bucketSpec {
	if tiny {
		return []bucketSpec{
			{duedate.CDD, 64, 12},
			{duedate.UCDDCP, 64, 12},
			{duedate.EARLYWORK, 64, 12},
		}
	}
	return []bucketSpec{
		{duedate.CDD, 64, 40},
		{duedate.CDD, 256, 160},
		{duedate.CDD, 0, 500},
		{duedate.UCDDCP, 64, 40},
		{duedate.UCDDCP, 0, 200},
		{duedate.EARLYWORK, 64, 40},
		{duedate.EARLYWORK, 0, 200},
	}
}

// instancesFor generates the bucket's fixed-seed instance sample from
// the OR-library-style generators.
func instancesFor(b bucketSpec, records int, seed uint64) ([]*duedate.Instance, error) {
	switch b.kind {
	case duedate.CDD:
		ins, err := duedate.GenerateCDDBenchmark(b.sampleN, records, seed)
		if err != nil {
			return nil, err
		}
		// records×4 h-factor instances; every other one spans the h
		// factors without doubling the sweep cost.
		return everyOther(ins), nil
	case duedate.UCDDCP:
		return duedate.GenerateUCDDCPBenchmark(b.sampleN, records*2, seed)
	default:
		ins, err := duedate.GenerateEarlyWorkBenchmark(b.sampleN, 2, records, seed)
		if err != nil {
			return nil, err
		}
		return everyOther(ins), nil
	}
}

// runSweep fits the table: per bucket, every candidate solves every
// instance under the same iteration budget and seed; candidates are
// ranked by mean best cost.
func runSweep(s sweepSpec) (*auto.Calibration, error) {
	cal := &auto.Calibration{
		Version: auto.CalibrationVersion,
		Source: fmt.Sprintf("autocal sweep: seed=%d records=%d iters=%d goos=%s goarch=%s",
			s.seed, s.records, s.iters, runtime.GOOS, runtime.GOARCH),
		DP: auto.DPGate{CDDMaxN: 400, EarlyWorkMaxN: 2000},
	}
	pool := candidatePool(s.tiny)
	for _, b := range sweepBuckets(s.tiny) {
		ins, err := instancesFor(b, s.records, s.seed)
		if err != nil {
			return nil, fmt.Errorf("bucket %v/%d: %w", b.kind, b.maxN, err)
		}
		type ranked struct {
			choice auto.Choice
			mean   float64
		}
		var ranks []ranked
		for _, c := range pool {
			var total float64
			solved := 0
			for _, in := range ins {
				opts, err := optionsFor(c, s.iters, s.seed)
				if err != nil {
					return nil, err
				}
				res, err := duedate.Solve(in, opts)
				if err != nil {
					return nil, fmt.Errorf("bucket %v/%d %s on %s: %w", b.kind, b.maxN, c.Pairing(), in.Name, err)
				}
				total += float64(res.BestCost)
				solved++
			}
			if solved == 0 {
				continue
			}
			ranks = append(ranks, ranked{choice: c, mean: total / float64(solved)})
		}
		if len(ranks) == 0 {
			continue
		}
		// Stable selection sort by mean (pool order breaks ties).
		for i := 0; i < len(ranks); i++ {
			best := i
			for j := i + 1; j < len(ranks); j++ {
				if ranks[j].mean < ranks[best].mean {
					best = j
				}
			}
			ranks[i], ranks[best] = ranks[best], ranks[i]
		}
		bucket := auto.Bucket{
			Kind:     b.kind.String(),
			MaxN:     b.maxN,
			Choice:   ranks[0].choice,
			MeanCost: ranks[0].mean,
			Trials:   len(ins),
		}
		for _, r := range ranks[1:] {
			if len(bucket.Candidates) >= 2 {
				break
			}
			bucket.Candidates = append(bucket.Candidates, r.choice)
		}
		cal.Buckets = append(cal.Buckets, bucket)
		log.Printf("bucket %-9s maxN=%-4d n=%-4d → %-18s mean=%.1f (%d instances, %d candidates)",
			b.kind, b.maxN, b.sampleN, ranks[0].choice.Pairing(), ranks[0].mean, len(ins), len(ranks))
	}
	return cal, nil
}

// optionsFor translates a sweep candidate into facade options with the
// shared equal budget.
func optionsFor(c auto.Choice, iters int, seed uint64) (duedate.Options, error) {
	alg, err := duedate.ParseAlgorithm(c.Algorithm)
	if err != nil {
		return duedate.Options{}, err
	}
	eng, err := duedate.ParseEngine(c.Engine)
	if err != nil {
		return duedate.Options{}, err
	}
	return duedate.Options{
		Algorithm: alg, Engine: eng,
		Iterations: iters, Grid: 2, Block: 16, TempSamples: 100, Seed: seed,
	}, nil
}

// writeCalibration marshals the table in the checked-in format.
func writeCalibration(cal *auto.Calibration, path string) error {
	blob, err := cal.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// runSmoke is the CI self-check: a tiny sweep round-trips through the
// loader bit-identically, the default gates DP-route an n=20 agreeable
// CDD, and a real AUTO solve on it returns a machine-checked optimality
// certificate.
func runSmoke(seed uint64) error {
	cal, err := runSweep(sweepSpec{seed: seed, records: 1, iters: 40, tiny: true})
	if err != nil {
		return fmt.Errorf("tiny sweep: %w", err)
	}
	dir, err := os.MkdirTemp("", "autocal-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "calibration.json")
	if err := writeCalibration(cal, path); err != nil {
		return err
	}
	loaded, err := auto.Load(path)
	if err != nil {
		return fmt.Errorf("round-trip load: %w", err)
	}
	want, _ := cal.Marshal()
	got, _ := loaded.Marshal()
	if string(want) != string(got) {
		return fmt.Errorf("round-trip not bit-identical:\nwrote:  %s\nloaded: %s", want, got)
	}
	fmt.Printf("round-trip: %d buckets, %d bytes, bit-identical\n", len(loaded.Buckets), len(want))

	// Gate check: the default table must route tiny agreeable CDD
	// instances straight to the DP.
	if dec := auto.Default().Pick(duedate.CDD, 20, 1); !dec.AttemptDP {
		return fmt.Errorf("default calibration does not DP-route CDD n=20 m=1 (gates: %+v)", auto.Default().DP)
	}

	// End-to-end certificate check on an n=20 agreeable (symmetric
	// weight) unrestricted instance.
	n := 20
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := range p {
		p[i] = 1 + (i*7)%13
		alpha[i] = 1 + (i*5)%7
		beta[i] = alpha[i]
		sum += int64(p[i])
	}
	in, err := duedate.NewCDDInstance("autocal-smoke-n20", p, alpha, beta, sum+10)
	if err != nil {
		return err
	}
	res, err := duedate.SolveContext(context.Background(), in, duedate.Options{Algorithm: duedate.Auto, Seed: seed})
	if err != nil {
		return fmt.Errorf("AUTO solve: %w", err)
	}
	if !res.Optimal {
		return fmt.Errorf("AUTO on agreeable n=20 CDD did not return an optimality certificate (cost %d)", res.BestCost)
	}
	if res.Metrics != nil && res.Metrics.AutoPick != "EXACT-DP/cpu-serial" {
		return fmt.Errorf("AUTO picked %q, want the EXACT-DP route", res.Metrics.AutoPick)
	}
	fmt.Printf("AUTO DP route: optimal cost %d on n=20 agreeable CDD\n", res.BestCost)
	return nil
}

// runBench is the fixed-seed acceptance benchmark: 30 mixed instances
// under a per-solve wall budget, AUTO against every static candidate
// pairing. It reports two bars: how often AUTO matches or beats the
// per-instance best static cost (the oracle portfolio — a strictly
// harder bar no single pairing can meet), and how often it matches or
// beats the single static pairing with the best overall mean.
func runBench(seed uint64, budget time.Duration) error {
	instances, err := benchInstances(seed)
	if err != nil {
		return err
	}
	statics := candidatePool(false)
	names := []string{"AUTO"}
	for _, c := range statics {
		names = append(names, c.Pairing())
	}
	costs := map[string][]float64{}
	matchOrBeat, autoOptimal := 0, 0
	for _, in := range instances {
		row := map[string]int64{}
		for _, c := range statics {
			opts, err := optionsFor(c, 0, seed)
			if err != nil {
				return err
			}
			opts.Deadline = time.Now().Add(budget)
			res, err := duedate.Solve(in, opts)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", c.Pairing(), in.Name, err)
			}
			row[c.Pairing()] = res.BestCost
			costs[c.Pairing()] = append(costs[c.Pairing()], float64(res.BestCost))
		}
		ares, err := duedate.Solve(in, duedate.Options{
			Algorithm: duedate.Auto, Seed: seed, Grid: 2, Block: 16, TempSamples: 100,
			Deadline: time.Now().Add(budget),
		})
		if err != nil {
			return fmt.Errorf("AUTO on %s: %w", in.Name, err)
		}
		costs["AUTO"] = append(costs["AUTO"], float64(ares.BestCost))
		bestStatic := int64(-1)
		for _, v := range row {
			if bestStatic < 0 || v < bestStatic {
				bestStatic = v
			}
		}
		ok := ares.BestCost <= bestStatic
		if ok {
			matchOrBeat++
		}
		if ares.Optimal {
			autoOptimal++
		}
		fmt.Printf("%-28s auto=%-8d beststatic=%-8d %s%s\n",
			in.Name, ares.BestCost, bestStatic, mark(ok), optmark(ares.Optimal))
	}
	fmt.Printf("\nAUTO matched-or-beat the per-instance best static on %d/%d instances (%.0f%%), %d optimality certificates\n",
		matchOrBeat, len(instances), 100*float64(matchOrBeat)/float64(len(instances)), autoOptimal)
	means := map[string]float64{}
	for _, name := range names {
		var total float64
		for _, v := range costs[name] {
			total += v
		}
		means[name] = total / float64(len(costs[name]))
		fmt.Printf("  mean cost %-18s %.1f\n", name, means[name])
	}
	bestMean := ""
	for _, name := range names[1:] {
		if bestMean == "" || means[name] < means[bestMean] {
			bestMean = name
		}
	}
	vsBest := 0
	for i := range costs["AUTO"] {
		if costs["AUTO"][i] <= costs[bestMean][i] {
			vsBest++
		}
	}
	fmt.Printf("\nAUTO matched-or-beat the best-mean static pairing (%s) on %d/%d instances (%.0f%%)\n",
		bestMean, vsBest, len(instances), 100*float64(vsBest)/float64(len(instances)))
	return nil
}

func mark(ok bool) string {
	if ok {
		return "≤"
	}
	return ">"
}

func optmark(opt bool) string {
	if opt {
		return "  [optimal]"
	}
	return ""
}

// benchInstances builds the 30-instance fixed-seed mix: per n in
// {20, 100, 1000}, four CDD records, three UCDDCP records and three
// 2-machine EARLYWORK records.
func benchInstances(seed uint64) ([]*duedate.Instance, error) {
	var out []*duedate.Instance
	for _, n := range []int{20, 100, 1000} {
		cdd, err := duedate.GenerateCDDBenchmark(n, 1, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, cdd...) // 4 h-factors
		uc, err := duedate.GenerateUCDDCPBenchmark(n, 3, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, uc...)
		ew, err := duedate.GenerateEarlyWorkBenchmark(n, 2, 1, seed)
		if err != nil {
			return nil, err
		}
		if len(ew) > 3 {
			ew = ew[:3]
		}
		out = append(out, ew...)
	}
	return out, nil
}

func everyOther[T any](s []T) []T {
	out := make([]T, 0, (len(s)+1)/2)
	for i := 0; i < len(s); i += 2 {
		out = append(out, s[i])
	}
	return out
}
