// Command cddsolve solves Common Due-Date instances with the hybrid
// two-layered solvers of the library.
//
// With no flags it solves the paper's worked example. To solve instances
// from an OR-library sch file:
//
//	cddsolve -file sch10.txt -n 10 -h 0.6 -record 0
//
// To solve a generated benchmark instance:
//
//	cddsolve -size 50 -h 0.4 -record 2 -algo sa -engine gpu -iters 1000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	duedate "repro"
	"repro/internal/orlib"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cddsolve: ")
	var (
		file    = flag.String("file", "", "OR-library sch file to read (requires -n)")
		n       = flag.Int("n", 0, "jobs per record in -file")
		size    = flag.Int("size", 0, "generate a benchmark instance of this size instead of -file")
		record  = flag.Int("record", 0, "record index within the file or generated benchmark")
		hFactor = flag.Float64("h", 0.6, "restrictive due-date factor d = ⌊h·ΣP⌋")
		seed    = flag.Uint64("seed", orlib.DefaultSeed, "benchmark generator seed")
		algo    = duedate.SA
		engine  = duedate.EngineGPU
		iters   = flag.Int("iters", 1000, "iterations per chain")
		grid    = flag.Int("grid", 4, "GPU grid size (blocks)")
		block   = flag.Int("block", 192, "GPU block size (threads per block)")
		rngSeed = flag.Uint64("solver-seed", 1, "solver RNG seed")
		workers = flag.Int("workers", 0, "host goroutines for -engine cpu (0 = GOMAXPROCS)")
		timeout = flag.Duration("timeout", 0, "wall-clock budget; on expiry the best-so-far is printed")
		gantt   = flag.Bool("gantt", false, "print a textual Gantt chart (small n only)")
	)
	flag.Var(&algo, "algo", "algorithm: SA, DPSO, TA or ES")
	flag.Var(&engine, "engine", "engine: gpu, cpu-parallel (cpu) or cpu-serial (serial)")
	flag.Parse()

	in, err := loadInstance(*file, *n, *size, *record, *hFactor, *seed)
	if err != nil {
		log.Fatal(err)
	}

	opts := duedate.Options{
		Algorithm:  algo,
		Engine:     engine,
		Iterations: *iters,
		Grid:       *grid,
		Block:      *block,
		Seed:       *rngSeed,
		Workers:    *workers,
	}
	if *timeout > 0 {
		opts.Deadline = time.Now().Add(*timeout)
	}

	// Ctrl-C cancels cooperatively: the engine stops at its next
	// chain/level boundary and the best-so-far is printed below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := duedate.SolveContext(ctx, in, opts)
	if err != nil {
		log.Fatal(err)
	}
	sched := res.Schedule(in)
	fmt.Printf("instance   %s (n=%d, d=%d)\n", in.Name, in.N(), in.D)
	fmt.Printf("algorithm  %s on %s\n", opts.Algorithm, opts.Engine)
	if res.Interrupted {
		fmt.Println("note       interrupted — best solution found so far:")
	}
	fmt.Printf("best cost  %d\n", res.BestCost)
	fmt.Printf("sequence   %v\n", onesBased(res.BestSeq))
	fmt.Printf("start      %d\n", sched.Start)
	fmt.Printf("wall time  %s\n", res.Elapsed)
	if res.SimSeconds > 0 {
		fmt.Printf("device     %.4f s (simulated)\n", res.SimSeconds)
	}
	if *gantt {
		fmt.Println(sched.Gantt(in))
	}
}

// loadInstance resolves the instance source: a file, the generator, or
// the paper example.
func loadInstance(file string, n, size, record int, h float64, seed uint64) (*duedate.Instance, error) {
	switch {
	case file != "":
		if n <= 0 {
			return nil, fmt.Errorf("-file requires -n (jobs per record)")
		}
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		raws, err := orlib.ReadCDD(f, n)
		if err != nil {
			return nil, err
		}
		if record < 0 || record >= len(raws) {
			return nil, fmt.Errorf("record %d outside [0,%d)", record, len(raws))
		}
		return orlib.CDDInstance(raws[record], n, record, h)
	case size > 0:
		raws := orlib.GenerateCDD(size, record+1, seed)
		return orlib.CDDInstance(raws[record], size, record, h)
	default:
		return duedate.PaperExample(duedate.CDD), nil
	}
}

// onesBased renders a 0-based job sequence with the paper's 1-based ids.
func onesBased(seq []int) []int {
	out := make([]int, len(seq))
	for i, v := range seq {
		out[i] = v + 1
	}
	return out
}
