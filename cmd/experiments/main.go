// Command experiments regenerates the paper's evaluation: Tables II–V and
// Figures 11–17. Each experiment prints its table to stdout and, with
// -out, writes the figure data as CSV.
//
//	experiments -exp all -preset scaled -out results/
//	experiments -exp table2                       # CDD %Δ table only
//	experiments -exp fig11 -preset quick
//	experiments -exp strategy                     # async vs sync SA
//	experiments -compare results/old.json,results/new.json
//
// Presets: quick (seconds), scaled (default, minutes), full (the paper's
// 768 threads × 5000 iterations × 40 instances/size; hours). With -out,
// each sweep is archived as JSON for later -compare regression diffs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	duedate "repro"
	"repro/internal/harness"
	"repro/internal/problem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	// Ctrl-C cancels the sweep cooperatively: the running solver stops at
	// its next chain/level boundary and the harness returns the context
	// error instead of dumping partial tables.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var (
		exp     = flag.String("exp", "all", "experiment: table2, table3, fig12, fig13, fig14 (CDD); table4, table5, fig15, fig16, fig17 (UCDDCP); fig11; strategy; all")
		preset  = flag.String("preset", "scaled", "preset: quick, scaled, full")
		engine  = flag.String("engine", "", "override the preset's engine for the parallel runs: gpu, cpu-parallel or cpu-serial")
		out     = flag.String("out", "", "directory for CSV outputs (optional)")
		verbose = flag.Bool("v", false, "per-instance progress on stderr")
		compare = flag.String("compare", "", "diff two sweep archives: old.json,new.json (skips running experiments)")
	)
	flag.Parse()

	if *compare != "" {
		if err := compareArchives(*compare); err != nil {
			log.Fatal(err)
		}
		return
	}

	p := harness.ByName(*preset)
	if *engine != "" {
		if _, err := duedate.ParseEngine(*engine); err != nil {
			log.Fatal(err)
		}
		p.Engine = *engine
	}
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	needCDD := map[string]bool{"all": true, "table2": true, "table3": true, "fig12": true, "fig13": true, "fig14": true}[*exp]
	needUCDDCP := map[string]bool{"all": true, "table4": true, "table5": true, "fig15": true, "fig16": true, "fig17": true}[*exp]
	needFig11 := *exp == "all" || *exp == "fig11"
	needStrategy := *exp == "all" || *exp == "strategy"
	if !needCDD && !needUCDDCP && !needFig11 && !needStrategy {
		log.Fatalf("unknown experiment %q", *exp)
	}

	if needCDD {
		sw, err := harness.RunSweep(ctx, p, problem.CDD, progress)
		if err != nil {
			log.Fatal(err)
		}
		emitSweep(sw, *exp, *out, map[string]string{
			"table2": "",
			"fig12":  "fig12_cdd_pct_dev.csv",
			"table3": "",
			"fig13":  "fig13_cdd_speedups.csv",
			"fig14":  "fig14_cdd_runtimes.csv",
		})
	}
	if needUCDDCP {
		sw, err := harness.RunSweep(ctx, p, problem.UCDDCP, progress)
		if err != nil {
			log.Fatal(err)
		}
		emitSweep(sw, *exp, *out, map[string]string{
			"table4": "",
			"fig15":  "fig15_ucddcp_pct_dev.csv",
			"table5": "",
			"fig17":  "fig17_ucddcp_speedups.csv",
			"fig16":  "fig16_ucddcp_runtimes.csv",
		})
	}
	if needFig11 {
		cfg := harness.Fig11Config{Seed: p.Seed, TempSamples: p.TempSamples}
		if p.Name == "quick" {
			cfg.Size = 20
			cfg.Threads = []int{16, 48, 96}
			cfg.Generations = []int{50, 100, 200}
		}
		points, err := harness.Figure11(ctx, cfg, progress)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("FIGURE 11 — runtime vs threads × generations (UCDDCP fitness pipeline)")
		fmt.Printf("%8s %12s %12s %12s\n", "threads", "generations", "wall (s)", "device (s)")
		for _, pt := range points {
			fmt.Printf("%8d %12d %12.4f %12.4f\n", pt.Threads, pt.Generations, pt.WallSeconds, pt.SimSeconds)
		}
		writeCSV(*out, "fig11_surface.csv", harness.Fig11CSV(points))
	}
	if needStrategy {
		rows, err := harness.CompareStrategies(ctx, p, progress)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(harness.RenderStrategies(rows))
	}
}

// emitSweep prints the tables selected by exp and writes the CSVs.
func emitSweep(sw *harness.Sweep, exp, out string, files map[string]string) {
	all := exp == "all"
	if all || exp == "table2" || exp == "table4" || exp == "fig12" || exp == "fig15" {
		fmt.Println(sw.DeviationTable())
	}
	if all || exp == "table3" || exp == "table5" || exp == "fig13" || exp == "fig17" {
		fmt.Println(sw.SpeedupTable())
	}
	if all || exp == "fig14" || exp == "fig16" {
		fmt.Println(sw.RuntimeTable())
	}
	fmt.Println("Shape checks (paper findings):")
	fmt.Println(harness.RenderChecks(sw.ShapeChecks()))
	if out == "" {
		return
	}
	// Archive the full sweep for later re-rendering and regression diffs
	// (harness.ReadSweepJSON / CompareSweeps).
	archive := fmt.Sprintf("sweep_%s_%s.json", sw.Kind, sw.Preset.Name)
	f, err := os.Create(filepath.Join(out, archive))
	if err != nil {
		log.Fatal(err)
	}
	if err := sw.WriteJSON(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", filepath.Join(out, archive))
	for key, name := range files {
		if name == "" || (!all && key != exp) {
			continue
		}
		switch key {
		case "fig12", "fig15":
			writeCSV(out, name, sw.DeviationCSV())
		case "fig13", "fig17":
			writeCSV(out, name, sw.SpeedupCSV())
		case "fig14", "fig16":
			writeCSV(out, name, sw.RuntimeCSV())
		}
	}
}

// compareArchives renders the per-size quality drift between two sweep
// archives written by earlier runs (-out).
func compareArchives(spec string) error {
	parts := strings.SplitN(spec, ",", 2)
	if len(parts) != 2 {
		return fmt.Errorf("-compare wants old.json,new.json")
	}
	load := func(path string) (*harness.Sweep, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return harness.ReadSweepJSON(f)
	}
	older, err := load(parts[0])
	if err != nil {
		return err
	}
	newer, err := load(parts[1])
	if err != nil {
		return err
	}
	lines, err := harness.CompareSweeps(older, newer)
	if err != nil {
		return err
	}
	fmt.Printf("quality drift (%s → %s), mean %%Δ per size and algorithm:\n", parts[0], parts[1])
	for _, l := range lines {
		fmt.Println("  " + l)
	}
	return nil
}

func writeCSV(dir, name, content string) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
