// Command verify runs the cross-engine differential-verification
// subsystem: seedable instance families through the evaluator-agreement
// chain, the delta-walk protocol check, the metamorphic properties, the
// exact oracles, and every registered algorithm×engine driver (plus the
// persistent SA/GPU variant). It prints a human summary, optionally writes
// the full JSON report, and exits nonzero if any discrepancy was found.
//
//	verify -trials 200
//	verify -trials 50 -families uniform-cdd,d-zero -out report.json
//	verify -trials 20 -no-drivers          # evaluator/oracle layers only
//	verify -trials 30 -machines 3          # force every family onto 3 machines
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("verify: ")
	var (
		trials     = flag.Int("trials", 25, "instances per generator family")
		seed       = flag.Uint64("seed", 1, "master seed; a fixed seed replays the exact run")
		maxN       = flag.Int("maxn", 8, "job-count bound for size-randomized families")
		seqs       = flag.Int("seqs", 4, "random sequences cross-checked per instance")
		families   = flag.String("families", "", "comma-separated family filter (default: all)")
		machines   = flag.Int("machines", 0, "force every generated instance onto this many machines (0: family default)")
		dpTrials   = flag.Int("dp-trials", 3, "exact-dp leg trials at n in the hundreds (negative: disable the leg)")
		dpMaxN     = flag.Int("dp-maxn", 240, "upper job-count bound for the exact-dp leg's large CDD instances (lower bound 200)")
		autoTrials = flag.Int("auto-trials", 3, "AUTO portfolio-leg trials (equal-budget race vs every static pairing; negative: disable)")
		noDrivers  = flag.Bool("no-drivers", false, "skip the engine drivers (evaluator/oracle layers only)")
		iters      = flag.Int("iters", 60, "driver iterations per chain")
		grid       = flag.Int("grid", 1, "driver ensemble grid")
		block      = flag.Int("block", 8, "driver ensemble block")
		out        = flag.String("out", "", "write the full JSON report to this file")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the whole run")
		maxPrint   = flag.Int("max-print", 10, "discrepancies echoed to stderr (all go to -out)")
	)
	flag.Parse()

	cfg := verify.Config{
		Trials:     *trials,
		Seed:       *seed,
		MaxN:       *maxN,
		SeqSamples: *seqs,
		Machines:   *machines,
		DPTrials:   *dpTrials,
		DPMaxN:     *dpMaxN,
		AutoTrials: *autoTrials,
	}
	if *families != "" {
		cfg.Families = strings.Split(*families, ",")
	}
	var drivers []verify.Driver
	if !*noDrivers {
		drivers = verify.RegisteredDrivers(verify.Budget{Iterations: *iters, Grid: *grid, Block: *block})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	rep, err := verify.Run(ctx, cfg, drivers)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(rep.Summary())
	for _, name := range rep.Drivers {
		st := rep.DriverStats[name]
		fmt.Printf("  driver %-20s runs %4d  optimum %d/%d  worst gap %.2f%%\n",
			name, st.Runs, st.OptimumHits, st.OptimumKnown, st.WorstGapPct)
	}

	if *out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", *out)
	}

	if !rep.Ok() {
		for i, d := range rep.Discrepancies {
			if i >= *maxPrint {
				fmt.Fprintf(os.Stderr, "... and %d more\n", len(rep.Discrepancies)-i)
				break
			}
			fmt.Fprintf(os.Stderr, "DISCREPANCY %s family=%s instance=%s driver=%s: %s\n",
				d.Check, d.Family, d.Instance, d.Driver, d.Detail)
		}
		os.Exit(1)
	}
}
