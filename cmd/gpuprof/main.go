// Command gpuprof profiles the simulated GPU pipeline: it runs the
// four-kernel SA (or DPSO) pipeline on a benchmark instance, prints the
// per-kernel profile (the simulator's nvprof), writes the machine-readable
// profile to a JSON file, and optionally writes a Chrome trace-event
// timeline for chrome://tracing / Perfetto.
//
//	gpuprof -size 100 -iters 200 -trace timeline.json
//	gpuprof -algo dpso -grid 4 -block 192 -kind ucddcp
//	gpuprof -persistent -json BENCH_kernels.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	duedate "repro"
	"repro/internal/core"
	"repro/internal/cudasim"
	"repro/internal/dpso"
	"repro/internal/orlib"
	"repro/internal/parallel"
	"repro/internal/problem"
	"repro/internal/sa"
)

// profile is the JSON document gpuprof emits: the solver-side phase
// metrics (host wall time + simulated device seconds per phase) next to
// the device-side per-kernel counters and the PCIe transfer totals.
type profile struct {
	Instance   string                           `json:"instance"`
	Algorithm  string                           `json:"algorithm"`
	Grid       int                              `json:"grid"`
	Block      int                              `json:"block"`
	Iterations int                              `json:"iterations"`
	BestCost   int64                            `json:"bestCost"`
	SimSeconds float64                          `json:"simSeconds"`
	WallNs     int64                            `json:"wallNs"`
	Metrics    *duedate.Metrics                 `json:"metrics"`
	Kernels    map[string]cudasim.KernelStats   `json:"kernels"`
	Transfers  map[string]cudasim.TransferStats `json:"transfers"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpuprof: ")
	algo := duedate.SA
	var (
		kind        = flag.String("kind", "cdd", "problem: cdd or ucddcp")
		persistent  = flag.Bool("persistent", false, "persistent-kernel SA engine (one launch, whole annealing loop)")
		size        = flag.Int("size", 100, "benchmark instance size")
		iters       = flag.Int("iters", 200, "iterations")
		grid        = flag.Int("grid", 4, "blocks")
		block       = flag.Int("block", 48, "threads per block")
		seed        = flag.Uint64("seed", 1, "solver seed")
		jsonPath    = flag.String("json", "BENCH_kernels.json", "write the machine-readable profile to this file (empty disables)")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event timeline to this file")
		cooperative = flag.Bool("cooperative", false, "goroutine-per-thread barrier execution")
	)
	flag.Var(&algo, "algo", "algorithm: SA or DPSO (add -persistent for the persistent-kernel SA)")
	flag.Parse()

	var (
		inst *problem.Instance
		err  error
	)
	if *kind == "ucddcp" {
		var ins []*problem.Instance
		ins, err = orlib.BenchmarkUCDDCP(*size, 1, orlib.DefaultSeed)
		if err == nil {
			inst = ins[0]
		}
	} else {
		var ins []*problem.Instance
		ins, err = orlib.BenchmarkCDD(*size, 1, orlib.DefaultSeed)
		if err == nil {
			inst = ins[2]
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	dev := cudasim.NewDevice(cudasim.GT560M())
	if *tracePath != "" {
		dev.EnableTrace()
	}

	// Ctrl-C stops the pipeline at its next kernel-round boundary; the
	// profile of the kernels launched so far still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Kernel-level metrics are the point of this command, so the solvers
	// always run with the highest instrumentation level.
	saCfg := sa.Config{Iterations: *iters, TempSamples: 500}
	var solver core.Solver
	switch {
	case algo == duedate.SA && *persistent:
		solver = &parallel.PersistentGPUSA{Inst: inst, SA: saCfg, Grid: *grid, Block: *block,
			Seed: *seed, Dev: dev, Metrics: duedate.MetricsKernels}
	case algo == duedate.SA:
		solver = &parallel.GPUSA{Inst: inst, SA: saCfg, Grid: *grid, Block: *block,
			Seed: *seed, Dev: dev, Cooperative: *cooperative, Metrics: duedate.MetricsKernels}
	case algo == duedate.DPSO:
		solver = &parallel.GPUDPSO{Inst: inst, PSO: dpso.Config{Iterations: *iters},
			Grid: *grid, Block: *block, Seed: *seed, Dev: dev, Cooperative: *cooperative,
			Metrics: duedate.MetricsKernels}
	default:
		log.Fatalf("algorithm %v has no GPU pipeline (want SA or DPSO)", algo)
	}
	res, err := solver.Solve(ctx, inst)
	if err != nil {
		log.Fatal(err)
	}
	if res.Interrupted {
		fmt.Fprintln(os.Stderr, "interrupted — profiling the kernels launched so far")
	}

	fmt.Printf("instance  %s   best=%d   device=%.4fs (simulated)\n", inst.Name, res.BestCost, res.SimSeconds)
	fmt.Printf("memory    %d B device buffers live\n", dev.MemoryInUse())
	if res.Metrics != nil {
		fmt.Println("\nsolver phases (host wall / simulated device):")
		for _, ph := range res.Metrics.Phases {
			fmt.Printf("  %-12s %5d×  %10s  %8.3f ms\n", ph.Name, ph.Count, ph.Wall, ph.Sim*1e3)
		}
	}
	fmt.Println()
	fmt.Print(dev.Profiler().Report())

	if *jsonPath != "" {
		h2d, d2h := dev.Profiler().Transfers()
		name := algo.String()
		if *persistent {
			name = "SA-persistent"
		}
		doc := profile{
			Instance:   inst.Name,
			Algorithm:  name,
			Grid:       *grid,
			Block:      *block,
			Iterations: *iters,
			BestCost:   res.BestCost,
			SimSeconds: res.SimSeconds,
			WallNs:     res.Elapsed.Nanoseconds(),
			Metrics:    res.Metrics,
			Kernels:    dev.Profiler().Kernels(),
			Transfers:  map[string]cudasim.TransferStats{"h2d": h2d, "d2h": d2h},
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := dev.WriteTrace(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%d events) — open in chrome://tracing\n", *tracePath, len(dev.TraceEvents()))
	}
}
