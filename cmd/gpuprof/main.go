// Command gpuprof profiles the simulated GPU pipeline: it runs the
// four-kernel SA (or DPSO) pipeline on a benchmark instance and prints
// the per-kernel profile (the simulator's nvprof), optionally writing a
// Chrome trace-event timeline for chrome://tracing / Perfetto.
//
//	gpuprof -size 100 -iters 200 -trace timeline.json
//	gpuprof -algo dpso -grid 4 -block 192 -kind ucddcp
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/cudasim"
	"repro/internal/dpso"
	"repro/internal/orlib"
	"repro/internal/parallel"
	"repro/internal/problem"
	"repro/internal/sa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpuprof: ")
	var (
		kind        = flag.String("kind", "cdd", "problem: cdd or ucddcp")
		algo        = flag.String("algo", "sa", "algorithm: sa, dpso, persistent")
		size        = flag.Int("size", 100, "benchmark instance size")
		iters       = flag.Int("iters", 200, "iterations")
		grid        = flag.Int("grid", 4, "blocks")
		block       = flag.Int("block", 48, "threads per block")
		seed        = flag.Uint64("seed", 1, "solver seed")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event timeline to this file")
		cooperative = flag.Bool("cooperative", false, "goroutine-per-thread barrier execution")
	)
	flag.Parse()

	var (
		inst *problem.Instance
		err  error
	)
	if *kind == "ucddcp" {
		var ins []*problem.Instance
		ins, err = orlib.BenchmarkUCDDCP(*size, 1, orlib.DefaultSeed)
		if err == nil {
			inst = ins[0]
		}
	} else {
		var ins []*problem.Instance
		ins, err = orlib.BenchmarkCDD(*size, 1, orlib.DefaultSeed)
		if err == nil {
			inst = ins[2]
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	dev := cudasim.NewDevice(cudasim.GT560M())
	if *tracePath != "" {
		dev.EnableTrace()
	}

	// Ctrl-C stops the pipeline at its next kernel-round boundary; the
	// profile of the kernels launched so far still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	saCfg := sa.Config{Iterations: *iters, TempSamples: 500}
	var solver core.Solver
	switch *algo {
	case "sa":
		solver = &parallel.GPUSA{Inst: inst, SA: saCfg, Grid: *grid, Block: *block,
			Seed: *seed, Dev: dev, Cooperative: *cooperative}
	case "persistent":
		solver = &parallel.PersistentGPUSA{Inst: inst, SA: saCfg, Grid: *grid, Block: *block,
			Seed: *seed, Dev: dev}
	case "dpso":
		solver = &parallel.GPUDPSO{Inst: inst, PSO: dpso.Config{Iterations: *iters},
			Grid: *grid, Block: *block, Seed: *seed, Dev: dev, Cooperative: *cooperative}
	default:
		log.Fatalf("unknown algorithm %q (sa, dpso, persistent)", *algo)
	}
	res, err := solver.Solve(ctx, inst)
	if err != nil {
		log.Fatal(err)
	}
	best, sim := res.BestCost, res.SimSeconds
	if res.Interrupted {
		fmt.Fprintln(os.Stderr, "interrupted — profiling the kernels launched so far")
	}

	fmt.Printf("instance  %s   best=%d   device=%.4fs (simulated)\n", inst.Name, best, sim)
	fmt.Printf("memory    %d B device buffers live\n\n", dev.MemoryInUse())
	fmt.Print(dev.Profiler().Report())

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := dev.WriteTrace(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%d events) — open in chrome://tracing\n", *tracePath, len(dev.TraceEvents()))
	}
}
