// Command duedated is the batch-solving daemon: it serves the duedate
// driver registry over an HTTP JSON API with a bounded worker pool,
// queue admission control (429 when saturated), per-request deadlines,
// and an LRU result cache. Long solves can run asynchronously through
// the job API: submit returns 202 with a job id; poll, stream progress
// as SSE, or cancel. SIGINT/SIGTERM drain gracefully: queued and
// running solves complete (bounded by -grace; running async jobs get
// -job-grace before cancellation) before the process exits.
//
//	duedated -addr :8337 -pool 8 -queue 64 -cache 512 -jobs 256
//	curl -s localhost:8337/v1/pairings
//	curl -s -X POST --data @testdata/server/solve_cdd.json localhost:8337/v1/solve
//	curl -s -X POST --data @testdata/server/solve_cdd.json localhost:8337/v1/jobs
//
// Endpoints: POST /v1/solve, POST /v1/batch, POST /v1/jobs,
// GET|DELETE /v1/jobs/{id}, GET /v1/jobs/{id}/events (SSE),
// GET /v1/pairings, GET /healthz, GET /metrics. See internal/server for
// the wire formats.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	duedate "repro"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("duedated: ")
	var (
		addr       = flag.String("addr", ":8337", "listen address")
		pool       = flag.Int("pool", 0, "concurrent solve workers (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "admission queue depth beyond the running solves; full = 429")
		cache      = flag.Int("cache", 512, "result-cache entries (negative disables)")
		defTimeout = flag.Duration("default-timeout", 0, "deadline for requests without timeoutMs (0 = none)")
		maxTimeout = flag.Duration("max-timeout", 0, "clamp on every request deadline (0 = no clamp)")
		grace      = flag.Duration("grace", 30*time.Second, "drain budget after SIGINT/SIGTERM")
		jobs       = flag.Int("jobs", 256, "retained terminal async jobs before LRU eviction")
		jobTTL     = flag.Duration("job-ttl", 15*time.Minute, "terminal async job retention (negative disables expiry)")
		jobGrace   = flag.Duration("job-grace", 5*time.Second, "drain grace for running async jobs before cancellation (negative cancels immediately)")
		metrics    = flag.String("metrics", "counters", "solver instrumentation aggregated into /metrics: counters or kernels")
		pprofAddr  = flag.String("pprof", "", "expose net/http/pprof on this side address (e.g. localhost:6060; empty disables)")
		algorithm  = flag.String("algorithm", "SA", "default algorithm for requests without one: SA, DPSO, TA, ES, EXACT-DP or AUTO (explicit request algorithms always win)")
	)
	flag.Parse()

	defAlg, err := duedate.ParseAlgorithm(*algorithm)
	if err != nil {
		log.Fatalf("-algorithm: %v", err)
	}

	level := duedate.MetricsCounters
	switch *metrics {
	case "counters":
	case "kernels":
		level = duedate.MetricsKernels
	default:
		log.Fatalf("unknown -metrics level %q (want counters or kernels)", *metrics)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (pool %d, queue %d, cache %d)", l.Addr(), *pool, *queue, *cache)

	// The profiling listener is strictly separate from the API listener:
	// the API is served from the server package's own mux, so the
	// DefaultServeMux this side listener serves carries only the pprof
	// handlers and is bound (typically to localhost) only on request.
	if *pprofAddr != "" {
		pl, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", pl.Addr())
		go func() {
			if err := http.Serve(pl, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	// The signal context is the shutdown trigger: server.Run serves until
	// it is cancelled, then drains the pool within -grace.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The config's zero value means "default"; an explicit -queue 0 (no
	// waiting room) is spelled as a negative depth at the config layer.
	queueDepth := *queue
	if queueDepth == 0 {
		queueDepth = -1
	}
	cfg := server.Config{
		Pool:             *pool,
		QueueDepth:       queueDepth,
		CacheSize:        *cache,
		DefaultTimeout:   *defTimeout,
		MaxTimeout:       *maxTimeout,
		Metrics:          level,
		Jobs:             *jobs,
		JobTTL:           *jobTTL,
		JobGrace:         *jobGrace,
		DefaultAlgorithm: defAlg,
	}
	if err := server.Run(ctx, l, cfg, *grace); err != nil {
		log.Fatal(err)
	}
	log.Print("drained cleanly")
}
