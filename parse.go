package duedate

import (
	"fmt"
	"strings"
)

// This file gives Algorithm and Engine their textual round trip:
// ParseAlgorithm/ParseEngine invert String(), and the pointer receivers
// implement flag.Value (String is promoted from the value receiver), so
// the CLIs bind flags straight to the enums —
//
//	algo := duedate.SA
//	flag.Var(&algo, "algo", "metaheuristic: SA, DPSO, TA or ES")
//
// — instead of hand-rolling per-command switch statements.

// ParseAlgorithm maps a name to its Algorithm, inverting String():
// "SA", "DPSO", "TA", "ES", "EXACT-DP" or "AUTO", case-insensitively.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "SA":
		return SA, nil
	case "DPSO":
		return DPSO, nil
	case "TA":
		return TA, nil
	case "ES":
		return ES, nil
	case "EXACT-DP", "EXACTDP":
		return ExactDP, nil
	case "AUTO":
		return Auto, nil
	}
	return 0, fmt.Errorf("duedate: %w: unknown algorithm %q (want SA, DPSO, TA, ES, EXACT-DP or AUTO)", ErrInvalidOptions, s)
}

// ParseEngine maps a name to its Engine, inverting String(): "gpu",
// "cpu-parallel" or "cpu-serial", case-insensitively, plus the CLI
// shorthands "cpu" (cpu-parallel) and "serial" (cpu-serial).
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "gpu":
		return EngineGPU, nil
	case "cpu-parallel", "cpu":
		return EngineCPUParallel, nil
	case "cpu-serial", "serial":
		return EngineCPUSerial, nil
	}
	return 0, fmt.Errorf("duedate: %w: unknown engine %q (want gpu, cpu-parallel or cpu-serial)", ErrInvalidOptions, s)
}

// Set implements flag.Value.
func (a *Algorithm) Set(s string) error {
	v, err := ParseAlgorithm(s)
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// Set implements flag.Value.
func (e *Engine) Set(s string) error {
	v, err := ParseEngine(s)
	if err != nil {
		return err
	}
	*e = v
	return nil
}

// MarshalText implements encoding.TextMarshaler, so Algorithm fields
// encode as their names ("SA") in JSON wire types such as the server's
// SolveRequest/SolveResponse.
func (a Algorithm) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler via ParseAlgorithm;
// unknown names report ErrInvalidOptions.
func (a *Algorithm) UnmarshalText(text []byte) error { return a.Set(string(text)) }

// MarshalText implements encoding.TextMarshaler, so Engine fields encode
// as their names ("gpu", "cpu-parallel", "cpu-serial") in JSON wire
// types.
func (e Engine) MarshalText() ([]byte, error) { return []byte(e.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler via ParseEngine;
// unknown names report ErrInvalidOptions.
func (e *Engine) UnmarshalText(text []byte) error { return e.Set(string(text)) }
