package duedate

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/obs"
	"repro/internal/problem"
)

// This file wires the pseudo-polynomial exact layer into the driver
// registry as the EXACT-DP algorithm on the cpu-serial engine. Unlike
// the metaheuristic drivers it declares a narrow capability surface —
// CDD and EARLYWORK only — and can decline an in-capability instance
// with a typed error (no agreeable ratio order, state budget exceeded);
// on success the Result carries Optimal=true, the stack's only
// optimality certificate.

func init() {
	RegisterDriverCaps(ExactDP, EngineCPUSerial, func(o Options) core.Solver {
		return &exactDPSolver{opts: o}
	}, []Kind{CDD, EARLYWORK}, true)
}

// exactDPSolver adapts exact.SolveDPContext to the core.Solver contract:
// budget deadlines and cancellation map to an Interrupted identity-genome
// result (the DP has no usable partial solution), domain and budget
// rejections propagate as typed errors for the caller to route on.
type exactDPSolver struct {
	opts Options
}

// Name identifies the solver in experiment tables.
func (s *exactDPSolver) Name() string { return "EXACT-DP" }

// Solve runs the DP once. Evaluations reports stored DP states (the
// work unit of this driver), mirrored into Metrics when collection is on.
func (s *exactDPSolver) Solve(ctx context.Context, in *problem.Instance) (core.Result, error) {
	col := obs.NewCollector(s.opts.Metrics)
	ctx, cancel := s.opts.budget().Apply(ctx)
	defer cancel()
	start := time.Now()
	r, err := exact.SolveDPContext(ctx, in, exact.DPConfig{})
	elapsed := time.Since(start)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Cooperative-cancellation contract: return an honest (valid,
			// exactly costed) solution with Interrupted set, not an error.
			// An unfinished DP has no best-so-far, so the identity genome
			// stands in; Optimal stays false.
			seq := problem.IdentitySequence(in.GenomeLen())
			res := core.Result{
				BestSeq:     seq,
				BestCost:    core.NewEvaluator(in).Cost(seq),
				Evaluations: 1,
				Elapsed:     elapsed,
				Interrupted: true,
			}
			col.SetInterruptedAt("dp-layer")
			col.AddFullEvals(1)
			res.Metrics = col.Snapshot(res.Evaluations, 1, 1, elapsed)
			s.emit(res)
			return res, nil
		}
		return core.Result{}, fmt.Errorf("duedate: EXACT-DP: %w", err)
	}
	if col.Kernels() {
		col.Phase(obs.PhaseDP, elapsed, 0)
	} else {
		col.CountPhase(obs.PhaseDP)
	}
	res := core.Result{
		BestSeq:     r.Seq,
		BestCost:    r.Cost,
		Iterations:  1,
		Evaluations: r.Nodes,
		Elapsed:     elapsed,
		Optimal:     true,
	}
	res.Metrics = col.Snapshot(res.Evaluations, 1, 1, elapsed)
	s.emit(res)
	return res, nil
}

// emit sends the single final progress snapshot (the DP is one-shot, so
// there are no intermediate improvements to report).
func (s *exactDPSolver) emit(res core.Result) {
	if s.opts.Progress == nil {
		return
	}
	s.opts.Progress(core.Snapshot{
		BestSeq:     append([]int(nil), res.BestSeq...),
		BestCost:    res.BestCost,
		Evaluations: res.Evaluations,
		Elapsed:     res.Elapsed,
	})
}
