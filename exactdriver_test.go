package duedate_test

import (
	"context"
	"errors"
	"testing"
	"time"

	duedate "repro"
	"repro/internal/exact"
	"repro/internal/problem"
)

// agreeableInstance builds a deterministic symmetric-weight CDD instance
// (α = β, so one ratio order serves both weights) inside the EXACT-DP
// driver's provable domain; restrictive selects the due-date band.
func agreeableInstance(t *testing.T, name string, n int, restrictive bool) *duedate.Instance {
	t.Helper()
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + (i*7)%13
		alpha[i] = 1 + (i*3)%9
		beta[i] = alpha[i]
		sum += int64(p[i])
	}
	d := sum + 5
	if restrictive {
		d = sum / 3
	}
	in, err := duedate.NewCDDInstance(name, p, alpha, beta, d)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// exactDPOpts is the facade selection for the exact layer; budgets and
// geometry are meaningless to a one-shot DP and stay zero.
func exactDPOpts() duedate.Options {
	return duedate.Options{Algorithm: duedate.ExactDP, Engine: duedate.EngineCPUSerial}
}

// TestExactDPFacadeCertificate: the registered EXACT-DP pairing solves an
// in-domain instance through the public facade, reports an honest cost,
// and is the only driver allowed to set Result.Optimal.
func TestExactDPFacadeCertificate(t *testing.T) {
	in := agreeableInstance(t, "exactdp-facade", 30, false)
	res, err := duedate.Solve(in, exactDPOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Error("exact solve did not set the optimality certificate")
	}
	got, err := duedate.Cost(in, res.BestSeq)
	if err != nil {
		t.Fatal(err)
	}
	if got != res.BestCost {
		t.Errorf("certificate cost %d, sequence re-evaluates to %d", res.BestCost, got)
	}
	if res.Evaluations <= 0 || res.Iterations != 1 {
		t.Errorf("accounting: %d evaluations (want >0 stored states), %d iterations (want 1)",
			res.Evaluations, res.Iterations)
	}

	// A metaheuristic run on the same instance must never beat the
	// certificate, and must not claim one.
	sa, err := duedate.Solve(in, duedate.Options{
		Algorithm: duedate.SA, Engine: duedate.EngineCPUSerial,
		Iterations: 100, Grid: 1, Block: 8, TempSamples: 50, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sa.BestCost < res.BestCost {
		t.Errorf("SA cost %d beats the DP certificate %d", sa.BestCost, res.BestCost)
	}
	if sa.Optimal {
		t.Error("metaheuristic result claims an optimality certificate")
	}
}

// TestExactDPRelabelInvariance: permuting job identities permutes the
// optimal sequence but cannot change the optimal cost — the objective is
// label-free. The DP's agreeable sort order makes this a real property
// test of its tie-breaking, not a tautology.
func TestExactDPRelabelInvariance(t *testing.T) {
	in := agreeableInstance(t, "exactdp-relabel", 24, true)
	base, err := duedate.Solve(in, exactDPOpts())
	if err != nil {
		t.Fatal(err)
	}
	n := in.N()
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	for i := 0; i < n; i++ {
		j := (i*5 + 3) % n // 5 ⟂ 24: a fixed full-cycle relabeling
		p[i] = in.Jobs[j].P
		alpha[i] = in.Jobs[j].Alpha
		beta[i] = in.Jobs[j].Beta
	}
	relabeled, err := duedate.NewCDDInstance("exactdp-relabeled", p, alpha, beta, in.D)
	if err != nil {
		t.Fatal(err)
	}
	res, err := duedate.Solve(relabeled, exactDPOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost != base.BestCost {
		t.Errorf("relabeled optimum %d != original %d", res.BestCost, base.BestCost)
	}
}

// TestExactDPCostScaling: multiplying every penalty weight by k scales
// the optimal cost by exactly k (timing decisions are weight-ratio
// driven, and k preserves every ratio).
func TestExactDPCostScaling(t *testing.T) {
	in := agreeableInstance(t, "exactdp-scale", 20, false)
	base, err := duedate.Solve(in, exactDPOpts())
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	n := in.N()
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	for i := 0; i < n; i++ {
		p[i] = in.Jobs[i].P
		alpha[i] = k * in.Jobs[i].Alpha
		beta[i] = k * in.Jobs[i].Beta
	}
	scaled, err := duedate.NewCDDInstance("exactdp-scaled", p, alpha, beta, in.D)
	if err != nil {
		t.Fatal(err)
	}
	res, err := duedate.Solve(scaled, exactDPOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost != k*base.BestCost {
		t.Errorf("×%d-scaled optimum %d != %d × original %d", k, res.BestCost, k, base.BestCost)
	}
}

// TestExactDPEarlyWorkSingleMachineReduction: an m-machine EARLYWORK
// instance where m−1 machines stay empty in some optimum reduces to the
// single-machine instance — and on any instance, adding machines can
// only help (cost is non-increasing in m).
func TestExactDPEarlyWorkSingleMachineReduction(t *testing.T) {
	p := []int{4, 2, 5, 1, 3, 6, 2, 4, 3, 5}
	costs := make([]int64, 0, 3)
	for m := 1; m <= 3; m++ {
		in, err := duedate.NewEarlyWorkInstance("exactdp-ew", p, m, 6)
		if err != nil {
			t.Fatal(err)
		}
		res, err := duedate.Solve(in, exactDPOpts())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal {
			t.Fatalf("m=%d: no certificate", m)
		}
		got, err := duedate.Cost(in, res.BestSeq)
		if err != nil || got != res.BestCost {
			t.Fatalf("m=%d: certificate cost %d re-evaluates to %d (err %v)", m, res.BestCost, got, err)
		}
		costs = append(costs, res.BestCost)
	}
	for m := 1; m < len(costs); m++ {
		if costs[m] > costs[m-1] {
			t.Errorf("early-work optimum worsened with more machines: m=%d cost %d > m=%d cost %d",
				m+1, costs[m], m, costs[m-1])
		}
	}
	// With d = 6 and ΣP = 35, three machines cap 18 units of early work:
	// the exact floor is ΣP − 3d regardless of assignment.
	if want := int64(35 - 3*6); costs[2] != want {
		t.Errorf("m=3 optimum %d, want the saturated-machines floor %d", costs[2], want)
	}
}

// TestExactDPDeclinesOutsideDomain: the paper's Table I example has
// general asymmetric weights (no agreeable ratio order), so the facade
// must surface the typed exact.ErrInapplicable — routable with errors.Is
// — rather than an opaque failure or a silent wrong answer. Same for the
// UCDDCP kind, which has no DP at all.
func TestExactDPDeclinesOutsideDomain(t *testing.T) {
	if _, err := duedate.Solve(duedate.PaperExample(duedate.CDD), exactDPOpts()); !errors.Is(err, exact.ErrInapplicable) {
		t.Errorf("paper CDD example: %v (want exact.ErrInapplicable)", err)
	}
	if _, err := duedate.Solve(duedate.PaperExample(duedate.UCDDCP), exactDPOpts()); !errors.Is(err, duedate.ErrUnsupportedPairing) && !errors.Is(err, exact.ErrInapplicable) {
		t.Errorf("UCDDCP: %v (want a typed capability rejection)", err)
	}
}

// TestExactDPInterruptedDeadline: an already-expired deadline follows the
// engine contract — an honest best-so-far (the identity genome; the DP
// has no partial solution) with Interrupted set and no certificate, not
// an error.
func TestExactDPInterruptedDeadline(t *testing.T) {
	in := agreeableInstance(t, "exactdp-deadline", 40, false)
	opts := exactDPOpts()
	opts.Deadline = time.Now().Add(-time.Second)
	res, err := duedate.SolveContext(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("expired deadline did not interrupt the DP")
	}
	if res.Optimal {
		t.Fatal("interrupted DP claimed an optimality certificate")
	}
	if len(res.BestSeq) != in.N() || !problem.IsPermutation(res.BestSeq) {
		t.Fatalf("interrupted best-so-far %v is not a permutation", res.BestSeq)
	}
	got, err := duedate.Cost(in, res.BestSeq)
	if err != nil || got != res.BestCost {
		t.Fatalf("interrupted cost %d re-evaluates to %d (err %v)", res.BestCost, got, err)
	}
}
