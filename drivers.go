package duedate

import (
	"repro/internal/core"
	"repro/internal/dpso"
	"repro/internal/es"
	"repro/internal/parallel"
	"repro/internal/problem"
	"repro/internal/sa"
	"repro/internal/ta"
	"repro/internal/xrand"
)

// This file wires every built-in algorithm×engine pairing into the
// facade registry. Each driver translates Options into one engine-layer
// solver; the facade never switches on the pairing, so adding one means
// adding a RegisterDriver call here (or in any other package's init) and
// nothing else.

// ensembleFrom derives the CPU-engine ensemble geometry: Grid·Block
// chains, bounded by Options.Workers when parallel.
func ensembleFrom(o Options) parallel.Ensemble {
	return parallel.Ensemble{Chains: o.Grid * o.Block, Seed: o.Seed, Workers: o.Workers}
}

// saConfigFrom collects the SA tuning knobs.
func saConfigFrom(o Options) sa.Config {
	return sa.Config{
		Iterations:  o.Iterations,
		Cooling:     o.Cooling,
		Pert:        o.Pert,
		TempSamples: o.TempSamples,
	}
}

func init() {
	// SA: the paper's GPU pipeline (four-kernel or persistent) and the
	// CPU ensembles.
	RegisterDriver(SA, EngineGPU, func(o Options) core.Solver {
		if o.Persistent {
			return &parallel.PersistentGPUSA{
				SA: saConfigFrom(o), Grid: o.Grid, Block: o.Block, Seed: o.Seed,
				Budget: o.budget(), Progress: o.Progress, Metrics: o.Metrics,
			}
		}
		return &parallel.GPUSA{
			SA: saConfigFrom(o), Grid: o.Grid, Block: o.Block, Seed: o.Seed,
			Budget: o.budget(), Progress: o.Progress, Metrics: o.Metrics,
		}
	})
	saCPU := func(parallelOK bool) Driver {
		return func(o Options) core.Solver {
			return &parallel.AsyncSA{
				SA: saConfigFrom(o), Ens: ensembleFrom(o), Parallel: parallelOK,
				Budget: o.budget(), Progress: o.Progress, Metrics: o.Metrics,
			}
		}
	}
	RegisterDriver(SA, EngineCPUParallel, saCPU(true))
	RegisterDriver(SA, EngineCPUSerial, saCPU(false))

	// DPSO: GPU pipeline and CPU swarms.
	RegisterDriver(DPSO, EngineGPU, func(o Options) core.Solver {
		return &parallel.GPUDPSO{
			PSO: dpso.Config{Iterations: o.Iterations}, Grid: o.Grid, Block: o.Block,
			Seed: o.Seed, Budget: o.budget(), Progress: o.Progress, Metrics: o.Metrics,
		}
	})
	dpsoCPU := func(parallelOK bool) Driver {
		return func(o Options) core.Solver {
			return &parallel.ParallelDPSO{
				PSO: dpso.Config{Iterations: o.Iterations}, Ens: ensembleFrom(o),
				Parallel: parallelOK, Budget: o.budget(), Progress: o.Progress, Metrics: o.Metrics,
			}
		}
	}
	RegisterDriver(DPSO, EngineCPUParallel, dpsoCPU(true))
	RegisterDriver(DPSO, EngineCPUSerial, dpsoCPU(false))

	// TA and ES: the CPU baseline families, as chain factories over the
	// shared ensemble runtime — which honors EngineCPUParallel (the old
	// facade ran these serially regardless of engine). No GPU
	// registration exists, so the facade rejects EngineGPU for them.
	taDriver := func(parallelOK bool) Driver {
		return func(o Options) core.Solver {
			cfg := ta.Config{Iterations: o.Iterations, TempSamples: o.TempSamples}
			return &parallel.ChainEnsemble{
				Label: "TA", Ens: ensembleFrom(o), Parallel: parallelOK,
				Iterations: o.Iterations, Budget: o.budget(), Progress: o.Progress,
				Metrics: o.Metrics,
				NewChain: func(inst *problem.Instance, _ int, rng *xrand.XORWOW) parallel.Chain {
					return ta.NewChain(cfg, core.NewEvaluator(inst), rng)
				},
			}
		}
	}
	RegisterDriver(TA, EngineCPUParallel, taDriver(true))
	RegisterDriver(TA, EngineCPUSerial, taDriver(false))

	esDriver := func(parallelOK bool) Driver {
		return func(o Options) core.Solver {
			cfg := es.DefaultConfig()
			if o.Iterations > 0 {
				cfg.Generations = o.Iterations
			}
			return &parallel.ChainEnsemble{
				Label: "ES", Ens: ensembleFrom(o), Parallel: parallelOK,
				Iterations: o.Iterations, Budget: o.budget(), Progress: o.Progress,
				Metrics: o.Metrics,
				NewChain: func(inst *problem.Instance, _ int, rng *xrand.XORWOW) parallel.Chain {
					return es.New(cfg, core.NewEvaluator(inst), rng)
				},
			}
		}
	}
	RegisterDriver(ES, EngineCPUParallel, esDriver(true))
	RegisterDriver(ES, EngineCPUSerial, esDriver(false))
}
