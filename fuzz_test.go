package duedate_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	duedate "repro"
	"repro/internal/exact"
	"repro/internal/problem"
)

// facadeInstanceFromBytes decodes a fuzzer payload into a small valid
// instance of any kind (three bytes per job; UCDDCP adds m and γ from
// the same bytes, folded into range) on 1–3 machines: bits 32+ of dRaw
// select the kind and bits 48+ the machine count, so the fuzzer steers
// the parallel-machine genome path as freely as the instance data.
// Returns nil when too short.
func facadeInstanceFromBytes(data []byte, dRaw, kindRaw uint64) *problem.Instance {
	n := len(data) / 3
	if n < 1 {
		return nil
	}
	if n > 8 {
		n = 8
	}
	machines := 1 + int((dRaw>>48)%3)
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum uint64
	for i := 0; i < n; i++ {
		p[i] = 1 + int(data[3*i]%20)
		alpha[i] = int(data[3*i+1] % 11)
		beta[i] = int(data[3*i+2] % 16)
		sum += uint64(p[i])
	}
	var in *problem.Instance
	var err error
	switch kindRaw % 3 {
	case 1:
		m := make([]int, n)
		gamma := make([]int, n)
		for i := 0; i < n; i++ {
			m[i] = 1 + int(data[3*i+1])%p[i]
			gamma[i] = int(data[3*i+2] % 11)
		}
		// d ≥ ΣP keeps every machine segment unrestricted regardless of
		// the assignment, so the instance stays valid on any machine count.
		in, err = problem.NewUCDDCP("fuzz", p, m, alpha, beta, gamma, int64(sum+dRaw%(sum+1)))
	case 2:
		in, err = problem.NewEarlyWork("fuzz", p, machines, int64((dRaw&0xffffffff)%(sum+1)))
	default:
		in, err = problem.NewCDD("fuzz", p, alpha, beta, int64((dRaw&0xffffffff)%(2*sum+2)))
	}
	if err != nil {
		panic(err) // valid by construction
	}
	in.Machines = machines
	return in
}

// FuzzSolveFacade runs fuzzer-chosen instances through SolveContext with
// fuzzer-chosen algorithm×engine selections and tiny budgets. The facade
// contract under test: unregistered pairings fail with
// ErrUnsupportedPairing (never a panic), and every successful solve
// returns a valid permutation whose re-evaluated cost matches BestCost.
func FuzzSolveFacade(f *testing.F) {
	f.Add([]byte{6, 7, 9, 5, 9, 5, 2, 6, 4}, uint64(16), uint64(1), uint64(0), uint64(0))
	f.Add([]byte{1, 0, 1, 20, 10, 0}, uint64(3), uint64(2), uint64(3), uint64(2))
	f.Add([]byte{5, 5, 5, 5, 5, 5}, uint64(9), uint64(4), uint64(2), uint64(0))
	// Parallel-machine seeds: bits 48+ of dRaw pick the machine count,
	// bits 32–47 the kind (2 = EARLYWORK on 3 machines; 1 = UCDDCP on 2).
	f.Add([]byte{6, 7, 9, 5, 9, 5, 2, 6, 4, 4, 3, 2}, uint64(2)<<48|uint64(2)<<32|9, uint64(3), uint64(0), uint64(0))
	f.Add([]byte{6, 7, 9, 5, 9, 5, 2, 6, 4}, uint64(1)<<48|uint64(1)<<32|5, uint64(7), uint64(1), uint64(1))
	f.Add([]byte{3, 1, 2, 8, 4, 7}, uint64(1)<<48|16, uint64(11), uint64(2), uint64(2))
	f.Fuzz(func(t *testing.T, data []byte, dRaw, seed, algoRaw, engRaw uint64) {
		kindRaw := (dRaw >> 32) & 0xffff
		in := facadeInstanceFromBytes(data, dRaw, kindRaw)
		if in == nil {
			t.Skip("payload too short for one job")
		}
		opts := duedate.Options{
			Algorithm:   duedate.Algorithm(algoRaw % 5),
			Engine:      duedate.Engine(engRaw % 3),
			Iterations:  4,
			Grid:        1,
			Block:       2,
			TempSamples: 8,
			Seed:        seed,
			Persistent:  engRaw%5 == 0,
		}
		res, err := duedate.SolveContext(context.Background(), in, opts)
		if err != nil {
			// Three typed rejections are contract behavior: pairings that
			// are not registered, and the exact layer's capability declines
			// (outside its provable domain, or over its state budget).
			// Anything else — and any panic — is a bug.
			if !errors.Is(err, duedate.ErrUnsupportedPairing) &&
				!errors.Is(err, exact.ErrInapplicable) &&
				!errors.Is(err, exact.ErrTooLarge) {
				t.Fatalf("unexpected error class from SolveContext: %v", err)
			}
			return
		}
		if len(res.BestSeq) != in.GenomeLen() || !problem.IsPermutation(res.BestSeq) {
			t.Fatalf("best genome %v is not a permutation of 0..%d", res.BestSeq, in.GenomeLen()-1)
		}
		honest, err := duedate.Cost(in, res.BestSeq)
		if err != nil {
			t.Fatalf("re-evaluating the best sequence: %v", err)
		}
		if honest != res.BestCost {
			t.Fatalf("reported cost %d, sequence re-evaluates to %d", res.BestCost, honest)
		}
		// The canonical hash — the server's cache-key prefix — must
		// survive the JSON wire form for every kind and machine count.
		wire, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshaling the instance: %v", err)
		}
		var back problem.Instance
		if err := json.Unmarshal(wire, &back); err != nil {
			t.Fatalf("round-tripping the instance: %v", err)
		}
		if back.CanonicalHash() != in.CanonicalHash() {
			t.Fatalf("canonical hash changed across the JSON round trip: %s vs %s",
				back.CanonicalHash(), in.CanonicalHash())
		}
	})
}
