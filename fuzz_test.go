package duedate_test

import (
	"context"
	"errors"
	"testing"

	duedate "repro"
	"repro/internal/problem"
)

// facadeInstanceFromBytes decodes a fuzzer payload into a small valid
// instance of either kind (three bytes per job; UCDDCP adds m and γ from
// the same bytes, folded into range). Returns nil when too short.
func facadeInstanceFromBytes(data []byte, dRaw, kindRaw uint64) *problem.Instance {
	n := len(data) / 3
	if n < 1 {
		return nil
	}
	if n > 8 {
		n = 8
	}
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum uint64
	for i := 0; i < n; i++ {
		p[i] = 1 + int(data[3*i]%20)
		alpha[i] = int(data[3*i+1] % 11)
		beta[i] = int(data[3*i+2] % 16)
		sum += uint64(p[i])
	}
	if kindRaw%2 == 1 {
		m := make([]int, n)
		gamma := make([]int, n)
		for i := 0; i < n; i++ {
			m[i] = 1 + int(data[3*i+1])%p[i]
			gamma[i] = int(data[3*i+2] % 11)
		}
		in, err := problem.NewUCDDCP("fuzz", p, m, alpha, beta, gamma, int64(sum+dRaw%(sum+1)))
		if err != nil {
			panic(err) // valid by construction
		}
		return in
	}
	in, err := problem.NewCDD("fuzz", p, alpha, beta, int64(dRaw%(2*sum+2)))
	if err != nil {
		panic(err) // valid by construction
	}
	return in
}

// FuzzSolveFacade runs fuzzer-chosen instances through SolveContext with
// fuzzer-chosen algorithm×engine selections and tiny budgets. The facade
// contract under test: unregistered pairings fail with
// ErrUnsupportedPairing (never a panic), and every successful solve
// returns a valid permutation whose re-evaluated cost matches BestCost.
func FuzzSolveFacade(f *testing.F) {
	f.Add([]byte{6, 7, 9, 5, 9, 5, 2, 6, 4}, uint64(16), uint64(1), uint64(0), uint64(0))
	f.Add([]byte{1, 0, 1, 20, 10, 0}, uint64(3), uint64(2), uint64(3), uint64(2))
	f.Add([]byte{5, 5, 5, 5, 5, 5}, uint64(9), uint64(4), uint64(2), uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, dRaw, seed, algoRaw, engRaw uint64) {
		kindRaw := dRaw >> 32
		in := facadeInstanceFromBytes(data, dRaw, kindRaw)
		if in == nil {
			t.Skip("payload too short for one job")
		}
		opts := duedate.Options{
			Algorithm:   duedate.Algorithm(algoRaw % 4),
			Engine:      duedate.Engine(engRaw % 3),
			Iterations:  4,
			Grid:        1,
			Block:       2,
			TempSamples: 8,
			Seed:        seed,
			Persistent:  engRaw%5 == 0,
		}
		res, err := duedate.SolveContext(context.Background(), in, opts)
		if err != nil {
			if !errors.Is(err, duedate.ErrUnsupportedPairing) {
				t.Fatalf("unexpected error class from SolveContext: %v", err)
			}
			return
		}
		if len(res.BestSeq) != in.N() || !problem.IsPermutation(res.BestSeq) {
			t.Fatalf("best sequence %v is not a permutation of 0..%d", res.BestSeq, in.N()-1)
		}
		honest, err := duedate.Cost(in, res.BestSeq)
		if err != nil {
			t.Fatalf("re-evaluating the best sequence: %v", err)
		}
		if honest != res.BestCost {
			t.Fatalf("reported cost %d, sequence re-evaluates to %d", res.BestCost, honest)
		}
	})
}
