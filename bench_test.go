// Macro-benchmarks regenerating the paper's evaluation, one per table and
// figure. Each benchmark runs a miniature of the corresponding experiment
// (small sizes and budgets so `go test -bench=.` completes in minutes) and
// reports the experiment's headline quantity as a custom metric:
// %Δ for the quality tables (II/IV and Figures 12/15), speedup ratios for
// the speedup tables (III/V and Figures 13/17), and simulated device
// seconds for the runtime figures (11/14/16). The full-scale versions run
// via `go run ./cmd/experiments -preset full`.
package duedate_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	duedate "repro"
	"repro/internal/core"
	"repro/internal/dpso"
	"repro/internal/harness"
	"repro/internal/orlib"
	"repro/internal/parallel"
	"repro/internal/problem"
	"repro/internal/sa"
	"repro/internal/xrand"
)

const (
	benchSeed      = orlib.DefaultSeed
	benchItersLow  = 100
	benchItersHigh = 500
	benchGrid      = 2
	benchBlock     = 32
	benchTemp      = 200
)

var benchSizes = []int{10, 50}

// refCache memoizes the serial CPU reference per instance so the quality
// benchmarks don't re-run it every b.N iteration.
var refCache sync.Map

func benchInstance(b *testing.B, kind problem.Kind, size int) *problem.Instance {
	b.Helper()
	var (
		ins []*problem.Instance
		err error
	)
	if kind == problem.UCDDCP {
		ins, err = orlib.BenchmarkUCDDCP(size, 1, benchSeed)
	} else {
		ins, err = orlib.BenchmarkCDD(size, 1, benchSeed)
	}
	if err != nil {
		b.Fatal(err)
	}
	return ins[len(ins)-1]
}

func referenceCost(b *testing.B, in *problem.Instance) int64 {
	b.Helper()
	if v, ok := refCache.Load(in.Name); ok {
		return v.(int64)
	}
	ref := (&parallel.AsyncSA{
		Inst: in,
		SA:   sa.Config{Iterations: benchItersHigh, TempSamples: benchTemp},
		Ens:  parallel.Ensemble{Chains: 4, Seed: 99},
	}).MustSolve()
	refCache.Store(in.Name, ref.BestCost)
	return ref.BestCost
}

// benchQuality is the engine behind the Table II/IV and Figure 12/15
// benchmarks: run one parallel algorithm on the simulated GPU and report
// its %Δ against the CPU reference.
func benchQuality(b *testing.B, kind problem.Kind, useDPSO bool, iters int) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			in := benchInstance(b, kind, size)
			ref := referenceCost(b, in)
			var last float64
			for i := 0; i < b.N; i++ {
				var res core.Result
				if useDPSO {
					res = (&parallel.GPUDPSO{
						Inst: in, PSO: dpso.Config{Iterations: iters},
						Grid: benchGrid, Block: benchBlock, Seed: uint64(i) + 1,
					}).MustSolve()
				} else {
					res = (&parallel.GPUSA{
						Inst: in, SA: sa.Config{Iterations: iters, TempSamples: benchTemp},
						Grid: benchGrid, Block: benchBlock, Seed: uint64(i) + 1,
					}).MustSolve()
				}
				last = core.PercentDeviation(res.BestCost, ref)
			}
			b.ReportMetric(last, "%Δ")
		})
	}
}

// BenchmarkTableII_CDD_SA / …_DPSO reproduce Table II's quality columns.
func BenchmarkTableII_CDD_SA_low(b *testing.B)    { benchQuality(b, problem.CDD, false, benchItersLow) }
func BenchmarkTableII_CDD_SA_high(b *testing.B)   { benchQuality(b, problem.CDD, false, benchItersHigh) }
func BenchmarkTableII_CDD_DPSO_low(b *testing.B)  { benchQuality(b, problem.CDD, true, benchItersLow) }
func BenchmarkTableII_CDD_DPSO_high(b *testing.B) { benchQuality(b, problem.CDD, true, benchItersHigh) }

// BenchmarkFigure12_CDD_DeviationBars is the bar-chart view of Table II:
// one sub-benchmark per (algorithm, size) bar at the low budget.
func BenchmarkFigure12_CDD_DeviationBars(b *testing.B) {
	for _, algo := range []string{"SA", "DPSO"} {
		b.Run(algo, func(b *testing.B) {
			benchQuality(b, problem.CDD, algo == "DPSO", benchItersLow)
		})
	}
}

// BenchmarkTableIV_UCDDCP_* reproduce Table IV's quality columns.
func BenchmarkTableIV_UCDDCP_SA_low(b *testing.B) {
	benchQuality(b, problem.UCDDCP, false, benchItersLow)
}
func BenchmarkTableIV_UCDDCP_SA_high(b *testing.B) {
	benchQuality(b, problem.UCDDCP, false, benchItersHigh)
}
func BenchmarkTableIV_UCDDCP_DPSO_low(b *testing.B) {
	benchQuality(b, problem.UCDDCP, true, benchItersLow)
}
func BenchmarkTableIV_UCDDCP_DPSO_high(b *testing.B) {
	benchQuality(b, problem.UCDDCP, true, benchItersHigh)
}

// BenchmarkFigure15_UCDDCP_DeviationBars mirrors Figure 15.
func BenchmarkFigure15_UCDDCP_DeviationBars(b *testing.B) {
	for _, algo := range []string{"SA", "DPSO"} {
		b.Run(algo, func(b *testing.B) {
			benchQuality(b, problem.UCDDCP, algo == "DPSO", benchItersLow)
		})
	}
}

// benchSpeedup measures the serial CPU ensemble wall time against the
// parallel engine (goroutine-backed simulated GPU) wall time and reports
// both the measured and the device-model speedup — Tables III/V and
// Figures 13/17.
func benchSpeedup(b *testing.B, kind problem.Kind) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			in := benchInstance(b, kind, size)
			saCfg := sa.Config{Iterations: benchItersLow, TempSamples: benchTemp}
			var wallSpeedup, simSpeedup float64
			for i := 0; i < b.N; i++ {
				serial := (&parallel.AsyncSA{
					Inst: in, SA: saCfg,
					Ens: parallel.Ensemble{Chains: benchGrid * benchBlock, Seed: uint64(i) + 1},
				}).MustSolve()
				gpu := (&parallel.GPUSA{
					Inst: in, SA: saCfg,
					Grid: benchGrid, Block: benchBlock, Seed: uint64(i) + 1,
				}).MustSolve()
				wallSpeedup = serial.Elapsed.Seconds() / gpu.Elapsed.Seconds()
				simSpeedup = serial.Elapsed.Seconds() / gpu.SimSeconds
			}
			b.ReportMetric(wallSpeedup, "x-wall")
			b.ReportMetric(simSpeedup, "x-model")
		})
	}
}

// BenchmarkTableIII_CDD_Speedups and BenchmarkFigure13_CDD_SpeedupCurve
// reproduce the CDD speedup table/plot.
func BenchmarkTableIII_CDD_Speedups(b *testing.B)     { benchSpeedup(b, problem.CDD) }
func BenchmarkFigure13_CDD_SpeedupCurve(b *testing.B) { benchSpeedup(b, problem.CDD) }

// BenchmarkTableV_UCDDCP_Speedups and Figure 17 reproduce the UCDDCP
// speedups.
func BenchmarkTableV_UCDDCP_Speedups(b *testing.B)       { benchSpeedup(b, problem.UCDDCP) }
func BenchmarkFigure17_UCDDCP_SpeedupCurve(b *testing.B) { benchSpeedup(b, problem.UCDDCP) }

// benchRuntime reports the simulated device seconds of the GPU pipeline —
// the runtime curves of Figures 14 (CDD) and 16 (UCDDCP).
func benchRuntime(b *testing.B, kind problem.Kind, useDPSO bool) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			in := benchInstance(b, kind, size)
			var sim float64
			for i := 0; i < b.N; i++ {
				var res core.Result
				if useDPSO {
					res = (&parallel.GPUDPSO{
						Inst: in, PSO: dpso.Config{Iterations: benchItersLow},
						Grid: benchGrid, Block: benchBlock, Seed: 1,
					}).MustSolve()
				} else {
					res = (&parallel.GPUSA{
						Inst: in, SA: sa.Config{Iterations: benchItersLow, TempSamples: benchTemp},
						Grid: benchGrid, Block: benchBlock, Seed: 1,
					}).MustSolve()
				}
				sim = res.SimSeconds
			}
			b.ReportMetric(sim*1e3, "sim-ms")
		})
	}
}

func BenchmarkFigure14_CDD_Runtime_SA(b *testing.B)      { benchRuntime(b, problem.CDD, false) }
func BenchmarkFigure14_CDD_Runtime_DPSO(b *testing.B)    { benchRuntime(b, problem.CDD, true) }
func BenchmarkFigure16_UCDDCP_Runtime_SA(b *testing.B)   { benchRuntime(b, problem.UCDDCP, false) }
func BenchmarkFigure16_UCDDCP_Runtime_DPSO(b *testing.B) { benchRuntime(b, problem.UCDDCP, true) }

// BenchmarkFigure11_Surface sweeps threads × generations on the UCDDCP
// fitness pipeline and reports the simulated device milliseconds of each
// cell — Figure 11's runtime surface.
func BenchmarkFigure11_Surface(b *testing.B) {
	for _, threads := range []int{32, 64, 128} {
		for _, gens := range []int{50, 100} {
			b.Run(fmt.Sprintf("threads%d_gens%d", threads, gens), func(b *testing.B) {
				var sim float64
				for i := 0; i < b.N; i++ {
					points, err := harness.Figure11(context.Background(), harness.Fig11Config{
						Size: 30, Block: 32,
						Threads:     []int{threads},
						Generations: []int{gens},
						TempSamples: 100,
						Seed:        benchSeed,
					}, nil)
					if err != nil {
						b.Fatal(err)
					}
					sim = points[0].SimSeconds
				}
				b.ReportMetric(sim*1e3, "sim-ms")
			})
		}
	}
}

// BenchmarkEvaluatorCDD and BenchmarkEvaluatorUCDDCP time the inner-layer
// O(n) algorithms themselves (the per-thread fitness cost underlying all
// of the above).
func BenchmarkEvaluatorCDD(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			in := benchInstance(b, problem.CDD, size)
			eval := core.NewEvaluator(in)
			seq := problem.IdentitySequence(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eval.Cost(seq)
			}
		})
	}
}

// BenchmarkEvaluatorCDDDelta times the incremental propose path on the
// paper's Pert = 4 perturbation: each iteration applies a 4-cycle to the
// cached sequence, prices it with Propose in O(Δ), and undoes the move —
// the steady-state cost of one rejected SA step under the delta protocol.
func BenchmarkEvaluatorCDDDelta(b *testing.B) {
	for _, size := range []int{100, 1000} {
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			in := benchInstance(b, problem.CDD, size)
			de := core.NewDeltaEvaluator(in)
			rng := xrand.New(7)
			seq := problem.IdentitySequence(size)
			de.Reset(seq)
			cand := append([]int(nil), seq...)
			// Pre-draw the move positions so the loop times the propose
			// path, not the random generator.
			const moves = 512
			pos := make([][4]int, moves)
			for m := range pos {
				for j := range pos[m] {
					pos[m][j] = rng.Intn(size)
				}
			}
			var save [4]int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pm := &pos[i%moves]
				for j, q := range pm {
					save[j] = cand[q]
				}
				for j, q := range pm {
					cand[q] = save[(j+1)%len(pm)]
				}
				de.Propose(cand, pm[:])
				for j, q := range pm {
					cand[q] = save[j]
				}
			}
		})
	}
}

func BenchmarkEvaluatorUCDDCP(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			in := benchInstance(b, problem.UCDDCP, size)
			eval := core.NewEvaluator(in)
			seq := problem.IdentitySequence(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eval.Cost(seq)
			}
		})
	}
}

// batchBenchRows builds batch random permutation rows of length size.
// The generator is seeded per (kind, size) only, so the single-mode
// baseline and every batch mode of one sub-benchmark family score a
// prefix of the exact same row set — the reported ns/seq values are
// same-workload comparable.
func batchBenchRows(batch, size int) []int {
	rng := xrand.New(5)
	rows := make([]int, batch*size)
	for t := 0; t < batch; t++ {
		row := rows[t*size : (t+1)*size]
		for i := range row {
			row[i] = i
		}
		for i := size - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			row[i], row[j] = row[j], row[i]
		}
	}
	return rows
}

// BenchmarkBatchEvaluator times the batch evaluation core on row-major
// populations: B sequences per CostRows call through the
// pair-interleaved kernels, reporting ns/seq (per-sequence cost). The
// "single" mode scores the same rows one at a time through the
// per-sequence Evaluator — the like-for-like baseline the batch modes
// are judged against. The benchjson post-processor derives the
// batch-vs-single speedup from the two.
func BenchmarkBatchEvaluator(b *testing.B) {
	const baseRows = 16
	for _, kind := range []problem.Kind{problem.CDD, problem.UCDDCP} {
		for _, size := range []int{10, 100, 1000} {
			b.Run(fmt.Sprintf("%s/n%d/single", kind, size), func(b *testing.B) {
				in := benchInstance(b, kind, size)
				eval := core.NewEvaluator(in)
				rows := batchBenchRows(baseRows, size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for t := 0; t < baseRows; t++ {
						eval.Cost(rows[t*size : (t+1)*size])
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*baseRows), "ns/seq")
			})
			for _, batch := range []int{16, 256} {
				b.Run(fmt.Sprintf("%s/n%d/B%d", kind, size, batch), func(b *testing.B) {
					in := benchInstance(b, kind, size)
					be := core.NewBatchEvaluator(in)
					rows := batchBenchRows(batch, size)
					costs := make([]int64, batch)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						be.CostRows(rows, costs)
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(batch)), "ns/seq")
				})
			}
		}
	}
}

// benchGenomeInstance lifts a single-machine benchmark instance onto m
// machines (EARLYWORK is built directly: d = 0.6·ΣP/m, the generator's
// default restrictive band).
func benchGenomeInstance(b *testing.B, kind problem.Kind, size, m int) *problem.Instance {
	b.Helper()
	if kind == problem.EARLYWORK {
		base := benchInstance(b, problem.CDD, size)
		p := make([]int, size)
		var sum int64
		for i, j := range base.Jobs {
			p[i] = j.P
			sum += int64(j.P)
		}
		in, err := problem.NewEarlyWork(fmt.Sprintf("bench-ew-n%d-m%d", size, m), p, m, sum*6/int64(10*m))
		if err != nil {
			b.Fatal(err)
		}
		return in
	}
	in := benchInstance(b, kind, size).Clone()
	in.Machines = m
	return in
}

// BenchmarkEvaluatorGenome times the generalized full-evaluation path on
// parallel-machine instances: one delimiter genome of length n + m − 1
// split and scored per machine segment per Cost call. The m1 rows are
// the like-for-like single-machine baseline (plain sequence path for
// CDD, the late-work closed form for EARLYWORK), so the per-call price
// of the genome generalization is read directly off the table.
func BenchmarkEvaluatorGenome(b *testing.B) {
	for _, kind := range []problem.Kind{problem.CDD, problem.EARLYWORK} {
		for _, m := range []int{1, 2, 4} {
			for _, size := range []int{100, 1000} {
				b.Run(fmt.Sprintf("%s/m%d/n%d", kind, m, size), func(b *testing.B) {
					in := benchGenomeInstance(b, kind, size, m)
					eval := core.NewEvaluator(in)
					genome := problem.IdentitySequence(in.GenomeLen())
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						eval.Cost(genome)
					}
				})
			}
		}
	}
}

// BenchmarkEvaluatorGenomeDelta times the machine-aware incremental
// path: each iteration swaps two adjacent genome positions (the
// worst case touches two machine segments) and prices the move with
// Propose, which rescores only the machines intersecting the window.
func BenchmarkEvaluatorGenomeDelta(b *testing.B) {
	for _, m := range []int{2, 4} {
		for _, size := range []int{100, 1000} {
			b.Run(fmt.Sprintf("CDD/m%d/n%d", m, size), func(b *testing.B) {
				in := benchGenomeInstance(b, problem.CDD, size, m)
				de := core.NewMachineDeltaEvaluator(in)
				L := in.GenomeLen()
				genome := problem.IdentitySequence(L)
				de.Reset(genome)
				cand := append([]int(nil), genome...)
				rng := xrand.New(7)
				const moves = 512
				pos := make([]int, moves)
				for i := range pos {
					pos[i] = rng.Intn(L - 1)
				}
				window := make([]int, 2)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q := pos[i%moves]
					cand[q], cand[q+1] = cand[q+1], cand[q]
					window[0], window[1] = q, q+1
					de.Propose(cand, window)
					cand[q], cand[q+1] = cand[q+1], cand[q]
				}
			})
		}
	}
}

// BenchmarkSolvePublicAPI times the end-to-end public entry point with
// the (scaled-down) paper defaults, the number a library user sees.
func BenchmarkSolvePublicAPI(b *testing.B) {
	in := duedate.PaperExample(duedate.CDD)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := duedate.Solve(in, duedate.Options{
			Grid: 1, Block: 16, Iterations: 50, TempSamples: 100,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
