#!/usr/bin/env bash
# Serve-path allocation guard: run the steady-state serve benchmarks
# (BenchmarkServeSolveAllocs / BenchmarkServeBatchAllocs) with -benchmem
# and fail if any reports more allocs/op than the checked-in threshold
# in scripts/serve-allocs-threshold. The benchmarks drive identical
# resubmissions through ServeHTTP, so they measure exactly the wire-hit
# fast path the pools and the wire cache are meant to keep
# allocation-free; a regression here means a pooled buffer stopped being
# reused or a new per-request allocation crept into the handlers.
set -eu

cd "$(dirname "$0")/.."

THRESHOLD="$(cat scripts/serve-allocs-threshold)"
OUT="$(go test -run '^$' -bench 'BenchmarkServe(Solve|Batch)Allocs' \
	-benchmem -benchtime 2000x ./internal/server/)"
echo "$OUT"

echo "$OUT" | awk -v max="$THRESHOLD" '
	/allocs\/op/ {
		for (i = 2; i < NF; i++) {
			if ($(i + 1) == "allocs/op" && $i + 0 > max + 0) {
				printf "FAIL: %s reports %s allocs/op (threshold %s)\n", $1, $i, max
				bad = 1
			}
		}
	}
	END { exit bad }
' || { echo "serve-allocs-guard: allocation regression detected" >&2; exit 1; }

echo "serve-allocs-guard: all serve benchmarks within $THRESHOLD allocs/op"
