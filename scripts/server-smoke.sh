#!/usr/bin/env bash
# Smoke-test the duedated daemon end to end: build it, start it on an
# ephemeral port, post one CDD and one UCDDCP request from testdata/,
# assert 200 + a finite cost (and a cache hit on resubmission), then
# SIGTERM it and require a clean graceful drain (exit 0).
set -eu

cd "$(dirname "$0")/.."
ADDR="127.0.0.1:${DUEDATED_PORT:-8337}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/duedated"

go build -o "$BIN" ./cmd/duedated
"$BIN" -addr "$ADDR" -pool 2 -queue 16 &
PID=$!
cleanup() { kill "$PID" 2>/dev/null || true; }
trap cleanup EXIT

# Wait for the listener.
for _ in $(seq 1 100); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || { echo "FAIL: healthz never came up"; exit 1; }

# The pairings endpoint must enumerate the registry with its capability
# matrix (kinds + parallel-machine support per pairing).
pairings=$(curl -sf "$BASE/v1/pairings")
echo "$pairings" | grep -q '"algorithm": "SA"' \
  || { echo "FAIL: /v1/pairings missing SA"; exit 1; }
echo "$pairings" | grep -q '"EARLYWORK"' \
  || { echo "FAIL: /v1/pairings missing the kind capability list"; exit 1; }
echo "$pairings" | grep -q '"machines": true' \
  || { echo "FAIL: /v1/pairings missing the machines capability"; exit 1; }

# Every rejection speaks the unified envelope with its stable code.
body=$(curl -s -X POST --data-binary '{"instance":' "$BASE/v1/solve")
echo "$body" | grep -q '"code": "invalid_request"' \
  || { echo "FAIL: malformed body lacks code invalid_request: $body"; exit 1; }
body=$(curl -s "$BASE/v1/nowhere")
echo "$body" | grep -q '"code": "not_found"' \
  || { echo "FAIL: unknown path lacks code not_found: $body"; exit 1; }
body=$(curl -s -X DELETE "$BASE/v1/solve")
echo "$body" | grep -q '"code": "method_not_allowed"' \
  || { echo "FAIL: wrong method lacks code method_not_allowed: $body"; exit 1; }

for f in testdata/server/solve_cdd.json testdata/server/solve_ucddcp.json; do
  body=$(curl -sf -X POST -H 'Content-Type: application/json' --data-binary "@$f" "$BASE/v1/solve") \
    || { echo "FAIL: POST $f returned non-200"; exit 1; }
  # A finite cost is a plain JSON integer (json.Marshal rejects NaN/Inf).
  echo "$body" | grep -Eq '"cost": -?[0-9]+' \
    || { echo "FAIL: no finite cost for $f: $body"; exit 1; }
  echo "OK: $f -> $(echo "$body" | grep -E '"cost"' | head -1 | tr -d ' ,')"
done

# Resubmitting the CDD request must hit the result cache.
curl -sf -X POST --data-binary @testdata/server/solve_cdd.json "$BASE/v1/solve" \
  | grep -Eq '"cached": true' || { echo "FAIL: resubmission missed the cache"; exit 1; }
curl -sf "$BASE/metrics" | grep -Eq '"cacheHits": [1-9]' \
  || { echo "FAIL: /metrics shows no cache hit"; exit 1; }

# Graceful drain: SIGTERM must exit 0 after completing in-flight work.
kill -TERM "$PID"
if ! wait "$PID"; then
  echo "FAIL: duedated did not drain cleanly on SIGTERM"
  exit 1
fi
trap - EXIT
echo "server-smoke: PASS"
