#!/usr/bin/env bash
# Smoke-test the duedated async job API end to end against a live
# daemon: submit a job (202 + Location), poll it to done, check the
# result matches a synchronous solve via the shared cache, stream the
# SSE events endpoint to its terminal result event, cancel a fresh job,
# and require the job gauges in /metrics — then SIGTERM and require a
# clean drain.
set -eu

cd "$(dirname "$0")/.."
ADDR="127.0.0.1:${DUEDATED_PORT:-8338}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/duedated"
REQ=testdata/server/solve_cdd.json

go build -o "$BIN" ./cmd/duedated
"$BIN" -addr "$ADDR" -pool 2 -queue 16 -jobs 64 -job-grace 2s &
PID=$!
cleanup() { kill "$PID" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || { echo "FAIL: healthz never came up"; exit 1; }

# Submit: 202 with a job id and a Location header.
headers=$(mktemp)
submit=$(curl -s -D "$headers" -X POST -H 'Content-Type: application/json' \
  --data-binary "@$REQ" "$BASE/v1/jobs")
grep -q "^HTTP/1.1 202" "$headers" || { echo "FAIL: submit not 202: $(head -1 "$headers")"; exit 1; }
grep -qi "^Location: /v1/jobs/" "$headers" || { echo "FAIL: submit lacks Location header"; exit 1; }
id=$(echo "$submit" | grep -oE '"id": "[^"]+"' | head -1 | cut -d'"' -f4)
[ -n "$id" ] || { echo "FAIL: no job id in $submit"; exit 1; }
echo "OK: submitted job $id"

# Poll to a terminal state.
state=""
for _ in $(seq 1 100); do
  view=$(curl -sf "$BASE/v1/jobs/$id")
  state=$(echo "$view" | grep -oE '"state": "[^"]+"' | head -1 | cut -d'"' -f4)
  case "$state" in done|failed|cancelled) break ;; esac
  sleep 0.1
done
[ "$state" = "done" ] || { echo "FAIL: job ended in state '$state': $view"; exit 1; }
job_cost=$(echo "$view" | grep -E '"cost"' | head -1 | grep -oE '[-0-9]+')
echo "OK: job done, cost $job_cost"

# The completed async result populates the shared cache: the same body
# through /v1/solve is a cache hit with the same cost.
sync=$(curl -sf -X POST --data-binary "@$REQ" "$BASE/v1/solve")
echo "$sync" | grep -Eq '"cached": true' || { echo "FAIL: sync resubmission missed the cache"; exit 1; }
sync_cost=$(echo "$sync" | grep -E '"cost"' | head -1 | grep -oE '[-0-9]+')
[ "$job_cost" = "$sync_cost" ] || { echo "FAIL: async cost $job_cost != sync cost $sync_cost"; exit 1; }
echo "OK: shared cache, costs agree"

# SSE: the events stream of the finished job replays the state and ends
# with the terminal result event.
events=$(curl -sf -N --max-time 10 "$BASE/v1/jobs/$id/events" || true)
echo "$events" | grep -q "^event: result" || { echo "FAIL: no terminal result event: $events"; exit 1; }
echo "OK: SSE stream delivered the result event"

# Cancel: a deliberately huge-budget job accepts DELETE mid-solve and
# turns cancelled (or finishes first on a fast box — both are terminal
# and idempotent).
long='{"instance":{"name":"smoke-cancel","kind":"CDD","dueDate":40,"jobs":['
for i in $(seq 1 20); do
  long="$long{\"p\":$((i % 7 + 1)),\"alpha\":$((i % 5 + 1)),\"beta\":$((i % 3 + 1))},"
done
long="${long%,}]},\"engine\":\"cpu-serial\",\"iterations\":20000000,\"grid\":1,\"block\":1,\"seed\":99,\"noCache\":true}"
id2=$(curl -sf -X POST --data-binary "$long" "$BASE/v1/jobs" \
  | grep -oE '"id": "[^"]+"' | head -1 | cut -d'"' -f4)
[ -n "$id2" ] || { echo "FAIL: second submit failed"; exit 1; }
del=$(curl -sf -X DELETE "$BASE/v1/jobs/$id2")
state2=$(echo "$del" | grep -oE '"state": "[^"]+"' | head -1 | cut -d'"' -f4)
case "$state2" in cancelled|done) echo "OK: DELETE answered terminal state $state2" ;;
  *) echo "FAIL: DELETE answered state '$state2': $del"; exit 1 ;;
esac

# Unknown job ids answer the enveloped 404.
curl -s "$BASE/v1/jobs/nope" | grep -q '"code": "not_found"' \
  || { echo "FAIL: unknown job lacks code not_found"; exit 1; }

# The job gauges surface in /metrics.
metrics=$(curl -sf "$BASE/metrics")
echo "$metrics" | grep -Eq '"submitted": [1-9]' || { echo "FAIL: /metrics lacks job gauges: $metrics"; exit 1; }
echo "$metrics" | grep -Eq '"done": [1-9]' || { echo "FAIL: /metrics shows no done job"; exit 1; }
echo "OK: job gauges in /metrics"

# Graceful drain with the job store in play.
kill -TERM "$PID"
if ! wait "$PID"; then
  echo "FAIL: duedated did not drain cleanly on SIGTERM"
  exit 1
fi
trap - EXIT
echo "jobs-smoke: PASS"
