package duedate

import (
	"fmt"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/dpso"
	"repro/internal/es"
	"repro/internal/parallel"
	"repro/internal/problem"
	"repro/internal/sa"
	"repro/internal/ta"
	"repro/internal/ucddcp"
	"repro/internal/xrand"
)

// Algorithm selects the sequence-layer metaheuristic.
type Algorithm int

const (
	// SA is Simulated Annealing (the paper's best performer).
	SA Algorithm = iota
	// DPSO is the Discrete Particle Swarm Optimization of Pan et al.
	DPSO
	// TA is Threshold Accepting (CPU baseline family of [18]).
	TA
	// ES is a (μ+λ) Evolution Strategy (CPU baseline family of [18]).
	ES
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case SA:
		return "SA"
	case DPSO:
		return "DPSO"
	case TA:
		return "TA"
	case ES:
		return "ES"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Engine selects where the ensemble runs.
type Engine int

const (
	// EngineGPU runs the four-kernel pipeline on the simulated CUDA
	// device (the paper's implementation). Supported for SA and DPSO.
	EngineGPU Engine = iota
	// EngineCPUParallel runs the same ensemble across host goroutines.
	EngineCPUParallel
	// EngineCPUSerial runs the ensemble on one goroutine — the CPU
	// baseline of the speedup experiments.
	EngineCPUSerial
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineGPU:
		return "gpu"
	case EngineCPUParallel:
		return "cpu-parallel"
	case EngineCPUSerial:
		return "cpu-serial"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Options configures Solve. The zero value reproduces the paper's best
// configuration: GPU-simulated asynchronous SA, 4 blocks × 192 threads,
// 1000 iterations, cooling 0.88, Pert 4, T₀ from 5000 samples.
type Options struct {
	// Algorithm selects the metaheuristic (default SA).
	Algorithm Algorithm
	// Engine selects the execution backend (default EngineGPU). TA and
	// ES only support the CPU engines.
	Engine Engine
	// Iterations is the per-chain iteration budget (default 1000).
	Iterations int
	// Grid and Block set the GPU geometry (default 4 × 192); for CPU
	// engines Grid·Block is the ensemble size.
	Grid, Block int
	// Seed derives all RNG streams (default 1).
	Seed uint64
	// Cooling overrides SA's exponential factor μ (default 0.88).
	Cooling float64
	// Pert overrides the perturbation size (default 4).
	Pert int
	// TempSamples overrides the T₀ estimation sample count (default
	// 5000).
	TempSamples int
	// Persistent selects the persistent-kernel GPU engine for SA: one
	// launch runs the whole annealing loop instead of four kernels per
	// iteration (identical results, lower launch overhead).
	Persistent bool
}

func (o Options) normalized() Options {
	if o.Grid <= 0 {
		o.Grid = 4
	}
	if o.Block <= 0 {
		o.Block = 192
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Solve optimizes the instance with the selected algorithm and engine and
// returns the best solution found. The reported cost is always the exact
// objective of the returned sequence.
func Solve(in *Instance, opts Options) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	opts = opts.normalized()
	chains := opts.Grid * opts.Block

	saCfg := sa.Config{
		Iterations:  opts.Iterations,
		Cooling:     opts.Cooling,
		Pert:        opts.Pert,
		TempSamples: opts.TempSamples,
	}
	psoCfg := dpso.Config{Iterations: opts.Iterations}

	switch opts.Algorithm {
	case SA:
		switch opts.Engine {
		case EngineGPU:
			if opts.Persistent {
				return (&parallel.PersistentGPUSA{Inst: in, SA: saCfg, Grid: opts.Grid, Block: opts.Block, Seed: opts.Seed}).Solve(), nil
			}
			return (&parallel.GPUSA{Inst: in, SA: saCfg, Grid: opts.Grid, Block: opts.Block, Seed: opts.Seed}).Solve(), nil
		default:
			return (&parallel.AsyncSA{
				Inst: in, SA: saCfg,
				Ens:      parallel.Ensemble{Chains: chains, Seed: opts.Seed},
				Parallel: opts.Engine == EngineCPUParallel,
			}).Solve(), nil
		}
	case DPSO:
		switch opts.Engine {
		case EngineGPU:
			return (&parallel.GPUDPSO{Inst: in, PSO: psoCfg, Grid: opts.Grid, Block: opts.Block, Seed: opts.Seed}).Solve(), nil
		default:
			return (&parallel.ParallelDPSO{
				Inst: in, PSO: psoCfg,
				Ens:      parallel.Ensemble{Chains: chains, Seed: opts.Seed},
				Parallel: opts.Engine == EngineCPUParallel,
			}).Solve(), nil
		}
	case TA:
		if opts.Engine == EngineGPU {
			return Result{}, fmt.Errorf("duedate: TA supports only the CPU engines")
		}
		return runBaselineEnsemble(in, chains, opts, func(eval core.Evaluator, rng *xrand.XORWOW) baselineChain {
			return ta.NewChain(ta.Config{Iterations: opts.Iterations, TempSamples: opts.TempSamples}, eval, rng)
		}), nil
	case ES:
		if opts.Engine == EngineGPU {
			return Result{}, fmt.Errorf("duedate: ES supports only the CPU engines")
		}
		return runBaselineEnsemble(in, chains, opts, func(eval core.Evaluator, rng *xrand.XORWOW) baselineChain {
			cfg := es.DefaultConfig()
			if opts.Iterations > 0 {
				cfg.Generations = opts.Iterations
			}
			return es.New(cfg, eval, rng)
		}), nil
	default:
		return Result{}, fmt.Errorf("duedate: unknown algorithm %v", opts.Algorithm)
	}
}

// baselineChain is the common surface of the TA and ES baselines.
type baselineChain interface {
	Run() int64
	Best() ([]int, int64)
	Evaluations() int64
}

// runBaselineEnsemble executes `chains` baseline chains serially and
// reduces to the best.
func runBaselineEnsemble(in *Instance, chains int, opts Options, mk func(core.Evaluator, *xrand.XORWOW) baselineChain) Result {
	res := Result{BestCost: 1 << 62}
	for c := 0; c < chains; c++ {
		eval := core.NewEvaluator(in)
		chain := mk(eval, xrand.NewStream(opts.Seed, uint64(c)))
		chain.Run()
		seq, cost := chain.Best()
		res.Evaluations += chain.Evaluations()
		if cost < res.BestCost {
			res.BestCost = cost
			res.BestSeq = append([]int(nil), seq...)
		}
	}
	res.Iterations = opts.Iterations
	return res
}

// OptimizeSequence runs only the second layer: the exact O(n) linear
// algorithm that optimally times (and, for UCDDCP, compresses) the given
// fixed job sequence. It returns the resulting schedule and its exact
// cost.
func OptimizeSequence(in *Instance, seq []int) (Schedule, int64, error) {
	if err := in.Validate(); err != nil {
		return Schedule{}, 0, err
	}
	if len(seq) != in.N() || !problem.IsPermutation(seq) {
		return Schedule{}, 0, fmt.Errorf("duedate: seq must be a permutation of 0..%d", in.N()-1)
	}
	if in.Kind == problem.UCDDCP {
		r := ucddcp.OptimizeSequence(in, seq)
		return Schedule{Seq: append([]int(nil), seq...), Start: r.Start, X: r.X}, r.Cost, nil
	}
	r := cdd.OptimizeSequence(in, seq)
	return Schedule{Seq: append([]int(nil), seq...), Start: r.Start}, r.Cost, nil
}

// Cost evaluates the optimal penalty of a sequence without materializing
// the schedule — the fitness function of the paper's metaheuristics.
func Cost(in *Instance, seq []int) (int64, error) {
	_, c, err := OptimizeSequence(in, seq)
	return c, err
}
