package duedate

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/problem"
	"repro/internal/ucddcp"
)

// Sentinel errors of the facade. Every error returned by SolveContext,
// Solve and OptimizeSequence that stems from caller input wraps one of
// these, so callers branch with errors.Is instead of string matching.
var (
	// ErrUnsupportedPairing reports an algorithm×engine combination with
	// no registered driver (e.g. TA or ES on the GPU engine). The
	// message lists the engines registered for the algorithm.
	ErrUnsupportedPairing = errors.New("unsupported algorithm/engine pairing")
	// ErrInvalidOptions reports Options that fail validation (negative
	// geometry or worker counts, unparseable algorithm/engine names).
	ErrInvalidOptions = errors.New("invalid options")
	// ErrInvalidSequence reports a sequence that is not a permutation of
	// the instance's job indices.
	ErrInvalidSequence = errors.New("invalid sequence")
)

// Algorithm selects the sequence-layer metaheuristic.
type Algorithm int

const (
	// SA is Simulated Annealing (the paper's best performer).
	SA Algorithm = iota
	// DPSO is the Discrete Particle Swarm Optimization of Pan et al.
	DPSO
	// TA is Threshold Accepting (CPU baseline family of [18]).
	TA
	// ES is a (μ+λ) Evolution Strategy (CPU baseline family of [18]).
	ES
	// ExactDP is the pseudo-polynomial exact layer (internal/exact
	// SolveDP): not a metaheuristic — it returns a proven optimum with
	// Result.Optimal set, or a typed error when the instance is outside
	// its domain or state budget. Supports single-machine agreeable CDD
	// and EARLYWORK on any machine count, on the cpu-serial engine only.
	ExactDP
	// Auto is the self-tuning portfolio meta-driver (internal/auto): it
	// routes DP-eligible instances to EXACT-DP for a free optimality
	// certificate, otherwise consults the checked-in calibration table
	// for the predicted-best static pairing (bit-identical to running
	// that pairing directly with the same seed), and — when a Deadline
	// is set — races the top calibration candidates under the shared
	// budget, culling losers at a checkpoint. Result.Metrics records the
	// pick and, for races, the per-candidate phases and the winner.
	Auto
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case SA:
		return "SA"
	case DPSO:
		return "DPSO"
	case TA:
		return "TA"
	case ES:
		return "ES"
	case ExactDP:
		return "EXACT-DP"
	case Auto:
		return "AUTO"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Engine selects where the ensemble runs.
type Engine int

const (
	// EngineGPU runs the four-kernel pipeline on the simulated CUDA
	// device (the paper's implementation). Supported for SA and DPSO.
	EngineGPU Engine = iota
	// EngineCPUParallel runs the same ensemble across host goroutines.
	EngineCPUParallel
	// EngineCPUSerial runs the ensemble on one goroutine — the CPU
	// baseline of the speedup experiments.
	EngineCPUSerial
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineGPU:
		return "gpu"
	case EngineCPUParallel:
		return "cpu-parallel"
	case EngineCPUSerial:
		return "cpu-serial"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Options configures Solve. The zero value reproduces the paper's best
// configuration: GPU-simulated asynchronous SA, 4 blocks × 192 threads,
// 1000 iterations, cooling 0.88, Pert 4, T₀ from 5000 samples.
type Options struct {
	// Algorithm selects the metaheuristic (default SA).
	Algorithm Algorithm
	// Engine selects the execution backend (default EngineGPU). TA and
	// ES only support the CPU engines.
	Engine Engine
	// Iterations is the per-chain iteration budget (default 1000).
	Iterations int
	// Grid and Block set the GPU geometry (default 4 × 192); for CPU
	// engines Grid·Block is the ensemble size. Negative values are
	// rejected (only zero means "use the default").
	Grid, Block int
	// Seed derives all RNG streams. Zero is a sentinel for "unset" and
	// is rewritten to 1, so Seed 0 and Seed 1 produce identical runs —
	// pass distinct nonzero seeds for distinct streams.
	Seed uint64
	// Cooling overrides SA's exponential factor μ (default 0.88).
	Cooling float64
	// Pert overrides the perturbation size (default 4).
	Pert int
	// TempSamples overrides the T₀ estimation sample count (default
	// 5000).
	TempSamples int
	// Persistent selects the persistent-kernel GPU engine for SA: one
	// launch runs the whole annealing loop instead of four kernels per
	// iteration (identical results, lower launch overhead).
	Persistent bool
	// Workers bounds the host goroutines of EngineCPUParallel (default
	// GOMAXPROCS). Serial and GPU engines ignore it.
	Workers int
	// Deadline, when nonzero, is the wall-clock cutoff: the engine stops
	// at its next chain/level/iteration boundary past the deadline and
	// returns the best-so-far with Result.Interrupted set.
	Deadline time.Time
	// Progress, when non-nil, receives best-so-far snapshots during the
	// solve (see core.ProgressFunc for the emission contract).
	Progress ProgressFunc
	// Metrics selects the instrumentation level (default MetricsOff —
	// Result.Metrics stays nil and the engines skip all collection).
	// MetricsCounters adds the per-chain counters and ensemble
	// aggregates; MetricsKernels additionally times every phase/kernel.
	Metrics MetricsLevel
}

func (o Options) normalized() (Options, error) {
	if o.Grid < 0 {
		return o, fmt.Errorf("duedate: %w: negative Grid %d (zero selects the default)", ErrInvalidOptions, o.Grid)
	}
	if o.Block < 0 {
		return o, fmt.Errorf("duedate: %w: negative Block %d (zero selects the default)", ErrInvalidOptions, o.Block)
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("duedate: %w: negative Workers %d (zero selects GOMAXPROCS)", ErrInvalidOptions, o.Workers)
	}
	if o.Algorithm == Auto {
		// The meta-driver registers exactly one pairing (AUTO on
		// cpu-parallel) and dispatches to whatever engine its calibration
		// or race selects, so any requested engine is accepted and folded
		// onto the canonical registry key.
		o.Engine = EngineCPUParallel
	}
	if o.Grid == 0 {
		o.Grid = 4
	}
	if o.Block == 0 {
		o.Block = 192
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o, nil
}

// budget translates the option bounds into the engine-layer budget.
func (o Options) budget() core.Budget {
	return core.Budget{Deadline: o.Deadline}
}

// Driver builds a configured solver for one algorithm×engine pairing.
// The returned solver must treat the instance passed to Solve as
// authoritative (Options carries no instance).
type Driver func(opts Options) core.Solver

// driverKey identifies one algorithm×engine pairing in the registry.
type driverKey struct {
	Algorithm Algorithm
	Engine    Engine
}

// driverEntry is one registered driver with its capability surface.
type driverEntry struct {
	driver   Driver
	kinds    []Kind
	machines bool
}

// registry maps pairings to their drivers. Drivers self-register from
// init (see drivers.go); the facade performs a lookup, never a switch, so
// adding a pairing requires no edits here.
var registry = map[driverKey]driverEntry{}

// allKinds is the full problem-kind capability every evaluator-backed
// driver supports; Pairings hands out copies.
var allKinds = []Kind{CDD, UCDDCP, EARLYWORK}

// RegisterDriver installs the driver for an algorithm×engine pairing
// with the full capability surface: every problem kind and parallel
// machines. That is the honest default for drivers built on
// core.NewEvaluator / the delimiter-genome codec (all built-in drivers
// are); a driver with a narrower surface registers through
// RegisterDriverCaps instead. Registering the same pairing twice panics
// — drivers own their pairings exclusively.
func RegisterDriver(a Algorithm, e Engine, d Driver) {
	RegisterDriverCaps(a, e, d, allKinds, true)
}

// RegisterDriverCaps installs a driver together with its declared
// capability surface: the problem kinds it can evaluate and whether it
// handles parallel-machine (Machines > 1) delimiter genomes. The
// capabilities are enumerated live by Pairings, so clients (and the
// duedated /v1/pairings endpoint) can route instances without
// trial-and-error ErrUnsupportedPairing probes.
func RegisterDriverCaps(a Algorithm, e Engine, d Driver, kinds []Kind, machines bool) {
	key := driverKey{a, e}
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("duedate: driver for %v on %v registered twice", a, e))
	}
	registry[key] = driverEntry{driver: d, kinds: append([]Kind(nil), kinds...), machines: machines}
}

// SolveContext optimizes the instance with the selected algorithm and
// engine and returns the best solution found. The reported cost is always
// the exact objective of the returned sequence. Cancelling ctx (or
// passing Options.Deadline) stops the engine cooperatively at its next
// chain/level/iteration boundary: the result still carries a valid
// best-so-far sequence, with Result.Interrupted set.
func SolveContext(ctx context.Context, in *Instance, opts Options) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	opts, err := opts.normalized()
	if err != nil {
		return Result{}, err
	}
	e, err := lookupDriver(opts)
	if err != nil {
		return Result{}, err
	}
	return e.driver(opts).Solve(ctx, in)
}

// lookupDriver resolves the registered driver for the (normalized)
// options' pairing.
func lookupDriver(opts Options) (driverEntry, error) {
	e, ok := registry[driverKey{opts.Algorithm, opts.Engine}]
	if !ok {
		return driverEntry{}, fmt.Errorf("duedate: %w: %v is not supported on the %v engine (registered engines for %v: %s)",
			ErrUnsupportedPairing, opts.Algorithm, opts.Engine, opts.Algorithm, registeredEngines(opts.Algorithm))
	}
	return e, nil
}

// ValidateOptions checks opts exactly the way SolveContext would —
// option normalization plus the registry pairing lookup — without
// running a solve. Serving layers use it to reject a doomed submission
// at admission time (an async job answers its 400/422 at submit instead
// of surfacing the same error on a later poll); a nil return guarantees
// SolveContext with these opts will not fail on the options themselves.
func ValidateOptions(opts Options) error {
	opts, err := opts.normalized()
	if err != nil {
		return err
	}
	_, err = lookupDriver(opts)
	return err
}

// registeredEngines renders the engines registered for an algorithm,
// sorted, for the ErrUnsupportedPairing message.
func registeredEngines(a Algorithm) string {
	var names []string
	for _, p := range Pairings() {
		if p.Algorithm == a {
			names = append(names, p.Engine.String())
		}
	}
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, ", ")
}

// Pairing is one registered algorithm×engine combination together with
// its capability surface, as declared at registration.
type Pairing struct {
	// Algorithm and Engine name the combination.
	Algorithm Algorithm
	Engine    Engine
	// Kinds lists the problem kinds the driver evaluates (every built-in
	// metaheuristic supports all three; the exact EXACT-DP layer declares
	// only the kinds it has a dynamic program for).
	Kinds []Kind
	// Machines reports parallel-machine (Instance.Machines > 1)
	// delimiter-genome support.
	Machines bool
}

// Pairings returns every registered algorithm×engine combination with
// its capabilities, sorted by algorithm then engine — the
// supported-combo enumeration for tests, CLIs and the serving layer,
// replacing hardcoded lists. The Kinds slices are copies; callers may
// keep them.
func Pairings() []Pairing {
	out := make([]Pairing, 0, len(registry))
	for k, e := range registry {
		out = append(out, Pairing{
			Algorithm: k.Algorithm, Engine: k.Engine,
			Kinds: append([]Kind(nil), e.kinds...), Machines: e.machines,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Algorithm != out[j].Algorithm {
			return out[i].Algorithm < out[j].Algorithm
		}
		return out[i].Engine < out[j].Engine
	})
	return out
}

// Solve is SolveContext with a background context, for callers that need
// neither cancellation nor a deadline.
func Solve(in *Instance, opts Options) (Result, error) {
	return SolveContext(context.Background(), in, opts)
}

// OptimizeSequence runs only the second layer: the exact O(n) linear
// algorithm that optimally times (and, for UCDDCP, compresses) the given
// fixed solution. For single-machine instances seq is a job sequence; for
// parallel-machine and early-work instances it is a delimiter genome of
// length GenomeLen (jobs plus machine separators, see Instance.GenomeLen)
// and the schedule carries the per-job machine assignment and per-machine
// starts. It returns the resulting schedule and its exact cost.
func OptimizeSequence(in *Instance, seq []int) (Schedule, int64, error) {
	if err := in.Validate(); err != nil {
		return Schedule{}, 0, err
	}
	if len(seq) != in.GenomeLen() || !problem.IsPermutation(seq) {
		return Schedule{}, 0, fmt.Errorf("duedate: %w: seq must be a permutation of 0..%d", ErrInvalidSequence, in.GenomeLen()-1)
	}
	if in.GenomeCoded() {
		sched := core.GenomeSchedule(in, append([]int(nil), seq...))
		return sched, core.NewEvaluator(in).Cost(seq), nil
	}
	if in.Kind == problem.UCDDCP {
		r := ucddcp.OptimizeSequence(in, seq)
		return Schedule{Seq: append([]int(nil), seq...), Start: r.Start, X: r.X}, r.Cost, nil
	}
	r := cdd.OptimizeSequence(in, seq)
	return Schedule{Seq: append([]int(nil), seq...), Start: r.Start}, r.Cost, nil
}

// Cost evaluates the optimal penalty of a solution without materializing
// the schedule — the fitness function of the paper's metaheuristics.
func Cost(in *Instance, seq []int) (int64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if len(seq) != in.GenomeLen() || !problem.IsPermutation(seq) {
		return 0, fmt.Errorf("duedate: %w: seq must be a permutation of 0..%d", ErrInvalidSequence, in.GenomeLen()-1)
	}
	return core.NewEvaluator(in).Cost(seq), nil
}
