package duedate_test

import (
	"errors"
	"flag"
	"strings"
	"testing"

	duedate "repro"
)

// Algorithm and Engine must satisfy flag.Value (Set on the pointer,
// String promoted from the value receiver), so CLIs bind flags straight
// to the enums.
var (
	_ flag.Value = (*duedate.Algorithm)(nil)
	_ flag.Value = (*duedate.Engine)(nil)
)

// allAlgorithms and allEngines enumerate every declared value for the
// round-trip property tests.
var allAlgorithms = []duedate.Algorithm{duedate.SA, duedate.DPSO, duedate.TA, duedate.ES, duedate.ExactDP}
var allEngines = []duedate.Engine{duedate.EngineGPU, duedate.EngineCPUParallel, duedate.EngineCPUSerial}

// TestParseRoundTripsString: Parse∘String must be the identity for every
// declared value, case-insensitively and with surrounding whitespace.
func TestParseRoundTripsString(t *testing.T) {
	for _, a := range allAlgorithms {
		for _, form := range []string{a.String(), strings.ToLower(a.String()), " " + a.String() + " "} {
			got, err := duedate.ParseAlgorithm(form)
			if err != nil {
				t.Errorf("ParseAlgorithm(%q): %v", form, err)
				continue
			}
			if got != a {
				t.Errorf("ParseAlgorithm(%q) = %v, want %v", form, got, a)
			}
		}
	}
	for _, e := range allEngines {
		for _, form := range []string{e.String(), strings.ToUpper(e.String()), " " + e.String() + "\t"} {
			got, err := duedate.ParseEngine(form)
			if err != nil {
				t.Errorf("ParseEngine(%q): %v", form, err)
				continue
			}
			if got != e {
				t.Errorf("ParseEngine(%q) = %v, want %v", form, got, e)
			}
		}
	}
}

// TestParseEngineShorthands: the CLI aliases map onto the canonical
// engines.
func TestParseEngineShorthands(t *testing.T) {
	cases := map[string]duedate.Engine{
		"cpu":    duedate.EngineCPUParallel,
		"serial": duedate.EngineCPUSerial,
	}
	for alias, want := range cases {
		got, err := duedate.ParseEngine(alias)
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", alias, err)
		}
		if got != want {
			t.Errorf("ParseEngine(%q) = %v, want %v", alias, got, want)
		}
	}
}

// TestParseErrorsWrapInvalidOptions: unknown names must report
// ErrInvalidOptions so flag-parsing failures and option validation share
// one errors.Is branch.
func TestParseErrorsWrapInvalidOptions(t *testing.T) {
	if _, err := duedate.ParseAlgorithm("annealing"); !errors.Is(err, duedate.ErrInvalidOptions) {
		t.Errorf("ParseAlgorithm error = %v, want ErrInvalidOptions", err)
	}
	if _, err := duedate.ParseEngine("tpu"); !errors.Is(err, duedate.ErrInvalidOptions) {
		t.Errorf("ParseEngine error = %v, want ErrInvalidOptions", err)
	}
}

// TestFlagValueSet: Set stores parsed values and surfaces parse errors,
// exactly as the flag package will drive it.
func TestFlagValueSet(t *testing.T) {
	algo := duedate.SA
	if err := algo.Set("dpso"); err != nil || algo != duedate.DPSO {
		t.Errorf("Set(\"dpso\") → %v, %v", algo, err)
	}
	if err := algo.Set("nope"); err == nil {
		t.Error("Set accepted an unknown algorithm")
	} else if algo != duedate.DPSO {
		t.Error("failed Set clobbered the previous value")
	}
	engine := duedate.EngineGPU
	if err := engine.Set("serial"); err != nil || engine != duedate.EngineCPUSerial {
		t.Errorf("Set(\"serial\") → %v, %v", engine, err)
	}

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	a, e := duedate.SA, duedate.EngineGPU
	fs.Var(&a, "algo", "")
	fs.Var(&e, "engine", "")
	if err := fs.Parse([]string{"-algo", "ta", "-engine", "cpu"}); err != nil {
		t.Fatal(err)
	}
	if a != duedate.TA || e != duedate.EngineCPUParallel {
		t.Errorf("flag parse produced %v/%v", a, e)
	}
}

// TestPairingsEnumeratesRegistry: the built-in drivers register SA and
// DPSO on all three engines and TA/ES on the two CPU engines, sorted by
// algorithm then engine; every pairing's names round-trip through parse.
func TestPairingsEnumeratesRegistry(t *testing.T) {
	ps := duedate.Pairings()
	if len(ps) != 12 {
		t.Fatalf("Pairings() returned %d combos, want 12: %v", len(ps), ps)
	}
	for i := 1; i < len(ps); i++ {
		prev, cur := ps[i-1], ps[i]
		if cur.Algorithm < prev.Algorithm ||
			(cur.Algorithm == prev.Algorithm && cur.Engine <= prev.Engine) {
			t.Fatalf("Pairings() not sorted at %d: %v after %v", i, cur, prev)
		}
	}
	want := map[duedate.Algorithm][]duedate.Engine{
		duedate.SA:      {duedate.EngineGPU, duedate.EngineCPUParallel, duedate.EngineCPUSerial},
		duedate.DPSO:    {duedate.EngineGPU, duedate.EngineCPUParallel, duedate.EngineCPUSerial},
		duedate.TA:      {duedate.EngineCPUParallel, duedate.EngineCPUSerial},
		duedate.ES:      {duedate.EngineCPUParallel, duedate.EngineCPUSerial},
		duedate.ExactDP: {duedate.EngineCPUSerial},
		duedate.Auto:    {duedate.EngineCPUParallel},
	}
	have := map[duedate.Algorithm]map[duedate.Engine]bool{}
	for _, p := range ps {
		if have[p.Algorithm] == nil {
			have[p.Algorithm] = map[duedate.Engine]bool{}
		}
		have[p.Algorithm][p.Engine] = true
		if a, err := duedate.ParseAlgorithm(p.Algorithm.String()); err != nil || a != p.Algorithm {
			t.Errorf("pairing algorithm %v does not round-trip (%v, %v)", p.Algorithm, a, err)
		}
		if e, err := duedate.ParseEngine(p.Engine.String()); err != nil || e != p.Engine {
			t.Errorf("pairing engine %v does not round-trip (%v, %v)", p.Engine, e, err)
		}
	}
	for algo, engines := range want {
		for _, e := range engines {
			if !have[algo][e] {
				t.Errorf("registry missing %v on %v", algo, e)
			}
		}
	}
	// Every metaheuristic driver is evaluator-backed, so those pairings
	// declare the full capability surface: all three problem kinds and
	// parallel machines. The exact layer declares its narrow provable
	// surface — the two kinds it has a DP for. The Kinds slice is a
	// private copy.
	for _, p := range ps {
		if p.Algorithm == duedate.ExactDP {
			if len(p.Kinds) != 2 || p.Kinds[0] != duedate.CDD || p.Kinds[1] != duedate.EARLYWORK || !p.Machines {
				t.Errorf("pairing %v/%v declares kinds=%v machines=%t (want CDD+EARLYWORK, machines)",
					p.Algorithm, p.Engine, p.Kinds, p.Machines)
			}
			continue
		}
		if len(p.Kinds) != 3 || !p.Machines {
			t.Errorf("pairing %v/%v declares kinds=%v machines=%t (want all three kinds, machines)",
				p.Algorithm, p.Engine, p.Kinds, p.Machines)
		}
	}
	ps[0].Kinds[0] = duedate.EARLYWORK
	if duedate.Pairings()[0].Kinds[0] != duedate.CDD {
		t.Error("Pairings() kind slices alias the registry")
	}
}

// TestValidateOptions: the admission-time validator must agree with
// SolveContext — nil for every registered pairing with sane options, the
// ErrInvalidOptions / ErrUnsupportedPairing sentinels otherwise.
func TestValidateOptions(t *testing.T) {
	for _, p := range duedate.Pairings() {
		if err := duedate.ValidateOptions(duedate.Options{Algorithm: p.Algorithm, Engine: p.Engine}); err != nil {
			t.Errorf("registered pairing %v/%v rejected: %v", p.Algorithm, p.Engine, err)
		}
	}
	if err := duedate.ValidateOptions(duedate.Options{Algorithm: duedate.TA, Engine: duedate.EngineGPU}); !errors.Is(err, duedate.ErrUnsupportedPairing) {
		t.Errorf("TA/gpu: %v (want ErrUnsupportedPairing)", err)
	}
	if err := duedate.ValidateOptions(duedate.Options{Grid: -1}); !errors.Is(err, duedate.ErrInvalidOptions) {
		t.Errorf("negative grid: %v (want ErrInvalidOptions)", err)
	}
	if err := duedate.ValidateOptions(duedate.Options{Workers: -3, Engine: duedate.EngineCPUParallel}); !errors.Is(err, duedate.ErrInvalidOptions) {
		t.Errorf("negative workers: %v (want ErrInvalidOptions)", err)
	}
}

// TestUnsupportedPairingErrorListsEngines: the rejection must carry the
// sentinel and name the engines that do work, so the CLI message is
// actionable.
func TestUnsupportedPairingErrorListsEngines(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	_, err := duedate.Solve(in, duedate.Options{Algorithm: duedate.TA, Engine: duedate.EngineGPU})
	if !errors.Is(err, duedate.ErrUnsupportedPairing) {
		t.Fatalf("error = %v, want ErrUnsupportedPairing", err)
	}
	for _, name := range []string{"cpu-parallel", "cpu-serial"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("message %q does not list registered engine %s", err, name)
		}
	}
}

// TestParseRejectionsTable sweeps malformed names through both parsers:
// every rejection must wrap ErrInvalidOptions and name the offending
// input, and near-miss spellings must not be silently coerced.
func TestParseRejectionsTable(t *testing.T) {
	algoCases := []string{
		"", " ", "annealing", "SA ES", "S A", "sa,", "dps0", "ES2",
		"threshold", "evolution", "*", "サ",
	}
	for _, s := range algoCases {
		t.Run("algo/"+s, func(t *testing.T) {
			if v, err := duedate.ParseAlgorithm(s); err == nil {
				t.Fatalf("ParseAlgorithm(%q) = %v, want error", s, v)
			} else if !errors.Is(err, duedate.ErrInvalidOptions) {
				t.Errorf("ParseAlgorithm(%q) error %v does not wrap ErrInvalidOptions", s, err)
			} else if !strings.Contains(err.Error(), "algorithm") {
				t.Errorf("ParseAlgorithm(%q) error %q does not identify the field", s, err)
			}
		})
	}
	engineCases := []string{
		"", " ", "tpu", "cpu_parallel", "cpuserial", "gpu2", "GPU!",
		"cuda", "device", "cpu parallel",
	}
	for _, s := range engineCases {
		t.Run("engine/"+s, func(t *testing.T) {
			if v, err := duedate.ParseEngine(s); err == nil {
				t.Fatalf("ParseEngine(%q) = %v, want error", s, v)
			} else if !errors.Is(err, duedate.ErrInvalidOptions) {
				t.Errorf("ParseEngine(%q) error %v does not wrap ErrInvalidOptions", s, err)
			} else if !strings.Contains(err.Error(), "engine") {
				t.Errorf("ParseEngine(%q) error %q does not identify the field", s, err)
			}
		})
	}
	// Case-folded and padded spellings are accepted — the rejection table
	// above must not overreach into the documented leniency.
	if v, err := duedate.ParseAlgorithm("  dPsO "); err != nil || v != duedate.DPSO {
		t.Errorf("ParseAlgorithm leniency broken: %v, %v", v, err)
	}
	if v, err := duedate.ParseEngine(" CPU-Serial "); err != nil || v != duedate.EngineCPUSerial {
		t.Errorf("ParseEngine leniency broken: %v, %v", v, err)
	}
}
