package duedate

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auto"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/obs"
	"repro/internal/problem"
)

// This file wires the self-tuning portfolio meta-driver into the
// registry as the AUTO algorithm on the cpu-parallel engine (the one
// canonical key — Options normalization folds every requested engine
// onto it, because AUTO dispatches to whatever engine it selects). The
// solver has three routes, tried in order:
//
//  1. EXACT-DP, when the instance shape is inside the calibration's DP
//     gates: a success returns a proven optimum with Result.Optimal set;
//     a typed decline (no agreeable order, state budget) falls through.
//  2. A race, when Options.Deadline is set, the calibration bucket
//     offers ≥ 2 candidates and n ≤ raceMaxN: all candidates run
//     concurrently under the shared budget on SplitMix64-split seed
//     streams, losers are culled at a checkpoint (their goroutine
//     workers naturally time-share back to the survivors), and the best
//     best-so-far wins.
//  3. The calibration model's single predicted-best pairing, run with
//     the caller's seed untouched — bit-identical to invoking that
//     static pairing directly, which is what lets the verify auto leg
//     assert AUTO never loses to the worst static pairing.
//
// Racing trades determinism for quality: which candidate wins depends on
// wall-clock scheduling, so racing only engages when a Deadline is set
// (the caller already opted into time-dependent results) and race
// results always report Interrupted=true, keeping them out of the
// server's determinism-assuming caches. Model mode stays bit-exact.

func init() {
	RegisterDriver(Auto, EngineCPUParallel, func(o Options) core.Solver {
		return &autoSolver{opts: o, cal: auto.Default()}
	})
}

// raceFraction is the share of the remaining wall budget the race's
// exploration phase gets before losers are culled at the checkpoint.
const raceFraction = 0.4

// dpAttemptFraction caps the EXACT-DP attempt when a deadline is set, so
// a DP that would blow the budget declines early enough to leave the
// metaheuristic route most of the time.
const dpAttemptFraction = 0.25

// maxRaceCandidates bounds the concurrently raced configurations.
const maxRaceCandidates = 3

// raceMaxN gates racing by instance size: above it a sub-second budget
// buys each lane only a handful of iterations, so splitting the host
// across lanes costs more than the routing information is worth (the
// 30-instance acceptance benchmark loses exactly its n=1000 rows to
// race overhead without this guard). Larger instances trust the
// calibration model and give its pick the whole budget.
const raceMaxN = 400

// autoSolver is the AUTO meta-driver: calibration-model routing with an
// optional deadline-gated race.
type autoSolver struct {
	opts Options
	cal  *auto.Calibration
}

// Name identifies the solver in experiment tables.
func (s *autoSolver) Name() string { return "AUTO" }

// Solve routes the instance per the calibration table and runs the
// chosen configuration(s).
func (s *autoSolver) Solve(ctx context.Context, in *problem.Instance) (core.Result, error) {
	ctx, cancel := s.opts.budget().Apply(ctx)
	defer cancel()
	pickStart := time.Now()
	dec := s.cal.Pick(in.Kind, in.N(), in.MachineCount())
	pickWall := time.Since(pickStart)

	if dec.AttemptDP {
		res, done, err := s.tryDP(ctx, in, pickWall)
		if done {
			return res, err
		}
	}
	if !s.opts.Deadline.IsZero() && len(dec.Candidates) > 1 && in.N() <= raceMaxN {
		return s.race(ctx, in, dec, pickWall)
	}
	return s.dispatch(ctx, in, dec.Choice, pickWall)
}

// tryDP attempts the EXACT-DP route. done=false means the attempt
// declined (typed domain/budget error, or it overran its capped slice of
// a live deadline) and the caller should fall through to the
// metaheuristic routes.
func (s *autoSolver) tryDP(ctx context.Context, in *problem.Instance, pickWall time.Duration) (core.Result, bool, error) {
	dpCtx, dpCancel := ctx, context.CancelFunc(func() {})
	if !s.opts.Deadline.IsZero() {
		if remain := time.Until(s.opts.Deadline); remain > 0 {
			slice := time.Duration(float64(remain) * dpAttemptFraction)
			dpCtx, dpCancel = context.WithDeadline(ctx, time.Now().Add(slice))
		}
	}
	defer dpCancel()

	start := time.Now()
	r, err := exact.SolveDPContext(dpCtx, in, exact.DPConfig{})
	elapsed := time.Since(start)
	if err != nil {
		if errors.Is(err, exact.ErrInapplicable) || errors.Is(err, exact.ErrTooLarge) {
			return core.Result{}, false, nil // typed decline: fall through
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctx.Err() == nil {
				// Only the capped DP slice expired; the overall budget is
				// still live — treat the overrun like a decline.
				return core.Result{}, false, nil
			}
			// The caller's context is gone. Per the cooperative-
			// cancellation contract, return an honest identity-genome
			// best-so-far rather than an error.
			seq := problem.IdentitySequence(in.GenomeLen())
			res := core.Result{
				BestSeq:     seq,
				BestCost:    core.NewEvaluator(in).Cost(seq),
				Evaluations: 1,
				Elapsed:     elapsed,
				Interrupted: true,
			}
			res.Metrics = s.autoMetrics(res, "EXACT-DP/cpu-serial", "dp-certificate", pickWall, elapsed)
			s.emit(res)
			return res, true, nil
		}
		return core.Result{}, true, fmt.Errorf("duedate: AUTO: %w", err)
	}
	res := core.Result{
		BestSeq:     r.Seq,
		BestCost:    r.Cost,
		Iterations:  1,
		Evaluations: r.Nodes,
		Elapsed:     elapsed,
		Optimal:     true,
	}
	res.Metrics = s.autoMetrics(res, "EXACT-DP/cpu-serial", "dp-certificate", pickWall, elapsed)
	s.emit(res)
	return res, true, nil
}

// dispatch runs one static pairing in model mode: the caller's seed and
// trajectory-relevant options pass through untouched (overrides apply
// only to fields the caller left at their defaults), so the result is
// bit-identical to solving with that pairing directly.
func (s *autoSolver) dispatch(ctx context.Context, in *problem.Instance, c auto.Choice, pickWall time.Duration) (core.Result, error) {
	o, entry, err := s.candidateOptions(c, s.opts.Seed)
	if err != nil {
		return core.Result{}, err
	}
	o.Progress = s.opts.Progress
	res, err := entry.driver(o).Solve(ctx, in)
	if err != nil {
		return res, err
	}
	if res.Metrics != nil {
		res.Metrics.AutoPick = c.Pairing()
		res.Metrics.RaceReason = "model-pick"
		res.Metrics.Phases = append(res.Metrics.Phases, core.PhaseMetric{
			Name: obs.PhasePick.String(), Wall: pickKernelWall(o, pickWall), Count: 1,
		})
	}
	return res, nil
}

// candidateOptions builds the dispatch options for one choice:
// calibration overrides fill only fields the caller left unset (the
// normalized Grid=4/Block=192 pair counts as unset; an explicit geometry
// is preserved so verify-style equal-budget comparisons stay exact).
func (s *autoSolver) candidateOptions(c auto.Choice, seed uint64) (Options, driverEntry, error) {
	o := s.opts
	alg, err := ParseAlgorithm(c.Algorithm)
	if err != nil {
		return o, driverEntry{}, fmt.Errorf("duedate: AUTO: calibration choice: %w", err)
	}
	eng, err := ParseEngine(c.Engine)
	if err != nil {
		return o, driverEntry{}, fmt.Errorf("duedate: AUTO: calibration choice: %w", err)
	}
	o.Algorithm, o.Engine = alg, eng
	if o.Grid == 4 && o.Block == 192 {
		if c.Grid > 0 {
			o.Grid = c.Grid
		}
		if c.Block > 0 {
			o.Block = c.Block
		}
	}
	if o.Iterations == 0 && c.Iterations > 0 {
		o.Iterations = c.Iterations
	}
	if o.Workers == 0 && c.Workers > 0 {
		o.Workers = c.Workers
	}
	o.Seed = seed
	o.Progress = nil
	entry, err := lookupDriver(o)
	if err != nil {
		return o, driverEntry{}, err
	}
	return o, entry, nil
}

// raceCandidate is one lane of a race.
type raceCandidate struct {
	choice  auto.Choice
	cancel  context.CancelFunc
	best    atomic.Int64 // best cost observed via Progress (MaxInt64 until first snapshot)
	res     core.Result
	err     error
	elapsed time.Duration
	culled  atomic.Bool
}

// race runs the candidate set concurrently under the shared deadline,
// culls everything but the checkpoint leader, and reduces to the best
// best-so-far. Candidate i's RNG stream is the i-th SplitMix64 split of
// the caller's seed, so each lane's trajectory is reproducible even
// though the wall-clock outcome of the race is not; accordingly the
// result always reports Interrupted=true.
func (s *autoSolver) race(ctx context.Context, in *problem.Instance, dec auto.Decision, pickWall time.Duration) (core.Result, error) {
	cands := dec.Candidates
	if len(cands) > maxRaceCandidates {
		cands = cands[:maxRaceCandidates]
	}
	seeds := auto.RaceSeeds(s.opts.Seed, len(cands))
	start := time.Now()

	lanes := make([]*raceCandidate, len(cands))
	var (
		wg         sync.WaitGroup
		progressMu sync.Mutex // serializes forwarding to the caller's Progress
		globalBest = int64(math.MaxInt64)
	)
	for i := range cands {
		lane := &raceCandidate{choice: cands[i]}
		lane.best.Store(math.MaxInt64)
		lanes[i] = lane

		o, entry, err := s.candidateOptions(cands[i], seeds[i])
		if err != nil {
			lane.err = err
			continue
		}
		laneCtx, laneCancel := context.WithCancel(ctx)
		lane.cancel = laneCancel
		o.Progress = func(snap core.Snapshot) {
			if snap.BestCost < lane.best.Load() {
				lane.best.Store(snap.BestCost)
			}
			if s.opts.Progress == nil {
				return
			}
			progressMu.Lock()
			if snap.BestCost < globalBest {
				globalBest = snap.BestCost
				s.opts.Progress(snap)
			}
			progressMu.Unlock()
		}
		solver := entry.driver(o)
		wg.Add(1)
		go func(lane *raceCandidate) {
			defer wg.Done()
			laneStart := time.Now()
			lane.res, lane.err = solver.Solve(laneCtx, in)
			lane.elapsed = time.Since(laneStart)
		}(lane)
	}

	// Checkpoint monitor: once raceFraction of the budget is spent, keep
	// the current leader and cull the rest. If no lane has reported a
	// snapshot yet there is nothing to rank, and every lane runs on.
	culled := false
	var checkpointLeader int32 = -1
	if remain := time.Until(s.opts.Deadline); remain > 0 {
		timer := time.AfterFunc(time.Duration(float64(remain)*raceFraction), func() {
			leader, leaderCost := -1, int64(math.MaxInt64)
			for i, lane := range lanes {
				if b := lane.best.Load(); b < leaderCost {
					leader, leaderCost = i, b
				}
			}
			if leader < 0 {
				return
			}
			atomic.StoreInt32(&checkpointLeader, int32(leader))
			for i, lane := range lanes {
				if i != leader && lane.cancel != nil {
					lane.culled.Store(true)
					lane.cancel()
				}
			}
		})
		defer timer.Stop()
	}

	wg.Wait()
	for _, lane := range lanes {
		if lane.cancel != nil {
			lane.cancel()
		}
		if lane.culled.Load() {
			culled = true
		}
	}

	// Reduce: the lowest honest best-so-far across every lane that
	// produced a result (culled lanes return a valid Interrupted result,
	// so their exploration still counts).
	winner := -1
	var firstErr error
	var totalEvals int64
	for i, lane := range lanes {
		if lane.err != nil {
			if firstErr == nil {
				firstErr = lane.err
			}
			continue
		}
		totalEvals += lane.res.Evaluations
		if winner < 0 || lane.res.BestCost < lanes[winner].res.BestCost {
			winner = i
		}
	}
	if winner < 0 {
		return core.Result{}, fmt.Errorf("duedate: AUTO: every race candidate failed: %w", firstErr)
	}

	win := lanes[winner]
	res := win.res
	res.Evaluations = totalEvals
	res.Elapsed = time.Since(start)
	res.Interrupted = true // races are wall-clock-dependent by construction

	reason := "best-at-deadline"
	if culled && int(atomic.LoadInt32(&checkpointLeader)) == winner {
		reason = "leader-at-checkpoint"
	}
	if m := s.autoMetrics(res, win.choice.Pairing(), reason, pickWall, res.Elapsed); m != nil {
		if res.Metrics != nil {
			// Keep the winning lane's counters; overlay the race accounting.
			m.DeltaEvaluations = res.Metrics.DeltaEvaluations
			m.FullEvaluations = res.Metrics.FullEvaluations
			m.Acceptances = res.Metrics.Acceptances
			m.Improvements = res.Metrics.Improvements
			m.Chains = res.Metrics.Chains
			m.Workers = res.Metrics.Workers
			m.InterruptedAt = res.Metrics.InterruptedAt
		}
		for _, lane := range lanes {
			if lane.err != nil {
				continue
			}
			m.RaceCandidates = append(m.RaceCandidates, lane.choice.Pairing())
			m.Phases = append(m.Phases, core.PhaseMetric{
				Name: "race:" + lane.choice.Pairing(), Wall: lane.elapsed, Count: 1,
			})
		}
		res.Metrics = m
	}
	s.emitFinal(res)
	// Lane errors are not fatal once any lane produced a result — a
	// candidate's typed decline must not fail the whole solve.
	return res, nil
}

// autoMetrics assembles the AUTO-level metrics envelope (nil when
// collection is off): pick identity, race attribution, and the pick
// phase timing.
func (s *autoSolver) autoMetrics(res core.Result, pick, reason string, pickWall, elapsed time.Duration) *core.Metrics {
	if s.opts.Metrics <= MetricsOff {
		return nil
	}
	m := &core.Metrics{
		Level:           s.opts.Metrics,
		Evaluations:     res.Evaluations,
		FullEvaluations: res.Evaluations,
		Chains:          1,
		Workers:         1,
		AutoPick:        pick,
		RaceWinner:      "",
		RaceReason:      reason,
	}
	if reason != "model-pick" && reason != "dp-certificate" {
		m.RaceWinner = pick
	}
	wall := time.Duration(0)
	if s.opts.Metrics >= MetricsKernels {
		wall = pickWall
	}
	m.Phases = append(m.Phases, core.PhaseMetric{Name: obs.PhasePick.String(), Wall: wall, Count: 1})
	if reason == "dp-certificate" {
		dpWall := time.Duration(0)
		if s.opts.Metrics >= MetricsKernels {
			dpWall = elapsed
		}
		m.Phases = append(m.Phases, core.PhaseMetric{Name: obs.PhaseDP.String(), Wall: dpWall, Count: 1})
	}
	return m
}

// pickKernelWall reports the pick wall time only at the kernels level,
// mirroring the collector's "counters stay cheap" contract.
func pickKernelWall(o Options, pickWall time.Duration) time.Duration {
	if o.Metrics >= MetricsKernels {
		return pickWall
	}
	return 0
}

// emit sends the single final snapshot for one-shot routes (DP).
func (s *autoSolver) emit(res core.Result) {
	if s.opts.Progress == nil {
		return
	}
	s.opts.Progress(core.Snapshot{
		BestSeq:     append([]int(nil), res.BestSeq...),
		BestCost:    res.BestCost,
		Evaluations: res.Evaluations,
		Elapsed:     res.Elapsed,
	})
}

// emitFinal sends the race's closing snapshot (the per-lane forwarding
// has stopped by the time it runs, so the serialization contract holds).
func (s *autoSolver) emitFinal(res core.Result) { s.emit(res) }
