package duedate_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	duedate "repro"
)

func TestPaperExampleThroughPublicAPI(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	sched, cost, err := duedate.OptimizeSequence(in, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 81 {
		t.Errorf("CDD paper example cost = %d, want 81", cost)
	}
	if sched.Start != 5 {
		t.Errorf("start = %d, want 5", sched.Start)
	}
	if got := sched.Cost(in); got != 81 {
		t.Errorf("schedule re-evaluates to %d", got)
	}

	inU := duedate.PaperExample(duedate.UCDDCP)
	_, costU, err := duedate.OptimizeSequence(inU, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if costU != 77 {
		t.Errorf("UCDDCP paper example cost = %d, want 77", costU)
	}
}

func TestSolveDefaultsOnSmallInstance(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	res, err := duedate.Solve(in, duedate.Options{
		Iterations: 100, Grid: 1, Block: 16, TempSamples: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := duedate.Cost(in, res.BestSeq)
	if err != nil {
		t.Fatal(err)
	}
	if got != res.BestCost {
		t.Errorf("result cost %d, sequence evaluates to %d", res.BestCost, got)
	}
	if res.BestCost > 81 {
		t.Errorf("GPU SA best %d, expected ≤ 81", res.BestCost)
	}
	if res.SimSeconds <= 0 {
		t.Error("GPU engine reported no simulated time")
	}
}

// pairingHasKind reports whether the pairing declares the problem kind;
// capability-scoped drivers (EXACT-DP) sit out the kinds they lack.
func pairingHasKind(p duedate.Pairing, k duedate.Kind) bool {
	for _, have := range p.Kinds {
		if have == k {
			return true
		}
	}
	return false
}

func TestSolveAllAlgorithmEngineCombos(t *testing.T) {
	in := duedate.PaperExample(duedate.UCDDCP)
	for _, c := range duedate.Pairings() {
		c := c
		t.Run(c.Algorithm.String()+"/"+c.Engine.String(), func(t *testing.T) {
			if !pairingHasKind(c, duedate.UCDDCP) {
				t.Skipf("%v does not declare UCDDCP", c.Algorithm)
			}
			res, err := duedate.Solve(in, duedate.Options{
				Algorithm: c.Algorithm, Engine: c.Engine,
				Iterations: 40, Grid: 1, Block: 8, TempSamples: 50,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := duedate.Cost(in, res.BestSeq)
			if err != nil {
				t.Fatal(err)
			}
			if got != res.BestCost {
				t.Errorf("reported %d, evaluates to %d", res.BestCost, got)
			}
		})
	}
}

// TestFacadeMetrics: every registered pairing must populate
// Result.Metrics when asked (with an evaluation count that matches the
// result's) and leave it nil at the default level.
func TestFacadeMetrics(t *testing.T) {
	paper := duedate.PaperExample(duedate.CDD)
	// The paper example's general asymmetric weights sit outside the DP's
	// agreeable domain, so the exact pairing gets a symmetric-weight
	// unrestricted instance it can certify.
	agreeable, err := duedate.NewCDDInstance("agreeable-metrics",
		[]int{3, 1, 4, 2, 5, 2, 6}, []int{2, 1, 3, 2, 4, 1, 5}, []int{2, 1, 3, 2, 4, 1, 5}, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range duedate.Pairings() {
		c := c
		t.Run(c.Algorithm.String()+"/"+c.Engine.String(), func(t *testing.T) {
			in := paper
			if c.Algorithm == duedate.ExactDP {
				in = agreeable
			}
			base := duedate.Options{
				Algorithm: c.Algorithm, Engine: c.Engine,
				Iterations: 40, Grid: 1, Block: 8, TempSamples: 50, Seed: 5,
			}
			off, err := duedate.Solve(in, base)
			if err != nil {
				t.Fatal(err)
			}
			if off.Metrics != nil {
				t.Error("Metrics non-nil at the default (off) level")
			}
			on := base
			on.Metrics = duedate.MetricsCounters
			res, err := duedate.Solve(in, on)
			if err != nil {
				t.Fatal(err)
			}
			m := res.Metrics
			if m == nil {
				t.Fatal("Metrics nil with counters level requested")
			}
			if m.Level != duedate.MetricsCounters {
				t.Errorf("Level = %v, want counters", m.Level)
			}
			if m.Evaluations != res.Evaluations {
				t.Errorf("Metrics.Evaluations %d != Result.Evaluations %d", m.Evaluations, res.Evaluations)
			}
			if res.BestCost != off.BestCost || res.Evaluations != off.Evaluations {
				t.Errorf("metrics collection changed the run: %d/%d vs %d/%d",
					res.BestCost, res.Evaluations, off.BestCost, off.Evaluations)
			}
			if m.Chains <= 0 || m.Workers <= 0 {
				t.Errorf("geometry unset: chains=%d workers=%d", m.Chains, m.Workers)
			}
		})
	}
}

func TestSolveRejectsGPUBaselines(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	for _, algo := range []duedate.Algorithm{duedate.TA, duedate.ES} {
		_, err := duedate.Solve(in, duedate.Options{Algorithm: algo, Engine: duedate.EngineGPU})
		if !errors.Is(err, duedate.ErrUnsupportedPairing) {
			t.Errorf("%v on GPU: err = %v, want ErrUnsupportedPairing", algo, err)
		}
	}
}

func TestSolveValidatesInstance(t *testing.T) {
	bad := duedate.PaperExample(duedate.CDD)
	bad.D = -4
	if _, err := duedate.Solve(bad, duedate.Options{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestOptimizeSequenceRejections(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	if _, _, err := duedate.OptimizeSequence(in, []int{0, 1, 2}); !errors.Is(err, duedate.ErrInvalidSequence) {
		t.Errorf("short sequence: err = %v, want ErrInvalidSequence", err)
	}
	if _, _, err := duedate.OptimizeSequence(in, []int{0, 0, 1, 2, 3}); !errors.Is(err, duedate.ErrInvalidSequence) {
		t.Errorf("non-permutation: err = %v, want ErrInvalidSequence", err)
	}
}

func TestBenchmarkGenerators(t *testing.T) {
	cddIns, err := duedate.GenerateCDDBenchmark(20, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cddIns) != 8 {
		t.Errorf("CDD benchmark size = %d, want 8 (2 records × 4 h)", len(cddIns))
	}
	uIns, err := duedate.GenerateUCDDCPBenchmark(20, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(uIns) != 3 {
		t.Errorf("UCDDCP benchmark size = %d, want 3", len(uIns))
	}
}

func TestEnumStrings(t *testing.T) {
	if duedate.SA.String() != "SA" || duedate.DPSO.String() != "DPSO" {
		t.Error("Algorithm.String broken")
	}
	if duedate.EngineGPU.String() != "gpu" {
		t.Error("Engine.String broken")
	}
	if !strings.Contains(duedate.Algorithm(9).String(), "9") {
		t.Error("unknown algorithm formatting broken")
	}
	if !strings.Contains(duedate.Engine(9).String(), "9") {
		t.Error("unknown engine formatting broken")
	}
}

func TestSolvePersistentEngine(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	opts := duedate.Options{Iterations: 80, Grid: 1, Block: 8, TempSamples: 50}
	normal, err := duedate.Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Persistent = true
	pers, err := duedate.Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if normal.BestCost != pers.BestCost {
		t.Errorf("persistent engine differs: %d vs %d", pers.BestCost, normal.BestCost)
	}
	if pers.SimSeconds >= normal.SimSeconds {
		t.Errorf("persistent engine not faster: %g vs %g", pers.SimSeconds, normal.SimSeconds)
	}
}

func TestOptionsRejectNegativeGeometry(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	cases := []duedate.Options{
		{Grid: -1, Block: 8},
		{Grid: 1, Block: -8},
		{Engine: duedate.EngineCPUParallel, Workers: -2},
	}
	for _, o := range cases {
		if _, err := duedate.Solve(in, o); !errors.Is(err, duedate.ErrInvalidOptions) {
			t.Errorf("options %+v: err = %v, want ErrInvalidOptions", o, err)
		}
	}
}

func TestSeedZeroSentinelEqualsSeedOne(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	base := duedate.Options{Iterations: 60, Grid: 1, Block: 8, TempSamples: 50}
	zero := base
	zero.Seed = 0
	one := base
	one.Seed = 1
	a, err := duedate.Solve(in, zero)
	if err != nil {
		t.Fatal(err)
	}
	b, err := duedate.Solve(in, one)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost || a.Evaluations != b.Evaluations {
		t.Errorf("seed 0 (%d/%d) differs from seed 1 (%d/%d)",
			a.BestCost, a.Evaluations, b.BestCost, b.Evaluations)
	}
}

func TestWorkersOptionKeepsDeterminism(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	base := duedate.Options{
		Algorithm: duedate.SA, Engine: duedate.EngineCPUParallel,
		Iterations: 60, Grid: 1, Block: 16, TempSamples: 50, Seed: 4,
	}
	limited := base
	limited.Workers = 1
	a, err := duedate.Solve(in, base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := duedate.Solve(in, limited)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost || a.Evaluations != b.Evaluations {
		t.Errorf("Workers changed the result: %d/%d vs %d/%d",
			a.BestCost, a.Evaluations, b.BestCost, b.Evaluations)
	}
}

func TestSolveContextCancellation(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := duedate.SolveContext(ctx, in, duedate.Options{
		Algorithm: duedate.SA, Engine: duedate.EngineCPUParallel,
		Iterations: 1 << 20, Grid: 4, Block: 16, TempSamples: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled SolveContext did not report Interrupted")
	}
	got, err := duedate.Cost(in, res.BestSeq)
	if err != nil {
		t.Fatal(err)
	}
	if got != res.BestCost {
		t.Errorf("interrupted best reported %d, evaluates to %d", res.BestCost, got)
	}
}

func TestDeadlineOptionInterrupts(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	res, err := duedate.Solve(in, duedate.Options{
		Algorithm: duedate.SA, Engine: duedate.EngineCPUSerial,
		Iterations: 1 << 20, Grid: 2, Block: 16, TempSamples: 50,
		Deadline: time.Now().Add(-time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("expired Deadline did not report Interrupted")
	}
	got, err := duedate.Cost(in, res.BestSeq)
	if err != nil {
		t.Fatal(err)
	}
	if got != res.BestCost {
		t.Errorf("interrupted best reported %d, evaluates to %d", res.BestCost, got)
	}
}

func TestProgressThroughFacade(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	var snaps []duedate.Snapshot
	res, err := duedate.Solve(in, duedate.Options{
		Algorithm: duedate.SA, Engine: duedate.EngineCPUSerial,
		Iterations: 60, Grid: 1, Block: 8, TempSamples: 50,
		Progress: func(s duedate.Snapshot) { snaps = append(snaps, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots received")
	}
	last := snaps[len(snaps)-1]
	if last.BestCost != res.BestCost {
		t.Errorf("final snapshot cost %d, result %d", last.BestCost, res.BestCost)
	}
	if last.Evaluations != res.Evaluations {
		t.Errorf("final snapshot evaluations %d, result %d", last.Evaluations, res.Evaluations)
	}
}

func TestBaselinesHonorParallelEngine(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	for _, algo := range []duedate.Algorithm{duedate.TA, duedate.ES} {
		serial, err := duedate.Solve(in, duedate.Options{
			Algorithm: algo, Engine: duedate.EngineCPUSerial,
			Iterations: 50, Grid: 1, Block: 8, TempSamples: 50, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		par, err := duedate.Solve(in, duedate.Options{
			Algorithm: algo, Engine: duedate.EngineCPUParallel,
			Iterations: 50, Grid: 1, Block: 8, TempSamples: 50, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if serial.BestCost != par.BestCost || serial.Evaluations != par.Evaluations {
			t.Errorf("%v: serial %d/%d != parallel %d/%d (chain i must own stream i on both engines)",
				algo, serial.BestCost, serial.Evaluations, par.BestCost, par.Evaluations)
		}
	}
}

// TestSolveContextOptionValidation is the table-driven contract test of
// the facade's option gate: every invalid Options value must be rejected
// by SolveContext itself — before any engine runs — with an error that
// satisfies errors.Is(err, ErrInvalidOptions), across every algorithm.
func TestSolveContextOptionValidation(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	cases := []struct {
		name string
		opts duedate.Options
	}{
		{"negative-grid", duedate.Options{Grid: -1}},
		{"negative-block", duedate.Options{Block: -192}},
		{"negative-workers", duedate.Options{Engine: duedate.EngineCPUSerial, Workers: -1}},
		{"negative-grid-cpu", duedate.Options{Engine: duedate.EngineCPUParallel, Grid: -4}},
		{"all-negative", duedate.Options{Grid: -1, Block: -1, Workers: -1}},
	}
	for _, tc := range cases {
		for _, algo := range []duedate.Algorithm{duedate.SA, duedate.DPSO, duedate.TA, duedate.ES} {
			o := tc.opts
			o.Algorithm = algo
			_, err := duedate.SolveContext(context.Background(), in, o)
			if !errors.Is(err, duedate.ErrInvalidOptions) {
				t.Errorf("%s/%v: err = %v, want ErrInvalidOptions", tc.name, algo, err)
			}
			// Option validation must precede pairing dispatch: a bad
			// option on an unregistered pairing still reports the option.
			if errors.Is(err, duedate.ErrUnsupportedPairing) {
				t.Errorf("%s/%v: pairing error before option validation", tc.name, algo)
			}
		}
	}
}

// TestSolveContextSeedZeroSentinel: the Seed-0 "unset" sentinel must be
// rewritten to 1 on the SolveContext path too, for every engine class —
// bit-identical runs, not merely equal costs.
func TestSolveContextSeedZeroSentinel(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	engines := []duedate.Engine{duedate.EngineGPU, duedate.EngineCPUParallel, duedate.EngineCPUSerial}
	for _, eng := range engines {
		base := duedate.Options{Engine: eng, Iterations: 40, Grid: 1, Block: 4, TempSamples: 20}
		zero := base
		zero.Seed = 0
		one := base
		one.Seed = 1
		a, err := duedate.SolveContext(context.Background(), in, zero)
		if err != nil {
			t.Fatal(err)
		}
		b, err := duedate.SolveContext(context.Background(), in, one)
		if err != nil {
			t.Fatal(err)
		}
		if a.BestCost != b.BestCost || a.Evaluations != b.Evaluations ||
			!equalSeq(a.BestSeq, b.BestSeq) {
			t.Errorf("%v: seed 0 run (cost %d, evals %d, seq %v) differs from seed 1 (cost %d, evals %d, seq %v)",
				eng, a.BestCost, a.Evaluations, a.BestSeq, b.BestCost, b.Evaluations, b.BestSeq)
		}
	}
}

func equalSeq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
