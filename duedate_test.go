package duedate_test

import (
	"strings"
	"testing"

	duedate "repro"
)

func TestPaperExampleThroughPublicAPI(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	sched, cost, err := duedate.OptimizeSequence(in, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 81 {
		t.Errorf("CDD paper example cost = %d, want 81", cost)
	}
	if sched.Start != 5 {
		t.Errorf("start = %d, want 5", sched.Start)
	}
	if got := sched.Cost(in); got != 81 {
		t.Errorf("schedule re-evaluates to %d", got)
	}

	inU := duedate.PaperExample(duedate.UCDDCP)
	_, costU, err := duedate.OptimizeSequence(inU, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if costU != 77 {
		t.Errorf("UCDDCP paper example cost = %d, want 77", costU)
	}
}

func TestSolveDefaultsOnSmallInstance(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	res, err := duedate.Solve(in, duedate.Options{
		Iterations: 100, Grid: 1, Block: 16, TempSamples: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := duedate.Cost(in, res.BestSeq)
	if err != nil {
		t.Fatal(err)
	}
	if got != res.BestCost {
		t.Errorf("result cost %d, sequence evaluates to %d", res.BestCost, got)
	}
	if res.BestCost > 81 {
		t.Errorf("GPU SA best %d, expected ≤ 81", res.BestCost)
	}
	if res.SimSeconds <= 0 {
		t.Error("GPU engine reported no simulated time")
	}
}

func TestSolveAllAlgorithmEngineCombos(t *testing.T) {
	in := duedate.PaperExample(duedate.UCDDCP)
	combos := []struct {
		algo   duedate.Algorithm
		engine duedate.Engine
	}{
		{duedate.SA, duedate.EngineGPU},
		{duedate.SA, duedate.EngineCPUParallel},
		{duedate.SA, duedate.EngineCPUSerial},
		{duedate.DPSO, duedate.EngineGPU},
		{duedate.DPSO, duedate.EngineCPUParallel},
		{duedate.DPSO, duedate.EngineCPUSerial},
		{duedate.TA, duedate.EngineCPUSerial},
		{duedate.ES, duedate.EngineCPUSerial},
	}
	for _, c := range combos {
		t.Run(c.algo.String()+"/"+c.engine.String(), func(t *testing.T) {
			res, err := duedate.Solve(in, duedate.Options{
				Algorithm: c.algo, Engine: c.engine,
				Iterations: 40, Grid: 1, Block: 8, TempSamples: 50,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := duedate.Cost(in, res.BestSeq)
			if err != nil {
				t.Fatal(err)
			}
			if got != res.BestCost {
				t.Errorf("reported %d, evaluates to %d", res.BestCost, got)
			}
		})
	}
}

func TestSolveRejectsGPUBaselines(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	for _, algo := range []duedate.Algorithm{duedate.TA, duedate.ES} {
		if _, err := duedate.Solve(in, duedate.Options{Algorithm: algo, Engine: duedate.EngineGPU}); err == nil {
			t.Errorf("%v on GPU accepted", algo)
		}
	}
}

func TestSolveValidatesInstance(t *testing.T) {
	bad := duedate.PaperExample(duedate.CDD)
	bad.D = -4
	if _, err := duedate.Solve(bad, duedate.Options{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestOptimizeSequenceRejections(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	if _, _, err := duedate.OptimizeSequence(in, []int{0, 1, 2}); err == nil {
		t.Error("short sequence accepted")
	}
	if _, _, err := duedate.OptimizeSequence(in, []int{0, 0, 1, 2, 3}); err == nil {
		t.Error("non-permutation accepted")
	}
}

func TestBenchmarkGenerators(t *testing.T) {
	cddIns, err := duedate.GenerateCDDBenchmark(20, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cddIns) != 8 {
		t.Errorf("CDD benchmark size = %d, want 8 (2 records × 4 h)", len(cddIns))
	}
	uIns, err := duedate.GenerateUCDDCPBenchmark(20, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(uIns) != 3 {
		t.Errorf("UCDDCP benchmark size = %d, want 3", len(uIns))
	}
}

func TestEnumStrings(t *testing.T) {
	if duedate.SA.String() != "SA" || duedate.DPSO.String() != "DPSO" {
		t.Error("Algorithm.String broken")
	}
	if duedate.EngineGPU.String() != "gpu" {
		t.Error("Engine.String broken")
	}
	if !strings.Contains(duedate.Algorithm(9).String(), "9") {
		t.Error("unknown algorithm formatting broken")
	}
	if !strings.Contains(duedate.Engine(9).String(), "9") {
		t.Error("unknown engine formatting broken")
	}
}

func TestSolvePersistentEngine(t *testing.T) {
	in := duedate.PaperExample(duedate.CDD)
	opts := duedate.Options{Iterations: 80, Grid: 1, Block: 8, TempSamples: 50}
	normal, err := duedate.Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Persistent = true
	pers, err := duedate.Solve(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if normal.BestCost != pers.BestCost {
		t.Errorf("persistent engine differs: %d vs %d", pers.BestCost, normal.BestCost)
	}
	if pers.SimSeconds >= normal.SimSeconds {
		t.Errorf("persistent engine not faster: %g vs %g", pers.SimSeconds, normal.SimSeconds)
	}
}
