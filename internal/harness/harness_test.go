package harness

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/problem"
)

// quickSweep runs the tiny preset once per kind and is shared by the
// structural tests below.
func quickSweep(t *testing.T, kind problem.Kind) *Sweep {
	t.Helper()
	sw, err := RunSweep(context.Background(), Quick(), kind, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestSweepStructureCDD(t *testing.T) {
	sw := quickSweep(t, problem.CDD)
	p := Quick()
	if len(sw.Rows) != len(p.Sizes) {
		t.Fatalf("rows = %d, want %d", len(sw.Rows), len(p.Sizes))
	}
	wantInstances := len(p.Sizes) * p.Records * 4 // ×4 h factors
	if len(sw.Instances) != wantInstances {
		t.Fatalf("instances = %d, want %d", len(sw.Instances), wantInstances)
	}
	for _, row := range sw.Rows {
		for _, algo := range AlgoNames {
			if _, ok := row.MeanPctDev[algo]; !ok {
				t.Fatalf("size %d missing algo %s", row.Size, algo)
			}
			if row.MeanSim[algo] <= 0 {
				t.Errorf("size %d algo %s has no simulated time", row.Size, algo)
			}
		}
		if row.RefWall7 <= 0 || row.RefWall18 <= 0 {
			t.Errorf("size %d missing reference times", row.Size)
		}
	}
}

func TestSweepStructureUCDDCP(t *testing.T) {
	sw := quickSweep(t, problem.UCDDCP)
	p := Quick()
	if len(sw.Instances) != len(p.Sizes)*p.Records {
		t.Fatalf("instances = %d, want %d", len(sw.Instances), len(p.Sizes)*p.Records)
	}
	// Quality sanity: the GPU SA_high ensemble should stay within a loose
	// band of the CPU reference even in the quick preset.
	for _, row := range sw.Rows {
		if dev := row.MeanPctDev["SA_high"]; dev > 25 {
			t.Errorf("size %d: SA_high %%Δ = %.2f, implausibly bad", row.Size, dev)
		}
	}
}

func TestRenderersNonEmpty(t *testing.T) {
	sw := quickSweep(t, problem.CDD)
	dev := sw.DeviationTable()
	if !strings.Contains(dev, "TABLE II") || !strings.Contains(dev, "SA_high") {
		t.Errorf("deviation table malformed:\n%s", dev)
	}
	sp := sw.SpeedupTable()
	if !strings.Contains(sp, "TABLE III") || !strings.Contains(sp, "[7]") {
		t.Errorf("speedup table malformed:\n%s", sp)
	}
	rt := sw.RuntimeTable()
	if !strings.Contains(rt, "FIGURE 14") {
		t.Errorf("runtime table malformed:\n%s", rt)
	}
	for name, csv := range map[string]string{
		"DeviationCSV": sw.DeviationCSV(),
		"SpeedupCSV":   sw.SpeedupCSV(),
		"RuntimeCSV":   sw.RuntimeCSV(),
	} {
		lines := strings.Count(csv, "\n")
		if lines < 3 {
			t.Errorf("%s has only %d lines", name, lines)
		}
	}
	checks := sw.ShapeChecks()
	if len(checks) != 5 {
		t.Errorf("got %d shape checks, want 5", len(checks))
	}
	rendered := RenderChecks(checks)
	if !strings.Contains(rendered, "DPSO degrades") {
		t.Errorf("checks rendering malformed:\n%s", rendered)
	}
}

func TestUCDDCPTablesUseOwnTitles(t *testing.T) {
	sw := quickSweep(t, problem.UCDDCP)
	if !strings.Contains(sw.DeviationTable(), "TABLE IV") {
		t.Error("UCDDCP deviation table should be Table IV")
	}
	if !strings.Contains(sw.SpeedupTable(), "TABLE V") {
		t.Error("UCDDCP speedup table should be Table V")
	}
	if !strings.Contains(sw.RuntimeTable(), "FIGURE 16") {
		t.Error("UCDDCP runtime table should be Figure 16")
	}
}

func TestFigure11SmallSurface(t *testing.T) {
	cfg := Fig11Config{
		Size:        20,
		Block:       16,
		Threads:     []int{16, 64},
		Generations: []int{20, 80},
		TempSamples: 50,
	}
	points, err := Figure11(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	byKey := map[[2]int]Fig11Point{}
	for _, p := range points {
		byKey[[2]int{p.Threads, p.Generations}] = p
		if p.SimSeconds <= 0 {
			t.Errorf("point %+v has no simulated time", p)
		}
	}
	// Figure 11 shape: both axes increase the simulated runtime.
	if !(byKey[[2]int{16, 80}].SimSeconds > byKey[[2]int{16, 20}].SimSeconds) {
		t.Error("more generations did not increase sim time")
	}
	if !(byKey[[2]int{64, 20}].SimSeconds > byKey[[2]int{16, 20}].SimSeconds) {
		t.Error("more threads did not increase sim time")
	}
	csv := Fig11CSV(points)
	if strings.Count(csv, "\n") != 5 {
		t.Errorf("CSV malformed:\n%s", csv)
	}
}

func TestPresets(t *testing.T) {
	full := Full()
	if full.Grid != 4 || full.Block != 192 {
		t.Errorf("full preset geometry %dx%d, paper uses 4x192", full.Grid, full.Block)
	}
	if full.ItersLow != 1000 || full.ItersHigh != 5000 {
		t.Errorf("full preset iterations %d/%d, paper uses 1000/5000", full.ItersLow, full.ItersHigh)
	}
	if full.Ensemble() != 768 {
		t.Errorf("full ensemble = %d, paper uses 768", full.Ensemble())
	}
	if got := ByName("full").Name; got != "full" {
		t.Errorf("ByName(full) = %s", got)
	}
	if got := ByName("nonsense").Name; got != "scaled" {
		t.Errorf("ByName fallback = %s, want scaled", got)
	}
	if len(full.Sizes) != 7 || full.Sizes[6] != 1000 {
		t.Errorf("full sizes = %v", full.Sizes)
	}
}

func TestCompareStrategies(t *testing.T) {
	rows, err := CompareStrategies(context.Background(), Quick(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Quick().Sizes) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Quick().Sizes))
	}
	out := RenderStrategies(rows)
	if !strings.Contains(out, "STRATEGY COMPARISON") || !strings.Contains(out, "async") {
		t.Errorf("rendering malformed:\n%s", out)
	}
}

func TestSweepJSONRoundtrip(t *testing.T) {
	sw := quickSweep(t, problem.CDD)
	var buf bytes.Buffer
	if err := sw.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSweepJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != sw.Kind || len(back.Rows) != len(sw.Rows) || len(back.Instances) != len(sw.Instances) {
		t.Fatalf("roundtrip lost structure: %+v", back)
	}
	for i, row := range sw.Rows {
		for _, algo := range AlgoNames {
			if back.Rows[i].MeanPctDev[algo] != row.MeanPctDev[algo] {
				t.Fatalf("size %d algo %s: %v != %v", row.Size, algo,
					back.Rows[i].MeanPctDev[algo], row.MeanPctDev[algo])
			}
		}
	}
	// The archive is enough to re-render every table.
	if !strings.Contains(back.DeviationTable(), "TABLE II") {
		t.Error("re-rendering from archive failed")
	}
}

func TestReadSweepJSONRejects(t *testing.T) {
	if _, err := ReadSweepJSON(strings.NewReader(`{"kind":"WAT","rows":[{}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadSweepJSON(strings.NewReader(`{"kind":"CDD","rows":[]}`)); err == nil {
		t.Error("empty archive accepted")
	}
	if _, err := ReadSweepJSON(strings.NewReader(`garbage`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCompareSweeps(t *testing.T) {
	a := quickSweep(t, problem.CDD)
	lines, err := CompareSweeps(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(a.Rows)*len(AlgoNames) {
		t.Errorf("got %d diff lines, want %d", len(lines), len(a.Rows)*len(AlgoNames))
	}
	for _, l := range lines {
		if !strings.Contains(l, "+0.000") {
			t.Errorf("self-diff not zero: %s", l)
		}
	}
	b := quickSweep(t, problem.UCDDCP)
	if _, err := CompareSweeps(a, b); err == nil {
		t.Error("cross-kind comparison accepted")
	}
}
