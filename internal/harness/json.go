package harness

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/problem"
)

// Result archives: a Sweep (preset, per-instance measurements and
// per-size aggregates) serializes to JSON so full experiment runs can be
// stored next to the CSVs and reloaded for later analysis or regression
// comparison against a newer run.

// sweepJSON is the wire form; Kind is a string for self-description.
type sweepJSON struct {
	Preset    Preset           `json:"preset"`
	Kind      string           `json:"kind"`
	Instances []InstanceResult `json:"instances"`
	Rows      []SizeRow        `json:"rows"`
	ElapsedMS float64          `json:"elapsedMs"`
}

// WriteJSON serializes the sweep to w.
func (sw *Sweep) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sweepJSON{
		Preset:    sw.Preset,
		Kind:      sw.Kind.String(),
		Instances: sw.Instances,
		Rows:      sw.Rows,
		ElapsedMS: sw.Elapsed.Seconds() * 1e3,
	})
}

// ReadSweepJSON parses a sweep archive.
func ReadSweepJSON(r io.Reader) (*Sweep, error) {
	var w sweepJSON
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, err
	}
	sw := &Sweep{Preset: w.Preset, Instances: w.Instances, Rows: w.Rows}
	switch w.Kind {
	case "CDD":
		sw.Kind = problem.CDD
	case "UCDDCP":
		sw.Kind = problem.UCDDCP
	default:
		return nil, fmt.Errorf("harness: unknown sweep kind %q", w.Kind)
	}
	if len(sw.Rows) == 0 {
		return nil, fmt.Errorf("harness: sweep archive has no rows")
	}
	return sw, nil
}

// CompareSweeps diffs two sweeps of the same kind/sizes: for each size
// and algorithm it reports the change in mean %Δ (newer − older). Used
// for regression tracking across library versions.
func CompareSweeps(older, newer *Sweep) ([]string, error) {
	if older.Kind != newer.Kind {
		return nil, fmt.Errorf("harness: comparing %v sweep against %v", older.Kind, newer.Kind)
	}
	oldBySize := map[int]SizeRow{}
	for _, r := range older.Rows {
		oldBySize[r.Size] = r
	}
	var lines []string
	for _, r := range newer.Rows {
		o, ok := oldBySize[r.Size]
		if !ok {
			continue
		}
		for _, algo := range AlgoNames {
			delta := r.MeanPctDev[algo] - o.MeanPctDev[algo]
			lines = append(lines, fmt.Sprintf("n=%d %s: %+0.3f pts (%.3f → %.3f)",
				r.Size, algo, delta, o.MeanPctDev[algo], r.MeanPctDev[algo]))
		}
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("harness: sweeps share no sizes")
	}
	return lines, nil
}
