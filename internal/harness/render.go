package harness

import (
	"fmt"
	"strings"

	"repro/internal/problem"
)

// DeviationTable renders the sweep's mean %Δ per size and algorithm —
// Table II for CDD sweeps, Table IV for UCDDCP sweeps.
func (sw *Sweep) DeviationTable() string {
	var b strings.Builder
	title := "TABLE II — average %Δ for CDD (relative to the CPU SA reference)"
	if sw.Kind == problem.UCDDCP {
		title = "TABLE IV — average %Δ for UCDDCP (relative to the CPU SA reference)"
	}
	fmt.Fprintf(&b, "%s  [preset %s]\n", title, sw.Preset.Name)
	fmt.Fprintf(&b, "%6s %12s %12s %12s %12s\n", "Jobs", "SA_low", "SA_high", "DPSO_low", "DPSO_high")
	for _, row := range sw.Rows {
		fmt.Fprintf(&b, "%6d", row.Size)
		for _, algo := range AlgoNames {
			fmt.Fprintf(&b, " %12.3f", row.MeanPctDev[algo])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// SpeedupTable renders the budget-normalized device-model speedups
// against the serial CPU references — Table III for CDD, Table V for
// UCDDCP (which the paper reports only against [8]). The model speedup is
// the meaningful column on an arbitrary host: it compares the simulated
// GT 560M's time for the run's workload against the measured serial CPU
// seconds-per-evaluation. Host wall-clock ratios (which depend on the
// machine's core count) are available in SpeedupCSV.
func (sw *Sweep) SpeedupTable() string {
	var b strings.Builder
	title := "TABLE III — device-model speedups for CDD (vs [7]-style SA ref)"
	if sw.Kind == problem.UCDDCP {
		title = "TABLE V — device-model speedups for UCDDCP (vs [8]-style SA ref)"
	}
	fmt.Fprintf(&b, "%s  [preset %s]\n", title, sw.Preset.Name)
	fmt.Fprintf(&b, "%6s", "Jobs")
	for _, algo := range AlgoNames {
		fmt.Fprintf(&b, " %10s[7]", algo)
	}
	fmt.Fprintln(&b)
	for _, row := range sw.Rows {
		fmt.Fprintf(&b, "%6d", row.Size)
		for _, algo := range AlgoNames {
			fmt.Fprintf(&b, " %13.2f", row.SpeedupSim7[algo])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RuntimeTable renders mean runtimes per size — the data behind the
// runtime plots of Figures 14 (CDD) and 16 (UCDDCP): host wall-clock and
// simulated device seconds for the four parallel algorithms plus the CPU
// reference.
func (sw *Sweep) RuntimeTable() string {
	var b strings.Builder
	fig := "FIGURE 14 — CDD runtimes (seconds)"
	if sw.Kind == problem.UCDDCP {
		fig = "FIGURE 16 — UCDDCP runtimes (seconds)"
	}
	fmt.Fprintf(&b, "%s  [preset %s]\n", fig, sw.Preset.Name)
	fmt.Fprintf(&b, "%6s %12s", "Jobs", "CPU_ref")
	for _, algo := range AlgoNames {
		fmt.Fprintf(&b, " %10s(w)", algo)
	}
	for _, algo := range AlgoNames {
		fmt.Fprintf(&b, " %10s(s)", algo)
	}
	fmt.Fprintln(&b)
	for _, row := range sw.Rows {
		fmt.Fprintf(&b, "%6d %12.4f", row.Size, row.RefWall7)
		for _, algo := range AlgoNames {
			fmt.Fprintf(&b, " %13.4f", row.MeanWall[algo])
		}
		for _, algo := range AlgoNames {
			fmt.Fprintf(&b, " %13.4f", row.MeanSim[algo])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// DeviationCSV emits the bar-chart data of Figures 12 (CDD) / 15 (UCDDCP):
// one row per size and algorithm, with the metrics counters (evaluation,
// acceptance and incremental-evaluation means) alongside the quality.
func (sw *Sweep) DeviationCSV() string {
	var b strings.Builder
	b.WriteString("size,algorithm,mean_pct_dev,mean_evals,mean_accepts,mean_delta_evals\n")
	for _, row := range sw.Rows {
		for _, algo := range AlgoNames {
			fmt.Fprintf(&b, "%d,%s,%.4f,%.1f,%.1f,%.1f\n", row.Size, algo,
				row.MeanPctDev[algo], row.MeanEvals[algo], row.MeanAccepts[algo], row.MeanDeltaEvals[algo])
		}
	}
	return b.String()
}

// SpeedupCSV emits the line-chart data of Figures 13 (CDD) / 17 (UCDDCP):
// budget-normalized wall and device-model speedups against both CPU
// references, plus the paper-style raw end-to-end sim ratio per size and
// algorithm.
func (sw *Sweep) SpeedupCSV() string {
	var b strings.Builder
	b.WriteString("size,algorithm,norm_wall_vs_sa_ref,norm_sim_vs_sa_ref,norm_wall_vs_ta_ref,raw_sim_vs_sa_ref\n")
	for _, row := range sw.Rows {
		for _, algo := range AlgoNames {
			fmt.Fprintf(&b, "%d,%s,%.4f,%.4f,%.4f,%.4f\n", row.Size, algo,
				row.SpeedupWall7[algo], row.SpeedupSim7[algo], row.SpeedupWall18[algo], row.RawSim7[algo])
		}
	}
	return b.String()
}

// RuntimeCSV emits the runtime-curve data of Figures 14 / 16.
func (sw *Sweep) RuntimeCSV() string {
	var b strings.Builder
	b.WriteString("size,series,seconds\n")
	for _, row := range sw.Rows {
		fmt.Fprintf(&b, "%d,CPU_ref,%.6f\n", row.Size, row.RefWall7)
		for _, algo := range AlgoNames {
			fmt.Fprintf(&b, "%d,%s_wall,%.6f\n", row.Size, algo, row.MeanWall[algo])
			fmt.Fprintf(&b, "%d,%s_sim,%.6f\n", row.Size, algo, row.MeanSim[algo])
		}
	}
	return b.String()
}
