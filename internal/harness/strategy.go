package harness

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/problem"
	"repro/internal/sa"
)

// StrategyRow compares the two parallel-SA strategies of Ferreiro et al.
// (Section V) on one instance size at equal evaluation budgets.
type StrategyRow struct {
	Size      int
	AsyncCost int64
	SyncCost  int64
	// AsyncPct is 100·(async−sync)/sync: negative means the asynchronous
	// strategy won, as the paper found ("premature convergence of the
	// latter approach").
	AsyncPct float64
	// AsyncAccepts and SyncAccepts count accepted Metropolis moves across
	// the whole ensemble — the synchronous broadcast's premature
	// convergence shows up as a collapsed acceptance count.
	AsyncAccepts int64
	SyncAccepts  int64
}

// CompareStrategies runs asynchronous vs synchronous parallel SA over the
// preset's benchmark (first CDD instance of each size) with identical
// total iteration budgets: the async chains run ItersLow iterations
// independently; the sync ensemble spends the same budget as Levels
// rounds of MarkovLen = 10 steps with broadcast between rounds.
func CompareStrategies(ctx context.Context, p Preset, progress io.Writer) ([]StrategyRow, error) {
	var rows []StrategyRow
	saCfg := sa.Config{Iterations: p.ItersLow, TempSamples: p.TempSamples}
	markov := 10
	for _, size := range p.Sizes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		instances, err := benchmarkInstances(p, problem.CDD, size)
		if err != nil {
			return nil, err
		}
		inst := instances[len(instances)-1]
		ens := parallel.Ensemble{Chains: p.Ensemble(), Seed: p.Seed ^ uint64(size)}
		async, err := (&parallel.AsyncSA{
			Inst: inst, SA: saCfg, Ens: ens, Parallel: true,
			Metrics: core.MetricsCounters,
		}).Solve(ctx, inst)
		if err != nil {
			return nil, err
		}
		sync, err := (&parallel.SyncSA{
			Inst: inst, SA: saCfg, Ens: ens,
			MarkovLen: markov, Levels: p.ItersLow / markov,
			Parallel: true,
			Metrics:  core.MetricsCounters,
		}).Solve(ctx, inst)
		if err != nil {
			return nil, err
		}
		row := StrategyRow{
			Size:      size,
			AsyncCost: async.BestCost,
			SyncCost:  sync.BestCost,
			AsyncPct:  100 * float64(async.BestCost-sync.BestCost) / float64(sync.BestCost),
		}
		if async.Metrics != nil {
			row.AsyncAccepts = async.Metrics.Acceptances
		}
		if sync.Metrics != nil {
			row.SyncAccepts = sync.Metrics.Acceptances
		}
		rows = append(rows, row)
		if progress != nil {
			fmt.Fprintf(progress, "strategy n=%d async=%d sync=%d (%.2f%%)\n",
				size, row.AsyncCost, row.SyncCost, row.AsyncPct)
		}
	}
	return rows, nil
}

// RenderStrategies formats the comparison as the Figures 7/8 discussion
// table.
func RenderStrategies(rows []StrategyRow) string {
	var b strings.Builder
	b.WriteString("STRATEGY COMPARISON — asynchronous vs synchronous parallel SA (Ferreiro et al.)\n")
	fmt.Fprintf(&b, "%6s %14s %14s %12s %14s %14s\n",
		"Jobs", "async best", "sync best", "async vs sync", "async accepts", "sync accepts")
	asyncWins := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %14d %14d %11.2f%% %14d %14d\n",
			r.Size, r.AsyncCost, r.SyncCost, r.AsyncPct, r.AsyncAccepts, r.SyncAccepts)
		if r.AsyncCost <= r.SyncCost {
			asyncWins++
		}
	}
	fmt.Fprintf(&b, "asynchronous wins or ties %d/%d sizes (the paper chose async for the\n", asyncWins, len(rows))
	b.WriteString("premature convergence of the synchronous broadcast scheme)\n")
	return b.String()
}
