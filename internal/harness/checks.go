package harness

import (
	"fmt"
	"strings"
)

// Check is one qualitative assertion from the paper's findings, evaluated
// against a sweep. EXPERIMENTS.md records these for the shipped runs and
// TestShapeChecks enforces the critical ones.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// ShapeChecks evaluates the paper's qualitative claims on the sweep:
//
//  1. DPSO's quality degrades with instance size much faster than SA's —
//     at the largest size DPSO_low is several times worse than SA_low.
//  2. SA_high dominates SA_low in quality at the largest size.
//  3. The high-iteration variants cost roughly 5× (budget ratio) the
//     simulated runtime of the low-iteration variants.
//  4. SA is faster than DPSO at equal iteration budgets.
//  5. The simulated-device speedup over the serial CPU reference grows
//     from the smallest to the largest size.
func (sw *Sweep) ShapeChecks() []Check {
	var checks []Check
	last := sw.Rows[len(sw.Rows)-1]
	first := sw.Rows[0]
	budgetRatio := float64(sw.Preset.ItersHigh) / float64(sw.Preset.ItersLow)

	gapFirst := first.MeanPctDev["DPSO_low"] - first.MeanPctDev["SA_low"]
	gapLast := last.MeanPctDev["DPSO_low"] - last.MeanPctDev["SA_low"]
	dpsoWorse := gapLast > gapFirst && gapLast > 0
	checks = append(checks, Check{
		Name: "DPSO degrades at scale",
		Pass: dpsoWorse,
		Detail: fmt.Sprintf("DPSO_low−SA_low gap: n=%d → %.3f%%, n=%d → %.3f%%",
			first.Size, gapFirst, last.Size, gapLast),
	})

	saHighBetter := last.MeanPctDev["SA_high"] <= last.MeanPctDev["SA_low"]
	checks = append(checks, Check{
		Name: "more iterations help SA",
		Pass: saHighBetter,
		Detail: fmt.Sprintf("n=%d: SA_high %.3f%% vs SA_low %.3f%%",
			last.Size, last.MeanPctDev["SA_high"], last.MeanPctDev["SA_low"]),
	})

	ratio := last.MeanSim["SA_high"] / last.MeanSim["SA_low"]
	ratioOK := ratio > budgetRatio*0.6 && ratio < budgetRatio*1.7
	checks = append(checks, Check{
		Name: "runtime scales with iterations",
		Pass: ratioOK,
		Detail: fmt.Sprintf("n=%d: sim(SA_high)/sim(SA_low) = %.2f (budget ratio %.1f)",
			last.Size, ratio, budgetRatio),
	})

	saFaster := last.MeanSim["SA_low"] <= last.MeanSim["DPSO_low"]*1.05
	checks = append(checks, Check{
		Name: "SA at least as fast as DPSO",
		Pass: saFaster,
		Detail: fmt.Sprintf("n=%d: sim(SA_low) %.4fs vs sim(DPSO_low) %.4fs",
			last.Size, last.MeanSim["SA_low"], last.MeanSim["DPSO_low"]),
	})

	growth := last.SpeedupSim7["SA_low"] > first.SpeedupSim7["SA_low"]
	checks = append(checks, Check{
		Name: "speedup grows with size",
		Pass: growth,
		Detail: fmt.Sprintf("model speedup SA_low: n=%d → %.1f, n=%d → %.1f",
			first.Size, first.SpeedupSim7["SA_low"], last.Size, last.SpeedupSim7["SA_low"]),
	})
	return checks
}

// RenderChecks formats checks for reports.
func RenderChecks(checks []Check) string {
	var b strings.Builder
	for _, c := range checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %-32s %s\n", status, c.Name, c.Detail)
	}
	return b.String()
}
