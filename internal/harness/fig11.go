package harness

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/orlib"
	"repro/internal/parallel"
	"repro/internal/sa"
)

// Fig11Point is one cell of the Figure 11 surface: the runtime of the
// parallel UCDDCP fitness pipeline for a thread count × generation count.
type Fig11Point struct {
	Threads     int
	Generations int
	WallSeconds float64
	SimSeconds  float64
}

// Fig11Config parameterizes the surface sweep. Zero values take the
// paper-shaped defaults (UCDDCP, n = 100, threads 48…768, generations
// 100…1000).
type Fig11Config struct {
	Size        int
	Block       int
	Threads     []int
	Generations []int
	Seed        uint64
	TempSamples int
}

func (c Fig11Config) normalized() Fig11Config {
	if c.Size <= 0 {
		c.Size = 100
	}
	if c.Block <= 0 {
		c.Block = 48
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{48, 96, 192, 384, 768}
	}
	if len(c.Generations) == 0 {
		c.Generations = []int{100, 250, 500, 1000}
	}
	if c.Seed == 0 {
		c.Seed = orlib.DefaultSeed
	}
	if c.TempSamples <= 0 {
		c.TempSamples = 200
	}
	return c
}

// Figure11 sweeps the runtime of the parallel asynchronous SA on a UCDDCP
// instance over thread counts and generation counts, reproducing the
// surface of Figure 11: runtime grows with both axes, and thread counts
// beyond the device's simultaneous capacity serialize block waves.
func Figure11(ctx context.Context, cfg Fig11Config, progress io.Writer) ([]Fig11Point, error) {
	cfg = cfg.normalized()
	instances, err := orlib.BenchmarkUCDDCP(cfg.Size, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	inst := instances[0]
	var points []Fig11Point
	for _, threads := range cfg.Threads {
		grid := (threads + cfg.Block - 1) / cfg.Block
		block := cfg.Block
		if threads < block {
			block = threads
			grid = 1
		}
		for _, gens := range cfg.Generations {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			saCfg := sa.Config{Iterations: gens, TempSamples: cfg.TempSamples}
			start := time.Now()
			res, err := (&parallel.GPUSA{
				Inst: inst, SA: saCfg,
				Grid: grid, Block: block, Seed: cfg.Seed,
			}).Solve(ctx, inst)
			if err != nil {
				return nil, err
			}
			p := Fig11Point{
				Threads:     grid * block,
				Generations: gens,
				WallSeconds: time.Since(start).Seconds(),
				SimSeconds:  res.SimSeconds,
			}
			points = append(points, p)
			if progress != nil {
				fmt.Fprintf(progress, "fig11 threads=%d gens=%d wall=%.3fs sim=%.4fs\n",
					p.Threads, p.Generations, p.WallSeconds, p.SimSeconds)
			}
		}
	}
	return points, nil
}

// Fig11CSV renders the surface as CSV.
func Fig11CSV(points []Fig11Point) string {
	var b strings.Builder
	b.WriteString("threads,generations,wall_seconds,sim_seconds\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%d,%d,%.6f,%.6f\n", p.Threads, p.Generations, p.WallSeconds, p.SimSeconds)
	}
	return b.String()
}
