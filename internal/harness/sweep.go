package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	duedate "repro"
	"repro/internal/core"
	"repro/internal/orlib"
	"repro/internal/parallel"
	"repro/internal/problem"
	"repro/internal/sa"
	"repro/internal/stats"
	"repro/internal/ta"
	"repro/internal/xrand"
)

// AlgoNames are the four parallel algorithms of the result tables, in the
// paper's column order.
var AlgoNames = []string{"SA_low", "SA_high", "DPSO_low", "DPSO_high"}

// InstanceRun is the outcome of one algorithm on one instance.
type InstanceRun struct {
	Cost   int64
	Wall   float64 // host seconds
	Sim    float64 // simulated device seconds
	Evals  int64   // fitness evaluations performed
	PctDev float64 // 100·(Z−Z_best)/Z_best against the CPU reference
	// Accepts and DeltaEvals come from the solver's metrics snapshot:
	// accepted moves (pbest refreshes for DPSO) and the share of fitness
	// evaluations served by the incremental O(Δ) path.
	Accepts    int64
	DeltaEvals int64
}

// InstanceResult collects everything measured on one instance.
type InstanceResult struct {
	Name       string
	Size       int
	RefCost    int64   // Z_best of the serial CPU SA reference ([7] stand-in)
	RefWall7   float64 // its wall-clock seconds
	RefEvals7  int64   // its fitness evaluations
	RefWall18  float64 // wall-clock of the serial TA reference ([18] stand-in)
	RefEvals18 int64   // its fitness evaluations
	Runs       map[string]InstanceRun
}

// SizeRow aggregates a job size: the mean %Δ of Tables II/IV, the mean
// speedups of Tables III/V and the mean runtimes of Figures 14/16.
type SizeRow struct {
	Size int
	// MeanPctDev, MeanWall, MeanSim and speedups are keyed by algorithm.
	MeanPctDev map[string]float64
	MeanWall   map[string]float64
	MeanSim    map[string]float64
	// MeanEvals, MeanAccepts and MeanDeltaEvals aggregate the metrics
	// counters of the parallel runs (Figures 12/15 companion columns).
	MeanEvals      map[string]float64
	MeanAccepts    map[string]float64
	MeanDeltaEvals map[string]float64
	// Speedups are budget-normalized: reference seconds-per-evaluation ×
	// the run's evaluation count, divided by the run's wall (Wall) or
	// simulated device (Sim) time.
	SpeedupWall7  map[string]float64
	SpeedupSim7   map[string]float64
	SpeedupWall18 map[string]float64
	// RawSim7 is the paper-style end-to-end ratio: the reference's wall
	// seconds divided by the run's simulated device seconds, without
	// budget normalization (so the high-iteration variants show ~5× lower
	// values, as in the paper's Tables III/V).
	RawSim7   map[string]float64
	RefWall7  float64
	RefWall18 float64
}

// Sweep is the full dataset behind one problem kind's tables and figures.
type Sweep struct {
	Preset    Preset
	Kind      problem.Kind
	Instances []InstanceResult
	Rows      []SizeRow
	Elapsed   time.Duration
}

// RunSweep executes the benchmark sweep for one problem kind. Progress
// lines go to progress when non-nil. A cancelled context stops the sweep
// before the next instance and returns the context's error.
func RunSweep(ctx context.Context, p Preset, kind problem.Kind, progress io.Writer) (*Sweep, error) {
	start := time.Now()
	sw := &Sweep{Preset: p, Kind: kind}
	for _, size := range p.Sizes {
		instances, err := benchmarkInstances(p, kind, size)
		if err != nil {
			return nil, err
		}
		var results []InstanceResult
		for idx, inst := range instances {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			seed := p.Seed ^ uint64(size)<<32 ^ uint64(idx)<<8 ^ uint64(kind)
			res, err := runInstance(ctx, p, inst, seed)
			if err != nil {
				return nil, err
			}
			results = append(results, res)
			if progress != nil {
				fmt.Fprintf(progress, "%s n=%d %s: ref=%d", kind, size, inst.Name, res.RefCost)
				for _, algo := range AlgoNames {
					fmt.Fprintf(progress, " %s=%.2f%%", algo, res.Runs[algo].PctDev)
				}
				fmt.Fprintln(progress)
			}
		}
		sw.Instances = append(sw.Instances, results...)
		sw.Rows = append(sw.Rows, aggregateSize(size, results))
	}
	sw.Elapsed = time.Since(start)
	return sw, nil
}

// benchmarkInstances returns the per-size instance slice of a kind.
func benchmarkInstances(p Preset, kind problem.Kind, size int) ([]*problem.Instance, error) {
	if kind == problem.UCDDCP {
		return orlib.BenchmarkUCDDCP(size, p.Records, p.Seed)
	}
	return orlib.BenchmarkCDD(size, p.Records, p.Seed)
}

// runInstance executes the references and the four parallel algorithms on
// one instance.
func runInstance(ctx context.Context, p Preset, inst *problem.Instance, seed uint64) (InstanceResult, error) {
	res := InstanceResult{
		Name: inst.Name,
		Size: inst.N(),
		Runs: make(map[string]InstanceRun, len(AlgoNames)),
	}

	// CPU reference [7]: the serial hybrid SA of Lässig et al. — a serial
	// ensemble of RefChains chains at the high iteration budget. Its best
	// value is Z_best, its wall time the CPU[7] runtime.
	saRef := sa.Config{
		Iterations:  p.ItersHigh,
		TempSamples: p.TempSamples,
	}
	refStart := time.Now()
	ref, err := (&parallel.AsyncSA{
		Label: "CPU-SA-ref", Inst: inst, SA: saRef,
		Ens:      parallel.Ensemble{Chains: p.RefChains, Seed: seed ^ 0xAE5},
		Parallel: false,
	}).Solve(ctx, inst)
	if err != nil {
		return res, err
	}
	res.RefWall7 = time.Since(refStart).Seconds()
	res.RefCost = ref.BestCost
	res.RefEvals7 = ref.Evaluations

	// CPU reference [18]: the Feldmann–Biskup metaheuristic family,
	// represented by serial Threshold Accepting with the same budget,
	// driven through the shared ensemble runtime.
	taStart := time.Now()
	taCfg := ta.Config{Iterations: p.ItersHigh, TempSamples: p.TempSamples}
	refTA, err := (&parallel.ChainEnsemble{
		Label: "CPU-TA-ref", Inst: inst,
		Ens:        parallel.Ensemble{Chains: p.RefChains, Seed: seed ^ 0x18},
		Iterations: p.ItersHigh,
		NewChain: func(inst *problem.Instance, c int, rng *xrand.XORWOW) parallel.Chain {
			return ta.NewChain(taCfg, core.NewEvaluator(inst), rng)
		},
	}).Solve(ctx, inst)
	if err != nil {
		return res, err
	}
	res.RefEvals18 = refTA.Evaluations
	res.RefWall18 = time.Since(taStart).Seconds()

	// The four parallel algorithms go through the facade, so the sweep
	// exercises exactly what library callers get, honors the preset's
	// engine selection, and collects the metrics counters.
	engine := duedate.EngineGPU
	if p.Engine != "" {
		var err error
		if engine, err = duedate.ParseEngine(p.Engine); err != nil {
			return res, err
		}
	}
	type runSpec struct {
		algo  duedate.Algorithm
		iters int
		seed  uint64
	}
	specs := map[string]runSpec{
		"SA_low":    {duedate.SA, p.ItersLow, seed},
		"SA_high":   {duedate.SA, p.ItersHigh, seed + 1},
		"DPSO_low":  {duedate.DPSO, p.ItersLow, seed + 2},
		"DPSO_high": {duedate.DPSO, p.ItersHigh, seed + 3},
	}
	for _, algo := range AlgoNames {
		sp := specs[algo]
		r, err := duedate.SolveContext(ctx, inst, duedate.Options{
			Algorithm:   sp.algo,
			Engine:      engine,
			Iterations:  sp.iters,
			Grid:        p.Grid,
			Block:       p.Block,
			Seed:        sp.seed,
			TempSamples: p.TempSamples,
			Metrics:     duedate.MetricsCounters,
		})
		if err != nil {
			return res, fmt.Errorf("harness: %s on %s: %w", algo, inst.Name, err)
		}
		run := InstanceRun{
			Cost:   r.BestCost,
			Wall:   r.Elapsed.Seconds(),
			Sim:    r.SimSeconds,
			Evals:  r.Evaluations,
			PctDev: core.PercentDeviation(r.BestCost, res.RefCost),
		}
		if m := r.Metrics; m != nil {
			run.Accepts = m.Acceptances
			run.DeltaEvals = m.DeltaEvaluations
		}
		res.Runs[algo] = run
	}
	return res, nil
}

// aggregateSize folds the per-instance results of one size into a row.
func aggregateSize(size int, results []InstanceResult) SizeRow {
	row := SizeRow{
		Size:           size,
		MeanPctDev:     map[string]float64{},
		MeanWall:       map[string]float64{},
		MeanSim:        map[string]float64{},
		MeanEvals:      map[string]float64{},
		MeanAccepts:    map[string]float64{},
		MeanDeltaEvals: map[string]float64{},
		SpeedupWall7:   map[string]float64{},
		SpeedupSim7:    map[string]float64{},
		SpeedupWall18:  map[string]float64{},
		RawSim7:        map[string]float64{},
	}
	var ref7, ref18 []float64
	for _, r := range results {
		ref7 = append(ref7, r.RefWall7)
		ref18 = append(ref18, r.RefWall18)
	}
	row.RefWall7 = stats.Mean(ref7)
	row.RefWall18 = stats.Mean(ref18)
	for _, algo := range AlgoNames {
		var devs, walls, sims []float64
		var evals, accepts, deltas []float64
		var spWall7, spSim7, spWall18, rawSim7 []float64
		for _, r := range results {
			run := r.Runs[algo]
			devs = append(devs, run.PctDev)
			walls = append(walls, run.Wall)
			sims = append(sims, run.Sim)
			evals = append(evals, float64(run.Evals))
			accepts = append(accepts, float64(run.Accepts))
			deltas = append(deltas, float64(run.DeltaEvals))
			// Budget-normalized speedups: the serial CPU reference's
			// seconds-per-evaluation, projected onto this run's
			// evaluation count, divided by the run's time. This is the
			// like-for-like "how much faster does the parallel engine
			// chew the same workload" ratio; the paper's end-to-end
			// implementation ratios are not reproducible without the
			// original binaries (see EXPERIMENTS.md).
			cpuPerEval7 := r.RefWall7 / float64(maxInt64(r.RefEvals7, 1))
			cpuPerEval18 := r.RefWall18 / float64(maxInt64(r.RefEvals18, 1))
			projected7 := cpuPerEval7 * float64(run.Evals)
			projected18 := cpuPerEval18 * float64(run.Evals)
			spWall7 = append(spWall7, stats.Speedup(projected7, run.Wall))
			spSim7 = append(spSim7, stats.Speedup(projected7, run.Sim))
			spWall18 = append(spWall18, stats.Speedup(projected18, run.Wall))
			rawSim7 = append(rawSim7, stats.Speedup(r.RefWall7, run.Sim))
		}
		row.MeanPctDev[algo] = stats.Mean(devs)
		row.MeanWall[algo] = stats.Mean(walls)
		row.MeanSim[algo] = stats.Mean(sims)
		row.MeanEvals[algo] = stats.Mean(evals)
		row.MeanAccepts[algo] = stats.Mean(accepts)
		row.MeanDeltaEvals[algo] = stats.Mean(deltas)
		row.SpeedupWall7[algo] = stats.Mean(spWall7)
		row.SpeedupSim7[algo] = stats.Mean(spSim7)
		row.SpeedupWall18[algo] = stats.Mean(spWall18)
		row.RawSim7[algo] = stats.Mean(rawSim7)
	}
	return row
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
