// Package harness reproduces the paper's evaluation section: Tables II–V
// and Figures 11–17. One sweep per problem kind runs the four parallel
// algorithms (SA and DPSO, each with a low and a high iteration budget)
// against the CPU reference implementations over the OR-library-style
// benchmark, collecting solution quality (%Δ, Tables II/IV and Figures
// 12/15), speedups (Tables III/V and Figures 13/17), and runtime curves
// (Figures 14/16). Figure 11's threads × generations runtime surface has
// its own driver.
//
// Because the full paper configuration (768 threads × 5000 iterations ×
// sizes up to 1000 × 40 instances) is hours of CPU, the harness ships two
// presets: Scaled (the default, minutes) and Full (paper parameters).
// EXPERIMENTS.md records the shape checks both must satisfy.
package harness

import "repro/internal/orlib"

// Preset bundles every knob of a sweep.
type Preset struct {
	// Name labels the preset in reports.
	Name string
	// Sizes are the job counts to sweep.
	Sizes []int
	// Records is the number of generated OR-library records per size;
	// each CDD record yields 4 instances (h ∈ {0.2,0.4,0.6,0.8}).
	Records int
	// Grid and Block are the GPU launch geometry (ensemble = Grid·Block).
	Grid, Block int
	// ItersLow and ItersHigh are the two iteration budgets of the paper
	// (1000 and 5000).
	ItersLow, ItersHigh int
	// TempSamples is the SA T₀ estimation sample count.
	TempSamples int
	// RefChains is the chain count of the serial CPU reference runs that
	// stand in for the published [7]/[18] results (Z_best and CPU time).
	RefChains int
	// Seed makes the whole sweep reproducible.
	Seed uint64
	// Engine names the execution backend of the four parallel algorithm
	// runs ("gpu", "cpu-parallel" or "cpu-serial"; empty means "gpu", the
	// paper's configuration). The CPU references always run serially.
	Engine string
}

// Ensemble returns the total GPU thread count.
func (p Preset) Ensemble() int { return p.Grid * p.Block }

// Scaled returns the default preset: the paper's iteration budgets on a
// smaller ensemble, fewer instances and sizes up to 200, so a sweep takes
// minutes of CPU while preserving every shape the paper reports.
func Scaled() Preset {
	return Preset{
		Name:        "scaled",
		Sizes:       []int{10, 20, 50, 100, 200},
		Records:     2,  // ×4 h-factors = 8 CDD instances per size
		Grid:        4,  // one block per simulated SM, as in the paper
		Block:       24, // ensemble of 96 chains
		ItersLow:    1000,
		ItersHigh:   5000,
		TempSamples: 1000,
		RefChains:   4,
		Seed:        orlib.DefaultSeed,
	}
}

// Quick returns a tiny preset for tests and smoke runs (seconds).
func Quick() Preset {
	return Preset{
		Name:        "quick",
		Sizes:       []int{10, 20},
		Records:     1,
		Grid:        4,
		Block:       4,
		ItersLow:    60,
		ItersHigh:   300,
		TempSamples: 100,
		RefChains:   2,
		Seed:        orlib.DefaultSeed,
	}
}

// Full returns the paper's configuration: 4 blocks × 192 threads, 1000
// and 5000 iterations, 10 records (40 CDD instances) per size, sizes up
// to 1000 jobs. Expect hours of CPU.
func Full() Preset {
	return Preset{
		Name:        "full",
		Sizes:       []int{10, 20, 50, 100, 200, 500, 1000},
		Records:     orlib.InstancesPerSize,
		Grid:        4,
		Block:       192,
		ItersLow:    1000,
		ItersHigh:   5000,
		TempSamples: 5000,
		RefChains:   8,
		Seed:        orlib.DefaultSeed,
	}
}

// ByName resolves a preset name ("scaled", "quick", "full"); unknown
// names return Scaled.
func ByName(name string) Preset {
	switch name {
	case "quick":
		return Quick()
	case "full":
		return Full()
	default:
		return Scaled()
	}
}
