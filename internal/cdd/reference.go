package cdd

import "repro/internal/problem"

// ReferenceOptimize computes the optimal timing of a fixed sequence by
// exhaustively evaluating every integer start time in [0, d]. Because the
// cost is piecewise linear in the start time with integer breakpoints, an
// integer optimum always exists, and no start beyond d can be optimal
// (every job would only grow more tardy). The function runs in O(n·d) and
// exists solely as a test oracle for OptimizeSequence.
func ReferenceOptimize(in *problem.Instance, seq []int) Result {
	comp := make([]int64, len(seq))
	var t int64
	for pos, job := range seq {
		t += int64(in.Jobs[job].P)
		comp[pos] = t
	}
	costAt := func(shift int64) int64 {
		var cost int64
		for pos, job := range seq {
			c := comp[pos] + shift
			if c < in.D {
				cost += int64(in.Jobs[job].Alpha) * (in.D - c)
			} else {
				cost += int64(in.Jobs[job].Beta) * (c - in.D)
			}
		}
		return cost
	}
	best := Result{Cost: costAt(0), Start: 0}
	limit := in.D
	if limit < 0 {
		limit = 0
	}
	for s := int64(1); s <= limit; s++ {
		if c := costAt(s); c < best.Cost {
			best = Result{Cost: c, Start: s}
		}
	}
	for pos := range seq {
		if comp[pos]+best.Start == in.D {
			best.DueJob = pos + 1
			break
		}
	}
	return best
}
