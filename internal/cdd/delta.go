package cdd

import "sort"

// This file implements incremental (delta) evaluation of the CDD linear
// algorithm. A Delta caches the timing state of a committed base sequence —
// completion times, position-prefix sums of the penalty weights α and β,
// and Fenwick trees over the per-position products α·C and β·C — and
// evaluates a candidate differing in k positions in O(k + log n · log k)
// instead of O(n), by expressing every aggregate the fused breakpoint walk
// needs as "committed prefix + correction from the changed positions".
//
// The candidate's completion times differ from the base only by a constant
// offset per segment between consecutive changed positions (the running sum
// of processing-time deltas), so each prefix aggregate at cut i is the
// committed value plus O(1) correction terms readable from per-change
// cumulative arrays built in O(k). The optimal breakpoint is then found by
// binary search instead of the descending walk: the stopping condition
// g(r) = Σ_{pos<r-1} α + Σ_{pos<r-1} β − Σβ is non-decreasing in r (all
// weights are non-negative), so the walk's stopping point is exactly the
// largest r with g(r) ≤ 0.
//
// Every quantity is the same exact int64 the fused full pass computes, so
// the returned cost is bit-identical to OptimizeArrays on the candidate.

// fenwick is a two-channel Fenwick (binary-indexed) tree over per-position
// values, answering prefix sums of α·C and β·C in O(log n) with O(log n)
// point updates. Both channels share one index traversal.
type fenwick struct {
	ac, bc []int64 // 1-based, len n+1
}

func (f *fenwick) init(n int) {
	f.ac = make([]int64, n+1)
	f.bc = make([]int64, n+1)
}

// build loads the per-position values in O(n).
func (f *fenwick) build(vac, vbc []int64) {
	n := len(vac)
	for i := 1; i <= n; i++ {
		f.ac[i] = vac[i-1]
		f.bc[i] = vbc[i-1]
	}
	for i := 1; i <= n; i++ {
		if j := i + i&(-i); j <= n {
			f.ac[j] += f.ac[i]
			f.bc[j] += f.bc[i]
		}
	}
}

// add applies a point update at 0-based position pos.
func (f *fenwick) add(pos int, dac, dbc int64) {
	for i := pos + 1; i < len(f.ac); i += i & (-i) {
		f.ac[i] += dac
		f.bc[i] += dbc
	}
}

// prefix returns both channel sums over 0-based positions < i.
func (f *fenwick) prefix(i int) (ac, bc int64) {
	for ; i > 0; i -= i & (-i) {
		ac += f.ac[i]
		bc += f.bc[i]
	}
	return ac, bc
}

// Delta evaluates candidates against a committed base sequence under a
// propose/commit protocol:
//
//	cost := dl.Reset(seq)          // cache seq, full O(n) rebuild
//	cost := dl.Propose(cand, pos)  // O(k+log n·log k); cand differs from
//	                               // the base at (a subset of) positions pos
//	dl.Commit()                    // adopt the proposed candidate
//
// Propose does not mutate the cache, so rejected candidates cost nothing
// further; at most one proposal is pending and a new Propose replaces it.
// When the changed window exceeds n/2 (population crossovers), Propose
// falls back to the fused full pass transparently. Commit is O(span·log n)
// for the windowed path and O(n) when the span exceeds n/8.
//
// The generic index type lets the host metaheuristics ([]int sequences) and
// the simulated GPU pipeline ([]int32 rows) share this one implementation.
// A Delta is not safe for concurrent use.
type Delta[S Index] struct {
	p, alpha, beta []int64
	d              int64
	n              int

	// Committed state.
	seq      []S
	comp     []int64 // completion times of the start-0 schedule
	pa, pb   []int64 // pa[i] = Σ_{pos<i} α[seq[pos]], len n+1
	vac, vbc []int64 // per-position α·C and β·C
	fen      fenwick
	totalBC  int64
	cost     int64
	start    int64
	dueJob   int
	tau      int // #{pos : comp[pos] ≤ d}, the committed boundary position

	// Pending proposal.
	pendValid  bool
	pendFull   bool // candidate held wholesale in fullSeq
	pendCost   int64
	pendStart  int64
	pendDueJob int
	k          int   // number of genuinely changed positions
	qs         []int // those positions, sorted ascending
	jobs       []S   // candidate job at each changed position
	// Cumulative corrections over the changed positions, 1-based with a
	// leading zero: cumD/cumA/cumB accumulate the deltas of p/α/β at the
	// changes, cumAC/cumBC the deltas of α·C/β·C at the changes themselves
	// (new job at its shifted completion), segA/segB the offset corrections
	// cumD·Σα (resp. β) of the unchanged segment following each change.
	cumD, cumA, cumB, cumAC, cumBC, segA, segB []int64

	fullSeq  []S
	fullComp []int64
}

// NewDelta builds a delta evaluator over the given parameter arrays (as
// produced by ParamArrays) and due date. Reset must be called before the
// first Propose.
func NewDelta[S Index](p, alpha, beta []int64, d int64) *Delta[S] {
	n := len(p)
	dl := &Delta[S]{p: p, alpha: alpha, beta: beta, d: d, n: n}
	dl.seq = make([]S, n)
	dl.comp = make([]int64, n)
	dl.pa = make([]int64, n+1)
	dl.pb = make([]int64, n+1)
	dl.vac = make([]int64, n)
	dl.vbc = make([]int64, n)
	dl.fen.init(n)
	dl.qs = make([]int, 0, n)
	dl.jobs = make([]S, n)
	dl.cumD = make([]int64, n+1)
	dl.cumA = make([]int64, n+1)
	dl.cumB = make([]int64, n+1)
	dl.cumAC = make([]int64, n+1)
	dl.cumBC = make([]int64, n+1)
	dl.segA = make([]int64, n+1)
	dl.segB = make([]int64, n+1)
	dl.fullSeq = make([]S, n)
	dl.fullComp = make([]int64, n)
	return dl
}

// N returns the sequence length the delta was built for.
func (dl *Delta[S]) N() int { return dl.n }

// Reset caches seq as the committed base sequence, rebuilding every
// aggregate in O(n), and returns its optimal cost. Any pending proposal is
// discarded.
func (dl *Delta[S]) Reset(seq []S) int64 {
	copy(dl.seq, seq)
	dl.cost, dl.start, dl.dueJob, _ = OptimizeArrays(dl.seq, dl.p, dl.alpha, dl.beta, dl.d, dl.comp)
	dl.refreshPrefixes()
	dl.pendValid = false
	return dl.cost
}

// refreshPrefixes rebuilds the prefix arrays, per-position products,
// Fenwick trees and totals from dl.seq and dl.comp in O(n).
func (dl *Delta[S]) refreshPrefixes() {
	var tbc int64
	for pos, job := range dl.seq {
		dl.pa[pos+1] = dl.pa[pos] + dl.alpha[job]
		dl.pb[pos+1] = dl.pb[pos] + dl.beta[job]
		dl.vac[pos] = dl.alpha[job] * dl.comp[pos]
		dl.vbc[pos] = dl.beta[job] * dl.comp[pos]
		tbc += dl.vbc[pos]
	}
	dl.fen.build(dl.vac, dl.vbc)
	dl.totalBC = tbc
	dl.tau = sort.Search(dl.n, func(i int) bool { return dl.comp[i] > dl.d })
}

// firstAbove returns the smallest i in [lo, hi) with arr[i] > t, or hi if
// none; arr must be non-decreasing on the range. The search probes outward
// from guess g first: between neighbouring sequences the boundary moves by
// only a few positions, so galloping from the committed value needs O(log
// shift) probes instead of O(log n).
func firstAbove(arr []int64, lo, hi int, t int64, g int) int {
	if lo >= hi {
		return hi
	}
	if g < lo {
		g = lo
	} else if g >= hi {
		g = hi - 1
	}
	if arr[g] > t {
		// Answer ≤ g: gallop left for an anchor ≤ t.
		step := 1
		for g-step >= lo && arr[g-step] > t {
			g -= step
			step <<= 1
		}
		hi = g
		if g-step >= lo {
			lo = g - step + 1
		}
	} else {
		// Answer > g: gallop right for an anchor > t.
		step := 1
		for g+step < hi && arr[g+step] <= t {
			g += step
			step <<= 1
		}
		lo = g + 1
		if g+step < hi {
			hi = g + step
		}
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arr[mid] > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// firstAboveSum is firstAbove over the elementwise sum a[i]+b[i].
func firstAboveSum(a, b []int64, lo, hi int, t int64, g int) int {
	if lo >= hi {
		return hi
	}
	if g < lo {
		g = lo
	} else if g >= hi {
		g = hi - 1
	}
	if a[g]+b[g] > t {
		step := 1
		for g-step >= lo && a[g-step]+b[g-step] > t {
			g -= step
			step <<= 1
		}
		hi = g
		if g-step >= lo {
			lo = g - step + 1
		}
	} else {
		step := 1
		for g+step < hi && a[g+step]+b[g+step] <= t {
			g += step
			step <<= 1
		}
		lo = g + 1
		if g+step < hi {
			hi = g + step
		}
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid]+b[mid] > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Committed returns the optimal timing of the committed base sequence.
func (dl *Delta[S]) Committed() (cost, start int64, dueJob int) {
	return dl.cost, dl.start, dl.dueJob
}

// Pending returns the optimal timing of the pending candidate. It panics
// when no proposal is pending.
func (dl *Delta[S]) Pending() (cost, start int64, dueJob int) {
	if !dl.pendValid {
		panic("cdd: Pending without Propose")
	}
	return dl.pendCost, dl.pendStart, dl.pendDueJob
}

// Propose evaluates cand, which must equal the committed base sequence
// everywhere outside positions (order and duplicates in positions are
// irrelevant; entries where cand agrees with the base are ignored). It
// returns the candidate's optimal cost — bit-identical to a full
// OptimizeArrays pass — without mutating the committed cache. The caller
// keeps ownership of cand; Commit does not need it again.
func (dl *Delta[S]) Propose(cand []S, positions []int) int64 {
	dl.qs = dl.qs[:0]
	for _, q := range positions {
		if cand[q] != dl.seq[q] {
			dl.qs = append(dl.qs, q)
		}
	}
	if len(dl.qs) <= 16 {
		// Insertion sort: the hot path hands over a handful of positions
		// (Pert = 4), far below sort.Ints' dispatch overhead.
		for i := 1; i < len(dl.qs); i++ {
			for j := i; j > 0 && dl.qs[j] < dl.qs[j-1]; j-- {
				dl.qs[j], dl.qs[j-1] = dl.qs[j-1], dl.qs[j]
			}
		}
	} else {
		sort.Ints(dl.qs)
	}
	k := 0
	for i, q := range dl.qs {
		if i > 0 && q == dl.qs[k-1] {
			continue
		}
		dl.qs[k] = q
		k++
	}
	dl.qs = dl.qs[:k]
	dl.k = k
	dl.pendValid = true

	if k == 0 {
		dl.pendFull = false
		dl.pendCost, dl.pendStart, dl.pendDueJob = dl.cost, dl.start, dl.dueJob
		return dl.pendCost
	}
	if k > dl.n/2 {
		// The change is not sparse; a fused full pass is cheaper than the
		// correction machinery.
		dl.pendFull = true
		copy(dl.fullSeq, cand)
		dl.pendCost, dl.pendStart, dl.pendDueJob, _ =
			OptimizeArrays(dl.fullSeq, dl.p, dl.alpha, dl.beta, dl.d, dl.fullComp)
		return dl.pendCost
	}

	dl.pendFull = false
	for j, q := range dl.qs {
		oldJob, newJob := dl.seq[q], cand[q]
		dl.jobs[j] = newJob
		dl.cumD[j+1] = dl.cumD[j] + dl.p[newJob] - dl.p[oldJob]
		dl.cumA[j+1] = dl.cumA[j] + dl.alpha[newJob] - dl.alpha[oldJob]
		dl.cumB[j+1] = dl.cumB[j] + dl.beta[newJob] - dl.beta[oldJob]
		newC := dl.comp[q] + dl.cumD[j+1]
		dl.cumAC[j+1] = dl.cumAC[j] + dl.alpha[newJob]*newC - dl.vac[q]
		dl.cumBC[j+1] = dl.cumBC[j] + dl.beta[newJob]*newC - dl.vbc[q]
		hi := dl.n
		if j+1 < k {
			hi = dl.qs[j+1]
		}
		dl.segA[j+1] = dl.segA[j] + dl.cumD[j+1]*(dl.pa[hi]-dl.pa[q+1])
		dl.segB[j+1] = dl.segB[j] + dl.cumD[j+1]*(dl.pb[hi]-dl.pb[q+1])
	}
	dl.pendCost, dl.pendStart, dl.pendDueJob = dl.deltaTiming()
	return dl.pendCost
}

// changedBefore returns the number of changed positions < i. qs is sorted,
// so a linear scan with early exit beats binary search at hot-path sizes.
func (dl *Delta[S]) changedBefore(i int) int {
	qs := dl.qs
	if len(qs) > 16 {
		return sort.SearchInts(qs, i)
	}
	c := 0
	for _, q := range qs {
		if q >= i {
			break
		}
		c++
	}
	return c
}

// compAt returns the candidate's completion time at pos: the committed
// value plus the processing-time offset of the segment pos falls in.
func (dl *Delta[S]) compAt(pos int) int64 {
	return dl.comp[pos] + dl.cumD[dl.changedBefore(pos+1)]
}

// paAt / pbAt return the candidate's prefix sums of α / β over pos < i.
func (dl *Delta[S]) paAt(i int) int64 { return dl.pa[i] + dl.cumA[dl.changedBefore(i)] }
func (dl *Delta[S]) pbAt(i int) int64 { return dl.pb[i] + dl.cumB[dl.changedBefore(i)] }

// pacbcAt returns the candidate's prefix sums of α·C and β·C over pos < i:
// the committed Fenwick prefix, plus the corrections at the changed
// positions themselves, plus the segment-offset corrections of unchanged
// positions — full segments from segA/segB and the partial segment
// containing i from the committed weight prefixes.
func (dl *Delta[S]) pacbcAt(i int) (int64, int64) {
	ac, bc := dl.fen.prefix(i)
	j := dl.changedBefore(i)
	ac += dl.cumAC[j]
	bc += dl.cumBC[j]
	if j > 0 {
		q := dl.qs[j-1]
		ac += dl.segA[j-1] + dl.cumD[j]*(dl.pa[i]-dl.pa[q+1])
		bc += dl.segB[j-1] + dl.cumD[j]*(dl.pb[i]-dl.pb[q+1])
	}
	return ac, bc
}

// deltaTiming mirrors the fused breakpoint walk of OptimizeArrays on the
// candidate, reading every aggregate through the correction accessors and
// replacing the descending walk by a binary search over the non-decreasing
// stopping condition.
func (dl *Delta[S]) deltaTiming() (cost, start int64, dueJob int) {
	n, d, k := dl.n, dl.d, dl.k
	totalB := dl.pb[n] + dl.cumB[k]
	_, totalBC := dl.pacbcAt(n)

	// τ: candidate completion times are strictly increasing (p ≥ 1), so the
	// boundary position is a binary search. The correction offset cumD[j] is
	// constant within each of the k+1 unchanged segments, so the segment
	// containing the boundary is found linearly (k is tiny) and the search
	// inside it probes the raw committed array against a shifted target —
	// no per-probe changedBefore.
	tau := n
	for j := 0; j <= k; j++ {
		segLo := 0
		if j > 0 {
			segLo = dl.qs[j-1]
		}
		segHi := n
		if j < k {
			segHi = dl.qs[j]
		}
		if segLo >= segHi {
			continue
		}
		target := d - dl.cumD[j]
		if dl.comp[segHi-1] <= target {
			continue
		}
		tau = firstAbove(dl.comp, segLo, segHi, target, dl.tau)
		break
	}
	if tau == 0 {
		return totalBC - d*totalB, 0, 0
	}
	if dl.compAt(tau-1) < d {
		a := dl.paAt(tau)
		b := totalB - dl.pbAt(tau)
		if b >= a {
			ac, bcPre := dl.pacbcAt(tau)
			bc := totalBC - bcPre
			return a*d - ac + bc - b*d, 0, 0
		}
	}
	// Largest r ∈ [1, τ] with g(r) = paC(r−1) + pbC(r−1) − totalB ≤ 0; g is
	// non-decreasing and g(1) = −totalB ≤ 0, so the search lands exactly
	// where the descending walk of the full pass stops. Same segmented
	// scheme: prefix index i has correction cumA[j]+cumB[j] with
	// j = #{q < i}, constant for i ∈ (qs[j−1], qs[j]].
	r := tau
	for j := 0; j <= k; j++ {
		segLo := 0
		if j > 0 {
			segLo = dl.qs[j-1] + 1
		}
		segHi := tau
		if j < k && dl.qs[j]+1 < segHi {
			segHi = dl.qs[j] + 1
		}
		if segLo >= segHi {
			if segLo >= tau {
				break
			}
			continue
		}
		target := totalB - dl.cumA[j] - dl.cumB[j]
		if dl.pa[segHi-1]+dl.pb[segHi-1] <= target {
			continue
		}
		r = firstAboveSum(dl.pa, dl.pb, segLo, segHi, target, dl.dueJob)
		break
	}
	cm := dl.compAt(r - 1)
	a := dl.paAt(r - 1)
	b := totalB - dl.pbAt(r-1)
	ac, bcPre := dl.pacbcAt(r - 1)
	bc := totalBC - bcPre
	return a*cm - ac + bc - b*cm, d - cm, r
}

// MaterializeComp writes the pending candidate's start-0 completion times
// into dst (length n) in O(n). The UCDDCP compression phase consumes this.
func (dl *Delta[S]) MaterializeComp(dst []int64) {
	if !dl.pendValid {
		panic("cdd: MaterializeComp without Propose")
	}
	if dl.pendFull {
		copy(dst, dl.fullComp)
		return
	}
	copy(dst, dl.comp)
	for j := 0; j < dl.k; j++ {
		off := dl.cumD[j+1]
		if off == 0 {
			continue
		}
		hi := dl.n
		if j+1 < dl.k {
			hi = dl.qs[j+1]
		}
		for pos := dl.qs[j]; pos < hi; pos++ {
			dst[pos] += off
		}
	}
}

// Commit adopts the pending candidate as the new committed base sequence.
// The windowed path updates only the affected span in O(span·log n); when
// the span exceeds n/8 — or the proposal was a full-pass fallback — the
// aggregates are rebuilt wholesale in O(n). Panics without a pending
// proposal.
func (dl *Delta[S]) Commit() {
	if !dl.pendValid {
		panic("cdd: Commit without Propose")
	}
	dl.pendValid = false
	k := dl.k
	if dl.pendFull {
		copy(dl.seq, dl.fullSeq)
		dl.commitRebuild()
		return
	}
	if k == 0 {
		return
	}
	span := dl.qs[k-1] - dl.qs[0] + 1
	if span > dl.n/8 || dl.cumD[k] != 0 || dl.cumA[k] != 0 || dl.cumB[k] != 0 {
		// Wide window, or the changed positions do not hold a permutation
		// of the same jobs (the corrections then reach past the window):
		// rebuild wholesale.
		for j, q := range dl.qs {
			dl.seq[q] = dl.jobs[j]
		}
		dl.commitRebuild()
		return
	}
	var dbcSum int64
	for j := 0; j < k; j++ {
		q := dl.qs[j]
		dl.seq[q] = dl.jobs[j]
		dbcSum += dl.updatePos(q, dl.cumD[j+1])
		// Unchanged positions of the segment (q, next): completion times
		// shift by the running offset; weight prefixes pa[i]/pb[i] for
		// i ∈ (q, next] gain the running weight deltas. Segments where the
		// respective correction is zero are skipped wholesale — for j = k−1
		// the weight deltas are zero by the guard above, so qs[j+1] is
		// never read out of range.
		if off := dl.cumD[j+1]; off != 0 {
			hi := dl.n
			if j+1 < k {
				hi = dl.qs[j+1]
			}
			for pos := q + 1; pos < hi; pos++ {
				dbcSum += dl.updatePos(pos, off)
			}
		}
		if da, db := dl.cumA[j+1], dl.cumB[j+1]; da != 0 || db != 0 {
			for i := q + 1; i <= dl.qs[j+1]; i++ {
				dl.pa[i] += da
				dl.pb[i] += db
			}
		}
	}
	dl.totalBC += dbcSum
	dl.cost, dl.start, dl.dueJob = dl.pendCost, dl.pendStart, dl.pendDueJob
	// Completion times inside the window moved; re-anchor the committed
	// boundary (a gallop from the old value, O(log shift)).
	dl.tau = firstAbove(dl.comp, 0, dl.n, dl.d, dl.tau)
}

// commitRebuild recomputes completion times and aggregates from dl.seq in
// O(n), reusing the already-computed pending timing for the cost fields.
func (dl *Delta[S]) commitRebuild() {
	var t int64
	for pos, job := range dl.seq {
		t += dl.p[job]
		dl.comp[pos] = t
	}
	dl.refreshPrefixes()
	dl.cost, dl.start, dl.dueJob = dl.pendCost, dl.pendStart, dl.pendDueJob
}

// updatePos applies the completion-time offset at pos (whose job in dl.seq
// is already current), refreshing the per-position products and the
// Fenwick trees, and returns the β·C delta for the running total.
func (dl *Delta[S]) updatePos(pos int, off int64) (dbc int64) {
	dl.comp[pos] += off
	job := dl.seq[pos]
	nvac := dl.alpha[job] * dl.comp[pos]
	nvbc := dl.beta[job] * dl.comp[pos]
	dac := nvac - dl.vac[pos]
	dbc = nvbc - dl.vbc[pos]
	if dac != 0 || dbc != 0 {
		dl.fen.add(pos, dac, dbc)
		dl.vac[pos] = nvac
		dl.vbc[pos] = nvbc
	}
	return dbc
}
