package cdd

// Index constrains the integer types a job sequence may be stored in: the
// host metaheuristics use []int, the simulated GPU pipeline stores its
// sequence rows as []int32. The generic evaluation cores below run on
// either without conversion, so the host evaluators and the device fitness
// kernels share one implementation and cannot drift.
type Index interface {
	~int | ~int32
}

// OptimizeArrays is the fused single-pass form of the O(n) linear
// algorithm, operating directly on primitive parameter arrays (indexed by
// job id) as the GPU fitness kernel does. One sweep over the sequence
// computes the base completion times together with the weighted penalty
// aggregates
//
//	A  = Σ_early α      AC = Σ_early α·C
//	B  = Σ_tardy β      BC = Σ_tardy β·C
//
// so that for any shift s the total penalty is the O(1) expression
// A·(d−s) − AC + BC + B·(s−d); the event-driven breakpoint walk then moves
// per-job terms between the aggregates and the final cost needs no second
// sweep over the sequence (the costAt pass of the original two-pass
// implementation is gone).
//
// comp is caller-provided scratch of length ≥ len(seq); on return it holds
// the completion times of a start-0 schedule. The returned dueJob is the
// 1-based position of the job completing exactly at d in the optimal
// timing (0 when the optimum starts at zero with no job at d), and ops is
// the abstract operation count the simulated device converts into cycle
// charges.
func OptimizeArrays[S Index](seq []S, p, alpha, beta []int64, d int64, comp []int64) (cost, start int64, dueJob, ops int) {
	n := len(seq)
	var t int64
	tau := 0
	var a, b, ac, bc int64
	for pos, job := range seq {
		t += p[job]
		comp[pos] = t
		if t <= d {
			tau = pos + 1
			a += alpha[job]
			ac += alpha[job] * t
		} else {
			b += beta[job]
			bc += beta[job] * t
		}
	}
	// The fused pass carries two extra multiply-accumulates per job
	// compared with the plain completion-time sweep.
	ops = 8 * n

	// cost at shift 0 is A·d − AC + BC − B·d; the early aggregates include
	// a job completing exactly at d, whose contribution is zero either way.
	if tau == 0 {
		return bc - d*b, 0, 0, ops + 4
	}
	if comp[tau-1] < d && b >= a {
		return a*d - ac + bc - b*d, 0, 0, ops + 6
	}

	// Breakpoint walk: job r completes exactly at d after a shift of
	// d − comp[r-1]. Entering the loop, job r = τ sits at d: its terms move
	// from the early to the tardy aggregates.
	r := tau
	jb := seq[r-1]
	a -= alpha[jb]
	ac -= alpha[jb] * comp[r-1]
	b += beta[jb]
	bc += beta[jb] * comp[r-1]
	for r > 1 && a > b {
		r--
		jb = seq[r-1]
		a -= alpha[jb]
		ac -= alpha[jb] * comp[r-1]
		b += beta[jb]
		bc += beta[jb] * comp[r-1]
		ops += 6
	}
	// At shift s = d − comp[r-1]: d − s = comp[r-1] and s − d = −comp[r-1].
	cm := comp[r-1]
	return a*cm - ac + bc - b*cm, d - cm, r, ops + 8
}

// CostArrays is the cost-only form of OptimizeArrays with identical
// arithmetic (bit-identical results) but no completion-time stores: the
// sweep is split at τ so each half reads a single penalty stream without a
// per-iteration branch, and the breakpoint walk reconstructs the
// completion times it needs by peeling processing times off the running
// sum. It is the fastest full evaluation and backs Evaluator.Cost, where
// callers never consume the timing details.
func CostArrays[S Index](seq []S, p, alpha, beta []int64, d int64) int64 {
	n := len(seq)
	var t, a, b, ac, bc int64
	i := 0
	for ; i < n; i++ {
		j := seq[i]
		t += p[j]
		if t > d {
			break
		}
		a += alpha[j]
		ac += alpha[j] * t
	}
	tau := i
	cm := t // completion of the last early job once the tardy head is removed
	if i < n {
		j := seq[i]
		cm = t - p[j]
		b += beta[j]
		bc += beta[j] * t
		for i++; i < n; i++ {
			j = seq[i]
			t += p[j]
			b += beta[j]
			bc += beta[j] * t
		}
	}
	if tau == 0 {
		return bc - d*b
	}
	if cm < d && b >= a {
		return a*d - ac + bc - b*d
	}
	r := tau
	jb := seq[r-1]
	a -= alpha[jb]
	ac -= alpha[jb] * cm
	b += beta[jb]
	bc += beta[jb] * cm
	for r > 1 && a > b {
		cm -= p[jb]
		r--
		jb = seq[r-1]
		a -= alpha[jb]
		ac -= alpha[jb] * cm
		b += beta[jb]
		bc += beta[jb] * cm
	}
	return a*cm - ac + bc - b*cm
}
