package cdd

import "unsafe"

// This file holds the batched forms of the fused CDD evaluation core: B
// sequences stored as rows of one flat matrix scored per call. The cost
// rows run through an unchecked-gather clone of CostArrays — the batch
// entry points validate every row index up front (one predictable sweep
// per row, re-establishing memory safety) and the kernel then gathers
// p/α/β without per-access bounds checks, which the branchy
// data-dependent indices otherwise force on every iteration. The
// arithmetic is statement-for-statement CostArrays, so batch costs are
// bit-identical to the per-sequence path; keeping the safe CostArrays
// untouched preserves an independent reference the verify oracle chain
// and FuzzBatchEvaluator cross-check against. The fitness rows run the
// safe single-row OptimizeArrays unchanged, so the abstract op counts
// the simulated device charges are identical by construction. (A
// pair-interleaved two-rows-per-sweep variant was measured and lost:
// the sweep is uop-throughput-bound, so doubling the live accumulator
// state spills registers without hiding any latency.)

// BatchCostArrays scores B = len(costs) sequences stored row-major in
// rows (len(rows) ≥ B·n) into costs. The cost core keeps its whole
// state in registers (no completion-time stores), so the call is
// allocation-free and touches no scratch memory. Rows holding indices
// outside [0, n) panic, exactly like the bounds-checked path.
func BatchCostArrays[S Index](rows []S, n int, p, alpha, beta []int64, d int64, costs []int64) {
	for i := range costs {
		costs[i] = CostRowArrays(rows[i*n:(i+1)*n], p, alpha, beta, d)
	}
}

// CostRowArrays is the batch-path row core: CostArrays arithmetic with
// a single fused index check per element (one comparison covers the
// two or three data-dependent gathers of an iteration, which the
// bounds-checked path pays for separately) followed by unchecked
// loads. Bit-identical to CostArrays; panics on indices outside
// [0, len(seq)) before any unchecked access, exactly like the safe
// path panics out of range.
func CostRowArrays[S Index](seq []S, p, alpha, beta []int64, d int64) int64 {
	n := len(seq)
	if n == 0 {
		return 0
	}
	p, alpha, beta = p[:n], alpha[:n], beta[:n]
	return costRow(seq, &p[0], &alpha[0], &beta[0], d)
}

// gather loads base[j] without a bounds check; callers must have
// validated j against the column length.
func gather[S Index](base *int64, j S) int64 {
	return *(*int64)(unsafe.Add(unsafe.Pointer(base), uintptr(int64(j))<<3))
}

// checkIdx panics unless 0 ≤ j < n; the uint comparison folds the
// negative and too-large cases into one predictable branch.
func checkIdx[S Index](j S, n int) {
	if uint64(int64(j)) >= uint64(n) {
		panic("cdd: sequence index out of range")
	}
}

// costRow is CostArrays with each iteration's gathers (p[j], alpha[j],
// beta[j]) guarded by one fused index check and then loaded unchecked;
// see CostArrays for the algorithm commentary. Sequence loads stay
// bounds-checked — the compiler proves them away from the loop shapes.
func costRow[S Index](seq []S, p0, alpha0, beta0 *int64, d int64) int64 {
	n := len(seq)
	var t, a, b, ac, bc int64
	i := 0
	for ; i < n; i++ {
		j := seq[i]
		checkIdx(j, n)
		t += gather(p0, j)
		if t > d {
			break
		}
		aj := gather(alpha0, j)
		a += aj
		ac += aj * t
	}
	tau := i
	cm := t
	if i < n {
		j := seq[i]
		cm = t - gather(p0, j)
		bj := gather(beta0, j)
		b += bj
		bc += bj * t
		for i++; i < n; i++ {
			j = seq[i]
			checkIdx(j, n)
			t += gather(p0, j)
			bj = gather(beta0, j)
			b += bj
			bc += bj * t
		}
	}
	if tau == 0 {
		return bc - d*b
	}
	if cm < d && b >= a {
		return a*d - ac + bc - b*d
	}
	r := tau
	jb := seq[r-1]
	aj := gather(alpha0, jb)
	bj := gather(beta0, jb)
	a -= aj
	ac -= aj * cm
	b += bj
	bc += bj * cm
	for r > 1 && a > b {
		cm -= gather(p0, jb)
		r--
		jb = seq[r-1]
		aj = gather(alpha0, jb)
		bj = gather(beta0, jb)
		a -= aj
		ac -= aj * cm
		b += bj
		bc += bj * cm
	}
	return a*cm - ac + bc - b*cm
}

// BatchFitnessArrays is the device-kernel form of BatchCostArrays: it
// additionally records each row's abstract operation count (the value
// OptimizeArrays returns, which the simulated device converts into
// cycle charges) into ops, index-aligned with costs. comp (length ≥ n)
// is the completion-time scratch row, reused across rows.
func BatchFitnessArrays[S Index](rows []S, n int, p, alpha, beta []int64, d int64, comp, costs []int64, ops []int) {
	for i := range costs {
		costs[i], _, _, ops[i] = OptimizeArrays(rows[i*n:(i+1)*n], p, alpha, beta, d, comp[:n])
	}
}
