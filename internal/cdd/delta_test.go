package cdd

import (
	"math/rand"
	"testing"

	"repro/internal/problem"
)

// applyMove mutates cand (a copy of base) with one random move drawn from
// the same move families the metaheuristics use, returning the list of
// positions the move may have touched (possibly with duplicates and
// no-op entries — the delta evaluator must tolerate both).
func applyMove(rng *rand.Rand, cand []int, scratch []int) []int {
	n := len(cand)
	if n == 1 {
		return scratch[:0]
	}
	switch rng.Intn(5) {
	case 0: // swap
		i, j := rng.Intn(n), rng.Intn(n-1)
		if j >= i {
			j++
		}
		cand[i], cand[j] = cand[j], cand[i]
		return append(scratch[:0], i, j)
	case 1: // k-position shuffle (the SA default neighbourhood)
		k := 2 + rng.Intn(3)
		if k > n {
			k = n
		}
		pos := rng.Perm(n)[:k]
		first := cand[pos[0]]
		for t := 0; t < k-1; t++ {
			cand[pos[t]] = cand[pos[t+1]]
		}
		cand[pos[k-1]] = first
		return append(scratch[:0], pos...)
	case 2: // insert (remove at i, reinsert at j)
		i, j := rng.Intn(n), rng.Intn(n)
		v := cand[i]
		if i < j {
			copy(cand[i:j], cand[i+1:j+1])
		} else {
			copy(cand[j+1:i+1], cand[j:i])
		}
		cand[j] = v
		lo, hi := i, j
		if lo > hi {
			lo, hi = hi, lo
		}
		scratch = scratch[:0]
		for p := lo; p <= hi; p++ {
			scratch = append(scratch, p)
		}
		return scratch
	case 3: // reverse a segment
		i, j := rng.Intn(n), rng.Intn(n)
		if i > j {
			i, j = j, i
		}
		for l, r := i, j; l < r; l, r = l+1, r-1 {
			cand[l], cand[r] = cand[r], cand[l]
		}
		scratch = scratch[:0]
		for p := i; p <= j; p++ {
			scratch = append(scratch, p)
		}
		return scratch
	default: // wholesale reshuffle (population crossover regime → fallback)
		rng.Shuffle(n, func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
		scratch = scratch[:0]
		for p := 0; p < n; p++ {
			scratch = append(scratch, p)
		}
		return scratch
	}
}

// TestDeltaMatchesFullRandomMoves drives the propose/commit protocol with
// long randomized move sequences on random instances and asserts that every
// proposed cost is bit-identical to a scratch evaluation of the candidate,
// and that the committed cache never drifts from the true sequence state.
func TestDeltaMatchesFullRandomMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(64)
		in := randomInstance(rng, n)
		full := NewEvaluator(in)
		de := NewDeltaEvaluator(in)

		base := randomSequence(rng, n)
		if got, want := de.Reset(base), full.Cost(base); got != want {
			t.Fatalf("trial %d: Reset cost %d, full %d", trial, got, want)
		}
		cand := make([]int, n)
		scratch := make([]int, 0, n)
		for step := 0; step < 120; step++ {
			copy(cand, base)
			touched := applyMove(rng, cand, scratch)
			got := de.Propose(cand, touched)
			want := full.Cost(cand)
			if got != want {
				t.Fatalf("trial %d step %d (n=%d, d=%d): Propose %d, full %d\nbase=%v\ncand=%v\ntouched=%v",
					trial, step, n, in.D, got, want, base, cand, touched)
			}
			if rng.Intn(2) == 0 {
				de.Commit()
				copy(base, cand)
				// After a commit, a no-change proposal must reproduce the
				// committed cost from the (now updated) cache.
				if again := de.Propose(base, touched); again != want {
					t.Fatalf("trial %d step %d: post-commit Propose %d, want %d", trial, step, again, want)
				}
			}
		}
		// Stateless Cost must be usable at any point without disturbing
		// the cache.
		probe := randomSequence(rng, n)
		if got, want := de.Cost(probe), full.Cost(probe); got != want {
			t.Fatalf("trial %d: stateless Cost %d, full %d", trial, got, want)
		}
		copy(cand, base)
		touched := applyMove(rng, cand, scratch)
		if got, want := de.Propose(cand, touched), full.Cost(cand); got != want {
			t.Fatalf("trial %d: post-probe Propose %d, full %d", trial, got, want)
		}
	}
}

// TestDeltaEdgeDueDates pins the boundary regimes: d = 0 (every job tardy,
// τ = 0), d = ΣP (unrestricted — the whole schedule fits before the due
// date) and beyond.
func TestDeltaEdgeDueDates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(16)
		p := make([]int, n)
		alpha := make([]int, n)
		beta := make([]int, n)
		var sum int64
		for i := range p {
			p[i] = 1 + rng.Intn(9)
			alpha[i] = rng.Intn(8)
			beta[i] = rng.Intn(8)
			sum += int64(p[i])
		}
		for _, d := range []int64{0, 1, sum, sum + 7} {
			in, err := problem.NewCDD("edge", p, alpha, beta, d)
			if err != nil {
				t.Fatal(err)
			}
			full := NewEvaluator(in)
			de := NewDeltaEvaluator(in)
			base := randomSequence(rng, n)
			de.Reset(base)
			cand := make([]int, n)
			scratch := make([]int, 0, n)
			for step := 0; step < 40; step++ {
				copy(cand, base)
				touched := applyMove(rng, cand, scratch)
				if got, want := de.Propose(cand, touched), full.Cost(cand); got != want {
					t.Fatalf("d=%d n=%d step %d: Propose %d, full %d\ncand=%v", d, n, step, got, want, cand)
				}
				if rng.Intn(3) != 0 {
					de.Commit()
					copy(base, cand)
				}
			}
		}
	}
}

// TestDeltaMaterializeComp checks that the pending candidate's completion
// times materialize exactly, on both the windowed and the full-pass paths.
func TestDeltaMaterializeComp(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(32)
		in := randomInstance(rng, n)
		p, alpha, beta := ParamArrays(in)
		dl := NewDelta[int](p, alpha, beta, in.D)
		base := randomSequence(rng, n)
		dl.Reset(base)
		cand := make([]int, n)
		scratch := make([]int, 0, n)
		got := make([]int64, n)
		for step := 0; step < 30; step++ {
			copy(cand, base)
			touched := applyMove(rng, cand, scratch)
			dl.Propose(cand, touched)
			dl.MaterializeComp(got)
			var tm int64
			for pos, job := range cand {
				tm += p[job]
				if got[pos] != tm {
					t.Fatalf("trial %d step %d: comp[%d] = %d, want %d", trial, step, pos, got[pos], tm)
				}
			}
			if rng.Intn(2) == 0 {
				dl.Commit()
				copy(base, cand)
			}
		}
	}
}

// TestDeltaInt32Parity instantiates the generic core with the device index
// type and cross-checks it against the int instantiation move for move.
func TestDeltaInt32Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(24)
		in := randomInstance(rng, n)
		p, alpha, beta := ParamArrays(in)
		dlHost := NewDelta[int](p, alpha, beta, in.D)
		dlDev := NewDelta[int32](p, alpha, beta, in.D)
		base := randomSequence(rng, n)
		base32 := make([]int32, n)
		for i, v := range base {
			base32[i] = int32(v)
		}
		if h, d := dlHost.Reset(base), dlDev.Reset(base32); h != d {
			t.Fatalf("trial %d: Reset host %d dev %d", trial, h, d)
		}
		cand := make([]int, n)
		cand32 := make([]int32, n)
		scratch := make([]int, 0, n)
		for step := 0; step < 60; step++ {
			copy(cand, base)
			touched := applyMove(rng, cand, scratch)
			for i, v := range cand {
				cand32[i] = int32(v)
			}
			h := dlHost.Propose(cand, touched)
			d := dlDev.Propose(cand32, touched)
			if h != d {
				t.Fatalf("trial %d step %d: Propose host %d dev %d", trial, step, h, d)
			}
			if rng.Intn(2) == 0 {
				dlHost.Commit()
				dlDev.Commit()
				copy(base, cand)
			}
		}
	}
}
