package cdd

import "repro/internal/problem"

// DeltaEvaluator is the host-side incremental evaluator for the CDD
// problem. It satisfies both the plain fitness interface (Cost, a
// stateless fused full pass that never touches the cache) and the
// propose/commit protocol of Delta, which the metaheuristic drivers use on
// their hot path. Not safe for concurrent use.
type DeltaEvaluator struct {
	in *problem.Instance
	dl *Delta[int]
}

// NewDeltaEvaluator returns an incremental evaluator for the instance.
func NewDeltaEvaluator(in *problem.Instance) *DeltaEvaluator {
	p, alpha, beta := ParamArrays(in)
	return &DeltaEvaluator{in: in, dl: NewDelta[int](p, alpha, beta, in.D)}
}

// Instance returns the instance the evaluator was built for.
func (e *DeltaEvaluator) Instance() *problem.Instance { return e.in }

// Cost evaluates seq from scratch with the cost-only fused pass. It is
// independent of the propose/commit cache (a pending proposal survives it).
func (e *DeltaEvaluator) Cost(seq []int) int64 {
	return CostArrays(seq, e.dl.p, e.dl.alpha, e.dl.beta, e.dl.d)
}

// Reset caches seq as the committed base sequence and returns its cost.
func (e *DeltaEvaluator) Reset(seq []int) int64 { return e.dl.Reset(seq) }

// Propose evaluates a candidate differing from the base at (a subset of)
// positions, in O(k + log n · log k), without mutating the cache.
func (e *DeltaEvaluator) Propose(cand []int, positions []int) int64 {
	return e.dl.Propose(cand, positions)
}

// Commit adopts the pending candidate as the new base sequence.
func (e *DeltaEvaluator) Commit() { e.dl.Commit() }
