package cdd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/problem"
)

// TestPaperExampleCDD reproduces the worked example of Section IV-A:
// jobs of Table I, identity sequence, d = 16. The paper reports an optimal
// penalty of 81 with job 2 completing at the due date after a total right
// shift of 5.
func TestPaperExampleCDD(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	res := OptimizeSequence(in, problem.IdentitySequence(5))
	if res.Cost != 81 {
		t.Errorf("paper example cost = %d, want 81", res.Cost)
	}
	if res.Start != 5 {
		t.Errorf("paper example start = %d, want 5", res.Start)
	}
	if res.DueJob != 2 {
		t.Errorf("paper example due-date job position = %d, want 2", res.DueJob)
	}
}

// TestPaperExampleIntermediate checks the intermediate states the paper
// illustrates: with start 0, the initial earliness/tardiness penalty sums
// are pe = 22 and pl = 5 (Figure 1), and the resulting schedule cost can be
// recomputed exactly from a Schedule value.
func TestPaperExampleIntermediate(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	seq := problem.IdentitySequence(5)
	s := problem.Schedule{Seq: seq, Start: 5}
	if got := s.Cost(in); got != 81 {
		t.Errorf("schedule cost at start 5 = %d, want 81", got)
	}
	comps := s.Completions(in)
	want := []int64{11, 16, 18, 22, 26}
	for i := range want {
		if comps[i] != want[i] {
			t.Errorf("completion[%d] = %d, want %d", i, comps[i], want[i])
		}
	}
	if pos := s.DueDatePosition(in); pos != 2 {
		t.Errorf("due-date position = %d, want 2", pos)
	}
}

func TestOptimizeMatchesScheduleCost(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	seq := []int{4, 2, 0, 3, 1}
	res := OptimizeSequence(in, seq)
	s := problem.Schedule{Seq: seq, Start: res.Start}
	if got := s.Cost(in); got != res.Cost {
		t.Errorf("Optimize cost %d disagrees with Schedule.Cost %d", res.Cost, got)
	}
}

// randomInstance builds a random CDD instance in the OR-library parameter
// regime, with a due-date factor h drawn from the benchmark set.
func randomInstance(rng *rand.Rand, n int) *problem.Instance {
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
		sum += int64(p[i])
	}
	hs := []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2}
	d := int64(float64(sum) * hs[rng.Intn(len(hs))])
	in, err := problem.NewCDD("rand", p, alpha, beta, d)
	if err != nil {
		panic(err)
	}
	return in
}

func randomSequence(rng *rand.Rand, n int) []int {
	seq := problem.IdentitySequence(n)
	rng.Shuffle(n, func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
	return seq
}

// TestAgainstReference cross-checks the O(n) optimizer against the
// exhaustive start-time oracle on many random instances and sequences,
// including restrictive (h<1) and unrestricted (h≥1) due dates.
func TestAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(9)
		in := randomInstance(rng, n)
		seq := randomSequence(rng, n)
		got := OptimizeSequence(in, seq)
		want := ReferenceOptimize(in, seq)
		if got.Cost != want.Cost {
			t.Fatalf("trial %d (n=%d, d=%d): linear algorithm cost %d (start %d), reference %d (start %d)\njobs=%+v seq=%v",
				trial, n, in.D, got.Cost, got.Start, want.Cost, want.Start, in.Jobs, seq)
		}
		// The claimed start must actually achieve the claimed cost.
		if c := problem.SequenceCost(in, seq, got.Start, nil); c != got.Cost {
			t.Fatalf("trial %d: reported start %d evaluates to %d, not %d", trial, got.Start, c, got.Cost)
		}
	}
}

// TestCostArraysMatchesOptimize pins the cost-only fast path of
// Evaluator.Cost to the full Optimize pass, bit for bit, over random
// instances, random sequences and degenerate due dates.
func TestCostArraysMatchesOptimize(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(50)
		in := randomInstance(rng, n)
		var sum int64
		for _, j := range in.Jobs {
			sum += int64(j.P)
		}
		for _, d := range []int64{in.D, 0, 1, sum, sum + 3} {
			in.D = d
			e := NewEvaluator(in)
			seq := randomSequence(rng, n)
			want := e.Optimize(seq).Cost
			if got := e.Cost(seq); got != want {
				t.Fatalf("trial %d (n=%d, d=%d): Cost %d != Optimize %d\njobs=%+v seq=%v",
					trial, n, d, got, want, in.Jobs, seq)
			}
		}
	}
}

// TestQuickProperty runs testing/quick over instance encodings: the linear
// algorithm must never beat the exhaustive oracle (it solves the same
// problem) nor lose to it.
func TestQuickProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(7))}
	property := func(raw []uint16, h uint8) bool {
		n := len(raw)/3 + 1
		if n > 8 {
			n = 8
		}
		rng := rand.New(rand.NewSource(int64(h) + int64(n)))
		in := randomInstance(rng, n)
		seq := randomSequence(rng, n)
		return OptimizeSequence(in, seq).Cost == ReferenceOptimize(in, seq).Cost
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestSingleJob exercises the degenerate n = 1 cases: a job shorter than
// the due date can always complete exactly at d for zero penalty; a job
// longer than d must start at zero and pay β·(P−d).
func TestSingleJob(t *testing.T) {
	in, err := problem.NewCDD("one", []int{5}, []int{3}, []int{7}, 12)
	if err != nil {
		t.Fatal(err)
	}
	res := OptimizeSequence(in, []int{0})
	if res.Cost != 0 || res.Start != 7 {
		t.Errorf("short job: cost=%d start=%d, want 0 and 7", res.Cost, res.Start)
	}
	in2, err := problem.NewCDD("long", []int{20}, []int{3}, []int{7}, 12)
	if err != nil {
		t.Fatal(err)
	}
	res2 := OptimizeSequence(in2, []int{0})
	if res2.Cost != 7*8 || res2.Start != 0 {
		t.Errorf("long job: cost=%d start=%d, want 56 and 0", res2.Cost, res2.Start)
	}
}

// TestAllTardy covers τ = 0: even the first job cannot complete by d.
func TestAllTardy(t *testing.T) {
	in, err := problem.NewCDD("tardy", []int{10, 10}, []int{5, 5}, []int{2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := OptimizeSequence(in, []int{0, 1})
	want := int64(2*(10-4) + 3*(20-4))
	if res.Cost != want || res.Start != 0 || res.DueJob != 0 {
		t.Errorf("got %+v, want cost=%d start=0 dueJob=0", res, want)
	}
}

// TestZeroDueDate covers d = 0 (every job tardy from the origin).
func TestZeroDueDate(t *testing.T) {
	in, err := problem.NewCDD("zero", []int{3, 4}, []int{9, 9}, []int{2, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := OptimizeSequence(in, []int{0, 1})
	if want := int64(2*3 + 5*7); res.Cost != want {
		t.Errorf("cost = %d, want %d", res.Cost, want)
	}
}

// TestUnrestrictedAlwaysDueJob checks Hall–Kubiak–Sethi structure: with an
// unrestricted due date (d ≥ ΣP) and strictly positive α, the optimum has
// some job completing exactly at d.
func TestUnrestrictedAlwaysDueJob(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(7)
		in := randomInstance(rng, n)
		in.D = in.SumP() + int64(rng.Intn(30))
		seq := randomSequence(rng, n)
		res := OptimizeSequence(in, seq)
		if res.DueJob == 0 {
			t.Fatalf("trial %d: unrestricted instance has no job at d (res=%+v)", trial, res)
		}
		s := problem.Schedule{Seq: seq, Start: res.Start}
		if pos := s.DueDatePosition(in); pos != res.DueJob {
			t.Fatalf("trial %d: DueJob=%d but schedule says %d", trial, res.DueJob, pos)
		}
	}
}

// TestEvaluatorReuse verifies the evaluator gives identical answers across
// repeated and interleaved sequences (its scratch state must not leak).
func TestEvaluatorReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomInstance(rng, 12)
	e := NewEvaluator(in)
	seqA := randomSequence(rng, 12)
	seqB := randomSequence(rng, 12)
	a1 := e.Cost(seqA)
	b1 := e.Cost(seqB)
	a2 := e.Cost(seqA)
	b2 := e.Cost(seqB)
	if a1 != a2 || b1 != b2 {
		t.Errorf("evaluator not reusable: a %d/%d, b %d/%d", a1, a2, b1, b2)
	}
	if fresh := NewEvaluator(in).Cost(seqA); fresh != a1 {
		t.Errorf("fresh evaluator disagrees: %d vs %d", fresh, a1)
	}
}

func BenchmarkOptimizeSequence(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10, 100, 1000} {
		in := randomInstance(rng, n)
		seq := randomSequence(rng, n)
		e := NewEvaluator(in)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.Cost(seq)
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 10:
		return "n10"
	case 100:
		return "n100"
	case 1000:
		return "n1000"
	}
	return "n"
}
