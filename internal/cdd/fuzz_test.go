package cdd_test

import (
	"testing"

	"repro/internal/cdd"
	"repro/internal/problem"
	"repro/internal/xrand"
)

// cddFromBytes decodes a fuzzer payload into a valid CDD instance: three
// bytes per job (p, α, β with zero penalties allowed), due date from dRaw
// within [0, 2·ΣP+1]. Returns nil when the payload is too short.
func cddFromBytes(data []byte, dRaw uint64) *problem.Instance {
	n := len(data) / 3
	if n < 1 {
		return nil
	}
	if n > 24 {
		n = 24
	}
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum uint64
	for i := 0; i < n; i++ {
		p[i] = 1 + int(data[3*i]%20)
		alpha[i] = int(data[3*i+1] % 11)
		beta[i] = int(data[3*i+2] % 16)
		sum += uint64(p[i])
	}
	in, err := problem.NewCDD("fuzz", p, alpha, beta, int64(dRaw%(2*sum+2)))
	if err != nil {
		panic(err) // valid by construction
	}
	return in
}

// FuzzCDDDeltaVsFull drives the incremental propose/commit evaluator
// through a random walk of swap and segment-reversal moves on
// fuzzer-chosen instances and cross-checks every proposal against the
// stateless full pass. The delta path promises bit-identical costs; any
// divergence is a bug in the Fenwick-backed correction machinery.
func FuzzCDDDeltaVsFull(f *testing.F) {
	f.Add([]byte{6, 7, 9, 5, 9, 5, 2, 6, 4, 4, 9, 3, 4, 2, 1}, uint64(16), uint64(1))
	f.Add([]byte{1, 0, 1, 1, 1, 0, 20, 10, 15}, uint64(0), uint64(7))
	f.Fuzz(func(t *testing.T, data []byte, dRaw, seed uint64) {
		in := cddFromBytes(data, dRaw)
		if in == nil {
			t.Skip("payload too short for one job")
		}
		n := in.N()
		rng := xrand.New(seed | 1)
		dl := cdd.NewDeltaEvaluator(in)
		full := cdd.NewEvaluator(in)
		base := problem.IdentitySequence(n)
		if got, want := dl.Reset(base), full.Cost(base); got != want {
			t.Fatalf("Reset=%d, full=%d on identity", got, want)
		}
		cand := make([]int, n)
		for step := 0; step < 24; step++ {
			copy(cand, base)
			var pos []int
			if rng.Intn(2) == 0 || n < 3 {
				i, j := rng.Intn(n), rng.Intn(n)
				cand[i], cand[j] = cand[j], cand[i]
				pos = []int{i, j}
			} else {
				l := rng.Intn(n - 1)
				r := l + 1 + rng.Intn(n-l-1)
				for a, b := l, r; a < b; a, b = a+1, b-1 {
					cand[a], cand[b] = cand[b], cand[a]
				}
				for k := l; k <= r; k++ {
					pos = append(pos, k)
				}
			}
			if got, want := dl.Propose(cand, pos), full.Cost(cand); got != want {
				t.Fatalf("step %d: Propose=%d, full=%d (d=%d base=%v cand=%v pos=%v)",
					step, got, want, in.D, base, cand, pos)
			}
			if rng.Intn(2) == 0 {
				dl.Commit()
				copy(base, cand)
			}
		}
	})
}
