// Package cdd implements the O(n) exact optimizer for a fixed job sequence
// of the Common Due-Date problem, after Lässig, Awasthi and Kramer,
// "Common due-date problem: Linear algorithm for a given job sequence"
// (CSE 2014), as used as the inner layer of the two-layered GPU approach in
// Awasthi et al. (IPDPSW 2016).
//
// For a fixed processing order, the only remaining decision is the start
// time s of the first job (jobs run back to back, no idle time — optimal by
// Cheng–Kahlbacher). The total penalty as a function of s is piecewise
// linear and convex, with breakpoints exactly where some job completes at
// the due date. By Hall–Kubiak–Sethi either s = 0 is optimal or some job
// completes exactly at d, so an event-driven greedy over the breakpoints,
// stopping at the first non-negative right derivative, finds the global
// optimum in O(n).
package cdd

import "repro/internal/problem"

// Result describes the optimal timing of a fixed sequence.
type Result struct {
	// Cost is the minimal total weighted earliness/tardiness penalty.
	Cost int64
	// Start is the optimal start time of the first job.
	Start int64
	// DueJob is the 1-based position of the job completing exactly at the
	// due date in the optimal timing, or 0 when the optimum starts at
	// time zero with no job completing at d.
	DueJob int
}

// OptimizeSequence computes the optimal start time and minimal penalty for
// processing the jobs of in in the order given by seq. seq holds 0-based
// job indices. The sequence is not modified. The function allocates one
// scratch slice; use an Evaluator for allocation-free repeated evaluation.
func OptimizeSequence(in *problem.Instance, seq []int) Result {
	e := NewEvaluator(in)
	return e.Optimize(seq)
}

// Evaluator evaluates sequences of one instance repeatedly without
// allocation. It is the hot inner loop of every metaheuristic in this
// repository; a single call costs O(n) — one fused pass that carries the
// weighted penalty aggregates alongside the completion times, so the final
// cost is O(1) from sums (see OptimizeArrays).
//
// An Evaluator is not safe for concurrent use; create one per goroutine
// (or per simulated GPU thread).
type Evaluator struct {
	in *problem.Instance
	// p, alpha, beta are the job parameters widened to int64 once at
	// construction, indexed by job id, so the hot loop avoids per-call
	// struct-field loads and conversions.
	p, alpha, beta []int64
	// comp is scratch space for completion times by position.
	comp []int64
}

// NewEvaluator returns an evaluator for the given instance.
func NewEvaluator(in *problem.Instance) *Evaluator {
	p, alpha, beta := ParamArrays(in)
	return &Evaluator{in: in, p: p, alpha: alpha, beta: beta, comp: make([]int64, in.N())}
}

// ParamArrays widens the instance's job parameters into the job-indexed
// int64 arrays the array-based evaluation cores consume (the layout the
// GPU pipeline keeps in device memory).
func ParamArrays(in *problem.Instance) (p, alpha, beta []int64) {
	n := in.N()
	p = make([]int64, n)
	alpha = make([]int64, n)
	beta = make([]int64, n)
	for i, j := range in.Jobs {
		p[i], alpha[i], beta[i] = int64(j.P), int64(j.Alpha), int64(j.Beta)
	}
	return p, alpha, beta
}

// Instance returns the instance the evaluator was built for.
func (e *Evaluator) Instance() *problem.Instance { return e.in }

// Cost returns only the optimal penalty of the sequence. It is the
// fitness function used by the metaheuristics; the cost-only core skips
// the completion-time stores that Optimize's callers need.
func (e *Evaluator) Cost(seq []int) int64 {
	return CostArrays(seq, e.p, e.alpha, e.beta, e.in.D)
}

// Optimize computes the optimal timing of the sequence.
//
// The algorithm mirrors Section IV-A of the paper:
//
//  1. Schedule all jobs starting at t = 0 with no idle time and locate the
//     boundary position τ = max{i : C_i ≤ d}.
//  2. The right derivative of the cost in the current segment is
//     Σ_{tardy} β − Σ_{strictly early} α. While it is negative, shift the
//     whole schedule right to the next breakpoint (the next job, walking
//     backwards through the sequence, completing exactly at d).
//  3. At a breakpoint where job r completes at d the right derivative is
//     Σ_{i≥r} β_i − Σ_{i<r} α_i (job r turns tardy the moment it passes d).
//     Stop at the first non-negative derivative; convexity makes this the
//     global optimum.
//
// The implementation is the fused single-pass form (OptimizeArrays): the
// weighted aggregates Σα, Σβ, Σα·C, Σβ·C travel with the breakpoint walk,
// so the final cost is O(1) from sums instead of a second sweep.
func (e *Evaluator) Optimize(seq []int) Result {
	cost, start, dueJob, _ := OptimizeArrays(seq, e.p, e.alpha, e.beta, e.in.D, e.comp[:len(seq)])
	return Result{Cost: cost, Start: start, DueJob: dueJob}
}
