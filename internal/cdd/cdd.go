// Package cdd implements the O(n) exact optimizer for a fixed job sequence
// of the Common Due-Date problem, after Lässig, Awasthi and Kramer,
// "Common due-date problem: Linear algorithm for a given job sequence"
// (CSE 2014), as used as the inner layer of the two-layered GPU approach in
// Awasthi et al. (IPDPSW 2016).
//
// For a fixed processing order, the only remaining decision is the start
// time s of the first job (jobs run back to back, no idle time — optimal by
// Cheng–Kahlbacher). The total penalty as a function of s is piecewise
// linear and convex, with breakpoints exactly where some job completes at
// the due date. By Hall–Kubiak–Sethi either s = 0 is optimal or some job
// completes exactly at d, so an event-driven greedy over the breakpoints,
// stopping at the first non-negative right derivative, finds the global
// optimum in O(n).
package cdd

import "repro/internal/problem"

// Result describes the optimal timing of a fixed sequence.
type Result struct {
	// Cost is the minimal total weighted earliness/tardiness penalty.
	Cost int64
	// Start is the optimal start time of the first job.
	Start int64
	// DueJob is the 1-based position of the job completing exactly at the
	// due date in the optimal timing, or 0 when the optimum starts at
	// time zero with no job completing at d.
	DueJob int
}

// OptimizeSequence computes the optimal start time and minimal penalty for
// processing the jobs of in in the order given by seq. seq holds 0-based
// job indices. The sequence is not modified. The function allocates one
// scratch slice; use an Evaluator for allocation-free repeated evaluation.
func OptimizeSequence(in *problem.Instance, seq []int) Result {
	e := NewEvaluator(in)
	return e.Optimize(seq)
}

// Evaluator evaluates sequences of one instance repeatedly without
// allocation. It is the hot inner loop of every metaheuristic in this
// repository; a single call costs O(n).
//
// An Evaluator is not safe for concurrent use; create one per goroutine
// (or per simulated GPU thread).
type Evaluator struct {
	in *problem.Instance
	// comp is scratch space for completion times by position (1-based
	// indexing with comp[0] == 0 unused slot semantics kept implicit).
	comp []int64
}

// NewEvaluator returns an evaluator for the given instance.
func NewEvaluator(in *problem.Instance) *Evaluator {
	return &Evaluator{in: in, comp: make([]int64, in.N())}
}

// Instance returns the instance the evaluator was built for.
func (e *Evaluator) Instance() *problem.Instance { return e.in }

// Cost returns only the optimal penalty of the sequence. It is the
// fitness function used by the metaheuristics.
func (e *Evaluator) Cost(seq []int) int64 { return e.Optimize(seq).Cost }

// Optimize computes the optimal timing of the sequence.
//
// The algorithm mirrors Section IV-A of the paper:
//
//  1. Schedule all jobs starting at t = 0 with no idle time and locate the
//     boundary position τ = max{i : C_i ≤ d}.
//  2. The right derivative of the cost in the current segment is
//     Σ_{tardy} β − Σ_{strictly early} α. While it is negative, shift the
//     whole schedule right to the next breakpoint (the next job, walking
//     backwards through the sequence, completing exactly at d).
//  3. At a breakpoint where job r completes at d the right derivative is
//     Σ_{i≥r} β_i − Σ_{i<r} α_i (job r turns tardy the moment it passes d).
//     Stop at the first non-negative derivative; convexity makes this the
//     global optimum.
func (e *Evaluator) Optimize(seq []int) Result {
	jobs := e.in.Jobs
	d := e.in.D
	n := len(seq)
	comp := e.comp[:n]

	// Base completion times with start 0, boundary τ, and penalty sums.
	var t int64
	tau := 0 // number of jobs with C_i <= d
	var alphaPrefix int64
	var betaSuffix int64
	for pos, job := range seq {
		t += int64(jobs[job].P)
		comp[pos] = t
		if t <= d {
			tau = pos + 1
			alphaPrefix += int64(jobs[job].Alpha)
		} else {
			betaSuffix += int64(jobs[job].Beta)
		}
	}

	// No job can complete by d even when starting at zero: any right shift
	// only increases tardiness, so s = 0 is optimal.
	if tau == 0 {
		return Result{Cost: e.costAt(seq, comp, 0), Start: 0, DueJob: 0}
	}

	// If job τ completes strictly before d, the derivative of the initial
	// segment is betaSuffix − alphaPrefix (alphaPrefix here includes job τ,
	// which is strictly early). A non-negative derivative means s = 0 is
	// optimal with no job at the due date.
	r := tau
	if comp[tau-1] < d {
		if betaSuffix >= alphaPrefix {
			return Result{Cost: e.costAt(seq, comp, 0), Start: 0, DueJob: 0}
		}
		// Shift right so that job τ completes exactly at d, then fall into
		// the breakpoint loop below.
	}
	// Breakpoint state: job r completes exactly at d after a shift of
	// d − comp[r-1]. Maintain alphaPrefix = Σ_{i<r} α and betaSuffix =
	// Σ_{i≥r} β. Entering the loop, job r = τ sits at d: its α moves out
	// of the prefix and its β into the suffix.
	alphaPrefix -= int64(jobs[seq[r-1]].Alpha)
	betaSuffix += int64(jobs[seq[r-1]].Beta)
	for r > 1 && alphaPrefix > betaSuffix {
		r--
		alphaPrefix -= int64(jobs[seq[r-1]].Alpha)
		betaSuffix += int64(jobs[seq[r-1]].Beta)
	}
	shift := d - comp[r-1]
	return Result{Cost: e.costAt(seq, comp, shift), Start: shift, DueJob: r}
}

// costAt evaluates the exact penalty of the sequence when the whole
// schedule (with base completions comp) is shifted right by shift.
func (e *Evaluator) costAt(seq []int, comp []int64, shift int64) int64 {
	jobs := e.in.Jobs
	d := e.in.D
	var cost int64
	for pos, job := range seq {
		c := comp[pos] + shift
		if c < d {
			cost += int64(jobs[job].Alpha) * (d - c)
		} else {
			cost += int64(jobs[job].Beta) * (c - d)
		}
	}
	return cost
}
