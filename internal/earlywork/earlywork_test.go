package earlywork

import (
	"testing"

	"repro/internal/problem"
	"repro/internal/xrand"
)

func instance(t *testing.T, p []int, machines int, d int64) *problem.Instance {
	t.Helper()
	in, err := problem.NewEarlyWork("ew-test", p, machines, d)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestCostClosedForm pins the single-machine late work max(0, ΣP−d)
// against hand-computed values on both sides of the due date.
func TestCostClosedForm(t *testing.T) {
	in := instance(t, []int{6, 5, 2, 4, 4}, 1, 16) // ΣP = 21
	p := ParamArrays(in)
	cases := []struct {
		seq  []int
		want int64
	}{
		{[]int{0, 1, 2, 3, 4}, 5}, // 21 − 16
		{[]int{4, 3, 2, 1, 0}, 5}, // order-independent
		{[]int{2}, 0},             // load 2 ≤ 16: all work early
		{[]int{0, 1, 3}, 0},       // load 15 ≤ 16
		{[]int{0, 1, 2, 3}, 1},    // load 17
		{[]int{}, 0},              // idle machine
	}
	for _, tc := range cases {
		if got := CostArrays(tc.seq, p, in.D); got != tc.want {
			t.Errorf("CostArrays(%v) = %d, want %d", tc.seq, got, tc.want)
		}
	}
	if got := OptimizeSequence(in, []int{0, 1, 2, 3, 4}); got.Cost != 5 || got.Start != 0 {
		t.Errorf("OptimizeSequence = %+v, want cost 5 at start 0", got)
	}
}

// TestOrderIndependence pins the property the whole genome design leans
// on: a machine's late work depends only on its load, never on the
// order within the segment.
func TestOrderIndependence(t *testing.T) {
	r := xrand.New(7)
	in := instance(t, []int{6, 5, 2, 4, 4, 3, 7, 1}, 1, 9)
	eval := NewEvaluator(in)
	seq := problem.IdentitySequence(in.N())
	want := eval.Cost(seq)
	for trial := 0; trial < 50; trial++ {
		for i := len(seq) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			seq[i], seq[j] = seq[j], seq[i]
		}
		if got := eval.Cost(seq); got != want {
			t.Fatalf("cost %d for order %v, %d for identity — late work must be order-independent", got, seq, want)
		}
	}
}

// TestEarlyLateComplement pins the transform that lets the minimizing
// solver stack maximize early work: on every machine, early work
// min(load, d) plus late work max(0, load−d) is exactly the load, so
// total early + total late = ΣP whatever the assignment.
func TestEarlyLateComplement(t *testing.T) {
	r := xrand.New(11)
	p := []int64{6, 5, 2, 4, 4, 3, 7}
	var sum int64
	for _, v := range p {
		sum += v
	}
	const d = 8
	for trial := 0; trial < 100; trial++ {
		// Random 3-way assignment.
		loads := make([]int64, 3)
		for j := range p {
			loads[r.Intn(3)] += p[j]
		}
		var early, late int64
		for _, load := range loads {
			if load <= d {
				early += load
			} else {
				early += d
				late += load - d
			}
		}
		if early+late != sum {
			t.Fatalf("early %d + late %d != ΣP %d (loads %v)", early, late, sum, loads)
		}
	}
}

// TestFitnessMatchesCost pins the kernel form: same cost, op count
// proportional to the segment length.
func TestFitnessMatchesCost(t *testing.T) {
	in := instance(t, []int{6, 5, 2, 4}, 1, 7)
	p := ParamArrays(in)
	seq := []int{2, 0, 3}
	cost, ops := FitnessArrays(seq, p, in.D)
	if cost != CostArrays(seq, p, in.D) {
		t.Errorf("FitnessArrays cost %d != CostArrays %d", cost, CostArrays(seq, p, in.D))
	}
	if ops != 2*len(seq)+1 {
		t.Errorf("ops = %d, want %d", ops, 2*len(seq)+1)
	}
}

// TestEvaluatorInterface pins the core.Evaluator plumbing.
func TestEvaluatorInterface(t *testing.T) {
	in := instance(t, []int{6, 5, 2}, 1, 20)
	e := NewEvaluator(in)
	if e.Instance() != in {
		t.Error("Instance() does not return the wrapped instance")
	}
	if got := e.Cost([]int{0, 1, 2}); got != 0 {
		t.Errorf("unrestrictive d: cost %d, want 0 (all work early)", got)
	}
}
