// Package earlywork implements the exact per-sequence layer of the
// early-work objective (Li, arXiv:2007.12388): maximize the total work
// executed before a common due date on identical parallel machines.
// Internally the repository minimizes the complementary total late work —
// the two differ by the constant ΣP, so minimal late work is maximal
// early work and the solver stack's cost budgets apply unchanged.
//
// On one machine the objective is sequence-independent: jobs run back to
// back from time zero (idle time only pushes work past d), so a machine
// with load W contributes max(0, W−d) late work regardless of order. The
// per-machine optimum is therefore a closed form, and the whole
// difficulty of the problem lives in the assignment of jobs to machines,
// which the metaheuristic layer searches through the delimiter genome
// (see problem.GenomeLen).
package earlywork

import (
	"repro/internal/cdd"
	"repro/internal/problem"
)

// Result is the outcome of the exact single-machine evaluation.
type Result struct {
	// Cost is the machine's late work max(0, ΣP−d).
	Cost int64
	// Start is the machine's optimal start time, always 0.
	Start int64
}

// CostArrays returns the late work of a single machine processing seq
// back to back from time zero: max(0, Σ p[seq] − d). It is generic over
// the sequence index type like the cdd/ucddcp cores, and seq may be any
// subsequence of job ids (a genome segment).
func CostArrays[S cdd.Index](seq []S, p []int64, d int64) int64 {
	var load int64
	for _, j := range seq {
		load += p[j]
	}
	if load > d {
		return load - d
	}
	return 0
}

// FitnessArrays is CostArrays with the abstract operation count the
// simulated GPU converts into cycle charges (one load-accumulate per
// element plus the threshold compare).
func FitnessArrays[S cdd.Index](seq []S, p []int64, d int64) (cost int64, ops int) {
	return CostArrays(seq, p, d), 2*len(seq) + 1
}

// OptimizeSequence evaluates the sequence on a single machine of the
// instance: late work max(0, ΣP−d) at the optimal start time 0.
func OptimizeSequence(in *problem.Instance, seq []int) Result {
	p := ParamArrays(in)
	return Result{Cost: CostArrays(seq, p, in.D)}
}

// ParamArrays extracts the processing-time column (indexed by job id).
func ParamArrays(in *problem.Instance) []int64 {
	p := make([]int64, in.N())
	for i, j := range in.Jobs {
		p[i] = int64(j.P)
	}
	return p
}

// Evaluator is the single-machine early-work evaluator behind the shared
// core.Evaluator interface.
type Evaluator struct {
	in *problem.Instance
	p  []int64
}

// NewEvaluator builds an evaluator with the processing-time column
// hoisted.
func NewEvaluator(in *problem.Instance) *Evaluator {
	return &Evaluator{in: in, p: ParamArrays(in)}
}

// Instance implements core.Evaluator.
func (e *Evaluator) Instance() *problem.Instance { return e.in }

// Cost implements core.Evaluator: the machine's late work, independent of
// the order within seq.
func (e *Evaluator) Cost(seq []int) int64 { return CostArrays(seq, e.p, e.in.D) }
