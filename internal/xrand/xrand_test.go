package xrand

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestKnownRecurrence verifies the XORWOW update rule against a direct
// transcription of Marsaglia's recurrence, step by step, from an arbitrary
// state.
func TestKnownRecurrence(t *testing.T) {
	r := New(12345)
	// Snapshot the state and apply the recurrence by hand.
	x, y, z, w, v, d := r.x, r.y, r.z, r.w, r.v, r.d
	for i := 0; i < 1000; i++ {
		tt := x ^ (x >> 2)
		x, y, z, w = y, z, w, v
		v = (v ^ (v << 4)) ^ (tt ^ (tt << 1))
		d += xorwowWeyl
		want := v + d
		if got := r.Uint32(); got != want {
			t.Fatalf("step %d: Uint32() = %#x, manual recurrence %#x", i, got, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 100; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 collide on %d/64 outputs", same)
	}
}

// TestStreamsIndependent checks the per-thread stream derivation used by
// the simulated GPU: streams of the same seed must not be shifted copies
// of each other over a modest window.
func TestStreamsIndependent(t *testing.T) {
	const window = 256
	base := NewStream(7, 0)
	seq := make([]uint32, window*3)
	for i := range seq {
		seq[i] = base.Uint32()
	}
	other := NewStream(7, 1)
	out := make([]uint32, window)
	for i := range out {
		out[i] = other.Uint32()
	}
	// Check the second stream's window against every lag of the first.
	for lag := 0; lag+window <= len(seq); lag++ {
		match := 0
		for i := 0; i < window; i++ {
			if out[i] == seq[lag+i] {
				match++
			}
		}
		if match > window/8 {
			t.Fatalf("stream 1 looks like stream 0 shifted by %d (%d/%d matches)", lag, match, window)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		g := r.Float64Open()
		if g <= 0 || g > 1 {
			t.Fatalf("Float64Open() = %v out of (0,1]", g)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := New(17)
	const buckets = 16
	const samples = 160000
	var hist [buckets]int
	for i := 0; i < samples; i++ {
		hist[int(r.Float64()*buckets)]++
	}
	expected := float64(samples) / buckets
	var chi2 float64
	for _, h := range hist {
		diff := float64(h) - expected
		chi2 += diff * diff / expected
	}
	// 15 degrees of freedom; 99.9th percentile ≈ 37.7.
	if chi2 > 40 {
		t.Errorf("chi-square = %.1f, far from uniform (hist=%v)", chi2, hist)
	}
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	r := New(5)
	const n = 7
	const samples = 70000
	var hist [n]int
	for i := 0; i < samples; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d", n, v)
		}
		hist[v]++
	}
	expected := float64(samples) / n
	for v, h := range hist {
		if math.Abs(float64(h)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("Intn bucket %d has %d samples, expected ≈ %.0f", v, h, expected)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestIntnOne(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Intn(1) != 0 {
			t.Fatal("Intn(1) != 0")
		}
	}
}

// TestQuickIntnInRange drives Intn with testing/quick over arbitrary seeds
// and bounds.
func TestQuickIntnInRange(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	property := func(seed uint64, bound uint16) bool {
		n := int(bound)%1000 + 1
		r := New(seed)
		for i := 0; i < 20; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestMathRandSource checks the generator plugs into math/rand as a
// Source.
func TestMathRandSource(t *testing.T) {
	rng := rand.New(New(8))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := rng.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("math/rand over XORWOW returned %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("only %d of 10 values seen", len(seen))
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(4)
	const samples = 200000
	var sum, sumSq float64
	for i := 0; i < samples; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / samples
	variance := sumSq/samples - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %.4f, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %.4f, want ≈ 1", variance)
	}
}

func TestSplitMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 output bits on average.
	var totalFlips int
	const trials = 64
	for bit := 0; bit < trials; bit++ {
		s1 := uint64(0xDEADBEEF)
		s2 := s1 ^ (1 << uint(bit))
		a := SplitMix64(&s1)
		b := SplitMix64(&s2)
		totalFlips += popcount(a ^ b)
	}
	avg := float64(totalFlips) / trials
	if avg < 24 || avg > 40 {
		t.Errorf("SplitMix64 avalanche average = %.1f bits, want ≈ 32", avg)
	}
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func TestSeedResets(t *testing.T) {
	r := New(42)
	first := make([]uint32, 10)
	for i := range first {
		first[i] = r.Uint32()
	}
	r.Seed(42)
	for i := range first {
		if got := r.Uint32(); got != first[i] {
			t.Fatalf("after Seed(42), output %d = %#x, want %#x", i, got, first[i])
		}
	}
}

func BenchmarkUint32(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += r.Uint32()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
