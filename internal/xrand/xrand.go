// Package xrand provides the pseudo-random number machinery of the GPU
// pipeline: a faithful implementation of Marsaglia's XORWOW generator —
// the default generator of Nvidia's cuRAND library, which the paper uses
// for both the perturbation and the acceptance kernels — together with
// SplitMix64-based seeding and per-thread stream derivation.
//
// The paper notes that cuRAND delivers integers and that a normalization
// step maps them to floating-point values in [0,1); Float64 reproduces
// that normalization.
package xrand

import "math"

// xorwowWeyl is the Weyl-sequence increment of the XORWOW counter, the
// constant used by Marsaglia (2003) and cuRAND.
const xorwowWeyl = 362437

// XORWOW is Marsaglia's xorwow generator: a 160-bit xorshift state plus a
// Weyl counter, with period 2^192 − 2^32. The zero value is not a valid
// generator; use New or NewStream.
type XORWOW struct {
	x, y, z, w, v uint32
	d             uint32
}

// New returns a XORWOW generator seeded from the given 64-bit seed via
// SplitMix64 (which guarantees a non-degenerate initial state).
func New(seed uint64) *XORWOW {
	return NewStream(seed, 0)
}

// NewStream returns a XORWOW generator for a numbered sub-stream of the
// seed. Distinct stream numbers yield statistically independent sequences;
// the pipeline assigns one stream per simulated GPU thread, mirroring
// cuRAND's per-thread sequence initialization.
func NewStream(seed, stream uint64) *XORWOW {
	sm := seed ^ (stream+1)*0x9E3779B97F4A7C15
	r := &XORWOW{}
	s0 := SplitMix64(&sm)
	s1 := SplitMix64(&sm)
	s2 := SplitMix64(&sm)
	r.x = uint32(s0)
	r.y = uint32(s0 >> 32)
	r.z = uint32(s1)
	r.w = uint32(s1 >> 32)
	r.v = uint32(s2)
	r.d = uint32(s2 >> 32)
	// The xorshift part of the state must not be all zero (the Weyl
	// counter may be anything).
	if r.x|r.y|r.z|r.w|r.v == 0 {
		r.v = 0x6C078965
	}
	return r
}

// Uint32 advances the generator and returns the next 32-bit value.
func (r *XORWOW) Uint32() uint32 {
	t := r.x ^ (r.x >> 2)
	r.x, r.y, r.z, r.w = r.y, r.z, r.w, r.v
	r.v = (r.v ^ (r.v << 4)) ^ (t ^ (t << 1))
	r.d += xorwowWeyl
	return r.v + r.d
}

// Uint64 returns the next 64-bit value (two generator steps).
func (r *XORWOW) Uint64() uint64 {
	hi := uint64(r.Uint32())
	lo := uint64(r.Uint32())
	return hi<<32 | lo
}

// Int63 returns a non-negative 63-bit value, satisfying math/rand.Source.
func (r *XORWOW) Int63() int64 { return int64(r.Uint64() >> 1) }

// Seed is present to satisfy math/rand.Source; reseeding in place is
// intentionally a full state reset.
func (r *XORWOW) Seed(seed int64) { *r = *New(uint64(seed)) }

// Float64 returns a uniform value in [0,1). It reproduces the paper's
// normalization of cuRAND integers: the 32-bit output divided by 2^32.
func (r *XORWOW) Float64() float64 {
	return float64(r.Uint32()) / (1 << 32)
}

// Float64Open returns a uniform value in (0,1], useful where a logarithm
// of the variate is taken (e.g. exponential acceptance sampling).
func (r *XORWOW) Float64Open() float64 {
	return (float64(r.Uint32()) + 1) / (1 << 32)
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0 or if n
// does not fit in 32 bits (far beyond any job count in this repository).
// Lemire's multiply-shift method with rejection keeps the result exactly
// uniform.
func (r *XORWOW) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	if int64(n) > 1<<32-1 {
		panic("xrand: Intn bound exceeds 32 bits")
	}
	bound := uint32(n)
	threshold := -bound % bound // (2^32 − bound) mod bound
	for {
		prod := uint64(r.Uint32()) * uint64(bound)
		if uint32(prod) >= threshold {
			return int(prod >> 32)
		}
	}
}

// NormFloat64 returns a standard normal variate via the polar
// Box–Muller method. Used for temperature-estimation diagnostics.
func (r *XORWOW) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// SplitMix64 advances *state by the golden-gamma constant and returns the
// finalized output. It is the standard state-initialization PRNG of
// Steele, Lea and Flood.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
