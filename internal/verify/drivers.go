package verify

import (
	"context"

	duedate "repro"
	"repro/internal/core"
	"repro/internal/problem"
)

// Budget sizes the per-solve effort of the drivers under differential
// test. Verification instances are tiny (the exact oracles cap n), so the
// defaults are far below the paper's experiment configuration — the goal
// is many instances through every engine, not solution quality on one.
type Budget struct {
	// Iterations per chain (default 60).
	Iterations int
	// Grid and Block set the ensemble geometry (default 1 × 8).
	Grid, Block int
	// TempSamples for the T₀ estimate (default 50).
	TempSamples int
}

func (b Budget) withDefaults() Budget {
	if b.Iterations <= 0 {
		b.Iterations = 60
	}
	if b.Grid <= 0 {
		b.Grid = 1
	}
	if b.Block <= 0 {
		b.Block = 8
	}
	if b.TempSamples <= 0 {
		b.TempSamples = 50
	}
	return b
}

// RegisteredDrivers adapts every algorithm×engine pairing of the facade
// registry into verification drivers, plus the persistent-kernel SA/GPU
// variant (a distinct engine implementation behind the same pairing).
// Because the list is enumerated from duedate.Pairings() at call time, any
// future engine is under differential test the moment it self-registers.
func RegisteredDrivers(b Budget) []Driver {
	b = b.withDefaults()
	var drivers []Driver
	mk := func(name string, opts duedate.Options) Driver {
		return Driver{Name: name, Solve: func(ctx context.Context, in *problem.Instance, seed uint64) (core.Result, error) {
			opts.Seed = seed
			return duedate.SolveContext(ctx, in, opts)
		}}
	}
	for _, p := range duedate.Pairings() {
		opts := duedate.Options{
			Algorithm:   p.Algorithm,
			Engine:      p.Engine,
			Iterations:  b.Iterations,
			Grid:        b.Grid,
			Block:       b.Block,
			TempSamples: b.TempSamples,
		}
		drivers = append(drivers, mk(p.Algorithm.String()+"/"+p.Engine.String(), opts))
		if p.Algorithm == duedate.SA && p.Engine == duedate.EngineGPU {
			popts := opts
			popts.Persistent = true
			drivers = append(drivers, mk("SA/gpu-persistent", popts))
		}
	}
	return drivers
}
