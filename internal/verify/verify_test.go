package verify

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/problem"
	"repro/internal/xrand"
)

func TestFamiliesGenerateValidDeterministicInstances(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			for trial := 0; trial < 16; trial++ {
				in := fam.Gen(xrand.NewStream(7, uint64(trial)), trial, 8)
				if err := in.Validate(); err != nil {
					t.Fatalf("trial %d: invalid instance: %v", trial, err)
				}
				again := fam.Gen(xrand.NewStream(7, uint64(trial)), trial, 8)
				if !reflect.DeepEqual(in, again) {
					t.Fatalf("trial %d: generator is not deterministic for a fixed stream", trial)
				}
			}
		})
	}
}

func TestFamilyByName(t *testing.T) {
	f, err := FamilyByName("d-zero")
	if err != nil || f.Name != "d-zero" {
		t.Fatalf("FamilyByName(d-zero) = %v, %v", f.Name, err)
	}
	if _, err := FamilyByName("no-such-family"); err == nil {
		t.Fatal("FamilyByName accepted an unknown name")
	}
}

func TestRunCleanWithoutDrivers(t *testing.T) {
	rep, err := Run(context.Background(), Config{Trials: 4, Seed: 3, MaxN: 7}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("expected a clean run, got %d discrepancies; first: %+v", len(rep.Discrepancies), rep.Discrepancies[0])
	}
	if want := 4 * len(Families()); rep.Instances != want {
		t.Fatalf("Instances = %d, want %d", rep.Instances, want)
	}
	for _, check := range []string{"sequence-agreement", "delta-walk", "metamorphic", "oracle-chain", "dp-solve", "dp-oracle"} {
		if rep.Checks[check] == 0 {
			t.Errorf("check %q never ran", check)
		}
	}
	// The DP leg's instances are accounted separately: 3 default trials ×
	// (large CDD + EARLYWORK) + 2 brute-checked restrictive smalls.
	if rep.DPInstances != 8 {
		t.Errorf("DPInstances = %d, want 8", rep.DPInstances)
	}
}

func TestRunDPLegDisabled(t *testing.T) {
	rep, err := Run(context.Background(), Config{Trials: 1, Families: []string{"single-job"}, DPTrials: -1}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.DPInstances != 0 || rep.Checks["dp-solve"] != 0 {
		t.Fatalf("DPTrials < 0 must disable the leg, got %d instances, %d dp-solve checks",
			rep.DPInstances, rep.Checks["dp-solve"])
	}
}

func TestRunFamilyFilter(t *testing.T) {
	rep, err := Run(context.Background(), Config{Trials: 2, Families: []string{"single-job"}}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Instances != 2 {
		t.Fatalf("Instances = %d, want 2", rep.Instances)
	}
	if _, err := Run(context.Background(), Config{Trials: 1, Families: []string{"bogus"}}, nil); err == nil {
		t.Fatal("Run accepted an unknown family filter")
	}
}

func TestRunCancelledReturnsPartialReport(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, Config{Trials: 2}, nil)
	if err == nil {
		t.Fatal("Run ignored the cancelled context")
	}
	if rep == nil {
		t.Fatal("Run returned a nil report on cancellation")
	}
}

// TestMutationBrokenEvaluatorCaught is the evaluator-level mutation smoke
// test: an injected evaluator that disagrees by 1 on some instances must
// be flagged by the sequence-agreement chain, proving the chain has teeth.
func TestMutationBrokenEvaluatorCaught(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	seq := problem.IdentitySequence(in.N())
	broken := NamedCost{Name: "mutant", Cost: func(in *problem.Instance, seq []int) (int64, error) {
		return core.NewEvaluator(in).Cost(seq) + 1, nil
	}}
	ds := CheckSequenceAgreement(in, seq, broken)
	if len(ds) != 1 || ds[0].Driver != "mutant" {
		t.Fatalf("broken evaluator not caught: %+v", ds)
	}
	if ds := CheckSequenceAgreement(in, seq); len(ds) != 0 {
		t.Fatalf("standard chain disagrees on the paper example: %+v", ds)
	}

	failing := NamedCost{Name: "erroring", Cost: func(*problem.Instance, []int) (int64, error) {
		return 0, fmt.Errorf("deliberate failure")
	}}
	if ds := CheckSequenceAgreement(in, seq, failing); len(ds) != 1 || ds[0].Driver != "erroring" {
		t.Fatalf("erroring evaluator not caught: %+v", ds)
	}
}

// TestMutationBrokenDriversCaught is the driver-level mutation smoke test:
// dishonest costs, impossible optima and infeasible sequences must each be
// flagged by their dedicated check.
func TestMutationBrokenDriversCaught(t *testing.T) {
	drivers := []Driver{
		{Name: "dishonest", Solve: func(_ context.Context, in *problem.Instance, _ uint64) (core.Result, error) {
			seq := problem.IdentitySequence(in.N())
			return core.Result{BestSeq: seq, BestCost: core.NewEvaluator(in).Cost(seq) + 5}, nil
		}},
		{Name: "impossible", Solve: func(_ context.Context, in *problem.Instance, _ uint64) (core.Result, error) {
			return core.Result{BestSeq: problem.IdentitySequence(in.N()), BestCost: -1}, nil
		}},
		{Name: "infeasible", Solve: func(_ context.Context, in *problem.Instance, _ uint64) (core.Result, error) {
			return core.Result{BestSeq: make([]int, in.N())}, nil
		}},
		{Name: "erroring", Solve: func(context.Context, *problem.Instance, uint64) (core.Result, error) {
			return core.Result{}, fmt.Errorf("deliberate failure")
		}},
	}
	rep, err := Run(context.Background(), Config{Trials: 1, MaxN: 5, Families: []string{"uniform-cdd"}}, drivers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	caught := map[string]map[string]bool{} // driver -> checks that fired
	for _, d := range rep.Discrepancies {
		if caught[d.Driver] == nil {
			caught[d.Driver] = map[string]bool{}
		}
		caught[d.Driver][d.Check] = true
	}
	for driver, check := range map[string]string{
		"dishonest":  "driver-honest-cost",
		"impossible": "driver-beats-exact",
		"infeasible": "driver-feasibility",
		"erroring":   "driver-error",
	} {
		if !caught[driver][check] {
			t.Errorf("broken driver %q not flagged by %q (got %v)", driver, check, caught[driver])
		}
	}
	// n=1 instances have a single sequence: every driver that returns it
	// honestly is optimal, so the infeasible/dishonest mutants must not
	// leak through on larger instances either — Ok() must be false.
	if rep.Ok() {
		t.Fatal("report claims a clean run despite broken drivers")
	}
}

func TestCheckExactOraclesVShapeAgreement(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 24; trial++ {
		in := genExhaustiveSizes(rng, trial%8, 8) // n in 1..8: both oracles apply
		bounds, ds := CheckExactOracles(in, exact.MaxBruteN, exact.MaxSubsetN)
		if len(ds) != 0 {
			t.Fatalf("trial %d: %+v", trial, ds)
		}
		if !bounds.Known || !bounds.Brute || !bounds.Subset {
			t.Fatalf("trial %d: expected both oracles on %s, got %+v", trial, in.Name, bounds)
		}
	}
}

func TestCheckExactOraclesSizeGuard(t *testing.T) {
	// n just past MaxBruteN: the typed guard must fire, not an enumeration.
	n := exact.MaxBruteN + 1
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	for i := range p {
		p[i], alpha[i], beta[i] = 1, 1, 1
	}
	in, err := problem.NewCDD("guard", p, alpha, beta, int64(n))
	if err != nil {
		t.Fatal(err)
	}
	bounds, ds := CheckExactOracles(in, exact.MaxBruteN, 0)
	if len(ds) != 0 {
		t.Fatalf("size guard misbehaved: %+v", ds)
	}
	if bounds.Brute {
		t.Fatal("brute claimed to run past its limit")
	}
}

func TestRegisteredDriversCoverEveryPairing(t *testing.T) {
	drivers := RegisteredDrivers(Budget{})
	names := map[string]bool{}
	for _, d := range drivers {
		names[d.Name] = true
	}
	// 12 registry pairings + the persistent SA/GPU variant.
	if len(drivers) != 13 {
		t.Fatalf("RegisteredDrivers returned %d drivers (%v), want 13", len(drivers), names)
	}
	for _, want := range []string{"SA/gpu", "SA/gpu-persistent", "SA/cpu-serial", "DPSO/gpu", "TA/cpu-parallel", "ES/cpu-serial", "EXACT-DP/cpu-serial", "AUTO/cpu-parallel"} {
		if !names[want] {
			t.Errorf("driver %q missing from %v", want, names)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Run(context.Background(), Config{Trials: 1, Families: []string{"single-job"}}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Instances != rep.Instances || len(back.Checks) != len(rep.Checks) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, rep)
	}
	if s := rep.Summary(); !strings.Contains(s, "1 instances") || !strings.Contains(s, "0 discrepancies") {
		t.Fatalf("Summary() = %q", s)
	}
}
