// Package verify is the cross-engine differential-verification subsystem:
// seedable instance-generator families, an oracle chain over the exact
// solvers and every registered algorithm×engine driver, metamorphic
// properties, and the sequence-evaluator agreement checks that tie the
// O(n) linear algorithms, their incremental delta forms, the materialized
// schedules and the LP reference together.
//
// The two-layer design of the paper only works if every engine computes
// identical costs for a fixed sequence via the exact linear algorithms;
// this package exists to falsify that claim automatically. Run generates
// instances family by family, cross-checks every evaluator on sampled
// sequences, anchors small instances to the exact oracles, applies the
// metamorphic properties, and races every registered driver against the
// proven optimum — collecting machine-readable discrepancies instead of
// stopping at the first failure.
package verify

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/problem"
	"repro/internal/xrand"
)

// Config parameterizes a verification run. The zero value is usable:
// every family, modest trial counts, all registered drivers.
type Config struct {
	// Trials is the number of instances generated per family (default 25).
	Trials int
	// Seed derives every RNG stream of the run; a fixed seed replays the
	// exact same instances, sequences and driver solves (default 1).
	Seed uint64
	// MaxN bounds the job count of the size-randomized families
	// (default 8, keeping the brute-force oracle applicable).
	MaxN int
	// SeqSamples is the number of random sequences cross-checked per
	// instance in the evaluator-agreement layer (default 4).
	SeqSamples int
	// BruteN bounds the instances sent to the brute-force oracle
	// (default 8; hard-capped by exact.MaxBruteN).
	BruteN int
	// SubsetN bounds the instances sent to the subset oracle (default 12).
	SubsetN int
	// Families restricts the run to the named families (default: all).
	Families []string
	// DeltaSteps is the length of the propose/commit random walk per
	// instance (default 12).
	DeltaSteps int
	// Machines, when positive, overrides the machine count of every
	// generated instance — the CI matrix runs the full family set at
	// machines ∈ {1, 2, 3}. Safe for all families: the UCDDCP
	// unrestricted band is on the total ΣP, so forcing a split never
	// invalidates an instance. Zero keeps each family's own choice.
	Machines int
	// DPTrials is the number of exact-dp leg trials (large agreeable CDD
	// instances at n ≥ 200, EARLYWORK knapsacks, and brute-checked
	// restrictive straddler cases — see dpleg.go). Default 3; negative
	// disables the leg.
	DPTrials int
	// DPMaxN is the upper bound on the DP leg's CDD instance size
	// (default 240; the lower bound is fixed at 200, the paper-protocol
	// regime the enumeration oracles cannot reach).
	DPMaxN int
	// AutoTrials is the number of AUTO-leg trials: the portfolio
	// meta-driver raced against every static pairing under an equal
	// budget and shared seed, plus the DP free-certificate contract (see
	// autoleg.go). Default 3; negative disables the leg. The leg only
	// runs when drivers are under test.
	AutoTrials int
}

func (c Config) withDefaults() Config {
	if c.Trials <= 0 {
		c.Trials = 25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxN <= 0 {
		c.MaxN = 8
	}
	if c.SeqSamples <= 0 {
		c.SeqSamples = 4
	}
	if c.BruteN <= 0 {
		c.BruteN = 8
	}
	if c.SubsetN <= 0 {
		c.SubsetN = 12
	}
	if c.DeltaSteps <= 0 {
		c.DeltaSteps = 12
	}
	if c.DPTrials == 0 {
		c.DPTrials = 3
	}
	if c.DPMaxN < 200 {
		c.DPMaxN = 240
	}
	if c.AutoTrials == 0 {
		c.AutoTrials = 3
	}
	return c
}

// Discrepancy is one falsification: a check that failed on a concrete
// instance, with enough detail to reproduce it.
type Discrepancy struct {
	// Check names the failing check (e.g. "sequence-agreement",
	// "oracle-chain", "driver-beats-exact").
	Check string `json:"check"`
	// Family is the generator family of the instance ("" for injected
	// instances).
	Family string `json:"family,omitempty"`
	// Instance is the generated instance's name (embeds trial and n).
	Instance string `json:"instance"`
	// Driver is the evaluator or engine at fault, when attributable.
	Driver string `json:"driver,omitempty"`
	// Detail is the human-readable evidence.
	Detail string `json:"detail"`
}

// DriverStats aggregates one driver's behavior over a run.
type DriverStats struct {
	// Runs counts completed solves.
	Runs int `json:"runs"`
	// OptimumHits counts solves that reached a proven exact optimum.
	OptimumHits int `json:"optimumHits"`
	// OptimumKnown counts solves where an exact optimum was available.
	OptimumKnown int `json:"optimumKnown"`
	// WorstGapPct is the largest percent deviation above a proven
	// optimum observed (0 when the driver always reached it).
	WorstGapPct float64 `json:"worstGapPct"`
}

// Report is the machine-readable outcome of a verification run.
type Report struct {
	// Config echoes the effective configuration.
	Config Config `json:"config"`
	// Drivers lists the engines under test, in run order.
	Drivers []string `json:"drivers"`
	// Instances counts generated instances across all families.
	Instances int `json:"instances"`
	// DPInstances counts the instances of the exact-dp leg (tracked
	// separately so the per-family accounting stays comparable across
	// configurations).
	DPInstances int `json:"dpInstances"`
	// AutoInstances counts the instances of the AUTO portfolio leg.
	AutoInstances int `json:"autoInstances"`
	// Checks counts executed checks by name (a "check" is one comparison
	// or invariant evaluation, so the totals show real coverage).
	Checks map[string]int64 `json:"checks"`
	// DriverStats aggregates per-driver quality, keyed by driver name.
	DriverStats map[string]*DriverStats `json:"driverStats"`
	// Discrepancies is every falsification found; empty means the run is
	// clean.
	Discrepancies []Discrepancy `json:"discrepancies"`
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration `json:"elapsedNs"`
}

// Ok reports whether the run found no discrepancies.
func (r *Report) Ok() bool { return len(r.Discrepancies) == 0 }

// Summary renders a short human-readable digest (one line per family-
// independent aggregate; the JSON form carries the full detail).
func (r *Report) Summary() string {
	names := make([]string, 0, len(r.Checks))
	var total int64
	for name, c := range r.Checks {
		names = append(names, name)
		total += c
	}
	sort.Strings(names)
	s := fmt.Sprintf("verify: %d instances, %d checks, %d discrepancies, %d drivers, %v\n",
		r.Instances, total, len(r.Discrepancies), len(r.Drivers), r.Elapsed.Round(time.Millisecond))
	for _, name := range names {
		s += fmt.Sprintf("  %-24s %8d\n", name, r.Checks[name])
	}
	return s
}

// Driver is one engine under differential test: a name and a solve
// function. RegisteredDrivers adapts every pairing of the facade registry;
// tests inject deliberately broken drivers to prove the chain catches
// them.
type Driver struct {
	Name  string
	Solve func(ctx context.Context, in *problem.Instance, seed uint64) (core.Result, error)
}

// Run executes the full verification: for each family and trial it
// generates an instance, runs the evaluator-agreement layer on sampled
// sequences, the propose/commit delta walk, the metamorphic properties,
// the exact-oracle chain, and — where an exact optimum is proven — every
// driver against it. A cancelled ctx stops between instances and returns
// the partial report with an error.
func Run(ctx context.Context, cfg Config, drivers []Driver) (*Report, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	rep := &Report{
		Config:      cfg,
		Checks:      map[string]int64{},
		DriverStats: map[string]*DriverStats{},
	}
	for _, d := range drivers {
		rep.Drivers = append(rep.Drivers, d.Name)
		rep.DriverStats[d.Name] = &DriverStats{}
	}

	fams := Families()
	if len(cfg.Families) > 0 {
		fams = fams[:0:0]
		for _, name := range cfg.Families {
			f, err := FamilyByName(name)
			if err != nil {
				return rep, err
			}
			fams = append(fams, f)
		}
	}

	for fi, fam := range fams {
		for trial := 0; trial < cfg.Trials; trial++ {
			if err := ctx.Err(); err != nil {
				rep.Elapsed = time.Since(start)
				return rep, fmt.Errorf("verify: cancelled at %s trial %d: %w", fam.Name, trial, err)
			}
			rng := xrand.NewStream(cfg.Seed, uint64(fi)<<32|uint64(trial))
			in := fam.Gen(rng, trial, cfg.MaxN)
			if cfg.Machines > 0 && in.MachineCount() != cfg.Machines {
				in.Machines = cfg.Machines
				in.Name = fmt.Sprintf("%s/m%d", in.Name, cfg.Machines)
			}
			rep.Instances++
			if err := in.Validate(); err != nil {
				rep.add(Discrepancy{
					Check: "generator", Family: fam.Name, Instance: in.Name,
					Detail: fmt.Sprintf("generated instance invalid: %v", err),
				})
				continue
			}
			rep.checkInstance(ctx, cfg, fam.Name, in, rng, drivers)
		}
	}

	// The exact-dp leg: differential verification at sizes the
	// enumeration oracles cannot reach (n into the hundreds).
	if cfg.DPTrials > 0 {
		if err := rep.runDPLeg(ctx, cfg, drivers); err != nil {
			rep.Elapsed = time.Since(start)
			return rep, err
		}
	}

	// The AUTO leg: the portfolio meta-driver against every static
	// pairing under an equal budget and shared seed (skipped together
	// with the drivers — it is a driver-level comparison).
	if cfg.AutoTrials > 0 && len(drivers) > 0 {
		if err := rep.runAutoLeg(ctx, cfg); err != nil {
			rep.Elapsed = time.Since(start)
			return rep, err
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// checkInstance runs every layer on one instance. Solutions are genomes
// of length GenomeLen — the plain job sequence on single-machine
// instances, the delimiter encoding on parallel-machine ones — so every
// layer below covers both regimes through the same code path.
func (r *Report) checkInstance(ctx context.Context, cfg Config, family string, in *problem.Instance, rng *xrand.XORWOW, drivers []Driver) {
	n := in.GenomeLen()

	// Layer 1: sequence-cost agreement across every evaluator.
	seq := problem.IdentitySequence(n)
	for s := 0; s < cfg.SeqSamples; s++ {
		if s > 0 {
			shuffle(rng, seq)
		}
		r.Checks["sequence-agreement"]++
		for _, d := range CheckSequenceAgreement(in, seq) {
			d.Family = family
			r.add(d)
		}
	}

	// Layer 2: incremental evaluation under the propose/commit protocol.
	r.Checks["delta-walk"]++
	for _, d := range deltaWalkCheck(in, rng, cfg.DeltaSteps) {
		d.Family = family
		r.add(d)
	}

	// Layer 3: metamorphic properties.
	r.Checks["metamorphic"]++
	for _, d := range CheckMetamorphic(in, rng, 2) {
		d.Family = family
		r.add(d)
	}

	// Layer 4: exact oracles (and their mutual agreement).
	bounds, ds := CheckExactOracles(in, cfg.BruteN, cfg.SubsetN)
	r.Checks["oracle-chain"]++
	for _, d := range ds {
		d.Family = family
		r.add(d)
	}

	// Layer 5: every registered driver against the exact bound and its
	// own reported cost. Runs even without a proven optimum — the honesty
	// and feasibility checks need no ground truth.
	for _, drv := range drivers {
		r.Checks["driver"]++
		st := r.DriverStats[drv.Name]
		res, err := drv.Solve(ctx, in, cfg.Seed+uint64(st.Runs)+1)
		if err != nil {
			// A capability-scoped exact driver may decline an instance with
			// a typed sentinel (outside its provable domain, or over its
			// state budget) — that is contract behavior, not a failure. Any
			// other error is a real discrepancy.
			if errors.Is(err, exact.ErrInapplicable) || errors.Is(err, exact.ErrTooLarge) {
				r.Checks["driver-skip"]++
				continue
			}
			r.add(Discrepancy{
				Check: "driver-error", Family: family, Instance: in.Name, Driver: drv.Name,
				Detail: fmt.Sprintf("solve failed: %v", err),
			})
			continue
		}
		st.Runs++
		if len(res.BestSeq) != n || !problem.IsPermutation(res.BestSeq) {
			r.add(Discrepancy{
				Check: "driver-feasibility", Family: family, Instance: in.Name, Driver: drv.Name,
				Detail: fmt.Sprintf("best genome %v is not a permutation of 0..%d", res.BestSeq, n-1),
			})
			continue
		}
		honest := core.NewEvaluator(in).Cost(res.BestSeq)
		if honest != res.BestCost {
			r.add(Discrepancy{
				Check: "driver-honest-cost", Family: family, Instance: in.Name, Driver: drv.Name,
				Detail: fmt.Sprintf("reported cost %d, sequence re-evaluates to %d", res.BestCost, honest),
			})
		}
		if bounds.Known {
			st.OptimumKnown++
			if res.BestCost < bounds.Cost {
				r.add(Discrepancy{
					Check: "driver-beats-exact", Family: family, Instance: in.Name, Driver: drv.Name,
					Detail: fmt.Sprintf("cost %d beats the proven optimum %d — solver or oracle bug", res.BestCost, bounds.Cost),
				})
			} else if res.BestCost == bounds.Cost {
				st.OptimumHits++
			} else if gap := core.PercentDeviation(res.BestCost, bounds.Cost); gap > st.WorstGapPct {
				st.WorstGapPct = gap
			}
		}
	}
}

func (r *Report) add(d Discrepancy) {
	r.Discrepancies = append(r.Discrepancies, d)
}
