package verify

import (
	"errors"
	"fmt"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/lpref"
	"repro/internal/perm"
	"repro/internal/problem"
	"repro/internal/ucddcp"
	"repro/internal/xrand"
)

// This file implements the two oracle layers of the subsystem:
//
//   - sequence-cost agreement: for a fixed sequence, every evaluator in
//     the repository — the fused full passes, the cost-only pass, the
//     host Evaluators, the incremental delta evaluators (both via Reset
//     and via Propose), the materialized-schedule re-evaluation, and the
//     per-sequence LP reference — must report the same exact cost;
//
//   - the exact chain: brute-force enumeration, the V-shape subset scan
//     (where applicable) and every registered driver must order as
//     brute == subset ≤ driver, with each driver's reported cost honest
//     against re-evaluation of its returned sequence.

// NamedCost is one sequence evaluator under differential test. Cost
// returns the optimal objective of the sequence, or an error if the
// evaluator cannot handle the instance (which is itself a discrepancy for
// the standard evaluators — they are total over valid instances).
type NamedCost struct {
	Name string
	Cost func(in *problem.Instance, seq []int) (int64, error)
}

// StandardEvaluators returns the evaluator chain for the instance's kind
// and machine count. The first entry is the reference the others are
// compared against. Genome-coded instances (parallel machines, EARLYWORK)
// get the machine-aware chain; the single-machine paper problems keep
// their original chains, LP reference included.
func StandardEvaluators(in *problem.Instance) []NamedCost {
	if in.GenomeCoded() {
		return genomeEvaluators()
	}
	if in.Kind == problem.UCDDCP {
		return ucddcpEvaluators()
	}
	return cddEvaluators()
}

// genomeEvaluators is the agreement chain over delimiter genomes: the
// raw genome scorer as reference, the batch evaluator on all four faces,
// the machine-granular delta evaluator via both Reset and Propose, and
// the materialized multi-machine schedule re-evaluated from first
// principles.
func genomeEvaluators() []NamedCost {
	return []NamedCost{
		{Name: "core.GenomeCostArrays", Cost: func(in *problem.Instance, seq []int) (int64, error) {
			s := core.NewSoAInstance(in)
			comp := make([]int64, s.N)
			aux := make([]int64, s.N)
			return core.GenomeCostArrays(seq, s, comp, aux), nil
		}},
		{Name: "core.Evaluator", Cost: func(in *problem.Instance, seq []int) (int64, error) {
			return core.NewEvaluator(in).Cost(seq), nil
		}},
		{Name: "machineDelta.Reset", Cost: func(in *problem.Instance, seq []int) (int64, error) {
			return core.NewDeltaEvaluator(in).Reset(seq), nil
		}},
		{Name: "machineDelta.Propose", Cost: deltaProposeCost},
		{Name: "core.BatchEvaluator.Cost", Cost: batchCost},
		{Name: "batch.CostRows", Cost: batchRowsCost},
		{Name: "batch.CostSeqs", Cost: batchSeqsCost},
		{Name: "batch.FitnessRows32", Cost: batchFitness32Cost},
		{Name: "genome-schedule.Cost", Cost: genomeScheduleCost},
	}
}

// genomeScheduleCost materializes the genome into the fully timed
// multi-machine schedule and re-evaluates it from first principles,
// checking the structural invariants (assignment bounds, per-machine
// starts) on the way.
func genomeScheduleCost(in *problem.Instance, seq []int) (int64, error) {
	s := core.GenomeSchedule(in, append([]int(nil), seq...))
	if err := s.Validate(in); err != nil {
		return 0, fmt.Errorf("genome schedule invalid: %w", err)
	}
	return s.Cost(in), nil
}

func cddEvaluators() []NamedCost {
	return []NamedCost{
		{Name: "cdd.CostArrays", Cost: func(in *problem.Instance, seq []int) (int64, error) {
			p, a, b := cdd.ParamArrays(in)
			return cdd.CostArrays(seq, p, a, b, in.D), nil
		}},
		{Name: "cdd.OptimizeArrays", Cost: func(in *problem.Instance, seq []int) (int64, error) {
			p, a, b := cdd.ParamArrays(in)
			comp := make([]int64, len(seq))
			c, _, _, _ := cdd.OptimizeArrays(seq, p, a, b, in.D, comp)
			return c, nil
		}},
		{Name: "core.Evaluator", Cost: func(in *problem.Instance, seq []int) (int64, error) {
			return core.NewEvaluator(in).Cost(seq), nil
		}},
		{Name: "cdd.Delta.Reset", Cost: func(in *problem.Instance, seq []int) (int64, error) {
			return cdd.NewDeltaEvaluator(in).Reset(seq), nil
		}},
		{Name: "cdd.Delta.Propose", Cost: deltaProposeCost},
		{Name: "core.BatchEvaluator.Cost", Cost: batchCost},
		{Name: "batch.CostRows", Cost: batchRowsCost},
		{Name: "batch.CostSeqs", Cost: batchSeqsCost},
		{Name: "batch.FitnessRows32", Cost: batchFitness32Cost},
		{Name: "schedule.Cost", Cost: scheduleCost},
		{Name: "lpref", Cost: lpCost},
	}
}

func ucddcpEvaluators() []NamedCost {
	return []NamedCost{
		{Name: "ucddcp.Evaluator", Cost: func(in *problem.Instance, seq []int) (int64, error) {
			return ucddcp.NewEvaluator(in).Cost(seq), nil
		}},
		{Name: "ucddcp.OptimizeSequence", Cost: func(in *problem.Instance, seq []int) (int64, error) {
			return ucddcp.OptimizeSequence(in, seq).Cost, nil
		}},
		{Name: "core.Evaluator", Cost: func(in *problem.Instance, seq []int) (int64, error) {
			return core.NewEvaluator(in).Cost(seq), nil
		}},
		{Name: "ucddcp.Delta.Reset", Cost: func(in *problem.Instance, seq []int) (int64, error) {
			return ucddcp.NewDeltaEvaluator(in).Reset(seq), nil
		}},
		{Name: "ucddcp.Delta.Propose", Cost: deltaProposeCost},
		{Name: "core.BatchEvaluator.Cost", Cost: batchCost},
		{Name: "batch.CostRows", Cost: batchRowsCost},
		{Name: "batch.CostSeqs", Cost: batchSeqsCost},
		{Name: "batch.FitnessRows32", Cost: batchFitness32Cost},
		{Name: "schedule.Cost", Cost: scheduleCost},
		{Name: "lpref", Cost: lpCost},
	}
}

// The batch evaluators under differential test. Each prices seq through
// the batch evaluation core as multiple rows of one batch (with a
// rotated decoy row between two copies), so every batch face
// cross-checks itself for row independence on every trial before the
// cost joins the agreement chain.

// batchCost is the batch of one: BatchEvaluator's Evaluator face.
func batchCost(in *problem.Instance, seq []int) (int64, error) {
	return core.NewBatchEvaluator(in).Cost(seq), nil
}

// batchTriple lays out [seq, rotate(seq), seq]: the rotated middle row
// checks that batch rows are scored independently (rows 0 and 2 must
// agree with each other and with the single-row evaluators).
func batchTriple(seq []int) ([]int, [][]int) {
	n := len(seq)
	rows := make([]int, 3*n)
	copy(rows[:n], seq)
	for i := range seq {
		rows[n+i] = seq[(i+1)%n]
	}
	copy(rows[2*n:], seq)
	return rows, [][]int{rows[:n], rows[n : 2*n], rows[2*n:]}
}

// batchRowsCost prices seq through the row-major batch kernel.
func batchRowsCost(in *problem.Instance, seq []int) (int64, error) {
	rows, _ := batchTriple(seq)
	costs := make([]int64, 3)
	core.NewBatchEvaluator(in).CostRows(rows, costs)
	if costs[0] != costs[2] {
		return 0, fmt.Errorf("pair-path cost %d != tail-path cost %d on seq %v", costs[0], costs[2], seq)
	}
	return costs[0], nil
}

// batchSeqsCost prices seq through the slice-of-sequences batch kernel.
func batchSeqsCost(in *problem.Instance, seq []int) (int64, error) {
	_, seqs := batchTriple(seq)
	costs := make([]int64, 3)
	core.NewBatchEvaluator(in).CostSeqs(seqs, costs)
	if costs[0] != costs[2] {
		return 0, fmt.Errorf("pair-path cost %d != tail-path cost %d on seq %v", costs[0], costs[2], seq)
	}
	return costs[0], nil
}

// batchFitness32Cost prices seq through the device-row fitness kernel
// and additionally pins its abstract op counts to the single-row core —
// the quantity the simulated GPU converts into cycle charges, so a
// mismatch would silently shift every engine's SimSeconds.
func batchFitness32Cost(in *problem.Instance, seq []int) (int64, error) {
	n := len(seq)
	rows := make([]int32, 3*n)
	for i, v := range seq {
		rows[i] = int32(v)
		rows[n+i] = int32(seq[(i+1)%n])
		rows[2*n+i] = int32(v)
	}
	costs := make([]int64, 3)
	ops := make([]int, 3)
	be := core.NewBatchEvaluator(in)
	be.FitnessRows32(rows, costs, ops)
	if costs[0] != costs[2] || ops[0] != ops[2] {
		return 0, fmt.Errorf("pair path (cost %d, ops %d) != tail path (cost %d, ops %d) on seq %v",
			costs[0], ops[0], costs[2], ops[2], seq)
	}
	s := be.SoA()
	comp := make([]int64, n)
	var wantCost int64
	var wantOps int
	switch {
	case in.GenomeCoded():
		aux := make([]int64, n)
		wantCost, wantOps = core.GenomeFitnessArrays(seq, s, comp, aux)
	case in.Kind == problem.UCDDCP:
		scratch := make([]int64, n)
		wantCost, _, _, wantOps = ucddcp.OptimizeArrays(seq, s.P, s.M, s.Alpha, s.Beta, s.Gamma, s.D, comp, scratch, nil)
	default:
		wantCost, _, _, wantOps = cdd.OptimizeArrays(seq, s.P, s.Alpha, s.Beta, s.D, comp)
	}
	if costs[0] != wantCost || wantOps != ops[0] {
		return 0, fmt.Errorf("batch (cost %d, ops %d) != single-row core (cost %d, ops %d) on seq %v",
			costs[0], ops[0], wantCost, wantOps, seq)
	}
	return costs[0], nil
}

// deltaProposeCost prices seq through the incremental Propose path from a
// rotated base sequence, so the correction machinery (not just the Reset
// full pass) is under differential test.
func deltaProposeCost(in *problem.Instance, seq []int) (int64, error) {
	n := len(seq)
	dl := core.NewDeltaEvaluator(in)
	base := make([]int, n)
	positions := make([]int, n)
	for i := range seq {
		base[i] = seq[(i+1)%n]
		positions[i] = i
	}
	dl.Reset(base)
	return dl.Propose(seq, positions), nil
}

// scheduleCost materializes the optimally timed (and compressed) schedule
// and re-evaluates it from first principles via problem.Schedule.Cost,
// checking the structural invariants on the way: the schedule validates
// (permutation, start ≥ 0, compressions within [0, P−M]) and, when the
// optimizer anchors a due-date job at 1-based position r, that job
// completes exactly at d in the final schedule.
func scheduleCost(in *problem.Instance, seq []int) (int64, error) {
	var s problem.Schedule
	var cost int64
	var dueJob int
	if in.Kind == problem.UCDDCP {
		r := ucddcp.OptimizeSequence(in, seq)
		s = problem.Schedule{Seq: seq, Start: r.Start, X: r.X}
		cost, dueJob = r.Cost, r.DueJob
	} else {
		r := cdd.OptimizeSequence(in, seq)
		s = problem.Schedule{Seq: seq, Start: r.Start}
		cost, dueJob = r.Cost, r.DueJob
	}
	if err := s.Validate(in); err != nil {
		return 0, fmt.Errorf("optimized schedule invalid: %w", err)
	}
	if dueJob > 0 {
		if c := s.Completions(in)[dueJob-1]; c != in.D {
			return 0, fmt.Errorf("due-date job at position %d completes at %d, not d=%d", dueJob, c, in.D)
		}
	} else if s.Start != 0 {
		return 0, fmt.Errorf("no due-date job anchored but start=%d (Hall–Kubiak–Sethi: start 0 or a job at d)", s.Start)
	}
	if got := s.Cost(in); got != cost {
		return 0, fmt.Errorf("schedule re-evaluates to %d, optimizer claimed %d", got, cost)
	}
	return cost, nil
}

// lpCost solves the per-sequence LP of Section III and rounds the optimum
// (exact for the all-integer instances every generator produces).
func lpCost(in *problem.Instance, seq []int) (int64, error) {
	r, err := lpref.Solve(in, seq)
	if err != nil {
		return 0, err
	}
	return r.RoundedCost(), nil
}

// CheckSequenceAgreement runs every evaluator on (in, seq) and returns one
// discrepancy per evaluator that errors or disagrees with the first
// (reference) evaluator. Callers may append extra evaluators — the
// mutation smoke tests inject deliberately broken ones to prove the chain
// has teeth.
func CheckSequenceAgreement(in *problem.Instance, seq []int, extra ...NamedCost) []Discrepancy {
	evals := append(StandardEvaluators(in), extra...)
	var ds []Discrepancy
	ref, err := evals[0].Cost(in, seq)
	if err != nil {
		return []Discrepancy{{
			Check: "sequence-agreement", Instance: in.Name, Driver: evals[0].Name,
			Detail: fmt.Sprintf("reference evaluator failed on seq %v: %v", seq, err),
		}}
	}
	for _, e := range evals[1:] {
		got, err := e.Cost(in, seq)
		if err != nil {
			ds = append(ds, Discrepancy{
				Check: "sequence-agreement", Instance: in.Name, Driver: e.Name,
				Detail: fmt.Sprintf("failed on seq %v: %v", seq, err),
			})
			continue
		}
		if got != ref {
			ds = append(ds, Discrepancy{
				Check: "sequence-agreement", Instance: in.Name, Driver: e.Name,
				Detail: fmt.Sprintf("cost %d != reference %s cost %d on seq %v", got, evals[0].Name, ref, seq),
			})
		}
	}
	return ds
}

// deltaWalkCheck drives the propose/commit protocol through a random walk
// of small moves (the metaheuristic hot path) and cross-checks every
// proposal against a stateless full evaluation. On genome-coded instances
// the walk interleaves the assignment moves (perm.JobReassign,
// perm.CrossMachineSwap) with the generic rotate move, so the
// machine-granular delta evaluator is priced over exactly the windows
// those operators report.
func deltaWalkCheck(in *problem.Instance, rng *xrand.XORWOW, steps int) []Discrepancy {
	n := in.GenomeLen()
	dl := core.NewDeltaEvaluator(in)
	full := core.NewEvaluator(in)
	base := problem.IdentitySequence(n)
	dl.Reset(base)
	cand := make([]int, n)
	var ops *perm.Ops
	if in.GenomeCoded() {
		ops = perm.NewOps(n)
	}
	var ds []Discrepancy
	for s := 0; s < steps; s++ {
		copy(cand, base)
		var pos []int
		switch {
		case ops != nil && s%3 == 1:
			lo, hi := perm.JobReassign(rng, cand, in.N())
			for p := lo; p <= hi; p++ {
				pos = append(pos, p)
			}
		case ops != nil && s%3 == 2:
			i, j := ops.CrossMachineSwap(rng, cand, in.N())
			if i != j {
				pos = []int{i, j}
			}
		default:
			// k-position move: 2 (swap) or 3 (rotate) touched positions.
			k := 2 + rng.Intn(2)
			pos = make([]int, 0, k)
			for len(pos) < k && len(pos) < n {
				pos = append(pos, rng.Intn(n))
			}
			if len(pos) >= 2 {
				first := cand[pos[0]]
				for i := 0; i < len(pos)-1; i++ {
					cand[pos[i]] = cand[pos[i+1]]
				}
				cand[pos[len(pos)-1]] = first
			}
		}
		got := dl.Propose(cand, pos)
		want := full.Cost(cand)
		if got != want {
			ds = append(ds, Discrepancy{
				Check: "delta-walk", Instance: in.Name,
				Detail: fmt.Sprintf("step %d: Propose=%d, full=%d (base %v cand %v pos %v)", s, got, want, base, cand, pos),
			})
			return ds // the cache is suspect; stop the walk
		}
		if rng.Intn(2) == 0 {
			dl.Commit()
			copy(base, cand)
		}
	}
	return ds
}

// ExactBounds holds the exact optima available for an instance.
type ExactBounds struct {
	// Cost is the proven global optimum; valid only when Known.
	Cost  int64
	Known bool
	// Brute/Subset/DP record which oracles produced a result.
	Brute, Subset, DP bool
}

// CheckExactOracles runs the applicable exact solvers (brute force within
// bruteN, the V-shape subset scan within subsetN for unrestricted CDD) and
// cross-checks them: where both apply they must agree exactly — the
// weighted V-shape dominance property the subset oracle is built on.
// Oversize instances must be rejected with the typed exact.ErrTooLarge
// guard rather than hanging; any other failure is a discrepancy.
func CheckExactOracles(in *problem.Instance, bruteN, subsetN int) (ExactBounds, []Discrepancy) {
	var eb ExactBounds
	var ds []Discrepancy
	// Brute enumerates genomes, so its size gate is the genome length —
	// on parallel-machine instances that enumeration covers every
	// assignment of jobs to machines crossed with every per-machine order.
	n := in.GenomeLen()

	var bruteCost int64
	if n <= bruteN {
		r, err := exact.Brute(in)
		if err != nil {
			ds = append(ds, Discrepancy{
				Check: "oracle-chain", Instance: in.Name, Driver: "exact.Brute",
				Detail: fmt.Sprintf("failed on n=%d: %v", n, err),
			})
		} else {
			eb.Cost, eb.Known, eb.Brute = r.Cost, true, true
			bruteCost = r.Cost
		}
	} else if n > exact.MaxBruteN {
		// Past the hard limit the size guard must fire with the typed
		// sentinel instead of starting an n! enumeration that never ends.
		if _, err := exact.Brute(in); !errors.Is(err, exact.ErrTooLarge) {
			ds = append(ds, Discrepancy{
				Check: "oracle-chain", Instance: in.Name, Driver: "exact.Brute",
				Detail: fmt.Sprintf("n=%d beyond MaxBruteN returned %v, want exact.ErrTooLarge", n, err),
			})
		}
	}

	if in.Kind == problem.CDD && in.MachineCount() == 1 && n <= subsetN {
		r, err := exact.SubsetCDD(in)
		if err != nil {
			ds = append(ds, Discrepancy{
				Check: "oracle-chain", Instance: in.Name, Driver: "exact.SubsetCDD",
				Detail: fmt.Sprintf("failed on n=%d: %v", n, err),
			})
		} else {
			eb.Subset = true
			if eb.Brute && r.Cost != bruteCost {
				ds = append(ds, Discrepancy{
					Check: "v-shape-dominance", Instance: in.Name, Driver: "exact.SubsetCDD",
					Detail: fmt.Sprintf("subset optimum %d != brute optimum %d", r.Cost, bruteCost),
				})
			}
			if !eb.Known || r.Cost < eb.Cost {
				eb.Cost, eb.Known = r.Cost, true
			}
		}
	}

	// The pseudo-polynomial DP: applicable to single-machine CDD and to
	// EARLYWORK at any machine count, but only over its provable domain
	// (agreeable ratio orders) and state budget — both declines are typed
	// and expected, so only other errors are discrepancies. Where the DP
	// runs it must agree with any enumeration optimum exactly, and its
	// certificate sequence must re-evaluate to the claimed cost; past the
	// enumeration limits it becomes the proven optimum the drivers race.
	if (in.Kind == problem.CDD && in.MachineCount() == 1) || in.Kind == problem.EARLYWORK {
		r, err := exact.SolveDP(in)
		switch {
		case errors.Is(err, exact.ErrInapplicable) || errors.Is(err, exact.ErrTooLarge):
			// Outside the DP's domain or budget: contract behavior.
		case err != nil:
			ds = append(ds, Discrepancy{
				Check: "oracle-chain", Instance: in.Name, Driver: "exact.SolveDP",
				Detail: fmt.Sprintf("failed on n=%d: %v", n, err),
			})
		default:
			eb.DP = true
			if honest := core.NewEvaluator(in).Cost(r.Seq); honest != r.Cost {
				ds = append(ds, Discrepancy{
					Check: "oracle-chain", Instance: in.Name, Driver: "exact.SolveDP",
					Detail: fmt.Sprintf("certificate cost %d, sequence re-evaluates to %d", r.Cost, honest),
				})
			}
			if eb.Known && r.Cost != eb.Cost {
				ds = append(ds, Discrepancy{
					Check: "exact-dp", Instance: in.Name, Driver: "exact.SolveDP",
					Detail: fmt.Sprintf("DP optimum %d != enumeration optimum %d", r.Cost, eb.Cost),
				})
			}
			if !eb.Known || r.Cost < eb.Cost {
				eb.Cost, eb.Known = r.Cost, true
			}
		}
	}
	return eb, ds
}
