package verify

import (
	"fmt"

	"repro/internal/problem"
	"repro/internal/xrand"
)

// This file holds the seedable instance-generator families of the
// differential-testing subsystem. Each family targets a region of the
// input space where the O(n) linear algorithms (and the engines built on
// them) have historically distinct code paths: the uniform OR-library
// regime, the degenerate zero-penalty landscapes, equal processing times
// (maximal breakpoint ties), the d = 0 and d = ΣP boundaries of the
// restrictive condition, maximal compression capacity, single-job
// instances, and an exhaustive small-size ladder for the exact oracles.
//
// Generators are pure functions of (rng, trial): the same Config.Seed
// replays the same instance stream, so any discrepancy report is
// reproducible from its family name and trial index alone.

// Family is one named instance generator.
type Family struct {
	// Name identifies the family in reports and CLI filters.
	Name string
	// Gen produces the trial-th instance of the family. maxN bounds the
	// job count (families with an intrinsic size, e.g. single-job, ignore
	// it). The returned instance must pass problem.Validate.
	Gen func(rng *xrand.XORWOW, trial, maxN int) *problem.Instance
}

// Families returns every generator family, in reporting order.
func Families() []Family {
	return []Family{
		{Name: "uniform-cdd", Gen: genUniformCDD},
		{Name: "uniform-ucddcp", Gen: genUniformUCDDCP},
		{Name: "zero-penalties", Gen: genZeroPenalties},
		{Name: "equal-p", Gen: genEqualP},
		{Name: "d-zero", Gen: genDZero},
		{Name: "d-boundary", Gen: genDBoundary},
		{Name: "max-compression", Gen: genMaxCompression},
		{Name: "single-job", Gen: genSingleJob},
		{Name: "exhaustive-sizes", Gen: genExhaustiveSizes},
		{Name: "earlywork", Gen: genEarlyWork},
		{Name: "parallel-cdd", Gen: genParallelCDD},
		{Name: "parallel-ucddcp", Gen: genParallelUCDDCP},
		{Name: "agreeable-cdd", Gen: genAgreeableCDD},
	}
}

// FamilyByName returns the named family or an error listing the valid
// names.
func FamilyByName(name string) (Family, error) {
	var names []string
	for _, f := range Families() {
		if f.Name == name {
			return f, nil
		}
		names = append(names, f.Name)
	}
	return Family{}, fmt.Errorf("verify: unknown family %q (want one of %v)", name, names)
}

// size draws a job count in [2, maxN].
func size(rng *xrand.XORWOW, maxN int) int {
	if maxN < 2 {
		maxN = 2
	}
	return 2 + rng.Intn(maxN-1)
}

// mustCDD wraps problem.NewCDD; generator parameters are valid by
// construction, so a failure is a generator bug worth crashing on.
func mustCDD(name string, p, alpha, beta []int, d int64) *problem.Instance {
	in, err := problem.NewCDD(name, p, alpha, beta, d)
	if err != nil {
		panic(fmt.Sprintf("verify: generator built an invalid instance: %v", err))
	}
	return in
}

// mustUCDDCP wraps problem.NewUCDDCP under the same contract.
func mustUCDDCP(name string, p, m, alpha, beta, gamma []int, d int64) *problem.Instance {
	in, err := problem.NewUCDDCP(name, p, m, alpha, beta, gamma, d)
	if err != nil {
		panic(fmt.Sprintf("verify: generator built an invalid instance: %v", err))
	}
	return in
}

// mustEarlyWork wraps problem.NewEarlyWork under the same contract.
func mustEarlyWork(name string, p []int, machines int, d int64) *problem.Instance {
	in, err := problem.NewEarlyWork(name, p, machines, d)
	if err != nil {
		panic(fmt.Sprintf("verify: generator built an invalid instance: %v", err))
	}
	return in
}

// genomeSize draws a job count keeping the genome length n + m − 1 within
// maxN, so the brute oracle (which enumerates genomes) still applies to
// the parallel families.
func genomeSize(rng *xrand.XORWOW, maxN, machines int) int {
	return size(rng, maxN-(machines-1))
}

// genUniformCDD mirrors the OR-library distribution: p ~ U[1,20],
// α ~ U[1,10], β ~ U[1,15], restrictive factor h ∈ {0.2, 0.4, 0.6, 0.8}.
func genUniformCDD(rng *xrand.XORWOW, trial, maxN int) *problem.Instance {
	n := size(rng, maxN)
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
		sum += int64(p[i])
	}
	h := []float64{0.2, 0.4, 0.6, 0.8}[trial%4]
	d := int64(h * float64(sum))
	return mustCDD(fmt.Sprintf("uniform-cdd/t%d/n%d", trial, n), p, alpha, beta, d)
}

// genUniformUCDDCP draws controllable instances with a due date in the
// unrestricted band [ΣP, 1.5·ΣP].
func genUniformUCDDCP(rng *xrand.XORWOW, trial, maxN int) *problem.Instance {
	n := size(rng, maxN)
	p := make([]int, n)
	m := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	gamma := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		lo := (p[i] + 1) / 2
		m[i] = lo + rng.Intn(p[i]-lo+1)
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
		gamma[i] = 1 + rng.Intn(10)
		sum += int64(p[i])
	}
	d := sum + int64(rng.Intn(int(sum/2)+1))
	return mustUCDDCP(fmt.Sprintf("uniform-ucddcp/t%d/n%d", trial, n), p, m, alpha, beta, gamma, d)
}

// genZeroPenalties zeroes the earliness weights, the tardiness weights, or
// both (cycling by trial), exercising the degenerate landscapes where the
// breakpoint walk must not anchor on an absent penalty gradient.
func genZeroPenalties(rng *xrand.XORWOW, trial, maxN int) *problem.Instance {
	n := size(rng, maxN)
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	mode := trial % 3
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		sum += int64(p[i])
		switch mode {
		case 0: // zero α: only tardiness matters
			alpha[i] = 0
			beta[i] = 1 + rng.Intn(15)
		case 1: // zero β: only earliness matters
			alpha[i] = 1 + rng.Intn(10)
			beta[i] = 0
		default: // flat landscape: every sequence costs zero
			alpha[i], beta[i] = 0, 0
		}
	}
	d := int64(rng.Intn(int(sum) + 2))
	return mustCDD(fmt.Sprintf("zero-penalties/t%d/m%d/n%d", trial, mode, n), p, alpha, beta, d)
}

// genEqualP gives every job the same processing time, so every breakpoint
// of the piecewise-linear cost coincides with a completion-time tie.
func genEqualP(rng *xrand.XORWOW, trial, maxN int) *problem.Instance {
	n := size(rng, maxN)
	pv := 1 + rng.Intn(10)
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	for i := 0; i < n; i++ {
		p[i] = pv
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
	}
	sum := int64(n * pv)
	// Land d exactly on a completion-time multiple half the time.
	var d int64
	if trial%2 == 0 {
		d = int64(pv) * int64(rng.Intn(n+1))
	} else {
		d = int64(rng.Intn(int(sum) + 1))
	}
	return mustCDD(fmt.Sprintf("equal-p/t%d/n%d", trial, n), p, alpha, beta, d)
}

// genDZero pins the due date to zero: every job is tardy from the first
// instant, the most restrictive boundary the CDD algorithm accepts.
func genDZero(rng *xrand.XORWOW, trial, maxN int) *problem.Instance {
	n := size(rng, maxN)
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
	}
	return mustCDD(fmt.Sprintf("d-zero/t%d/n%d", trial, n), p, alpha, beta, 0)
}

// genDBoundary straddles the restrictive boundary d = ΣP: cycling through
// d ∈ {ΣP−1, ΣP, ΣP+1}, the three cases where Restrictive() flips and the
// unrestricted dominance properties begin to hold.
func genDBoundary(rng *xrand.XORWOW, trial, maxN int) *problem.Instance {
	n := size(rng, maxN)
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
		sum += int64(p[i])
	}
	d := sum + int64(trial%3) - 1
	if d < 0 {
		d = 0
	}
	return mustCDD(fmt.Sprintf("d-boundary/t%d/n%d", trial, n), p, alpha, beta, d)
}

// genMaxCompression builds UCDDCP instances with M_i = 1 everywhere (the
// maximal compression capacity P−M = P−1) and deliberately small γ, so the
// all-or-nothing compression rule fires on most jobs.
func genMaxCompression(rng *xrand.XORWOW, trial, maxN int) *problem.Instance {
	n := size(rng, maxN)
	p := make([]int, n)
	m := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	gamma := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 2 + rng.Intn(19)
		m[i] = 1
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
		gamma[i] = rng.Intn(4) // often cheaper than any penalty sum
		sum += int64(p[i])
	}
	// Alternate the exact unrestricted boundary d = ΣP with a slack band.
	d := sum
	if trial%2 == 1 {
		d = sum + int64(rng.Intn(int(sum)/2+1))
	}
	return mustUCDDCP(fmt.Sprintf("max-compression/t%d/n%d", trial, n), p, m, alpha, beta, gamma, d)
}

// genSingleJob emits n = 1 instances of both kinds, cycling the due date
// through 0, P and 2P — the smallest inputs every engine must survive.
func genSingleJob(rng *xrand.XORWOW, trial, _ int) *problem.Instance {
	p := 1 + rng.Intn(20)
	alpha := 1 + rng.Intn(10)
	beta := 1 + rng.Intn(15)
	switch trial % 4 {
	case 0:
		return mustCDD(fmt.Sprintf("single-job/t%d/cdd-d0", trial), []int{p}, []int{alpha}, []int{beta}, 0)
	case 1:
		return mustCDD(fmt.Sprintf("single-job/t%d/cdd-dp", trial), []int{p}, []int{alpha}, []int{beta}, int64(p))
	case 2:
		return mustCDD(fmt.Sprintf("single-job/t%d/cdd-d2p", trial), []int{p}, []int{alpha}, []int{beta}, int64(2*p))
	default:
		m := 1 + rng.Intn(p)
		gamma := rng.Intn(10)
		return mustUCDDCP(fmt.Sprintf("single-job/t%d/ucddcp", trial), []int{p}, []int{m}, []int{alpha}, []int{beta}, []int{gamma}, int64(p+rng.Intn(p+1)))
	}
}

// genEarlyWork draws early-work instances cycling the machine count
// through {1, 2, 3} and the restrictive factor through the OR-library h
// set, with the per-machine due date d = max(1, ⌊h·Σp/m⌋).
func genEarlyWork(rng *xrand.XORWOW, trial, maxN int) *problem.Instance {
	m := 1 + trial%3
	n := genomeSize(rng, maxN, m)
	p := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		sum += int64(p[i])
	}
	h := []float64{0.2, 0.4, 0.6, 0.8}[(trial/3)%4]
	d := int64(h * float64(sum) / float64(m))
	if d < 1 {
		d = 1
	}
	return mustEarlyWork(fmt.Sprintf("earlywork/t%d/m%d/n%d", trial, m, n), p, m, d)
}

// genParallelCDD draws OR-library-style CDD data on 2 or 3 identical
// machines, with the restrictive factor applied to the per-machine load
// Σp/m. It exercises the delimiter-genome path of every evaluator with
// the paper's own objective.
func genParallelCDD(rng *xrand.XORWOW, trial, maxN int) *problem.Instance {
	m := 2 + trial%2
	n := genomeSize(rng, maxN, m)
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
		sum += int64(p[i])
	}
	h := []float64{0.2, 0.4, 0.6, 0.8}[(trial/2)%4]
	in := mustCDD(fmt.Sprintf("parallel-cdd/t%d/m%d/n%d", trial, m, n), p, alpha, beta, int64(h*float64(sum)/float64(m)))
	in.Machines = m
	return in
}

// genParallelUCDDCP draws controllable instances on 2 or 3 machines with
// the due date in the unrestricted band [Σp, 1.5·Σp] — d ≥ Σp keeps every
// possible machine segment unrestricted regardless of the assignment, the
// precondition of the per-segment compression optimizer.
func genParallelUCDDCP(rng *xrand.XORWOW, trial, maxN int) *problem.Instance {
	m := 2 + trial%2
	n := genomeSize(rng, maxN, m)
	p := make([]int, n)
	mm := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	gamma := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		lo := (p[i] + 1) / 2
		mm[i] = lo + rng.Intn(p[i]-lo+1)
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
		gamma[i] = 1 + rng.Intn(10)
		sum += int64(p[i])
	}
	d := sum + int64(rng.Intn(int(sum/2)+1))
	in := mustUCDDCP(fmt.Sprintf("parallel-ucddcp/t%d/m%d/n%d", trial, m, n), p, mm, alpha, beta, gamma, d)
	in.Machines = m
	return in
}

// genExhaustiveSizes ladders n through 1..12 (cycling by trial) on
// unrestricted CDD data with strictly positive penalties, the exact domain
// where both exact oracles (brute enumeration and the V-shape subset scan)
// apply, so every size up to the oracle limits is hit deterministically.
func genExhaustiveSizes(rng *xrand.XORWOW, trial, _ int) *problem.Instance {
	n := 1 + trial%12
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(10)
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(10)
		sum += int64(p[i])
	}
	d := sum + int64(rng.Intn(int(sum)+1))
	return mustCDD(fmt.Sprintf("exhaustive-sizes/t%d/n%d", trial, n), p, alpha, beta, d)
}

// genAgreeableCDD draws small instances from the agreeable domain the
// exact-dp oracle proves optimal (coupled weight regimes, both due-date
// bands), so the main run's oracle chain cross-checks the DP against
// brute enumeration and the subset scan, and the drivers race a DP
// certificate even past the enumeration limits. The large-n regime of the
// same domain lives in the dedicated DP leg (dpleg.go).
func genAgreeableCDD(rng *xrand.XORWOW, trial, maxN int) *problem.Instance {
	n := size(rng, maxN)
	restrictive := trial%2 == 1
	name := fmt.Sprintf("agreeable-cdd/t%d/n%d", trial, n)
	return dpAgreeableCDD(rng, name, n, trial, restrictive)
}
