package verify

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/problem"
	"repro/internal/xrand"
)

// This file is the exact-dp leg of the verification run: differential
// testing of the pseudo-polynomial DP at sizes the enumeration oracles
// cannot reach. Per trial it generates
//
//   - one large unrestricted agreeable CDD instance at n ∈ [200, DPMaxN]
//     (the paper-protocol regime; skipped when a machine override forces
//     m > 1, since the CDD DP is single-machine),
//   - one EARLYWORK knapsack with a small due date (so the capped-load
//     state space stays far below the DP budget), and
//   - every second trial, a small restrictive agreeable CDD whose
//     straddler DP is cross-checked against brute-force enumeration,
//
// then requires the DP to solve each one (a typed decline here is a
// discrepancy — the instances are generated inside its provable domain),
// checks its certificate sequence for feasibility and honesty, and races
// every registered driver against the certified optimum: no driver may
// ever report a cost below it.

// dpStream tags the DP leg's RNG streams, far above the family-indexed
// streams of the main run (fi<<32 | trial), so adding families never
// perturbs the DP instances.
const dpStream = uint64(1) << 48

// runDPLeg executes cfg.DPTrials rounds of the exact-dp leg. A cancelled
// ctx stops between instances, mirroring Run.
func (r *Report) runDPLeg(ctx context.Context, cfg Config, drivers []Driver) error {
	for t := 0; t < cfg.DPTrials; t++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("verify: cancelled at exact-dp trial %d: %w", t, err)
		}
		rng := xrand.NewStream(cfg.Seed, dpStream|uint64(t))

		// Large unrestricted CDD: the tentpole regime. The anchored DP's
		// state count is bounded by n·d, so n ≤ DPMaxN with p ≤ 20 stays
		// well under the default state budget.
		if cfg.Machines <= 1 {
			n := 200 + rng.Intn(cfg.DPMaxN-200+1)
			name := fmt.Sprintf("dp-large-cdd/t%d/n%d", t, n)
			in := dpAgreeableCDD(rng, name, n, t, false)
			r.checkDPInstance(ctx, cfg, in, drivers)
		}

		// EARLYWORK knapsack. The machine count follows a positive
		// Machines override, else cycles {1, 2, 3}; the small due date
		// keeps the sorted capped-load state space tiny at any m.
		m := cfg.Machines
		if m <= 0 {
			m = 1 + t%3
		}
		ewn := 24 + rng.Intn(17)
		p := make([]int, ewn)
		for i := range p {
			p[i] = 1 + rng.Intn(6)
		}
		d := int64(5 + rng.Intn(21))
		ew := mustEarlyWork(fmt.Sprintf("dp-earlywork/t%d/n%d/m%d", t, ewn, m), p, m, d)
		r.checkDPInstance(ctx, cfg, ew, drivers)

		// Small restrictive CDD: the straddler DP against brute force.
		if t%2 == 0 {
			sn := 8 + rng.Intn(2)
			name := fmt.Sprintf("dp-restrictive-cdd/t%d/n%d", t, sn)
			small := dpAgreeableCDD(rng, name, sn, t, true)
			if cfg.Machines > 1 {
				// The CDD DP is single-machine; under a machine override
				// the small instance would only exercise the decline path
				// already covered by the driver-skip check.
				continue
			}
			r.checkDPInstance(ctx, cfg, small, drivers)
		}
	}
	return nil
}

// checkDPInstance runs the DP on one in-domain instance, verifies the
// certificate, brute-checks it where enumeration applies, and races every
// driver against it.
func (r *Report) checkDPInstance(ctx context.Context, cfg Config, in *problem.Instance, drivers []Driver) {
	r.DPInstances++
	if err := in.Validate(); err != nil {
		r.add(Discrepancy{
			Check: "generator", Family: "exact-dp", Instance: in.Name,
			Detail: fmt.Sprintf("generated instance invalid: %v", err),
		})
		return
	}

	// The DP must solve: these instances are constructed inside its
	// provable domain and under its state budget, so even the typed
	// declines are failures here.
	r.Checks["dp-solve"]++
	res, err := exact.SolveDPContext(ctx, in, exact.DPConfig{})
	if err != nil {
		r.add(Discrepancy{
			Check: "dp-solve", Family: "exact-dp", Instance: in.Name, Driver: "exact.SolveDP",
			Detail: fmt.Sprintf("DP declined an in-domain instance: %v", err),
		})
		return
	}
	n := in.GenomeLen()
	if len(res.Seq) != n || !problem.IsPermutation(res.Seq) {
		r.add(Discrepancy{
			Check: "dp-solve", Family: "exact-dp", Instance: in.Name, Driver: "exact.SolveDP",
			Detail: fmt.Sprintf("certificate genome %v is not a permutation of 0..%d", res.Seq, n-1),
		})
		return
	}
	if honest := core.NewEvaluator(in).Cost(res.Seq); honest != res.Cost {
		r.add(Discrepancy{
			Check: "dp-solve", Family: "exact-dp", Instance: in.Name, Driver: "exact.SolveDP",
			Detail: fmt.Sprintf("certificate cost %d, sequence re-evaluates to %d", res.Cost, honest),
		})
		return
	}

	// Brute cross-check where enumeration is feasible (the small
	// restrictive instances): DP and brute force must agree exactly.
	if n <= exact.MaxBruteN {
		r.Checks["dp-oracle"]++
		br, err := exact.Brute(in)
		if err != nil {
			r.add(Discrepancy{
				Check: "dp-oracle", Family: "exact-dp", Instance: in.Name, Driver: "exact.Brute",
				Detail: fmt.Sprintf("failed on n=%d: %v", n, err),
			})
		} else if br.Cost != res.Cost {
			r.add(Discrepancy{
				Check: "dp-oracle", Family: "exact-dp", Instance: in.Name, Driver: "exact.SolveDP",
				Detail: fmt.Sprintf("DP optimum %d != brute optimum %d", res.Cost, br.Cost),
			})
			return // the certificate is suspect; don't race drivers on it
		}
	}

	// Race every registered driver against the certificate: feasibility,
	// honesty, and never-beats-exact, exactly as in the main run's layer 5
	// but with the DP (not enumeration) as the proven optimum.
	for _, drv := range drivers {
		r.Checks["dp-driver"]++
		st := r.DriverStats[drv.Name]
		dres, err := drv.Solve(ctx, in, cfg.Seed+uint64(st.Runs)+1)
		if err != nil {
			if errors.Is(err, exact.ErrInapplicable) || errors.Is(err, exact.ErrTooLarge) {
				r.Checks["driver-skip"]++
				continue
			}
			r.add(Discrepancy{
				Check: "driver-error", Family: "exact-dp", Instance: in.Name, Driver: drv.Name,
				Detail: fmt.Sprintf("solve failed: %v", err),
			})
			continue
		}
		st.Runs++
		if len(dres.BestSeq) != n || !problem.IsPermutation(dres.BestSeq) {
			r.add(Discrepancy{
				Check: "driver-feasibility", Family: "exact-dp", Instance: in.Name, Driver: drv.Name,
				Detail: fmt.Sprintf("best genome %v is not a permutation of 0..%d", dres.BestSeq, n-1),
			})
			continue
		}
		if honest := core.NewEvaluator(in).Cost(dres.BestSeq); honest != dres.BestCost {
			r.add(Discrepancy{
				Check: "driver-honest-cost", Family: "exact-dp", Instance: in.Name, Driver: drv.Name,
				Detail: fmt.Sprintf("reported cost %d, sequence re-evaluates to %d", dres.BestCost, honest),
			})
		}
		st.OptimumKnown++
		if dres.BestCost < res.Cost {
			r.add(Discrepancy{
				Check: "driver-beats-exact", Family: "exact-dp", Instance: in.Name, Driver: drv.Name,
				Detail: fmt.Sprintf("cost %d beats the DP certificate %d — solver or DP bug", dres.BestCost, res.Cost),
			})
		} else if dres.BestCost == res.Cost {
			st.OptimumHits++
		} else if gap := core.PercentDeviation(dres.BestCost, res.Cost); gap > st.WorstGapPct {
			st.WorstGapPct = gap
		}
	}
}

// dpAgreeableCDD draws a CDD instance from the agreeable domain — one
// ratio order ascending in both P/α and P/β, the structure the DP's
// exchange argument needs. The mode cycles through the three coupled
// weight regimes (common-rate, symmetric, proportional), occasionally
// zeroing one job's weights — a (0, 0) job sorts last on both ratios, so
// agreeableness survives.
func dpAgreeableCDD(rng *xrand.XORWOW, name string, n, mode int, restrictive bool) *problem.Instance {
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	switch mode % 3 {
	case 0: // common rate: both weights proportional to processing time
		ka, kb := 1+rng.Intn(5), 1+rng.Intn(5)
		for i := range p {
			p[i] = 1 + rng.Intn(20)
			alpha[i] = ka * p[i]
			beta[i] = kb * p[i]
		}
	case 1: // symmetric: β = α
		for i := range p {
			p[i] = 1 + rng.Intn(20)
			alpha[i] = 1 + rng.Intn(10)
			beta[i] = alpha[i]
		}
	default: // proportional: β = k·α
		k := 1 + rng.Intn(3)
		for i := range p {
			p[i] = 1 + rng.Intn(20)
			alpha[i] = 1 + rng.Intn(10)
			beta[i] = k * alpha[i]
		}
	}
	if n > 2 && rng.Intn(4) == 0 {
		j := rng.Intn(n)
		alpha[j], beta[j] = 0, 0
	}
	var sum int64
	for _, v := range p {
		sum += int64(v)
	}
	var d int64
	if restrictive {
		h := int64(2 + 2*rng.Intn(4)) // restrictive factor h ∈ {0.2, 0.4, 0.6, 0.8}
		d = sum * h / 10
		if d < 1 {
			d = 1
		}
	} else {
		d = sum + int64(rng.Intn(40))
	}
	return mustCDD(name, p, alpha, beta, d)
}
