package verify

import (
	"context"
	"errors"
	"fmt"

	duedate "repro"
	"repro/internal/auto"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/problem"
	"repro/internal/xrand"
)

// This file is the AUTO leg of the verification run: the self-tuning
// portfolio meta-driver raced against every static pairing under an
// equal iteration budget and the SAME seed. In model mode (no deadline)
// the AUTO dispatch is bit-identical to one of the static pairings, so
// the leg's core assertion is structural:
//
//   - auto-vs-static: AUTO's cost never exceeds the WORST static
//     metaheuristic pairing's cost on the same instance, seed and
//     budget. A violation means the dispatch mangled the caller's
//     options (seed, geometry or iteration passthrough broke).
//   - auto-dp-certificate: on instances inside the calibration DP gates
//     that the exact layer actually solves, AUTO must return the proven
//     optimum with Result.Optimal set — the "free certificates on
//     DP-applicable smalls" contract.
//   - auto-honest-cost / auto-feasible: the usual driver honesty layer
//     on AUTO's own result.
//
// The per-trial seed is shared by AUTO and every static run (unlike the
// main chain, which deliberately diverges per-driver seeds), because the
// equal-budget comparison is only meaningful on a common trajectory.

// autoStream tags the AUTO leg's RNG streams, above dpStream so neither
// leg's instances perturb the other's.
const autoStream = uint64(1) << 49

// runAutoLeg executes cfg.AutoTrials rounds of the AUTO leg. A cancelled
// ctx stops between instances, mirroring Run.
func (r *Report) runAutoLeg(ctx context.Context, cfg Config) error {
	b := Budget{}.withDefaults()
	for t := 0; t < cfg.AutoTrials; t++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("verify: cancelled at auto trial %d: %w", t, err)
		}
		rng := xrand.NewStream(cfg.Seed, autoStream|uint64(t))
		seed := cfg.Seed + uint64(t)*7919 + 1
		for _, in := range autoLegInstances(rng, cfg, t) {
			if cfg.Machines > 0 && in.MachineCount() != cfg.Machines {
				in.Machines = cfg.Machines
				in.Name = fmt.Sprintf("%s/m%d", in.Name, cfg.Machines)
			}
			if err := in.Validate(); err != nil {
				r.add(Discrepancy{
					Check: "generator", Instance: in.Name,
					Detail: fmt.Sprintf("auto-leg instance invalid: %v", err),
				})
				continue
			}
			r.AutoInstances++
			r.checkAutoInstance(ctx, b, in, seed)
		}
	}
	return nil
}

// autoLegInstances generates the trial's instance mix: a DP-eligible
// agreeable small (certificate check), a general-weight CDD and a UCDDCP
// (pure dispatch checks), and an EARLYWORK knapsack (DP-eligible at any
// machine count).
func autoLegInstances(rng *xrand.XORWOW, cfg Config, t int) []*problem.Instance {
	out := []*problem.Instance{
		dpAgreeableCDD(rng, fmt.Sprintf("auto-agreeable-cdd/t%d", t), 12+rng.Intn(9), t, false),
		autoGeneralCDD(rng, fmt.Sprintf("auto-general-cdd/t%d", t)),
		autoUCDDCP(rng, fmt.Sprintf("auto-ucddcp/t%d", t)),
	}
	m := cfg.Machines
	if m <= 0 {
		m = 1 + t%3
	}
	n := 10 + rng.Intn(7)
	p := make([]int, n)
	for i := range p {
		p[i] = 1 + rng.Intn(6)
	}
	out = append(out, mustEarlyWork(fmt.Sprintf("auto-earlywork/t%d/m%d", t, m), p, m, int64(4+rng.Intn(15))))
	return out
}

// autoGeneralCDD draws asymmetric weights, so the DP declines and the
// leg exercises the calibration-model fallback path.
func autoGeneralCDD(rng *xrand.XORWOW, name string) *problem.Instance {
	n := 8 + rng.Intn(5)
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := range p {
		p[i] = 1 + rng.Intn(15)
		alpha[i] = 1 + rng.Intn(9)
		beta[i] = 1 + rng.Intn(9)
		sum += int64(p[i])
	}
	return mustCDD(name, p, alpha, beta, sum*6/10+1)
}

// autoUCDDCP draws an unrestricted compressible instance (UCDDCP is
// outside every DP gate, so AUTO must model-route it).
func autoUCDDCP(rng *xrand.XORWOW, name string) *problem.Instance {
	n := 6 + rng.Intn(5)
	p := make([]int, n)
	m := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	gamma := make([]int, n)
	var sum int64
	for i := range p {
		p[i] = 2 + rng.Intn(12)
		m[i] = 1 + rng.Intn(p[i])
		alpha[i] = 1 + rng.Intn(8)
		beta[i] = 1 + rng.Intn(8)
		gamma[i] = 1 + rng.Intn(8)
		sum += int64(p[i])
	}
	in, err := problem.NewUCDDCP(name, p, m, alpha, beta, gamma, sum+int64(rng.Intn(20)))
	if err != nil {
		panic(fmt.Sprintf("verify: auto-leg UCDDCP generator produced an invalid instance: %v", err))
	}
	return in
}

// checkAutoInstance runs AUTO and every static metaheuristic pairing on
// one instance with identical options, then applies the leg's checks.
func (r *Report) checkAutoInstance(ctx context.Context, b Budget, in *problem.Instance, seed uint64) {
	base := duedate.Options{
		Iterations:  b.Iterations,
		Grid:        b.Grid,
		Block:       b.Block,
		TempSamples: b.TempSamples,
		Seed:        seed,
	}

	ao := base
	ao.Algorithm = duedate.Auto
	r.Checks["auto-solve"]++
	ares, err := duedate.SolveContext(ctx, in, ao)
	if err != nil {
		r.add(Discrepancy{
			Check: "auto-error", Instance: in.Name, Driver: "AUTO/cpu-parallel",
			Detail: fmt.Sprintf("solve failed: %v", err),
		})
		return
	}
	if len(ares.BestSeq) != in.GenomeLen() || !problem.IsPermutation(ares.BestSeq) {
		r.add(Discrepancy{
			Check: "auto-feasible", Instance: in.Name, Driver: "AUTO/cpu-parallel",
			Detail: fmt.Sprintf("best genome %v is not a permutation of 0..%d", ares.BestSeq, in.GenomeLen()-1),
		})
		return
	}
	if honest := core.NewEvaluator(in).Cost(ares.BestSeq); honest != ares.BestCost {
		r.add(Discrepancy{
			Check: "auto-honest-cost", Instance: in.Name, Driver: "AUTO/cpu-parallel",
			Detail: fmt.Sprintf("reported cost %d, sequence re-evaluates to %d", ares.BestCost, honest),
		})
	}

	// Equal-budget, equal-seed statics. EXACT-DP is excluded: it either
	// proves the optimum (no "worst" to lose to) or declines.
	worst, worstName := int64(-1), ""
	for _, p := range duedate.Pairings() {
		if p.Algorithm == duedate.Auto || p.Algorithm == duedate.ExactDP {
			continue
		}
		o := base
		o.Algorithm, o.Engine = p.Algorithm, p.Engine
		res, serr := duedate.SolveContext(ctx, in, o)
		if serr != nil {
			r.add(Discrepancy{
				Check: "auto-static-error", Instance: in.Name, Driver: p.Algorithm.String() + "/" + p.Engine.String(),
				Detail: fmt.Sprintf("static comparison solve failed: %v", serr),
			})
			continue
		}
		if res.BestCost > worst {
			worst, worstName = res.BestCost, p.Algorithm.String()+"/"+p.Engine.String()
		}
	}
	if worst >= 0 {
		r.Checks["auto-vs-static"]++
		if ares.BestCost > worst {
			r.add(Discrepancy{
				Check: "auto-vs-static", Instance: in.Name, Driver: "AUTO/cpu-parallel",
				Detail: fmt.Sprintf("AUTO cost %d loses to the worst static pairing %s at %d under an equal budget and seed",
					ares.BestCost, worstName, worst),
			})
		}
	}

	// Free-certificate contract: when the calibration gates route the
	// shape to the DP and the DP proves an optimum, AUTO must have
	// returned exactly that optimum with the certificate set.
	dec := auto.Default().Pick(in.Kind, in.N(), in.MachineCount())
	if !dec.AttemptDP {
		return
	}
	dp, dpErr := exact.SolveDP(in)
	if dpErr != nil {
		if errors.Is(dpErr, exact.ErrInapplicable) || errors.Is(dpErr, exact.ErrTooLarge) {
			return // decline path: AUTO fell back, nothing to certify
		}
		r.add(Discrepancy{
			Check: "auto-dp-certificate", Instance: in.Name, Driver: "EXACT-DP",
			Detail: fmt.Sprintf("DP oracle failed unexpectedly: %v", dpErr),
		})
		return
	}
	r.Checks["auto-dp-certificate"]++
	if !ares.Optimal || ares.BestCost != dp.Cost {
		r.add(Discrepancy{
			Check: "auto-dp-certificate", Instance: in.Name, Driver: "AUTO/cpu-parallel",
			Detail: fmt.Sprintf("DP proves optimum %d but AUTO returned cost %d (optimal=%t) — the DP route was skipped or mangled",
				dp.Cost, ares.BestCost, ares.Optimal),
		})
	}
}
