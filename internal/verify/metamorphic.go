package verify

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/problem"
	"repro/internal/xrand"
)

// Metamorphic properties: transformations of an instance with a provable
// effect on the objective, checked against the actual evaluators. Unlike
// the oracle chain these need no ground truth — the relation between the
// original and the transformed evaluation is the oracle.
//
//   - relabel-invariance: renaming job ids (and mapping the sequence
//     through the renaming) cannot change any sequence's cost.
//   - penalty-scaling: multiplying every α, β, γ by k multiplies every
//     sequence's optimal cost by exactly k (the timing/compression
//     decision space is unchanged; the objective is linear in the
//     penalty weights).
//   - compression-monotone: allowing compression can only help — the
//     UCDDCP optimum of a sequence is ≤ the CDD optimum of the same
//     sequence with compression ignored; and a zero-capacity (M = P)
//     controllable instance evaluates exactly like its CDD projection.
//   - machine-relabel: machines are identical, so swapping two machine
//     segments of a delimiter genome cannot change its cost.
//   - single-machine-reduction: concentrating every job of a parallel
//     instance on machine 0 must evaluate bit-identically to the same
//     job order on the Machines = 1 clone — the proof that the
//     generalized path collapses onto the paper's single-machine
//     algorithms.
//
// The V-shape dominance property around d (every unrestricted CDD
// instance has a V-shaped optimal sequence) is checked in the oracle
// chain as brute == subset, where the subset oracle enumerates only
// V-shaped candidates; idle-time freeness and the compression bounds
// 0 ≤ X ≤ P−M are asserted on every materialized schedule by
// scheduleCost in the sequence-agreement chain.

// CheckMetamorphic runs every applicable metamorphic property on the
// instance with sequences drawn from rng and returns the discrepancies.
func CheckMetamorphic(in *problem.Instance, rng *xrand.XORWOW, samples int) []Discrepancy {
	var ds []Discrepancy
	eval := core.NewEvaluator(in)
	seq := problem.IdentitySequence(in.GenomeLen())
	for s := 0; s < samples; s++ {
		shuffle(rng, seq)
		base := eval.Cost(seq)
		ds = append(ds, checkRelabel(in, rng, seq, base)...)
		if in.Kind != problem.EARLYWORK {
			// EARLYWORK carries no penalty weights to scale.
			ds = append(ds, checkScaling(in, rng, seq, base)...)
		}
		if in.Kind == problem.UCDDCP {
			ds = append(ds, checkCompressionMonotone(in, seq, base)...)
		}
		if in.MachineCount() > 1 {
			ds = append(ds, checkMachineRelabel(in, rng, seq, base)...)
			ds = append(ds, checkSingleMachineReduction(in, seq)...)
		}
	}
	return ds
}

// shuffle is a Fisher–Yates permutation using the subsystem's rng.
func shuffle(rng *xrand.XORWOW, seq []int) {
	for i := len(seq) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		seq[i], seq[j] = seq[j], seq[i]
	}
}

// checkRelabel renames job ids through a random permutation π (job i of
// the original becomes job π(i) of the relabeled instance) and asserts
// cost invariance of the mapped genome (separator values pass through
// unmapped — they carry position, not identity).
func checkRelabel(in *problem.Instance, rng *xrand.XORWOW, seq []int, base int64) []Discrepancy {
	n := in.N()
	pi := problem.IdentitySequence(n)
	shuffle(rng, pi)
	re := in.Clone()
	re.Name = in.Name + "/relabeled"
	for i, j := range in.Jobs {
		re.Jobs[pi[i]] = j
	}
	mapped := make([]int, len(seq))
	for pos, v := range seq {
		if v < n {
			mapped[pos] = pi[v]
		} else {
			mapped[pos] = v
		}
	}
	if got := core.NewEvaluator(re).Cost(mapped); got != base {
		return []Discrepancy{{
			Check: "relabel-invariance", Instance: in.Name,
			Detail: fmt.Sprintf("relabeled cost %d != original %d (seq %v, π %v)", got, base, seq, pi),
		}}
	}
	return nil
}

// checkScaling multiplies the penalty weights by k and asserts the cost
// scales by exactly k.
func checkScaling(in *problem.Instance, rng *xrand.XORWOW, seq []int, base int64) []Discrepancy {
	k := 2 + rng.Intn(4) // k ∈ [2,5]; instance data is small, no overflow
	sc := in.Clone()
	sc.Name = fmt.Sprintf("%s/x%d", in.Name, k)
	for i := range sc.Jobs {
		sc.Jobs[i].Alpha *= k
		sc.Jobs[i].Beta *= k
		sc.Jobs[i].Gamma *= k
	}
	if got := core.NewEvaluator(sc).Cost(seq); got != int64(k)*base {
		return []Discrepancy{{
			Check: "penalty-scaling", Instance: in.Name,
			Detail: fmt.Sprintf("×%d scaled cost %d != %d·%d (seq %v)", k, got, k, base, seq),
		}}
	}
	return nil
}

// checkCompressionMonotone asserts that compression never hurts (UCDDCP
// cost ≤ CDD cost of the uncompressed projection on the same sequence)
// and that zero compression capacity collapses the controllable problem
// onto plain CDD exactly.
func checkCompressionMonotone(in *problem.Instance, seq []int, base int64) []Discrepancy {
	n := in.N()
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	for i, j := range in.Jobs {
		p[i], alpha[i], beta[i] = j.P, j.Alpha, j.Beta
	}
	proj, err := problem.NewCDD(in.Name+"/cdd-projection", p, alpha, beta, in.D)
	if err != nil {
		return []Discrepancy{{
			Check: "compression-monotone", Instance: in.Name,
			Detail: fmt.Sprintf("CDD projection rejected: %v", err),
		}}
	}
	// The projection keeps the machine count: compression never hurts on
	// each machine independently, so the property holds per genome too.
	proj.Machines = in.Machines
	cddCost := core.NewEvaluator(proj).Cost(seq)
	var ds []Discrepancy
	if base > cddCost {
		ds = append(ds, Discrepancy{
			Check: "compression-monotone", Instance: in.Name,
			Detail: fmt.Sprintf("UCDDCP cost %d > CDD cost %d of the uncompressed projection (seq %v)", base, cddCost, seq),
		})
	}
	// Zero capacity: force M = P on a clone; the evaluation must equal the
	// CDD projection bit for bit.
	zc := in.Clone()
	zc.Name = in.Name + "/zero-capacity"
	for i := range zc.Jobs {
		zc.Jobs[i].M = zc.Jobs[i].P
	}
	if got := core.NewEvaluator(zc).Cost(seq); got != cddCost {
		ds = append(ds, Discrepancy{
			Check: "compression-monotone", Instance: in.Name,
			Detail: fmt.Sprintf("zero-capacity UCDDCP cost %d != CDD cost %d (seq %v)", got, cddCost, seq),
		})
	}
	return ds
}

// checkMachineRelabel swaps two random machine segments of the genome and
// asserts cost invariance — the machines are identical, so the objective
// cannot depend on which machine index a segment lands on.
func checkMachineRelabel(in *problem.Instance, rng *xrand.XORWOW, seq []int, base int64) []Discrepancy {
	segs := in.SplitGenome(seq)
	m := len(segs)
	a := rng.Intn(m)
	b := rng.Intn(m - 1)
	if b >= a {
		b++
	}
	segs[a], segs[b] = segs[b], segs[a]
	swapped, err := in.EncodeGenome(segs)
	if err != nil {
		return []Discrepancy{{
			Check: "machine-relabel", Instance: in.Name,
			Detail: fmt.Sprintf("re-encoding swapped segments failed: %v", err),
		}}
	}
	if got := core.NewEvaluator(in).Cost(swapped); got != base {
		return []Discrepancy{{
			Check: "machine-relabel", Instance: in.Name,
			Detail: fmt.Sprintf("segment-swapped cost %d != original %d (genome %v, swapped %d<->%d)", got, base, seq, a, b),
		}}
	}
	return nil
}

// checkSingleMachineReduction concentrates every job on machine 0 (all
// separators trailing) and asserts the cost bit-matches the same job
// order evaluated on the Machines = 1 clone through the paper's
// single-machine algorithms. Empty machines contribute zero, so the two
// must agree exactly.
func checkSingleMachineReduction(in *problem.Instance, seq []int) []Discrepancy {
	n := in.N()
	order := make([]int, 0, n)
	for _, v := range seq {
		if v < n {
			order = append(order, v)
		}
	}
	genome := make([]int, 0, in.GenomeLen())
	genome = append(genome, order...)
	for sep := n; sep < in.GenomeLen(); sep++ {
		genome = append(genome, sep)
	}
	concentrated := core.NewEvaluator(in).Cost(genome)
	single := in.Clone()
	single.Name = in.Name + "/m1"
	single.Machines = 1
	want := core.NewEvaluator(single).Cost(order)
	if concentrated != want {
		return []Discrepancy{{
			Check: "single-machine-reduction", Instance: in.Name,
			Detail: fmt.Sprintf("all-on-machine-0 genome costs %d, single-machine path costs %d (order %v)", concentrated, want, order),
		}}
	}
	return nil
}
