// Package dpso implements the Discrete Particle Swarm Optimization of the
// paper (Algorithm 2), after Pan, Tasgetiren and Liang's DPSO for no-wait
// flowshop scheduling. Particle positions are job permutations; the update
// rule of Equation (3) composes three probabilistic operators:
//
//	p(t+1) = c2 ⊕ F3( c1 ⊕ F2( w ⊕ F1(p(t)), pbest ), gbest )
//
// where F1 is a random swap (the "velocity"), F2 a one-point order
// crossover with the particle's own best (cognition), and F3 a two-point
// order crossover with the swarm's best (social component). Each operator
// fires with its probability, otherwise passes its input through.
//
// The paper does not publish w, c1, c2; DefaultConfig documents the values
// used here.
package dpso

import (
	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/xrand"
)

// DefaultConfig returns the DPSO parameters used throughout this
// repository: Iterations matching the paper's SA budget and operator
// probabilities in the customary Pan-style range. The paper does not
// publish w, c1 and c2; w = 0.5 is calibrated so that the asynchronous
// GPU ensemble reproduces the paper's reported behaviour (DPSO
// competitive with SA up to ~50 jobs, degrading beyond — see
// EXPERIMENTS.md for the sensitivity of this choice).
func DefaultConfig() Config {
	return Config{
		Iterations: 1000,
		Swarm:      64,
		W:          0.5,
		C1:         0.8,
		C2:         0.8,
	}
}

// Config are the DPSO parameters.
type Config struct {
	// Iterations is the number of swarm generations.
	Iterations int
	// Swarm is the particle count for the serial solver (the parallel
	// ensemble supplies one particle per simulated thread instead).
	Swarm int
	// W is the probability of the swap "velocity" operator F1.
	W float64
	// C1 is the probability of the cognition crossover F2 (with pbest).
	C1 float64
	// C2 is the probability of the social crossover F3 (with gbest).
	C2 float64
}

// Normalized returns the config with unset fields defaulted: non-positive
// Iterations/Swarm, probabilities outside [0,1], and the all-zero
// probability triple (i.e. the zero value of Config, whose particles
// could never move) take their DefaultConfig values. An individual zero
// probability among non-zero ones is honored and disables that operator.
func (c Config) Normalized() Config {
	d := DefaultConfig()
	if c.Iterations <= 0 {
		c.Iterations = d.Iterations
	}
	if c.Swarm <= 0 {
		c.Swarm = d.Swarm
	}
	if c.W == 0 && c.C1 == 0 && c.C2 == 0 {
		c.W, c.C1, c.C2 = d.W, d.C1, d.C2
	}
	if c.W < 0 || c.W > 1 {
		c.W = d.W
	}
	if c.C1 < 0 || c.C1 > 1 {
		c.C1 = d.C1
	}
	if c.C2 < 0 || c.C2 > 1 {
		c.C2 = d.C2
	}
	return c
}

// Particle is one swarm member. Particles own their scratch, so distinct
// particles may be updated concurrently (each against its own evaluator).
type Particle struct {
	cfg Config
	rng *xrand.XORWOW
	ops *perm.Ops

	pos       []int
	posCost   int64
	pbest     []int
	pbestCost int64

	buf1, buf2 []int
}

// NewParticle creates a particle with a uniformly random position,
// evaluated with eval.
func NewParticle(cfg Config, eval core.Evaluator, rng *xrand.XORWOW) *Particle {
	n := eval.Instance().GenomeLen()
	p := &Particle{
		cfg:   cfg.Normalized(),
		rng:   rng,
		ops:   perm.NewOps(n),
		pos:   perm.Random(rng, n),
		pbest: make([]int, n),
		buf1:  make([]int, n),
		buf2:  make([]int, n),
	}
	p.posCost = eval.Cost(p.pos)
	copy(p.pbest, p.pos)
	p.pbestCost = p.posCost
	return p
}

// Position returns the particle's current sequence (borrowed) and cost.
func (p *Particle) Position() ([]int, int64) { return p.pos, p.posCost }

// Best returns the particle's personal best (borrowed) and cost.
func (p *Particle) Best() ([]int, int64) { return p.pbest, p.pbestCost }

// Update applies Equation (3) against the given swarm best and evaluates
// the new position, refreshing the personal best. It returns the new
// position's cost.
func (p *Particle) Update(gbest []int, eval core.Evaluator) int64 {
	p.Move(gbest)
	return p.Adopt(eval.Cost(p.pos))
}

// Move applies the three operators of Equation (3) against the given
// swarm best and installs the resulting position, returning it
// (borrowed) without evaluating. Callers batch-score the positions of
// many particles in one pass and feed each cost back through Adopt; the
// split consumes the RNG stream exactly as Update does, so trajectories
// are unchanged.
func (p *Particle) Move(gbest []int) []int {
	// Velocity: λ = w ⊕ F1(pos).
	copy(p.buf1, p.pos)
	if p.rng.Float64() < p.cfg.W {
		perm.Swap(p.rng, p.buf1)
	}
	// Cognition: δ = c1 ⊕ F2(λ, pbest).
	next := p.buf1
	inBuf1 := true
	if p.rng.Float64() < p.cfg.C1 {
		p.ops.OnePoint(p.rng, p.buf2, p.buf1, p.pbest)
		next = p.buf2
		inBuf1 = false
	}
	// Social: pos' = c2 ⊕ F3(δ, gbest).
	if p.rng.Float64() < p.cfg.C2 {
		dst := p.buf1
		if inBuf1 {
			dst = p.buf2
		}
		p.ops.TwoPoint(p.rng, dst, next, gbest)
		next = dst
	}
	copy(p.pos, next)
	return p.pos
}

// Adopt records cost as the current position's fitness and refreshes the
// personal best, completing a Move. It returns cost.
func (p *Particle) Adopt(cost int64) int64 {
	p.posCost = cost
	if cost < p.pbestCost {
		copy(p.pbest, p.pos)
		p.pbestCost = cost
	}
	return cost
}

// Swarm is the serial DPSO solver: Config.Swarm particles sharing one
// batch evaluator, with a synchronous global best. Each generation moves
// every particle first and scores the whole population in one batched
// pass — trajectory-identical to per-particle Update calls (particles
// own their RNG streams and read only the previous generation's gbest),
// only faster.
type Swarm struct {
	cfg       Config
	eval      core.Evaluator
	batch     *core.BatchEvaluator
	particles []*Particle
	seqs      [][]int
	costs     []int64
	gbest     []int
	gbestCost int64
	evals     int64
}

// NewSwarm initializes the swarm (Algorithm 2 lines 1–2) with per-particle
// RNG sub-streams of the given seed.
func NewSwarm(cfg Config, eval core.Evaluator, seed uint64) *Swarm {
	cfg = cfg.Normalized()
	s := &Swarm{
		cfg:   cfg,
		eval:  eval,
		batch: core.BatchEvaluatorFor(eval),
		seqs:  make([][]int, cfg.Swarm),
		costs: make([]int64, cfg.Swarm),
	}
	n := eval.Instance().GenomeLen()
	s.gbest = make([]int, n)
	s.gbestCost = int64(1) << 62
	for i := 0; i < cfg.Swarm; i++ {
		p := NewParticle(cfg, eval, xrand.NewStream(seed, uint64(i)))
		s.particles = append(s.particles, p)
		s.evals++
		if p.posCost < s.gbestCost {
			copy(s.gbest, p.pos)
			s.gbestCost = p.posCost
		}
	}
	return s
}

// Step runs one generation: find particles' and swarm's bests, update
// positions, evaluate (Algorithm 2 lines 4–7). Moves happen first, then
// one batched fitness pass over the population, then the personal-best
// refreshes — the same decomposition the paper's GPU implementation uses
// (update kernel, fitness kernel, reduction).
func (s *Swarm) Step() {
	for i, p := range s.particles {
		s.seqs[i] = p.Move(s.gbest)
	}
	s.batch.CostSeqs(s.seqs, s.costs)
	for i, p := range s.particles {
		p.Adopt(s.costs[i])
		s.evals++
	}
	for _, p := range s.particles {
		if p.pbestCost < s.gbestCost {
			copy(s.gbest, p.pbest)
			s.gbestCost = p.pbestCost
		}
	}
}

// Run executes the configured number of generations and returns the best
// cost found.
func (s *Swarm) Run() int64 {
	for i := 0; i < s.cfg.Iterations; i++ {
		s.Step()
	}
	return s.gbestCost
}

// Best returns the swarm's best sequence (borrowed) and cost.
func (s *Swarm) Best() ([]int, int64) { return s.gbest, s.gbestCost }

// Evaluations returns the number of fitness evaluations performed.
func (s *Swarm) Evaluations() int64 { return s.evals }
