package dpso

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/problem"
	"repro/internal/xrand"
)

func randomCDD(rng *rand.Rand, n int) *problem.Instance {
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
		sum += int64(p[i])
	}
	in, err := problem.NewCDD("t", p, alpha, beta, int64(float64(sum)*0.6))
	if err != nil {
		panic(err)
	}
	return in
}

func TestSwarmSolvesPaperExample(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.Iterations = 200
	cfg.Swarm = 32
	s := NewSwarm(cfg, eval, 1)
	got := s.Run()
	// n=5: the optimum over all sequences is small; DPSO with a healthy
	// swarm must find a permutation-optimal value. Compare against a large
	// random sample lower bound: here we just assert it matches SA-found
	// global optimum of the example instance, 79 (sequence-optimal over
	// all 120 permutations, ≤ the identity-sequence optimum 81).
	if got > 81 {
		t.Errorf("DPSO best = %d, should at least reach the identity-sequence optimum 81", got)
	}
	seq, cost := s.Best()
	if !problem.IsPermutation(seq) {
		t.Error("gbest is not a permutation")
	}
	if cost != eval.Cost(seq) {
		t.Errorf("gbest cost %d != re-evaluated %d", cost, eval.Cost(seq))
	}
}

func TestSwarmImprovesOverInitialization(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomCDD(rng, 25)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.Iterations = 0 // normalized() restores default; set below
	cfg = cfg.Normalized()
	cfg.Iterations = 150
	cfg.Swarm = 24
	s := NewSwarm(cfg, eval, 7)
	_, initBest := s.Best()
	final := s.Run()
	if final > initBest {
		t.Errorf("swarm got worse: init %d, final %d", initBest, final)
	}
	if final == initBest {
		t.Logf("warning: no improvement over initialization (possible but unusual)")
	}
}

func TestGBestMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomCDD(rng, 15)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.Swarm = 16
	s := NewSwarm(cfg, eval, 3)
	_, prev := s.Best()
	for i := 0; i < 100; i++ {
		s.Step()
		_, cur := s.Best()
		if cur > prev {
			t.Fatalf("gbest worsened at step %d: %d -> %d", i, prev, cur)
		}
		prev = cur
	}
}

func TestParticleUpdateKeepsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randomCDD(rng, 30)
	eval := core.NewEvaluator(in)
	gbest := problem.IdentitySequence(30)
	p := NewParticle(DefaultConfig(), eval, xrand.New(2))
	for i := 0; i < 300; i++ {
		p.Update(gbest, eval)
		pos, _ := p.Position()
		if !problem.IsPermutation(pos) {
			t.Fatalf("iteration %d: position is not a permutation: %v", i, pos)
		}
		pb, pbCost := p.Best()
		if !problem.IsPermutation(pb) {
			t.Fatal("pbest is not a permutation")
		}
		if _, posCost := p.Position(); posCost < pbCost {
			t.Fatal("pbest not updated")
		}
	}
}

func TestPbestNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := randomCDD(rng, 20)
	eval := core.NewEvaluator(in)
	gbest := problem.IdentitySequence(20)
	p := NewParticle(DefaultConfig(), eval, xrand.New(4))
	_, prev := p.Best()
	for i := 0; i < 200; i++ {
		p.Update(gbest, eval)
		_, cur := p.Best()
		if cur > prev {
			t.Fatalf("pbest worsened: %d -> %d", prev, cur)
		}
		prev = cur
	}
}

// TestZeroVelocityWithIdentityParents pins the ⊕ semantics: with w = 0
// the swap never fires, and crossing a sequence with itself (pbest and
// gbest equal to the position) reproduces it, so the particle never
// moves even though F2 and F3 fire every generation.
func TestZeroVelocityWithIdentityParents(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	eval := core.NewEvaluator(in)
	cfg := Config{Iterations: 10, Swarm: 2, W: 0, C1: 1, C2: 1}
	p := NewParticle(cfg, eval, xrand.New(5))
	pos0, cost0 := p.Position()
	orig := append([]int(nil), pos0...)
	for i := 0; i < 50; i++ {
		p.Update(orig, eval)
	}
	pos, cost := p.Position()
	for i := range orig {
		if pos[i] != orig[i] {
			t.Fatal("position changed despite zero velocity and identity parents")
		}
	}
	if cost != cost0 {
		t.Errorf("cost changed: %d -> %d", cost0, cost)
	}
}

// TestZeroValueConfigDefaults pins the normalization rule: the zero-value
// config (which would freeze every particle) takes the default operator
// probabilities, while an individual zero among non-zero probabilities is
// honored.
func TestZeroValueConfigDefaults(t *testing.T) {
	d := DefaultConfig()
	got := Config{}.Normalized()
	if got.W != d.W || got.C1 != d.C1 || got.C2 != d.C2 {
		t.Errorf("zero-value config normalized to %+v, want defaults", got)
	}
	kept := Config{W: 0, C1: 0.5, C2: 0.5}.Normalized()
	if kept.W != 0 {
		t.Errorf("explicit W=0 among non-zero probabilities not honored: %+v", kept)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randomCDD(rng, 20)
	run := func() int64 {
		eval := core.NewEvaluator(in)
		cfg := DefaultConfig()
		cfg.Iterations = 100
		cfg.Swarm = 16
		return NewSwarm(cfg, eval, 99).Run()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different results: %d vs %d", a, b)
	}
}

func TestEvaluationAccounting(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.Swarm = 8
	cfg.Iterations = 10
	s := NewSwarm(cfg, eval, 1)
	if got := s.Evaluations(); got != 8 {
		t.Errorf("init evaluations = %d, want 8", got)
	}
	s.Run()
	if got := s.Evaluations(); got != 8+8*10 {
		t.Errorf("evaluations = %d, want 88", got)
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{W: 2, C1: -1, C2: 5}.Normalized()
	d := DefaultConfig()
	if c.W != d.W || c.C1 != d.C1 || c.C2 != d.C2 {
		t.Errorf("invalid probabilities not defaulted: %+v", c)
	}
}
