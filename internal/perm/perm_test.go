package perm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/problem"
	"repro/internal/xrand"
)

func TestFisherYatesIsPermutation(t *testing.T) {
	r := xrand.New(1)
	for n := 0; n < 40; n++ {
		seq := problem.IdentitySequence(n)
		FisherYates(r, seq)
		if !problem.IsPermutation(seq) {
			t.Fatalf("n=%d: shuffle broke permutation: %v", n, seq)
		}
	}
}

// TestFisherYatesUniform checks that all 6 permutations of 3 elements are
// equally likely (the classic off-by-one in Fisher–Yates skews this).
func TestFisherYatesUniform(t *testing.T) {
	r := xrand.New(2)
	counts := map[[3]int]int{}
	const samples = 60000
	for i := 0; i < samples; i++ {
		seq := []int{0, 1, 2}
		FisherYates(r, seq)
		counts[[3]int{seq[0], seq[1], seq[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	expected := samples / 6
	for p, c := range counts {
		if c < expected*9/10 || c > expected*11/10 {
			t.Errorf("permutation %v count %d, expected ≈ %d", p, c, expected)
		}
	}
}

func TestSwapChangesExactlyTwo(t *testing.T) {
	r := xrand.New(3)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(20)
		seq := Random(r, n)
		orig := append([]int(nil), seq...)
		Swap(r, seq)
		if !problem.IsPermutation(seq) {
			t.Fatal("swap broke permutation")
		}
		if d := Distance(orig, seq); d != 2 {
			t.Fatalf("swap changed %d positions, want 2", d)
		}
	}
}

func TestSwapTiny(t *testing.T) {
	r := xrand.New(4)
	seq := []int{0}
	Swap(r, seq) // must not panic
	if seq[0] != 0 {
		t.Error("swap corrupted singleton")
	}
	Swap(r, nil) // must not panic
}

func TestInsertPreservesPermutation(t *testing.T) {
	r := xrand.New(5)
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(25)
		seq := Random(r, n)
		orig := append([]int(nil), seq...)
		Insert(r, seq)
		if !problem.IsPermutation(seq) {
			t.Fatalf("insert broke permutation: %v -> %v", orig, seq)
		}
		if Distance(orig, seq) == 0 {
			t.Fatal("insert was a no-op (from == to should be impossible)")
		}
	}
}

func TestReverseSegmentPreservesPermutation(t *testing.T) {
	r := xrand.New(6)
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(25)
		seq := Random(r, n)
		ReverseSegment(r, seq)
		if !problem.IsPermutation(seq) {
			t.Fatal("reverse broke permutation")
		}
	}
}

func TestPartialShuffle(t *testing.T) {
	r := xrand.New(7)
	for trial := 0; trial < 300; trial++ {
		n := 4 + r.Intn(30)
		k := 2 + r.Intn(4) // Pert = 4 in the paper
		o := NewOps(n)
		seq := Random(r, n)
		orig := append([]int(nil), seq...)
		o.PartialShuffle(r, seq, k)
		if !problem.IsPermutation(seq) {
			t.Fatalf("partial shuffle broke permutation: %v", seq)
		}
		if d := Distance(orig, seq); d > k {
			t.Fatalf("partial shuffle of size %d changed %d positions", k, d)
		}
	}
}

func TestPartialShuffleClampAndDegenerate(t *testing.T) {
	r := xrand.New(8)
	o := NewOps(5)
	seq := Random(r, 5)
	o.PartialShuffle(r, seq, 50) // k > n clamps to full shuffle
	if !problem.IsPermutation(seq) {
		t.Fatal("clamped shuffle broke permutation")
	}
	before := append([]int(nil), seq...)
	o.PartialShuffle(r, seq, 1) // k < 2 is a no-op
	if Distance(before, seq) != 0 {
		t.Error("k=1 shuffle changed the sequence")
	}
}

func TestOnePointCrossover(t *testing.T) {
	r := xrand.New(9)
	for trial := 0; trial < 400; trial++ {
		n := 1 + r.Intn(25)
		o := NewOps(n)
		a, b := Random(r, n), Random(r, n)
		dst := make([]int, n)
		o.OnePoint(r, dst, a, b)
		if !problem.IsPermutation(dst) {
			t.Fatalf("one-point produced non-permutation: a=%v b=%v dst=%v", a, b, dst)
		}
	}
}

// TestOnePointStructure pins the semantics: with a forced cut (via a
// deterministic Rand), dst = a's prefix + b-order remainder.
func TestOnePointStructure(t *testing.T) {
	o := NewOps(6)
	a := []int{5, 4, 3, 2, 1, 0}
	b := []int{0, 1, 2, 3, 4, 5}
	dst := make([]int, 6)
	o.OnePoint(fixedRand{3}, dst, a, b)
	want := []int{5, 4, 3, 0, 1, 2}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

func TestTwoPointCrossover(t *testing.T) {
	r := xrand.New(10)
	for trial := 0; trial < 400; trial++ {
		n := 1 + r.Intn(25)
		o := NewOps(n)
		a, b := Random(r, n), Random(r, n)
		dst := make([]int, n)
		o.TwoPoint(r, dst, a, b)
		if !problem.IsPermutation(dst) {
			t.Fatalf("two-point produced non-permutation: a=%v b=%v dst=%v", a, b, dst)
		}
	}
}

// TestTwoPointStructure pins the semantics with forced cuts c1=2, c2=4:
// dst keeps a[2:4] in place and fills around it in b's order.
func TestTwoPointStructure(t *testing.T) {
	o := NewOps(6)
	a := []int{5, 4, 3, 2, 1, 0}
	b := []int{0, 1, 2, 3, 4, 5}
	dst := make([]int, 6)
	o.TwoPoint(seqRand{[]int{2, 4}}, dst, a, b)
	// a[2:4] = {3,2} stays at positions 2..3; the rest of b's order
	// (0,1,4,5) fills positions 0,1,4,5.
	want := []int{0, 1, 3, 2, 4, 5}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

// TestCrossoversQuick property-checks both crossovers over random inputs
// including identical parents (dst must equal the parents then).
func TestCrossoversQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	property := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%20)
		r := xrand.New(seed)
		o := NewOps(n)
		a := Random(r, n)
		dst := make([]int, n)
		o.OnePoint(r, dst, a, a)
		if Distance(dst, a) != 0 {
			return false
		}
		o.TwoPoint(r, dst, a, a)
		return Distance(dst, a) == 0
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func TestOpsSizeMismatchPanics(t *testing.T) {
	o := NewOps(5)
	defer func() {
		if recover() == nil {
			t.Error("size mismatch did not panic")
		}
	}()
	o.PartialShuffle(xrand.New(1), make([]int, 7), 3)
}

func TestDistance(t *testing.T) {
	if d := Distance([]int{1, 2, 3}, []int{1, 2, 3}); d != 0 {
		t.Errorf("identical distance = %d", d)
	}
	if d := Distance([]int{1, 2, 3}, []int{3, 2, 1}); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
}

// fixedRand always returns the same value (clamped) — for pinning cuts.
type fixedRand struct{ v int }

func (f fixedRand) Intn(n int) int {
	if f.v >= n {
		return n - 1
	}
	return f.v
}

// seqRand returns scripted values in order.
type seqRand struct{ vals []int }

func (s seqRand) Intn(n int) int {
	if len(s.vals) == 0 {
		return 0
	}
	v := s.vals[0]
	copy(s.vals, s.vals[1:])
	s.vals = s.vals[:len(s.vals)-1]
	if v >= n {
		v = n - 1
	}
	return v
}

func BenchmarkPartialShuffle(b *testing.B) {
	r := xrand.New(1)
	o := NewOps(1000)
	seq := Random(r, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.PartialShuffle(r, seq, 4)
	}
}

func BenchmarkTwoPoint(b *testing.B) {
	r := xrand.New(1)
	o := NewOps(1000)
	a, bb := Random(r, 1000), Random(r, 1000)
	dst := make([]int, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.TwoPoint(r, dst, a, bb)
	}
}
