package perm

// Assignment moves for delimiter genomes (see problem.GenomeLen): a
// genome is a permutation of nJobs job values (< nJobs) and machine
// separators (≥ nJobs), and the maximal runs of job values map in order
// to machines. Because both moves below permute genome values in place,
// they are closed over genomes like every other operator in this package
// — but they target the assignment structure directly: JobReassign moves
// one job into a different slot (typically another machine's segment) and
// CrossMachineSwap exchanges two jobs that are guaranteed to sit on
// different machines. Both report the touched window so incremental
// evaluators (core.MachineDeltaEvaluator) price the move in O(Δ) instead
// of a full genome pass.

// JobReassign removes one random job value (never a separator) and
// reinserts it at another random position, shifting the values in
// between — on a multi-machine genome this reassigns the job to whatever
// machine owns the destination slot while preserving every machine's
// internal order. It returns the inclusive window [lo, hi] of positions
// the move may have changed; for genomes with fewer than 2 positions or
// no job values both are 0 (nothing changed).
func JobReassign(r Rand, genome []int, nJobs int) (lo, hi int) {
	n := len(genome)
	if n < 2 || nJobs < 1 {
		return 0, 0
	}
	var from int
	for {
		from = r.Intn(n)
		if genome[from] < nJobs {
			break
		}
	}
	to := r.Intn(n - 1)
	if to >= from {
		to++
	}
	v := genome[from]
	if from < to {
		copy(genome[from:to], genome[from+1:to+1])
	} else {
		copy(genome[to+1:from+1], genome[to:from])
	}
	genome[to] = v
	if from < to {
		return from, to
	}
	return to, from
}

// CrossMachineSwap exchanges two random job values that sit on different
// machines of the genome, leaving all segment lengths unchanged — the
// pure assignment exchange move. It returns the two touched positions
// (i < j is not guaranteed, matching Swap). When the genome has no two
// jobs on distinct machines (single machine, or all jobs on one
// machine), it returns (0, 0) and changes nothing.
func (o *Ops) CrossMachineSwap(r Rand, genome []int, nJobs int) (i, j int) {
	n := len(genome)
	if n != o.n {
		panic("perm: sequence length differs from Ops size")
	}
	if nJobs >= n || nJobs < 1 {
		return 0, 0 // no separators: a single machine owns every job
	}
	// Label each position with its machine (separators get -1), tracking
	// whether at least two machines hold jobs.
	lab := o.vals[:n]
	mach, firstMach := 0, -1
	multi := false
	for p, v := range genome {
		if v >= nJobs {
			mach++
			lab[p] = -1
			continue
		}
		lab[p] = mach
		if firstMach < 0 {
			firstMach = mach
		} else if mach != firstMach {
			multi = true
		}
	}
	if !multi {
		return 0, 0
	}
	for {
		i = r.Intn(n)
		if genome[i] < nJobs {
			break
		}
	}
	for {
		j = r.Intn(n)
		if genome[j] < nJobs && lab[j] != lab[i] {
			break
		}
	}
	genome[i], genome[j] = genome[j], genome[i]
	return i, j
}
