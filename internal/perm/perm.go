// Package perm provides the permutation machinery shared by all
// metaheuristics in this repository: Fisher–Yates shuffling (the paper's
// neighborhood generator, Section VI-B), the partial-shuffle perturbation
// of size Pert, the swap move used as the DPSO velocity operator F1, and
// the one-point / two-point order-preserving crossovers used as the DPSO
// cognition (F2) and social (F3) operators after Pan et al.
package perm

// Rand is the minimal source of randomness the operators need. Both
// *math/rand.Rand and *xrand.XORWOW satisfy it.
type Rand interface {
	// Intn returns a uniform integer in [0,n); n must be positive.
	Intn(n int) int
}

// FisherYates shuffles seq uniformly in place using the classic
// Fisher–Yates algorithm (CLRS, as cited by the paper).
func FisherYates(r Rand, seq []int) {
	for i := len(seq) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		seq[i], seq[j] = seq[j], seq[i]
	}
}

// Random returns a fresh uniform random permutation of 0..n-1.
func Random(r Rand, n int) []int {
	seq := make([]int, n)
	for i := range seq {
		seq[i] = i
	}
	FisherYates(r, seq)
	return seq
}

// Swap exchanges two distinct random positions of seq in place. It is the
// DPSO velocity operator F1. Sequences of length < 2 are left unchanged.
// It returns the two touched positions so incremental evaluators can price
// the move in O(1); for length < 2 both are 0 (nothing changed).
func Swap(r Rand, seq []int) (i, j int) {
	n := len(seq)
	if n < 2 {
		return 0, 0
	}
	i = r.Intn(n)
	j = r.Intn(n - 1)
	if j >= i {
		j++
	}
	seq[i], seq[j] = seq[j], seq[i]
	return i, j
}

// Insert removes the element at a random position and reinserts it at
// another random position, shifting the elements in between. It is an
// additional neighborhood move offered to the metaheuristics. It returns
// the inclusive window [lo, hi] of positions the move may have changed;
// for length < 2 both are 0 (nothing changed).
func Insert(r Rand, seq []int) (lo, hi int) {
	n := len(seq)
	if n < 2 {
		return 0, 0
	}
	from := r.Intn(n)
	to := r.Intn(n - 1)
	if to >= from {
		to++
	}
	v := seq[from]
	if from < to {
		copy(seq[from:to], seq[from+1:to+1])
	} else {
		copy(seq[to+1:from+1], seq[to:from])
	}
	seq[to] = v
	if from < to {
		return from, to
	}
	return to, from
}

// ReverseSegment reverses a random contiguous segment of seq in place
// (the classic 2-opt style move). It returns the inclusive window [lo, hi]
// of positions the move may have changed; for length < 2 both are 0
// (nothing changed).
func ReverseSegment(r Rand, seq []int) (lo, hi int) {
	n := len(seq)
	if n < 2 {
		return 0, 0
	}
	i := r.Intn(n)
	j := r.Intn(n)
	if i > j {
		i, j = j, i
	}
	lo, hi = i, j
	for i < j {
		seq[i], seq[j] = seq[j], seq[i]
		i++
		j--
	}
	return lo, hi
}

// Ops bundles scratch buffers so the compound operators run without
// allocating in hot loops. An Ops value serves sequences of exactly the
// length it was created for and is not safe for concurrent use.
type Ops struct {
	n    int
	idx  []int
	vals []int
	used []bool
}

// NewOps returns operator scratch for sequences of length n.
func NewOps(n int) *Ops {
	o := &Ops{n: n}
	o.idx = make([]int, n)
	o.vals = make([]int, n)
	o.used = make([]bool, n)
	for i := range o.idx {
		o.idx[i] = i
	}
	return o
}

// PartialShuffle applies the paper's perturbation: select k distinct
// random positions of seq and shuffle the jobs occupying them with
// Fisher–Yates, keeping all other positions fixed. k is clamped to
// [0, len(seq)]. It returns the selected positions (aliasing internal
// scratch, valid until the next call) so incremental evaluators can price
// the move in O(k); a clamped k < 2 yields an empty slice.
func (o *Ops) PartialShuffle(r Rand, seq []int, k int) []int {
	n := len(seq)
	if n != o.n {
		panic("perm: sequence length differs from Ops size")
	}
	if k > n {
		k = n
	}
	if k < 2 {
		return o.idx[:0]
	}
	// Partial Fisher–Yates over the persistent index buffer selects k
	// distinct positions in O(k).
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		o.idx[i], o.idx[j] = o.idx[j], o.idx[i]
	}
	pos := o.idx[:k]
	vals := o.vals[:k]
	for i, p := range pos {
		vals[i] = seq[p]
	}
	FisherYates(r, vals)
	for i, p := range pos {
		seq[p] = vals[i]
	}
	return pos
}

// OnePoint performs the one-point order crossover F2 of the DPSO: dst
// receives a's prefix up to a random cut and the remaining jobs in the
// order they appear in b. dst must not alias a or b.
func (o *Ops) OnePoint(r Rand, dst, a, b []int) {
	n := len(a)
	if n != o.n || len(b) != n || len(dst) != n {
		panic("perm: sequence length differs from Ops size")
	}
	cut := 0
	if n > 0 {
		cut = r.Intn(n + 1)
	}
	used := o.used
	for i := range used {
		used[i] = false
	}
	copy(dst[:cut], a[:cut])
	for _, v := range a[:cut] {
		used[v] = true
	}
	w := cut
	for _, v := range b {
		if !used[v] {
			dst[w] = v
			w++
		}
	}
}

// TwoPoint performs the two-point order crossover F3 of the DPSO: dst
// receives a's segment [c1,c2) in place and all other jobs in the order
// they appear in b. dst must not alias a or b.
func (o *Ops) TwoPoint(r Rand, dst, a, b []int) {
	n := len(a)
	if n != o.n || len(b) != n || len(dst) != n {
		panic("perm: sequence length differs from Ops size")
	}
	if n == 0 {
		return
	}
	c1 := r.Intn(n + 1)
	c2 := r.Intn(n + 1)
	if c1 > c2 {
		c1, c2 = c2, c1
	}
	used := o.used
	for i := range used {
		used[i] = false
	}
	copy(dst[c1:c2], a[c1:c2])
	for _, v := range a[c1:c2] {
		used[v] = true
	}
	w := 0
	for _, v := range b {
		if used[v] {
			continue
		}
		if w == c1 {
			w = c2
		}
		dst[w] = v
		w++
	}
}

// Distance returns the number of positions at which two sequences differ
// (Hamming distance on permutations), a cheap diversity metric used by
// the synchronous driver and by tests.
func Distance(a, b []int) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}
