package perm

import (
	"testing"

	"repro/internal/problem"
	"repro/internal/xrand"
)

// machineOf labels every genome position with its machine index
// (separators get -1), mirroring the delimiter decoding.
func machineOf(genome []int, nJobs int) []int {
	lab := make([]int, len(genome))
	k := 0
	for p, v := range genome {
		if v >= nJobs {
			k++
			lab[p] = -1
			continue
		}
		lab[p] = k
	}
	return lab
}

// TestJobReassignWindowAndClosure drives the insert-shift move across
// random genomes: the result stays a permutation, the moved value is
// always a job, and every position outside the reported window is
// untouched — the contract the O(Δ) delta evaluator prices against.
func TestJobReassignWindowAndClosure(t *testing.T) {
	r := xrand.New(17)
	for trial := 0; trial < 500; trial++ {
		nJobs := 1 + r.Intn(8)
		m := 1 + r.Intn(4)
		L := nJobs + m - 1
		genome := Random(r, L)
		orig := append([]int(nil), genome...)
		lo, hi := JobReassign(r, genome, nJobs)
		if !problem.IsPermutation(genome) {
			t.Fatalf("JobReassign broke the permutation: %v", genome)
		}
		if lo < 0 || hi >= L || lo > hi {
			t.Fatalf("window [%d,%d] outside genome of length %d", lo, hi, L)
		}
		for p := 0; p < L; p++ {
			if (p < lo || p > hi) && genome[p] != orig[p] {
				t.Fatalf("position %d outside window [%d,%d] changed: %v → %v", p, lo, hi, orig, genome)
			}
		}
		// The multiset inside the window is preserved (an insert-shift
		// permutes window values only), so separator prefix counts outside
		// the window are pinned — the machine-range bound the delta
		// evaluator relies on.
		seps := func(g []int, a, b int) int {
			c := 0
			for _, v := range g[a : b+1] {
				if v >= nJobs {
					c++
				}
			}
			return c
		}
		if seps(genome, lo, hi) != seps(orig, lo, hi) {
			t.Fatalf("separator count inside window changed: %v → %v", orig, genome)
		}
	}
	// Degenerate genomes: nothing to move.
	g := []int{0}
	if lo, hi := JobReassign(r, g, 1); lo != 0 || hi != 0 || g[0] != 0 {
		t.Errorf("length-1 genome moved: %v (window %d,%d)", g, lo, hi)
	}
}

// TestCrossMachineSwapDistinctMachines pins the exchange move: the two
// reported positions always hold jobs on different machines of the base
// genome, segment boundaries never move, and genomes with fewer than two
// occupied machines are left untouched.
func TestCrossMachineSwapDistinctMachines(t *testing.T) {
	r := xrand.New(19)
	for trial := 0; trial < 500; trial++ {
		nJobs := 1 + r.Intn(8)
		m := 1 + r.Intn(4)
		L := nJobs + m - 1
		ops := NewOps(L)
		genome := Random(r, L)
		orig := append([]int(nil), genome...)
		lab := machineOf(orig, nJobs)
		i, j := ops.CrossMachineSwap(r, genome, nJobs)
		if !problem.IsPermutation(genome) {
			t.Fatalf("CrossMachineSwap broke the permutation: %v", genome)
		}
		if i == j {
			// No-op: either a single machine owns every job or only one
			// machine is occupied. Verify the claim and the untouched genome.
			occupied := map[int]bool{}
			for p, v := range orig {
				if v < nJobs {
					occupied[lab[p]] = true
				}
			}
			if len(occupied) > 1 {
				t.Fatalf("no-op reported but %d machines hold jobs: %v", len(occupied), orig)
			}
			for p := range genome {
				if genome[p] != orig[p] {
					t.Fatalf("no-op changed the genome: %v → %v", orig, genome)
				}
			}
			continue
		}
		if orig[i] >= nJobs || orig[j] >= nJobs {
			t.Fatalf("swap touched a separator: positions %d,%d of %v", i, j, orig)
		}
		if lab[i] == lab[j] {
			t.Fatalf("swapped jobs share machine %d: %v", lab[i], orig)
		}
		if genome[i] != orig[j] || genome[j] != orig[i] {
			t.Fatalf("positions %d,%d not exchanged: %v → %v", i, j, orig, genome)
		}
		for p := range genome {
			if p != i && p != j && genome[p] != orig[p] {
				t.Fatalf("position %d changed beyond the swap: %v → %v", p, orig, genome)
			}
		}
	}
	// Single machine: always a no-op.
	ops := NewOps(4)
	g := []int{2, 0, 1, 3}
	if i, j := ops.CrossMachineSwap(r, g, 4); i != 0 || j != 0 {
		t.Errorf("single-machine genome swapped (%d,%d)", i, j)
	}
}
