package parallel

import (
	"context"
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/cudasim"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/sa"
	"repro/internal/xrand"
)

// PersistentGPUSA is the persistent-kernel variant of GPUSA: instead of
// the paper's four kernel launches per iteration (Figure 10), a single
// launch keeps every thread resident and runs the whole annealing loop —
// perturbation, fitness, acceptance — inside the kernel, with one final
// reduction. This is the classic CUDA optimization for iteration-heavy
// pipelines: it removes the per-iteration launch overhead and the
// device-wide synchronization between kernels at the cost of flexibility
// (no host-side control between iterations).
//
// With the same seed it consumes the per-thread RNG streams in exactly
// the order of the four-kernel pipeline, so its results are bit-identical
// to GPUSA's (TestPersistentMatchesPipelined) while the simulated time
// drops by the saved launch overhead (BenchmarkAblationPersistentKernel).
type PersistentGPUSA struct {
	// Label names the solver in result tables.
	Label string
	// Inst is the instance to optimize (CDD or UCDDCP).
	Inst *problem.Instance
	// SA holds the annealing parameters shared by all threads.
	SA sa.Config
	// Grid and Block default to the paper's 4 × 192.
	Grid, Block int
	// Seed derives all per-thread RNG streams.
	Seed uint64
	// Dev is the device to run on; nil creates a fresh simulated GT 560M.
	Dev *cudasim.Device
	// Budget bounds the run (iteration override and/or deadline; each
	// resident thread checks the deadline once per annealing iteration).
	Budget core.Budget
	// Progress receives only the final snapshot: a persistent kernel has
	// no host control between iterations, which is exactly the
	// flexibility it trades away (see the type comment).
	Progress core.ProgressFunc
	// Metrics selects the instrumentation level (off by default). The
	// single launch reports as the "persistent" phase; per-thread
	// counters are folded when each resident thread retires.
	Metrics core.MetricsLevel
}

// Name implements core.Solver.
func (g *PersistentGPUSA) Name() string {
	if g.Label != "" {
		return g.Label
	}
	return "GPU-SA-persistent"
}

// Solve runs the persistent kernel and returns the reduced best solution.
// Cancellation is cooperative inside the kernel: every resident thread
// checks the context once per annealing iteration, breaks out of its loop
// when done, and still publishes its best into the final reduction — so
// an interrupted run returns a valid reduced best with Interrupted set.
func (g *PersistentGPUSA) Solve(ctx context.Context, inst *problem.Instance) (core.Result, error) {
	if inst == nil {
		inst = g.Inst
	}
	grid, block := g.Grid, g.Block
	if grid <= 0 {
		grid = 4
	}
	if block <= 0 {
		block = 192
	}
	dev := g.Dev
	if dev == nil {
		dev = cudasim.NewDevice(cudasim.GT560M())
	}
	cfg := g.SA
	if g.Budget.Iterations > 0 {
		cfg.Iterations = g.Budget.Iterations
	}
	ctx, cancel := g.Budget.Apply(ctx)
	defer cancel()
	n := inst.GenomeLen()
	start := time.Now()
	simStart := dev.SimTime()

	pl := newPipeline(dev, inst, grid, block, false, g.Seed)
	if inst.Kind == problem.CDD && !inst.GenomeCoded() {
		// Same delta adoption as the four-kernel pipeline's default mode,
		// so both engines price candidates identically.
		pl.enableDelta()
	}
	N := pl.threads

	full := sa.DefaultConfig()
	if cfg.Iterations <= 0 {
		cfg.Iterations = full.Iterations
	}
	if cfg.Cooling <= 0 || cfg.Cooling >= 1 {
		cfg.Cooling = full.Cooling
	}
	if cfg.Pert <= 0 {
		cfg.Pert = full.Pert
	}
	if cfg.Pert > n {
		cfg.Pert = n
	}
	if cfg.ReselectPeriod <= 0 {
		cfg.ReselectPeriod = full.ReselectPeriod
	}
	if cfg.TempSamples <= 0 {
		cfg.TempSamples = full.TempSamples
	}

	col := obs.NewCollector(g.Metrics)
	var evalCount int64
	t0 := cfg.T0
	if t0 <= 0 {
		phased(col, obs.PhaseT0, func() {
			eval := core.NewEvaluator(inst)
			t0 = core.InitialTemperature(eval, xrand.NewStream(g.Seed, uint64(N)+1), cfg.TempSamples)
		})
		evalCount += int64(cfg.TempSamples)
		col.AddFullEvals(int64(cfg.TempSamples))
	}

	seqBuf := cudasim.NewBufferFrom(dev, pl.randomRows())
	bestCostBuf := cudasim.NewBuffer[int64](dev, N)
	bestSeqBuf := cudasim.NewBuffer[int32](dev, N*n)
	packedBuf := cudasim.NewBufferFrom(dev, []int64{math.MaxInt64})

	// Per-thread candidate rows live in registers/local memory of the
	// persistent kernel.
	cand := make([][]int32, N)
	positions := make([][]int, N)
	for t := 0; t < N; t++ {
		cand[t] = make([]int32, n)
		positions[t] = make([]int, 0, cfg.Pert)
	}

	// interrupted is shared by the resident threads: once any thread sees
	// the context done, the flag also short-circuits the remaining
	// threads' checks (the simulated threads are cooperative goroutines,
	// so an atomic keeps the -race detector satisfied).
	var interrupted atomic.Bool
	var itersDone atomic.Int64
	kernelCfg := pl.launchCfg("persistent")
	err := gpuPhased(col, dev, obs.PhasePersistent, func() error {
		return dev.Launch(kernelCfg, func(c *cudasim.Ctx) {
			shA, shB := pl.stagePenalties(c)
			tid := c.GlobalThreadID()
			rng := pl.rngs[tid]
			cur := seqBuf.Raw()[tid*n : (tid+1)*n]
			cnd := cand[tid]
			d := c.ConstInt("d")

			evalRow := func(row []int32) int64 {
				c.ChargeGlobal(n, true) // row traffic
				c.ChargeShared(2 * n)
				pArr := pl.loadProcessingTimes(c, tid, row)
				var cost int64
				var ops int
				switch {
				case pl.soa != nil:
					// Genome-coded row: machine-aware scoring through the
					// shared genome core (bit-identical to the four-kernel
					// pipeline's batch path on the same row).
					cost, ops = core.GenomeFitnessArrays(row, pl.soa, pl.comp[tid], pl.aux[tid])
					if pl.inst.Kind == problem.UCDDCP {
						c.ChargeGlobal(2*n, true)
					}
				case pl.inst.Kind == problem.UCDDCP:
					cost, ops = fitnessUCDDCPArrays(row, pArr, pl.mBuf.Raw(), shA, shB, pl.gammaBuf.Raw(), d, pl.comp[tid], pl.aux[tid])
					c.ChargeGlobal(2*n, true)
				default:
					cost, ops = fitnessCDDArrays(row, pArr, shA, shB, d, pl.comp[tid])
				}
				c.ChargeArith(ops)
				return cost
			}

			var dl *cdd.Delta[int32]
			if pl.deltas != nil {
				dl = pl.deltas[tid]
			}
			lg := bits.Len(uint(n))

			var cc obs.ChainCounters
			var curCost int64
			if dl != nil {
				chargeDeltaReset(c, n)
				curCost = dl.Reset(cur)
			} else {
				curCost = evalRow(cur)
			}
			cc.FullEvaluations++
			bestCost := curCost
			copy(bestSeqBuf.Raw()[tid*n:(tid+1)*n], cur)
			c.ChargeGlobal(2*n, true)

			temp := t0
			done := 0
			for it := 0; it < cfg.Iterations; it++ {
				if interrupted.Load() || ctx.Err() != nil {
					interrupted.Store(true)
					col.SetInterruptedAt("kernel-iteration")
					break
				}
				done++
				// Perturbation (as the perturb kernel).
				copy(cnd, cur)
				c.ChargeGlobal(2*n, true)
				if it%cfg.ReselectPeriod == 0 || len(positions[tid]) == 0 {
					positions[tid] = drawPositions(rng, positions[tid][:0], n, cfg.Pert)
					c.ChargeArith(4 * cfg.Pert)
				}
				pos := positions[tid]
				for i := len(pos) - 1; i > 0; i-- {
					j := rng.Intn(i + 1)
					a, b := pos[i], pos[j]
					cnd[a], cnd[b] = cnd[b], cnd[a]
				}
				c.ChargeGlobal(2*len(pos), false)
				c.ChargeArith(6 * len(pos))

				// Fitness: incremental over the perturbed positions when the
				// delta path is on, full O(n) pass otherwise.
				var candCost int64
				if dl != nil {
					chargeDeltaPropose(c, len(pos), lg)
					candCost = dl.Propose(cnd, pos)
					cc.DeltaEvaluations++
				} else {
					candCost = evalRow(cnd)
					cc.FullEvaluations++
				}

				// Acceptance (as the accept kernel).
				accept := candCost <= curCost
				if !accept && temp > 0 {
					accept = math.Exp(float64(curCost-candCost)/temp) >= rng.Float64()
				}
				c.ChargeArith(12)
				if accept {
					cc.Acceptances++
					if dl != nil {
						dl.Commit()
						c.ChargeArith(10 * len(pos) * lg)
					}
					copy(cur, cnd)
					curCost = candCost
					c.ChargeGlobal(2*n, true)
					if candCost < bestCost {
						cc.Improvements++
						bestCost = candCost
						copy(bestSeqBuf.Raw()[tid*n:(tid+1)*n], cnd)
						c.ChargeGlobal(2*n, true)
					}
				}
				temp *= cfg.Cooling
				if cfg.TMin > 0 && temp < cfg.TMin {
					temp = cfg.TMin
				}
			}
			itersDone.Add(int64(done))
			col.AddChain(cc)
			bestCostBuf.Store(c, tid, bestCost)
			cudasim.AtomicMinInt64(c, packedBuf, 0, bestCost<<tidBits|int64(tid))
		})
	})
	if err != nil {
		return core.Result{}, err
	}
	evalCount += int64(N) + itersDone.Load()

	bestSeq, bestCost := pl.winner(packedBuf, bestSeqBuf)
	res := core.Result{
		BestSeq:     bestSeq,
		BestCost:    bestCost,
		Iterations:  cfg.Iterations,
		Evaluations: evalCount,
		Elapsed:     time.Since(start),
		SimSeconds:  dev.SimTime() - simStart,
		Interrupted: interrupted.Load(),
	}
	if col.Enabled() {
		res.Metrics = col.Snapshot(evalCount, N, 1, res.Elapsed)
	}
	if g.Progress != nil {
		g.Progress(core.Snapshot{
			BestSeq:     append([]int(nil), res.BestSeq...),
			BestCost:    res.BestCost,
			Evaluations: res.Evaluations,
			Elapsed:     res.Elapsed,
		})
	}
	return res, nil
}

// MustSolve is the context-free convenience form of Solve: background
// context, the bound instance, panic on error.
func (g *PersistentGPUSA) MustSolve() core.Result { return mustSolve(g, g.Inst) }
