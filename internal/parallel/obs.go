package parallel

import (
	"time"

	"repro/internal/cudasim"
	"repro/internal/obs"
)

// phased runs fn as one execution of phase p on the collector: a bare
// launch count at the counters level (free when col is nil), host
// wall-clock timing at the kernels level.
func phased(col *obs.Collector, p obs.Phase, fn func()) {
	if !col.Kernels() {
		fn()
		col.CountPhase(p)
		return
	}
	t0 := time.Now()
	fn()
	col.Phase(p, time.Since(t0), 0)
}

// gpuPhased runs one kernel launch as phase p, bracketing it with device
// events so the phase accumulates simulated device seconds alongside
// host wall time — the cudasim equivalent of cudaEventElapsedTime
// around a launch.
func gpuPhased(col *obs.Collector, dev *cudasim.Device, p obs.Phase, fn func() error) error {
	if !col.Kernels() {
		err := fn()
		col.CountPhase(p)
		return err
	}
	before := dev.Record()
	t0 := time.Now()
	err := fn()
	after := dev.Record()
	col.Phase(p, time.Since(t0), before.ElapsedSeconds(after))
	return err
}
