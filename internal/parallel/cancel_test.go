package parallel

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dpso"
	"repro/internal/problem"
)

// assertInterrupted checks the contract every engine must honor when cut
// short: Interrupted set, a valid permutation, and a reported cost that
// the sequence actually evaluates to.
func assertInterrupted(t *testing.T, in *problem.Instance, res core.Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("cancelled Solve returned error: %v", err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled run did not report Interrupted")
	}
	if !problem.IsPermutation(res.BestSeq) {
		t.Fatalf("interrupted best is not a permutation: %v", res.BestSeq)
	}
	if got := core.NewEvaluator(in).Cost(res.BestSeq); got != res.BestCost {
		t.Errorf("interrupted best reported %d, evaluates to %d", res.BestCost, got)
	}
}

// cancelOnFirstSnapshot returns a context plus a ProgressFunc that
// cancels it: the engines emit a snapshot on the first ensemble-best
// improvement, so the cancellation deterministically lands mid-run —
// after some work has produced a best-so-far, before the budget is
// exhausted.
func cancelOnFirstSnapshot() (context.Context, core.ProgressFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	return ctx, func(core.Snapshot) { cancel() }
}

// TestAsyncSACancelMidRun cancels from the first progress snapshot (the
// first completed chain). The runtime must skip the chains not yet
// started and reduce over the completed ones.
func TestAsyncSACancelMidRun(t *testing.T) {
	in := benchInstanceCDD(15)
	ctx, progress := cancelOnFirstSnapshot()
	s := &AsyncSA{SA: smallSA(), Parallel: true, Progress: progress,
		Ens: Ensemble{Chains: 64, Seed: 1, Workers: 2}}
	res, err := s.Solve(ctx, in)
	assertInterrupted(t, in, res, err)
	if res.Evaluations <= 0 {
		t.Error("no evaluations recorded from the completed chains")
	}
}

// TestSyncSACancelMidRun cancels from the first post-level snapshot; the
// driver must break at the next level boundary and fold the chains'
// bests so far.
func TestSyncSACancelMidRun(t *testing.T) {
	in := benchInstanceCDD(15)
	ctx, progress := cancelOnFirstSnapshot()
	s := &SyncSA{SA: smallSA(), Parallel: true, Progress: progress,
		Ens: Ensemble{Chains: 8, Seed: 5, Workers: 2}, MarkovLen: 5, Levels: 1000}
	res, err := s.Solve(ctx, in)
	assertInterrupted(t, in, res, err)
}

// TestParallelDPSOCancelMidRun cancels from the first snapshot (the
// initialization reduce); the driver must stop at the next generation
// barrier with the swarm best so far.
func TestParallelDPSOCancelMidRun(t *testing.T) {
	in := benchInstanceCDD(15)
	cfg := dpso.DefaultConfig()
	cfg.Iterations = 1000
	ctx, progress := cancelOnFirstSnapshot()
	s := &ParallelDPSO{PSO: cfg, Parallel: true, Progress: progress,
		Ens: Ensemble{Chains: 8, Seed: 2, Workers: 2}}
	res, err := s.Solve(ctx, in)
	assertInterrupted(t, in, res, err)
}

// TestGPUSACancelMidRun cancels from the first post-reduction snapshot;
// the pipeline must break at the next host iteration and re-reduce the
// per-thread bests accumulated so far.
func TestGPUSACancelMidRun(t *testing.T) {
	in := benchInstanceCDD(15)
	cfg := smallSA()
	cfg.Iterations = 1000
	ctx, progress := cancelOnFirstSnapshot()
	s := &GPUSA{SA: cfg, Grid: 1, Block: 8, Seed: 6, Progress: progress}
	res, err := s.Solve(ctx, in)
	assertInterrupted(t, in, res, err)
}

// TestGPUDPSOCancelMidRun does the same for the DPSO pipeline.
func TestGPUDPSOCancelMidRun(t *testing.T) {
	in := benchInstanceCDD(15)
	cfg := dpso.DefaultConfig()
	cfg.Iterations = 1000
	ctx, progress := cancelOnFirstSnapshot()
	s := &GPUDPSO{PSO: cfg, Grid: 1, Block: 8, Seed: 2, Progress: progress}
	res, err := s.Solve(ctx, in)
	assertInterrupted(t, in, res, err)
}

// TestExpiredDeadlinePromptReturn hands every driver a Budget whose
// deadline already passed, with an iteration budget large enough that
// actually running it would blow the test timeout. Each must return
// promptly with Interrupted set and a valid best (the identity-sequence
// fallback when not even one chain completed, the initialization bests
// on the GPU engines).
func TestExpiredDeadlinePromptReturn(t *testing.T) {
	in := benchInstanceCDD(15)
	expired := core.Budget{Deadline: time.Now().Add(-time.Second)}
	saCfg := smallSA()
	saCfg.Iterations = 1 << 20
	psoCfg := dpso.DefaultConfig()
	psoCfg.Iterations = 1 << 20
	solvers := []core.Solver{
		&AsyncSA{SA: saCfg, Ens: Ensemble{Chains: 16, Seed: 1}, Parallel: true, Budget: expired},
		&AsyncSA{SA: saCfg, Ens: Ensemble{Chains: 16, Seed: 1}, Parallel: false, Budget: expired},
		&SyncSA{SA: saCfg, Ens: Ensemble{Chains: 8, Seed: 5}, MarkovLen: 5, Levels: 1 << 20, Parallel: true, Budget: expired},
		&ParallelDPSO{PSO: psoCfg, Ens: Ensemble{Chains: 8, Seed: 2}, Parallel: true, Budget: expired},
		&GPUSA{SA: saCfg, Grid: 1, Block: 8, Seed: 6, Budget: expired},
		&PersistentGPUSA{SA: saCfg, Grid: 1, Block: 8, Seed: 6, Budget: expired},
		&GPUDPSO{PSO: psoCfg, Grid: 1, Block: 8, Seed: 2, Budget: expired},
	}
	for _, s := range solvers {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			res, err := s.Solve(context.Background(), in)
			assertInterrupted(t, in, res, err)
		})
	}
}

// TestAsyncSAIdentityFallback pins the zero-chains-completed path: a
// pre-cancelled context must yield the identity sequence with its exact
// cost (one fallback evaluation), not an empty result.
func TestAsyncSAIdentityFallback(t *testing.T) {
	in := benchInstanceCDD(15)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := (&AsyncSA{SA: smallSA(), Ens: Ensemble{Chains: 8, Seed: 1}, Parallel: false}).Solve(ctx, in)
	assertInterrupted(t, in, res, err)
	want := problem.IdentitySequence(in.N())
	for i, v := range res.BestSeq {
		if v != want[i] {
			t.Fatalf("fallback sequence is not the identity: %v", res.BestSeq)
		}
	}
	if res.Evaluations != 1 {
		t.Errorf("fallback evaluations = %d, want 1", res.Evaluations)
	}
}

// TestCancelledBudgetKeepsDeterminism: an uncancelled context must leave
// results bit-identical whether or not a (future) deadline was attached —
// the budget machinery itself may not disturb trajectories.
func TestCancelledBudgetKeepsDeterminism(t *testing.T) {
	in := benchInstanceCDD(15)
	plain, err := (&AsyncSA{SA: smallSA(), Ens: Ensemble{Chains: 10, Seed: 3}, Parallel: true}).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := (&AsyncSA{SA: smallSA(), Ens: Ensemble{Chains: 10, Seed: 3}, Parallel: true,
		Budget: core.Budget{Deadline: time.Now().Add(time.Hour)}}).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.Interrupted {
		t.Error("run with a distant deadline reported Interrupted")
	}
	if plain.BestCost != budgeted.BestCost || plain.Evaluations != budgeted.Evaluations {
		t.Errorf("deadline plumbing changed the result: %d/%d vs %d/%d",
			plain.BestCost, plain.Evaluations, budgeted.BestCost, budgeted.Evaluations)
	}
}
