package parallel

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/problem"
	"repro/internal/sa"
)

// goldenSA is the configuration the golden values below were captured
// under (with the full O(n) evaluators, before the incremental delta
// path existed).
func goldenSA() sa.Config {
	cfg := sa.DefaultConfig()
	cfg.Iterations = 80
	cfg.TempSamples = 60
	return cfg
}

// TestGoldenFixedSeedResults pins every solver's fixed-seed output to the
// values produced by the full-evaluation code path. The incremental
// propose/commit evaluators must price each candidate bit-identically and
// consume no randomness of their own, so trajectories — and therefore
// these best costs and evaluation counts — must never drift.
func TestGoldenFixedSeedResults(t *testing.T) {
	type golden struct {
		name  string
		inst  *problem.Instance
		run   func(t *testing.T, in *problem.Instance) (best, evals int64)
		best  int64
		evals int64 // 0 means unchecked
	}
	// Every runner goes through the explicit context-aware Solve path (a
	// background context that never expires must be invisible: same
	// trajectories, same results as before the engine-layer refactor).
	ctx := context.Background()
	mustRun := func(t *testing.T, r core.Result, err error) core.Result {
		t.Helper()
		if err != nil {
			t.Fatalf("Solve failed: %v", err)
		}
		if r.Interrupted {
			t.Fatal("uncancelled run reported Interrupted")
		}
		return r
	}
	async := func(t *testing.T, in *problem.Instance) (int64, int64) {
		r, err := (&AsyncSA{SA: goldenSA(), Ens: Ensemble{Chains: 10, Seed: 3}, Parallel: true}).Solve(ctx, in)
		r = mustRun(t, r, err)
		return r.BestCost, r.Evaluations
	}
	gpu := func(t *testing.T, in *problem.Instance) (int64, int64) {
		r, err := (&GPUSA{SA: goldenSA(), Grid: 2, Block: 8, Seed: 6}).Solve(ctx, in)
		return mustRun(t, r, err).BestCost, 0
	}
	persistent := func(t *testing.T, in *problem.Instance) (int64, int64) {
		r, err := (&PersistentGPUSA{SA: goldenSA(), Grid: 2, Block: 8, Seed: 6}).Solve(ctx, in)
		return mustRun(t, r, err).BestCost, 0
	}
	sync := func(t *testing.T, in *problem.Instance) (int64, int64) {
		r, err := (&SyncSA{SA: goldenSA(), Ens: Ensemble{Chains: 8, Seed: 5}, MarkovLen: 5, Levels: 12, Parallel: true}).Solve(ctx, in)
		return mustRun(t, r, err).BestCost, 0
	}

	cdd15, cdd40 := benchInstanceCDD(15), benchInstanceCDD(40)
	uc15, uc40 := benchInstanceUCDDCP(15), benchInstanceUCDDCP(40)
	cases := []golden{
		{"AsyncSA/CDD/n15", cdd15, async, 2260, 1410},
		{"AsyncSA/UCDDCP/n15", uc15, async, 2218, 1410},
		{"AsyncSA/CDD/n40", cdd40, async, 20981, 1410},
		{"AsyncSA/UCDDCP/n40", uc40, async, 12062, 0},
		{"GPUSA/CDD/n15", cdd15, gpu, 2321, 0},
		{"GPUSA/UCDDCP/n15", uc15, gpu, 2389, 0},
		{"GPUSA/CDD/n40", cdd40, gpu, 20539, 0},
		{"GPUSA/UCDDCP/n40", uc40, gpu, 11354, 0},
		{"PersistentGPUSA/CDD/n15", cdd15, persistent, 2321, 0},
		{"PersistentGPUSA/CDD/n40", cdd40, persistent, 20539, 0},
		{"SyncSA/CDD/n15", cdd15, sync, 2222, 0},
		{"SyncSA/CDD/n40", cdd40, sync, 16817, 0},
	}
	for _, g := range cases {
		g := g
		t.Run(g.name, func(t *testing.T) {
			best, evals := g.run(t, g.inst)
			if best != g.best {
				t.Errorf("best cost drifted from full-evaluation golden: got %d, want %d", best, g.best)
			}
			if g.evals != 0 && evals != g.evals {
				t.Errorf("evaluation count drifted: got %d, want %d", evals, g.evals)
			}
		})
	}
}
