package parallel

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/dpso"
	"repro/internal/orlib"
	"repro/internal/problem"
	"repro/internal/sa"
	"repro/internal/ucddcp"
)

func smallSA() sa.Config {
	cfg := sa.DefaultConfig()
	cfg.Iterations = 60
	cfg.TempSamples = 50
	return cfg
}

func benchInstanceCDD(n int) *problem.Instance {
	ins, err := orlib.BenchmarkCDD(n, 1, 7)
	if err != nil {
		panic(err)
	}
	return ins[2] // h = 0.6
}

func benchInstanceUCDDCP(n int) *problem.Instance {
	ins, err := orlib.BenchmarkUCDDCP(n, 1, 7)
	if err != nil {
		panic(err)
	}
	return ins[0]
}

// TestDeviceFitnessParityCDD pins the device-side fitness port to the
// host evaluator, bit for bit, over random instances and sequences.
func TestDeviceFitnessParityCDD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(40)
		ins, err := orlib.BenchmarkCDD(n, 1, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		in := ins[rng.Intn(len(ins))]
		seq32 := make([]int32, n)
		seq := make([]int, n)
		for i := range seq {
			seq[i] = i
		}
		rng.Shuffle(n, func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
		for i, v := range seq {
			seq32[i] = int32(v)
		}
		p := make([]int64, n)
		a := make([]int64, n)
		b := make([]int64, n)
		for i, j := range in.Jobs {
			p[i], a[i], b[i] = int64(j.P), int64(j.Alpha), int64(j.Beta)
		}
		comp := make([]int64, n)
		got, _ := fitnessCDDArrays(seq32, p, a, b, in.D, comp)
		want := cdd.OptimizeSequence(in, seq).Cost
		if got != want {
			t.Fatalf("trial %d (n=%d): device fitness %d, host evaluator %d", trial, n, got, want)
		}
	}
}

// TestDeviceFitnessParityUCDDCP does the same for the controllable
// problem.
func TestDeviceFitnessParityUCDDCP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(40)
		ins, err := orlib.BenchmarkUCDDCP(n, 1, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		in := ins[0]
		seq32 := make([]int32, n)
		seq := make([]int, n)
		for i := range seq {
			seq[i] = i
		}
		rng.Shuffle(n, func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
		for i, v := range seq {
			seq32[i] = int32(v)
		}
		p := make([]int64, n)
		m := make([]int64, n)
		a := make([]int64, n)
		b := make([]int64, n)
		gm := make([]int64, n)
		for i, j := range in.Jobs {
			p[i], m[i], a[i], b[i], gm[i] = int64(j.P), int64(j.M), int64(j.Alpha), int64(j.Beta), int64(j.Gamma)
		}
		comp := make([]int64, n)
		aux := make([]int64, n)
		got, _ := fitnessUCDDCPArrays(seq32, p, m, a, b, gm, in.D, comp, aux)
		want := ucddcp.OptimizeSequence(in, seq).Cost
		if got != want {
			t.Fatalf("trial %d (n=%d): device fitness %d, host evaluator %d", trial, n, got, want)
		}
	}
}

// TestAsyncSADeterministicAcrossDrivers: the parallel and serial drivers
// must produce identical results for the same seed (chain i always owns
// stream i).
func TestAsyncSADeterministicAcrossDrivers(t *testing.T) {
	in := benchInstanceCDD(15)
	mk := func(par bool) core.Result {
		return (&AsyncSA{Inst: in, SA: smallSA(), Ens: Ensemble{Chains: 12, Seed: 3}, Parallel: par}).MustSolve()
	}
	a, b := mk(true), mk(false)
	if a.BestCost != b.BestCost {
		t.Errorf("parallel %d != serial %d", a.BestCost, b.BestCost)
	}
	if a.Evaluations != b.Evaluations {
		t.Errorf("evaluations differ: %d vs %d", a.Evaluations, b.Evaluations)
	}
}

func TestAsyncSAFindsPaperExampleOptimum(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	cfg := smallSA()
	cfg.Iterations = 300
	res := (&AsyncSA{Inst: in, SA: cfg, Ens: Ensemble{Chains: 8, Seed: 1}, Parallel: true}).MustSolve()
	eval := core.NewEvaluator(in)
	if got := eval.Cost(res.BestSeq); got != res.BestCost {
		t.Fatalf("reported %d but sequence evaluates to %d", res.BestCost, got)
	}
	// 8 chains × 300 iterations on n=5 must find the global optimum 79
	// (best over all 120 sequences; 81 is the identity sequence's value).
	if res.BestCost > 81 {
		t.Errorf("ensemble best %d worse than the identity-sequence optimum 81", res.BestCost)
	}
}

// TestEnsembleBeatsOneChain: the asynchronous ensemble's reduced best is
// at least as good as its own chain 0 (a pure reduction property).
func TestEnsembleBeatsOneChain(t *testing.T) {
	in := benchInstanceCDD(25)
	one := (&AsyncSA{Inst: in, SA: smallSA(), Ens: Ensemble{Chains: 1, Seed: 9}, Parallel: false}).MustSolve()
	many := (&AsyncSA{Inst: in, SA: smallSA(), Ens: Ensemble{Chains: 16, Seed: 9}, Parallel: true}).MustSolve()
	if many.BestCost > one.BestCost {
		t.Errorf("16-chain ensemble (%d) worse than its own first chain (%d)", many.BestCost, one.BestCost)
	}
}

// TestSyncSARunsAndCollapses verifies the synchronous driver works and
// reproduces the premature-convergence observation of the paper: after
// broadcasting, all chains share one state, so post-broadcast diversity
// is zero.
func TestSyncSARunsAndCollapses(t *testing.T) {
	in := benchInstanceCDD(20)
	res := (&SyncSA{Inst: in, SA: smallSA(), Ens: Ensemble{Chains: 8, Seed: 5},
		MarkovLen: 5, Levels: 10, Parallel: true}).MustSolve()
	if !problem.IsPermutation(res.BestSeq) {
		t.Fatal("SyncSA best is not a permutation")
	}
	eval := core.NewEvaluator(in)
	if got := eval.Cost(res.BestSeq); got != res.BestCost {
		t.Errorf("reported %d, evaluates to %d", res.BestCost, got)
	}
	if res.Iterations != 50 {
		t.Errorf("iterations = %d, want 50", res.Iterations)
	}
}

func TestDiversity(t *testing.T) {
	a := []int{0, 1, 2, 3}
	b := []int{3, 2, 1, 0}
	if d := Diversity([][]int{a, a}); d != 0 {
		t.Errorf("identical diversity = %v", d)
	}
	if d := Diversity([][]int{a, b}); d != 4 {
		t.Errorf("opposite diversity = %v, want 4", d)
	}
	if d := Diversity([][]int{a}); d != 0 {
		t.Errorf("single-member diversity = %v", d)
	}
}

func TestParallelDPSODeterministicAcrossDrivers(t *testing.T) {
	in := benchInstanceCDD(15)
	cfg := dpso.DefaultConfig()
	cfg.Iterations = 40
	mk := func(par bool) core.Result {
		return (&ParallelDPSO{Inst: in, PSO: cfg, Ens: Ensemble{Chains: 10, Seed: 4}, Parallel: par}).MustSolve()
	}
	a, b := mk(true), mk(false)
	if a.BestCost != b.BestCost {
		t.Errorf("parallel %d != serial %d", a.BestCost, b.BestCost)
	}
}

func TestParallelDPSOValidResult(t *testing.T) {
	in := benchInstanceUCDDCP(12)
	cfg := dpso.DefaultConfig()
	cfg.Iterations = 30
	res := (&ParallelDPSO{Inst: in, PSO: cfg, Ens: Ensemble{Chains: 8, Seed: 2}, Parallel: true}).MustSolve()
	if !problem.IsPermutation(res.BestSeq) {
		t.Fatal("best is not a permutation")
	}
	eval := core.NewEvaluator(in)
	if got := eval.Cost(res.BestSeq); got != res.BestCost {
		t.Errorf("reported %d, evaluates to %d", res.BestCost, got)
	}
}

func TestGPUSAOnPaperExample(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	cfg := smallSA()
	cfg.Iterations = 200
	g := &GPUSA{Inst: in, SA: cfg, Grid: 2, Block: 16, Seed: 1}
	res := g.MustSolve()
	if !problem.IsPermutation(res.BestSeq) {
		t.Fatal("GPU best is not a permutation")
	}
	eval := core.NewEvaluator(in)
	if got := eval.Cost(res.BestSeq); got != res.BestCost {
		t.Fatalf("reported %d but sequence evaluates to %d", res.BestCost, got)
	}
	if res.BestCost > 81 {
		t.Errorf("GPU ensemble best %d, expected ≤ 81", res.BestCost)
	}
	if res.SimSeconds <= 0 {
		t.Error("no simulated device time recorded")
	}
	if res.Evaluations < int64(32*200) {
		t.Errorf("evaluations = %d, expected at least 6400", res.Evaluations)
	}
}

func TestGPUSACooperativeMatchesSequential(t *testing.T) {
	// The cooperative (barrier) and sequential execution modes must give
	// identical optimization results — only host timing differs.
	in := benchInstanceCDD(12)
	cfg := smallSA()
	cfg.Iterations = 40
	a := (&GPUSA{Inst: in, SA: cfg, Grid: 2, Block: 8, Seed: 6, Cooperative: false}).MustSolve()
	b := (&GPUSA{Inst: in, SA: cfg, Grid: 2, Block: 8, Seed: 6, Cooperative: true}).MustSolve()
	if a.BestCost != b.BestCost {
		t.Errorf("sequential %d != cooperative %d", a.BestCost, b.BestCost)
	}
}

func TestGPUSAOnUCDDCP(t *testing.T) {
	in := benchInstanceUCDDCP(15)
	cfg := smallSA()
	cfg.Iterations = 80
	res := (&GPUSA{Inst: in, SA: cfg, Grid: 2, Block: 16, Seed: 3}).MustSolve()
	eval := core.NewEvaluator(in)
	if got := eval.Cost(res.BestSeq); got != res.BestCost {
		t.Fatalf("reported %d but sequence evaluates to %d", res.BestCost, got)
	}
}

func TestGPUDPSOValidAndConsistent(t *testing.T) {
	in := benchInstanceCDD(12)
	cfg := dpso.DefaultConfig()
	cfg.Iterations = 40
	res := (&GPUDPSO{Inst: in, PSO: cfg, Grid: 2, Block: 8, Seed: 5}).MustSolve()
	if !problem.IsPermutation(res.BestSeq) {
		t.Fatal("best is not a permutation")
	}
	eval := core.NewEvaluator(in)
	if got := eval.Cost(res.BestSeq); got != res.BestCost {
		t.Fatalf("reported %d but sequence evaluates to %d", res.BestCost, got)
	}
	if res.SimSeconds <= 0 {
		t.Error("no simulated device time recorded")
	}
}

// TestGPUSASimTimeGrowsWithIterations checks the Figure-11 shape on the
// real pipeline: 4× the generations ≈ 4× the simulated runtime.
func TestGPUSASimTimeGrowsWithIterations(t *testing.T) {
	in := benchInstanceCDD(20)
	cfg := smallSA()
	timeFor := func(iters int) float64 {
		c := cfg
		c.Iterations = iters
		res := (&GPUSA{Inst: in, SA: c, Grid: 2, Block: 16, Seed: 8}).MustSolve()
		return res.SimSeconds
	}
	t1, t4 := timeFor(25), timeFor(100)
	if t4 <= t1 {
		t.Fatalf("sim time not increasing: %g vs %g", t1, t4)
	}
	if ratio := t4 / t1; ratio < 2 || ratio > 8 {
		t.Errorf("4x iterations changed sim time by %.2fx, want ≈ 4x", ratio)
	}
}

// TestGPUSASimTimeGrowsWithThreads checks the other Figure-11 axis: more
// threads (beyond SM capacity) increase simulated runtime.
func TestGPUSASimTimeGrowsWithThreads(t *testing.T) {
	in := benchInstanceCDD(20)
	cfg := smallSA()
	cfg.Iterations = 25
	small := (&GPUSA{Inst: in, SA: cfg, Grid: 2, Block: 32, Seed: 8}).MustSolve()
	big := (&GPUSA{Inst: in, SA: cfg, Grid: 8, Block: 192, Seed: 8}).MustSolve()
	if big.SimSeconds <= small.SimSeconds {
		t.Errorf("24x threads did not increase sim time: %g vs %g", small.SimSeconds, big.SimSeconds)
	}
}

func TestBestOfAcrossEngines(t *testing.T) {
	in := benchInstanceCDD(10)
	cfg := smallSA()
	cfg.Iterations = 40
	idx, best, err := core.BestOf(
		context.Background(), in,
		&AsyncSA{Label: "cpu", SA: cfg, Ens: Ensemble{Chains: 4, Seed: 1}},
		&GPUSA{Label: "gpu", SA: cfg, Grid: 1, Block: 8, Seed: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 || idx > 1 {
		t.Errorf("index %d", idx)
	}
	eval := core.NewEvaluator(in)
	if got := eval.Cost(best.BestSeq); got != best.BestCost {
		t.Errorf("winner reported %d, evaluates to %d", best.BestCost, got)
	}
}

// dpsoCfg builds a DPSO config with the given iteration budget.
func dpsoCfg(iters int) dpso.Config {
	cfg := dpso.DefaultConfig()
	cfg.Iterations = iters
	return cfg
}
