package parallel

import (
	"context"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/cudasim"
	"repro/internal/dpso"
	"repro/internal/obs"
	"repro/internal/perm"
	"repro/internal/problem"
)

// GPUDPSO is the paper's GPU implementation of the Discrete PSO: one
// particle per simulated CUDA thread, with the same kernel pipeline
// structure as the SA version —
//
//	update     velocity swap + cognition/social crossovers (Equation 3)
//	fitness    the O(n) linear algorithm on the new positions
//	pbest      personal-best refresh (the acceptance analogue)
//	reduce     packed atomic-min over personal bests
//	broadcast  (ShareSwarmBest only) the winner publishes its pbest
//
// The paper parallelizes DPSO "in the asynchronous manner, as explained
// for SA" — i.e. the threads run without communicating, so each
// particle's view of the swarm best g(t) in Equation (3) degenerates to
// its own personal best; the reduction kernel only tracks the global
// minimum for reporting. That is the default here, and it reproduces the
// paper's central DPSO finding (quality collapses as n grows because the
// social component carries no cross-thread information). Setting
// ShareSwarmBest broadcasts the true reduced swarm best back to all
// particles each generation — the ablation showing how much of the
// paper's DPSO deficit is caused by the asynchronous design.
type GPUDPSO struct {
	// Label names the solver in result tables.
	Label string
	// Inst is the instance to optimize (CDD or UCDDCP).
	Inst *problem.Instance
	// PSO holds the particle parameters; Swarm is ignored (the launch
	// geometry is the swarm).
	PSO dpso.Config
	// Grid and Block default to the paper's 4 × 192.
	Grid, Block int
	// Seed derives all per-thread RNG streams.
	Seed uint64
	// Dev is the device to run on; nil creates a fresh simulated GT 560M.
	Dev *cudasim.Device
	// Cooperative selects barrier-backed shared-memory staging.
	Cooperative bool
	// ShareSwarmBest broadcasts the reduced swarm best to every particle
	// each generation instead of the paper's communication-free
	// asynchronous scheme.
	ShareSwarmBest bool
	// PTimeAccess selects the processing-time read mode of the fitness
	// kernel (see PAccess).
	PTimeAccess PAccess
	// Budget bounds the run (generation override and/or deadline; the
	// deadline applies at host-generation granularity).
	Budget core.Budget
	// Progress receives a snapshot after every reduction kernel. Each
	// snapshot costs a device→host copy of the winning sequence, so leave
	// it nil for timing runs.
	Progress core.ProgressFunc
	// Metrics selects the instrumentation level (off by default). At
	// MetricsKernels every launch is bracketed with device events, so the
	// per-phase metrics carry simulated seconds alongside host wall time.
	Metrics core.MetricsLevel
}

// Name implements core.Solver.
func (g *GPUDPSO) Name() string {
	if g.Label != "" {
		return g.Label
	}
	return "GPU-DPSO"
}

// Solve runs the full pipeline and returns the reduced best solution.
// Cancellation is checked once per host generation: a done context skips
// the remaining generations and returns the reduced swarm best so far
// with Interrupted set (valid from generation zero, because the init
// kernel folds every particle's initial cost into the reduction).
func (g *GPUDPSO) Solve(ctx context.Context, inst *problem.Instance) (core.Result, error) {
	if inst == nil {
		inst = g.Inst
	}
	grid, block := g.Grid, g.Block
	if grid <= 0 {
		grid = 4
	}
	if block <= 0 {
		block = 192
	}
	dev := g.Dev
	if dev == nil {
		dev = cudasim.NewDevice(cudasim.GT560M())
	}
	cfg := g.PSO.Normalized()
	if g.Budget.Iterations > 0 {
		cfg.Iterations = g.Budget.Iterations
	}
	ctx, cancel := g.Budget.Apply(ctx)
	defer cancel()
	n := inst.GenomeLen()
	start := time.Now()
	simStart := dev.SimTime()

	pl := newPipeline(dev, inst, grid, block, g.Cooperative, g.Seed)
	pl.setPAccess(g.PTimeAccess)
	N := pl.threads

	// Device state: positions, personal bests, swarm best, costs.
	posBuf := cudasim.NewBufferFrom(dev, pl.randomRows())
	costBuf := cudasim.NewBuffer[int64](dev, N)
	pbestBuf := cudasim.NewBuffer[int32](dev, N*n)
	pbestCostBuf := cudasim.NewBuffer[int64](dev, N)
	gbestBuf := cudasim.NewBuffer[int32](dev, n)
	packedBuf := cudasim.NewBufferFrom(dev, []int64{math.MaxInt64})

	// Host-side per-thread operator scratch (local memory of the update
	// kernel: crossover buffers and the used-markers of the order
	// crossovers).
	ops := make([]*perm.Ops, N)
	buf1 := make([][]int, N)
	buf2 := make([][]int, N)
	buf3 := make([][]int, N)
	for t := 0; t < N; t++ {
		ops[t] = perm.NewOps(n)
		buf1[t] = make([]int, n)
		buf2[t] = make([]int, n)
		buf3[t] = make([]int, n)
	}

	col := obs.NewCollector(g.Metrics)
	var evalCount int64
	// Initial fitness; personal bests = initial positions.
	if err := gpuPhased(col, dev, obs.PhaseFitness, func() error {
		return pl.fitnessKernel(posBuf, costBuf)
	}); err != nil {
		return core.Result{}, err
	}
	evalCount += int64(N)
	col.AddFullEvals(int64(N))
	if err := gpuPhased(col, dev, obs.PhaseInit, func() error {
		return dev.Launch(pl.launchCfg("init"), func(c *cudasim.Ctx) {
			tid := c.GlobalThreadID()
			v := costBuf.Load(c, tid)
			pbestCostBuf.Store(c, tid, v)
			copy(pbestBuf.Raw()[tid*n:(tid+1)*n], posBuf.Raw()[tid*n:(tid+1)*n])
			c.ChargeGlobal(2*n, true)
			cudasim.AtomicMinInt64(c, packedBuf, 0, v<<tidBits|int64(tid))
		})
	}); err != nil {
		return core.Result{}, err
	}
	broadcast := func() error {
		if !g.ShareSwarmBest {
			return nil
		}
		return gpuPhased(col, dev, obs.PhaseBroadcast, func() error {
			return dev.Launch(pl.launchCfg("broadcast"), func(c *cudasim.Ctx) {
				tid := c.GlobalThreadID()
				winner := int(cudasim.AtomicLoadInt64(c, packedBuf, 0) & (1<<tidBits - 1))
				if tid == winner {
					copy(gbestBuf.Raw(), pbestBuf.Raw()[tid*n:(tid+1)*n])
					c.ChargeGlobal(2*n, true)
				}
			})
		})
	}
	if err := broadcast(); err != nil {
		return core.Result{}, err
	}

	interrupted := false
	for it := 0; it < cfg.Iterations; it++ {
		if ctx.Err() != nil {
			interrupted = true
			col.SetInterruptedAt("iteration")
			break
		}
		// Kernel 1: position update per Equation (3). Reads the swarm
		// best published by the previous broadcast (asynchronous: all
		// particles see the same, possibly one-generation-old gbest).
		if err := gpuPhased(col, dev, obs.PhaseUpdate, func() error {
			return dev.Launch(pl.launchCfg("update"), func(c *cudasim.Ctx) {
				tid := c.GlobalThreadID()
				rng := pl.rngs[tid]
				pos := posBuf.Raw()[tid*n : (tid+1)*n]
				pbest := pbestBuf.Raw()[tid*n : (tid+1)*n]
				// Asynchronous (paper) mode: no cross-thread state — g(t)
				// collapses to the particle's own best.
				gbest := pbest
				if g.ShareSwarmBest {
					gbest = gbestBuf.Raw()
				}
				c.ChargeGlobal(3*n, true)

				// λ = w ⊕ F1(pos): swap. a/b ping-pong so crossover source and
				// destination never alias.
				a, b := buf1[tid], buf2[tid]
				cur := a
				for i, v := range pos {
					cur[i] = int(v)
				}
				if rng.Float64() < cfg.W {
					perm.Swap(rng, cur)
				}
				// δ = c1 ⊕ F2(λ, pbest): one-point crossover.
				if rng.Float64() < cfg.C1 {
					pb := buf3[tid]
					for i, v := range pbest {
						pb[i] = int(v)
					}
					ops[tid].OnePoint(rng, b, cur, pb)
					cur = b
				}
				// pos' = c2 ⊕ F3(δ, gbest): two-point crossover.
				if rng.Float64() < cfg.C2 {
					gb := buf3[tid]
					for i, v := range gbest {
						gb[i] = int(v)
					}
					dst := a
					if len(cur) > 0 && &cur[0] == &a[0] {
						dst = b
					}
					ops[tid].TwoPoint(rng, dst, cur, gb)
					cur = dst
				}
				for i, v := range cur {
					pos[i] = int32(v)
				}
				c.ChargeGlobal(n, true)
				// Each order crossover is ~3 passes over the sequence (copy
				// the donor segment, scan the other parent, maintain the
				// used-markers in local memory), plus the swap and the final
				// write-back conversion — far heavier than SA's Pert-element
				// shuffle, which is why the paper's Figures 14/16 show DPSO
				// consistently slower than SA at equal budgets.
				c.ChargeArith(20 * n)
			})
		}); err != nil {
			return core.Result{}, err
		}

		// Kernel 2: fitness of the new positions.
		if err := gpuPhased(col, dev, obs.PhaseFitness, func() error {
			return pl.fitnessKernel(posBuf, costBuf)
		}); err != nil {
			return core.Result{}, err
		}
		evalCount += int64(N)
		col.AddFullEvals(int64(N))

		// Kernel 3: personal-best refresh (the acceptance analogue; every
		// refresh also improves the particle's best-so-far).
		if err := gpuPhased(col, dev, obs.PhasePBest, func() error {
			return dev.Launch(pl.launchCfg("pbest"), func(c *cudasim.Ctx) {
				tid := c.GlobalThreadID()
				v := costBuf.Load(c, tid)
				if v < pbestCostBuf.Load(c, tid) {
					col.AddAccepts(1)
					col.AddImprovements(1)
					pbestCostBuf.Store(c, tid, v)
					copy(pbestBuf.Raw()[tid*n:(tid+1)*n], posBuf.Raw()[tid*n:(tid+1)*n])
					c.ChargeGlobal(2*n, true)
				}
			})
		}); err != nil {
			return core.Result{}, err
		}

		// Kernel 4: reduction, then gbest broadcast.
		if err := gpuPhased(col, dev, obs.PhaseReduce, func() error {
			return pl.reduceKernel(pbestCostBuf, packedBuf)
		}); err != nil {
			return core.Result{}, err
		}
		if err := broadcast(); err != nil {
			return core.Result{}, err
		}
		if g.Progress != nil {
			seq, cost := pl.winner(packedBuf, pbestBuf)
			g.Progress(core.Snapshot{BestSeq: seq, BestCost: cost, Evaluations: evalCount, Elapsed: time.Since(start)})
		}
		dev.Synchronize()
	}

	// The init kernel already folded every particle's initial cost into
	// packedBuf, so the reduction is valid even on a zero-generation run.
	bestSeq, bestCost := pl.winner(packedBuf, pbestBuf)
	res := core.Result{
		BestSeq:     bestSeq,
		BestCost:    bestCost,
		Iterations:  cfg.Iterations,
		Evaluations: evalCount,
		Elapsed:     time.Since(start),
		SimSeconds:  dev.SimTime() - simStart,
		Interrupted: interrupted,
	}
	if col.Enabled() {
		res.Metrics = col.Snapshot(evalCount, N, 1, res.Elapsed)
	}
	return res, nil
}

// MustSolve is the context-free convenience form of Solve: background
// context, the bound instance, panic on error.
func (g *GPUDPSO) MustSolve() core.Result { return mustSolve(g, g.Inst) }
