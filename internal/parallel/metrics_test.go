package parallel

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dpso"
)

// TestMetricsOffByDefault: the zero-value MetricsLevel must leave
// Result.Metrics nil on every driver — collection is strictly opt-in.
func TestMetricsOffByDefault(t *testing.T) {
	ctx := context.Background()
	in := benchInstanceCDD(15)
	solvers := map[string]core.Solver{
		"AsyncSA":         &AsyncSA{SA: goldenSA(), Ens: Ensemble{Chains: 4, Seed: 3}, Parallel: true},
		"SyncSA":          &SyncSA{SA: goldenSA(), Ens: Ensemble{Chains: 4, Seed: 3}, MarkovLen: 5, Levels: 6, Parallel: true},
		"GPUSA":           &GPUSA{SA: goldenSA(), Grid: 1, Block: 8, Seed: 6},
		"PersistentGPUSA": &PersistentGPUSA{SA: goldenSA(), Grid: 1, Block: 8, Seed: 6},
		"ParallelDPSO":    &ParallelDPSO{PSO: dpso.Config{Iterations: 30}, Ens: Ensemble{Chains: 4, Seed: 3}, Parallel: true},
		"GPUDPSO":         &GPUDPSO{PSO: dpso.Config{Iterations: 30}, Grid: 1, Block: 8, Seed: 6},
	}
	for name, s := range solvers {
		r, err := s.Solve(ctx, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Metrics != nil {
			t.Errorf("%s: Metrics non-nil with collection off", name)
		}
	}
}

// TestMetricsEvaluationsDeterministicAcrossWorkers: the metrics counters
// derive from the same fixed-seed trajectories as the results, so they
// must be bit-identical no matter how the chains are scheduled onto
// workers — and must match the engine's own evaluation count (which is
// pinned to the golden 1410 in golden_test.go).
func TestMetricsEvaluationsDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	in := benchInstanceCDD(15)
	run := func(parallelOK bool, workers int) *core.Metrics {
		r, err := (&AsyncSA{
			SA: goldenSA(), Ens: Ensemble{Chains: 10, Seed: 3, Workers: workers},
			Parallel: parallelOK, Metrics: core.MetricsCounters,
		}).Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if r.Metrics == nil {
			t.Fatal("Metrics nil with counters level on")
		}
		if r.Metrics.Evaluations != r.Evaluations {
			t.Fatalf("Metrics.Evaluations %d != Result.Evaluations %d", r.Metrics.Evaluations, r.Evaluations)
		}
		return r.Metrics
	}
	base := run(false, 0)
	if base.Evaluations != 1410 {
		t.Errorf("serial Evaluations = %d, want the golden 1410", base.Evaluations)
	}
	if got := base.DeltaEvaluations + base.FullEvaluations; got != base.Evaluations {
		t.Errorf("delta %d + full %d = %d, want Evaluations %d",
			base.DeltaEvaluations, base.FullEvaluations, got, base.Evaluations)
	}
	if base.Acceptances == 0 || base.Improvements == 0 {
		t.Errorf("counters empty: accepts=%d improvements=%d", base.Acceptances, base.Improvements)
	}
	for _, workers := range []int{1, 2, 7} {
		m := run(true, workers)
		if m.Evaluations != base.Evaluations ||
			m.DeltaEvaluations != base.DeltaEvaluations ||
			m.FullEvaluations != base.FullEvaluations ||
			m.Acceptances != base.Acceptances ||
			m.Improvements != base.Improvements {
			t.Errorf("Workers=%d drifted: %+v vs serial %+v", workers, m, base)
		}
	}
}

// TestMetricsAgreeAcrossGPUSAEngines: the four-kernel and the persistent
// pipelines run the same per-thread trajectory, so their counters must be
// identical.
func TestMetricsAgreeAcrossGPUSAEngines(t *testing.T) {
	ctx := context.Background()
	in := benchInstanceCDD(15)
	kernels, err := (&GPUSA{SA: goldenSA(), Grid: 2, Block: 8, Seed: 6,
		Metrics: core.MetricsCounters}).Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	persistent, err := (&PersistentGPUSA{SA: goldenSA(), Grid: 2, Block: 8, Seed: 6,
		Metrics: core.MetricsCounters}).Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	km, pm := kernels.Metrics, persistent.Metrics
	if km == nil || pm == nil {
		t.Fatal("Metrics nil with counters level on")
	}
	if km.Evaluations != pm.Evaluations {
		t.Errorf("Evaluations differ: four-kernel %d, persistent %d", km.Evaluations, pm.Evaluations)
	}
	if km.Acceptances != pm.Acceptances || km.Improvements != pm.Improvements {
		t.Errorf("accept counters differ: four-kernel %d/%d, persistent %d/%d",
			km.Acceptances, km.Improvements, pm.Acceptances, pm.Improvements)
	}
	if km.DeltaEvaluations != pm.DeltaEvaluations || km.FullEvaluations != pm.FullEvaluations {
		t.Errorf("eval-path counters differ: four-kernel %d/%d, persistent %d/%d",
			km.DeltaEvaluations, km.FullEvaluations, pm.DeltaEvaluations, pm.FullEvaluations)
	}
}

// TestMetricsKernelPhases: at the kernels level, every phase a driver
// runs must show up with a positive count and nonzero host wall time, and
// GPU drivers must carry simulated device seconds on their kernel phases.
func TestMetricsKernelPhases(t *testing.T) {
	ctx := context.Background()
	in := benchInstanceCDD(15)
	cases := []struct {
		name      string
		solver    core.Solver
		phases    []string
		simPhases []string // phases that must also report device seconds
	}{
		{
			"AsyncSA",
			&AsyncSA{SA: goldenSA(), Ens: Ensemble{Chains: 4, Seed: 3}, Parallel: true, Metrics: core.MetricsKernels},
			[]string{"t0", "chain", "reduce"},
			nil,
		},
		{
			"SyncSA",
			&SyncSA{SA: goldenSA(), Ens: Ensemble{Chains: 4, Seed: 3}, MarkovLen: 5, Levels: 6, Parallel: true, Metrics: core.MetricsKernels},
			[]string{"t0", "chain", "reduce", "broadcast"},
			nil,
		},
		{
			"GPUSA",
			&GPUSA{SA: goldenSA(), Grid: 1, Block: 8, Seed: 6, Metrics: core.MetricsKernels},
			[]string{"t0", "init", "perturb", "fitness", "accept", "reduce"},
			[]string{"perturb", "fitness", "accept", "reduce"},
		},
		{
			"PersistentGPUSA",
			&PersistentGPUSA{SA: goldenSA(), Grid: 1, Block: 8, Seed: 6, Metrics: core.MetricsKernels},
			[]string{"t0", "persistent"},
			[]string{"persistent"},
		},
		{
			"ParallelDPSO",
			&ParallelDPSO{PSO: dpso.Config{Iterations: 30}, Ens: Ensemble{Chains: 4, Seed: 3}, Parallel: true, Metrics: core.MetricsKernels},
			[]string{"init", "update", "reduce"},
			nil,
		},
		{
			"GPUDPSO",
			&GPUDPSO{PSO: dpso.Config{Iterations: 30}, Grid: 1, Block: 8, Seed: 6, Metrics: core.MetricsKernels},
			[]string{"init", "update", "fitness", "pbest", "reduce"},
			[]string{"update", "fitness", "reduce"},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r, err := c.solver.Solve(ctx, in)
			if err != nil {
				t.Fatal(err)
			}
			m := r.Metrics
			if m == nil {
				t.Fatal("Metrics nil with kernels level on")
			}
			if m.Level != core.MetricsKernels {
				t.Errorf("Level = %v, want kernels", m.Level)
			}
			for _, name := range c.phases {
				ph := m.Phase(name)
				if ph.Count == 0 {
					t.Errorf("phase %q never counted; have %+v", name, m.Phases)
					continue
				}
				if ph.Wall <= 0 {
					t.Errorf("phase %q has zero wall time over %d runs", name, ph.Count)
				}
			}
			for _, name := range c.simPhases {
				if ph := m.Phase(name); ph.Sim <= 0 {
					t.Errorf("GPU phase %q reports no simulated device seconds", name)
				}
			}
		})
	}
}

// TestMetricsEnsembleAggregates: the ensemble runtime must report worker
// busy time and a utilization in (0, 1].
func TestMetricsEnsembleAggregates(t *testing.T) {
	r, err := (&AsyncSA{
		SA: goldenSA(), Ens: Ensemble{Chains: 8, Seed: 3, Workers: 2},
		Parallel: true, Metrics: core.MetricsCounters,
	}).Solve(context.Background(), benchInstanceCDD(15))
	if err != nil {
		t.Fatal(err)
	}
	m := r.Metrics
	if m == nil {
		t.Fatal("Metrics nil")
	}
	if m.Chains != 8 || m.Workers != 2 {
		t.Errorf("geometry: chains=%d workers=%d, want 8/2", m.Chains, m.Workers)
	}
	if m.WorkerBusy <= 0 {
		t.Error("no worker busy time recorded")
	}
	if m.Utilization <= 0 || m.Utilization > 1 {
		t.Errorf("utilization %f outside (0,1]", m.Utilization)
	}
	if m.InterruptedAt != "" {
		t.Errorf("uninterrupted run reports boundary %q", m.InterruptedAt)
	}
}

// TestMetricsInterruptedBoundary: a cancelled run must name the boundary
// it stopped at.
func TestMetricsInterruptedBoundary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := (&AsyncSA{
		SA: goldenSA(), Ens: Ensemble{Chains: 8, Seed: 3},
		Parallel: true, Metrics: core.MetricsCounters,
	}).Solve(ctx, benchInstanceCDD(15))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Interrupted {
		t.Fatal("cancelled run not marked Interrupted")
	}
	if r.Metrics == nil || r.Metrics.InterruptedAt != "chain" {
		t.Errorf("InterruptedAt = %v, want \"chain\"", r.Metrics)
	}
}

// BenchmarkMetricsLevels measures the instrumentation overhead on the
// CPU hot path. The metrics-off run must stay within a few percent of the
// pre-instrumentation baseline (nil collector, plain int64 chain
// counters, no timestamps).
func BenchmarkMetricsLevels(b *testing.B) {
	in := benchInstanceCDD(40)
	for _, lvl := range []core.MetricsLevel{core.MetricsOff, core.MetricsCounters, core.MetricsKernels} {
		b.Run(lvl.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := (&AsyncSA{
					SA: goldenSA(), Ens: Ensemble{Chains: 8, Seed: 3},
					Parallel: false, Metrics: lvl,
				}).Solve(context.Background(), in)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
