package parallel

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/dpso"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/xrand"
)

// ParallelDPSO drives the Discrete PSO with one particle per ensemble
// member. By default it mirrors the paper's asynchronous scheme — the
// particles never communicate, so each one's swarm best is its own
// personal best and the reduction only tracks the reported minimum; with
// ShareSwarmBest every generation's reduced best is broadcast to all
// particles (see GPUDPSO for the rationale). With Parallel=false the
// identical swarm is executed on one goroutine as the CPU-time baseline.
type ParallelDPSO struct {
	Label string
	// Inst is the default instance, used when Solve receives nil.
	Inst *problem.Instance
	// PSO holds the particle parameters; its Swarm field is ignored (the
	// ensemble size is the swarm size).
	PSO dpso.Config
	Ens Ensemble
	// Parallel selects the multi-goroutine driver.
	Parallel bool
	// ShareSwarmBest broadcasts the true swarm best each generation
	// instead of the paper's communication-free scheme.
	ShareSwarmBest bool
	// Budget bounds the run (generation override and/or deadline; the
	// deadline applies at generation granularity).
	Budget core.Budget
	// Progress receives a snapshot whenever the swarm best improves.
	Progress core.ProgressFunc
	// Metrics selects the instrumentation level (off by default).
	Metrics core.MetricsLevel
}

// Name implements core.Solver.
func (d *ParallelDPSO) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return "ParallelDPSO"
}

// Solve runs the configured generations. Results are deterministic for a
// fixed seed regardless of Parallel: particle i always consumes RNG
// stream i and gbest ties resolve to the lowest particle index.
// Cancellation is checked at generation granularity: a done context skips
// the remaining generations and returns the swarm best so far (valid from
// generation zero, since initialization evaluates every particle).
func (d *ParallelDPSO) Solve(ctx context.Context, inst *problem.Instance) (core.Result, error) {
	if inst == nil {
		inst = d.Inst
	}
	ens := d.Ens.normalized()
	cfg := d.PSO.Normalized()
	if d.Budget.Iterations > 0 {
		cfg.Iterations = d.Budget.Iterations
	}
	ctx, cancel := d.Budget.Apply(ctx)
	defer cancel()
	start := time.Now()
	n := inst.GenomeLen()

	col := obs.NewCollector(d.Metrics)
	particles := make([]*dpso.Particle, ens.Chains)
	evals := make([]core.Evaluator, ens.Chains)
	phased(col, obs.PhaseInit, func() {
		runOverWorkers(ens.Chains, ens.Workers, d.Parallel, func(i int) {
			evals[i] = core.NewEvaluator(inst)
			particles[i] = dpso.NewParticle(cfg, evals[i], xrand.NewStream(ens.Seed, uint64(i)))
		})
	})
	col.AddFullEvals(int64(ens.Chains))

	// The single-goroutine driver scores the whole population per
	// generation in one batched pass over the SoA snapshot instead of
	// ens.Chains interface calls; per-particle RNG streams and the
	// snapshot/pbest reference rules make the reordering (all moves, then
	// all evaluations, then all adoptions) trajectory-identical to the
	// worker path.
	var batch *core.BatchEvaluator
	var seqs [][]int
	var costs []int64
	if !d.Parallel {
		batch = core.NewBatchEvaluator(inst)
		seqs = make([][]int, ens.Chains)
		costs = make([]int64, ens.Chains)
	}

	red := newReducer(ens.Chains)
	m := newMeter(d.Progress, start, red)
	gbest := make([]int, n)
	gbestCost := int64(1) << 62
	reduce := func() {
		for i, p := range particles {
			if seq, cost := p.Best(); cost < gbestCost {
				gbestCost = cost
				copy(gbest, seq)
				if red.record(i, seq, cost, 0) {
					m.improved()
				}
			}
		}
	}
	phased(col, obs.PhaseReduce, reduce)

	iters := cfg.Iterations
	// In shared mode, particles read the previous generation's gbest
	// (recomputed only after the generation barrier), mirroring the
	// update → fitness → reduce → broadcast kernel sequence of the GPU
	// implementation. In the default asynchronous mode each particle's
	// swarm best is its own personal best.
	gbestSnapshot := make([]int, n)
	generations := 0
	interrupted := false
	for g := 0; g < iters; g++ {
		if ctx.Err() != nil {
			interrupted = true
			col.SetInterruptedAt("generation")
			break
		}
		copy(gbestSnapshot, gbest)
		phased(col, obs.PhaseUpdate, func() {
			if !d.Parallel {
				for i, p := range particles {
					ref := gbestSnapshot
					if !d.ShareSwarmBest {
						ref, _ = p.Best()
					}
					seqs[i] = p.Move(ref)
				}
				batch.CostSeqs(seqs, costs)
				for i, p := range particles {
					if col.Enabled() {
						_, before := p.Best()
						p.Adopt(costs[i])
						// A personal-best refresh is DPSO's acceptance
						// analogue, and it always improves the particle's
						// best-so-far.
						if _, after := p.Best(); after < before {
							col.AddAccepts(1)
							col.AddImprovements(1)
						}
					} else {
						p.Adopt(costs[i])
					}
				}
				return
			}
			runOverWorkers(ens.Chains, ens.Workers, true, func(i int) {
				ref := gbestSnapshot
				if !d.ShareSwarmBest {
					ref, _ = particles[i].Best()
				}
				if col.Enabled() {
					_, before := particles[i].Best()
					particles[i].Update(ref, evals[i])
					// A personal-best refresh is DPSO's acceptance
					// analogue, and it always improves the particle's
					// best-so-far.
					if _, after := particles[i].Best(); after < before {
						col.AddAccepts(1)
						col.AddImprovements(1)
					}
				} else {
					particles[i].Update(ref, evals[i])
				}
			})
		})
		col.AddFullEvals(int64(ens.Chains))
		phased(col, obs.PhaseReduce, reduce)
		generations++
	}

	res := core.Result{
		BestSeq:     gbest,
		BestCost:    gbestCost,
		Iterations:  iters,
		Evaluations: int64(ens.Chains) * int64(generations+1),
		Elapsed:     time.Since(start),
		Interrupted: interrupted,
	}
	if col.Enabled() {
		workers := 1
		if d.Parallel {
			workers = ens.Workers
		}
		res.Metrics = col.Snapshot(res.Evaluations, ens.Chains, workers, res.Elapsed)
	}
	m.final(res)
	return res, nil
}

// MustSolve is the context-free convenience form of Solve: background
// context, the bound instance, panic on error.
func (d *ParallelDPSO) MustSolve() core.Result { return mustSolve(d, d.Inst) }
