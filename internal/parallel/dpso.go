package parallel

import (
	"time"

	"repro/internal/core"
	"repro/internal/dpso"
	"repro/internal/problem"
	"repro/internal/xrand"
)

// ParallelDPSO drives the Discrete PSO with one particle per ensemble
// member. By default it mirrors the paper's asynchronous scheme — the
// particles never communicate, so each one's swarm best is its own
// personal best and the reduction only tracks the reported minimum; with
// ShareSwarmBest every generation's reduced best is broadcast to all
// particles (see GPUDPSO for the rationale). With Parallel=false the
// identical swarm is executed on one goroutine as the CPU-time baseline.
type ParallelDPSO struct {
	Label string
	Inst  *problem.Instance
	// PSO holds the particle parameters; its Swarm field is ignored (the
	// ensemble size is the swarm size).
	PSO dpso.Config
	Ens Ensemble
	// Parallel selects the multi-goroutine driver.
	Parallel bool
	// ShareSwarmBest broadcasts the true swarm best each generation
	// instead of the paper's communication-free scheme.
	ShareSwarmBest bool
}

// Name implements core.Solver.
func (d *ParallelDPSO) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return "ParallelDPSO"
}

// Solve runs the configured generations. Results are deterministic for a
// fixed seed regardless of Parallel: particle i always consumes RNG
// stream i and gbest ties resolve to the lowest particle index.
func (d *ParallelDPSO) Solve() core.Result {
	ens := d.Ens.normalized()
	cfg := d.PSO.Normalized()
	start := time.Now()
	n := d.Inst.N()

	particles := make([]*dpso.Particle, ens.Chains)
	evals := make([]core.Evaluator, ens.Chains)
	runOverWorkers(ens.Chains, ens.Workers, d.Parallel, func(i int) {
		evals[i] = core.NewEvaluator(d.Inst)
		particles[i] = dpso.NewParticle(cfg, evals[i], xrand.NewStream(ens.Seed, uint64(i)))
	})

	gbest := make([]int, n)
	gbestCost := int64(1) << 62
	reduce := func() {
		for _, p := range particles {
			if seq, cost := p.Best(); cost < gbestCost {
				gbestCost = cost
				copy(gbest, seq)
			}
		}
	}
	reduce()

	iters := cfg.Iterations
	// In shared mode, particles read the previous generation's gbest
	// (recomputed only after the generation barrier), mirroring the
	// update → fitness → reduce → broadcast kernel sequence of the GPU
	// implementation. In the default asynchronous mode each particle's
	// swarm best is its own personal best.
	gbestSnapshot := make([]int, n)
	for g := 0; g < iters; g++ {
		copy(gbestSnapshot, gbest)
		runOverWorkers(ens.Chains, ens.Workers, d.Parallel, func(i int) {
			ref := gbestSnapshot
			if !d.ShareSwarmBest {
				ref, _ = particles[i].Best()
			}
			particles[i].Update(ref, evals[i])
		})
		reduce()
	}

	res := core.Result{
		BestSeq:     gbest,
		BestCost:    gbestCost,
		Iterations:  iters,
		Evaluations: int64(ens.Chains) * int64(iters+1),
		Elapsed:     time.Since(start),
	}
	return res
}
