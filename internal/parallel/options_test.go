package parallel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/heuristic"
)

// TestPAccessModesIdenticalResults: the processing-time access mode is a
// pure timing-model choice — optimization results must be bit-identical
// across all three modes, while the simulated times differ.
func TestPAccessModesIdenticalResults(t *testing.T) {
	in := benchInstanceCDD(40)
	cfg := smallSA()
	cfg.Iterations = 60
	run := func(mode PAccess) core.Result {
		return (&GPUSA{
			Inst: in, SA: cfg, Grid: 2, Block: 16, Seed: 9,
			PTimeAccess: mode,
		}).MustSolve()
	}
	coal := run(PAccessCoalesced)
	scat := run(PAccessScattered)
	tex := run(PAccessTexture)
	if coal.BestCost != scat.BestCost || coal.BestCost != tex.BestCost {
		t.Fatalf("access modes changed results: %d / %d / %d", coal.BestCost, scat.BestCost, tex.BestCost)
	}
	if !(scat.SimSeconds > coal.SimSeconds) {
		t.Errorf("scattered reads not slower: %g vs %g", scat.SimSeconds, coal.SimSeconds)
	}
	if !(tex.SimSeconds < scat.SimSeconds) {
		t.Errorf("texture path not faster than scattered: %g vs %g", tex.SimSeconds, scat.SimSeconds)
	}
}

// TestInitialSeqWarmStart: with a warm start, the ensemble's best can
// never be worse than the starting sequence itself (chains keep their
// per-thread bests from the initial state).
func TestInitialSeqWarmStart(t *testing.T) {
	in := benchInstanceCDD(30)
	warm := heuristic.VShape(in)
	eval := core.NewEvaluator(in)
	warmCost := eval.Cost(warm)
	cfg := smallSA()
	cfg.Iterations = 30
	res := (&GPUSA{
		Inst: in, SA: cfg, Grid: 2, Block: 8, Seed: 4,
		InitialSeq: warm,
	}).MustSolve()
	if res.BestCost > warmCost {
		t.Errorf("warm-started ensemble (%d) lost its initial solution (%d)", res.BestCost, warmCost)
	}
	if got := eval.Cost(res.BestSeq); got != res.BestCost {
		t.Errorf("reported %d, evaluates to %d", res.BestCost, got)
	}
}

// TestDPSOSharedBeatsAsyncHere documents the ablation finding on this
// substrate: with communication, DPSO is at least as good as without, on
// a mid-size instance with a healthy budget.
func TestDPSOSharedBeatsAsyncHere(t *testing.T) {
	in := benchInstanceCDD(60)
	mk := func(share bool) int64 {
		return (&GPUDPSO{
			Inst: in, PSO: dpsoCfg(300), Grid: 2, Block: 24, Seed: 3,
			ShareSwarmBest: share,
		}).MustSolve().BestCost
	}
	async, shared := mk(false), mk(true)
	if shared > async {
		t.Errorf("shared-gbest DPSO (%d) worse than asynchronous (%d) — ablation claim violated", shared, async)
	}
}

// TestReduceEveryDoesNotChangeResult: reduction frequency only affects
// when the tracked best is folded; the final answer is identical.
func TestReduceEveryDoesNotChangeResult(t *testing.T) {
	in := benchInstanceCDD(20)
	cfg := smallSA()
	cfg.Iterations = 50
	run := func(every int) int64 {
		return (&GPUSA{
			Inst: in, SA: cfg, Grid: 1, Block: 16, Seed: 5,
			ReduceEvery: every,
		}).MustSolve().BestCost
	}
	a, b, c := run(1), run(10), run(50)
	if a != b || a != c {
		t.Errorf("reduce frequency changed results: %d / %d / %d", a, b, c)
	}
}

// TestPersistentMatchesPipelined: the persistent-kernel variant consumes
// the per-thread RNG streams in the four-kernel pipeline's order, so for
// a fixed seed both engines must return identical best costs.
func TestPersistentMatchesPipelined(t *testing.T) {
	for _, n := range []int{12, 35} {
		in := benchInstanceCDD(n)
		cfg := smallSA()
		cfg.Iterations = 80
		pipe := (&GPUSA{Inst: in, SA: cfg, Grid: 2, Block: 16, Seed: 21}).MustSolve()
		pers := (&PersistentGPUSA{Inst: in, SA: cfg, Grid: 2, Block: 16, Seed: 21}).MustSolve()
		if pipe.BestCost != pers.BestCost {
			t.Errorf("n=%d: pipelined %d != persistent %d", n, pipe.BestCost, pers.BestCost)
		}
		if pers.SimSeconds >= pipe.SimSeconds {
			t.Errorf("n=%d: persistent kernel (%gs) not faster than 4-kernel pipeline (%gs)",
				n, pers.SimSeconds, pipe.SimSeconds)
		}
	}
}

// TestPersistentOnUCDDCP exercises the persistent kernel on the
// controllable problem.
func TestPersistentOnUCDDCP(t *testing.T) {
	in := benchInstanceUCDDCP(15)
	cfg := smallSA()
	cfg.Iterations = 60
	res := (&PersistentGPUSA{Inst: in, SA: cfg, Grid: 2, Block: 8, Seed: 13}).MustSolve()
	eval := core.NewEvaluator(in)
	if got := eval.Cost(res.BestSeq); got != res.BestCost {
		t.Errorf("reported %d, evaluates to %d", res.BestCost, got)
	}
}
