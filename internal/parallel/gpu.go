package parallel

import (
	"context"
	"math"
	"math/bits"
	"time"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/cudasim"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/sa"
	"repro/internal/xrand"
)

// tidBits is the width of the thread-index field in the packed
// (cost<<tidBits | tid) reduction values; 2^20 threads is far above any
// launch in this repository, and costs fit comfortably in the remaining
// 43 bits for every benchmark size.
const tidBits = 20

// GPUSA is the paper's GPU implementation of asynchronous parallel
// Simulated Annealing (Section VI): one SA chain per simulated CUDA
// thread, driven by four kernels per iteration —
//
//	perturb   Fisher–Yates partial shuffle of each thread's sequence
//	fitness   the O(n) linear algorithm, penalties staged in shared memory
//	accept    metropolis criterion, per-thread best tracking
//	reduce    atomic-min over the ensemble (every ReduceEvery iterations)
//
// — with job data copied host→device up front and only the winning
// sequence copied back at the end (Figure 9).
type GPUSA struct {
	// Label names the solver in result tables.
	Label string
	// Inst is the instance to optimize (CDD or UCDDCP).
	Inst *problem.Instance
	// SA holds the annealing parameters shared by all threads.
	SA sa.Config
	// Grid and Block are the launch geometry; the paper's configuration
	// is 4 blocks of 192 threads (defaults when zero).
	Grid, Block int
	// Seed derives all per-thread RNG streams.
	Seed uint64
	// Dev is the device to run on; nil creates a fresh simulated GT 560M.
	Dev *cudasim.Device
	// Cooperative stages the penalty arrays into shared memory with all
	// threads of a block in parallel behind a real __syncthreads barrier
	// (goroutine-per-thread; faithful but slower on the host). When
	// false, thread 0 stages and the block's threads execute in order.
	Cooperative bool
	// ReduceEvery launches the reduction kernel every that many
	// iterations (default 1, the paper's flowchart).
	ReduceEvery int
	// PTimeAccess selects the processing-time read mode of the fitness
	// kernel (see PAccess; default coalesced global).
	PTimeAccess PAccess
	// InitialSeq, when non-nil, starts every chain from this sequence
	// instead of independent uniform random sequences — the "same initial
	// configuration for all chains" option of Ferreiro et al., used by
	// the warm-start ablation with the constructive heuristic.
	InitialSeq []int
	// Budget bounds the run (iteration override and/or deadline; the
	// deadline applies at host-iteration granularity, i.e. once per
	// four-kernel round).
	Budget core.Budget
	// Progress receives a snapshot after every reduction kernel. Each
	// snapshot costs a device→host copy of the winning sequence, so leave
	// it nil for timing runs.
	Progress core.ProgressFunc
	// Metrics selects the instrumentation level (off by default). At
	// MetricsKernels every launch is bracketed with device events, so the
	// per-phase metrics carry simulated seconds alongside host wall time.
	Metrics core.MetricsLevel
}

// Name implements core.Solver.
func (g *GPUSA) Name() string {
	if g.Label != "" {
		return g.Label
	}
	return "GPU-SA"
}

// PAccess selects how the fitness kernel reads the processing-time array,
// which is indexed by job id in sequence order — an inherently scattered
// pattern. The paper reads it from global memory uncached ("there are
// only a few reads from it inside the fitness function") and names
// texture memory as future work; the three modes let the ablation
// benchmarks quantify that design space on the timing model.
type PAccess int

const (
	// PAccessCoalesced charges the reads as coalesced global accesses —
	// the optimistic default, corresponding to a layout tuned so a warp's
	// reads land in few transactions.
	PAccessCoalesced PAccess = iota
	// PAccessScattered charges each read as an uncoalesced global access,
	// the worst case of the paper's uncached reads.
	PAccessScattered
	// PAccessTexture fetches each element through the texture cache
	// (the paper's future-work suggestion), with per-thread cache state
	// and the true sequence-order access pattern.
	PAccessTexture
)

// pipeline carries the device state shared by the SA and DPSO front ends.
type pipeline struct {
	dev                  *cudasim.Device
	inst                 *problem.Instance
	n                    int
	grid, block, threads int
	coop                 bool
	pAccess              PAccess

	// Job-parameter arrays, device-resident (indexed by job id).
	pBuf, alphaBuf, betaBuf *cudasim.Buffer[int64]
	mBuf, gammaBuf          *cudasim.Buffer[int64] // nil for CDD
	pTex                    *cudasim.Texture[int64]

	// Per-thread local state modelling registers/local memory.
	rngs     []*xrand.XORWOW
	comp     [][]int64
	aux      [][]int64 // second scratch row (UCDDCP)
	pLocal   [][]int64 // texture-mode staging of processing times
	texCache []cudasim.TexCache

	// deltas, when non-nil, hold per-thread incremental evaluators: the
	// fitness step prices each candidate by Propose over the perturbed
	// positions and the accept step advances the cache by Commit.
	deltas []*cdd.Delta[int32]

	// soa, when non-nil, is the genome-coded snapshot: the instance has
	// parallel machines or the early-work objective, rows are delimiter
	// genomes of length GenomeLen, and the persistent kernel scores them
	// through core.GenomeFitnessArrays. The device job arrays above are
	// zero-padded to the genome length so separator ids stay in-bounds
	// for every access mode.
	soa *core.SoAInstance

	// batch precomputes the full-pass fitness of all rows host-side in
	// one batch pass (lazily built on first fitnessKernel
	// launch); batchCost/batchOps carry the per-row results into the
	// kernel closure, which keeps every cycle charge.
	batch     *core.BatchEvaluator
	batchCost []int64
	batchOps  []int
}

func newPipeline(dev *cudasim.Device, inst *problem.Instance, grid, block int, coop bool, seed uint64) *pipeline {
	n := inst.GenomeLen()
	pl := &pipeline{
		dev: dev, inst: inst, n: n,
		grid: grid, block: block, threads: grid * block,
		coop: coop,
	}
	p := make([]int64, n)
	a := make([]int64, n)
	b := make([]int64, n)
	for i, j := range inst.Jobs {
		p[i], a[i], b[i] = int64(j.P), int64(j.Alpha), int64(j.Beta)
	}
	pl.pBuf = cudasim.NewBufferFrom(dev, p)
	pl.alphaBuf = cudasim.NewBufferFrom(dev, a)
	pl.betaBuf = cudasim.NewBufferFrom(dev, b)
	if inst.GenomeCoded() {
		pl.soa = core.NewSoAInstance(inst)
	}
	if inst.Kind == problem.UCDDCP {
		m := make([]int64, n)
		gm := make([]int64, n)
		for i, j := range inst.Jobs {
			m[i], gm[i] = int64(j.M), int64(j.Gamma)
		}
		pl.mBuf = cudasim.NewBufferFrom(dev, m)
		pl.gammaBuf = cudasim.NewBufferFrom(dev, gm)
	}
	dev.SetConstantInt("n", int64(n))
	dev.SetConstantInt("d", inst.D)

	pl.rngs = make([]*xrand.XORWOW, pl.threads)
	pl.comp = make([][]int64, pl.threads)
	pl.aux = make([][]int64, pl.threads)
	for t := 0; t < pl.threads; t++ {
		pl.rngs[t] = xrand.NewStream(seed, uint64(t))
		pl.comp[t] = make([]int64, n)
		pl.aux[t] = make([]int64, n)
	}
	return pl
}

// enableTexture switches the processing-time reads to the given access
// mode, binding the texture and allocating per-thread staging when
// needed.
func (pl *pipeline) setPAccess(mode PAccess) {
	pl.pAccess = mode
	if mode != PAccessTexture {
		return
	}
	pl.pTex = cudasim.NewTexture(pl.pBuf)
	pl.pLocal = make([][]int64, pl.threads)
	pl.texCache = make([]cudasim.TexCache, pl.threads)
	for t := 0; t < pl.threads; t++ {
		pl.pLocal[t] = make([]int64, pl.n)
	}
}

// enableDelta builds the per-thread incremental CDD evaluators. Only the
// single-machine CDD kernels adopt the delta path (cdd.Delta prices plain
// sequences, not delimiter genomes), and only in the default coalesced
// access mode — the scattered/texture ablations exist to time the full
// pass's processing-time read pattern, so they keep it.
func (pl *pipeline) enableDelta() {
	pl.deltas = make([]*cdd.Delta[int32], pl.threads)
	for t := range pl.deltas {
		pl.deltas[t] = cdd.NewDelta[int32](pl.pBuf.Raw(), pl.alphaBuf.Raw(), pl.betaBuf.Raw(), pl.inst.D)
	}
}

// chargeDeltaReset charges the full fused pass plus the prefix/Fenwick
// build that Delta.Reset performs on a thread's row.
func chargeDeltaReset(c *cudasim.Ctx, n int) {
	c.ChargeGlobal(3*n, true) // sequence row + α/β full-pass reads
	c.ChargeArith(12 * n)
}

// chargeDeltaPropose charges the incremental candidate evaluation: O(k)
// aggregate corrections over the touched positions plus two binary
// searches with Fenwick prefix reads. With so few reads the delta path
// skips shared-memory staging and reads the touched entries straight
// from global memory (scattered).
func chargeDeltaPropose(c *cudasim.Ctx, k, lg int) {
	c.ChargeGlobal(3*k+4*lg, false)
	c.ChargeArith(12*k + 10*lg)
}

// loadProcessingTimes returns the processing-time array the fitness
// function should use for this thread, charging the configured access
// mode for the sequence-order reads.
func (pl *pipeline) loadProcessingTimes(c *cudasim.Ctx, tid int, row []int32) []int64 {
	n := pl.n
	switch pl.pAccess {
	case PAccessScattered:
		c.ChargeGlobal(n, false)
		return pl.pBuf.Raw()
	case PAccessTexture:
		local := pl.pLocal[tid]
		cache := &pl.texCache[tid]
		cache.Reset()
		for _, job := range row {
			local[job] = pl.pTex.Fetch(c, cache, int(job))
		}
		return local
	default:
		c.ChargeGlobal(n, true)
		return pl.pBuf.Raw()
	}
}

func (pl *pipeline) launchCfg(name string) cudasim.LaunchConfig {
	return cudasim.LaunchConfig{
		Name:                name,
		Grid:                cudasim.Dim(pl.grid),
		Block:               cudasim.Dim(pl.block),
		Cooperative:         pl.coop,
		SharedBytesPerBlock: 2 * 8 * pl.n,
		// The O(n) fitness evaluation keeps prefix sums, penalty
		// accumulators and loop state live; 63 registers per thread is
		// the realistic (and register-file-saturating) figure that
		// produces the paper's observation that blocks beyond 192
		// threads "offer less registers which a thread can use" and
		// stop improving (BenchmarkAblationBlockSize).
		RegsPerThread: 63,
	}
}

// randomRows fills an N×n int32 matrix with per-thread random
// permutations (consuming each thread's RNG stream, as curand_init +
// generation would).
func (pl *pipeline) randomRows() []int32 {
	rows := make([]int32, pl.threads*pl.n)
	for t := 0; t < pl.threads; t++ {
		row := rows[t*pl.n : (t+1)*pl.n]
		for i := range row {
			row[i] = int32(i)
		}
		rng := pl.rngs[t]
		for i := pl.n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			row[i], row[j] = row[j], row[i]
		}
	}
	return rows
}

// uniformRows fills an N×n int32 matrix with copies of one sequence (the
// shared-initial-configuration mode of Ferreiro et al.).
func (pl *pipeline) uniformRows(seq []int) []int32 {
	rows := make([]int32, pl.threads*pl.n)
	for t := 0; t < pl.threads; t++ {
		row := rows[t*pl.n : (t+1)*pl.n]
		for i, v := range seq {
			row[i] = int32(v)
		}
	}
	return rows
}

// stagePenalties loads α and β into the block's shared memory and returns
// the shared views. In cooperative mode all threads stride-load behind a
// barrier (the paper's pattern); otherwise thread 0 stages before its
// in-order siblings read.
func (pl *pipeline) stagePenalties(c *cudasim.Ctx) (shA, shB []int64) {
	n := pl.n
	shA = c.SharedInt64(0, n)
	shB = c.SharedInt64(1, n)
	if pl.coop {
		tib := c.ThreadInBlock()
		tpb := c.BlockDim.Count()
		loads := 0
		alpha, beta := pl.alphaBuf.Raw(), pl.betaBuf.Raw()
		for j := tib; j < n; j += tpb {
			shA[j] = alpha[j]
			shB[j] = beta[j]
			loads++
		}
		c.ChargeGlobal(2*loads, true)
		c.ChargeShared(2 * loads)
		c.SyncThreads()
	} else if c.ThreadInBlock() == 0 {
		copy(shA, pl.alphaBuf.Raw())
		copy(shB, pl.betaBuf.Raw())
		c.ChargeGlobal(2*n, true)
		c.ChargeShared(2 * n)
	}
	return shA, shB
}

// batchFitness scores every thread's row of rows host-side in one
// batch pass over the SoA snapshot, returning the per-row
// costs and abstract op counts. Results are bit-identical to the
// per-thread OptimizeArrays calls they replace (the verify oracle chain
// asserts it), so the kernel's cycle charges — which consume the same
// ops — are unchanged too.
func (pl *pipeline) batchFitness(rows []int32) ([]int64, []int) {
	if pl.batch == nil {
		pl.batch = core.NewBatchEvaluator(pl.inst)
		pl.batchCost = make([]int64, pl.threads)
		pl.batchOps = make([]int, pl.threads)
	}
	pl.batch.FitnessRows32(rows, pl.batchCost, pl.batchOps)
	return pl.batchCost, pl.batchOps
}

// fitnessKernel evaluates every thread's row of target into out. The
// costs and op counts are precomputed in one batched host pass; the
// launch closure models the device exactly as before — shared-memory
// staging, the configured processing-time access mode, and the per-row
// arithmetic charge all stay inside the kernel.
func (pl *pipeline) fitnessKernel(target *cudasim.Buffer[int32], out *cudasim.Buffer[int64]) error {
	costs, ops := pl.batchFitness(target.Raw())
	return pl.dev.Launch(pl.launchCfg("fitness"), func(c *cudasim.Ctx) {
		pl.stagePenalties(c)
		tid := c.GlobalThreadID()
		n := pl.n
		row := target.Raw()[tid*n : (tid+1)*n]
		c.ConstInt("d")         // due-date read from constant memory
		c.ChargeGlobal(n, true) // sequence row
		c.ChargeShared(2 * n)   // α/β reads from shared memory
		pl.loadProcessingTimes(c, tid, row)
		if pl.inst.Kind == problem.UCDDCP {
			c.ChargeGlobal(2*n, true) // M and γ reads
		}
		c.ChargeArith(ops[tid])
		out.Store(c, tid, costs[tid])
	})
}

// resetKernel caches every thread's row of target in its incremental
// evaluator (a full fused pass plus the aggregate build) and writes the
// row's cost into out. It is the delta path's initialization fitness.
func (pl *pipeline) resetKernel(target *cudasim.Buffer[int32], out *cudasim.Buffer[int64]) error {
	return pl.dev.Launch(pl.launchCfg("fitness"), func(c *cudasim.Ctx) {
		tid := c.GlobalThreadID()
		n := pl.n
		row := target.Raw()[tid*n : (tid+1)*n]
		chargeDeltaReset(c, n)
		out.Store(c, tid, pl.deltas[tid].Reset(row))
	})
}

// deltaFitnessKernel prices every thread's candidate row incrementally:
// Propose over the thread's perturbed positions costs O(k + log n) per
// thread instead of the O(n) full pass, with bit-identical costs.
func (pl *pipeline) deltaFitnessKernel(target *cudasim.Buffer[int32], positions [][]int, out *cudasim.Buffer[int64]) error {
	cfg := pl.launchCfg("fitness")
	cfg.SharedBytesPerBlock = 0
	lg := bits.Len(uint(pl.n))
	return pl.dev.Launch(cfg, func(c *cudasim.Ctx) {
		tid := c.GlobalThreadID()
		n := pl.n
		row := target.Raw()[tid*n : (tid+1)*n]
		pos := positions[tid]
		chargeDeltaPropose(c, len(pos), lg)
		out.Store(c, tid, pl.deltas[tid].Propose(row, pos))
	})
}

// reduceKernel folds a per-thread cost buffer into the packed
// (cost<<tidBits | tid) atomic minimum.
func (pl *pipeline) reduceKernel(costs, packed *cudasim.Buffer[int64]) error {
	cfg := pl.launchCfg("reduce")
	cfg.SharedBytesPerBlock = 0
	return pl.dev.Launch(cfg, func(c *cudasim.Ctx) {
		tid := c.GlobalThreadID()
		v := costs.Load(c, tid)
		cudasim.AtomicMinInt64(c, packed, 0, v<<tidBits|int64(tid))
	})
}

// Solve runs the full pipeline and returns the reduced best solution.
// Cancellation is checked once per host iteration (one four-kernel
// round): a done context skips the remaining rounds, runs a final
// reduction over the per-thread bests and returns the winner with
// Interrupted set — valid from round zero, because the initialization
// fitness pass seeds every thread's best.
func (g *GPUSA) Solve(ctx context.Context, inst *problem.Instance) (core.Result, error) {
	if inst == nil {
		inst = g.Inst
	}
	grid, block := g.Grid, g.Block
	if grid <= 0 {
		grid = 4
	}
	if block <= 0 {
		block = 192
	}
	dev := g.Dev
	if dev == nil {
		dev = cudasim.NewDevice(cudasim.GT560M())
	}
	reduceEvery := g.ReduceEvery
	if reduceEvery <= 0 {
		reduceEvery = 1
	}
	cfg := g.SA
	if g.Budget.Iterations > 0 {
		cfg.Iterations = g.Budget.Iterations
	}
	ctx, cancel := g.Budget.Apply(ctx)
	defer cancel()
	n := inst.GenomeLen()
	start := time.Now()
	simStart := dev.SimTime()

	pl := newPipeline(dev, inst, grid, block, g.Cooperative, g.Seed)
	pl.setPAccess(g.PTimeAccess)
	if inst.Kind == problem.CDD && !inst.GenomeCoded() && g.PTimeAccess == PAccessCoalesced {
		pl.enableDelta()
	}
	N := pl.threads

	// Normalize the SA parameters exactly as sa.Chain would.
	full := sa.DefaultConfig()
	if cfg.Iterations <= 0 {
		cfg.Iterations = full.Iterations
	}
	if cfg.Cooling <= 0 || cfg.Cooling >= 1 {
		cfg.Cooling = full.Cooling
	}
	if cfg.Pert <= 0 {
		cfg.Pert = full.Pert
	}
	if cfg.Pert > n {
		cfg.Pert = n
	}
	if cfg.ReselectPeriod <= 0 {
		cfg.ReselectPeriod = full.ReselectPeriod
	}
	if cfg.TempSamples <= 0 {
		cfg.TempSamples = full.TempSamples
	}

	col := obs.NewCollector(g.Metrics)
	var evalCount int64
	// T0: standard deviation of random-sequence fitnesses (host side, as
	// a pre-processing step; one stream beyond the thread streams).
	temp := cfg.T0
	if temp <= 0 {
		phased(col, obs.PhaseT0, func() {
			eval := core.NewEvaluator(inst)
			temp = core.InitialTemperature(eval, xrand.NewStream(g.Seed, uint64(N)+1), cfg.TempSamples)
		})
		evalCount += int64(cfg.TempSamples)
		col.AddFullEvals(int64(cfg.TempSamples))
	}

	// Device state: sequences, candidates, costs, per-thread bests.
	var rows []int32
	if g.InitialSeq != nil {
		rows = pl.uniformRows(g.InitialSeq)
	} else {
		rows = pl.randomRows()
	}
	seqBuf := cudasim.NewBufferFrom(dev, rows)
	candBuf := cudasim.NewBuffer[int32](dev, N*n)
	costBuf := cudasim.NewBuffer[int64](dev, N)
	candCostBuf := cudasim.NewBuffer[int64](dev, N)
	bestCostBuf := cudasim.NewBuffer[int64](dev, N)
	bestSeqBuf := cudasim.NewBuffer[int32](dev, N*n)
	packedBuf := cudasim.NewBufferFrom(dev, []int64{math.MaxInt64})

	// Initial fitness of the random sequences; initialize bests. The delta
	// path caches each row during this pass so later iterations can price
	// candidates incrementally.
	if err := gpuPhased(col, dev, obs.PhaseFitness, func() error {
		if pl.deltas != nil {
			return pl.resetKernel(seqBuf, costBuf)
		}
		return pl.fitnessKernel(seqBuf, costBuf)
	}); err != nil {
		return core.Result{}, err
	}
	evalCount += int64(N)
	col.AddFullEvals(int64(N))
	if err := gpuPhased(col, dev, obs.PhaseInit, func() error {
		return dev.Launch(pl.launchCfg("init"), func(c *cudasim.Ctx) {
			tid := c.GlobalThreadID()
			v := costBuf.Load(c, tid)
			bestCostBuf.Store(c, tid, v)
			copy(bestSeqBuf.Raw()[tid*n:(tid+1)*n], seqBuf.Raw()[tid*n:(tid+1)*n])
			c.ChargeGlobal(2*n, true)
		})
	}); err != nil {
		return core.Result{}, err
	}

	// Per-thread perturbation position state (the paper re-draws the
	// Pert positions every 10 iterations).
	positions := make([][]int, N)
	for t := range positions {
		positions[t] = make([]int, 0, cfg.Pert)
	}

	interrupted := false
	for it := 0; it < cfg.Iterations; it++ {
		if ctx.Err() != nil {
			interrupted = true
			col.SetInterruptedAt("iteration")
			break
		}
		dev.SetConstantFloat("T", temp)
		iter := it

		// Kernel 1: perturbation (Fisher–Yates on a Pert-subset).
		if err := gpuPhased(col, dev, obs.PhasePerturb, func() error {
			return dev.Launch(pl.launchCfg("perturb"), func(c *cudasim.Ctx) {
				tid := c.GlobalThreadID()
				rng := pl.rngs[tid]
				src := seqBuf.Raw()[tid*n : (tid+1)*n]
				dst := candBuf.Raw()[tid*n : (tid+1)*n]
				copy(dst, src)
				c.ChargeGlobal(2*n, true)
				if iter%cfg.ReselectPeriod == 0 || len(positions[tid]) == 0 {
					positions[tid] = drawPositions(rng, positions[tid][:0], n, cfg.Pert)
					c.ChargeArith(4 * cfg.Pert)
				}
				pos := positions[tid]
				for i := len(pos) - 1; i > 0; i-- {
					j := rng.Intn(i + 1)
					a, b := pos[i], pos[j]
					dst[a], dst[b] = dst[b], dst[a]
				}
				c.ChargeGlobal(2*len(pos), false) // scattered swaps
				c.ChargeArith(6 * len(pos))
			})
		}); err != nil {
			return core.Result{}, err
		}

		// Kernel 2: fitness of the candidates — incremental when the delta
		// path is on (O(touched) per thread), the full O(n) pass otherwise.
		if err := gpuPhased(col, dev, obs.PhaseFitness, func() error {
			if pl.deltas != nil {
				return pl.deltaFitnessKernel(candBuf, positions, candCostBuf)
			}
			return pl.fitnessKernel(candBuf, candCostBuf)
		}); err != nil {
			return core.Result{}, err
		}
		evalCount += int64(N)
		if pl.deltas != nil {
			col.AddDeltaEvals(int64(N))
		} else {
			col.AddFullEvals(int64(N))
		}

		// Kernel 3: metropolis acceptance + per-thread best tracking.
		if err := gpuPhased(col, dev, obs.PhaseAccept, func() error {
			return dev.Launch(pl.launchCfg("accept"), func(c *cudasim.Ctx) {
				tid := c.GlobalThreadID()
				rng := pl.rngs[tid]
				cur := costBuf.Load(c, tid)
				cand := candCostBuf.Load(c, tid)
				T := c.ConstFloat("T")
				accept := cand <= cur
				if !accept && T > 0 {
					accept = math.Exp(float64(cur-cand)/T) >= rng.Float64()
				}
				c.ChargeArith(12)
				if accept {
					col.AddAccepts(1)
					if pl.deltas != nil {
						pl.deltas[tid].Commit()
						c.ChargeArith(10 * len(positions[tid]) * bits.Len(uint(n)))
					}
					copy(seqBuf.Raw()[tid*n:(tid+1)*n], candBuf.Raw()[tid*n:(tid+1)*n])
					costBuf.Store(c, tid, cand)
					c.ChargeGlobal(2*n, true)
					if cand < bestCostBuf.Load(c, tid) {
						col.AddImprovements(1)
						bestCostBuf.Store(c, tid, cand)
						copy(bestSeqBuf.Raw()[tid*n:(tid+1)*n], candBuf.Raw()[tid*n:(tid+1)*n])
						c.ChargeGlobal(2*n, true)
					}
				}
			})
		}); err != nil {
			return core.Result{}, err
		}

		// Kernel 4: reduction (atomic min in L2).
		if (it+1)%reduceEvery == 0 || it == cfg.Iterations-1 {
			if err := gpuPhased(col, dev, obs.PhaseReduce, func() error {
				return pl.reduceKernel(bestCostBuf, packedBuf)
			}); err != nil {
				return core.Result{}, err
			}
			if g.Progress != nil {
				seq, cost := pl.winner(packedBuf, bestSeqBuf)
				g.Progress(core.Snapshot{BestSeq: seq, BestCost: cost, Evaluations: evalCount, Elapsed: time.Since(start)})
			}
		}

		// Host: queue drain point and exponential cooling (Algorithm 1).
		dev.Synchronize()
		temp *= cfg.Cooling
		if cfg.TMin > 0 && temp < cfg.TMin {
			temp = cfg.TMin
		}
	}
	if interrupted {
		// Fold the per-thread bests accumulated so far (the atomic min is
		// idempotent, so re-reducing rounds already folded is harmless).
		if err := gpuPhased(col, dev, obs.PhaseReduce, func() error {
			return pl.reduceKernel(bestCostBuf, packedBuf)
		}); err != nil {
			return core.Result{}, err
		}
	}

	// Copy the winner back to the host (the second transfer of Figure 9).
	bestSeq, bestCost := pl.winner(packedBuf, bestSeqBuf)

	res := core.Result{
		BestSeq:     bestSeq,
		BestCost:    bestCost,
		Iterations:  cfg.Iterations,
		Evaluations: evalCount,
		Elapsed:     time.Since(start),
		SimSeconds:  dev.SimTime() - simStart,
		Interrupted: interrupted,
	}
	if col.Enabled() {
		res.Metrics = col.Snapshot(evalCount, N, 1, res.Elapsed)
	}
	return res, nil
}

// MustSolve is the context-free convenience form of Solve: background
// context, the bound instance, panic on error.
func (g *GPUSA) MustSolve() core.Result { return mustSolve(g, g.Inst) }

// winner copies the packed reduction word back to the host and decodes
// the winning thread's best sequence and cost — the shared final step of
// all three GPU front ends.
func (pl *pipeline) winner(packedBuf *cudasim.Buffer[int64], bestSeqBuf *cudasim.Buffer[int32]) ([]int, int64) {
	packed := make([]int64, 1)
	packedBuf.CopyToHost(packed)
	w := int(packed[0] & (1<<tidBits - 1))
	cost := packed[0] >> tidBits
	row := make([]int32, pl.n)
	bestSeqBuf.CopyRegionToHost(row, w*pl.n)
	seq := make([]int, pl.n)
	for i, v := range row {
		seq[i] = int(v)
	}
	return seq, cost
}

// drawPositions samples k distinct positions in [0,n) into dst using
// Floyd's algorithm.
func drawPositions(rng *xrand.XORWOW, dst []int, n, k int) []int {
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		found := false
		for _, p := range dst {
			if p == t {
				found = true
				break
			}
		}
		if found {
			dst = append(dst, j)
		} else {
			dst = append(dst, t)
		}
	}
	return dst
}
