package parallel

// Device-side fitness functions: ports of the O(n) linear algorithms of
// internal/cdd and internal/ucddcp that operate directly on the primitive
// arrays living in simulated GPU memory (job-indexed parameter arrays,
// int32 sequence rows), exactly as the paper's fitness kernel does. The
// penalty arrays are the ones the kernel stages into shared memory; the
// processing times come from global memory ("not cached because there are
// only a few reads from it inside the fitness function").
//
// TestDeviceFitnessParity asserts bit-identical costs against the host
// evaluators for both problems, so the two implementations cannot drift.

// fitnessCDDArrays returns the optimal CDD penalty of the sequence. comp
// is caller-provided scratch of length ≥ len(seq) (the thread's local
// memory). It also returns the number of abstract operations executed,
// which the kernel converts into cycle charges.
func fitnessCDDArrays(seq []int32, p, alpha, beta []int64, d int64, comp []int64) (cost int64, ops int) {
	n := len(seq)
	var t int64
	tau := 0
	var alphaPrefix, betaSuffix int64
	for pos, job := range seq {
		t += p[job]
		comp[pos] = t
		if t <= d {
			tau = pos + 1
			alphaPrefix += alpha[job]
		} else {
			betaSuffix += beta[job]
		}
	}
	ops = 6 * n
	if tau == 0 {
		c, o := costAtArrays(seq, alpha, beta, comp, d, 0)
		return c, ops + o
	}
	r := tau
	if comp[tau-1] < d && betaSuffix >= alphaPrefix {
		c, o := costAtArrays(seq, alpha, beta, comp, d, 0)
		return c, ops + o
	}
	alphaPrefix -= alpha[seq[r-1]]
	betaSuffix += beta[seq[r-1]]
	for r > 1 && alphaPrefix > betaSuffix {
		r--
		alphaPrefix -= alpha[seq[r-1]]
		betaSuffix += beta[seq[r-1]]
		ops += 4
	}
	shift := d - comp[r-1]
	c, o := costAtArrays(seq, alpha, beta, comp, d, shift)
	return c, ops + o
}

func costAtArrays(seq []int32, alpha, beta, comp []int64, d, shift int64) (int64, int) {
	var cost int64
	for pos, job := range seq {
		c := comp[pos] + shift
		if c < d {
			cost += alpha[job] * (d - c)
		} else {
			cost += beta[job] * (c - d)
		}
	}
	return cost, 4 * len(seq)
}

// fitnessUCDDCPArrays returns the optimal UCDDCP penalty of the sequence:
// the CDD phase over the uncompressed processing times followed by the
// all-or-nothing compression phase of Section IV-B. comp and shAcc are
// caller-provided scratch of length ≥ len(seq).
func fitnessUCDDCPArrays(seq []int32, p, m, alpha, beta, gamma []int64, d int64, comp, shAcc []int64) (cost int64, ops int) {
	n := len(seq)

	// Phase 1: CDD timing of the uncompressed sequence (inline, so the
	// due-date position r is available).
	var t int64
	tau := 0
	var alphaPrefix, betaSuffix int64
	for pos, job := range seq {
		t += p[job]
		comp[pos] = t
		if t <= d {
			tau = pos + 1
			alphaPrefix += alpha[job]
		} else {
			betaSuffix += beta[job]
		}
	}
	ops = 6 * n
	r := 0
	var shiftAll int64
	if tau > 0 && !(comp[tau-1] < d && betaSuffix >= alphaPrefix) {
		r = tau
		alphaPrefix -= alpha[seq[r-1]]
		betaSuffix += beta[seq[r-1]]
		for r > 1 && alphaPrefix > betaSuffix {
			r--
			alphaPrefix -= alpha[seq[r-1]]
			betaSuffix += beta[seq[r-1]]
			ops += 4
		}
		shiftAll = d - comp[r-1]
	}
	if shiftAll != 0 {
		for pos := range comp[:n] {
			comp[pos] += shiftAll
		}
		ops += n
	}

	// Phase 2a: tardy side with the two-pointer sweep over still-tardy
	// suffixes. x values are accumulated into shAcc (prefix sums of the
	// applied compression); individual x_j are folded into the cost as
	// they are decided.
	var shift int64
	tp := r
	var sbTp int64
	for q := tp; q < n; q++ {
		sbTp += beta[seq[q]]
	}
	for tp < n && comp[tp] <= d {
		sbTp -= beta[seq[tp]]
		tp++
	}
	sbPos := sbTp
	for q := tp - 1; q >= r; q-- {
		sbPos += beta[seq[q]]
	}
	var gammaCost int64
	for pos := r; pos < n; pos++ {
		for tp < n {
			cur := comp[tp] - shift
			if tp < pos {
				cur = comp[tp] - shAcc[tp]
			}
			if cur > d {
				break
			}
			sbTp -= beta[seq[tp]]
			tp++
		}
		job := seq[pos]
		u := p[job] - m[job]
		if u > 0 {
			benefit := sbPos
			if tp > pos {
				benefit = sbTp
			}
			if benefit > gamma[job] {
				shift += u
				gammaCost += gamma[job] * u
			}
		}
		shAcc[pos] = shift
		sbPos -= beta[seq[pos]]
		ops += 8
	}
	if shift > 0 {
		for pos := r; pos < n; pos++ {
			comp[pos] -= shAcc[pos]
		}
		ops += n - r
	}

	// Phase 2b: early side; benefit is the α-prefix, compression pushes
	// predecessors right.
	var aPrefix int64
	var rightShift int64
	// First pass decides; second pass applies the suffix-of-early shifts.
	// Reuse shAcc[0:r] to record each early position's compression.
	for pos := 0; pos < r; pos++ {
		job := seq[pos]
		u := p[job] - m[job]
		x := int64(0)
		if u > 0 && aPrefix > gamma[job] {
			x = u
			gammaCost += gamma[job] * u
		}
		shAcc[pos] = x
		aPrefix += alpha[job]
		ops += 5
	}
	for pos := r - 1; pos >= 0; pos-- {
		comp[pos] += rightShift
		rightShift += shAcc[pos]
		ops += 2
	}

	// Exact final cost.
	cost = gammaCost
	for pos, job := range seq {
		c := comp[pos]
		if c < d {
			cost += alpha[job] * (d - c)
		} else {
			cost += beta[job] * (c - d)
		}
	}
	ops += 4 * n
	return cost, ops
}
