package parallel

import (
	"repro/internal/cdd"
	"repro/internal/ucddcp"
)

// Device-side fitness functions: the O(n) linear algorithms evaluated on
// the primitive arrays living in simulated GPU memory (job-indexed
// parameter arrays, int32 sequence rows), exactly as the paper's fitness
// kernel does. The penalty arrays are the ones the kernel stages into
// shared memory; the processing times come from global memory ("not cached
// because there are only a few reads from it inside the fitness
// function").
//
// Both functions are thin instantiations of the generic fused cores in
// internal/cdd and internal/ucddcp — the same code the host evaluators
// run — so device and host results are bit-identical by construction.
// TestDeviceFitnessParity still asserts it.

// fitnessCDDArrays returns the optimal CDD penalty of the sequence. comp
// is caller-provided scratch of length ≥ len(seq) (the thread's local
// memory). It also returns the number of abstract operations executed,
// which the kernel converts into cycle charges.
func fitnessCDDArrays(seq []int32, p, alpha, beta []int64, d int64, comp []int64) (cost int64, ops int) {
	cost, _, _, ops = cdd.OptimizeArrays(seq, p, alpha, beta, d, comp)
	return cost, ops
}

// fitnessUCDDCPArrays returns the optimal UCDDCP penalty of the sequence:
// the CDD phase over the uncompressed processing times followed by the
// all-or-nothing compression phase of Section IV-B. comp and scratch are
// caller-provided length-n scratch.
func fitnessUCDDCPArrays(seq []int32, p, m, alpha, beta, gamma []int64, d int64, comp, scratch []int64) (cost int64, ops int) {
	cost, _, _, ops = ucddcp.OptimizeArrays(seq, p, m, alpha, beta, gamma, d, comp, scratch, nil)
	return cost, ops
}
