package parallel

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/xrand"
)

// Chain is one independent trajectory of the asynchronous ensemble
// scheme: the common surface of sa.Chain, ta.Chain, es.Strategy and a
// solo DPSO particle. A chain owns all its scratch state, so distinct
// chains may run concurrently.
type Chain interface {
	// Run executes the chain's full iteration budget and returns its
	// best cost.
	Run() int64
	// Best returns the best sequence seen (borrowed) and its cost.
	Best() ([]int, int64)
	// Evaluations returns the number of fitness evaluations performed.
	Evaluations() int64
}

// RunSpec parameterizes one execution of the shared ensemble runtime.
type RunSpec struct {
	// Parallel selects the multi-goroutine dispatcher; false runs the
	// identical ensemble serially on the calling goroutine.
	Parallel bool
	// Iterations is reported as Result.Iterations (the per-chain budget;
	// the chains themselves own the actual loop).
	Iterations int
	// Progress, when non-nil, receives a snapshot whenever the ensemble
	// best improves and once more before Run returns.
	Progress core.ProgressFunc
	// NewChain builds chain i over its dedicated RNG stream. It is
	// called on the worker goroutine that runs the chain, so per-chain
	// state (evaluators, scratch) needs no synchronization.
	NewChain func(i int, rng *xrand.XORWOW) Chain
	// Collector receives the run's metrics; nil (the default) disables
	// collection entirely.
	Collector *obs.Collector
}

// Run is the shared ensemble runtime behind every CPU driver: it
// dispatches one chain per ensemble member over the worker pool, derives
// the per-chain RNG streams, folds the results through the lock-free
// best reduction and accounts evaluations. Results are deterministic for
// a fixed seed regardless of Parallel, because chain i always consumes
// RNG stream i and ties reduce to the lowest chain index.
//
// Cancellation is cooperative at chain granularity: once ctx is done, no
// new chain starts (chains already running finish) and the result
// carries Interrupted with the best over all completed chains. If ctx
// expires before any chain completes, the identity sequence is evaluated
// once so the result still holds a valid permutation with its exact
// cost.
func (e Ensemble) Run(ctx context.Context, inst *problem.Instance, spec RunSpec) (core.Result, error) {
	if inst == nil {
		return core.Result{}, fmt.Errorf("parallel: ensemble run without an instance")
	}
	ens := e.normalized()
	if ens.Chains >= 1<<tidBits {
		return core.Result{}, fmt.Errorf("parallel: %d chains exceed the %d-chain reduction limit", ens.Chains, 1<<tidBits)
	}
	start := time.Now()
	red := newReducer(ens.Chains)
	m := newMeter(spec.Progress, start, red)
	col := spec.Collector
	var skipped atomic.Bool
	runOverWorkers(ens.Chains, ens.Workers, spec.Parallel, func(i int) {
		if ctx.Err() != nil {
			skipped.Store(true)
			col.SetInterruptedAt("chain")
			return
		}
		// Per-phase timing is gated on the kernels level; the counters
		// level pays two timestamps per chain (for the busy-time
		// aggregate) plus atomic increments. Chain construction (which
		// includes the T₀ estimation) and the iteration loop are the
		// CPU engines' two phases.
		var t0, t1 time.Time
		if col.Enabled() {
			t0 = time.Now()
		}
		chain := spec.NewChain(i, xrand.NewStream(ens.Seed, uint64(i)))
		if col.Kernels() {
			t1 = time.Now()
			col.Phase(obs.PhaseT0, t1.Sub(t0), 0)
		} else {
			col.CountPhase(obs.PhaseT0)
		}
		chain.Run()
		if col.Enabled() {
			done := time.Now()
			if col.Kernels() {
				col.Phase(obs.PhaseChain, done.Sub(t1), 0)
			} else {
				col.CountPhase(obs.PhaseChain)
			}
			col.AddBusy(done.Sub(t0))
			if src, ok := chain.(obs.CounterSource); ok {
				col.AddChain(src.Counters())
			}
		}
		seq, cost := chain.Best()
		if red.record(i, seq, cost, chain.Evaluations()) {
			m.improved()
		}
	})
	var tr time.Time
	if col.Kernels() {
		tr = time.Now()
	}
	res := red.result(inst)
	res.Iterations = spec.Iterations
	res.Interrupted = skipped.Load()
	res.Elapsed = time.Since(start)
	if col.Enabled() {
		if col.Kernels() {
			col.Phase(obs.PhaseReduce, time.Since(tr), 0)
		} else {
			col.CountPhase(obs.PhaseReduce)
		}
		workers := 1
		if spec.Parallel {
			workers = ens.Workers
		}
		res.Metrics = col.Snapshot(res.Evaluations, ens.Chains, workers, res.Elapsed)
	}
	m.final(res)
	return res, nil
}

// reducer is the engines' lock-free best reduction: the same packed
// (cost<<tidBits | chain) atomic minimum the GPU reduce kernel computes,
// applied host-side, plus the per-chain best rows and the evaluation
// account. Chain i writes seqs[i] exactly once before publishing its
// packed value, so a reader that observes the packed minimum may read
// the winning row without further synchronization.
type reducer struct {
	packed atomic.Int64
	evals  atomic.Int64
	seqs   [][]int
}

func newReducer(chains int) *reducer {
	r := &reducer{seqs: make([][]int, chains)}
	r.packed.Store(math.MaxInt64)
	return r
}

// record folds chain i's best into the reduction and returns whether it
// improved the ensemble best. The sequence is copied.
func (r *reducer) record(chain int, seq []int, cost int64, evals int64) bool {
	r.evals.Add(evals)
	r.seqs[chain] = append(r.seqs[chain][:0], seq...)
	packed := cost<<tidBits | int64(chain)
	for {
		cur := r.packed.Load()
		if packed >= cur {
			return false
		}
		if r.packed.CompareAndSwap(cur, packed) {
			return true
		}
	}
}

// best returns the current winner, or ok=false when nothing has been
// recorded yet.
func (r *reducer) best() (seq []int, cost int64, ok bool) {
	p := r.packed.Load()
	if p == math.MaxInt64 {
		return nil, 0, false
	}
	return r.seqs[p&(1<<tidBits-1)], p >> tidBits, true
}

// result assembles the reduced outcome. When no chain completed (a
// context that expired before the first chain boundary), it evaluates
// the identity sequence once so callers always receive a valid
// permutation with its exact cost.
func (r *reducer) result(inst *problem.Instance) core.Result {
	seq, cost, ok := r.best()
	if !ok {
		seq = problem.IdentitySequence(inst.GenomeLen())
		cost = core.NewEvaluator(inst).Cost(seq)
		r.evals.Add(1)
	}
	return core.Result{
		BestSeq:     append([]int(nil), seq...),
		BestCost:    cost,
		Evaluations: r.evals.Load(),
	}
}

// meter serializes progress callbacks. A nil meter (no Progress
// configured) is inert, so the hot path pays only a nil check.
type meter struct {
	mu    sync.Mutex
	fn    core.ProgressFunc
	start time.Time
	red   *reducer
}

func newMeter(fn core.ProgressFunc, start time.Time, red *reducer) *meter {
	if fn == nil {
		return nil
	}
	return &meter{fn: fn, start: start, red: red}
}

// improved emits a snapshot of the current ensemble best.
func (m *meter) improved() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	seq, cost, ok := m.red.best()
	if !ok {
		return
	}
	m.fn(core.Snapshot{
		BestSeq:     append([]int(nil), seq...),
		BestCost:    cost,
		Evaluations: m.red.evals.Load(),
		Elapsed:     time.Since(m.start),
	})
}

// final emits the closing snapshot from the assembled result.
func (m *meter) final(res core.Result) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fn(core.Snapshot{
		BestSeq:     append([]int(nil), res.BestSeq...),
		BestCost:    res.BestCost,
		Evaluations: res.Evaluations,
		Elapsed:     res.Elapsed,
	})
}

// ChainEnsemble is the generic asynchronous driver over the shared
// runtime: any chain factory, one chain per ensemble member, best-of
// reduction. The TA and ES baseline families register into the facade
// through it, and new chain-shaped metaheuristics need only a factory —
// no driver code.
type ChainEnsemble struct {
	// Label names the solver in result tables.
	Label string
	// Inst is the default instance, used when Solve receives nil.
	Inst *problem.Instance
	// Ens is the ensemble geometry.
	Ens Ensemble
	// Parallel selects the multi-goroutine dispatcher.
	Parallel bool
	// Iterations is the per-chain budget reported in results (the
	// factory's chain config owns the actual loop; Budget.Iterations
	// does not reach inside the factory).
	Iterations int
	// Budget bounds the run (deadline only; see Iterations).
	Budget core.Budget
	// Progress receives best-so-far snapshots.
	Progress core.ProgressFunc
	// Metrics selects the instrumentation level (off by default).
	Metrics core.MetricsLevel
	// NewChain builds chain i for the instance over its RNG stream.
	NewChain func(inst *problem.Instance, chain int, rng *xrand.XORWOW) Chain
}

// Name implements core.Solver.
func (c *ChainEnsemble) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return "ChainEnsemble"
}

// Solve implements core.Solver.
func (c *ChainEnsemble) Solve(ctx context.Context, inst *problem.Instance) (core.Result, error) {
	if inst == nil {
		inst = c.Inst
	}
	ctx, cancel := c.Budget.Apply(ctx)
	defer cancel()
	return c.Ens.Run(ctx, inst, RunSpec{
		Parallel:   c.Parallel,
		Iterations: c.Iterations,
		Progress:   c.Progress,
		Collector:  obs.NewCollector(c.Metrics),
		NewChain: func(i int, rng *xrand.XORWOW) Chain {
			return c.NewChain(inst, i, rng)
		},
	})
}

// MustSolve is the context-free convenience form of Solve: background
// context, the bound instance, panic on error.
func (c *ChainEnsemble) MustSolve() core.Result { return mustSolve(c, c.Inst) }

// mustSolve backs the drivers' MustSolve convenience methods.
func mustSolve(s core.Solver, inst *problem.Instance) core.Result {
	res, err := s.Solve(context.Background(), inst)
	if err != nil {
		panic(err)
	}
	return res
}
