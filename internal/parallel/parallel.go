// Package parallel implements the paper's parallelization layer: the
// asynchronous and synchronous multiple-Markov-chain strategies of
// Ferreiro et al. (Section V), the CPU ensemble drivers used as speedup
// baselines, and the four-kernel GPU pipeline of Section VI (fitness,
// perturbation, acceptance, reduction) mapped onto the cudasim device.
//
// Every driver implements core.Solver, so the experiment harness treats
// serial CPU, parallel CPU and simulated-GPU engines uniformly.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/problem"
	"repro/internal/sa"
	"repro/internal/xrand"
)

// Ensemble describes a population of independent chains: the paper's
// grid of 4 blocks × 192 threads = 768 chains.
type Ensemble struct {
	// Chains is the total chain/particle count (threads on the GPU).
	Chains int
	// Seed derives every chain's RNG sub-stream.
	Seed uint64
	// Workers bounds host goroutines for the CPU drivers; 0 means
	// GOMAXPROCS. Serial drivers ignore it.
	Workers int
}

func (e Ensemble) normalized() Ensemble {
	if e.Chains <= 0 {
		e.Chains = 768
	}
	if e.Workers <= 0 {
		e.Workers = runtime.GOMAXPROCS(0)
	}
	return e
}

// runOverWorkers executes fn(chainIndex) for every chain, spreading the
// calls over at most `workers` goroutines when parallelOK, or serially on
// the calling goroutine otherwise. Work is dispatched as contiguous index
// chunks claimed from a shared atomic counter — one rendezvous per chunk
// rather than one unbuffered channel send per chain, which at 768 chains
// per level dominated the scheduling cost of the synchronous driver. The
// chunk size targets several chunks per worker so uneven chain runtimes
// still balance.
func runOverWorkers(chains, workers int, parallelOK bool, fn func(i int)) {
	if !parallelOK || workers <= 1 || chains <= 1 {
		for i := 0; i < chains; i++ {
			fn(i)
		}
		return
	}
	if workers > chains {
		workers = chains
	}
	chunk := chains / (4 * workers)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= chains {
					return
				}
				hi := lo + chunk
				if hi > chains {
					hi = chains
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// AsyncSA is the asynchronous parallel Simulated Annealing of Figure 7:
// Chains independent SA trajectories followed by one reduction. With
// Parallel=false it is the serial CPU baseline executing the identical
// ensemble on one goroutine (identical results, different wall-clock).
type AsyncSA struct {
	// Label names the solver in result tables.
	Label string
	// Inst is the instance to optimize.
	Inst *problem.Instance
	// SA holds the per-chain annealing parameters.
	SA sa.Config
	// Ens is the ensemble geometry.
	Ens Ensemble
	// Parallel selects the multi-goroutine driver; false runs the same
	// chains serially (the CPU-time baseline).
	Parallel bool
}

// Name implements core.Solver.
func (a *AsyncSA) Name() string {
	if a.Label != "" {
		return a.Label
	}
	return "AsyncSA"
}

// Solve runs every chain to completion and reduces to the best solution.
// Results are deterministic for a fixed seed regardless of Parallel,
// because chain i always consumes RNG stream i.
func (a *AsyncSA) Solve() core.Result {
	ens := a.Ens.normalized()
	start := time.Now()
	type chainOut struct {
		cost  int64
		seq   []int
		evals int64
	}
	outs := make([]chainOut, ens.Chains)
	runOverWorkers(ens.Chains, ens.Workers, a.Parallel, func(i int) {
		// Incremental evaluator: chains price each neighbour in O(touched)
		// with bit-identical costs, so results match full evaluation.
		eval := core.NewDeltaEvaluator(a.Inst)
		chain := sa.NewChain(a.SA, eval, xrand.NewStream(ens.Seed, uint64(i)))
		chain.Run()
		seq, cost := chain.Best()
		outs[i] = chainOut{cost: cost, seq: append([]int(nil), seq...), evals: chain.Evaluations()}
	})
	res := core.Result{BestCost: 1 << 62}
	for _, o := range outs {
		res.Evaluations += o.evals
		if o.cost < res.BestCost {
			res.BestCost = o.cost
			res.BestSeq = o.seq
		}
	}
	res.Iterations = a.SA.Iterations
	res.Elapsed = time.Since(start)
	return res
}

// SyncSA is the synchronous parallel Simulated Annealing of Figure 8:
// all chains anneal at a common temperature level for a Markov chain of
// length M, then the minimum state is reduced and broadcast as every
// chain's starting state for the next level. The paper found this variant
// converges prematurely, which TestSynchronousDiversityCollapse verifies.
type SyncSA struct {
	Label string
	Inst  *problem.Instance
	SA    sa.Config
	Ens   Ensemble
	// MarkovLen is M, the per-level chain length.
	MarkovLen int
	// Levels is the number of temperature levels t.
	Levels int
	// Parallel selects the multi-goroutine driver.
	Parallel bool
}

// Name implements core.Solver.
func (s *SyncSA) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "SyncSA"
}

// Solve runs Levels rounds of MarkovLen steps with broadcast reduction in
// between.
func (s *SyncSA) Solve() core.Result {
	ens := s.Ens.normalized()
	markov := s.MarkovLen
	if markov <= 0 {
		markov = 10
	}
	levels := s.Levels
	if levels <= 0 {
		levels = 100
	}
	start := time.Now()

	chains := make([]*sa.Chain, ens.Chains)
	evals := make([]core.Evaluator, ens.Chains)
	runOverWorkers(ens.Chains, ens.Workers, s.Parallel, func(i int) {
		evals[i] = core.NewDeltaEvaluator(s.Inst)
		chains[i] = sa.NewChain(s.SA, evals[i], xrand.NewStream(ens.Seed, uint64(i)))
	})

	bestSeq := make([]int, s.Inst.N())
	bestCost := int64(1) << 62
	for level := 0; level < levels; level++ {
		runOverWorkers(ens.Chains, ens.Workers, s.Parallel, func(i int) {
			for m := 0; m < markov; m++ {
				chains[i].Step()
			}
		})
		// Reduce: s_j^min over current states.
		minIdx := 0
		_, minCost := chains[0].Current()
		for i := 1; i < ens.Chains; i++ {
			if _, c := chains[i].Current(); c < minCost {
				minCost, minIdx = c, i
			}
		}
		minSeq, _ := chains[minIdx].Current()
		if minCost < bestCost {
			bestCost = minCost
			copy(bestSeq, minSeq)
		}
		// Broadcast as the next level's initial state on all processors.
		seqCopy := append([]int(nil), minSeq...)
		runOverWorkers(ens.Chains, ens.Workers, s.Parallel, func(i int) {
			chains[i].SetSolution(seqCopy, minCost)
		})
	}
	res := core.Result{BestSeq: bestSeq, BestCost: bestCost, Iterations: levels * markov}
	for _, c := range chains {
		res.Evaluations += c.Evaluations()
	}
	// The final global best may be better than the last broadcast.
	for _, c := range chains {
		if seq, cost := c.Best(); cost < res.BestCost {
			res.BestCost = cost
			copy(res.BestSeq, seq)
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// Diversity returns the mean pairwise Hamming distance of the chains'
// current sequences, a collapse diagnostic used by tests and examples.
func Diversity(seqs [][]int) float64 {
	if len(seqs) < 2 {
		return 0
	}
	total, pairs := 0, 0
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			for p := range seqs[i] {
				if seqs[i][p] != seqs[j][p] {
					total++
				}
			}
			pairs++
		}
	}
	return float64(total) / float64(pairs)
}
