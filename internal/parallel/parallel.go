// Package parallel implements the paper's parallelization layer: the
// asynchronous and synchronous multiple-Markov-chain strategies of
// Ferreiro et al. (Section V), the CPU ensemble drivers used as speedup
// baselines, and the four-kernel GPU pipeline of Section VI (fitness,
// perturbation, acceptance, reduction) mapped onto the cudasim device.
//
// Every driver implements core.Solver, so the experiment harness treats
// serial CPU, parallel CPU and simulated-GPU engines uniformly.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/sa"
	"repro/internal/xrand"
)

// Ensemble describes a population of independent chains: the paper's
// grid of 4 blocks × 192 threads = 768 chains.
type Ensemble struct {
	// Chains is the total chain/particle count (threads on the GPU).
	Chains int
	// Seed derives every chain's RNG sub-stream.
	Seed uint64
	// Workers bounds host goroutines for the CPU drivers; 0 means
	// GOMAXPROCS. Serial drivers ignore it.
	Workers int
}

func (e Ensemble) normalized() Ensemble {
	if e.Chains <= 0 {
		e.Chains = 768
	}
	if e.Workers <= 0 {
		e.Workers = runtime.GOMAXPROCS(0)
	}
	return e
}

// runOverWorkers executes fn(chainIndex) for every chain, spreading the
// calls over at most `workers` goroutines when parallelOK, or serially on
// the calling goroutine otherwise. Work is dispatched as contiguous index
// chunks claimed from a shared atomic counter — one rendezvous per chunk
// rather than one unbuffered channel send per chain, which at 768 chains
// per level dominated the scheduling cost of the synchronous driver. The
// chunk size targets several chunks per worker so uneven chain runtimes
// still balance.
func runOverWorkers(chains, workers int, parallelOK bool, fn func(i int)) {
	if !parallelOK || workers <= 1 || chains <= 1 {
		for i := 0; i < chains; i++ {
			fn(i)
		}
		return
	}
	if workers > chains {
		workers = chains
	}
	chunk := chains / (4 * workers)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= chains {
					return
				}
				hi := lo + chunk
				if hi > chains {
					hi = chains
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// AsyncSA is the asynchronous parallel Simulated Annealing of Figure 7:
// Chains independent SA trajectories followed by one reduction. With
// Parallel=false it is the serial CPU baseline executing the identical
// ensemble on one goroutine (identical results, different wall-clock).
type AsyncSA struct {
	// Label names the solver in result tables.
	Label string
	// Inst is the default instance, used when Solve receives nil.
	Inst *problem.Instance
	// SA holds the per-chain annealing parameters.
	SA sa.Config
	// Ens is the ensemble geometry.
	Ens Ensemble
	// Parallel selects the multi-goroutine driver; false runs the same
	// chains serially (the CPU-time baseline).
	Parallel bool
	// Budget bounds the run (iteration override and/or deadline).
	Budget core.Budget
	// Progress receives best-so-far snapshots.
	Progress core.ProgressFunc
	// Metrics selects the instrumentation level (off by default).
	Metrics core.MetricsLevel
}

// Name implements core.Solver.
func (a *AsyncSA) Name() string {
	if a.Label != "" {
		return a.Label
	}
	return "AsyncSA"
}

// Solve runs every chain to completion over the shared ensemble runtime
// and reduces to the best solution. Results are deterministic for a
// fixed seed regardless of Parallel, because chain i always consumes RNG
// stream i.
func (a *AsyncSA) Solve(ctx context.Context, inst *problem.Instance) (core.Result, error) {
	if inst == nil {
		inst = a.Inst
	}
	cfg := a.SA
	if a.Budget.Iterations > 0 {
		cfg.Iterations = a.Budget.Iterations
	}
	ctx, cancel := a.Budget.Apply(ctx)
	defer cancel()
	return a.Ens.Run(ctx, inst, RunSpec{
		Parallel:   a.Parallel,
		Iterations: cfg.Iterations,
		Progress:   a.Progress,
		Collector:  obs.NewCollector(a.Metrics),
		NewChain: func(i int, rng *xrand.XORWOW) Chain {
			// Incremental evaluator: chains price each neighbour in
			// O(touched) with bit-identical costs, so results match full
			// evaluation.
			return sa.NewChain(cfg, core.NewDeltaEvaluator(inst), rng)
		},
	})
}

// MustSolve is the context-free convenience form of Solve: background
// context, the bound instance, panic on error.
func (a *AsyncSA) MustSolve() core.Result { return mustSolve(a, a.Inst) }

// SyncSA is the synchronous parallel Simulated Annealing of Figure 8:
// all chains anneal at a common temperature level for a Markov chain of
// length M, then the minimum state is reduced and broadcast as every
// chain's starting state for the next level. The paper found this variant
// converges prematurely, which TestSynchronousDiversityCollapse verifies.
type SyncSA struct {
	Label string
	// Inst is the default instance, used when Solve receives nil.
	Inst *problem.Instance
	SA   sa.Config
	Ens  Ensemble
	// MarkovLen is M, the per-level chain length.
	MarkovLen int
	// Levels is the number of temperature levels t.
	Levels int
	// Parallel selects the multi-goroutine driver.
	Parallel bool
	// Budget bounds the run (level-count override via Iterations is not
	// supported; the deadline applies at level granularity).
	Budget core.Budget
	// Progress receives a snapshot after each level's reduction.
	Progress core.ProgressFunc
	// Metrics selects the instrumentation level (off by default).
	Metrics core.MetricsLevel
}

// Name implements core.Solver.
func (s *SyncSA) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "SyncSA"
}

// Solve runs Levels rounds of MarkovLen steps with broadcast reduction in
// between. Cancellation is checked at level granularity: a done context
// skips the remaining levels and reduces over the chains' bests so far.
func (s *SyncSA) Solve(ctx context.Context, inst *problem.Instance) (core.Result, error) {
	if inst == nil {
		inst = s.Inst
	}
	ens := s.Ens.normalized()
	markov := s.MarkovLen
	if markov <= 0 {
		markov = 10
	}
	levels := s.Levels
	if levels <= 0 {
		levels = 100
	}
	ctx, cancel := s.Budget.Apply(ctx)
	defer cancel()
	start := time.Now()

	col := obs.NewCollector(s.Metrics)
	chains := make([]*sa.Chain, ens.Chains)
	evals := make([]core.Evaluator, ens.Chains)
	phased(col, obs.PhaseT0, func() {
		runOverWorkers(ens.Chains, ens.Workers, s.Parallel, func(i int) {
			evals[i] = core.NewDeltaEvaluator(inst)
			chains[i] = sa.NewChain(s.SA, evals[i], xrand.NewStream(ens.Seed, uint64(i)))
		})
	})

	red := newReducer(ens.Chains)
	m := newMeter(s.Progress, start, red)
	bestSeq := make([]int, inst.GenomeLen())
	bestCost := int64(1) << 62
	interrupted := false
	for level := 0; level < levels; level++ {
		if ctx.Err() != nil {
			interrupted = true
			col.SetInterruptedAt("level")
			break
		}
		phased(col, obs.PhaseChain, func() {
			runOverWorkers(ens.Chains, ens.Workers, s.Parallel, func(i int) {
				for m := 0; m < markov; m++ {
					chains[i].Step()
				}
			})
		})
		// Reduce: s_j^min over current states.
		minIdx := 0
		_, minCost := chains[0].Current()
		phased(col, obs.PhaseReduce, func() {
			for i := 1; i < ens.Chains; i++ {
				if _, c := chains[i].Current(); c < minCost {
					minCost, minIdx = c, i
				}
			}
		})
		minSeq, _ := chains[minIdx].Current()
		if minCost < bestCost {
			bestCost = minCost
			copy(bestSeq, minSeq)
			if red.record(minIdx, minSeq, minCost, 0) {
				m.improved()
			}
		}
		// Broadcast as the next level's initial state on all processors.
		seqCopy := append([]int(nil), minSeq...)
		phased(col, obs.PhaseBroadcast, func() {
			runOverWorkers(ens.Chains, ens.Workers, s.Parallel, func(i int) {
				chains[i].SetSolution(seqCopy, minCost)
			})
		})
	}
	// The final global best may be better than the last broadcast — and
	// on an immediately-expired context it is the only valid reduction
	// (every chain holds a valid random initial solution).
	for i, c := range chains {
		if seq, cost := c.Best(); cost < bestCost {
			bestCost = cost
			copy(bestSeq, seq)
			red.record(i, seq, cost, 0)
		}
	}
	res := core.Result{BestSeq: bestSeq, BestCost: bestCost, Iterations: levels * markov, Interrupted: interrupted}
	for _, c := range chains {
		res.Evaluations += c.Evaluations()
		if col.Enabled() {
			col.AddChain(c.Counters())
		}
	}
	res.Elapsed = time.Since(start)
	if col.Enabled() {
		workers := 1
		if s.Parallel {
			workers = ens.Workers
		}
		res.Metrics = col.Snapshot(res.Evaluations, ens.Chains, workers, res.Elapsed)
	}
	m.final(res)
	return res, nil
}

// MustSolve is the context-free convenience form of Solve: background
// context, the bound instance, panic on error.
func (s *SyncSA) MustSolve() core.Result { return mustSolve(s, s.Inst) }

// Diversity returns the mean pairwise Hamming distance of the chains'
// current sequences, a collapse diagnostic used by tests and examples.
func Diversity(seqs [][]int) float64 {
	if len(seqs) < 2 {
		return 0
	}
	total, pairs := 0, 0
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			for p := range seqs[i] {
				if seqs[i][p] != seqs[j][p] {
					total++
				}
			}
			pairs++
		}
	}
	return float64(total) / float64(pairs)
}
