package parallel

import (
	"math/rand"
	"testing"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/problem"
	"repro/internal/ucddcp"
)

// Randomized differential test of the device-side fitness path against
// the host evaluators on adversarial instance shapes (zero penalties,
// equal processing times, due dates straddling the restrictive boundary).
// The golden parity tests pin specific values; this sweep hunts for
// divergence anywhere in the input space the generators can reach —
// device int32-sequence evaluation, host int-sequence evaluation, and the
// incremental delta evaluator must agree bit for bit on every sample.

// randomAdversarialCDD draws an instance from one of the shapes that have
// historically distinct code paths in the breakpoint walk.
func randomAdversarialCDD(rng *rand.Rand) *problem.Instance {
	n := 1 + rng.Intn(12)
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	equalP := rng.Intn(3) == 0
	pv := 1 + rng.Intn(10)
	sum := 0
	for i := 0; i < n; i++ {
		if equalP {
			p[i] = pv
		} else {
			p[i] = 1 + rng.Intn(20)
		}
		alpha[i] = rng.Intn(11) // zero allowed
		beta[i] = rng.Intn(16)  // zero allowed
		sum += p[i]
	}
	var d int64
	switch rng.Intn(4) {
	case 0:
		d = 0
	case 1:
		d = int64(sum) + int64(rng.Intn(3)) - 1 // straddle d = ΣP
		if d < 0 {
			d = 0
		}
	default:
		d = int64(rng.Intn(2*sum + 1))
	}
	in, err := problem.NewCDD("diff-cdd", p, alpha, beta, d)
	if err != nil {
		panic(err)
	}
	return in
}

func randomAdversarialUCDDCP(rng *rand.Rand) *problem.Instance {
	n := 1 + rng.Intn(10)
	p := make([]int, n)
	m := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	gamma := make([]int, n)
	sum := 0
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		m[i] = 1 + rng.Intn(p[i]) // down to maximal compression capacity
		alpha[i] = rng.Intn(11)
		beta[i] = rng.Intn(16)
		gamma[i] = rng.Intn(6) // cheap compression so the rule fires often
		sum += p[i]
	}
	d := int64(sum) + int64(rng.Intn(sum+1))
	in, err := problem.NewUCDDCP("diff-ucddcp", p, m, alpha, beta, gamma, d)
	if err != nil {
		panic(err)
	}
	return in
}

func TestDeviceHostFitnessDifferentialCDD(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		in := randomAdversarialCDD(rng)
		n := in.N()
		p, alpha, beta := cdd.ParamArrays(in)
		host := cdd.NewEvaluator(in)
		delta := core.NewDeltaEvaluator(in)
		seq := problem.IdentitySequence(n)
		seq32 := make([]int32, n)
		comp := make([]int64, n)
		for s := 0; s < 6; s++ {
			rng.Shuffle(n, func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
			for i, v := range seq {
				seq32[i] = int32(v)
			}
			dev, _ := fitnessCDDArrays(seq32, p, alpha, beta, in.D, comp)
			if hc := host.Cost(seq); dev != hc {
				t.Fatalf("trial %d: device %d != host %d (d=%d jobs=%+v seq=%v)",
					trial, dev, hc, in.D, in.Jobs, seq)
			}
			if dc := delta.Reset(seq); dev != dc {
				t.Fatalf("trial %d: device %d != delta %d (d=%d jobs=%+v seq=%v)",
					trial, dev, dc, in.D, in.Jobs, seq)
			}
		}
	}
}

func TestDeviceHostFitnessDifferentialUCDDCP(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 300; trial++ {
		in := randomAdversarialUCDDCP(rng)
		n := in.N()
		p, m, alpha, beta, gamma := ucddcp.ParamArrays(in)
		host := ucddcp.NewEvaluator(in)
		delta := core.NewDeltaEvaluator(in)
		seq := problem.IdentitySequence(n)
		seq32 := make([]int32, n)
		comp := make([]int64, n)
		scratch := make([]int64, n)
		for s := 0; s < 6; s++ {
			rng.Shuffle(n, func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
			for i, v := range seq {
				seq32[i] = int32(v)
			}
			dev, _ := fitnessUCDDCPArrays(seq32, p, m, alpha, beta, gamma, in.D, comp, scratch)
			if hc := host.Cost(seq); dev != hc {
				t.Fatalf("trial %d: device %d != host %d (d=%d jobs=%+v seq=%v)",
					trial, dev, hc, in.D, in.Jobs, seq)
			}
			if dc := delta.Reset(seq); dev != dc {
				t.Fatalf("trial %d: device %d != delta %d (d=%d jobs=%+v seq=%v)",
					trial, dev, dc, in.D, in.Jobs, seq)
			}
		}
	}
}
