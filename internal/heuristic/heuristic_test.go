package heuristic

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/orlib"
	"repro/internal/problem"
	"repro/internal/xrand"
)

func TestVShapeIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		ins, err := orlib.BenchmarkCDD(n, 1, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range ins {
			if seq := VShape(in); !problem.IsPermutation(seq) {
				t.Fatalf("trial %d %s: V-shape output is not a permutation: %v", trial, in.Name, seq)
			}
		}
	}
}

// TestVShapeBeatsRandomOnAverage: the constructive heuristic must clearly
// beat the mean random sequence.
func TestVShapeBeatsRandomOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xr := xrand.New(3)
	wins, trials := 0, 0
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.Intn(40)
		ins, err := orlib.BenchmarkCDD(n, 1, uint64(trial+500))
		if err != nil {
			t.Fatal(err)
		}
		in := ins[rng.Intn(len(ins))]
		eval := core.NewEvaluator(in)
		heurCost := eval.Cost(VShape(in))
		_, randCost := core.RandomSolution(eval, xr)
		trials++
		if heurCost <= randCost {
			wins++
		}
	}
	if wins*10 < trials*8 {
		t.Errorf("V-shape beat random only %d/%d times", wins, trials)
	}
}

func TestLocalSearchMonotoneAndTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(20)
		ins, err := orlib.BenchmarkCDD(n, 1, uint64(trial+900))
		if err != nil {
			t.Fatal(err)
		}
		in := ins[0]
		eval := core.NewEvaluator(in)
		start := VShape(in)
		startCost := eval.Cost(start)
		polished, cost, evals := LocalSearch(eval, start, 0)
		if cost > startCost {
			t.Fatalf("local search worsened: %d -> %d", startCost, cost)
		}
		if !problem.IsPermutation(polished) {
			t.Fatal("local search broke the permutation")
		}
		if got := eval.Cost(polished); got != cost {
			t.Fatalf("reported %d, evaluates to %d", cost, got)
		}
		if evals < 1 {
			t.Fatal("no evaluations counted")
		}
		// The input must not be mutated.
		if got := eval.Cost(start); got != startCost {
			t.Fatal("local search mutated its input")
		}
	}
}

// TestConstructNearExact measures the heuristic against the exact optimum
// on small unrestricted instances: it must be within 25% on average.
func TestConstructNearExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var totalGap float64
	trials := 0
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(5)
		p := make([]int, n)
		alpha := make([]int, n)
		beta := make([]int, n)
		var sum int64
		for i := 0; i < n; i++ {
			p[i] = 1 + rng.Intn(15)
			alpha[i] = 1 + rng.Intn(10)
			beta[i] = 1 + rng.Intn(15)
			sum += int64(p[i])
		}
		in, err := problem.NewCDD("h", p, alpha, beta, sum+int64(rng.Intn(10)))
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		_, cost := Construct(in)
		if cost < opt.Cost {
			t.Fatalf("heuristic %d beats exact optimum %d", cost, opt.Cost)
		}
		totalGap += float64(cost-opt.Cost) / float64(opt.Cost)
		trials++
	}
	if mean := totalGap / float64(trials) * 100; mean > 25 {
		t.Errorf("mean heuristic gap to optimum = %.1f%%, want ≤ 25%%", mean)
	}
}

func TestConstructOnUCDDCP(t *testing.T) {
	ins, err := orlib.BenchmarkUCDDCP(15, 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	in := ins[0]
	seq, cost := Construct(in)
	if !problem.IsPermutation(seq) {
		t.Fatal("not a permutation")
	}
	eval := core.NewEvaluator(in)
	if got := eval.Cost(seq); got != cost {
		t.Errorf("reported %d, evaluates to %d", cost, got)
	}
}
