// Package heuristic provides constructive starting solutions for the
// due-date problems: greedy V-shaped construction in the spirit of the
// Biskup–Feldmann heuristics, plus a deterministic local-search polish.
// The metaheuristics of this repository start from uniform random
// sequences, as in the paper; these heuristics serve as cheap baselines
// in experiments and as an optional warm start (the seeding ablation in
// bench_ablation_test.go measures their effect).
package heuristic

import (
	"sort"

	"repro/internal/core"
	"repro/internal/problem"
)

// VShape builds a V-shaped sequence. Jobs are ranked by β/α (ascending:
// jobs that are relatively cheap to be early first); every prefix size k
// of that ranking is tried as the early set, with the early side ordered
// by non-increasing P/α and the tardy side by non-decreasing P/β — the
// dominance orders of the exact subset solver — and the split whose
// exactly-timed cost is lowest wins. Construction cost is O(n²) linear-
// algorithm evaluations.
func VShape(in *problem.Instance) []int {
	n := in.N()
	ids := problem.IdentitySequence(n)
	sort.SliceStable(ids, func(a, b int) bool {
		ja, jb := in.Jobs[ids[a]], in.Jobs[ids[b]]
		// β_a/α_a < β_b/α_b ⇔ β_a·α_b < β_b·α_a (guard zero α).
		return ja.Beta*jb.Alpha < jb.Beta*ja.Alpha
	})
	eval := core.NewEvaluator(in)
	seq := make([]int, n)
	best := make([]int, n)
	bestCost := int64(-1)
	early := make([]int, 0, n)
	tardy := make([]int, 0, n)
	for k := 0; k <= n; k++ {
		early = append(early[:0], ids[:k]...)
		tardy = append(tardy[:0], ids[k:]...)
		sort.SliceStable(early, func(a, b int) bool {
			ja, jb := in.Jobs[early[a]], in.Jobs[early[b]]
			return ja.P*jb.Alpha > jb.P*ja.Alpha
		})
		sort.SliceStable(tardy, func(a, b int) bool {
			ja, jb := in.Jobs[tardy[a]], in.Jobs[tardy[b]]
			return ja.P*jb.Beta < jb.P*ja.Beta
		})
		copy(seq, early)
		copy(seq[k:], tardy)
		if c := eval.Cost(seq); bestCost < 0 || c < bestCost {
			bestCost = c
			copy(best, seq)
		}
	}
	return asGenome(in, best)
}

// asGenome lifts a single-machine sequence to the instance's solution
// encoding: unchanged for single-machine kinds, and a delimiter genome
// splitting the sequence into m contiguous near-equal-count chunks (one
// per machine) otherwise — a valid, assignment-balanced warm start that
// LocalSearch and the metaheuristics can refine.
func asGenome(in *problem.Instance, seq []int) []int {
	if !in.GenomeCoded() || in.MachineCount() == 1 {
		return seq
	}
	n, m := in.N(), in.MachineCount()
	genome := make([]int, 0, in.GenomeLen())
	base, rem := n/m, n%m
	at := 0
	for k := 0; k < m; k++ {
		size := base
		if k < rem {
			size++
		}
		genome = append(genome, seq[at:at+size]...)
		at += size
		if k < m-1 {
			genome = append(genome, n+k)
		}
	}
	return genome
}

// LocalSearch polishes a sequence with deterministic first-improvement
// passes over the adjacent-swap neighborhood until no move improves,
// evaluating every candidate exactly with the linear algorithms. It
// returns the improved sequence (a copy) and its cost, plus the number of
// evaluations spent.
func LocalSearch(eval core.Evaluator, seq []int, maxPasses int) ([]int, int64, int64) {
	n := len(seq)
	cur := append([]int(nil), seq...)
	curCost := eval.Cost(cur)
	evals := int64(1)
	if maxPasses <= 0 {
		maxPasses = 2 * n
	}
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 0; i+1 < n; i++ {
			cur[i], cur[i+1] = cur[i+1], cur[i]
			c := eval.Cost(cur)
			evals++
			if c < curCost {
				curCost = c
				improved = true
			} else {
				cur[i], cur[i+1] = cur[i+1], cur[i]
			}
		}
		if !improved {
			break
		}
	}
	return cur, curCost, evals
}

// Construct runs VShape followed by LocalSearch and returns the result —
// the package's one-call entry point.
func Construct(in *problem.Instance) ([]int, int64) {
	eval := core.NewEvaluator(in)
	seq, cost, _ := LocalSearch(eval, VShape(in), 0)
	return seq, cost
}
