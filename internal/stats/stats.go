// Package stats provides the small set of aggregations the experiment
// harness reports: means, standard deviations, extrema and speedup ratios.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (the mean of the middle pair for even
// lengths); it panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Med, Max float64
}

// Summarize computes a Summary of xs (zero value for an empty sample).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  Min(xs),
		Med:  Median(xs),
		Max:  Max(xs),
	}
}

// String implements fmt.Stringer with a compact one-line rendering.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f med=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.Med, s.Max)
}

// Speedup returns base/other, the convention of the paper's speedup
// tables (how many times faster `other` is than `base`). A non-positive
// denominator yields +Inf.
func Speedup(baseSeconds, otherSeconds float64) float64 {
	if otherSeconds <= 0 {
		return math.Inf(1)
	}
	return baseSeconds / otherSeconds
}
