package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("constant stddev = %v", got)
	}
	got := StdDev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("stddev of {1,3} = %v, want 1", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single-element stddev should be 0")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if Min(xs) != 1 || Max(xs) != 5 || Median(xs) != 3 {
		t.Errorf("min/max/median = %v/%v/%v", Min(xs), Max(xs), Median(xs))
	}
	even := []float64{4, 1, 3, 2}
	if Median(even) != 2.5 {
		t.Errorf("even median = %v, want 2.5", Median(even))
	}
	// Median must not mutate its input.
	if xs[0] != 5 {
		t.Error("Median sorted the caller's slice")
	}
}

func TestEmptyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Min":    func() { Min(nil) },
		"Max":    func() { Max(nil) },
		"Median": func() { Median(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Med != 2 {
		t.Errorf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	if str := s.String(); !strings.Contains(str, "n=3") {
		t.Errorf("String() = %q", str)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10, 2); got != 5 {
		t.Errorf("Speedup(10,2) = %v", got)
	}
	if !math.IsInf(Speedup(10, 0), 1) {
		t.Error("zero denominator should be +Inf")
	}
}

// TestQuickBounds property-checks min ≤ med ≤ mean±... ≤ max orderings.
func TestQuickBounds(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	property := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%50)
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s := Summarize(xs)
		return s.Min <= s.Med && s.Med <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
