package simplex

import (
	"math"
	"testing"
)

// solveOK solves and requires an optimal status.
func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// TestTextbook solves min −3x−5y s.t. x≤4, 2y≤12, 3x+2y≤18 (the classic
// Dantzig example): optimum −36 at (2,6).
func TestTextbook(t *testing.T) {
	p := &Problem{
		// Variables: x, y, s1, s2, s3.
		A: [][]float64{
			{1, 0, 1, 0, 0},
			{0, 2, 0, 1, 0},
			{3, 2, 0, 0, 1},
		},
		B: []float64{4, 12, 18},
		C: []float64{-3, -5, 0, 0, 0},
	}
	sol := solveOK(t, p)
	if !approx(sol.Objective, -36) {
		t.Errorf("objective = %v, want -36", sol.Objective)
	}
	if !approx(sol.X[0], 2) || !approx(sol.X[1], 6) {
		t.Errorf("x = %v, want (2,6,...)", sol.X)
	}
}

// TestEqualityOnly exercises phase 1: min x+y s.t. x+y=10, x−y=4 →
// unique point (7,3), objective 10.
func TestEqualityOnly(t *testing.T) {
	p := &Problem{
		A: [][]float64{
			{1, 1},
			{1, -1},
		},
		B: []float64{10, 4},
		C: []float64{1, 1},
	}
	sol := solveOK(t, p)
	if !approx(sol.Objective, 10) || !approx(sol.X[0], 7) || !approx(sol.X[1], 3) {
		t.Errorf("got %v obj %v", sol.X, sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	// x = 5 and x = 3 simultaneously.
	p := &Problem{
		A: [][]float64{{1}, {1}},
		B: []float64{5, 3},
		C: []float64{1},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min −x s.t. x − y = 1: x can grow with y.
	p := &Problem{
		A: [][]float64{{1, -1}},
		B: []float64{1},
		C: []float64{-1, 0},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestDegenerate(t *testing.T) {
	// A degenerate vertex (redundant constraint through the optimum);
	// Bland's rule must terminate.
	p := &Problem{
		A: [][]float64{
			{1, 1, 1, 0, 0},
			{1, 1, 0, 1, 0},
			{1, 0, 0, 0, 1},
		},
		B: []float64{2, 2, 1},
		C: []float64{-1, -1, 0, 0, 0},
	}
	sol := solveOK(t, p)
	if !approx(sol.Objective, -2) {
		t.Errorf("objective = %v, want -2", sol.Objective)
	}
}

func TestRedundantRow(t *testing.T) {
	// Second row is twice the first: an artificial stays basic at zero.
	p := &Problem{
		A: [][]float64{
			{1, 1},
			{2, 2},
		},
		B: []float64{4, 8},
		C: []float64{1, 2},
	}
	sol := solveOK(t, p)
	if !approx(sol.Objective, 4) { // all weight on x0
		t.Errorf("objective = %v, want 4", sol.Objective)
	}
}

func TestValidation(t *testing.T) {
	bad := []*Problem{
		{},
		{A: [][]float64{{1}}, B: []float64{1, 2}, C: []float64{1}},
		{A: [][]float64{{1, 2}}, B: []float64{1}, C: []float64{1}},
		{A: [][]float64{{1}}, B: []float64{-1}, C: []float64{1}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings broken")
	}
}
