// Package simplex is a small dense linear-programming solver: a two-phase
// primal simplex with Bland's anti-cycling rule. The paper's two-layered
// approach (Section III) observes that for a fixed job sequence the
// remaining problem is a linear program — "polynomially solvable", but
// "LP solvers are quite slow when run iteratively on some general
// heuristic algorithm" — which motivates the specialized O(n) algorithms.
// This package makes that comparison concrete: internal/lpref builds the
// per-sequence LP and solves it here, tests pin the result to the O(n)
// algorithms, and a benchmark quantifies the slowdown the paper avoids.
package simplex

import (
	"errors"
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Problem is an LP in computational standard form:
//
//	minimize    cᵀx
//	subject to  Ax = b,  x ≥ 0
//
// with b ≥ 0 required (negate rows as needed before constructing the
// problem; the builders in internal/lpref do this). A is dense,
// row-major: A[i] is constraint row i.
type Problem struct {
	A [][]float64
	B []float64
	C []float64
}

// Validate checks dimensions and the b ≥ 0 convention.
func (p *Problem) Validate() error {
	m := len(p.A)
	if m == 0 {
		return errors.New("simplex: no constraints")
	}
	n := len(p.C)
	if n == 0 {
		return errors.New("simplex: no variables")
	}
	if len(p.B) != m {
		return fmt.Errorf("simplex: %d rows but %d right-hand sides", m, len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("simplex: row %d has %d columns, want %d", i, len(row), n)
		}
		if p.B[i] < 0 {
			return fmt.Errorf("simplex: negative right-hand side b[%d] = %g (negate the row)", i, p.B[i])
		}
	}
	return nil
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	// Objective is cᵀx at the optimum (meaningful only when Optimal).
	Objective float64
	// X is the primal solution (length = number of structural variables).
	X []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

const eps = 1e-9

// Solve runs the two-phase primal simplex on the problem.
func Solve(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	m, n := len(p.A), len(p.C)

	// Build the phase-1 tableau with one artificial variable per row.
	// Columns: structural 0..n-1, artificial n..n+m-1, then RHS.
	width := n + m + 1
	t := make([][]float64, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, width)
		copy(t[i], p.A[i])
		t[i][n+i] = 1
		t[i][width-1] = p.B[i]
		basis[i] = n + i
	}

	// Phase 1 objective: minimize the sum of artificials. Its reduced-cost
	// row is the negative column sums over all rows (artificials basic).
	obj := make([]float64, width)
	for i := 0; i < m; i++ {
		for j := 0; j < width; j++ {
			obj[j] -= t[i][j]
		}
	}
	for j := n; j < n+m; j++ {
		obj[j] = 0
	}
	iters, status := pivotLoop(t, basis, obj, n+m)
	total := iters
	if status == Unbounded {
		// Phase 1 cannot be unbounded (objective bounded below by 0);
		// numerical trouble — report infeasible conservatively.
		return Solution{Status: Infeasible, Iterations: total}, nil
	}
	if -obj[width-1] > 1e-6 { // phase-1 optimum > 0
		return Solution{Status: Infeasible, Iterations: total}, nil
	}
	// Drive any artificial still in the basis out (degenerate rows).
	for i := 0; i < m; i++ {
		if basis[i] < n {
			continue
		}
		pivoted := false
		for j := 0; j < n; j++ {
			if math.Abs(t[i][j]) > eps {
				pivot(t, basis, i, j)
				total++
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Whole row is zero over structural variables: redundant
			// constraint; leave the artificial at zero level.
			continue
		}
	}

	// Phase 2: the real objective, with reduced costs computed against
	// the current basis.
	obj = make([]float64, width)
	copy(obj, p.C)
	for j := n; j < n+m; j++ {
		obj[j] = math.Inf(1) // forbid artificials from re-entering
	}
	// Price out basic columns.
	for i := 0; i < m; i++ {
		bj := basis[i]
		cost := 0.0
		if bj < n {
			cost = p.C[bj]
		}
		if cost == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			if !math.IsInf(obj[j], 1) {
				obj[j] -= cost * t[i][j]
			}
		}
	}
	iters, status = pivotLoop(t, basis, obj, n+m)
	total += iters
	if status == Unbounded {
		return Solution{Status: Unbounded, Iterations: total}, nil
	}

	x := make([]float64, n)
	for i, bj := range basis {
		if bj < n {
			x[bj] = t[i][width-1]
		}
	}
	objective := 0.0
	for j := 0; j < n; j++ {
		objective += p.C[j] * x[j]
	}
	return Solution{Status: Optimal, Objective: objective, X: x, Iterations: total}, nil
}

// pivotLoop runs simplex pivots until optimality or unboundedness. obj is
// the reduced-cost row (with obj[width-1] holding the negated objective
// value); cols is the number of eligible entering columns. Entering and
// leaving variables follow Bland's rule, which guarantees termination.
func pivotLoop(t [][]float64, basis []int, obj []float64, cols int) (int, Status) {
	m := len(t)
	width := len(t[0])
	iters := 0
	for {
		// Bland: first column with negative reduced cost.
		enter := -1
		for j := 0; j < cols; j++ {
			if !math.IsInf(obj[j], 1) && obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return iters, Optimal
		}
		// Ratio test; Bland tie-break on the smallest basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			a := t[i][enter]
			if a > eps {
				ratio := t[i][width-1] / a
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return iters, Unbounded
		}
		pivot(t, basis, leave, enter)
		// Update the reduced-cost row.
		factor := obj[enter]
		if factor != 0 {
			for j := 0; j < width; j++ {
				if !math.IsInf(obj[j], 1) {
					obj[j] -= factor * t[leave][j]
				}
			}
		}
		iters++
		if iters > 50000 {
			return iters, Unbounded // safety valve; should be unreachable with Bland's rule
		}
	}
}

// pivot performs a Gauss–Jordan pivot on (row, col) and records the basis
// change.
func pivot(t [][]float64, basis []int, row, col int) {
	m := len(t)
	width := len(t[0])
	pv := t[row][col]
	for j := 0; j < width; j++ {
		t[row][j] /= pv
	}
	t[row][col] = 1 // exact
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			t[i][j] -= f * t[row][j]
		}
		t[i][col] = 0 // exact
	}
	basis[row] = col
}
