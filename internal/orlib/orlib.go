// Package orlib provides the benchmark instances of the paper's
// evaluation: the OR-library common due-date set of Biskup and Feldmann
// (files sch10 … sch1000) for the CDD problem and the controllable
// extension of Awasthi et al. for UCDDCP.
//
// The module is offline, so the original files are reproduced by a
// deterministic generator drawing from the published distributions:
// processing times p_i ~ U[1,20], earliness penalties α_i ~ U[1,10] and
// tardiness penalties β_i ~ U[1,15]; the restrictive due date of instance
// variant h is d = ⌊h·Σp⌋ with h ∈ {0.2, 0.4, 0.6, 0.8}. With k = 10
// instances per job size this yields the paper's "40 different instances
// for each job size". Read and Write speak the OR-library file format
// (a header line with the instance count, then n rows of "p α β" per
// instance), so genuine sch files can be dropped in when available.
//
// For UCDDCP (whose original data from [8] is not published in the
// OR-library) the generator extends each job with a minimum processing
// time M_i ~ U[⌈p_i/2⌉, p_i] and a compression penalty γ_i ~ U[1,10], and
// sets the unrestricted due date d = ⌈1.1·Σp⌉ ≥ Σp.
package orlib

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/problem"
	"repro/internal/xrand"
)

// Hs are the OR-library restrictive due-date factors.
var Hs = []float64{0.2, 0.4, 0.6, 0.8}

// PaperSizes are the job counts of the paper's result tables.
var PaperSizes = []int{10, 20, 50, 100, 200, 500, 1000}

// InstancesPerSize is the OR-library instance count per job size.
const InstancesPerSize = 10

// DefaultSeed is the generator seed used by the experiment harness; any
// fixed value reproduces a fixed benchmark.
const DefaultSeed = 0x5CD_D2016

// Raw is one generated OR-library record before a due date is applied.
type Raw struct {
	P     []int
	M     []int // minimum processing times (UCDDCP only; nil for CDD)
	Alpha []int
	Beta  []int
	Gamma []int // compression penalties (UCDDCP only; nil for CDD)
}

// N returns the job count of the record.
func (r *Raw) N() int { return len(r.P) }

// SumP returns the record's total processing time.
func (r *Raw) SumP() int64 {
	var s int64
	for _, p := range r.P {
		s += int64(p)
	}
	return s
}

// GenerateCDD deterministically generates k OR-library-style CDD records
// of the given size. The same (size, k, seed) always yields the same
// records, independent of call order.
func GenerateCDD(size, k int, seed uint64) []*Raw {
	raws := make([]*Raw, k)
	for i := range raws {
		rng := xrand.NewStream(seed, uint64(size)<<20|uint64(i))
		r := &Raw{
			P:     make([]int, size),
			Alpha: make([]int, size),
			Beta:  make([]int, size),
		}
		for j := 0; j < size; j++ {
			r.P[j] = 1 + rng.Intn(20)
			r.Alpha[j] = 1 + rng.Intn(10)
			r.Beta[j] = 1 + rng.Intn(15)
		}
		raws[i] = r
	}
	return raws
}

// GenerateUCDDCP deterministically generates k controllable records of
// the given size per the distribution documented in the package comment.
func GenerateUCDDCP(size, k int, seed uint64) []*Raw {
	raws := make([]*Raw, k)
	for i := range raws {
		rng := xrand.NewStream(seed^0xC0117801, uint64(size)<<20|uint64(i))
		r := &Raw{
			P:     make([]int, size),
			M:     make([]int, size),
			Alpha: make([]int, size),
			Beta:  make([]int, size),
			Gamma: make([]int, size),
		}
		for j := 0; j < size; j++ {
			p := 1 + rng.Intn(20)
			r.P[j] = p
			lo := (p + 1) / 2
			r.M[j] = lo + rng.Intn(p-lo+1)
			r.Alpha[j] = 1 + rng.Intn(10)
			r.Beta[j] = 1 + rng.Intn(15)
			r.Gamma[j] = 1 + rng.Intn(10)
		}
		raws[i] = r
	}
	return raws
}

// GenerateEarlyWork deterministically generates k early-work records of
// the given size: processing times p_i ~ U[1,20] only (the objective has
// no penalty rates). The same (size, k, seed) always yields the same
// records.
func GenerateEarlyWork(size, k int, seed uint64) []*Raw {
	raws := make([]*Raw, k)
	for i := range raws {
		rng := xrand.NewStream(seed^0xEA871, uint64(size)<<20|uint64(i))
		r := &Raw{P: make([]int, size)}
		for j := 0; j < size; j++ {
			r.P[j] = 1 + rng.Intn(20)
		}
		raws[i] = r
	}
	return raws
}

// EarlyWorkInstance builds the m-machine early-work instance of a record
// with the restrictive per-machine due date d = max(1, ⌊h·Σp/m⌋): each
// machine carries ≈ Σp/m load, so h < 1 keeps the due date binding the
// same way the OR-library h factors do on one machine.
func EarlyWorkInstance(raw *Raw, size, k, machines int, h float64) (*problem.Instance, error) {
	d := int64(h * float64(raw.SumP()) / float64(machines))
	if d < 1 {
		d = 1
	}
	in, err := problem.NewEarlyWork(fmt.Sprintf("ew%d/m%d/k%d/h%.1f", size, machines, k, h), raw.P, machines, d)
	if err != nil {
		return nil, fmt.Errorf("orlib: building ew%d m=%d k=%d h=%.1f: %w", size, machines, k, h, err)
	}
	return in, nil
}

// BenchmarkEarlyWork returns the early-work benchmark slice for one job
// size and machine count: k records × the four h factors = 4k instances.
func BenchmarkEarlyWork(size, machines, k int, seed uint64) ([]*problem.Instance, error) {
	raws := GenerateEarlyWork(size, k, seed)
	out := make([]*problem.Instance, 0, len(raws)*len(Hs))
	for ki, raw := range raws {
		for _, h := range Hs {
			in, err := EarlyWorkInstance(raw, size, ki, machines, h)
			if err != nil {
				return nil, err
			}
			out = append(out, in)
		}
	}
	return out, nil
}

// CDDInstance applies due-date factor h to record k of the given size,
// producing a named problem instance (the OR-library convention
// "schN/k/h").
func CDDInstance(raw *Raw, size, k int, h float64) (*problem.Instance, error) {
	d := int64(h * float64(raw.SumP()))
	in, err := problem.NewCDD(fmt.Sprintf("sch%d/k%d/h%.1f", size, k, h), raw.P, raw.Alpha, raw.Beta, d)
	if err != nil {
		return nil, fmt.Errorf("orlib: building sch%d k=%d h=%.1f: %w", size, k, h, err)
	}
	return in, nil
}

// UCDDCPInstance builds the unrestricted controllable instance of a
// record with d = ⌈1.1·Σp⌉.
func UCDDCPInstance(raw *Raw, size, k int) (*problem.Instance, error) {
	sum := raw.SumP()
	d := sum + (sum+9)/10
	in, err := problem.NewUCDDCP(fmt.Sprintf("ucddcp%d/k%d", size, k), raw.P, raw.M, raw.Alpha, raw.Beta, raw.Gamma, d)
	if err != nil {
		return nil, fmt.Errorf("orlib: building ucddcp%d k=%d: %w", size, k, err)
	}
	return in, nil
}

// BenchmarkCDD returns the paper's full CDD benchmark slice for one job
// size: k records × the four h factors = 4k instances.
func BenchmarkCDD(size, k int, seed uint64) ([]*problem.Instance, error) {
	raws := GenerateCDD(size, k, seed)
	out := make([]*problem.Instance, 0, len(raws)*len(Hs))
	for ki, raw := range raws {
		for _, h := range Hs {
			in, err := CDDInstance(raw, size, ki, h)
			if err != nil {
				return nil, err
			}
			out = append(out, in)
		}
	}
	return out, nil
}

// BenchmarkUCDDCP returns the UCDDCP benchmark slice for one job size
// (k instances; the unrestricted problem has no h sweep).
func BenchmarkUCDDCP(size, k int, seed uint64) ([]*problem.Instance, error) {
	raws := GenerateUCDDCP(size, k, seed)
	out := make([]*problem.Instance, 0, len(raws))
	for ki, raw := range raws {
		in, err := UCDDCPInstance(raw, size, ki)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

// WriteCDD emits records in the OR-library sch file format: a header line
// with the record count, then n lines of "p α β" per record.
func WriteCDD(w io.Writer, raws []*Raw) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", len(raws))
	for _, r := range raws {
		if r.M != nil || r.Gamma != nil {
			return fmt.Errorf("orlib: WriteCDD given a controllable record; use WriteUCDDCP")
		}
		for j := range r.P {
			fmt.Fprintf(bw, "%d %d %d\n", r.P[j], r.Alpha[j], r.Beta[j])
		}
	}
	return bw.Flush()
}

// MaxRecords bounds the record count the readers accept. The largest
// genuine OR-library file holds 10 records; a corrupt or hostile header
// must fail fast instead of driving a multi-gigabyte allocation.
const MaxRecords = 1 << 20

// ReadCDD parses the OR-library sch format; n is the per-record job count
// (implied by the original file name, e.g. 10 for sch10).
func ReadCDD(r io.Reader, n int) ([]*Raw, error) {
	br := bufio.NewReader(r)
	var k int
	if _, err := fmt.Fscan(br, &k); err != nil {
		return nil, fmt.Errorf("orlib: reading record count: %w", err)
	}
	if k < 0 || k > MaxRecords {
		return nil, fmt.Errorf("orlib: record count %d outside [0,%d]", k, MaxRecords)
	}
	raws := make([]*Raw, k)
	for i := 0; i < k; i++ {
		raw := &Raw{P: make([]int, n), Alpha: make([]int, n), Beta: make([]int, n)}
		for j := 0; j < n; j++ {
			if _, err := fmt.Fscan(br, &raw.P[j], &raw.Alpha[j], &raw.Beta[j]); err != nil {
				return nil, fmt.Errorf("orlib: record %d job %d: %w", i, j, err)
			}
		}
		raws[i] = raw
	}
	return raws, nil
}

// WriteUCDDCP emits controllable records: a header line with the count,
// then n lines of "p m α β γ" per record.
func WriteUCDDCP(w io.Writer, raws []*Raw) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", len(raws))
	for _, r := range raws {
		if r.M == nil || r.Gamma == nil {
			return fmt.Errorf("orlib: WriteUCDDCP given a plain CDD record; use WriteCDD")
		}
		for j := range r.P {
			fmt.Fprintf(bw, "%d %d %d %d %d\n", r.P[j], r.M[j], r.Alpha[j], r.Beta[j], r.Gamma[j])
		}
	}
	return bw.Flush()
}

// WriteEarlyWork emits early-work records: a header line with the count,
// then n lines of "p" per record.
func WriteEarlyWork(w io.Writer, raws []*Raw) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", len(raws))
	for _, r := range raws {
		if r.Alpha != nil || r.M != nil {
			return fmt.Errorf("orlib: WriteEarlyWork given a penalized record; use WriteCDD or WriteUCDDCP")
		}
		for j := range r.P {
			fmt.Fprintf(bw, "%d\n", r.P[j])
		}
	}
	return bw.Flush()
}

// ReadEarlyWork parses the early-work record format of WriteEarlyWork.
func ReadEarlyWork(r io.Reader, n int) ([]*Raw, error) {
	br := bufio.NewReader(r)
	var k int
	if _, err := fmt.Fscan(br, &k); err != nil {
		return nil, fmt.Errorf("orlib: reading record count: %w", err)
	}
	if k < 0 || k > MaxRecords {
		return nil, fmt.Errorf("orlib: record count %d outside [0,%d]", k, MaxRecords)
	}
	raws := make([]*Raw, k)
	for i := 0; i < k; i++ {
		raw := &Raw{P: make([]int, n)}
		for j := 0; j < n; j++ {
			if _, err := fmt.Fscan(br, &raw.P[j]); err != nil {
				return nil, fmt.Errorf("orlib: record %d job %d: %w", i, j, err)
			}
		}
		raws[i] = raw
	}
	return raws, nil
}

// ReadUCDDCP parses the controllable record format of WriteUCDDCP.
func ReadUCDDCP(r io.Reader, n int) ([]*Raw, error) {
	br := bufio.NewReader(r)
	var k int
	if _, err := fmt.Fscan(br, &k); err != nil {
		return nil, fmt.Errorf("orlib: reading record count: %w", err)
	}
	if k < 0 || k > MaxRecords {
		return nil, fmt.Errorf("orlib: record count %d outside [0,%d]", k, MaxRecords)
	}
	raws := make([]*Raw, k)
	for i := 0; i < k; i++ {
		raw := &Raw{P: make([]int, n), M: make([]int, n), Alpha: make([]int, n), Beta: make([]int, n), Gamma: make([]int, n)}
		for j := 0; j < n; j++ {
			if _, err := fmt.Fscan(br, &raw.P[j], &raw.M[j], &raw.Alpha[j], &raw.Beta[j], &raw.Gamma[j]); err != nil {
				return nil, fmt.Errorf("orlib: record %d job %d: %w", i, j, err)
			}
		}
		raws[i] = raw
	}
	return raws, nil
}
