package orlib

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/problem"
)

func TestGenerateCDDDistributions(t *testing.T) {
	raws := GenerateCDD(1000, 10, DefaultSeed)
	if len(raws) != 10 {
		t.Fatalf("got %d records, want 10", len(raws))
	}
	var pMin, pMax, aMin, aMax, bMin, bMax = 99, 0, 99, 0, 99, 0
	for _, r := range raws {
		if r.N() != 1000 {
			t.Fatalf("record size %d, want 1000", r.N())
		}
		for j := range r.P {
			pMin, pMax = minI(pMin, r.P[j]), maxI(pMax, r.P[j])
			aMin, aMax = minI(aMin, r.Alpha[j]), maxI(aMax, r.Alpha[j])
			bMin, bMax = minI(bMin, r.Beta[j]), maxI(bMax, r.Beta[j])
		}
	}
	if pMin < 1 || pMax > 20 {
		t.Errorf("p range [%d,%d], want within [1,20]", pMin, pMax)
	}
	if pMin != 1 || pMax != 20 {
		t.Errorf("p range [%d,%d] does not cover [1,20] over 10000 draws", pMin, pMax)
	}
	if aMin != 1 || aMax != 10 {
		t.Errorf("alpha range [%d,%d], want [1,10]", aMin, aMax)
	}
	if bMin != 1 || bMax != 15 {
		t.Errorf("beta range [%d,%d], want [1,15]", bMin, bMax)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateCDD(50, 3, 42)
	b := GenerateCDD(50, 3, 42)
	for i := range a {
		for j := range a[i].P {
			if a[i].P[j] != b[i].P[j] || a[i].Alpha[j] != b[i].Alpha[j] || a[i].Beta[j] != b[i].Beta[j] {
				t.Fatalf("record %d job %d differs between identical calls", i, j)
			}
		}
	}
	c := GenerateCDD(50, 3, 43)
	same := true
	for j := range a[0].P {
		if a[0].P[j] != c[0].P[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical records")
	}
}

func TestCDDInstanceDueDates(t *testing.T) {
	raws := GenerateCDD(20, 1, 7)
	sum := raws[0].SumP()
	for _, h := range Hs {
		in, err := CDDInstance(raws[0], 20, 0, h)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(h * float64(sum)); in.D != want {
			t.Errorf("h=%.1f: d=%d, want %d", h, in.D, want)
		}
		if !in.Restrictive() {
			t.Errorf("h=%.1f: instance not restrictive", h)
		}
		if err := in.Validate(); err != nil {
			t.Errorf("h=%.1f: %v", h, err)
		}
	}
}

func TestBenchmarkCDDCount(t *testing.T) {
	ins, err := BenchmarkCDD(10, InstancesPerSize, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 40 {
		t.Fatalf("benchmark has %d instances per size, paper uses 40", len(ins))
	}
	names := map[string]bool{}
	for _, in := range ins {
		if names[in.Name] {
			t.Errorf("duplicate instance name %q", in.Name)
		}
		names[in.Name] = true
		if in.Kind != problem.CDD {
			t.Errorf("instance %q has kind %v", in.Name, in.Kind)
		}
	}
}

func TestBenchmarkUCDDCPUnrestricted(t *testing.T) {
	ins, err := BenchmarkUCDDCP(50, InstancesPerSize, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != InstancesPerSize {
		t.Fatalf("got %d instances, want %d", len(ins), InstancesPerSize)
	}
	for _, in := range ins {
		if in.Restrictive() {
			t.Errorf("%q: UCDDCP instance is restrictive (d=%d, ΣP=%d)", in.Name, in.D, in.SumP())
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%q: %v", in.Name, err)
		}
		compressible := 0
		for _, j := range in.Jobs {
			if j.M > j.P || j.M < (j.P+1)/2 {
				t.Errorf("%q: M=%d outside [⌈P/2⌉,P] for P=%d", in.Name, j.M, j.P)
			}
			if j.MaxCompression() > 0 {
				compressible++
			}
		}
		if compressible == 0 {
			t.Errorf("%q: no compressible job at all", in.Name)
		}
	}
}

func TestCDDRoundtrip(t *testing.T) {
	raws := GenerateCDD(30, 5, 11)
	var buf bytes.Buffer
	if err := WriteCDD(&buf, raws); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCDD(&buf, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 {
		t.Fatalf("read %d records, want 5", len(back))
	}
	for i := range raws {
		for j := 0; j < 30; j++ {
			if raws[i].P[j] != back[i].P[j] || raws[i].Alpha[j] != back[i].Alpha[j] || raws[i].Beta[j] != back[i].Beta[j] {
				t.Fatalf("record %d job %d mismatch after roundtrip", i, j)
			}
		}
	}
}

func TestUCDDCPRoundtrip(t *testing.T) {
	raws := GenerateUCDDCP(25, 4, 13)
	var buf bytes.Buffer
	if err := WriteUCDDCP(&buf, raws); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUCDDCP(&buf, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raws {
		for j := 0; j < 25; j++ {
			if raws[i].M[j] != back[i].M[j] || raws[i].Gamma[j] != back[i].Gamma[j] {
				t.Fatalf("record %d job %d M/Gamma mismatch", i, j)
			}
		}
	}
}

func TestWriteKindMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCDD(&buf, GenerateUCDDCP(5, 1, 1)); err == nil {
		t.Error("WriteCDD accepted a controllable record")
	}
	if err := WriteUCDDCP(&buf, GenerateCDD(5, 1, 1)); err == nil {
		t.Error("WriteUCDDCP accepted a plain record")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadCDD(strings.NewReader(""), 5); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCDD(strings.NewReader("2\n1 2 3\n"), 1); err == nil {
		t.Error("truncated input accepted")
	}
	if _, err := ReadCDD(strings.NewReader("-1\n"), 1); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := ReadUCDDCP(strings.NewReader("1\n1 2 3\n"), 1); err == nil {
		t.Error("short UCDDCP row accepted")
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestReadErrorPathsTable sweeps malformed file contents through both
// readers: every case must return an error (never panic, never allocate
// unboundedly) and never a partial result.
func TestReadErrorPathsTable(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"whitespace-only", "   \n\t\n"},
		{"non-numeric-count", "abc\n"},
		{"negative-count", "-3\n1 1 1\n"},
		{"huge-count", "1000000000\n1 1 1\n"},
		{"count-overflow", "99999999999999999999999\n"},
		{"nan-field", "1\nNaN 2 3\n"},
		{"float-field", "1\n1.5 2 3\n"},
		{"truncated-row", "1\n1 2\n"},
		{"missing-record", "2\n1 2 3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if raws, err := ReadCDD(strings.NewReader(tc.input), 1); err == nil {
				t.Errorf("ReadCDD accepted %q: %v", tc.input, raws)
			}
			if raws, err := ReadUCDDCP(strings.NewReader(tc.input), 1); err == nil {
				t.Errorf("ReadUCDDCP accepted %q: %v", tc.input, raws)
			}
		})
	}
	// Sanity: the guard must not reject genuine files.
	if _, err := ReadCDD(strings.NewReader("1\n5 2 3\n"), 1); err != nil {
		t.Errorf("minimal valid CDD file rejected: %v", err)
	}
	if _, err := ReadUCDDCP(strings.NewReader("1\n5 3 2 3 4\n"), 1); err != nil {
		t.Errorf("minimal valid UCDDCP file rejected: %v", err)
	}
}

// TestEarlyWorkGeneratorDeterminism pins the early-work stream: the same
// (size, k, seed) must reproduce identical records, a different seed must
// diverge, and processing times stay in the U[1,20] band with no penalty
// vectors attached.
func TestEarlyWorkGeneratorDeterminism(t *testing.T) {
	a := GenerateEarlyWork(40, 3, 42)
	b := GenerateEarlyWork(40, 3, 42)
	for i := range a {
		if a[i].M != nil || a[i].Alpha != nil || a[i].Beta != nil || a[i].Gamma != nil {
			t.Fatalf("record %d carries penalty vectors", i)
		}
		for j := range a[i].P {
			if a[i].P[j] != b[i].P[j] {
				t.Fatalf("record %d job %d differs across identical seeds", i, j)
			}
			if a[i].P[j] < 1 || a[i].P[j] > 20 {
				t.Fatalf("record %d job %d processing time %d outside [1,20]", i, j, a[i].P[j])
			}
		}
	}
	c := GenerateEarlyWork(40, 3, 43)
	same := true
	for i := range a {
		for j := range a[i].P {
			if a[i].P[j] != c[i].P[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical records")
	}
}

// TestEarlyWorkRoundtripAndFixture round-trips generated records through
// the on-disk format and pins the checked-in fixture to the generator:
// testdata/orlib/ew10.txt is WriteEarlyWork(GenerateEarlyWork(10, 2,
// DefaultSeed)) byte for byte, so regenerating benchmarks can never
// silently drift from the archived data.
func TestEarlyWorkRoundtripAndFixture(t *testing.T) {
	raws := GenerateEarlyWork(10, 2, DefaultSeed)
	var buf bytes.Buffer
	if err := WriteEarlyWork(&buf, raws); err != nil {
		t.Fatal(err)
	}
	fixture, err := os.ReadFile("../../testdata/orlib/ew10.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), fixture) {
		t.Errorf("fixture ew10.txt does not match the seeded generator output:\n%s\nvs\n%s", fixture, buf.Bytes())
	}
	back, err := ReadEarlyWork(bytes.NewReader(fixture), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d records, want 2", len(back))
	}
	for i := range raws {
		for j := 0; j < 10; j++ {
			if raws[i].P[j] != back[i].P[j] {
				t.Fatalf("record %d job %d mismatch after fixture read", i, j)
			}
		}
	}
	// The instances built from the fixture are valid parallel-machine
	// early-work instances with the documented restrictive due date.
	for k, raw := range back {
		in, err := EarlyWorkInstance(raw, 10, k, 3, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		if in.Kind != problem.EARLYWORK || in.MachineCount() != 3 {
			t.Fatalf("instance %d: kind %v machines %d", k, in.Kind, in.MachineCount())
		}
		want := int64(0.6 * float64(raw.SumP()) / 3)
		if want < 1 {
			want = 1
		}
		if in.D != want {
			t.Errorf("instance %d: d = %d, want %d", k, in.D, want)
		}
	}
	// WriteEarlyWork rejects penalized records, like the other writers.
	if err := WriteEarlyWork(&buf, GenerateCDD(5, 1, 1)); err == nil {
		t.Error("WriteEarlyWork accepted a penalized record")
	}
}
