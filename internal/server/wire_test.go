package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	duedate "repro"
	"repro/internal/problem"
)

// instantSolve is a solveFunc stub that answers immediately with a valid
// fixed result, so the serve-path tests and benchmarks time the HTTP
// layer rather than an engine.
func instantSolve(ctx context.Context, in *problem.Instance, opts duedate.Options) (duedate.Result, error) {
	return duedate.Result{BestSeq: problem.IdentitySequence(in.N()), BestCost: 1, Iterations: opts.Iterations}, nil
}

func TestWireCacheLRUAndOversize(t *testing.T) {
	c := newWireCache(2)
	c.put([]byte("a"), []byte("ra"))
	c.put([]byte("b"), []byte("rb"))
	if got, ok := c.get([]byte("a")); !ok || string(got) != "ra" {
		t.Fatalf("get a = %q, %v", got, ok)
	}
	// "a" is now most recent; inserting "c" must evict "b".
	c.put([]byte("c"), []byte("rc"))
	if _, ok := c.get([]byte("b")); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.get([]byte("a")); !ok {
		t.Error("a was evicted despite being most recently used")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Oversize keys bypass the cache in both directions.
	huge := make([]byte, wireMaxKeyBytes+1)
	c.put(huge, []byte("r"))
	if _, ok := c.get(huge); ok {
		t.Error("oversize key was stored")
	}
	// Disabled cache never stores.
	off := newWireCache(0)
	off.put([]byte("k"), []byte("v"))
	if _, ok := off.get([]byte("k")); ok {
		t.Error("disabled wire cache served a hit")
	}
}

// TestWireHitServesCachedBytes pins the steady-state contract: an exact
// byte-level resubmission is answered from the wire cache with a body
// identical to what a result-cache hit would produce, and counts as a
// cache hit in /metrics.
func TestWireHitServesCachedBytes(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1})
	s.solve = instantSolve
	req := SolveRequest{
		Instance: duedate.PaperExample(duedate.CDD), Algorithm: algp(duedate.SA),
		Engine: duedate.EngineCPUSerial, Iterations: 5, Seed: 3,
	}
	status, body1 := postJSON(t, ts.URL+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("first solve: %d %s", status, body1)
	}
	if s.wire.len() != 1 {
		t.Fatalf("wire cache holds %d entries after first solve, want 1", s.wire.len())
	}
	status, body2 := postJSON(t, ts.URL+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("resubmission: %d %s", status, body2)
	}
	var first, second SolveResponse
	decodeInto(t, body1, &first)
	decodeInto(t, body2, &second)
	if !second.Cached {
		t.Error("wire hit did not report cached")
	}
	second.Cached = false
	if fmt.Sprintf("%+v", first) != fmt.Sprintf("%+v", second) {
		t.Errorf("wire-cached response differs:\nfirst  %+v\nsecond %+v", first, second)
	}
	if hits := s.stats.cacheHits.Load(); hits != 1 {
		t.Errorf("cacheHits = %d after wire hit, want 1", hits)
	}
	// noCache bodies are different bytes and must never be stored.
	req.NoCache = true
	if status, _ := postJSON(t, ts.URL+"/v1/solve", req); status != http.StatusOK {
		t.Fatalf("noCache solve: %d", status)
	}
	if s.wire.len() != 1 {
		t.Errorf("noCache request entered the wire cache (len %d, want 1)", s.wire.len())
	}
}

// TestWireHitBatch pins the batch analogue: an identical batch
// resubmission is served from the wire layer with every slot marked
// cached, and a batch containing a noCache job is never stored.
func TestWireHitBatch(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 2})
	s.solve = instantSolve
	batch := BatchRequest{Requests: []SolveRequest{
		{Instance: duedate.PaperExample(duedate.CDD), Engine: duedate.EngineCPUSerial, Iterations: 5, Seed: 1},
		{Instance: duedate.PaperExample(duedate.UCDDCP), Engine: duedate.EngineCPUSerial, Iterations: 5, Seed: 2},
	}}
	status, _ := postJSON(t, ts.URL+"/v1/batch", batch)
	if status != http.StatusOK {
		t.Fatalf("first batch: %d", status)
	}
	if s.wire.len() != 1 {
		t.Fatalf("wire cache holds %d entries after clean batch, want 1", s.wire.len())
	}
	status, body := postJSON(t, ts.URL+"/v1/batch", batch)
	if status != http.StatusOK {
		t.Fatalf("batch resubmission: %d", status)
	}
	var resp BatchResponse
	decodeInto(t, body, &resp)
	if len(resp.Results) != 2 {
		t.Fatalf("batch returned %d results, want 2", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Status != http.StatusOK || r.Response == nil || !r.Response.Cached {
			t.Errorf("slot %d: status %d cached %v, want 200/cached", i, r.Status, r.Response != nil && r.Response.Cached)
		}
	}
	// A batch with a noCache slot must not be stored.
	batch.Requests[0].NoCache = true
	if status, _ := postJSON(t, ts.URL+"/v1/batch", batch); status != http.StatusOK {
		t.Fatalf("noCache batch: %d", status)
	}
	if s.wire.len() != 1 {
		t.Errorf("noCache batch entered the wire cache (len %d, want 1)", s.wire.len())
	}
}

// TestReadBodyTooLarge pins the oversized-body rejection the manual read
// loop inherited from http.MaxBytesReader.
func TestReadBodyTooLarge(t *testing.T) {
	s := New(Config{Pool: 1})
	defer s.Drain(context.Background())
	r := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(make([]byte, maxBodyBytes+1)))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("oversized body answered %d, want 400", w.Code)
	}
}

// nullWriter is an http.ResponseWriter whose header map persists across
// requests, modelling the reused response state of a keep-alive
// connection; writes are discarded.
type nullWriter struct{ h http.Header }

func (w *nullWriter) Header() http.Header         { return w.h }
func (w *nullWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullWriter) WriteHeader(int)             {}

// reusableBody adapts a resettable bytes.Reader as a request body.
type reusableBody struct{ *bytes.Reader }

func (reusableBody) Close() error { return nil }

// benchServeAllocs drives b.N identical requests through ServeHTTP after
// one priming request, so every timed iteration is the steady-state wire
// path. The allocs/op this reports is the number the CI guard
// (scripts/serve-allocs-guard.sh) holds at or below the checked-in
// threshold.
func benchServeAllocs(b *testing.B, path string, payload any) {
	s := New(Config{Pool: 1})
	defer s.Drain(context.Background())
	s.solve = instantSolve
	body, err := json.Marshal(payload)
	if err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(body)
	r := httptest.NewRequest(http.MethodPost, path, nil)
	r.Body = reusableBody{rd}
	w := &nullWriter{h: make(http.Header)}
	// Prime: the first request solves and stores the wire entry.
	s.ServeHTTP(w, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		s.ServeHTTP(w, r)
	}
}

func BenchmarkServeSolveAllocs(b *testing.B) {
	benchServeAllocs(b, "/v1/solve", SolveRequest{
		Instance: duedate.PaperExample(duedate.CDD), Algorithm: algp(duedate.SA),
		Engine: duedate.EngineCPUSerial, Iterations: 5, Seed: 1,
	})
}

func BenchmarkServeBatchAllocs(b *testing.B) {
	benchServeAllocs(b, "/v1/batch", BatchRequest{Requests: []SolveRequest{
		{Instance: duedate.PaperExample(duedate.CDD), Engine: duedate.EngineCPUSerial, Iterations: 5, Seed: 1},
		{Instance: duedate.PaperExample(duedate.UCDDCP), Engine: duedate.EngineCPUSerial, Iterations: 5, Seed: 2},
	}})
}
