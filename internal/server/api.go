package server

import (
	"fmt"
	"time"

	duedate "repro"
	"repro/internal/problem"
)

// SolveRequest is the wire form of one solve job: the instance (in the
// internal/problem JSON format) plus the solver configuration. Absent
// fields select the facade defaults — the zero request solves with the
// paper's GPU-SA configuration — so the minimal body is just
// {"instance": {...}}.
type SolveRequest struct {
	// Instance is the CDD, UCDDCP or EARLYWORK instance to solve — single-
	// or parallel-machine (a "machines" field > 1 in the instance JSON);
	// it is validated while decoding (problem.Instance.UnmarshalJSON), and
	// semantic rejections (unknown kind, negative machine count) answer
	// 422 instead of the generic 400 of malformed bodies.
	Instance *problem.Instance `json:"instance"`
	// Algorithm names the metaheuristic ("SA", "DPSO", "TA", "ES";
	// default SA).
	Algorithm duedate.Algorithm `json:"algorithm,omitempty"`
	// Engine names the backend ("gpu", "cpu-parallel", "cpu-serial";
	// default gpu).
	Engine duedate.Engine `json:"engine,omitempty"`
	// Iterations is the per-chain iteration budget (default 1000).
	Iterations int `json:"iterations,omitempty"`
	// Grid and Block set the ensemble geometry (default 4 × 192).
	Grid  int `json:"grid,omitempty"`
	Block int `json:"block,omitempty"`
	// Seed derives all RNG streams (0 is the facade's "unset" sentinel,
	// rewritten to 1).
	Seed uint64 `json:"seed,omitempty"`
	// Cooling, Pert and TempSamples are the SA tuning knobs (defaults
	// 0.88, 4, 5000).
	Cooling     float64 `json:"cooling,omitempty"`
	Pert        int     `json:"pert,omitempty"`
	TempSamples int     `json:"tempSamples,omitempty"`
	// Persistent selects the persistent-kernel GPU SA engine.
	Persistent bool `json:"persistent,omitempty"`
	// Workers bounds the host goroutines of the cpu-parallel engine.
	Workers int `json:"workers,omitempty"`
	// TimeoutMs is the per-request wall-clock budget in milliseconds,
	// measured from admission (so queue wait counts against it). On
	// expiry the engine stops cooperatively and the response carries the
	// best-so-far with interrupted=true. Zero selects the server's
	// default; the server's maximum always clamps it.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// NoCache bypasses the result cache for this request (the solve still
	// populates it).
	NoCache bool `json:"noCache,omitempty"`
}

// options translates the request into facade Options. The deadline is
// not set here — the pool stamps it at admission time.
func (r *SolveRequest) options() duedate.Options {
	return duedate.Options{
		Algorithm:   r.Algorithm,
		Engine:      r.Engine,
		Iterations:  r.Iterations,
		Grid:        r.Grid,
		Block:       r.Block,
		Seed:        r.Seed,
		Cooling:     r.Cooling,
		Pert:        r.Pert,
		TempSamples: r.TempSamples,
		Persistent:  r.Persistent,
		Workers:     r.Workers,
	}
}

// cacheKey derives the result-cache key: the instance's canonical hash
// plus every option that participates in the solve trajectory. Workers
// is deliberately excluded — fixed-seed results are bit-identical across
// worker counts (pinned by the engine-layer tests) — as is the metrics
// level, which never perturbs a trajectory.
func (r *SolveRequest) cacheKey() string {
	return fmt.Sprintf("%s|%s|%s|it=%d|g=%d|b=%d|seed=%d|mu=%g|pert=%d|ts=%d|pers=%t",
		r.Instance.CanonicalHash(), r.Algorithm, r.Engine,
		r.Iterations, r.Grid, r.Block, r.Seed,
		r.Cooling, r.Pert, r.TempSamples, r.Persistent)
}

// SolveResponse is the wire form of one solve outcome. For identical
// (instance, algorithm, engine, seed, iterations, geometry) the cost and
// sequence are bit-identical to a direct duedate.SolveContext call — the
// server adds queueing and caching, never a different trajectory.
type SolveResponse struct {
	// Instance echoes the instance name, Kind the problem ("CDD",
	// "UCDDCP" or "EARLYWORK"), N the job count, Machines the machine
	// count (omitted on single-machine instances, matching the instance
	// wire form) and InstanceHash the canonical SHA-256 digest used as the
	// cache-key prefix — it covers the machine count, so the same job set
	// on a different machine count never collides in the cache.
	Instance     string `json:"instance"`
	Kind         string `json:"kind"`
	N            int    `json:"n"`
	Machines     int    `json:"machines,omitempty"`
	InstanceHash string `json:"instanceHash"`
	// Algorithm and Engine echo the (defaulted) solver selection; Seed
	// the (defaulted) RNG seed.
	Algorithm duedate.Algorithm `json:"algorithm"`
	Engine    duedate.Engine    `json:"engine"`
	Seed      uint64            `json:"seed"`
	// Iterations is the per-chain iteration count actually executed.
	Iterations int `json:"iterations"`
	// Cost is the exact objective of Sequence; Start the optimal first
	// start time; Compressions the per-job compressions (UCDDCP only).
	// On parallel-machine instances Sequence is the solver's delimiter
	// genome (values ≥ n are machine separators), Assignment records each
	// job's machine (indexed by job id) and MachineStarts each machine's
	// start time; on single-machine instances Sequence is the plain job
	// order and both extra fields are omitted, keeping the wire form
	// byte-identical to the pre-generalization service.
	Cost          int64   `json:"cost"`
	Sequence      []int   `json:"sequence"`
	Start         int64   `json:"start"`
	Compressions  []int64 `json:"compressions,omitempty"`
	Assignment    []int   `json:"assignment,omitempty"`
	MachineStarts []int64 `json:"machineStarts,omitempty"`
	// Evaluations counts fitness evaluations across all chains; ElapsedNs
	// is the solve's host wall time (the original solve's for cache
	// hits); SimSeconds the simulated device time on the GPU engine.
	Evaluations int64   `json:"evaluations"`
	ElapsedNs   int64   `json:"elapsedNs"`
	SimSeconds  float64 `json:"simSeconds,omitempty"`
	// Interrupted reports a deadline/cancellation cut the run short; the
	// result is still the valid best-so-far. Interrupted results are
	// never cached.
	Interrupted bool `json:"interrupted"`
	// Cached reports that this response was served from the result cache.
	Cached bool `json:"cached"`
}

// buildResponse assembles the response for a completed solve.
func buildResponse(req *SolveRequest, opts duedate.Options, res duedate.Result) *SolveResponse {
	sched := res.Schedule(req.Instance)
	seed := opts.Seed
	if seed == 0 {
		seed = 1 // the facade's documented Seed-0 sentinel
	}
	resp := &SolveResponse{
		Instance:      req.Instance.Name,
		Kind:          req.Instance.Kind.String(),
		N:             req.Instance.N(),
		InstanceHash:  req.Instance.CanonicalHash(),
		Algorithm:     opts.Algorithm,
		Engine:        opts.Engine,
		Seed:          seed,
		Iterations:    res.Iterations,
		Cost:          res.BestCost,
		Sequence:      res.BestSeq,
		Start:         sched.Start,
		Compressions:  sched.X,
		Assignment:    sched.Assign,
		MachineStarts: sched.Starts,
		Evaluations:   res.Evaluations,
		ElapsedNs:     int64(res.Elapsed),
		SimSeconds:    res.SimSeconds,
		Interrupted:   res.Interrupted,
	}
	if m := req.Instance.MachineCount(); m > 1 {
		resp.Machines = m
	}
	return resp
}

// BatchRequest is the wire form of POST /v1/batch: independent solve
// jobs that share the server's worker pool and cache.
type BatchRequest struct {
	// Requests are the jobs; each is admitted (and possibly rejected)
	// individually.
	Requests []SolveRequest `json:"requests"`
}

// BatchResult is one slot of a batch response: either a response or an
// error with its HTTP-equivalent status (e.g. 429 for a job that found
// the queue full, 422 for an unsupported pairing).
type BatchResult struct {
	// Response is the solve outcome, nil when the slot errored.
	Response *SolveResponse `json:"response,omitempty"`
	// Error describes the failure, empty on success.
	Error string `json:"error,omitempty"`
	// Status is the slot's HTTP-equivalent status code (200 on success).
	Status int `json:"status"`
}

// BatchResponse is the wire form of a batch outcome, one result per
// request in order.
type BatchResponse struct {
	// Results holds one slot per request, index-aligned.
	Results []BatchResult `json:"results"`
}

// PairingInfo is one registered algorithm×engine combination as reported
// by GET /v1/pairings.
type PairingInfo struct {
	// Algorithm and Engine name the combination in the same spelling the
	// solve endpoints accept.
	Algorithm duedate.Algorithm `json:"algorithm"`
	Engine    duedate.Engine    `json:"engine"`
}

// PairingsResponse is the wire form of GET /v1/pairings: the live driver
// registry, so clients discover supported combinations instead of
// hardcoding them.
type PairingsResponse struct {
	// Pairings is sorted by algorithm then engine (duedate.Pairings).
	Pairings []PairingInfo `json:"pairings"`
}

// ErrorResponse is the wire form of any non-2xx response.
type ErrorResponse struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
	// Status echoes the HTTP status code.
	Status int `json:"status"`
}

// HealthResponse is the wire form of GET /healthz.
type HealthResponse struct {
	// Status is "ok" while serving and "draining" once shutdown began
	// (reported with a 503, so load balancers stop routing here).
	Status string `json:"status"`
	// Pool and QueueDepth echo the configured capacity.
	Pool       int `json:"pool"`
	QueueDepth int `json:"queueDepth"`
}

// ServerStats is the server half of the /metrics payload: admission and
// cache counters since process start.
type ServerStats struct {
	// Requests counts solve jobs admitted to the pool (batch jobs count
	// individually); Completed the subset that finished.
	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	// CacheHits and CacheMisses count result-cache lookups; Rejected
	// counts jobs turned away with 429 by queue admission control.
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	Rejected    int64 `json:"rejected"`
	// Errors counts solves that returned an error (invalid options,
	// unsupported pairings, internal failures).
	Errors int64 `json:"errors"`
	// Active is the number of solves executing right now, Queued the
	// number waiting in the admission queue.
	Active int64 `json:"active"`
	Queued int   `json:"queued"`
	// Pool and QueueDepth echo the configured capacity; Draining reports
	// shutdown in progress.
	Pool       int  `json:"pool"`
	QueueDepth int  `json:"queueDepth"`
	Draining   bool `json:"draining"`
	// Uptime is the time since the server was created.
	Uptime time.Duration `json:"uptimeNs"`
}
