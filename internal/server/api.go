package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	duedate "repro"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/problem"
)

// SolveRequest is the wire form of one solve job: the instance (in the
// internal/problem JSON format) plus the solver configuration. Absent
// fields select the facade defaults — the zero request solves with the
// paper's GPU-SA configuration — so the minimal body is just
// {"instance": {...}}.
type SolveRequest struct {
	// Instance is the CDD, UCDDCP or EARLYWORK instance to solve — single-
	// or parallel-machine (a "machines" field > 1 in the instance JSON);
	// it is validated while decoding (problem.Instance.UnmarshalJSON), and
	// semantic rejections (unknown kind, negative machine count) answer
	// 422 instead of the generic 400 of malformed bodies.
	Instance *problem.Instance `json:"instance"`
	// Algorithm names the solver ("SA", "DPSO", "TA", "ES", "EXACT-DP",
	// or "AUTO" for the self-tuning portfolio driver). Absent (null), the
	// server's configured default algorithm applies — historically SA,
	// switchable to AUTO with duedated -algorithm; a pointer so an
	// explicit "SA" and "field absent" stay distinguishable.
	Algorithm *duedate.Algorithm `json:"algorithm,omitempty"`
	// Engine names the backend ("gpu", "cpu-parallel", "cpu-serial";
	// default gpu).
	Engine duedate.Engine `json:"engine,omitempty"`
	// Iterations is the per-chain iteration budget (default 1000).
	Iterations int `json:"iterations,omitempty"`
	// Grid and Block set the ensemble geometry (default 4 × 192).
	Grid  int `json:"grid,omitempty"`
	Block int `json:"block,omitempty"`
	// Seed derives all RNG streams (0 is the facade's "unset" sentinel,
	// rewritten to 1).
	Seed uint64 `json:"seed,omitempty"`
	// Cooling, Pert and TempSamples are the SA tuning knobs (defaults
	// 0.88, 4, 5000).
	Cooling     float64 `json:"cooling,omitempty"`
	Pert        int     `json:"pert,omitempty"`
	TempSamples int     `json:"tempSamples,omitempty"`
	// Persistent selects the persistent-kernel GPU SA engine.
	Persistent bool `json:"persistent,omitempty"`
	// Workers bounds the host goroutines of the cpu-parallel engine.
	Workers int `json:"workers,omitempty"`
	// TimeoutMs is the per-request wall-clock budget in milliseconds,
	// measured from admission (so queue wait counts against it). On
	// expiry the engine stops cooperatively and the response carries the
	// best-so-far with interrupted=true. Zero selects the server's
	// default; the server's maximum always clamps it.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// NoCache bypasses the result cache for this request (the solve still
	// populates it).
	NoCache bool `json:"noCache,omitempty"`
}

// applyDefaults resolves the request's absent algorithm to the server's
// configured default. Every decode path calls it exactly once before
// options(), cacheKey() or the job store run, so those always see a
// concrete selection.
func (r *SolveRequest) applyDefaults(def duedate.Algorithm) {
	if r.Algorithm == nil {
		a := def
		r.Algorithm = &a
	}
}

// options translates the request into facade Options. The deadline is
// not set here — the pool stamps it at admission time.
func (r *SolveRequest) options() duedate.Options {
	return duedate.Options{
		Algorithm:   *r.Algorithm,
		Engine:      r.Engine,
		Iterations:  r.Iterations,
		Grid:        r.Grid,
		Block:       r.Block,
		Seed:        r.Seed,
		Cooling:     r.Cooling,
		Pert:        r.Pert,
		TempSamples: r.TempSamples,
		Persistent:  r.Persistent,
		Workers:     r.Workers,
	}
}

// cacheKey derives the result-cache key: the instance's canonical hash
// plus every option that participates in the solve trajectory. Workers
// is deliberately excluded — fixed-seed results are bit-identical across
// worker counts (pinned by the engine-layer tests) — as is the metrics
// level, which never perturbs a trajectory.
func (r *SolveRequest) cacheKey() string {
	return fmt.Sprintf("%s|%s|%s|it=%d|g=%d|b=%d|seed=%d|mu=%g|pert=%d|ts=%d|pers=%t",
		r.Instance.CanonicalHash(), *r.Algorithm, r.Engine,
		r.Iterations, r.Grid, r.Block, r.Seed,
		r.Cooling, r.Pert, r.TempSamples, r.Persistent)
}

// SolveResponse is the wire form of one solve outcome. For identical
// (instance, algorithm, engine, seed, iterations, geometry) the cost and
// sequence are bit-identical to a direct duedate.SolveContext call — the
// server adds queueing and caching, never a different trajectory.
type SolveResponse struct {
	// Instance echoes the instance name, Kind the problem ("CDD",
	// "UCDDCP" or "EARLYWORK"), N the job count, Machines the machine
	// count (omitted on single-machine instances, matching the instance
	// wire form) and InstanceHash the canonical SHA-256 digest used as the
	// cache-key prefix — it covers the machine count, so the same job set
	// on a different machine count never collides in the cache.
	Instance     string `json:"instance"`
	Kind         string `json:"kind"`
	N            int    `json:"n"`
	Machines     int    `json:"machines,omitempty"`
	InstanceHash string `json:"instanceHash"`
	// Algorithm and Engine echo the (defaulted) solver selection; Seed
	// the (defaulted) RNG seed.
	Algorithm duedate.Algorithm `json:"algorithm"`
	Engine    duedate.Engine    `json:"engine"`
	Seed      uint64            `json:"seed"`
	// Iterations is the per-chain iteration count actually executed.
	Iterations int `json:"iterations"`
	// Cost is the exact objective of Sequence; Start the optimal first
	// start time; Compressions the per-job compressions (UCDDCP only).
	// On parallel-machine instances Sequence is the solver's delimiter
	// genome (values ≥ n are machine separators), Assignment records each
	// job's machine (indexed by job id) and MachineStarts each machine's
	// start time; on single-machine instances Sequence is the plain job
	// order and both extra fields are omitted, keeping the wire form
	// byte-identical to the pre-generalization service.
	Cost          int64   `json:"cost"`
	Sequence      []int   `json:"sequence"`
	Start         int64   `json:"start"`
	Compressions  []int64 `json:"compressions,omitempty"`
	Assignment    []int   `json:"assignment,omitempty"`
	MachineStarts []int64 `json:"machineStarts,omitempty"`
	// Evaluations counts fitness evaluations across all chains; ElapsedNs
	// is the solve's host wall time (the original solve's for cache
	// hits); SimSeconds the simulated device time on the GPU engine.
	Evaluations int64   `json:"evaluations"`
	ElapsedNs   int64   `json:"elapsedNs"`
	SimSeconds  float64 `json:"simSeconds,omitempty"`
	// Interrupted reports a deadline/cancellation cut the run short; the
	// result is still the valid best-so-far. Interrupted results are
	// never cached.
	Interrupted bool `json:"interrupted"`
	// Optimal reports an optimality certificate: the solver proved Cost
	// is the global optimum (only the exact EXACT-DP layer sets it, after
	// self-checking its certificate sequence against the evaluator).
	// Omitted — not false — for the metaheuristics, which cannot prove
	// optimality even when they reach it.
	Optimal bool `json:"optimal,omitempty"`
	// Cached reports that this response was served from the result cache.
	Cached bool `json:"cached"`
}

// buildResponse assembles the response for a completed solve.
func buildResponse(req *SolveRequest, opts duedate.Options, res duedate.Result) *SolveResponse {
	sched := res.Schedule(req.Instance)
	seed := opts.Seed
	if seed == 0 {
		seed = 1 // the facade's documented Seed-0 sentinel
	}
	resp := &SolveResponse{
		Instance:      req.Instance.Name,
		Kind:          req.Instance.Kind.String(),
		N:             req.Instance.N(),
		InstanceHash:  req.Instance.CanonicalHash(),
		Algorithm:     opts.Algorithm,
		Engine:        opts.Engine,
		Seed:          seed,
		Iterations:    res.Iterations,
		Cost:          res.BestCost,
		Sequence:      res.BestSeq,
		Start:         sched.Start,
		Compressions:  sched.X,
		Assignment:    sched.Assign,
		MachineStarts: sched.Starts,
		Evaluations:   res.Evaluations,
		ElapsedNs:     int64(res.Elapsed),
		SimSeconds:    res.SimSeconds,
		Interrupted:   res.Interrupted,
		Optimal:       res.Optimal,
	}
	if m := req.Instance.MachineCount(); m > 1 {
		resp.Machines = m
	}
	return resp
}

// BatchRequest is the wire form of POST /v1/batch: independent solve
// jobs that share the server's worker pool and cache.
type BatchRequest struct {
	// Requests are the jobs; each is admitted (and possibly rejected)
	// individually.
	Requests []SolveRequest `json:"requests"`
}

// BatchResult is one slot of a batch response: either a response or an
// error with its HTTP-equivalent status (e.g. 429 for a job that found
// the queue full, 422 for an unsupported pairing).
type BatchResult struct {
	// Response is the solve outcome, nil when the slot errored.
	Response *SolveResponse `json:"response,omitempty"`
	// Error describes the failure, empty on success; Code is its stable
	// error code (the same table as top-level error envelopes).
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
	// Status is the slot's HTTP-equivalent status code (200 on success).
	Status int `json:"status"`
}

// BatchResponse is the wire form of a batch outcome, one result per
// request in order.
type BatchResponse struct {
	// Results holds one slot per request, index-aligned.
	Results []BatchResult `json:"results"`
}

// PairingInfo is one registered algorithm×engine combination as reported
// by GET /v1/pairings, including its capability surface so clients route
// instances (problem kind, machine count) without trial-and-error 422s.
type PairingInfo struct {
	// Algorithm and Engine name the combination in the same spelling the
	// solve endpoints accept.
	Algorithm duedate.Algorithm `json:"algorithm"`
	Engine    duedate.Engine    `json:"engine"`
	// Kinds lists the problem kinds the pairing evaluates ("CDD",
	// "UCDDCP", "EARLYWORK"), enumerated live from the driver registry.
	Kinds []string `json:"kinds"`
	// Machines reports parallel-machine (machines > 1) support.
	Machines bool `json:"machines"`
}

// PairingsResponse is the wire form of GET /v1/pairings: the live driver
// registry, so clients discover supported combinations instead of
// hardcoding them.
type PairingsResponse struct {
	// Pairings is sorted by algorithm then engine (duedate.Pairings).
	Pairings []PairingInfo `json:"pairings"`
}

// Stable error codes of the unified error envelope. Every non-2xx
// response across every endpoint carries exactly one of these in
// ErrorResponse.Error.Code; they are part of the wire contract (clients
// and the smoke scripts branch on them), so existing codes never change
// meaning.
const (
	// CodeInvalidRequest: malformed JSON, structural mistakes (missing
	// or unknown fields), oversized bodies (400).
	CodeInvalidRequest = "invalid_request"
	// CodeInvalidOptions: well-formed options that fail facade
	// validation — duedate.ErrInvalidOptions (400).
	CodeInvalidOptions = "invalid_options"
	// CodeInvalidSequence: duedate.ErrInvalidSequence (400).
	CodeInvalidSequence = "invalid_sequence"
	// CodeClientGone: the client vanished while the job was queued —
	// context cancellation/expiry surfaced as the solve error (400).
	CodeClientGone = "client_gone"
	// CodeUnsupportedPairing: duedate.ErrUnsupportedPairing (422).
	CodeUnsupportedPairing = "unsupported_pairing"
	// CodeUnknownKind: problem.ErrUnknownKind — a well-formed instance
	// of a kind the service does not know (422).
	CodeUnknownKind = "unknown_kind"
	// CodeInvalidMachines: problem.ErrMachines — an invalid machine
	// count (422).
	CodeInvalidMachines = "invalid_machines"
	// CodeNotFound: unknown path or unknown/evicted job id (404).
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: wrong HTTP method on a known path (405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeExactInapplicable: exact.ErrInapplicable — the EXACT-DP layer
	// was asked for an instance outside its provable domain (422).
	CodeExactInapplicable = "exact_inapplicable"
	// CodeExactBudget: exact.ErrTooLarge — the instance exceeds the
	// exact layer's enumeration limit or DP state budget (422).
	CodeExactBudget = "exact_budget"
	// CodeQueueFull: admission control turned the request away because
	// the pool queue is saturated (429, with Retry-After).
	CodeQueueFull = "queue_full"
	// CodeDraining: the server is shutting down (503, with Retry-After).
	CodeDraining = "draining"
	// CodeInternal: a genuine internal failure (500).
	CodeInternal = "internal"
)

// sentinelCodes is THE sentinel→(status, code) table: every error a
// solve can return is mapped here (first match wins), and everything
// unmatched is an internal 500. Caller mistakes keep their PR 3 sentinel
// identity instead of collapsing into opaque 500s; context errors
// surface only for clients that vanished while queued, and 400 keeps
// them out of the 5xx alerting bucket.
var sentinelCodes = []struct {
	err    error
	status int
	code   string
}{
	{duedate.ErrUnsupportedPairing, http.StatusUnprocessableEntity, CodeUnsupportedPairing},
	{problem.ErrUnknownKind, http.StatusUnprocessableEntity, CodeUnknownKind},
	{problem.ErrMachines, http.StatusUnprocessableEntity, CodeInvalidMachines},
	{exact.ErrInapplicable, http.StatusUnprocessableEntity, CodeExactInapplicable},
	{exact.ErrTooLarge, http.StatusUnprocessableEntity, CodeExactBudget},
	{duedate.ErrInvalidOptions, http.StatusBadRequest, CodeInvalidOptions},
	{duedate.ErrInvalidSequence, http.StatusBadRequest, CodeInvalidSequence},
	{context.Canceled, http.StatusBadRequest, CodeClientGone},
	{context.DeadlineExceeded, http.StatusBadRequest, CodeClientGone},
}

// errorCode maps a solve error onto its HTTP status and stable code via
// the sentinelCodes table.
func errorCode(err error) (int, string) {
	for _, sc := range sentinelCodes {
		if errors.Is(err, sc.err) {
			return sc.status, sc.code
		}
	}
	return http.StatusInternalServerError, CodeInternal
}

// ErrorDetail is the payload of the unified error envelope.
type ErrorDetail struct {
	// Code is the stable machine-readable error code (one of the Code*
	// constants).
	Code string `json:"code"`
	// Message is the human-readable failure description.
	Message string `json:"message"`
}

// ErrorResponse is the wire form of every non-2xx response:
// {"error":{"code":"...","message":"..."}}.
type ErrorResponse struct {
	// Error carries the stable code and the description.
	Error ErrorDetail `json:"error"`
}

// Job states as reported by the jobs API. A job is live in JobQueued
// and JobRunning and terminal in the other three; terminal jobs are
// immutable and subject to the store's capacity/TTL retention.
const (
	// JobQueued: admitted, waiting for a pool worker.
	JobQueued = "queued"
	// JobRunning: a pool worker is executing the solve.
	JobRunning = "running"
	// JobDone: the solve completed (possibly interrupted by its own
	// deadline); Result is set.
	JobDone = "done"
	// JobFailed: the solve returned an error; Error is set.
	JobFailed = "failed"
	// JobCancelled: DELETE (or the drain grace) cancelled the job;
	// Result carries the honest best-so-far when the solve had started.
	JobCancelled = "cancelled"
)

// JobView is the wire form of one async job, returned by POST /v1/jobs
// (202), GET /v1/jobs/{id}, DELETE /v1/jobs/{id}, and as the data of
// the terminal "result" SSE event.
type JobView struct {
	// ID is the job id: a monotonic submission counter joined with the
	// instance's canonical-hash prefix (never wall clock, so ids are
	// reproducible across identical daemon lifetimes).
	ID string `json:"id"`
	// State is one of queued|running|done|failed|cancelled.
	State string `json:"state"`
	// InstanceHash, Algorithm, Engine and Seed echo the admitted
	// request, so a poll identifies the job without re-reading the body.
	InstanceHash string            `json:"instanceHash"`
	Algorithm    duedate.Algorithm `json:"algorithm"`
	Engine       duedate.Engine    `json:"engine"`
	Seed         uint64            `json:"seed"`
	// Result is the final SolveResponse once done — bit-identical to a
	// direct /v1/solve of the same request — or the honest best-so-far
	// with interrupted=true on a mid-solve cancellation. Nil while live
	// and on jobs cancelled before a worker picked them up.
	Result *SolveResponse `json:"result,omitempty"`
	// Error is set on failed jobs: the same stable-code envelope payload
	// a synchronous solve would have answered with.
	Error *ErrorDetail `json:"error,omitempty"`
}

// JobSubmitResponse is the wire form of POST /v1/jobs (HTTP 202): the
// job view plus its polling location (also in the Location header).
type JobSubmitResponse struct {
	// Job is the admitted job (state queued, or already done on a result
	// cache hit).
	Job JobView `json:"job"`
	// Location is the polling URL path for this job.
	Location string `json:"location"`
}

// SnapshotEvent is the data payload of one SSE "snapshot" event on
// GET /v1/jobs/{id}/events: the wire form of a core.Snapshot progress
// report (best-so-far genome, exact cost, evaluation count, elapsed
// host time).
type SnapshotEvent struct {
	// BestCost is the exact objective of BestSeq.
	BestCost int64 `json:"bestCost"`
	// BestSeq is the best genome found so far.
	BestSeq []int `json:"bestSeq"`
	// Evaluations counts fitness evaluations across all chains so far.
	Evaluations int64 `json:"evaluations"`
	// ElapsedNs is the host wall time since the solve started.
	ElapsedNs int64 `json:"elapsedNs"`
}

// snapshotEvent translates an engine checkpoint into its wire form.
func snapshotEvent(s core.Snapshot) SnapshotEvent {
	return SnapshotEvent{
		BestCost:    s.BestCost,
		BestSeq:     s.BestSeq,
		Evaluations: s.Evaluations,
		ElapsedNs:   int64(s.Elapsed),
	}
}

// HealthResponse is the wire form of GET /healthz.
type HealthResponse struct {
	// Status is "ok" while serving and "draining" once shutdown began
	// (reported with a 503, so load balancers stop routing here).
	Status string `json:"status"`
	// Pool and QueueDepth echo the configured capacity.
	Pool       int `json:"pool"`
	QueueDepth int `json:"queueDepth"`
}

// ServerStats is the server half of the /metrics payload: admission and
// cache counters since process start.
type ServerStats struct {
	// Requests counts solve jobs admitted to the pool (batch jobs count
	// individually); Completed the subset that finished.
	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	// CacheHits and CacheMisses count result-cache lookups; Rejected
	// counts jobs turned away with 429 by queue admission control.
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	Rejected    int64 `json:"rejected"`
	// Errors counts solves that returned an error (invalid options,
	// unsupported pairings, internal failures).
	Errors int64 `json:"errors"`
	// MeanSolveNs is the mean wall time of completed solves since
	// process start — the base of the Retry-After estimate on 429/503.
	MeanSolveNs int64 `json:"meanSolveNs"`
	// Active is the number of solves executing right now, Queued the
	// number waiting in the admission queue.
	Active int64 `json:"active"`
	Queued int   `json:"queued"`
	// Pool and QueueDepth echo the configured capacity; Draining reports
	// shutdown in progress.
	Pool       int  `json:"pool"`
	QueueDepth int  `json:"queueDepth"`
	Draining   bool `json:"draining"`
	// Uptime is the time since the server was created.
	Uptime time.Duration `json:"uptimeNs"`
}
