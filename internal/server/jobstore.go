package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	duedate "repro"
	"repro/internal/core"
	"repro/internal/obs"
)

// This file is the async job store behind the /v1/jobs API: an
// in-memory, mutex-guarded registry of solve jobs riding the existing
// bounded pool. A job is live (queued → running) until its solve
// completes, fails, or is cancelled, then terminal and immutable.
// Retention is bounded two ways: terminal jobs past the configured
// capacity are evicted LRU, and terminal jobs older than the TTL are
// swept on the store's lifecycle events (submissions and drain) — the
// poll/stream hot paths never read the wall clock. Progress snapshots
// fan out from the engine's ProgressFunc to any number of concurrent
// SSE subscribers per job; the latest snapshot is retained so a late
// subscriber starts from the current best instead of silence.

// job is one async solve tracked by the store. The id, submission echo
// and channels are immutable; state, result and subscriber fields are
// guarded by the owning store's mutex.
type job struct {
	// id is the job id: monotonic submission counter + canonical-hash
	// prefix (reproducible — never derived from wall clock).
	id string
	// hash, algorithm, engine and seed echo the admitted request.
	hash      string
	algorithm duedate.Algorithm
	engine    duedate.Engine
	seed      uint64
	// cancel cancels the job's solve context (DELETE and the drain
	// grace path); ctx is that context's handle for the worker.
	cancel context.CancelFunc
	// state is one of the Job* constants.
	state string
	// resp is the terminal result (done, or cancelled mid-solve); errd
	// the terminal failure; status the failure's HTTP-equivalent status.
	resp   *SolveResponse
	errd   *ErrorDetail
	status int
	// lastSnap is the most recent progress snapshot, replayed to new
	// subscribers.
	lastSnap *core.Snapshot
	// subs are the live SSE subscribers.
	subs map[*jobSub]struct{}
	// done is closed exactly once, at the terminal transition.
	done chan struct{}
	// el is the job's position in the store's terminal LRU list (nil
	// while live); doneAt the terminal timestamp driving TTL expiry.
	el     *list.Element
	doneAt time.Time
}

// jobSub is one SSE subscriber: a buffered snapshot channel. Sends are
// non-blocking — a slow consumer drops intermediate snapshots but never
// stalls the solve, and always receives the terminal result.
type jobSub struct {
	ch chan core.Snapshot
}

// jobSubBuffer is the per-subscriber snapshot buffer depth; engines
// emit only on ensemble-best improvements, so 32 absorbs every
// realistic burst between consumer reads.
const jobSubBuffer = 32

// jobStore is the bounded async job registry. All fields are guarded by
// mu; the gauges are exported through /metrics.
type jobStore struct {
	mu sync.Mutex
	// capacity bounds retained terminal jobs; ttl expires them (<= 0:
	// no expiry).
	capacity int
	ttl      time.Duration
	seq      uint64
	jobs     map[string]*job
	// terminal is the LRU list of terminal jobs, front = most recently
	// used.
	terminal *list.List
	gauges   *obs.GaugeSet
}

// newJobStore builds a store retaining up to capacity terminal jobs for
// at most ttl (ttl <= 0: no expiry), publishing its state counts into
// gauges.
func newJobStore(capacity int, ttl time.Duration, gauges *obs.GaugeSet) *jobStore {
	return &jobStore{
		capacity: capacity,
		ttl:      ttl,
		jobs:     make(map[string]*job),
		terminal: list.New(),
		gauges:   gauges,
	}
}

// add admits one job in the queued state, sweeping expired terminal
// jobs first (submission is the store's lifecycle clock — the single
// time.Now here serves both the sweep and nothing else on the serve
// paths).
func (st *jobStore) add(req *SolveRequest, cancel context.CancelFunc) *job {
	seed := req.Seed
	if seed == 0 {
		seed = 1 // the facade's documented Seed-0 sentinel
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(time.Now())
	st.seq++
	hash := req.Instance.CanonicalHash()
	j := &job{
		id:        fmt.Sprintf("j%06d-%.12s", st.seq, hash),
		hash:      hash,
		algorithm: *req.Algorithm,
		engine:    req.Engine,
		seed:      seed,
		cancel:    cancel,
		state:     JobQueued,
		subs:      make(map[*jobSub]struct{}),
		done:      make(chan struct{}),
	}
	st.jobs[j.id] = j
	st.gauges.Add("submitted", 1)
	st.gauges.Add("queued", 1)
	return j
}

// abort removes a job that was never admitted to the pool (queue full
// at submission) as if it had not existed.
func (st *jobStore) abort(j *job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.jobs, j.id)
	st.gauges.Add("submitted", -1)
	st.gauges.Add("queued", -1)
}

// get returns the job by id, refreshing its LRU position when terminal.
func (st *jobStore) get(id string) *job {
	st.mu.Lock()
	defer st.mu.Unlock()
	j := st.jobs[id]
	if j != nil && j.el != nil {
		st.terminal.MoveToFront(j.el)
	}
	return j
}

// tryRun flips a queued job to running when a pool worker picks it up.
// It returns false when the job is already terminal (cancelled while
// queued) — the worker discards the task without solving.
func (st *jobStore) tryRun(j *job) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	st.gauges.Add("queued", -1)
	st.gauges.Add("running", 1)
	return true
}

// publish fans one engine checkpoint out to the job's subscribers and
// retains it for late ones. It runs on the solve path (the engine's
// ProgressFunc), so sends never block: a full subscriber buffer drops
// the snapshot for that subscriber only.
func (st *jobStore) publish(j *job, snap core.Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j.state != JobRunning {
		return // a final emission racing the terminal transition
	}
	s := snap
	j.lastSnap = &s
	for sub := range j.subs {
		select {
		case sub.ch <- snap:
		default:
		}
	}
}

// subscribe attaches an SSE subscriber and returns it with the latest
// snapshot (nil when none was emitted yet). The job's done channel
// tells the subscriber when to emit the terminal result.
func (st *jobStore) subscribe(j *job) (*jobSub, *core.Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sub := &jobSub{ch: make(chan core.Snapshot, jobSubBuffer)}
	j.subs[sub] = struct{}{}
	st.gauges.Add("sseSubscribers", 1)
	return sub, j.lastSnap
}

// unsubscribe detaches an SSE subscriber.
func (st *jobStore) unsubscribe(j *job, sub *jobSub) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := j.subs[sub]; ok {
		delete(j.subs, sub)
		st.gauges.Add("sseSubscribers", -1)
	}
}

// finishDone completes a job with its final response.
func (st *jobStore) finishDone(j *job, resp *SolveResponse) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j.resp = resp
	st.terminalLocked(j, JobDone)
}

// finishFailed completes a job with the stable-code failure a
// synchronous solve would have answered with.
func (st *jobStore) finishFailed(j *job, status int, code, message string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j.errd = &ErrorDetail{Code: code, Message: message}
	j.status = status
	st.terminalLocked(j, JobFailed)
}

// finishCancelled completes a cancelled job; resp is the honest
// best-so-far (interrupted=true) when the solve had started, nil when
// the job was cancelled while still queued.
func (st *jobStore) finishCancelled(j *job, resp *SolveResponse) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j.resp = resp
	st.terminalLocked(j, JobCancelled)
}

// requestCancel cancels a live job: a queued job turns terminal
// immediately (its pool task becomes a no-op), a running job has its
// context cancelled and completes through the worker at the engine's
// next cooperative boundary. Terminal jobs are left untouched, making
// DELETE idempotent.
func (st *jobStore) requestCancel(j *job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch j.state {
	case JobQueued:
		j.cancel()
		st.terminalLocked(j, JobCancelled)
	case JobRunning:
		j.cancel()
	}
}

// cancelLive cancels every live job — the drain-grace path. Queued jobs
// turn terminal at once; running jobs stop at their engines' next
// cooperative boundary and publish their best-so-far through the
// workers.
func (st *jobStore) cancelLive() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, j := range st.jobs {
		switch j.state {
		case JobQueued:
			j.cancel()
			st.terminalLocked(j, JobCancelled)
		case JobRunning:
			j.cancel()
		}
	}
}

// beginDrain schedules cancelLive after the drain grace; the returned
// stop func releases the timer once the drain completes. A grace <= 0
// cancels immediately — drain then returns as soon as every engine
// reaches its next cooperative boundary.
func (st *jobStore) beginDrain(grace time.Duration) func() {
	if grace <= 0 {
		st.cancelLive()
		return func() {}
	}
	t := time.AfterFunc(grace, st.cancelLive)
	return func() { t.Stop() }
}

// terminalLocked performs the one-way live→terminal transition: state
// accounting, the done broadcast, LRU registration and capacity
// eviction. Callers hold st.mu and have set the terminal payload.
func (st *jobStore) terminalLocked(j *job, state string) {
	if j.el != nil {
		return // already terminal
	}
	switch j.state {
	case JobQueued:
		st.gauges.Add("queued", -1)
	case JobRunning:
		st.gauges.Add("running", -1)
	}
	j.state = state
	st.gauges.Add(state, 1)
	j.cancel() // release the context regardless of how the job ended
	j.doneAt = time.Now()
	j.el = st.terminal.PushFront(j)
	close(j.done)
	for st.terminal.Len() > st.capacity {
		last := st.terminal.Back()
		st.evictLocked(last.Value.(*job))
		st.gauges.Add("evicted", 1)
	}
}

// sweepLocked evicts terminal jobs whose TTL elapsed before now.
func (st *jobStore) sweepLocked(now time.Time) {
	if st.ttl <= 0 {
		return
	}
	for back := st.terminal.Back(); back != nil; {
		j := back.Value.(*job)
		if now.Sub(j.doneAt) < st.ttl {
			// The LRU tail is not necessarily the oldest completion, so
			// walk the whole list; it is bounded by the capacity.
			back = back.Prev()
			continue
		}
		prev := back.Prev()
		st.evictLocked(j)
		st.gauges.Add("expired", 1)
		back = prev
	}
}

// evictLocked removes a terminal job from the store. SSE subscribers
// mid-stream keep their *job and finish normally — eviction only ends
// the id's visibility.
func (st *jobStore) evictLocked(j *job) {
	st.terminal.Remove(j.el)
	delete(st.jobs, j.id)
}

// view renders the job's wire form under the store lock.
func (st *jobStore) view(j *job) JobView {
	st.mu.Lock()
	defer st.mu.Unlock()
	return JobView{
		ID:           j.id,
		State:        j.state,
		InstanceHash: j.hash,
		Algorithm:    j.algorithm,
		Engine:       j.engine,
		Seed:         j.seed,
		Result:       j.resp,
		Error:        j.errd,
	}
}

// len reports the number of jobs currently in the store (live +
// retained terminal).
func (st *jobStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.jobs)
}
