package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	duedate "repro"
)

// This file is the async half of the API: POST /v1/jobs admits a solve
// and answers 202 immediately, GET /v1/jobs/{id} polls it, GET
// /v1/jobs/{id}/events streams engine checkpoints as SSE, and DELETE
// /v1/jobs/{id} cancels it cooperatively. Jobs ride the same bounded
// pool, admission control, deadline stamping and result cache as the
// synchronous endpoints — an async solve's trajectory is bit-identical
// to /v1/solve with the same request, and its completed result makes a
// later synchronous resubmission a cache hit.

// sseHeartbeat is the comment-line keep-alive period of the events
// stream (a package variable so tests can shrink it).
var sseHeartbeat = 15 * time.Second

// handleJobs is POST /v1/jobs: validate, admit onto the pool, answer
// 202 with the job id. The request context is deliberately not the
// job's context — the client is expected to disconnect after the 202
// and come back to poll.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	buf := bodyPool.Get().(*bodyBuf)
	defer bodyPool.Put(buf)
	if err := readBody(r, buf); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "bad request: %v", err)
		return
	}
	// The job outlives this handler, so its request is a fresh
	// allocation, never a pooled carrier.
	req := new(SolveRequest)
	if err := decodeSolveRequest(buf.b, req); err != nil {
		status, code := decodeErrorCode(err)
		writeError(w, status, code, "bad request: %v", err)
		return
	}
	req.applyDefaults(s.cfg.DefaultAlgorithm)
	key := req.cacheKey()
	opts := req.options()
	// A doomed submission is rejected here with the same (status, code)
	// the synchronous path answers, instead of a 202 whose poll later
	// reveals a failed job.
	if err := duedate.ValidateOptions(opts); err != nil {
		status, code := errorCode(err)
		writeError(w, status, code, "%v", err)
		return
	}
	if s.draining.Load() {
		s.writeBackpressure(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	opts.Metrics = s.cfg.Metrics
	opts.Deadline = s.deadlineFor(req)
	ctx, cancel := context.WithCancel(context.Background())
	j := s.jobs.add(req, cancel)

	// A result-cache hit completes the job without touching the pool —
	// the same answer the synchronous path would have served.
	if !req.NoCache {
		if resp, ok := s.cache.get(key); ok {
			s.stats.cacheHits.Add(1)
			s.jobs.finishDone(j, resp)
			s.writeJobSubmitted(w, j)
			return
		}
		s.stats.cacheMiss.Add(1)
	}

	opts.Progress = func(snap duedate.Snapshot) { s.jobs.publish(j, snap) }
	t := getTask()
	t.ctx, t.req, t.opts, t.key, t.job = ctx, req, opts, key, j
	if !s.submit(t) {
		putTask(t)
		s.jobs.abort(j)
		cancel()
		if s.draining.Load() {
			s.writeBackpressure(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
			return
		}
		s.writeBackpressure(w, http.StatusTooManyRequests, CodeQueueFull,
			"queue full (%d waiting, %d running)", s.cfg.QueueDepth, s.cfg.Pool)
		return
	}
	s.writeJobSubmitted(w, j)
}

// writeJobSubmitted answers the 202 with the job view and its polling
// location.
func (s *Server) writeJobSubmitted(w http.ResponseWriter, j *job) {
	loc := "/v1/jobs/" + j.id
	w.Header().Set("Location", loc)
	writeJSON(w, http.StatusAccepted, JobSubmitResponse{Job: s.jobs.view(j), Location: loc})
}

// handleJob routes /v1/jobs/{id} and /v1/jobs/{id}/events.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "events") {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such resource %q", r.URL.Path)
		return
	}
	j := s.jobs.get(id)
	if j == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such job %q (completed jobs are retained up to capacity/TTL)", id)
		return
	}
	switch {
	case sub == "events":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
			return
		}
		s.streamJobEvents(w, r, j)
	case r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, s.jobs.view(j))
	case r.Method == http.MethodDelete:
		s.cancelJob(w, r, j)
	default:
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or DELETE only")
	}
}

// cancelJob is DELETE /v1/jobs/{id}: cancel the job's context and wait
// — bounded by the client's own context — for the engine's cooperative
// stop, then answer with the terminal view: cancelled with the honest
// best-so-far (interrupted=true) for a mid-solve cancel, cancelled
// without a result for a queued one. Cancelling a terminal job is a
// no-op answering the current view, so DELETE is idempotent.
func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request, j *job) {
	s.jobs.requestCancel(j)
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client gave up waiting; the cancellation itself stands.
	}
	writeJSON(w, http.StatusOK, s.jobs.view(j))
}

// streamJobEvents is GET /v1/jobs/{id}/events: a text/event-stream of
// "snapshot" events (engine best-so-far checkpoints, replaying the
// latest one to late subscribers), comment-line heartbeats, and exactly
// one terminal "result" event carrying the final job view, after which
// the stream ends.
func (s *Server) streamJobEvents(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeInternal, "streaming unsupported by this connection")
		return
	}
	sub, last := s.jobs.subscribe(j)
	defer s.jobs.unsubscribe(j, sub)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if last != nil {
		writeSSE(w, "snapshot", snapshotEvent(*last))
	}
	fl.Flush()
	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	for {
		select {
		case snap := <-sub.ch:
			writeSSE(w, "snapshot", snapshotEvent(snap))
			fl.Flush()
		case <-j.done:
			// Deliver snapshots that were buffered before the terminal
			// transition, then the result; publishes happen strictly
			// before the done close, so this drain is complete.
			for {
				select {
				case snap := <-sub.ch:
					writeSSE(w, "snapshot", snapshotEvent(snap))
					continue
				default:
				}
				break
			}
			writeSSE(w, "result", s.jobs.view(j))
			fl.Flush()
			return
		case <-hb.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE writes one server-sent event with a JSON data payload.
func writeSSE(w io.Writer, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}
