package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	duedate "repro"
	"repro/internal/problem"
)

// algp spells an explicit request algorithm (the wire field is a
// pointer so absence selects the server's configured default).
func algp(a duedate.Algorithm) *duedate.Algorithm { return &a }

// postJSON marshals v and posts it to url, returning the status and body.
func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

// decodeInto unmarshals body into v, failing the test on error.
func decodeInto(t *testing.T, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("unmarshal %T: %v\nbody: %s", v, err, body)
	}
}

// newTestServer builds a server + httptest listener and registers
// cleanup (drain) on t.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

// TestSolveRoundTripBitIdentical pins the core serving contract: for the
// same (instance, algorithm, engine, seed, iterations, geometry) the
// server's response equals a direct duedate.SolveContext call bit for
// bit, on both problems and both a CPU and the GPU engine.
func TestSolveRoundTripBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2})
	cases := []struct {
		name string
		req  SolveRequest
	}{
		{"cdd-cpu-serial", SolveRequest{
			Instance: duedate.PaperExample(duedate.CDD), Algorithm: algp(duedate.SA),
			Engine: duedate.EngineCPUSerial, Iterations: 60, Grid: 1, Block: 8,
			Seed: 42, TempSamples: 50,
		}},
		{"ucddcp-gpu", SolveRequest{
			Instance: duedate.PaperExample(duedate.UCDDCP), Algorithm: algp(duedate.SA),
			Engine: duedate.EngineGPU, Iterations: 40, Grid: 1, Block: 4,
			Seed: 7, TempSamples: 50,
		}},
		{"cdd-dpso-cpu-parallel", SolveRequest{
			Instance: duedate.PaperExample(duedate.CDD), Algorithm: algp(duedate.DPSO),
			Engine: duedate.EngineCPUParallel, Iterations: 40, Grid: 1, Block: 8,
			Seed: 3,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postJSON(t, ts.URL+"/v1/solve", tc.req)
			if status != http.StatusOK {
				t.Fatalf("status %d, body %s", status, body)
			}
			var got SolveResponse
			decodeInto(t, body, &got)

			want, err := duedate.SolveContext(context.Background(), tc.req.Instance, tc.req.options())
			if err != nil {
				t.Fatal(err)
			}
			if got.Cost != want.BestCost {
				t.Errorf("cost %d, direct SolveContext %d", got.Cost, want.BestCost)
			}
			if fmt.Sprint(got.Sequence) != fmt.Sprint(want.BestSeq) {
				t.Errorf("sequence %v, direct SolveContext %v", got.Sequence, want.BestSeq)
			}
			if got.Iterations != want.Iterations || got.Evaluations != want.Evaluations {
				t.Errorf("accounting (%d it, %d evals), direct (%d, %d)",
					got.Iterations, got.Evaluations, want.Iterations, want.Evaluations)
			}
			sched := want.Schedule(tc.req.Instance)
			if got.Start != sched.Start || fmt.Sprint(got.Compressions) != fmt.Sprint(sched.X) {
				t.Errorf("schedule (start %d, X %v), direct (start %d, X %v)",
					got.Start, got.Compressions, sched.Start, sched.X)
			}
			if got.Cached || got.Interrupted {
				t.Errorf("fresh full-budget solve reported cached=%t interrupted=%t", got.Cached, got.Interrupted)
			}
		})
	}
}

// blockingSolve installs a fake solver that signals each start and
// blocks until release is closed, returning the identity sequence.
func blockingSolve(s *Server, started chan<- struct{}, release <-chan struct{}) {
	s.solve = func(ctx context.Context, in *problem.Instance, opts duedate.Options) (duedate.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return duedate.Result{BestSeq: problem.IdentitySequence(in.N()), BestCost: 1}, nil
	}
}

// TestQueueSaturationReturns429 fills the single worker and the
// zero-depth queue, then requires admission control to answer 429 — and
// to admit again once the pool frees up.
func TestQueueSaturationReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1, QueueDepth: -1})
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	blockingSolve(s, started, release)

	req := SolveRequest{Instance: duedate.PaperExample(duedate.CDD), Engine: duedate.EngineCPUSerial, NoCache: true}
	firstDone := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, ts.URL+"/v1/solve", req)
		firstDone <- status
	}()
	<-started // the worker is now occupied and the queue is empty

	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader([]byte(reqBody(t, req))))
	if err != nil {
		t.Fatal(err)
	}
	var erBody bytes.Buffer
	if _, err := erBody.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue answered %d (want 429), body %s", resp.StatusCode, erBody.Bytes())
	}
	var er ErrorResponse
	decodeInto(t, erBody.Bytes(), &er)
	if er.Error.Code != CodeQueueFull || er.Error.Message == "" {
		t.Errorf("error payload %+v (want code %q)", er, CodeQueueFull)
	}
	// Backpressure answers carry a Retry-After estimate in whole seconds.
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After %q (want integer >= 1)", resp.Header.Get("Retry-After"))
	}

	close(release)
	if st := <-firstDone; st != http.StatusOK {
		t.Fatalf("admitted request finished with %d", st)
	}
	// The pool is free again: the same request is admitted now.
	if status, body := postJSON(t, ts.URL+"/v1/solve", req); status != http.StatusOK {
		t.Fatalf("post-saturation request answered %d, body %s", status, body)
	}
}

// TestResultCacheHitAndMiss solves the same request twice and requires
// the second answer to come from the cache, byte-identical modulo the
// cached flag; noCache must bypass the lookup.
func TestResultCacheHitAndMiss(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	req := SolveRequest{
		Instance: duedate.PaperExample(duedate.CDD), Algorithm: algp(duedate.SA),
		Engine: duedate.EngineCPUSerial, Iterations: 40, Grid: 1, Block: 4,
		Seed: 9, TempSamples: 50,
	}
	status, body1 := postJSON(t, ts.URL+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("first solve: %d %s", status, body1)
	}
	var first, second SolveResponse
	decodeInto(t, body1, &first)
	if first.Cached {
		t.Fatal("first solve reported cached")
	}

	status, body2 := postJSON(t, ts.URL+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("second solve: %d %s", status, body2)
	}
	decodeInto(t, body2, &second)
	if !second.Cached {
		t.Fatal("identical resubmission was not served from the cache")
	}
	second.Cached = false
	if fmt.Sprintf("%+v", first) != fmt.Sprintf("%+v", second) {
		t.Errorf("cached response differs:\nfirst  %+v\nsecond %+v", first, second)
	}

	// A different seed is a different trajectory: must miss.
	req.Seed = 10
	var third SolveResponse
	_, body3 := postJSON(t, ts.URL+"/v1/solve", req)
	decodeInto(t, body3, &third)
	if third.Cached {
		t.Error("different seed hit the cache")
	}

	// noCache bypasses the lookup even for a cached key.
	req.Seed = 9
	req.NoCache = true
	var fourth SolveResponse
	_, body4 := postJSON(t, ts.URL+"/v1/solve", req)
	decodeInto(t, body4, &fourth)
	if fourth.Cached {
		t.Error("noCache request was served from the cache")
	}

	var m MetricsResponse
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Server.CacheHits != 1 || m.Server.CacheMisses != 2 {
		t.Errorf("metrics counted %d hits / %d misses (want 1 / 2)", m.Server.CacheHits, m.Server.CacheMisses)
	}
	if m.CacheEntries != 2 || m.Server.Completed != 3 {
		t.Errorf("metrics: %d cache entries (want 2), %d completed (want 3)", m.CacheEntries, m.Server.Completed)
	}
	if m.Solver.Runs != 3 || m.Solver.Totals.Evaluations == 0 {
		t.Errorf("solver registry observed %d runs with %d evaluations", m.Solver.Runs, m.Solver.Totals.Evaluations)
	}
}

// TestDeadlineExpiredReturnsInterrupted sends a request whose budget
// cannot complete within its deadline and requires a 200 with the valid
// best-so-far marked interrupted — and that the partial result is not
// cached.
func TestDeadlineExpiredReturnsInterrupted(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	inst, err := duedate.GenerateCDDBenchmark(100, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	req := SolveRequest{
		Instance: inst[0], Algorithm: algp(duedate.SA), Engine: duedate.EngineCPUSerial,
		Iterations: 200000, Grid: 8, Block: 8, Seed: 5, TempSamples: 10,
		TimeoutMs: 60,
	}
	status, body := postJSON(t, ts.URL+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	var got SolveResponse
	decodeInto(t, body, &got)
	if !got.Interrupted {
		t.Fatal("deadline-bounded request was not interrupted (budget too small?)")
	}
	if len(got.Sequence) != inst[0].N() || !problem.IsPermutation(got.Sequence) {
		t.Fatalf("interrupted best-so-far is not a valid permutation: %v", got.Sequence)
	}
	if _, c, err := duedate.OptimizeSequence(inst[0], got.Sequence); err != nil || c != got.Cost {
		t.Fatalf("interrupted cost %d dishonest (re-evaluated %d, err %v)", got.Cost, c, err)
	}

	// The partial result must not shadow a full-budget answer.
	status, body = postJSON(t, ts.URL+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("second request: %d %s", status, body)
	}
	var again SolveResponse
	decodeInto(t, body, &again)
	if again.Cached {
		t.Error("interrupted result was cached")
	}
}

// TestErrorStatusMapping table-tests the HTTP translation of the facade
// sentinels and malformed bodies: ErrInvalidOptions → 400,
// ErrUnsupportedPairing → 422, and the instance-semantics sentinels
// (problem.ErrUnknownKind, problem.ErrMachines) → 422 — a well-formed
// request for something the service does not support — never an opaque
// 500 for caller mistakes. Every rejection must carry the unified
// envelope with its stable machine-readable code.
func TestErrorStatusMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	valid := duedate.PaperExample(duedate.CDD)
	cases := []struct {
		name string
		body string
		want int
		code string
	}{
		{"unsupported-pairing-ta-gpu",
			reqBody(t, SolveRequest{Instance: valid, Algorithm: algp(duedate.TA), Engine: duedate.EngineGPU}),
			http.StatusUnprocessableEntity, CodeUnsupportedPairing},
		{"unsupported-pairing-es-gpu",
			reqBody(t, SolveRequest{Instance: valid, Algorithm: algp(duedate.ES), Engine: duedate.EngineGPU}),
			http.StatusUnprocessableEntity, CodeUnsupportedPairing},
		{"invalid-options-negative-grid",
			reqBody(t, SolveRequest{Instance: valid, Engine: duedate.EngineCPUSerial, Grid: -1}),
			http.StatusBadRequest, CodeInvalidOptions},
		{"invalid-options-negative-workers",
			reqBody(t, SolveRequest{Instance: valid, Engine: duedate.EngineCPUParallel, Workers: -2}),
			http.StatusBadRequest, CodeInvalidOptions},
		{"unknown-algorithm-name",
			`{"instance":` + instJSON(t, valid) + `,"algorithm":"XX"}`,
			http.StatusBadRequest, CodeInvalidRequest},
		{"unknown-engine-name",
			`{"instance":` + instJSON(t, valid) + `,"engine":"tpu"}`,
			http.StatusBadRequest, CodeInvalidRequest},
		{"unknown-instance-kind",
			`{"instance":{"name":"x","kind":"nope","dueDate":5,"jobs":[{"p":1,"alpha":1,"beta":1}]}}`,
			http.StatusUnprocessableEntity, CodeUnknownKind},
		{"negative-machine-count",
			`{"instance":{"name":"x","kind":"CDD","dueDate":5,"machines":-2,"jobs":[{"p":1,"alpha":1,"beta":1}]}}`,
			http.StatusUnprocessableEntity, CodeInvalidMachines},
		{"invalid-instance-no-jobs",
			`{"instance":{"name":"x","kind":"CDD","dueDate":5,"jobs":[]}}`,
			http.StatusBadRequest, CodeInvalidRequest},
		{"missing-instance", `{}`, http.StatusBadRequest, CodeInvalidRequest},
		{"unknown-field", `{"instance":` + instJSON(t, valid) + `,"bogus":1}`, http.StatusBadRequest, CodeInvalidRequest},
		{"malformed-json", `{"instance":`, http.StatusBadRequest, CodeInvalidRequest},
	}
	// Every endpoint speaks the same envelope: the same body submitted
	// synchronously and as an async job must answer the identical
	// (status, code) pair.
	for _, endpoint := range []string{"/v1/solve", "/v1/jobs"} {
		for _, tc := range cases {
			t.Run(endpoint+"/"+tc.name, func(t *testing.T) {
				resp, err := http.Post(ts.URL+endpoint, "application/json", bytes.NewReader([]byte(tc.body)))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				var er ErrorResponse
				if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
					t.Fatalf("non-JSON error body: %v", err)
				}
				if resp.StatusCode != tc.want {
					t.Errorf("status %d (want %d), error %+v", resp.StatusCode, tc.want, er.Error)
				}
				if er.Error.Code != tc.code || er.Error.Message == "" {
					t.Errorf("error payload %+v (want code %q)", er.Error, tc.code)
				}
			})
		}
	}
}

// reqBody marshals a SolveRequest for the table tests.
func reqBody(t *testing.T, r SolveRequest) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// instJSON marshals an instance for hand-assembled request bodies.
func instJSON(t *testing.T, in *problem.Instance) string {
	t.Helper()
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestParallelEarlyWorkRoundTrip drives a 3-machine EARLYWORK instance
// through /v1/solve and pins the generalized serving contract: the
// response carries the machine count, a delimiter genome of length
// n+m−1, a full job→machine assignment with per-machine starts, an
// honest cost, and the instance's canonical hash — and an identical
// resubmission is served from the cache byte-for-byte.
func TestParallelEarlyWorkRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	inst, err := duedate.NewEarlyWorkInstance("ew-rt", []int{6, 5, 2, 4, 4, 3, 7}, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	req := SolveRequest{
		Instance: inst, Algorithm: algp(duedate.SA), Engine: duedate.EngineCPUSerial,
		Iterations: 60, Grid: 1, Block: 8, Seed: 13, TempSamples: 50,
	}
	status, body := postJSON(t, ts.URL+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	var got SolveResponse
	decodeInto(t, body, &got)
	if got.Kind != "EARLYWORK" || got.Machines != 3 || got.N != inst.N() {
		t.Errorf("echoed kind=%q machines=%d n=%d, want EARLYWORK/3/%d", got.Kind, got.Machines, got.N, inst.N())
	}
	if got.InstanceHash != inst.CanonicalHash() {
		t.Errorf("instanceHash %q != CanonicalHash %q", got.InstanceHash, inst.CanonicalHash())
	}
	if len(got.Sequence) != inst.GenomeLen() || !problem.IsPermutation(got.Sequence) {
		t.Fatalf("best genome %v is not a permutation of 0..%d", got.Sequence, inst.GenomeLen()-1)
	}
	if c, err := duedate.Cost(inst, got.Sequence); err != nil || c != got.Cost {
		t.Errorf("reported cost %d dishonest (re-evaluated %d, err %v)", got.Cost, c, err)
	}
	if len(got.Assignment) != inst.N() || len(got.MachineStarts) != 3 {
		t.Fatalf("assignment %v / machineStarts %v incomplete for n=%d m=3", got.Assignment, got.MachineStarts, inst.N())
	}
	for job, k := range got.Assignment {
		if k < 0 || k >= 3 {
			t.Errorf("job %d assigned to machine %d outside [0,3)", job, k)
		}
	}

	// The canonical hash keys the cache: the identical resubmission must
	// hit, differing only in the cached flag.
	status, body2 := postJSON(t, ts.URL+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("resubmission: %d %s", status, body2)
	}
	var again SolveResponse
	decodeInto(t, body2, &again)
	if !again.Cached {
		t.Fatal("identical parallel-machine resubmission missed the cache")
	}
	again.Cached = false
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", again) {
		t.Errorf("cached response differs:\nfirst  %+v\nsecond %+v", got, again)
	}

	// Same jobs on one machine is a different canonical hash — must miss.
	single := inst.Clone()
	single.Machines = 1
	if single.CanonicalHash() == inst.CanonicalHash() {
		t.Fatal("machine count does not participate in the canonical hash")
	}
	reqSingle := req
	reqSingle.Instance = single
	_, body3 := postJSON(t, ts.URL+"/v1/solve", reqSingle)
	var fresh SolveResponse
	decodeInto(t, body3, &fresh)
	if fresh.Cached {
		t.Error("single-machine variant hit the parallel instance's cache entry")
	}
	if fresh.Machines != 0 || fresh.Assignment != nil || fresh.MachineStarts != nil {
		t.Errorf("single-machine response leaked parallel fields: machines=%d assign=%v starts=%v",
			fresh.Machines, fresh.Assignment, fresh.MachineStarts)
	}
}

// TestBatchMixedOutcomes posts a batch whose slots succeed, lack an
// instance, and name an unsupported pairing — each slot must carry its
// own status and the good slot must match a direct solve.
func TestBatchMixedOutcomes(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2})
	good := SolveRequest{
		Instance: duedate.PaperExample(duedate.UCDDCP), Algorithm: algp(duedate.SA),
		Engine: duedate.EngineCPUSerial, Iterations: 40, Grid: 1, Block: 4, Seed: 11, TempSamples: 50,
	}
	batch := BatchRequest{Requests: []SolveRequest{
		good,
		{}, // missing instance
		{Instance: duedate.PaperExample(duedate.CDD), Algorithm: algp(duedate.TA), Engine: duedate.EngineGPU},
	}}
	status, body := postJSON(t, ts.URL+"/v1/batch", batch)
	if status != http.StatusOK {
		t.Fatalf("batch status %d, body %s", status, body)
	}
	var resp BatchResponse
	decodeInto(t, body, &resp)
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Status != http.StatusOK || resp.Results[0].Response == nil {
		t.Fatalf("good slot: %+v", resp.Results[0])
	}
	want, err := duedate.SolveContext(context.Background(), good.Instance, good.options())
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Results[0].Response; got.Cost != want.BestCost || fmt.Sprint(got.Sequence) != fmt.Sprint(want.BestSeq) {
		t.Errorf("batch slot (%d, %v) differs from direct solve (%d, %v)",
			got.Cost, got.Sequence, want.BestCost, want.BestSeq)
	}
	if resp.Results[1].Status != http.StatusBadRequest || resp.Results[1].Error == "" || resp.Results[1].Code != CodeInvalidRequest {
		t.Errorf("missing-instance slot: %+v", resp.Results[1])
	}
	if resp.Results[2].Status != http.StatusUnprocessableEntity || resp.Results[2].Code != CodeUnsupportedPairing {
		t.Errorf("unsupported-pairing slot: %+v", resp.Results[2])
	}
	if resp.Results[0].Code != "" {
		t.Errorf("good slot carries error code %q", resp.Results[0].Code)
	}
}

// TestFixtureRequestsServe posts every checked-in example request body
// (testdata/server/*.json — the bodies the daemon's docs curl) through
// /v1/solve, so the fixtures can never drift from the wire format.
func TestFixtureRequestsServe(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2})
	fixtures, err := filepath.Glob("../../testdata/server/*.json")
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no server fixtures found (err %v)", err)
	}
	for _, path := range fixtures {
		t.Run(filepath.Base(path), func(t *testing.T) {
			body, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var out bytes.Buffer
			if _, err := out.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("fixture answered %d: %s", resp.StatusCode, out.Bytes())
			}
			var sr SolveResponse
			decodeInto(t, out.Bytes(), &sr)
			if sr.Interrupted || len(sr.Sequence) == 0 {
				t.Errorf("fixture solve incomplete: %+v", sr)
			}
		})
	}
}

// TestPairingsEndpoint requires /v1/pairings to mirror the live driver
// registry exactly.
func TestPairingsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	resp, err := http.Get(ts.URL + "/v1/pairings")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got PairingsResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := duedate.Pairings()
	if len(got.Pairings) != len(want) {
		t.Fatalf("%d pairings served, registry has %d", len(got.Pairings), len(want))
	}
	for i, p := range want {
		if got.Pairings[i].Algorithm != p.Algorithm || got.Pairings[i].Engine != p.Engine {
			t.Errorf("pairing %d: served %v/%v, registry %v/%v",
				i, got.Pairings[i].Algorithm, got.Pairings[i].Engine, p.Algorithm, p.Engine)
		}
		// The capability matrix mirrors the registration declarations.
		kinds := make([]string, len(p.Kinds))
		for j, k := range p.Kinds {
			kinds[j] = k.String()
		}
		if fmt.Sprint(got.Pairings[i].Kinds) != fmt.Sprint(kinds) {
			t.Errorf("pairing %d kinds %v, registry %v", i, got.Pairings[i].Kinds, kinds)
		}
		if got.Pairings[i].Machines != p.Machines {
			t.Errorf("pairing %d machines=%t, registry %t", i, got.Pairings[i].Machines, p.Machines)
		}
	}
	// Every built-in metaheuristic is evaluator-backed: full kind coverage
	// and parallel machines everywhere. The exact layer serves its narrow
	// declared surface instead.
	for _, p := range got.Pairings {
		if p.Algorithm == duedate.ExactDP {
			if fmt.Sprint(p.Kinds) != "[CDD EARLYWORK]" || !p.Machines {
				t.Errorf("exact pairing %v/%v declares kinds=%v machines=%t (want CDD+EARLYWORK, machines)",
					p.Algorithm, p.Engine, p.Kinds, p.Machines)
			}
			continue
		}
		if len(p.Kinds) != 3 || !p.Machines {
			t.Errorf("built-in pairing %v/%v declares kinds=%v machines=%t (want all three kinds, machines)",
				p.Algorithm, p.Engine, p.Kinds, p.Machines)
		}
	}
}

// TestGracefulDrain exercises the SIGTERM drain semantics under -race:
// with solves running and queued, Drain must flip healthz to 503, turn
// new work away with 503, complete every admitted solve, and return.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 2, QueueDepth: 2})
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	blockingSolve(s, started, release)

	req := SolveRequest{Instance: duedate.PaperExample(duedate.CDD), Engine: duedate.EngineCPUSerial, NoCache: true}
	const inflight = 3 // 2 running + 1 queued
	statuses := make(chan int, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _ := postJSON(t, ts.URL+"/v1/solve", req)
			statuses <- status
		}()
	}
	<-started
	<-started // both workers busy
	// Wait until the third request is admitted to the queue — draining
	// must complete queued work, not reject it.
	waitFor(t, func() bool { return s.stats.requests.Load() == inflight })

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	waitFor(t, func() bool { return s.draining.Load() })

	// Draining: health answers 503 and new solves are turned away.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d (want 503)", hr.StatusCode)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/solve", req); status != http.StatusServiceUnavailable {
		t.Errorf("new solve during drain: %d (want 503)", status)
	}

	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(statuses)
	for status := range statuses {
		if status != http.StatusOK {
			t.Errorf("in-flight request finished with %d during drain (want 200)", status)
		}
	}
	// Drain is idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestRunServesAndDrainsOnContextCancel drives the daemon entry point
// end to end: serve on a real listener, answer a request, then cancel
// the context (the SIGTERM path of cmd/duedated) and require a clean
// drain.
func TestRunServesAndDrainsOnContextCancel(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() {
		runErr <- Run(ctx, l, Config{Pool: 2}, 10*time.Second)
	}()
	base := "http://" + l.Addr().String()
	waitFor(t, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	req := SolveRequest{
		Instance: duedate.PaperExample(duedate.CDD), Algorithm: algp(duedate.SA),
		Engine: duedate.EngineCPUSerial, Iterations: 40, Grid: 1, Block: 4, Seed: 2, TempSamples: 50,
	}
	status, body := postJSON(t, base+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("solve via Run: %d %s", status, body)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run returned %v (want clean drain)", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Run did not drain after context cancellation")
	}
}

// TestCacheLRUEviction pins the bound: capacity 2 must evict the least
// recently used key.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	put := func(k string) { c.put(k, &SolveResponse{Instance: k}) }
	put("a")
	put("b")
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	put("c") // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b survived past capacity")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted wrongly", k)
		}
	}
	if c.len() != 2 {
		t.Errorf("len %d, want 2", c.len())
	}
	// Interrupted responses never enter.
	c.put("d", &SolveResponse{Interrupted: true})
	if _, ok := c.get("d"); ok {
		t.Error("interrupted response was cached")
	}
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestOptimalCertificateRoundTrip pins the optimality-certificate wire
// contract: an EXACT-DP solve answers optimal=true through the
// synchronous endpoint, the flag survives the result cache and the async
// job poll, metaheuristic responses omit it, and an interrupted exact
// solve (best-so-far, unproven) never claims it.
func TestOptimalCertificateRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	inst, err := duedate.NewCDDInstance("optimal-cert",
		[]int{3, 1, 4, 2, 5, 2, 6}, []int{2, 1, 3, 2, 4, 1, 5}, []int{2, 1, 3, 2, 4, 1, 5}, 30)
	if err != nil {
		t.Fatal(err)
	}
	req := SolveRequest{
		Instance: inst, Algorithm: algp(duedate.ExactDP), Engine: duedate.EngineCPUSerial, Seed: 3,
	}
	status, body := postJSON(t, ts.URL+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("exact solve: %d %s", status, body)
	}
	var first SolveResponse
	decodeInto(t, body, &first)
	if !first.Optimal || first.Cached || first.Interrupted {
		t.Fatalf("exact solve: optimal=%t cached=%t interrupted=%t (want certificate, fresh, complete)",
			first.Optimal, first.Cached, first.Interrupted)
	}
	if _, c, err := duedate.OptimizeSequence(inst, first.Sequence); err != nil || c != first.Cost {
		t.Fatalf("certificate cost %d dishonest (re-evaluated %d, err %v)", first.Cost, c, err)
	}

	// The certificate must survive the result cache verbatim.
	status, body = postJSON(t, ts.URL+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("cached solve: %d %s", status, body)
	}
	var second SolveResponse
	decodeInto(t, body, &second)
	if !second.Cached || !second.Optimal {
		t.Fatalf("cache hit: cached=%t optimal=%t (want both)", second.Cached, second.Optimal)
	}

	// And the async job poll (NoCache forces a real run through the pool).
	jreq := req
	jreq.NoCache = true
	jr := submitJob(t, ts, jreq)
	jv := waitJobTerminal(t, ts, jr.Job.ID)
	if jv.State != JobDone || jv.Result == nil {
		t.Fatalf("job ended %q with result %v", jv.State, jv.Result)
	}
	if !jv.Result.Optimal {
		t.Fatal("async exact result lost the optimality certificate")
	}
	if jv.Result.Cost != first.Cost {
		t.Fatalf("async certificate cost %d != sync %d", jv.Result.Cost, first.Cost)
	}

	// A metaheuristic on the same instance cannot prove optimality, even
	// when it reaches the same cost: the wire field stays absent.
	saReq := SolveRequest{
		Instance: inst, Algorithm: algp(duedate.SA), Engine: duedate.EngineCPUSerial,
		Iterations: 60, Grid: 1, Block: 8, Seed: 2, TempSamples: 50,
	}
	status, body = postJSON(t, ts.URL+"/v1/solve", saReq)
	if status != http.StatusOK {
		t.Fatalf("SA solve: %d %s", status, body)
	}
	if bytes.Contains(body, []byte(`"optimal"`)) {
		t.Fatalf("metaheuristic response carries an optimal field: %s", body)
	}

	// An interrupted exact run returns an honest best-so-far without the
	// certificate (and, as an interrupted result, is never cached).
	n := 400
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + i%20
		alpha[i] = 1 + i%10
		beta[i] = alpha[i]
		sum += int64(p[i])
	}
	big, err := duedate.NewCDDInstance("optimal-cert-big", p, alpha, beta, sum+10)
	if err != nil {
		t.Fatal(err)
	}
	ireq := SolveRequest{
		Instance: big, Algorithm: algp(duedate.ExactDP), Engine: duedate.EngineCPUSerial,
		Seed: 3, TimeoutMs: 1,
	}
	status, body = postJSON(t, ts.URL+"/v1/solve", ireq)
	if status != http.StatusOK {
		t.Fatalf("interrupted exact solve: %d %s", status, body)
	}
	var cut SolveResponse
	decodeInto(t, body, &cut)
	if !cut.Interrupted {
		t.Skip("DP finished inside the 1ms budget; nothing to assert")
	}
	if cut.Optimal {
		t.Fatal("interrupted exact run claimed an optimality certificate")
	}
	if len(cut.Sequence) != n || !problem.IsPermutation(cut.Sequence) {
		t.Fatalf("interrupted best-so-far is not a valid permutation")
	}
}

// agreeableTestCDD builds a small symmetric-weight CDD instance the
// exact DP provably solves, so AUTO's certificate route is observable
// through the wire.
func agreeableTestCDD(t *testing.T, n int) *duedate.Instance {
	t.Helper()
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := range p {
		p[i] = 1 + (i*7)%13
		alpha[i] = 1 + (i*5)%7
		beta[i] = alpha[i]
		sum += int64(p[i])
	}
	in, err := duedate.NewCDDInstance("server-auto-agreeable", p, alpha, beta, sum+5)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestDefaultAlgorithmAppliesWhenUnspecified pins the request-default
// contract: with -algorithm auto configured, a body without "algorithm"
// routes through the AUTO portfolio driver (observable via the echoed
// algorithm and, on a DP-eligible small, the optimality certificate),
// while an explicit request algorithm always wins over the default.
func TestDefaultAlgorithmAppliesWhenUnspecified(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1, DefaultAlgorithm: duedate.Auto})
	in := agreeableTestCDD(t, 12)

	status, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, Seed: 3})
	if status != http.StatusOK {
		t.Fatalf("unspecified-algorithm solve: %d %s", status, body)
	}
	var resp SolveResponse
	decodeInto(t, body, &resp)
	if resp.Algorithm != duedate.Auto {
		t.Fatalf("unspecified algorithm resolved to %v, want the configured AUTO default", resp.Algorithm)
	}
	if !resp.Optimal {
		t.Fatalf("AUTO on a DP-eligible small did not return the certificate: %s", body)
	}

	status, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{
		Instance: in, Algorithm: algp(duedate.TA), Engine: duedate.EngineCPUSerial, Seed: 3,
	})
	if status != http.StatusOK {
		t.Fatalf("explicit-algorithm solve: %d %s", status, body)
	}
	resp = SolveResponse{}
	decodeInto(t, body, &resp)
	if resp.Algorithm != duedate.TA {
		t.Fatalf("explicit algorithm %v did not win over the configured default", resp.Algorithm)
	}

	// The async path resolves the same default.
	status, body = postJSON(t, ts.URL+"/v1/jobs", SolveRequest{Instance: in, Seed: 4})
	if status != http.StatusAccepted {
		t.Fatalf("job submit: %d %s", status, body)
	}
	var sub JobSubmitResponse
	decodeInto(t, body, &sub)
	if sub.Job.Algorithm != duedate.Auto {
		t.Fatalf("job echoed algorithm %v, want the configured AUTO default", sub.Job.Algorithm)
	}
}

// TestAutoWireValue pins the "auto" wire spelling end to end on a
// default (SA-default) server: explicit AUTO requests solve and echo
// AUTO, and an unspecified algorithm still resolves to SA, byte-
// compatible with the pre-portfolio service.
func TestAutoWireValue(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	in := agreeableTestCDD(t, 10)

	status, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{
		Instance: in, Algorithm: algp(duedate.Auto), Seed: 2,
	})
	if status != http.StatusOK {
		t.Fatalf("AUTO solve: %d %s", status, body)
	}
	var resp SolveResponse
	decodeInto(t, body, &resp)
	if resp.Algorithm != duedate.Auto || !resp.Optimal {
		t.Fatalf("AUTO wire value mishandled: algorithm=%v optimal=%t", resp.Algorithm, resp.Optimal)
	}

	status, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: in, Seed: 2})
	if status != http.StatusOK {
		t.Fatalf("default solve: %d %s", status, body)
	}
	resp = SolveResponse{}
	decodeInto(t, body, &resp)
	if resp.Algorithm != duedate.SA {
		t.Fatalf("unspecified algorithm on a default server resolved to %v, want SA", resp.Algorithm)
	}
}
