package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	duedate "repro"
	"repro/internal/problem"
)

// submitJob posts req to /v1/jobs and requires a 202 with a job view and
// a Location header pointing at the poll URL.
func submitJob(t *testing.T, ts *httptest.Server, req SolveRequest) JobSubmitResponse {
	t.Helper()
	status, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if status != http.StatusAccepted {
		t.Fatalf("submit answered %d (want 202), body %s", status, body)
	}
	var jr JobSubmitResponse
	decodeInto(t, body, &jr)
	if jr.Job.ID == "" || jr.Location != "/v1/jobs/"+jr.Job.ID {
		t.Fatalf("submit payload %+v lacks a consistent id/location", jr)
	}
	return jr
}

// getJob polls one job and returns the status code and decoded view.
func getJob(t *testing.T, ts *httptest.Server, id string) (int, JobView) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, JobView{}
	}
	var jv JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatalf("job view decode: %v", err)
	}
	return resp.StatusCode, jv
}

// waitJobTerminal polls until the job leaves the live states.
func waitJobTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	var jv JobView
	waitFor(t, func() bool {
		status, v := getJob(t, ts, id)
		if status != http.StatusOK {
			t.Fatalf("poll answered %d", status)
		}
		jv = v
		return v.State != JobQueued && v.State != JobRunning
	})
	return jv
}

// TestJobLifecycleBitIdentical pins the async serving contract: submit →
// poll → done yields the same answer a synchronous /v1/solve (and a
// direct duedate.SolveContext) produces for the same request, and the
// completed async result populates the shared cache so the synchronous
// resubmission is a hit.
func TestJobLifecycleBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2})
	req := SolveRequest{
		Instance: duedate.PaperExample(duedate.CDD), Algorithm: algp(duedate.SA),
		Engine: duedate.EngineCPUSerial, Iterations: 60, Grid: 1, Block: 8,
		Seed: 42, TempSamples: 50,
	}
	jr := submitJob(t, ts, req)
	if jr.Job.State != JobQueued && jr.Job.State != JobRunning && jr.Job.State != JobDone {
		t.Fatalf("submitted job in state %q", jr.Job.State)
	}
	if jr.Job.InstanceHash != req.Instance.CanonicalHash() || jr.Job.Seed != 42 {
		t.Errorf("job echo %+v does not match the request", jr.Job)
	}

	jv := waitJobTerminal(t, ts, jr.Job.ID)
	if jv.State != JobDone || jv.Result == nil || jv.Error != nil {
		t.Fatalf("terminal job %+v (want done with a result)", jv)
	}
	want, err := duedate.SolveContext(context.Background(), req.Instance, req.options())
	if err != nil {
		t.Fatal(err)
	}
	if jv.Result.Cost != want.BestCost || fmt.Sprint(jv.Result.Sequence) != fmt.Sprint(want.BestSeq) {
		t.Errorf("async result (%d, %v) differs from direct solve (%d, %v)",
			jv.Result.Cost, jv.Result.Sequence, want.BestCost, want.BestSeq)
	}
	if jv.Result.Interrupted || jv.Result.Cached {
		t.Errorf("fresh full-budget async solve reported interrupted=%t cached=%t", jv.Result.Interrupted, jv.Result.Cached)
	}

	// The async result entered the shared cache: the synchronous
	// resubmission must hit and match field for field modulo the flag.
	status, body := postJSON(t, ts.URL+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("sync resubmission: %d %s", status, body)
	}
	var sync SolveResponse
	decodeInto(t, body, &sync)
	if !sync.Cached {
		t.Error("sync resubmission of a completed async job missed the cache")
	}
	sync.Cached = false
	if fmt.Sprintf("%+v", *jv.Result) != fmt.Sprintf("%+v", sync) {
		t.Errorf("async and sync responses differ:\nasync %+v\nsync  %+v", *jv.Result, sync)
	}

	// And the converse: submitting the same request as a job again is an
	// instant cache-hit completion — done at 202 time.
	jr2 := submitJob(t, ts, req)
	if jr2.Job.State != JobDone || jr2.Job.Result == nil || !jr2.Job.Result.Cached {
		t.Errorf("resubmitted job %+v (want instant done from cache)", jr2.Job)
	}
	if jr2.Job.ID == jr.Job.ID {
		t.Error("distinct submissions shared a job id")
	}
}

// progressSolve installs a fake solver that emits one progress snapshot,
// signals its start, then blocks until release is closed or its context
// is cancelled — returning the honest best-so-far with Interrupted set
// on the cancel path, like the real engines.
func progressSolve(s *Server, started chan<- struct{}, release <-chan struct{}) {
	s.solve = func(ctx context.Context, in *problem.Instance, opts duedate.Options) (duedate.Result, error) {
		seq := problem.IdentitySequence(in.N())
		cost, err := duedate.Cost(in, seq)
		if err != nil {
			return duedate.Result{}, err
		}
		if opts.Progress != nil {
			opts.Progress(duedate.Snapshot{BestCost: cost, BestSeq: seq, Evaluations: 1})
		}
		started <- struct{}{}
		select {
		case <-release:
			return duedate.Result{BestSeq: seq, BestCost: cost, Iterations: 1, Evaluations: 1}, nil
		case <-ctx.Done():
			return duedate.Result{BestSeq: seq, BestCost: cost, Iterations: 1, Evaluations: 1, Interrupted: true}, nil
		}
	}
}

// sseEvent is one parsed server-sent event (heartbeat comments surface
// with the name "heartbeat").
type sseEvent struct {
	name string
	data string
}

// collectSSE parses events off an open stream into the channel until
// the stream ends, then closes the channel.
func collectSSE(body io.Reader, events chan<- sseEvent) {
	defer close(events)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var ev sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ":"):
			events <- sseEvent{name: "heartbeat"}
		case line == "":
			if ev.name != "" {
				events <- ev
				ev = sseEvent{}
			}
		}
	}
}

// openSSE opens the events stream of a job and returns the response and
// a channel of parsed events.
func openSSE(t *testing.T, ts *httptest.Server, id string) (*http.Response, <-chan sseEvent) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream answered %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type %q", ct)
	}
	events := make(chan sseEvent, 64)
	go collectSSE(resp.Body, events)
	return resp, events
}

// TestJobEventsStream drives the SSE contract: at least one snapshot
// event (the mid-solve checkpoint, replayed to a subscriber that
// attaches later), heartbeats while idle, then exactly one terminal
// result event carrying the final view, after which the stream ends.
func TestJobEventsStream(t *testing.T) {
	old := sseHeartbeat
	sseHeartbeat = 20 * time.Millisecond
	t.Cleanup(func() { sseHeartbeat = old })

	s, ts := newTestServer(t, Config{Pool: 1})
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	progressSolve(s, started, release)

	req := SolveRequest{Instance: duedate.PaperExample(duedate.CDD), Engine: duedate.EngineCPUSerial, NoCache: true}
	jr := submitJob(t, ts, req)
	<-started // the snapshot has been published

	resp, events := openSSE(t, ts, jr.Job.ID)
	defer resp.Body.Close()

	var sawSnapshot, sawHeartbeat, released bool
	var result sseEvent
	deadline := time.After(10 * time.Second)
collect:
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				break collect
			}
			switch ev.name {
			case "snapshot":
				sawSnapshot = true
				var se SnapshotEvent
				decodeInto(t, []byte(ev.data), &se)
				if se.BestCost <= 0 || len(se.BestSeq) == 0 {
					t.Errorf("snapshot payload %+v", se)
				}
			case "heartbeat":
				sawHeartbeat = true
			case "result":
				result = ev
			}
			// The solve is released only once the replayed snapshot and a
			// heartbeat both arrived, proving mid-solve streaming.
			if sawSnapshot && sawHeartbeat && !released {
				released = true
				close(release)
			}
		case <-deadline:
			t.Fatal("SSE stream did not terminate")
		}
	}
	if !sawSnapshot || !sawHeartbeat {
		t.Fatalf("stream saw snapshot=%t heartbeat=%t (want both)", sawSnapshot, sawHeartbeat)
	}
	if result.name != "result" {
		t.Fatal("stream ended without a terminal result event")
	}
	var jv JobView
	decodeInto(t, []byte(result.data), &jv)
	if jv.State != JobDone || jv.Result == nil || jv.Result.Cost <= 0 {
		t.Errorf("terminal event %+v (want done with a positive cost)", jv)
	}

	// A subscriber attaching after completion still gets the replayed
	// snapshot and the result immediately.
	resp2, events2 := openSSE(t, ts, jr.Job.ID)
	defer resp2.Body.Close()
	var names []string
	for ev := range events2 {
		if ev.name != "heartbeat" {
			names = append(names, ev.name)
		}
	}
	if fmt.Sprint(names) != "[snapshot result]" {
		t.Errorf("late subscriber saw %v (want [snapshot result])", names)
	}
}

// TestJobCancelMidSolve pins DELETE on a running job: the solve stops
// cooperatively and the job turns cancelled with the honest best-so-far
// (interrupted=true); a second DELETE is an idempotent no-op.
func TestJobCancelMidSolve(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1})
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	progressSolve(s, started, release)

	req := SolveRequest{Instance: duedate.PaperExample(duedate.CDD), Engine: duedate.EngineCPUSerial, NoCache: true}
	jr := submitJob(t, ts, req)
	<-started // the worker is mid-solve

	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jr.Job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || jv.State != JobCancelled {
		t.Fatalf("cancel answered %d with %+v (want 200 cancelled)", resp.StatusCode, jv)
	}
	if jv.Result == nil || !jv.Result.Interrupted {
		t.Fatalf("mid-solve cancel result %+v (want honest best-so-far with interrupted=true)", jv.Result)
	}
	if c, err := duedate.Cost(req.Instance, jv.Result.Sequence); err != nil || c != jv.Result.Cost {
		t.Errorf("cancelled best-so-far cost %d dishonest (re-evaluated %d, err %v)", jv.Result.Cost, c, err)
	}

	// Idempotent: DELETE again answers the same terminal view.
	resp2, err := http.DefaultClient.Do(del.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	var again JobView
	if err := json.NewDecoder(resp2.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || again.State != JobCancelled {
		t.Errorf("second DELETE answered %d with %+v", resp2.StatusCode, again)
	}

	// The interrupted best-so-far never entered the cache.
	close(release) // let the follow-up synchronous solve complete
	if status, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Instance: req.Instance, Engine: req.Engine}); status != http.StatusOK {
		t.Fatalf("post-cancel solve: %d %s", status, body)
	} else {
		var sr SolveResponse
		decodeInto(t, body, &sr)
		if sr.Cached {
			t.Error("cancelled result was cached")
		}
	}
}

// TestJobCancelQueued cancels a job that never reached a worker: it
// turns cancelled immediately, without a result, and the worker later
// discards its task without solving.
func TestJobCancelQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 2})
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	progressSolve(s, started, release)

	req := SolveRequest{Instance: duedate.PaperExample(duedate.CDD), Engine: duedate.EngineCPUSerial, NoCache: true}
	first := submitJob(t, ts, req)
	<-started // the only worker is busy with job 1
	second := submitJob(t, ts, req)
	if _, jv := getJob(t, ts, second.Job.ID); jv.State != JobQueued {
		t.Fatalf("second job state %q (want queued behind the busy pool)", jv.State)
	}

	del, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+second.Job.ID, nil)
	resp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jv.State != JobCancelled || jv.Result != nil {
		t.Fatalf("queued cancel %+v (want cancelled without a result)", jv)
	}

	// Releasing the pool completes job 1 normally; the cancelled job's
	// task is discarded, not solved.
	close(release)
	if jv := waitJobTerminal(t, ts, first.Job.ID); jv.State != JobDone {
		t.Errorf("first job finished %q (want done)", jv.State)
	}
	if _, jv := getJob(t, ts, second.Job.ID); jv.State != JobCancelled {
		t.Errorf("cancelled job re-emerged as %q", jv.State)
	}
}

// TestJobRetention pins the store bounds: past the terminal-job capacity
// the least recently used job id stops resolving (404, code not_found),
// and a TTL expires terminal jobs on the next lifecycle event.
func TestJobRetention(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1, Jobs: 1})
	req := SolveRequest{
		Instance: duedate.PaperExample(duedate.CDD), Engine: duedate.EngineCPUSerial,
		Iterations: 20, Grid: 1, Block: 2, TempSamples: 10,
	}
	first := submitJob(t, ts, req)
	waitJobTerminal(t, ts, first.Job.ID)

	req.Seed = 77 // a distinct job, not a cache hit of the first
	second := submitJob(t, ts, req)
	waitJobTerminal(t, ts, second.Job.ID)

	// Capacity 1: completing the second evicted the first.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + first.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || er.Error.Code != CodeNotFound {
		t.Fatalf("evicted job answered %d/%q (want 404 %s)", resp.StatusCode, er.Error.Code, CodeNotFound)
	}

	// TTL: with a nanosecond retention, the next submission's sweep
	// expires the previous terminal job.
	_, ts2 := newTestServer(t, Config{Pool: 1, JobTTL: time.Nanosecond})
	req.Seed = 1
	a := submitJob(t, ts2, req)
	waitJobTerminal(t, ts2, a.Job.ID)
	req.Seed = 78
	b := submitJob(t, ts2, req)
	waitJobTerminal(t, ts2, b.Job.ID)
	if status, _ := getJob(t, ts2, a.Job.ID); status != http.StatusNotFound {
		t.Errorf("expired job answered %d (want 404)", status)
	}
}

// TestJobsQueueFull429 saturates the pool and requires job admission to
// answer the same enveloped 429 + Retry-After as the synchronous path,
// without leaving a phantom job behind.
func TestJobsQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1, QueueDepth: -1})
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	progressSolve(s, started, release)

	req := SolveRequest{Instance: duedate.PaperExample(duedate.CDD), Engine: duedate.EngineCPUSerial, NoCache: true}
	jr := submitJob(t, ts, req)
	<-started

	status, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated submit answered %d, body %s", status, body)
	}
	var er ErrorResponse
	decodeInto(t, body, &er)
	if er.Error.Code != CodeQueueFull {
		t.Errorf("error code %q (want %s)", er.Error.Code, CodeQueueFull)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(reqBody(t, req)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After %q (want integer >= 1)", resp.Header.Get("Retry-After"))
	}

	close(release)
	waitJobTerminal(t, ts, jr.Job.ID)

	// The rejected submissions left no job behind: the store holds only
	// the completed one.
	if n := s.jobs.len(); n != 1 {
		t.Errorf("job store holds %d jobs after rejected submissions (want 1)", n)
	}
}

// TestJobsDrainGrace exercises the shutdown path under -race with live
// SSE subscribers: Drain lets running jobs ride the grace, then cancels
// them to their honest best-so-far; subscribers receive the terminal
// result event and new submissions answer 503/draining.
func TestJobsDrainGrace(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1, JobGrace: 50 * time.Millisecond})
	started := make(chan struct{}, 4)
	release := make(chan struct{}) // never closed: only the grace stops the solve
	progressSolve(s, started, release)

	req := SolveRequest{Instance: duedate.PaperExample(duedate.CDD), Engine: duedate.EngineCPUSerial, NoCache: true}
	jr := submitJob(t, ts, req)
	<-started

	const subscribers = 3
	var wg sync.WaitGroup
	results := make(chan JobView, subscribers)
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, events := openSSE(t, ts, jr.Job.ID)
			defer resp.Body.Close()
			for ev := range events {
				if ev.name == "result" {
					var jv JobView
					if err := json.Unmarshal([]byte(ev.data), &jv); err == nil {
						results <- jv
					}
				}
			}
		}()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(ctx) }()
	waitFor(t, func() bool { return s.draining.Load() })

	if status, body := postJSON(t, ts.URL+"/v1/jobs", req); status != http.StatusServiceUnavailable {
		t.Errorf("submit during drain answered %d, body %s", status, body)
	} else {
		var er ErrorResponse
		decodeInto(t, body, &er)
		if er.Error.Code != CodeDraining {
			t.Errorf("drain rejection code %q (want %s)", er.Error.Code, CodeDraining)
		}
	}

	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(results)
	var got int
	for jv := range results {
		got++
		if jv.State != JobCancelled || jv.Result == nil || !jv.Result.Interrupted {
			t.Errorf("subscriber result %+v (want cancelled with interrupted best-so-far)", jv)
		}
	}
	if got != subscribers {
		t.Errorf("%d of %d subscribers received the terminal result", got, subscribers)
	}

	// The poll view agrees after drain.
	if _, jv := getJob(t, ts, jr.Job.ID); jv.State != JobCancelled {
		t.Errorf("post-drain job state %q (want cancelled)", jv.State)
	}
}

// TestJobRoutesAndMethods sweeps the jobs surface's routing rejections:
// unknown ids 404, wrong methods 405, all enveloped.
func TestJobRoutesAndMethods(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	check := func(method, path string, wantStatus int, wantCode string) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("%s %s: non-JSON error body: %v", method, path, err)
		}
		if resp.StatusCode != wantStatus || er.Error.Code != wantCode {
			t.Errorf("%s %s answered %d/%q (want %d/%s)", method, path, resp.StatusCode, er.Error.Code, wantStatus, wantCode)
		}
	}
	check(http.MethodGet, "/v1/jobs", http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	check(http.MethodGet, "/v1/jobs/nope", http.StatusNotFound, CodeNotFound)
	check(http.MethodDelete, "/v1/jobs/nope", http.StatusNotFound, CodeNotFound)
	check(http.MethodGet, "/v1/jobs/nope/events", http.StatusNotFound, CodeNotFound)
	check(http.MethodGet, "/v1/jobs/nope/bogus", http.StatusNotFound, CodeNotFound)
	check(http.MethodGet, "/v1/nothing", http.StatusNotFound, CodeNotFound)
	check(http.MethodPut, "/healthz", http.StatusMethodNotAllowed, CodeMethodNotAllowed)
}

// TestJobGaugesInMetrics submits and completes jobs, then requires the
// /metrics job gauges to account for every state transition.
func TestJobGaugesInMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	req := SolveRequest{
		Instance: duedate.PaperExample(duedate.CDD), Engine: duedate.EngineCPUSerial,
		Iterations: 20, Grid: 1, Block: 2, TempSamples: 10,
	}
	jr := submitJob(t, ts, req)
	waitJobTerminal(t, ts, jr.Job.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs["submitted"] != 1 || m.Jobs["done"] != 1 || m.Jobs["queued"] != 0 || m.Jobs["running"] != 0 {
		t.Errorf("job gauges %v (want submitted=1 done=1 queued=0 running=0)", m.Jobs)
	}
	if m.JobEntries != 1 {
		t.Errorf("jobEntries %d (want 1)", m.JobEntries)
	}
	if m.Server.MeanSolveNs <= 0 {
		t.Errorf("meanSolveNs %d (want > 0 after a completed solve)", m.Server.MeanSolveNs)
	}
}
