package server

import (
	"context"
	"time"

	duedate "repro"
)

// task is one admitted solve job travelling from an HTTP handler through
// the queue to a pool worker and back.
type task struct {
	// ctx is the request context (cancelled on client disconnect); the
	// worker solves under it so abandoned requests stop consuming the
	// pool at the engine's next cooperative boundary.
	ctx context.Context
	// req is the decoded request, opts its facade translation with the
	// admission-time deadline already stamped.
	req  *SolveRequest
	opts duedate.Options
	// key is the result-cache key.
	key string
	// job is non-nil for async (/v1/jobs) tasks: the worker publishes
	// the outcome into the job store instead of the done channel, and
	// recycles the task itself.
	job *job
	// done receives exactly one taskResult; it is buffered so a worker
	// never blocks on a handler that gave up.
	done chan taskResult
}

// taskResult is a worker's answer to one task.
type taskResult struct {
	resp *SolveResponse
	err  error
}

// submit offers the task to the admission queue without blocking. It
// returns false when the queue is saturated (the caller answers 429) or
// the server is draining (503).
func (s *Server) submit(t *task) bool {
	// The read lock pairs with the write lock in Drain: once draining is
	// set and the queue closed, no submit can be in flight, so the close
	// below can never race a send.
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.draining.Load() {
		return false
	}
	select {
	case s.queue <- t:
		s.stats.requests.Add(1)
		return true
	default:
		s.stats.rejected.Add(1)
		return false
	}
}

// worker drains the admission queue until it is closed and empty —
// queued work is completed, not dropped, during a graceful drain.
func (s *Server) worker() {
	defer s.workers.Done()
	for t := range s.queue {
		s.runTask(t)
	}
}

// runTask executes one solve and answers the task's done channel (or,
// for async tasks, the job store).
func (s *Server) runTask(t *task) {
	if t.job != nil {
		s.runJobTask(t)
		return
	}
	s.stats.active.Add(1)
	defer s.stats.active.Add(-1)
	defer s.stats.completed.Add(1)

	// A client that disconnected while the task was queued: don't burn a
	// pool slot on an answer nobody reads.
	if err := t.ctx.Err(); err != nil {
		t.done <- taskResult{err: err}
		return
	}
	start := time.Now()
	res, err := s.solve(t.ctx, t.req.Instance, t.opts)
	if err != nil {
		s.stats.errors.Add(1)
		t.done <- taskResult{err: err}
		return
	}
	s.observeSolve(time.Since(start))
	s.registry.Observe(res.Metrics)
	resp := buildResponse(t.req, t.opts, res)
	// Only full-budget results are cacheable; an interrupted best-so-far
	// is valid but not the answer future requests are asking for.
	if !resp.Interrupted {
		s.cache.put(t.key, resp)
	}
	t.done <- taskResult{resp: resp}
}

// runJobTask executes one async job's solve and publishes the outcome
// into the job store. The worker owns the task and its request here —
// the submitting handler returned its 202 long ago — so both are
// recycled/released on return.
func (s *Server) runJobTask(t *task) {
	j := t.job
	defer putTask(t)
	s.stats.active.Add(1)
	defer s.stats.active.Add(-1)
	defer s.stats.completed.Add(1)

	if !s.jobs.tryRun(j) {
		return // cancelled while queued; already terminal
	}
	start := time.Now()
	res, err := s.solve(t.ctx, t.req.Instance, t.opts)
	if err != nil {
		if t.ctx.Err() != nil {
			// The solve surfaced the cancellation as an error (a stub or
			// a pre-start cancel); the job is cancelled, not failed.
			s.jobs.finishCancelled(j, nil)
			return
		}
		s.stats.errors.Add(1)
		status, code := errorCode(err)
		s.jobs.finishFailed(j, status, code, err.Error())
		return
	}
	s.observeSolve(time.Since(start))
	s.registry.Observe(res.Metrics)
	resp := buildResponse(t.req, t.opts, res)
	if t.ctx.Err() != nil {
		// DELETE or the drain grace stopped the engine: the honest
		// best-so-far, never cached.
		s.jobs.finishCancelled(j, resp)
		return
	}
	if !resp.Interrupted {
		s.cache.put(t.key, resp)
	}
	s.jobs.finishDone(j, resp)
}

// observeSolve accumulates completed-solve wall time; the mean feeds
// the Retry-After estimate and /metrics.
func (s *Server) observeSolve(d time.Duration) {
	s.stats.solved.Add(1)
	s.stats.solveNs.Add(int64(d))
}

// Drain performs the graceful-shutdown handshake: it flips the server
// into draining mode (healthz answers 503, new solve requests are turned
// away), closes the admission queue, and waits — bounded by ctx — for
// the pool to finish every queued and running solve. It is safe to call
// once; the HTTP listener should stop accepting requests (e.g. via
// http.Server.Shutdown) before or concurrently with Drain.
func (s *Server) Drain(ctx context.Context) error {
	s.closeMu.Lock()
	already := s.draining.Swap(true)
	if !already {
		close(s.queue)
	}
	s.closeMu.Unlock()
	if already {
		return nil
	}
	// Give live async jobs the configured grace to finish on their own;
	// past it, cancel them so they terminate with their honest
	// best-so-far instead of holding the drain open.
	stop := s.jobs.beginDrain(s.cfg.JobGrace)
	defer stop()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// deadlineFor resolves a request's wall-clock budget at admission time:
// the request's timeoutMs, defaulted and clamped by the server config.
// A zero return means no deadline.
func (s *Server) deadlineFor(req *SolveRequest) time.Time {
	timeout := time.Duration(req.TimeoutMs) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	if timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(timeout)
}
