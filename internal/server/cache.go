package server

import (
	"container/list"
	"sync"
)

// resultCache is a mutex-guarded LRU over completed solve responses,
// keyed by SolveRequest.cacheKey (instance hash + trajectory-relevant
// options). Entries are immutable once stored: hits hand out a shallow
// copy whose slices are shared but only ever read by JSON encoding.
// Interrupted results are never stored — a partial best-so-far from an
// expired deadline must not shadow the full-budget answer.
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *cacheEntry
	items map[string]*list.Element
}

// cacheEntry is one cached response with its key (needed for eviction).
type cacheEntry struct {
	key  string
	resp *SolveResponse
}

// newResultCache returns a cache bounded to max entries; max <= 0
// disables caching (get always misses, put is a no-op).
func newResultCache(max int) *resultCache {
	return &resultCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached response for key, marking it most recently
// used. The returned copy has Cached set.
func (c *resultCache) get(key string) (*SolveResponse, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	resp := *el.Value.(*cacheEntry).resp
	resp.Cached = true
	return &resp, true
}

// put stores the response under key, evicting the least recently used
// entry past capacity. Storing an existing key refreshes its position.
func (c *resultCache) put(key string, resp *SolveResponse) {
	if c.max <= 0 || resp == nil || resp.Interrupted {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).resp = resp
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
