// Package server is the batch-solving service layer of the duedate
// reproduction: an HTTP JSON API that accepts CDD, UCDDCP and EARLYWORK
// instances — single- or parallel-machine — and dispatches them onto a
// bounded worker pool of registry-resolved solvers.
//
// The design maps the paper's two-layer architecture onto a long-lived
// serving path. Each request becomes one ensemble solve resolved through
// the duedate driver registry; a fixed-size pool bounds concurrent
// solves, a fixed-depth queue absorbs bursts, and admission control
// answers 429 the moment the queue is full instead of letting latency
// grow without bound. Per-request deadlines are stamped at admission (so
// queue wait counts against them) and honored cooperatively by the
// engines via core.Budget — an expired deadline returns the valid
// best-so-far with interrupted=true, never an error. Completed
// full-budget results enter an LRU cache keyed by (canonical instance
// hash, algorithm, engine, seed, iterations, geometry, SA knobs), so
// identical resubmissions are answered without a solve. Solve responses
// are bit-identical to a direct duedate.SolveContext call with the same
// options.
//
// Long solves do not need to hold a connection open: the async job API
// admits the same SolveRequest onto the same pool and answers 202 with
// a job id immediately. Clients poll the job, stream its engine
// checkpoints as server-sent events, or cancel it cooperatively; a
// completed async result enters the same LRU cache, so a later
// synchronous resubmission is a hit. The job store is bounded by a
// terminal-job capacity (LRU eviction) and a TTL swept on lifecycle
// events. Every non-2xx response across every endpoint is the unified
// error envelope {"error":{"code":"<stable>","message":"..."}}, and
// backpressure answers (429 queue-full, 503 draining) carry a
// Retry-After estimated from the pool backlog and the recent mean solve
// time.
//
// Endpoints:
//
//	POST   /v1/solve            one instance → one SolveResponse
//	POST   /v1/batch            many instances through the same pool, per-item status
//	POST   /v1/jobs             admit an async solve → 202 + job id
//	GET    /v1/jobs/{id}        poll job state/result
//	GET    /v1/jobs/{id}/events engine checkpoints as SSE, terminal "result" event
//	DELETE /v1/jobs/{id}        cancel cooperatively → honest best-so-far
//	GET    /v1/pairings         the live algorithm×engine registry + capability matrix
//	GET    /healthz             liveness; 503 once draining
//	GET    /metrics             ServerStats + job gauges + the obs.Registry solver aggregates
//
// Shutdown is a graceful drain: the daemon (cmd/duedated) binds
// SIGINT/SIGTERM to a context, stops the listener, and calls Drain,
// which completes every queued and running solve before the process
// exits; running async jobs get the job grace to finish before being
// cancelled to their best-so-far.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	duedate "repro"
	"repro/internal/obs"
	"repro/internal/problem"
)

// Config sizes the service. The zero value is usable: GOMAXPROCS
// workers, a 64-deep queue, a 512-entry cache, counters-level solver
// metrics, and no default or maximum deadline.
type Config struct {
	// Pool is the number of worker goroutines executing solves
	// concurrently (default GOMAXPROCS).
	Pool int
	// QueueDepth is the number of admitted-but-waiting solves beyond the
	// running ones; a full queue answers 429 (default 64). Negative
	// means a zero-depth queue: a request is admitted only when a worker
	// is free to take it immediately.
	QueueDepth int
	// CacheSize bounds the result cache in entries (default 512;
	// negative disables caching).
	CacheSize int
	// DefaultTimeout is applied to requests that carry no timeoutMs
	// (zero: no deadline).
	DefaultTimeout time.Duration
	// MaxTimeout clamps every request's deadline (zero: no clamp).
	MaxTimeout time.Duration
	// Metrics is the instrumentation level solves run at; the snapshots
	// aggregate into the /metrics payload (default MetricsCounters —
	// trajectories are metrics-invariant, so this never changes results).
	Metrics duedate.MetricsLevel
	// Jobs bounds the terminal (done/failed/cancelled) async jobs the
	// job store retains for polling; past it the least recently polled
	// are evicted (default 256; values below 1 are raised to 1 so the
	// most recent completion is always pollable).
	Jobs int
	// JobTTL expires retained terminal jobs, swept on the store's
	// lifecycle events — submissions and drain — never on the poll hot
	// path (default 15 minutes; negative disables expiry).
	JobTTL time.Duration
	// JobGrace is how long live async jobs may keep solving after Drain
	// begins before being cancelled to their best-so-far (default 5s;
	// negative cancels immediately).
	JobGrace time.Duration
	// DefaultAlgorithm answers requests whose "algorithm" field is
	// absent. The zero value is SA — the service's historical default —
	// so existing deployments are unchanged; duedated -algorithm auto
	// switches unspecified requests onto the self-tuning portfolio
	// driver. Explicit request algorithms always win.
	DefaultAlgorithm duedate.Algorithm
}

// withDefaults resolves the documented defaults.
func (c Config) withDefaults() Config {
	if c.Pool <= 0 {
		c.Pool = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	case c.QueueDepth == 0:
		c.QueueDepth = 64
	}
	switch {
	case c.CacheSize < 0:
		c.CacheSize = 0
	case c.CacheSize == 0:
		c.CacheSize = 512
	}
	if c.Metrics == duedate.MetricsOff {
		c.Metrics = duedate.MetricsCounters
	}
	switch {
	case c.Jobs == 0:
		c.Jobs = 256
	case c.Jobs < 0:
		c.Jobs = 1
	}
	if c.JobTTL == 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.JobGrace == 0 {
		c.JobGrace = 5 * time.Second
	}
	return c
}

// solveFunc is the pool's solver entry point; tests substitute it to
// control timing deterministically. Production is duedate.SolveContext.
type solveFunc func(ctx context.Context, in *problem.Instance, opts duedate.Options) (duedate.Result, error)

// serverStats holds the admission/cache counters behind /metrics.
// solved/solveNs accumulate completed-solve wall time for the mean
// behind the Retry-After estimate.
type serverStats struct {
	requests  atomic.Int64
	completed atomic.Int64
	cacheHits atomic.Int64
	cacheMiss atomic.Int64
	rejected  atomic.Int64
	errors    atomic.Int64
	active    atomic.Int64
	solved    atomic.Int64
	solveNs   atomic.Int64
}

// Server is the batch-solving service: an http.Handler plus the worker
// pool behind it. Create it with New; shut it down with Drain.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	queue    chan *task
	workers  sync.WaitGroup
	closeMu  sync.RWMutex
	draining atomic.Bool
	cache    *resultCache
	wire     *wireCache
	registry *obs.Registry
	jobs     *jobStore
	gauges   *obs.GaugeSet
	stats    serverStats
	solve    solveFunc
	started  time.Time
}

// New builds the service and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	gauges := &obs.GaugeSet{}
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		queue:    make(chan *task, cfg.QueueDepth),
		cache:    newResultCache(cfg.CacheSize),
		wire:     newWireCache(cfg.CacheSize),
		registry: &obs.Registry{},
		jobs:     newJobStore(cfg.Jobs, cfg.JobTTL, gauges),
		gauges:   gauges,
		solve:    duedate.SolveContext,
		started:  time.Now(),
	}
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/v1/pairings", s.handlePairings)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/", s.handleNotFound)
	s.workers.Add(cfg.Pool)
	for i := 0; i < cfg.Pool; i++ {
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// maxBodyBytes bounds request bodies; a 1000-job instance is ~50 KiB, so
// 32 MiB leaves room for very large batches.
const maxBodyBytes = 32 << 20

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeRaw writes a pre-encoded JSON body — the wire-hit fast path. The
// Content-Type is only set when absent so a reused header map (the
// steady-state benchmark harness, keep-alive serving) costs no
// allocation.
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	h := w.Header()
	if _, ok := h["Content-Type"]; !ok {
		h.Set("Content-Type", "application/json")
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// writeError writes the unified error envelope with its stable code.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: ErrorDetail{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// writeBackpressure writes a 429/503 envelope with a Retry-After header
// estimating when capacity frees up, so clients and load balancers back
// off intelligently instead of hammering.
func (s *Server) writeBackpressure(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeError(w, status, code, format, args...)
}

// retryAfterSeconds estimates the backoff for turned-away clients: the
// pool backlog (queued + running + the rejected request itself) divided
// across the workers, priced at the recent mean solve wall time (one
// second before any solve completed). Clamped to [1s, 300s].
func (s *Server) retryAfterSeconds() int {
	mean := time.Second
	if n := s.stats.solved.Load(); n > 0 {
		if m := time.Duration(s.stats.solveNs.Load() / n); m > 0 {
			mean = m
		}
	}
	backlog := int64(len(s.queue)) + s.stats.active.Load() + 1
	est := time.Duration(int64(mean) * backlog / int64(s.cfg.Pool))
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

// decodeSolveRequest decodes and structurally validates one request
// body's worth of JSON into req.
func decodeSolveRequest(body []byte, req *SolveRequest) error {
	if err := decodeStrict(body, req); err != nil {
		return err
	}
	if req.Instance == nil {
		return errors.New(`missing "instance"`)
	}
	return nil
}

// decodeStrict decodes body into v, rejecting unknown fields (the
// service's long-standing contract for typo'd option names).
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// decodeErrorCode maps a request-decode failure onto its HTTP status
// and stable code. The instance is validated while decoding, so
// semantic rejections surface here: an unknown problem kind or an
// invalid machine count is a well-formed request for something the
// service does not support (422, keeping the sentinels' identity
// alongside ErrUnsupportedPairing), while malformed JSON and structural
// mistakes stay 400.
func decodeErrorCode(err error) (int, string) {
	if errors.Is(err, problem.ErrUnknownKind) {
		return http.StatusUnprocessableEntity, CodeUnknownKind
	}
	if errors.Is(err, problem.ErrMachines) {
		return http.StatusUnprocessableEntity, CodeInvalidMachines
	}
	return http.StatusBadRequest, CodeInvalidRequest
}

// solveOne runs one request through cache → admission → pool and
// returns the response or the failure's (HTTP status, stable code,
// error). It is the shared core of the solve and batch handlers.
func (s *Server) solveOne(ctx context.Context, req *SolveRequest) (*SolveResponse, int, string, error) {
	req.applyDefaults(s.cfg.DefaultAlgorithm)
	key := req.cacheKey()
	if !req.NoCache {
		if resp, ok := s.cache.get(key); ok {
			s.stats.cacheHits.Add(1)
			return resp, http.StatusOK, "", nil
		}
		s.stats.cacheMiss.Add(1)
	}
	opts := req.options()
	opts.Metrics = s.cfg.Metrics
	opts.Deadline = s.deadlineFor(req)
	t := getTask()
	t.ctx, t.req, t.opts, t.key = ctx, req, opts, key
	if !s.submit(t) {
		putTask(t)
		if s.draining.Load() {
			return nil, http.StatusServiceUnavailable, CodeDraining, errors.New("server is draining")
		}
		return nil, http.StatusTooManyRequests, CodeQueueFull,
			fmt.Errorf("queue full (%d waiting, %d running)", s.cfg.QueueDepth, s.cfg.Pool)
	}
	// The worker sends exactly one result, so after this receive the task
	// (and its drained done channel) can carry the next request.
	res := <-t.done
	putTask(t)
	if res.err != nil {
		status, code := errorCode(res.err)
		return nil, status, code, res.err
	}
	return res.resp, http.StatusOK, "", nil
}

// handleSolve is POST /v1/solve. The steady-state path is the wire
// cache: an exact byte-level resubmission is answered from the stored
// encoding without decoding, solving or re-encoding anything — zero
// allocations end to end (guarded by BenchmarkServeSolveAllocs and the
// CI threshold). Misses decode into pooled request structs and, when the
// solve completes clean, store the response's cached-form encoding for
// the next resubmission.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	buf := bodyPool.Get().(*bodyBuf)
	defer bodyPool.Put(buf)
	if err := readBody(r, buf); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "bad request: %v", err)
		return
	}
	if body, ok := s.wire.get(buf.b); ok {
		s.stats.cacheHits.Add(1)
		writeRaw(w, http.StatusOK, body)
		return
	}
	req := solveReqPool.Get().(*SolveRequest)
	defer putSolveRequest(req)
	if err := decodeSolveRequest(buf.b, req); err != nil {
		status, code := decodeErrorCode(err)
		writeError(w, status, code, "bad request: %v", err)
		return
	}
	resp, status, code, err := s.solveOne(r.Context(), req)
	if err != nil {
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			s.writeBackpressure(w, status, code, "%v", err)
			return
		}
		writeError(w, status, code, "%v", err)
		return
	}
	writeJSON(w, status, resp)
	// Only complete, cache-eligible answers enter the wire layer — the
	// same rule the result cache applies, so the two can never disagree.
	if status == http.StatusOK && !resp.Interrupted && !req.NoCache {
		s.wire.put(buf.b, encodeCachedResponse(resp))
	}
}

// handleBatch is POST /v1/batch: every job goes through the same
// admission path concurrently, and each slot reports its own
// HTTP-equivalent status, so one saturated or invalid job never fails
// the jobs around it.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	buf := bodyPool.Get().(*bodyBuf)
	defer bodyPool.Put(buf)
	if err := readBody(r, buf); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "bad request: %v", err)
		return
	}
	if body, ok := s.wire.get(buf.b); ok {
		s.stats.cacheHits.Add(1)
		writeRaw(w, http.StatusOK, body)
		return
	}
	batch := getBatchRequest()
	defer putBatchRequest(batch)
	if err := decodeStrict(buf.b, batch); err != nil {
		status, code := decodeErrorCode(err)
		writeError(w, status, code, "bad request: %v", err)
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, `empty "requests"`)
		return
	}
	br := getBatchResults(len(batch.Requests))
	defer putBatchResults(br)
	results := br.rs
	var wg sync.WaitGroup
	for i := range batch.Requests {
		req := &batch.Requests[i]
		if req.Instance == nil {
			results[i] = BatchResult{Error: `missing "instance"`, Code: CodeInvalidRequest, Status: http.StatusBadRequest}
			continue
		}
		wg.Add(1)
		go func(i int, req *SolveRequest) {
			defer wg.Done()
			resp, status, code, err := s.solveOne(r.Context(), req)
			if err != nil {
				results[i] = BatchResult{Error: err.Error(), Code: code, Status: status}
				return
			}
			results[i] = BatchResult{Response: resp, Status: status}
		}(i, req)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
	s.wirePutBatch(buf.b, batch, results)
}

// wirePutBatch stores the batch response's cached-form encoding when
// every slot completed clean and cache-eligible — the all-or-nothing
// analogue of the solve path's rule (a single 429 or interrupted slot
// must be retried, not replayed).
func (s *Server) wirePutBatch(body []byte, batch *BatchRequest, results []BatchResult) {
	for i := range batch.Requests {
		if batch.Requests[i].NoCache {
			return
		}
	}
	for i := range results {
		if results[i].Status != http.StatusOK || results[i].Response == nil || results[i].Response.Interrupted {
			return
		}
	}
	cached := make([]BatchResult, len(results))
	for i := range results {
		c := *results[i].Response
		c.Cached = true
		cached[i] = BatchResult{Response: &c, Status: results[i].Status}
	}
	s.wire.put(body, encodeJSON(BatchResponse{Results: cached}))
}

// handlePairings is GET /v1/pairings: the live registry with each
// pairing's capability surface (problem kinds, parallel-machine
// support), so clients route instances without trial-and-error 422s.
func (s *Server) handlePairings(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	var resp PairingsResponse
	for _, p := range duedate.Pairings() {
		kinds := make([]string, len(p.Kinds))
		for i, k := range p.Kinds {
			kinds[i] = k.String()
		}
		resp.Pairings = append(resp.Pairings, PairingInfo{
			Algorithm: p.Algorithm, Engine: p.Engine, Kinds: kinds, Machines: p.Machines,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is GET /healthz. Once draining, the answer is the 503
// error envelope (code "draining", with Retry-After) like every other
// non-2xx response, so load balancers and envelope-aware clients see
// one shape.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	if s.draining.Load() {
		s.writeBackpressure(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Pool: s.cfg.Pool, QueueDepth: s.cfg.QueueDepth})
}

// handleNotFound is the catch-all for unknown paths, keeping even 404s
// inside the unified envelope.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, CodeNotFound, "no such resource %q", r.URL.Path)
}

// MetricsResponse is the wire form of GET /metrics: the server's
// admission/cache counters next to the obs.Registry aggregation of every
// solve's core.Metrics snapshot.
type MetricsResponse struct {
	// Server holds the admission, cache and pool counters.
	Server ServerStats `json:"server"`
	// Jobs holds the async job gauges (submitted/queued/running/
	// done/failed/cancelled/evicted/expired/sseSubscribers).
	Jobs map[string]int64 `json:"jobs"`
	// Solver holds the cross-run solver aggregates (evaluation splits,
	// acceptances, per-phase timing at the kernels level).
	Solver obs.RegistrySnapshot `json:"solver"`
	// CacheEntries is the live result-cache size; JobEntries the live
	// job-store size (live + retained terminal jobs).
	CacheEntries int `json:"cacheEntries"`
	JobEntries   int `json:"jobEntries"`
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	var meanSolve int64
	if n := s.stats.solved.Load(); n > 0 {
		meanSolve = s.stats.solveNs.Load() / n
	}
	writeJSON(w, http.StatusOK, MetricsResponse{
		Server: ServerStats{
			Requests:    s.stats.requests.Load(),
			Completed:   s.stats.completed.Load(),
			CacheHits:   s.stats.cacheHits.Load(),
			CacheMisses: s.stats.cacheMiss.Load(),
			Rejected:    s.stats.rejected.Load(),
			Errors:      s.stats.errors.Load(),
			MeanSolveNs: meanSolve,
			Active:      s.stats.active.Load(),
			Queued:      len(s.queue),
			Pool:        s.cfg.Pool,
			QueueDepth:  s.cfg.QueueDepth,
			Draining:    s.draining.Load(),
			Uptime:      time.Since(s.started),
		},
		Jobs:         s.gauges.Snapshot(),
		Solver:       s.registry.Snapshot(),
		CacheEntries: s.cache.len(),
		JobEntries:   s.jobs.len(),
	})
}

// Run serves the API on l until ctx is cancelled — the daemon binds
// SIGINT/SIGTERM to ctx, so cancellation is the signal path — then
// performs the graceful drain: stop accepting connections, wait (up to
// grace) for in-flight handlers, and drain the worker pool so every
// admitted solve completes. It returns nil on a clean drain.
func Run(ctx context.Context, l net.Listener, cfg Config, grace time.Duration) error {
	s := New(cfg)
	// Request contexts deliberately do not descend from ctx: during the
	// grace window in-flight solves run to completion instead of being
	// interrupted the instant the signal lands (client disconnects still
	// cancel per-request contexts).
	httpSrv := &http.Server{Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(l) }()
	select {
	case err := <-serveErr:
		return err // listener failed before any shutdown request
	case <-ctx.Done():
	}
	graceCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	// Shutdown stops the listener and waits for active handlers, whose
	// solves the pool is still executing; Drain then retires the pool.
	shutdownErr := httpSrv.Shutdown(graceCtx)
	if err := s.Drain(graceCtx); err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	if shutdownErr != nil {
		return fmt.Errorf("server: shutdown: %w", shutdownErr)
	}
	return nil
}
