package server

import (
	"bytes"
	"container/list"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
)

// This file is the zero-allocation serve path: a wire-level cache of
// fully encoded response bodies keyed by the raw request bytes, plus the
// sync.Pools that recycle every per-request buffer the handlers would
// otherwise allocate. On a steady-state resubmission the solve handler
// reads the body into a pooled buffer, looks the bytes up (an
// allocation-free map probe), and writes the stored response — no JSON
// decode, no cache-key formatting, no encode. The stored bytes are the
// exact writeJSON encoding of the response with Cached set, so clients
// cannot distinguish a wire hit from a result-cache hit.
//
// Ownership rules: pooled buffers are returned by the handler that got
// them, always via defer, after the response is written. SolveResponse
// values are never pooled — the result cache retains them indefinitely,
// so recycling one would corrupt cached entries. Wire-cache entries own
// their key and body copies and are immutable once stored.

// wireMaxKeyBytes bounds the request bodies the wire cache will index;
// larger bodies (huge batches) skip the wire layer and take the normal
// decode path, keeping the cache's memory footprint proportional to its
// entry bound.
const wireMaxKeyBytes = 64 << 10

// wireCache is a mutex-guarded LRU from raw request-body bytes to the
// encoded response body previously produced for them. It is a pure
// bytes-in/bytes-out layer above the result cache: entries are only
// stored for complete (status-200, uninterrupted, cache-eligible)
// responses, and deterministic solves guarantee a stored body never goes
// stale.
type wireCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *wireEntry
	items map[string]*list.Element
}

// wireEntry is one cached wire body with its key (needed for eviction).
type wireEntry struct {
	key  string
	body []byte
}

// newWireCache returns a cache bounded to max entries; max <= 0 disables
// the wire layer (get always misses, put is a no-op).
func newWireCache(max int) *wireCache {
	return &wireCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// get returns the stored response body for the raw request bytes. The
// string(key) conversion in the map probe does not allocate (the
// compiler recognizes the lookup pattern), so a hit costs zero
// allocations. The returned bytes are immutable.
func (c *wireCache) get(key []byte) ([]byte, bool) {
	if c.max <= 0 || len(key) > wireMaxKeyBytes {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[string(key)]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*wireEntry).body, true
}

// put stores body under a copy of the raw request bytes, evicting the
// least recently used entry past capacity. The cache takes ownership of
// body; callers must pass a fresh encoding.
func (c *wireCache) put(key, body []byte) {
	if c.max <= 0 || len(key) > wireMaxKeyBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[string(key)]; ok {
		c.order.MoveToFront(el)
		el.Value.(*wireEntry).body = body
		return
	}
	k := string(key)
	c.items[k] = c.order.PushFront(&wireEntry{key: k, body: body})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*wireEntry).key)
	}
}

// len reports the current entry count.
func (c *wireCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// bodyBuf is a pooled request-body buffer.
type bodyBuf struct{ b []byte }

var bodyPool = sync.Pool{New: func() any { return &bodyBuf{b: make([]byte, 0, 4096)} }}

// errBodyTooLarge mirrors http.MaxBytesReader's refusal; the handlers
// map it to 400 exactly as the old decoder path did.
var errBodyTooLarge = errors.New("http: request body too large")

// readBody reads r's body into buf (reusing its backing array),
// enforcing maxBodyBytes. On success buf.b holds the full body.
func readBody(r *http.Request, buf *bodyBuf) error {
	b := buf.b[:0]
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		m, err := r.Body.Read(b[len(b):cap(b)])
		b = b[:len(b)+m]
		buf.b = b
		if len(b) > maxBodyBytes {
			return errBodyTooLarge
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// Pooled request/response carriers of the decode (wire-miss) path. Each
// is zeroed on the way back into its pool so stale fields can never leak
// into a later request's decode.

var solveReqPool = sync.Pool{New: func() any { return new(SolveRequest) }}

func putSolveRequest(req *SolveRequest) {
	*req = SolveRequest{}
	solveReqPool.Put(req)
}

var batchReqPool = sync.Pool{New: func() any { return new(BatchRequest) }}

// getBatchRequest returns a decode-ready batch request: the Requests
// backing array is retained for reuse but cleared first, because
// encoding/json appends into existing backing storage without zeroing,
// so absent fields would otherwise inherit a previous request's values.
func getBatchRequest() *BatchRequest {
	b := batchReqPool.Get().(*BatchRequest)
	reqs := b.Requests[:cap(b.Requests)]
	clear(reqs)
	b.Requests = reqs[:0]
	return b
}

func putBatchRequest(b *BatchRequest) { batchReqPool.Put(b) }

// batchResults is a pooled BatchResult slice (the per-slot response
// array the batch handler previously allocated per request).
type batchResults struct{ rs []BatchResult }

var batchResultsPool = sync.Pool{New: func() any { return new(batchResults) }}

// getBatchResults returns a zeroed length-n result slice.
func getBatchResults(n int) *batchResults {
	br := batchResultsPool.Get().(*batchResults)
	if cap(br.rs) < n {
		br.rs = make([]BatchResult, n)
	} else {
		br.rs = br.rs[:n]
		clear(br.rs)
	}
	return br
}

// putBatchResults clears the full capacity (dropping the *SolveResponse
// pointers so pooling never pins responses) and recycles the slice.
func putBatchResults(br *batchResults) {
	clear(br.rs[:cap(br.rs)])
	batchResultsPool.Put(br)
}

// taskPool recycles the admission-queue carriers, including their done
// channels: a submitted task receives exactly one send and one receive,
// so a drained channel can carry the next request.
var taskPool = sync.Pool{New: func() any { return &task{done: make(chan taskResult, 1)} }}

func getTask() *task { return taskPool.Get().(*task) }

func putTask(t *task) {
	*t = task{done: t.done}
	taskPool.Put(t)
}

// encodeJSON renders v exactly as writeJSON does (two-space indent,
// trailing newline), returning the bytes for wire-cache storage.
func encodeJSON(v any) []byte {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return b.Bytes()
}

// encodeCachedResponse renders resp as its future cache hits will be
// served: the cached flag set on a shallow copy (the original — possibly
// retained by the result cache — is not touched).
func encodeCachedResponse(resp *SolveResponse) []byte {
	c := *resp
	c.Cached = true
	return encodeJSON(&c)
}
