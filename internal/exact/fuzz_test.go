package exact

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/problem"
)

// dpFuzzInstance decodes a fuzzer payload into a small instance inside
// the DP's provable domain: two bytes per job (processing time, base
// weight) coupled into one of the agreeable CDD regimes or an EARLYWORK
// knapsack. Bits of dRaw steer the due-date band (restrictive or not),
// the machine count and a zero-weight mutation, so the fuzzer reaches
// the straddler DP, the (0, 0)-job tie-breaking and the multi-machine
// load encoding from the raw input alone. Returns nil when too short.
func dpFuzzInstance(data []byte, dRaw, modeRaw uint64) *problem.Instance {
	n := len(data) / 2
	if n < 1 {
		return nil
	}
	if n > 7 {
		n = 7 // keeps the brute-force cross-check fast per fuzz iteration
	}
	p := make([]int, n)
	w := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + int(data[2*i]%8)
		w[i] = 1 + int(data[2*i+1]%9)
		sum += int64(p[i])
	}
	d := int64(dRaw&0xffffffff) % (2*sum + 2) // both due-date bands

	mode := modeRaw % 4
	if mode == 3 {
		machines := 1 + int((dRaw>>48)%3)
		in, err := problem.NewEarlyWork("fuzz-ew", p, machines, d)
		if err != nil {
			panic(err) // valid by construction
		}
		in.Machines = machines
		return in
	}

	alpha := make([]int, n)
	beta := make([]int, n)
	for i := 0; i < n; i++ {
		switch mode {
		case 0: // common rate: every job shares one (α, β) pair
			alpha[i], beta[i] = w[0], 1+int(data[1]%9)
		case 1: // symmetric
			alpha[i], beta[i] = w[i], w[i]
		default: // proportional: β = k·α with one global k
			alpha[i], beta[i] = w[i], (1+int(modeRaw>>8)%3)*w[i]
		}
	}
	if dRaw>>32&1 == 1 {
		// A (0, 0)-weight job sorts last on both ratios: agreeableness
		// survives, and the DP's zero-marginal states get exercised.
		alpha[int(dRaw>>33)%n], beta[int(dRaw>>33)%n] = 0, 0
	}
	in, err := problem.NewCDD("fuzz-dp", p, alpha, beta, d)
	if err != nil {
		panic(err) // valid by construction
	}
	return in
}

// FuzzExactDPVsBrute is the DP's differential fuzz target: on every
// in-domain instance the fuzzer can construct, the pseudo-polynomial DP
// must (a) accept — the construction is agreeable by design, so a typed
// decline is itself a bug, (b) return a self-consistent certificate (a
// valid genome whose evaluator cost equals the claimed optimum), and
// (c) agree bit-for-bit with brute-force enumeration.
func FuzzExactDPVsBrute(f *testing.F) {
	// Restrictive straddler regime (d well under ΣP), symmetric weights.
	f.Add([]byte{6, 7, 9, 5, 9, 5, 2, 6, 4, 4}, uint64(7), uint64(1))
	// Unrestricted anchored regime (d past ΣP), proportional weights.
	f.Add([]byte{3, 4, 1, 2, 8, 5, 2, 6}, uint64(60), uint64(2))
	// Zero-weight job in the common-rate regime.
	f.Add([]byte{5, 3, 5, 9, 5, 2, 5, 7}, uint64(1)<<32|12, uint64(0))
	// EARLYWORK on three machines.
	f.Add([]byte{4, 0, 2, 0, 5, 0, 1, 0, 3, 0, 6, 0}, uint64(2)<<48|9, uint64(3))
	f.Fuzz(func(t *testing.T, data []byte, dRaw, modeRaw uint64) {
		in := dpFuzzInstance(data, dRaw, modeRaw)
		if in == nil {
			t.Skip("payload too short for one job")
		}
		dp, err := SolveDP(in)
		if err != nil {
			if errors.Is(err, ErrInapplicable) || errors.Is(err, ErrTooLarge) {
				t.Fatalf("DP declined a constructed in-domain instance: %v", err)
			}
			t.Fatalf("SolveDP: %v", err)
		}
		if !in.IsGenome(dp.Seq) {
			t.Fatalf("certificate %v is not a valid genome of length %d", dp.Seq, in.GenomeLen())
		}
		if got := core.NewEvaluator(in).Cost(dp.Seq); got != dp.Cost {
			t.Fatalf("certificate cost %d, sequence re-evaluates to %d", dp.Cost, got)
		}
		brute, err := Brute(in)
		if err != nil {
			t.Fatalf("Brute on n=%d: %v", in.GenomeLen(), err)
		}
		if dp.Cost != brute.Cost {
			t.Fatalf("DP optimum %d != brute optimum %d on %s (d=%d, restrictive=%t)",
				dp.Cost, brute.Cost, in.Name, in.D, in.Restrictive())
		}
	})
}

// BenchmarkExactDP times the full certificate pipeline (rolling pass,
// winner re-run, reconstruction, self-check) on unrestricted symmetric
// instances across the sizes the verify DP leg exercises.
func BenchmarkExactDP(b *testing.B) {
	for _, n := range []int{50, 200, 400} {
		p := make([]int, n)
		alpha := make([]int, n)
		beta := make([]int, n)
		var sum int64
		for i := 0; i < n; i++ {
			p[i] = 1 + (i*7)%20
			alpha[i] = 1 + (i*3)%10
			beta[i] = alpha[i]
			sum += int64(p[i])
		}
		in, err := problem.NewCDD("bench-dp", p, alpha, beta, sum+10)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SolveDP(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
