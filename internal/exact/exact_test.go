package exact

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/problem"
	"repro/internal/sa"
)

func randomUnrestrictedCDD(rng *rand.Rand, n int) *problem.Instance {
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(15)
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
		sum += int64(p[i])
	}
	d := sum + int64(rng.Intn(20))
	in, err := problem.NewCDD("u", p, alpha, beta, d)
	if err != nil {
		panic(err)
	}
	return in
}

func randomRestrictiveCDD(rng *rand.Rand, n int) *problem.Instance {
	in := randomUnrestrictedCDD(rng, n)
	in.D = int64(float64(in.SumP()) * (0.2 + 0.6*rng.Float64()))
	return in
}

// TestPaperExampleExact: the global optimum of the Table I CDD instance
// over all 120 sequences is 81 (the identity sequence is optimal).
func TestPaperExampleExact(t *testing.T) {
	res, err := Brute(problem.PaperExample(problem.CDD))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 81 {
		t.Errorf("brute optimum = %d, want 81", res.Cost)
	}
	if res.Nodes != 120 {
		t.Errorf("nodes = %d, want 120", res.Nodes)
	}
	resU, err := Brute(problem.PaperExample(problem.UCDDCP))
	if err != nil {
		t.Fatal(err)
	}
	if resU.Cost != 77 {
		t.Errorf("UCDDCP brute optimum = %d, want 77", resU.Cost)
	}
}

// TestSubsetMatchesBrute is the V-shape dominance check: on random
// unrestricted instances the partition enumeration must match full
// permutation enumeration exactly.
func TestSubsetMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(7)
		in := randomUnrestrictedCDD(rng, n)
		sub, err := SubsetCDD(in)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := Brute(in)
		if err != nil {
			t.Fatal(err)
		}
		if sub.Cost != brute.Cost {
			t.Fatalf("trial %d (n=%d, d=%d): subset %d != brute %d\njobs=%+v",
				trial, n, in.D, sub.Cost, brute.Cost, in.Jobs)
		}
	}
}

// TestSubsetTiesWithZeroWeights exercises α = 0 / β = 0 corner cases of
// the ratio orderings.
func TestSubsetTiesWithZeroWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(6)
		in := randomUnrestrictedCDD(rng, n)
		// Zero out some weights.
		for i := range in.Jobs {
			if rng.Intn(3) == 0 {
				in.Jobs[i].Alpha = 0
			}
			if rng.Intn(3) == 0 {
				in.Jobs[i].Beta = 0
			}
		}
		sub, err := SubsetCDD(in)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := Brute(in)
		if err != nil {
			t.Fatal(err)
		}
		if sub.Cost != brute.Cost {
			t.Fatalf("trial %d: subset %d != brute %d (zero-weight case)\njobs=%+v d=%d",
				trial, sub.Cost, brute.Cost, in.Jobs, in.D)
		}
	}
}

func TestGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	big := randomUnrestrictedCDD(rng, MaxBruteN+1)
	if _, err := Brute(big); err == nil {
		t.Error("brute accepted oversized instance")
	}
	huge := randomUnrestrictedCDD(rng, MaxSubsetN+1)
	if _, err := SubsetCDD(huge); err == nil {
		t.Error("subset accepted oversized instance")
	}
	restr := randomRestrictiveCDD(rng, 6)
	if _, err := SubsetCDD(restr); err != nil {
		t.Errorf("subset must accept a restrictive instance since the straddler extension: %v", err)
	}
	ucd := problem.PaperExample(problem.UCDDCP)
	if _, err := SubsetCDD(ucd); err == nil {
		t.Error("subset accepted a controllable instance")
	}
}

func TestSolveDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Unrestricted n=12: must route to the subset method (brute would
	// error at this size).
	in := randomUnrestrictedCDD(rng, 12)
	res, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !problem.IsPermutation(res.Seq) {
		t.Error("optimal sequence is not a permutation")
	}
	eval := core.NewEvaluator(in)
	if got := eval.Cost(res.Seq); got != res.Cost {
		t.Errorf("optimum %d but sequence evaluates to %d", res.Cost, got)
	}
	// Restrictive n=8 with general weights: whichever method the
	// dispatcher picks (DP if the draw happens to be agreeable, subset
	// otherwise), the result must match full permutation enumeration.
	in2 := randomRestrictiveCDD(rng, 8)
	res2, err := Solve(in2)
	if err != nil {
		t.Fatal(err)
	}
	brute2, err := Brute(in2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cost != brute2.Cost {
		t.Errorf("restrictive dispatch optimum %d != brute %d", res2.Cost, brute2.Cost)
	}
	// EARLYWORK on 3 machines beyond brute reach: must route to the DP.
	p := make([]int, 12)
	for i := range p {
		p[i] = 1 + rng.Intn(6)
	}
	ew, err := problem.NewEarlyWork("dispatch-ew", p, 3, 14)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := Solve(ew)
	if err != nil {
		t.Fatal(err)
	}
	if !ew.IsGenome(res3.Seq) {
		t.Error("EARLYWORK dispatch returned an invalid genome")
	}
}

// TestSAReachesExactOptimum is the integration oracle: the parallel SA
// ensemble must hit the exact optimum on small instances.
func TestSAReachesExactOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		in := randomUnrestrictedCDD(rng, 8)
		opt, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sa.DefaultConfig()
		cfg.Iterations = 400
		cfg.TempSamples = 200
		res := (&parallel.AsyncSA{
			Inst: in, SA: cfg,
			Ens:      parallel.Ensemble{Chains: 16, Seed: uint64(trial)},
			Parallel: true,
		}).MustSolve()
		if res.BestCost < opt.Cost {
			t.Fatalf("trial %d: SA %d beats the exact optimum %d — a solver bug", trial, res.BestCost, opt.Cost)
		}
		if res.BestCost != opt.Cost {
			t.Errorf("trial %d: SA %d missed the exact optimum %d on n=8", trial, res.BestCost, opt.Cost)
		}
	}
}

// TestErrTooLargeSentinel: the size guards must wrap the typed sentinel
// (so differential harnesses fail loudly with errors.Is instead of
// hanging on an n! enumeration), while the domain rejections — wrong
// kind — must NOT claim the instance was too large.
func TestErrTooLargeSentinel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	if _, err := Brute(randomUnrestrictedCDD(rng, MaxBruteN+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Brute oversize: got %v, want ErrTooLarge", err)
	}
	if _, err := SubsetCDD(randomUnrestrictedCDD(rng, MaxSubsetN+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("SubsetCDD oversize: got %v, want ErrTooLarge", err)
	}
	if _, err := SubsetCDD(problem.PaperExample(problem.UCDDCP)); errors.Is(err, ErrTooLarge) {
		t.Errorf("kind rejection mislabeled as ErrTooLarge: %v", err)
	}
	if _, err := Brute(randomUnrestrictedCDD(rng, MaxBruteN)); err != nil {
		t.Errorf("Brute at the limit must still run: %v", err)
	}
}
