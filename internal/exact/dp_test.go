package exact

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/orlib"
	"repro/internal/problem"
)

// agreeableCDD builds a random CDD instance guaranteed to admit an
// agreeable order: mode 0 uses common rates (α_i = A, β_i = B), mode 1
// symmetric weights (α_i = β_i), mode 2 proportional weights
// (β_i = k·α_i), all with occasional zero weights.
func agreeableCDD(rng *rand.Rand, n, mode int, restrictive bool) *problem.Instance {
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	ca, cb := 1+rng.Intn(9), 1+rng.Intn(9)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(6)
		switch mode {
		case 0:
			alpha[i], beta[i] = ca, cb
		case 1:
			alpha[i] = rng.Intn(7)
			beta[i] = alpha[i]
		default:
			alpha[i] = rng.Intn(5)
			beta[i] = alpha[i] * cb
		}
		// Zero both weights together: a (0, 0) job sorts last on both
		// ratios, so agreeableness is preserved.
		if rng.Intn(12) == 0 {
			alpha[i], beta[i] = 0, 0
		}
		sum += int64(p[i])
	}
	d := sum + int64(rng.Intn(8))
	if restrictive {
		d = int64(rng.Intn(int(sum + 1)))
	}
	in, err := problem.NewCDD("agreeable", p, alpha, beta, d)
	if err != nil {
		panic(err)
	}
	return in
}

func randomEarlyWork(rng *rand.Rand, n, m int) *problem.Instance {
	p := make([]int, n)
	var sum int64
	for i := range p {
		p[i] = 1 + rng.Intn(8)
		sum += int64(p[i])
	}
	d := 1 + int64(rng.Intn(int(sum)))
	in, err := problem.NewEarlyWork("ew", p, m, d)
	if err != nil {
		panic(err)
	}
	return in
}

// TestAgreeableOrder pins the domain gate: common-rate instances always
// sort, the paper's Table I instance (asymmetric general weights) does
// not, and the returned order is ascending in both ratios.
func TestAgreeableOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 50; trial++ {
		in := agreeableCDD(rng, 2+rng.Intn(8), trial%3, trial%2 == 0)
		ord, ok := agreeableOrder(in.Jobs)
		if !ok {
			t.Fatalf("trial %d: agreeable generator produced a non-agreeable instance %+v", trial, in.Jobs)
		}
		for i := 0; i+1 < len(ord); i++ {
			jx, jy := in.Jobs[ord[i]], in.Jobs[ord[i+1]]
			if jx.P*jy.Alpha > jy.P*jx.Alpha {
				t.Fatalf("trial %d: order not ascending in P/α at %d", trial, i)
			}
			if jx.P*jy.Beta > jy.P*jx.Beta {
				t.Fatalf("trial %d: order not ascending in P/β at %d", trial, i)
			}
		}
	}
	if _, ok := agreeableOrder(problem.PaperExample(problem.CDD).Jobs); ok {
		t.Error("paper Table I instance reported agreeable; its ratio orders conflict")
	}
}

// TestDPMatchesBruteCDD is the core differential property: on every
// agreeable instance small enough to brute-force, the DP must return the
// same optimal cost (restrictive and unrestricted, zero weights included).
func TestDPMatchesBruteCDD(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(7)
		in := agreeableCDD(rng, n, trial%3, trial%2 == 0)
		dp, err := SolveDP(in)
		if err != nil {
			t.Fatalf("trial %d: SolveDP: %v (jobs=%+v d=%d)", trial, err, in.Jobs, in.D)
		}
		if !problem.IsPermutation(dp.Seq) {
			t.Fatalf("trial %d: DP sequence is not a permutation: %v", trial, dp.Seq)
		}
		brute, err := Brute(in)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Cost != brute.Cost {
			t.Fatalf("trial %d: DP %d != brute %d (jobs=%+v d=%d)", trial, dp.Cost, brute.Cost, in.Jobs, in.D)
		}
	}
}

// TestDPMatchesBruteEarlyWork: the EARLYWORK DP must match brute
// enumeration of every delimiter genome on machines 1, 2 and 3.
func TestDPMatchesBruteEarlyWork(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(3)
		n := 1 + rng.Intn(8-m)
		in := randomEarlyWork(rng, n, m)
		dp, err := SolveDP(in)
		if err != nil {
			t.Fatalf("trial %d: SolveDP: %v", trial, err)
		}
		if !in.IsGenome(dp.Seq) {
			t.Fatalf("trial %d: DP result is not a valid genome: %v", trial, dp.Seq)
		}
		brute, err := Brute(in)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Cost != brute.Cost {
			t.Fatalf("trial %d: DP %d != brute %d (p=%+v m=%d d=%d)", trial, dp.Cost, brute.Cost, in.Jobs, m, in.D)
		}
	}
}

// TestDPMatchesSubsetMidSize cross-checks the DP against the partition
// enumeration on sizes brute force cannot reach (n up to 20, both due-date
// regimes) — the "agrees bit-identically on the full supported range" leg.
func TestDPMatchesSubsetMidSize(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 24; trial++ {
		n := 12 + rng.Intn(7)
		in := agreeableCDD(rng, n, trial%3, trial%2 == 0)
		dp, err := SolveDP(in)
		if err != nil {
			t.Fatalf("trial %d: SolveDP: %v", trial, err)
		}
		sub, err := SubsetCDD(in)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Cost != sub.Cost {
			t.Fatalf("trial %d: DP %d != subset %d (n=%d d=%d jobs=%+v)", trial, dp.Cost, sub.Cost, n, in.D, in.Jobs)
		}
	}
}

// TestDPGoldenValues pins exact optima on fixed instances: hand-checkable
// micro cases, an orlib-generated fixture, and the paper Table I example
// routed through Solve (the DP declines it; the extended SubsetCDD now
// covers the restrictive regime and must agree with Brute's 81).
func TestDPGoldenValues(t *testing.T) {
	// Two jobs, common rates α=1, β=2, d=3: schedule [1 0] anchored with
	// job 0 at d gives cost α·2 = 2... pinned from brute force below.
	micro, err := problem.NewCDD("micro", []int{3, 2}, []int{1, 1}, []int{2, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := SolveDP(micro)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(4); dp.Cost != want {
		t.Errorf("micro DP optimum = %d, want %d", dp.Cost, want)
	}

	// orlib-generated symmetric-weight fixture at n=40: far beyond every
	// enumeration, pinned against the first run and re-checked for honesty
	// on every run by SolveDP itself.
	raws := orlib.GenerateCDD(40, 1, 2016)
	in, err := orlib.CDDInstance(raws[0], 40, 0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Jobs {
		in.Jobs[i].Beta = in.Jobs[i].Alpha // symmetric → agreeable
	}
	res, err := SolveDP(in)
	if err != nil {
		t.Fatalf("orlib fixture: %v", err)
	}
	if res.Cost <= 0 || !problem.IsPermutation(res.Seq) {
		t.Fatalf("orlib fixture: degenerate result %+v", res)
	}
	goldenOrlib := res.Cost // restrictive h=1.0? record and require stability
	res2, err := SolveDP(in)
	if err != nil || res2.Cost != goldenOrlib {
		t.Errorf("orlib fixture not deterministic: %d vs %d (%v)", res2.Cost, goldenOrlib, err)
	}

	// Paper Table I via the Solve dispatcher: the DP declines (no
	// agreeable order), SubsetCDD's restrictive extension must take over
	// and agree with the known brute-force optimum 81.
	paper := problem.PaperExample(problem.CDD)
	sres, err := Solve(paper)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Cost != 81 {
		t.Errorf("Solve(paper CDD) = %d, want 81", sres.Cost)
	}
	if sres.Nodes != 1<<paper.N() {
		t.Errorf("Solve(paper CDD) nodes = %d, want %d (subset partitions)", sres.Nodes, 1<<paper.N())
	}
}

// TestSubsetRestrictiveMatchesBrute: the extended SubsetCDD must agree
// with Brute on restrictive instances with fully general weights — the
// regime the v1 enumeration refused.
func TestSubsetRestrictiveMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		in := randomRestrictiveCDD(rng, n)
		sub, err := SubsetCDD(in)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := Brute(in)
		if err != nil {
			t.Fatal(err)
		}
		if sub.Cost != brute.Cost {
			t.Fatalf("trial %d: subset %d != brute %d (restrictive, jobs=%+v d=%d)",
				trial, sub.Cost, brute.Cost, in.Jobs, in.D)
		}
		if got := core.NewEvaluator(in).Cost(sub.Seq); got != sub.Cost {
			t.Fatalf("trial %d: subset sequence evaluates to %d, reported %d", trial, got, sub.Cost)
		}
	}
}

// TestDPLargeUnrestricted exercises the acceptance regime: n ≥ 200
// unrestricted agreeable CDD solved exactly within the default budget,
// with a valid self-verified certificate.
func TestDPLargeUnrestricted(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for _, n := range []int{200, 240} {
		p := make([]int, n)
		alpha := make([]int, n)
		beta := make([]int, n)
		var sum int64
		for i := 0; i < n; i++ {
			p[i] = 1 + rng.Intn(20)
			alpha[i] = 3
			beta[i] = 7
			sum += int64(p[i])
		}
		in, err := problem.NewCDD("large", p, alpha, beta, sum+5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveDP(in)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !problem.IsPermutation(res.Seq) {
			t.Fatalf("n=%d: not a permutation", n)
		}
		if got := core.NewEvaluator(in).Cost(res.Seq); got != res.Cost {
			t.Fatalf("n=%d: dishonest certificate: seq cost %d, reported %d", n, got, res.Cost)
		}
		if res.Nodes > MaxDPStates {
			t.Fatalf("n=%d: %d states exceed the default budget", n, res.Nodes)
		}
	}
}

// TestDPBudgetGuard: a tiny MaxStates must degrade to the typed ErrBudget
// (which is an ErrTooLarge), never an unbounded allocation; a restrictive
// instance at acceptance scale must also stay within typed failure.
func TestDPBudgetGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	in := agreeableCDD(rng, 50, 0, false)
	_, err := SolveDPContext(context.Background(), in, DPConfig{MaxStates: 16})
	if !errors.Is(err, ErrBudget) || !errors.Is(err, ErrTooLarge) {
		t.Errorf("tiny budget: got %v, want ErrBudget (an ErrTooLarge)", err)
	}
	ew := randomEarlyWork(rng, 40, 3)
	ew.D = ew.SumP() / 3
	if _, err := SolveDPContext(context.Background(), ew, DPConfig{MaxStates: 8}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("EARLYWORK tiny budget: got %v, want ErrTooLarge", err)
	}
}

// TestDPInapplicable: the typed domain gate — UCDDCP, multi-machine CDD,
// and non-agreeable CDD all decline with ErrInapplicable (not ErrTooLarge,
// so fallbacks pick the right alternative).
func TestDPInapplicable(t *testing.T) {
	cases := []*problem.Instance{
		problem.PaperExample(problem.UCDDCP),
		problem.PaperExample(problem.CDD), // non-agreeable ratios
	}
	mc, err := problem.NewCDD("mc", []int{3, 2, 4}, []int{1, 1, 1}, []int{2, 2, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	mc.Machines = 2
	cases = append(cases, mc)
	for i, in := range cases {
		_, err := SolveDP(in)
		if !errors.Is(err, ErrInapplicable) {
			t.Errorf("case %d: got %v, want ErrInapplicable", i, err)
		}
		if errors.Is(err, ErrTooLarge) {
			t.Errorf("case %d: domain rejection mislabeled as ErrTooLarge", i)
		}
	}
}

// TestDPContextCancelled: cancellation aborts at a layer boundary with the
// context's error (the facade driver converts this into an Interrupted
// best-so-far result).
func TestDPContextCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	in := agreeableCDD(rng, 120, 0, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveDPContext(ctx, in, DPConfig{}); !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}

// TestDPEarlyWorkReconstruction: beyond cost agreement, the reconstructed
// genome's per-machine loads must realize exactly the DP's early work.
func TestDPEarlyWorkReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(3)
		n := 2 + rng.Intn(20)
		in := randomEarlyWork(rng, n, m)
		res, err := SolveDP(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var late int64
		for _, seg := range in.SplitGenome(res.Seq) {
			var load int64
			for _, j := range seg {
				load += int64(in.Jobs[j].P)
			}
			if load > in.D {
				late += load - in.D
			}
		}
		if late != res.Cost {
			t.Fatalf("trial %d: genome late work %d != DP cost %d", trial, late, res.Cost)
		}
	}
}
