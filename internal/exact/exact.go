// Package exact provides exact solvers for small instances of the CDD and
// UCDDCP problems. They serve as optimality oracles for the metaheuristics
// (and for each other) in tests and examples.
//
// Two strategies are implemented:
//
//   - Brute: enumerate all n! sequences and time each optimally with the
//     O(n) linear algorithms. Exact for every instance kind; practical to
//     n ≈ 10.
//
//   - SubsetCDD: for *unrestricted* CDD instances (d ≥ ΣP with positive
//     α), every optimal schedule is V-shaped around the due date — the
//     early set appears in non-increasing P_i/α_i order and the tardy set
//     in non-decreasing P_i/β_i order (the weighted generalization of the
//     classic V-shape dominance; verified against Brute in tests). It
//     therefore suffices to enumerate the 2ⁿ early/tardy partitions and
//     evaluate one canonical sequence per partition: O(2ⁿ·n), practical
//     to n ≈ 22.
package exact

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/problem"
)

// ErrTooLarge is the typed size-guard error wrapped by Brute and SubsetCDD
// when the instance exceeds the enumeration limit. Callers that fall back
// to heuristics (or that must fail loudly instead of hanging on an n!
// enumeration) test for it with errors.Is.
var ErrTooLarge = errors.New("exact: instance too large for exhaustive enumeration")

// Result is an exact optimum.
type Result struct {
	// Cost is the optimal objective value.
	Cost int64
	// Seq is an optimal job sequence.
	Seq []int
	// Nodes counts evaluated sequences (brute) or partitions (subset).
	Nodes int64
}

// MaxBruteN bounds the brute-force enumeration (n! sequences).
const MaxBruteN = 10

// MaxSubsetN bounds the subset enumeration (2ⁿ partitions).
const MaxSubsetN = 22

// Brute enumerates every solution and returns the global optimum. For
// single-machine instances that is every job sequence; for genome-coded
// instances (parallel machines, EARLYWORK) it is every delimiter genome —
// every assignment of jobs to machines crossed with every per-machine
// sequence — so Brute stays the universal oracle of the generalized
// stack. It errors when the genome length n + m − 1 exceeds MaxBruteN.
func Brute(in *problem.Instance) (Result, error) {
	n := in.GenomeLen()
	if n > MaxBruteN {
		return Result{}, fmt.Errorf("%w: genome length %d exceeds brute-force limit %d", ErrTooLarge, n, MaxBruteN)
	}
	eval := core.NewEvaluator(in)
	seq := problem.IdentitySequence(n)
	best := Result{Cost: 1 << 62}
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			best.Nodes++
			if c := eval.Cost(seq); c < best.Cost {
				best.Cost = c
				best.Seq = append(best.Seq[:0], seq...)
			}
			return
		}
		for i := k; i < n; i++ {
			seq[k], seq[i] = seq[i], seq[k]
			permute(k + 1)
			seq[k], seq[i] = seq[i], seq[k]
		}
	}
	permute(0)
	return best, nil
}

// SubsetCDD solves an unrestricted CDD instance exactly by early/tardy
// partition enumeration with canonical V-shape orderings. It errors for
// restrictive instances, controllable instances, or n > MaxSubsetN.
func SubsetCDD(in *problem.Instance) (Result, error) {
	n := in.N()
	if n > MaxSubsetN {
		return Result{}, fmt.Errorf("%w: n=%d exceeds subset limit %d", ErrTooLarge, n, MaxSubsetN)
	}
	if in.Kind != problem.CDD {
		return Result{}, fmt.Errorf("exact: SubsetCDD requires a CDD instance, got %v", in.Kind)
	}
	if in.MachineCount() > 1 {
		return Result{}, fmt.Errorf("exact: SubsetCDD requires a single machine, got %d", in.MachineCount())
	}
	if in.Restrictive() {
		return Result{}, fmt.Errorf("exact: SubsetCDD requires an unrestricted due date (d=%d < ΣP=%d)", in.D, in.SumP())
	}

	// Canonical orders: byAlpha descending P/α for the early side,
	// byBeta ascending P/β for the tardy side.
	byAlpha := problem.IdentitySequence(n)
	sort.SliceStable(byAlpha, func(a, b int) bool {
		ja, jb := in.Jobs[byAlpha[a]], in.Jobs[byAlpha[b]]
		// P_a/α_a > P_b/α_b  ⇔  P_a·α_b > P_b·α_a (α may be zero).
		return ja.P*jb.Alpha > jb.P*ja.Alpha
	})
	byBeta := problem.IdentitySequence(n)
	sort.SliceStable(byBeta, func(a, b int) bool {
		ja, jb := in.Jobs[byBeta[a]], in.Jobs[byBeta[b]]
		return ja.P*jb.Beta < jb.P*ja.Beta
	})

	eval := cdd.NewEvaluator(in)
	seq := make([]int, n)
	inEarly := make([]bool, n)
	best := Result{Cost: 1 << 62}
	for mask := 0; mask < 1<<n; mask++ {
		for i := range inEarly {
			inEarly[i] = mask&(1<<i) != 0
		}
		w := 0
		for _, job := range byAlpha {
			if inEarly[job] {
				seq[w] = job
				w++
			}
		}
		for _, job := range byBeta {
			if !inEarly[job] {
				seq[w] = job
				w++
			}
		}
		best.Nodes++
		// The linear algorithm times the candidate optimally, so the
		// partition's "early set" is only a construction device; the
		// evaluation is exact regardless.
		if c := eval.Cost(seq); c < best.Cost {
			best.Cost = c
			best.Seq = append(best.Seq[:0], seq...)
		}
	}
	return best, nil
}

// Solve dispatches to the best applicable exact method: SubsetCDD for
// single-machine unrestricted CDD instances within its size limit, Brute
// otherwise.
func Solve(in *problem.Instance) (Result, error) {
	if in.Kind == problem.CDD && in.MachineCount() == 1 && !in.Restrictive() && in.N() <= MaxSubsetN {
		return SubsetCDD(in)
	}
	return Brute(in)
}
