// Package exact provides exact solvers for the due-date problems. They
// serve as optimality oracles for the metaheuristics (and for each other)
// in tests, in the verify subsystem, and behind the EXACT-DP facade
// driver.
//
// Three strategies are implemented:
//
//   - Brute: enumerate all genome permutations and time each optimally
//     with the O(n) linear algorithms. Exact for every instance kind and
//     machine count; practical to genome length ≈ 10.
//
//   - SubsetCDD: for single-machine CDD instances, every optimal schedule
//     is V-shaped around the due date — the early set appears in
//     non-increasing P_i/α_i order and the tardy set in non-decreasing
//     P_i/β_i order (the weighted generalization of the classic V-shape
//     dominance; verified against Brute in tests). It therefore suffices
//     to enumerate the 2ⁿ early/tardy partitions; each partition is priced
//     in O(n) — the anchored placement plus, on restrictive instances, a
//     closed-form scan over candidate straddling jobs. Practical to
//     n ≈ 22.
//
//   - SolveDP: pseudo-polynomial dynamic programs (see dp.go) that reach
//     n in the hundreds on agreeable CDD instances and on EARLYWORK, with
//     a MaxDPStates budget guard instead of a hard n limit.
package exact

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cdd"
	"repro/internal/core"
	"repro/internal/problem"
)

// ErrTooLarge is the typed size-guard error wrapped by Brute and SubsetCDD
// when the instance exceeds the enumeration limit (and by the DP budget
// guard ErrBudget). Callers that fall back to heuristics (or that must
// fail loudly instead of hanging on an n! enumeration) test for it with
// errors.Is.
var ErrTooLarge = errors.New("exact: instance too large for exhaustive enumeration")

// Result is an exact optimum.
type Result struct {
	// Cost is the optimal objective value.
	Cost int64
	// Seq is an optimal genome (a job sequence on single-machine
	// instances).
	Seq []int
	// Nodes counts evaluated sequences (brute), partitions (subset), or
	// stored DP states (SolveDP).
	Nodes int64
}

// MaxBruteN bounds the brute-force enumeration (n! sequences).
const MaxBruteN = 10

// MaxSubsetN bounds the subset enumeration (2ⁿ partitions).
const MaxSubsetN = 22

// Brute enumerates every solution and returns the global optimum. For
// single-machine instances that is every job sequence; for genome-coded
// instances (parallel machines, EARLYWORK) it is every delimiter genome —
// every assignment of jobs to machines crossed with every per-machine
// sequence — so Brute stays the universal oracle of the generalized
// stack. It errors when the genome length n + m − 1 exceeds MaxBruteN.
func Brute(in *problem.Instance) (Result, error) {
	n := in.GenomeLen()
	if n > MaxBruteN {
		return Result{}, fmt.Errorf("%w: genome length %d exceeds brute-force limit %d", ErrTooLarge, n, MaxBruteN)
	}
	eval := core.NewEvaluator(in)
	seq := problem.IdentitySequence(n)
	best := Result{Cost: 1 << 62}
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			best.Nodes++
			if c := eval.Cost(seq); c < best.Cost {
				best.Cost = c
				best.Seq = append(best.Seq[:0], seq...)
			}
			return
		}
		for i := k; i < n; i++ {
			seq[k], seq[i] = seq[i], seq[k]
			permute(k + 1)
			seq[k], seq[i] = seq[i], seq[k]
		}
	}
	permute(0)
	return best, nil
}

// SubsetCDD solves a single-machine CDD instance exactly by early/tardy
// partition enumeration with canonical V-shape orderings. Each of the 2ⁿ
// partitions is priced in O(n): the anchored placement (last early job
// completes at d, or the all-tardy block starts at d) plus, on
// restrictive instances, a closed-form scan over every feasible
// straddling job for the start-at-zero placement. It errors for
// controllable (UCDDCP) or multi-machine instances, or when n exceeds
// MaxSubsetN.
func SubsetCDD(in *problem.Instance) (Result, error) {
	n := in.N()
	if n > MaxSubsetN {
		return Result{}, fmt.Errorf("%w: n=%d exceeds subset limit %d", ErrTooLarge, n, MaxSubsetN)
	}
	if in.Kind != problem.CDD {
		return Result{}, fmt.Errorf("exact: SubsetCDD requires a CDD instance, got %v", in.Kind)
	}
	if in.MachineCount() > 1 {
		return Result{}, fmt.Errorf("exact: SubsetCDD requires a single machine, got %d", in.MachineCount())
	}

	// Canonical orders: byAlpha descending P/α for the early side,
	// byBeta ascending P/β for the tardy side.
	byAlpha := problem.IdentitySequence(n)
	sort.SliceStable(byAlpha, func(a, b int) bool {
		ja, jb := in.Jobs[byAlpha[a]], in.Jobs[byAlpha[b]]
		// P_a/α_a > P_b/α_b  ⇔  P_a·α_b > P_b·α_a (α may be zero).
		return ja.P*jb.Alpha > jb.P*ja.Alpha
	})
	byBeta := problem.IdentitySequence(n)
	sort.SliceStable(byBeta, func(a, b int) bool {
		ja, jb := in.Jobs[byBeta[a]], in.Jobs[byBeta[b]]
		return ja.P*jb.Beta < jb.P*ja.Beta
	})

	restrictive := in.Restrictive()
	d := in.D
	p64 := make([]int64, n)
	a64 := make([]int64, n)
	b64 := make([]int64, n)
	for i, j := range in.Jobs {
		p64[i], a64[i], b64[i] = int64(j.P), int64(j.Alpha), int64(j.Beta)
	}
	inEarly := make([]bool, n)
	bestCost := int64(1) << 62
	bestMask := -1
	bestStraddler := -1
	var nodes int64
	for mask := 0; mask < 1<<n; mask++ {
		nodes++
		for i := range inEarly {
			inEarly[i] = mask&(1<<i) != 0
		}
		// Early side in canonical far→near order: Q_E, A_E = Σα(E), and
		// the flush-against-d earliness cost (earliness of each early job
		// is the processing time packed between it and d).
		var qe, ae, earlyFlush int64
		var suf int64
		for i := n - 1; i >= 0; i-- {
			job := byAlpha[i]
			if !inEarly[job] {
				continue
			}
			earlyFlush += a64[job] * suf
			suf += p64[job]
			qe += p64[job]
			ae += a64[job]
		}
		if qe > d {
			continue // no placement completes the early set by d
		}
		// Anchored candidate: tardy tail starts at d in canonical order.
		var tail, tardyAnchored int64
		for _, job := range byBeta {
			if inEarly[job] {
				continue
			}
			tail += p64[job]
			tardyAnchored += b64[job] * tail
		}
		if c := earlyFlush + tardyAnchored; c < bestCost {
			bestCost = c
			bestMask = mask
			bestStraddler = -1
		}
		if !restrictive {
			continue
		}
		// Start-at-zero candidates: early block starts at 0 (each early
		// job loses d−Q_E of slack), straddling job s ∈ T with
		// Q_E < C_s = Q_E+P_s and Q_E ≤ d < Q_E+P_s, remaining tardy jobs
		// in canonical order after s. With baseC_t = Q_E + prefix_t over
		// the canonical tardy order, jobs canonically after s complete at
		// baseC_t and jobs canonically before s are pushed by P_s, so
		//
		//	cost(s) = start0Early + S1 + β_s·(Q_E+P_s−d)
		//	          − β_s·(baseC_s−d) + P_s·Bpre(s)
		//
		// where S1 = Σ_{t∈T} β_t·(baseC_t−d) and Bpre(s) = Σβ of tardy
		// jobs canonically before s.
		start0Early := earlyFlush + ae*(d-qe)
		var s1, prefix int64
		for _, job := range byBeta {
			if inEarly[job] {
				continue
			}
			prefix += p64[job]
			s1 += b64[job] * (qe + prefix - d)
		}
		constPart := start0Early + s1
		var bpre int64
		prefix = 0
		for _, job := range byBeta {
			if inEarly[job] {
				continue
			}
			prefix += p64[job]
			if qe+p64[job] > d {
				baseC := qe + prefix
				c := constPart + b64[job]*(qe+p64[job]-d) - b64[job]*(baseC-d) + p64[job]*bpre
				if c < bestCost {
					bestCost = c
					bestMask = mask
					bestStraddler = job
				}
			}
			bpre += b64[job]
		}
	}
	if bestMask < 0 {
		return Result{}, fmt.Errorf("exact: internal: SubsetCDD found no feasible partition")
	}

	// Build the winning sequence and report its evaluated cost (the O(n)
	// evaluator times the sequence optimally, which can only meet — never
	// beat — the partition formula, so the two agree; tests assert it).
	seq := make([]int, 0, n)
	for i := range inEarly {
		inEarly[i] = bestMask&(1<<i) != 0
	}
	for _, job := range byAlpha {
		if inEarly[job] {
			seq = append(seq, job)
		}
	}
	if bestStraddler >= 0 {
		seq = append(seq, bestStraddler)
	}
	for _, job := range byBeta {
		if !inEarly[job] && job != bestStraddler {
			seq = append(seq, job)
		}
	}
	eval := cdd.NewEvaluator(in)
	return Result{Cost: eval.Cost(seq), Seq: seq, Nodes: nodes}, nil
}

// Solve dispatches to the best applicable exact method: the
// pseudo-polynomial DP where it applies within its state budget, then
// SubsetCDD for single-machine CDD instances within its size limit, then
// Brute. Any error other than the typed inapplicability/size sentinels is
// returned as-is.
func Solve(in *problem.Instance) (Result, error) {
	r, err := SolveDP(in)
	switch {
	case err == nil:
		return r, nil
	case !errors.Is(err, ErrInapplicable) && !errors.Is(err, ErrTooLarge):
		return Result{}, err
	}
	if in.Kind == problem.CDD && in.MachineCount() == 1 && in.N() <= MaxSubsetN {
		return SubsetCDD(in)
	}
	return Brute(in)
}
