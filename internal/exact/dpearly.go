package exact

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/problem"
)

// ewNode is one stored EARLYWORK DP state: the best early work reaching
// this multiset of capped machine loads, plus the parent pointer used for
// reconstruction (the predecessor's key and the sorted slot the job was
// placed on).
type ewNode struct {
	early int64
	prev  string
	slot  int
}

// dpEarlyWork solves EARLYWORK on m machines exactly: a knapsack over the
// multiset of machine loads capped at d (loads beyond d are
// indistinguishable — every further unit is late), maximizing total early
// work; late work = ΣP − early. States are canonicalized by sorting the
// capped loads, which quotients out machine symmetry. Exact for every
// instance; the state count is bounded by the compositions of d over m
// machines, so the budget guard is what limits n·d·m in practice.
func dpEarlyWork(ctx context.Context, in *problem.Instance, maxStates int64) (Result, error) {
	n, m, d := in.N(), in.MachineCount(), in.D
	st := &dpState{ctx: ctx, maxStates: maxStates}

	enc := func(loads []int64) string {
		s := append(make([]int64, 0, m), loads...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		b := make([]byte, 8*m)
		for i, v := range s {
			binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
		}
		return string(b)
	}
	dec := func(key string) []int64 {
		loads := make([]int64, m)
		for i := range loads {
			loads[i] = int64(binary.LittleEndian.Uint64([]byte(key[8*i : 8*i+8])))
		}
		return loads
	}

	layers := make([]map[string]ewNode, n+1)
	root := enc(make([]int64, m))
	layers[0] = map[string]ewNode{root: {slot: -1}}
	if err := st.charge(1); err != nil {
		return Result{}, err
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		p := int64(in.Jobs[i].P)
		next := make(map[string]ewNode, 2*len(layers[i]))
		for key, node := range layers[i] {
			loads := dec(key)
			for k := 0; k < m; k++ {
				add := p
				if loads[k]+add > d {
					add = d - loads[k]
				}
				nl := append(make([]int64, 0, m), loads...)
				nl[k] += p
				if nl[k] > d {
					nl[k] = d
				}
				nk := enc(nl)
				if v, ok := next[nk]; !ok || node.early+add > v.early {
					next[nk] = ewNode{early: node.early + add, prev: key, slot: k}
				}
			}
		}
		if err := st.charge(len(next)); err != nil {
			return Result{}, err
		}
		layers[i+1] = next
	}

	bestEarly := int64(-1)
	bestKey := ""
	for key, node := range layers[n] {
		if node.early > bestEarly {
			bestEarly = node.early
			bestKey = key
		}
	}

	// Walk back collecting each job's sorted-slot choice, then replay
	// forward mapping sorted slots onto actual machine labels (ties between
	// equal capped loads are interchangeable, so any consistent tie-break
	// yields the same load multiset at every step).
	slots := make([]int, n)
	key := bestKey
	for i := n; i >= 1; i-- {
		node := layers[i][key]
		slots[i-1] = node.slot
		key = node.prev
	}
	segs := make([][]int, m)
	for k := range segs {
		segs[k] = []int{}
	}
	capped := make([]int64, m)
	order := make([]int, m)
	for i := 0; i < n; i++ {
		for k := range order {
			order[k] = k
		}
		sort.SliceStable(order, func(a, b int) bool { return capped[order[a]] < capped[order[b]] })
		mach := order[slots[i]]
		segs[mach] = append(segs[mach], i)
		capped[mach] += int64(in.Jobs[i].P)
		if capped[mach] > d {
			capped[mach] = d
		}
	}
	genome, err := in.EncodeGenome(segs)
	if err != nil {
		return Result{}, fmt.Errorf("exact: internal: EARLYWORK reconstruction produced a bad genome: %w", err)
	}
	cost := in.SumP() - bestEarly
	if got := core.NewEvaluator(in).Cost(genome); got != cost {
		return Result{}, fmt.Errorf("exact: internal: EARLYWORK DP cost %d disagrees with evaluator cost %d on the reconstructed genome", cost, got)
	}
	return Result{Cost: cost, Seq: genome, Nodes: st.nodes}, nil
}
