package exact

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/problem"
)

// ErrInapplicable is the typed error SolveDP wraps when the instance is
// outside the DP's provably exact domain: a UCDDCP instance (earliness
// couples to the compression vector), a multi-machine CDD instance, or a
// CDD instance whose weight ratios admit no agreeable order. Callers fall
// back to SubsetCDD/Brute or to the metaheuristics with errors.Is.
var ErrInapplicable = errors.New("exact: instance outside the DP's exact domain")

// ErrBudget is the typed error SolveDP wraps when the DP would store more
// states than the configured budget. It wraps ErrTooLarge, so existing
// errors.Is(err, ErrTooLarge) fallbacks treat a blown budget exactly like
// a blown enumeration limit.
var ErrBudget = fmt.Errorf("exact: DP state budget exhausted: %w", ErrTooLarge)

// MaxDPStates is the default ceiling on stored DP states (across every
// layer and every straddler sub-DP of one solve). At the default, an
// unrestricted CDD instance with n≈240 and P_i≤20 (ΣP≈2400 reachable
// subset sums per layer) fits comfortably; a restrictive instance at that
// size does not — its (Q, W) straddler state space is quadratic — and
// degrades to a typed ErrBudget instead of an unbounded allocation.
const MaxDPStates = 4 << 20

// DPConfig tunes SolveDPContext. The zero value selects the defaults.
type DPConfig struct {
	// MaxStates bounds the total number of DP states stored by one solve;
	// 0 means MaxDPStates. Exceeding it returns ErrBudget (an ErrTooLarge).
	MaxStates int64
}

// SolveDP solves the instance exactly with the pseudo-polynomial dynamic
// programs under the default configuration. See SolveDPContext.
func SolveDP(in *problem.Instance) (Result, error) {
	return SolveDPContext(context.Background(), in, DPConfig{})
}

// SolveDPContext dispatches to the applicable pseudo-polynomial DP:
//
//   - CDD on one machine whose jobs admit an agreeable order (a single
//     order ascending in both P/α and P/β — common rates, symmetric or
//     proportional weights, and any instance that happens to sort): a DP
//     over processing-time-bounded states. Anchored schedules use state
//     Q = ΣP(early); restrictive instances additionally run one
//     (Q, Σα(early)−Σβ(tardy)) sub-DP per candidate straddling job.
//     O(n²·ΣP) worst case, exact for every agreeable instance.
//
//   - EARLYWORK on m machines: a knapsack over the multiset of machine
//     loads capped at d, maximizing early work. Exact for every instance.
//
// Everything else returns ErrInapplicable. The returned Result carries an
// optimal genome reconstructed from the DP layers; its cost is re-checked
// against the O(n) evaluator before returning, so a Result from SolveDP is
// a self-verified optimality certificate. Nodes counts stored DP states.
// Cancelling the context aborts at a layer boundary with ctx.Err().
func SolveDPContext(ctx context.Context, in *problem.Instance, cfg DPConfig) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = MaxDPStates
	}
	switch {
	case in.Kind == problem.CDD && in.MachineCount() == 1:
		return dpCDD(ctx, in, maxStates)
	case in.Kind == problem.EARLYWORK:
		return dpEarlyWork(ctx, in, maxStates)
	case in.Kind == problem.CDD:
		return Result{}, fmt.Errorf("%w: CDD DP requires a single machine, got %d", ErrInapplicable, in.MachineCount())
	default:
		return Result{}, fmt.Errorf("%w: no DP for kind %v", ErrInapplicable, in.Kind)
	}
}

// agreeableOrder sorts job indices by P/α ascending (ties broken by P/β
// ascending, comparisons cross-multiplied so zero weights are exact) and
// reports whether P/β is non-decreasing along the result — i.e. whether a
// single order sorted by both ratios exists. α=0 jobs order last on the
// α ratio (P/0 = ∞); likewise β=0 on the tie-break.
func agreeableOrder(jobs []problem.Job) ([]int, bool) {
	n := len(jobs)
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(x, y int) bool {
		jx, jy := jobs[ord[x]], jobs[ord[y]]
		ax, ay := jx.P*jy.Alpha, jy.P*jx.Alpha
		if ax != ay {
			return ax < ay
		}
		return jx.P*jy.Beta < jy.P*jx.Beta
	})
	for i := 0; i+1 < n; i++ {
		jx, jy := jobs[ord[i]], jobs[ord[i+1]]
		if jy.P*jx.Beta < jx.P*jy.Beta {
			return nil, false
		}
	}
	return ord, true
}

const dpInf = int64(1) << 62

// dpJob is an int64 view of one job's fields, so the DP arithmetic runs
// in the same width as costs and the due date.
type dpJob struct{ p, a, b int64 }

func dpJobs(jobs []problem.Job) []dpJob {
	out := make([]dpJob, len(jobs))
	for i, j := range jobs {
		out[i] = dpJob{p: int64(j.P), a: int64(j.Alpha), b: int64(j.Beta)}
	}
	return out
}

// dpState carries bookkeeping shared by the CDD sub-DPs: the cumulative
// stored-state budget and the context checked at layer boundaries.
type dpState struct {
	ctx       context.Context
	maxStates int64
	nodes     int64
}

// charge accounts for newly stored states and enforces the budget.
func (s *dpState) charge(n int) error {
	s.nodes += int64(n)
	if s.nodes > s.maxStates {
		return fmt.Errorf("%w: %d states exceed budget %d", ErrBudget, s.nodes, s.maxStates)
	}
	return nil
}

// dpCDD is the exact CDD DP for agreeable single-machine instances:
// anchored schedules always, plus one straddler sub-DP per candidate
// straddling job when the instance is restrictive. The winning candidate
// is re-run with per-layer state maps and its sequence reconstructed by
// cost-arithmetic walk-back.
func dpCDD(ctx context.Context, in *problem.Instance, maxStates int64) (Result, error) {
	ord, ok := agreeableOrder(in.Jobs)
	if !ok {
		return Result{}, fmt.Errorf("%w: no agreeable P/α · P/β order (general asymmetric weights)", ErrInapplicable)
	}
	st := &dpState{ctx: ctx, maxStates: maxStates}
	jobs := dpJobs(in.Jobs)

	// Pass 1: rolling DPs to find the winning candidate (anchored, or
	// straddler s) without holding reconstruction layers for every s.
	bestCost, err := dpAnchoredRoll(st, jobs, ord, in.D)
	if err != nil {
		return Result{}, err
	}
	bestStraddler := -1
	if in.Restrictive() {
		for _, s := range ord {
			c, err := dpStraddlerRoll(st, jobs, ord, s, in.D)
			if err != nil {
				return Result{}, err
			}
			if c < bestCost {
				bestCost = c
				bestStraddler = s
			}
		}
	}
	if bestCost >= dpInf {
		return Result{}, fmt.Errorf("exact: internal: CDD DP found no feasible schedule")
	}

	// Pass 2: re-run the winner with layers kept, and walk back.
	var seq []int
	if bestStraddler < 0 {
		seq, err = dpAnchoredSeq(st, jobs, ord, in.D, bestCost)
	} else {
		seq, err = dpStraddlerSeq(st, jobs, ord, bestStraddler, in.D, bestCost)
	}
	if err != nil {
		return Result{}, err
	}
	if got := core.NewEvaluator(in).Cost(seq); got != bestCost {
		return Result{}, fmt.Errorf("exact: internal: DP cost %d disagrees with evaluator cost %d on the reconstructed sequence", bestCost, got)
	}
	return Result{Cost: bestCost, Seq: seq, Nodes: st.nodes}, nil
}

// dpAnchoredRoll computes the optimal anchored-schedule cost (some early
// job completes exactly at d, or the schedule is an all-tardy block
// starting at d). State: Q = ΣP(early) after k decisions in agreeable
// order; early marginal α·Q (prune Q+P>d), tardy marginal β·(pref−Q+P).
func dpAnchoredRoll(st *dpState, jobs []dpJob, ord []int, d int64) (int64, error) {
	cur := map[int64]int64{0: 0}
	if err := st.charge(1); err != nil {
		return 0, err
	}
	var pref int64
	for _, id := range ord {
		if err := st.ctx.Err(); err != nil {
			return 0, err
		}
		j := jobs[id]
		next := make(map[int64]int64, 2*len(cur))
		for q, c := range cur {
			if q+j.p <= d {
				if v, ok := next[q+j.p]; !ok || c+j.a*q < v {
					next[q+j.p] = c + j.a*q
				}
			}
			tc := c + j.b*(pref-q+j.p)
			if v, ok := next[q]; !ok || tc < v {
				next[q] = tc
			}
		}
		if err := st.charge(len(next)); err != nil {
			return 0, err
		}
		pref += j.p
		cur = next
	}
	best := dpInf
	for _, c := range cur {
		if c < best {
			best = c
		}
	}
	return best, nil
}

// dpAnchoredSeq re-runs the anchored DP keeping every layer, then walks
// back from the optimal final state. At each step the early predecessor
// is identified by exact cost arithmetic (layers[k-1][q−P] + α·(q−P) ==
// layers[k][q]); any state satisfying it heads a schedule of the same
// optimal cost, so ambiguity is harmless. The sequence is the early
// decisions reversed (V-shape far→near becomes near-side last) followed
// by the tardy decisions in order.
func dpAnchoredSeq(st *dpState, jobs []dpJob, ord []int, d int64, want int64) ([]int, error) {
	n := len(ord)
	layers := make([]map[int64]int64, n+1)
	layers[0] = map[int64]int64{0: 0}
	var pref int64
	for k, id := range ord {
		if err := st.ctx.Err(); err != nil {
			return nil, err
		}
		j := jobs[id]
		next := make(map[int64]int64, 2*len(layers[k]))
		for q, c := range layers[k] {
			if q+j.p <= d {
				if v, ok := next[q+j.p]; !ok || c+j.a*q < v {
					next[q+j.p] = c + j.a*q
				}
			}
			tc := c + j.b*(pref-q+j.p)
			if v, ok := next[q]; !ok || tc < v {
				next[q] = tc
			}
		}
		pref += j.p
		layers[k+1] = next
	}
	var q int64
	found := false
	for fq, c := range layers[n] {
		if c == want {
			q, found = fq, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("exact: internal: anchored replay lost the optimal final state")
	}
	c := want
	var early, tardy []int
	for k := n; k >= 1; k-- {
		j := jobs[ord[k-1]]
		pref -= j.p
		if pq := q - j.p; pq >= 0 {
			if pc, ok := layers[k-1][pq]; ok && pc+j.a*pq == c {
				early = append(early, ord[k-1])
				q, c = pq, pc
				continue
			}
		}
		pc, ok := layers[k-1][q]
		if !ok || pc+j.b*(pref-q+j.p) != c {
			return nil, fmt.Errorf("exact: internal: anchored walk-back has no predecessor at layer %d", k)
		}
		tardy = append(tardy, ord[k-1])
		c = pc
	}
	// The walk-back visits decisions last→first. The early block runs
	// far→near (descending P/α = reverse decision order), which is exactly
	// the collection order; the tardy block runs in decision order
	// (ascending P/β), so it is restored by reversing.
	seq := make([]int, 0, n)
	seq = append(seq, early...)
	for i := len(tardy) - 1; i >= 0; i-- {
		seq = append(seq, tardy[i])
	}
	return seq, nil
}

// qw is the straddler-DP state: Q = ΣP(early) and the running weight
// balance W = Σα(early) − Σβ(tardy), which prices the final shift of the
// whole block so the straddling job completes past d.
type qw struct{ q, w int64 }

// dpStraddlerRoll computes the optimal start-at-0 schedule cost with job
// s straddling the due date, remaining jobs split early/tardy in
// agreeable order. Tardy marginals are charged as if the block started at
// P(E)+P_s (the +β·P_s term); the final term w·(d−Q) + β_s·(P_s−(d−Q))
// re-prices the schedule for the actual gap d−Q.
func dpStraddlerRoll(st *dpState, jobs []dpJob, ord []int, s int, d int64) (int64, error) {
	js := jobs[s]
	cur := map[qw]int64{{0, 0}: 0}
	if err := st.charge(1); err != nil {
		return 0, err
	}
	var pref int64
	for _, id := range ord {
		if id == s {
			continue
		}
		if err := st.ctx.Err(); err != nil {
			return 0, err
		}
		j := jobs[id]
		next := make(map[qw]int64, 2*len(cur))
		for k, c := range cur {
			if k.q+j.p <= d {
				nk := qw{k.q + j.p, k.w + j.a}
				if v, ok := next[nk]; !ok || c+j.a*k.q < v {
					next[nk] = c + j.a*k.q
				}
			}
			tc := c + j.b*(pref-k.q+j.p) + j.b*js.p
			nk := qw{k.q, k.w - j.b}
			if v, ok := next[nk]; !ok || tc < v {
				next[nk] = tc
			}
		}
		if err := st.charge(len(next)); err != nil {
			return 0, err
		}
		pref += j.p
		cur = next
	}
	best := dpInf
	for k, c := range cur {
		if k.q <= d && k.q+js.p > d {
			gap := d - k.q
			if tot := c + k.w*gap + js.b*(js.p-gap); tot < best {
				best = tot
			}
		}
	}
	return best, nil
}

// dpStraddlerSeq re-runs the winning straddler DP with layers kept and
// reconstructs the sequence: reversed early decisions, then s, then the
// tardy decisions in order.
func dpStraddlerSeq(st *dpState, jobs []dpJob, ord []int, s int, d int64, want int64) ([]int, error) {
	js := jobs[s]
	n := len(ord)
	rest := make([]int, 0, n-1)
	for _, id := range ord {
		if id != s {
			rest = append(rest, id)
		}
	}
	layers := make([]map[qw]int64, len(rest)+1)
	layers[0] = map[qw]int64{{0, 0}: 0}
	var pref int64
	for k, id := range rest {
		if err := st.ctx.Err(); err != nil {
			return nil, err
		}
		j := jobs[id]
		next := make(map[qw]int64, 2*len(layers[k]))
		for key, c := range layers[k] {
			if key.q+j.p <= d {
				nk := qw{key.q + j.p, key.w + j.a}
				if v, ok := next[nk]; !ok || c+j.a*key.q < v {
					next[nk] = c + j.a*key.q
				}
			}
			tc := c + j.b*(pref-key.q+j.p) + j.b*js.p
			nk := qw{key.q, key.w - j.b}
			if v, ok := next[nk]; !ok || tc < v {
				next[nk] = tc
			}
		}
		pref += j.p
		layers[k+1] = next
	}
	var cur qw
	var c int64
	found := false
	for key, fc := range layers[len(rest)] {
		if key.q <= d && key.q+js.p > d {
			gap := d - key.q
			if fc+key.w*gap+js.b*(js.p-gap) == want {
				cur, c, found = key, fc, true
				break
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("exact: internal: straddler replay lost the optimal final state")
	}
	var early, tardy []int
	for k := len(rest); k >= 1; k-- {
		j := jobs[rest[k-1]]
		pref -= j.p
		if pq := cur.q - j.p; pq >= 0 {
			pk := qw{pq, cur.w - j.a}
			if pc, ok := layers[k-1][pk]; ok && pc+j.a*pq == c {
				early = append(early, rest[k-1])
				cur, c = pk, pc
				continue
			}
		}
		pk := qw{cur.q, cur.w + j.b}
		pc, ok := layers[k-1][pk]
		if !ok || pc+j.b*(pref-cur.q+j.p)+j.b*js.p != c {
			return nil, fmt.Errorf("exact: internal: straddler walk-back has no predecessor at layer %d", k)
		}
		tardy = append(tardy, rest[k-1])
		cur = pk
		c = pc
	}
	// Early block far→near is the walk-back collection order; the tardy
	// block is decision order, restored by reversing (see dpAnchoredSeq).
	seq := make([]int, 0, n)
	seq = append(seq, early...)
	seq = append(seq, s)
	for i := len(tardy) - 1; i >= 0; i-- {
		seq = append(seq, tardy[i])
	}
	return seq, nil
}
