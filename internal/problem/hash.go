package problem

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// CanonicalHash returns the hex SHA-256 digest of the instance's semantic
// content: kind, machine count, due date, job count, and every job's
// (P, M, Alpha, Beta, Gamma) in sequence order. The display Name is
// excluded, so a renamed copy of an instance hashes identically; the
// machine count is normalized through MachineCount, so Machines 0 and 1
// (the same single-machine problem) hash identically; and the encoding is
// length-prefixed fixed-width little-endian, so distinct instances cannot
// collide by field concatenation. The digest is the instance component of
// the result-cache key in the batch-solving service (internal/server).
func (in *Instance) CanonicalHash() string {
	h := sha256.New()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(int64(in.Kind))
	put(int64(in.MachineCount()))
	put(in.D)
	put(int64(len(in.Jobs)))
	for _, j := range in.Jobs {
		put(int64(j.P))
		put(int64(j.M))
		put(int64(j.Alpha))
		put(int64(j.Beta))
		put(int64(j.Gamma))
	}
	return hex.EncodeToString(h.Sum(nil))
}
