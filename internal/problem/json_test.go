package problem

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestInstanceJSONRoundtrip(t *testing.T) {
	for _, kind := range []Kind{CDD, UCDDCP} {
		in := PaperExample(kind)
		var buf bytes.Buffer
		if err := WriteInstanceJSON(&buf, in); err != nil {
			t.Fatal(err)
		}
		back, err := ReadInstanceJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Name != in.Name || back.Kind != in.Kind || back.D != in.D || back.N() != in.N() {
			t.Fatalf("%v: header mismatch: %+v", kind, back)
		}
		for i := range in.Jobs {
			if in.Jobs[i] != back.Jobs[i] {
				t.Fatalf("%v: job %d mismatch: %+v vs %+v", kind, i, in.Jobs[i], back.Jobs[i])
			}
		}
	}
}

func TestInstanceJSONOmitsControllableFieldsForCDD(t *testing.T) {
	in := PaperExample(CDD)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "gamma") || strings.Contains(string(data), `"m"`) {
		t.Errorf("CDD wire form leaks controllable fields: %s", data)
	}
}

func TestInstanceJSONValidation(t *testing.T) {
	cases := []string{
		`{"name":"x","kind":"WAT","dueDate":5,"jobs":[{"p":1,"alpha":1,"beta":1}]}`,
		`{"name":"x","kind":"CDD","dueDate":-1,"jobs":[{"p":1,"alpha":1,"beta":1}]}`,
		`{"name":"x","kind":"CDD","dueDate":5,"jobs":[]}`,
		`{"name":"x","kind":"CDD","dueDate":5,"jobs":[{"p":0,"alpha":1,"beta":1}]}`,
		`not json`,
	}
	for i, c := range cases {
		if _, err := ReadInstanceJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestInstanceJSONDefaultsMForCDD(t *testing.T) {
	src := `{"name":"x","kind":"CDD","dueDate":5,"jobs":[{"p":3,"alpha":1,"beta":1}]}`
	in, err := ReadInstanceJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if in.Jobs[0].M != 3 {
		t.Errorf("M defaulted to %d, want P=3", in.Jobs[0].M)
	}
}

func TestScheduleJSONRoundtrip(t *testing.T) {
	in := PaperExample(UCDDCP)
	s := &Schedule{Seq: IdentitySequence(5), Start: 11, X: []int64{0, 0, 0, 1, 1}}
	data, err := MarshalScheduleJSON(in, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"cost": 77`) {
		t.Errorf("wire form missing exact cost:\n%s", data)
	}
	back, err := UnmarshalScheduleJSON(in, data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cost(in) != 77 {
		t.Errorf("roundtrip cost = %d", back.Cost(in))
	}
}

func TestScheduleJSONRejectsTamperedCost(t *testing.T) {
	in := PaperExample(CDD)
	s := &Schedule{Seq: IdentitySequence(5), Start: 5}
	data, err := MarshalScheduleJSON(in, s)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"cost": 81`, `"cost": 80`, 1)
	if tampered == string(data) {
		t.Fatal("test setup: cost field not found")
	}
	if _, err := UnmarshalScheduleJSON(in, []byte(tampered)); err == nil {
		t.Error("tampered cost accepted")
	}
}

func TestScheduleJSONRejectsInfeasible(t *testing.T) {
	in := PaperExample(CDD)
	bad := &Schedule{Seq: []int{0, 0, 1, 2, 3}, Start: 0}
	if _, err := MarshalScheduleJSON(in, bad); err == nil {
		t.Error("non-permutation schedule serialized")
	}
	if _, err := UnmarshalScheduleJSON(in, []byte(`{"sequence":[0,0,1,2,3],"start":0,"cost":1}`)); err == nil {
		t.Error("non-permutation schedule parsed")
	}
}

// TestInstanceJSONRejectsMalformed sweeps invalid documents through the
// reader: every case must fail with an error — the parser validates on
// load, so no invalid instance can enter the system through JSON.
func TestInstanceJSONRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"not-json", "due date: 16"},
		{"nan-due-date", `{"kind":"CDD","dueDate":NaN,"jobs":[{"p":1,"alpha":1,"beta":1}]}`},
		{"string-due-date", `{"kind":"CDD","dueDate":"16","jobs":[{"p":1,"alpha":1,"beta":1}]}`},
		{"negative-due-date", `{"kind":"CDD","dueDate":-1,"jobs":[{"p":1,"alpha":1,"beta":1}]}`},
		{"unknown-kind", `{"kind":"cdd","dueDate":16,"jobs":[{"p":1,"alpha":1,"beta":1}]}`},
		{"no-jobs", `{"kind":"CDD","dueDate":16,"jobs":[]}`},
		{"zero-p", `{"kind":"CDD","dueDate":16,"jobs":[{"p":0,"alpha":1,"beta":1}]}`},
		{"negative-p", `{"kind":"CDD","dueDate":16,"jobs":[{"p":-4,"alpha":1,"beta":1}]}`},
		{"negative-alpha", `{"kind":"CDD","dueDate":16,"jobs":[{"p":1,"alpha":-1,"beta":1}]}`},
		{"negative-beta", `{"kind":"CDD","dueDate":16,"jobs":[{"p":1,"alpha":1,"beta":-1}]}`},
		{"m-exceeds-p", `{"kind":"UCDDCP","dueDate":16,"jobs":[{"p":2,"m":3,"alpha":1,"beta":1,"gamma":1}]}`},
		{"negative-gamma", `{"kind":"UCDDCP","dueDate":16,"jobs":[{"p":2,"m":1,"alpha":1,"beta":1,"gamma":-1}]}`},
		{"ucddcp-restrictive", `{"kind":"UCDDCP","dueDate":1,"jobs":[{"p":5,"m":3,"alpha":1,"beta":1,"gamma":1}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if in, err := ReadInstanceJSON(strings.NewReader(tc.input)); err == nil {
				t.Errorf("accepted %q as %+v", tc.input, in)
			}
		})
	}
}
