package problem

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON interchange for instances and schedules, used by the CLI tools and
// the harness result archives. The format is self-describing (kind is a
// string) and validated on load.

// instanceJSON is the wire form of an Instance. Machines is omitted at
// its default (single machine), so pre-generalization documents and
// digests round-trip unchanged.
type instanceJSON struct {
	Name     string    `json:"name"`
	Kind     string    `json:"kind"`
	D        int64     `json:"dueDate"`
	Machines int       `json:"machines,omitempty"`
	Jobs     []jobJSON `json:"jobs"`
}

type jobJSON struct {
	P     int `json:"p"`
	M     int `json:"m,omitempty"`
	Alpha int `json:"alpha"`
	Beta  int `json:"beta"`
	Gamma int `json:"gamma,omitempty"`
}

// MarshalJSON implements json.Marshaler with the stable wire form. The
// kind is rendered through MarshalText, so an out-of-range Kind fails
// instead of leaking a debug string onto the wire.
func (in *Instance) MarshalJSON() ([]byte, error) {
	kind, err := in.Kind.MarshalText()
	if err != nil {
		return nil, err
	}
	w := instanceJSON{Name: in.Name, Kind: string(kind), D: in.D}
	if in.MachineCount() > 1 {
		w.Machines = in.Machines
	}
	for _, j := range in.Jobs {
		jj := jobJSON{P: j.P, Alpha: j.Alpha, Beta: j.Beta}
		if in.Kind == UCDDCP {
			jj.M = j.M
			jj.Gamma = j.Gamma
		}
		w.Jobs = append(w.Jobs, jj)
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler, including validation. An
// unknown kind or a negative machine count fails closed (ErrUnknownKind /
// ErrMachines); an absent machines field means the single-machine
// problem.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var w instanceJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	out := Instance{Name: w.Name, D: w.D, Machines: w.Machines}
	if err := out.Kind.UnmarshalText([]byte(w.Kind)); err != nil {
		return err
	}
	for _, jj := range w.Jobs {
		j := Job{P: jj.P, M: jj.M, Alpha: jj.Alpha, Beta: jj.Beta, Gamma: jj.Gamma}
		if out.Kind == CDD || j.M == 0 {
			j.M = j.P
		}
		if out.Kind == CDD {
			j.Gamma = 0
		}
		out.Jobs = append(out.Jobs, j)
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*in = out
	return nil
}

// WriteInstanceJSON serializes an instance to w.
func WriteInstanceJSON(w io.Writer, in *Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}

// ReadInstanceJSON parses and validates an instance from r.
func ReadInstanceJSON(r io.Reader) (*Instance, error) {
	var in Instance
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	return &in, nil
}

// scheduleJSON is the wire form of a Schedule. The parallel-machine
// fields are omitted when nil, keeping single-machine documents
// byte-identical to the pre-generalization format.
type scheduleJSON struct {
	Seq    []int   `json:"sequence"`
	Start  int64   `json:"start"`
	X      []int64 `json:"compressions,omitempty"`
	Assign []int   `json:"assignment,omitempty"`
	Starts []int64 `json:"machineStarts,omitempty"`
	Cost   int64   `json:"cost"`
}

// MarshalScheduleJSON serializes a schedule with its exact cost for the
// given instance.
func MarshalScheduleJSON(in *Instance, s *Schedule) ([]byte, error) {
	if err := s.Validate(in); err != nil {
		return nil, err
	}
	return json.MarshalIndent(scheduleJSON{
		Seq:    s.Seq,
		Start:  s.Start,
		X:      s.X,
		Assign: s.Assign,
		Starts: s.Starts,
		Cost:   s.Cost(in),
	}, "", "  ")
}

// UnmarshalScheduleJSON parses a schedule and verifies both feasibility
// and that the recorded cost matches the exact evaluation.
func UnmarshalScheduleJSON(in *Instance, data []byte) (*Schedule, error) {
	var w scheduleJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, err
	}
	s := &Schedule{Seq: w.Seq, Start: w.Start, X: w.X, Assign: w.Assign, Starts: w.Starts}
	if err := s.Validate(in); err != nil {
		return nil, err
	}
	if got := s.Cost(in); got != w.Cost {
		return nil, fmt.Errorf("problem: schedule cost %d does not match recorded %d", got, w.Cost)
	}
	return s, nil
}
