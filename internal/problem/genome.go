package problem

import "fmt"

// Delimiter genome codec for parallel-machine instances. A solution on m
// machines is encoded as a single permutation of 0..GenomeLen()-1: values
// below n are job ids, the m−1 values ≥ n are machine separators, and the
// maximal runs of job values map in order to machines 0..m−1 (a run may
// be empty — an idle machine). Because the genome is a true permutation,
// every permutation operator in internal/perm (shuffles, swaps, inserts,
// reversals, order crossovers) remains closed over it, so the
// metaheuristic drivers need no machine-specific moves: separators travel
// exactly like jobs. For m = 1 the genome has no separators and is the
// plain job sequence of the single-machine paper, bit-identical to the
// pre-generalization representation.

// IsGenome reports whether genome is a structurally valid solution for
// the instance: a permutation of 0..GenomeLen()-1.
func (in *Instance) IsGenome(genome []int) bool {
	return len(genome) == in.GenomeLen() && IsPermutation(genome)
}

// SplitGenome decodes a delimiter genome into per-machine job sequences.
// The returned slices are freshly allocated copies; machine k holds the
// k-th run of job values. The genome must satisfy IsGenome.
func (in *Instance) SplitGenome(genome []int) [][]int {
	n := in.N()
	m := in.MachineCount()
	segs := make([][]int, m)
	k := 0
	lo := 0
	for i := 0; i <= len(genome); i++ {
		if i < len(genome) && genome[i] < n {
			continue
		}
		segs[k] = append([]int(nil), genome[lo:i]...)
		k++
		lo = i + 1
	}
	return segs
}

// GenomeAssignment decodes a delimiter genome into the machine-major job
// order (jobs only, machine 0 first) and the per-job machine assignment
// (indexed by job id). For single-machine instances assign is nil and
// order is a copy of the genome.
func (in *Instance) GenomeAssignment(genome []int) (order, assign []int) {
	n := in.N()
	if in.MachineCount() == 1 {
		return append([]int(nil), genome...), nil
	}
	order = make([]int, 0, n)
	assign = make([]int, n)
	k := 0
	for _, v := range genome {
		if v >= n {
			k++
			continue
		}
		order = append(order, v)
		assign[v] = k
	}
	return order, assign
}

// EncodeGenome is the inverse of SplitGenome: it concatenates per-machine
// job sequences into a delimiter genome (separator ids n, n+1, … between
// consecutive machines). len(segs) must equal MachineCount.
func (in *Instance) EncodeGenome(segs [][]int) ([]int, error) {
	n := in.N()
	if len(segs) != in.MachineCount() {
		return nil, fmt.Errorf("problem: EncodeGenome got %d machine sequences, instance has %d machines", len(segs), in.MachineCount())
	}
	genome := make([]int, 0, in.GenomeLen())
	for k, seg := range segs {
		if k > 0 {
			genome = append(genome, n+k-1)
		}
		genome = append(genome, seg...)
	}
	if !in.IsGenome(genome) {
		return nil, fmt.Errorf("problem: EncodeGenome input is not a partition of the %d jobs", n)
	}
	return genome, nil
}
