package problem

import (
	"fmt"
	"sort"
	"strings"
)

// Schedule is a fully specified solution of an instance for some job
// sequence: the processing order, the start time of the first job, and
// (for UCDDCP) the per-job compressions. Jobs are processed back to back
// with no machine idle time, which is optimal for all three objectives
// (Cheng–Kahlbacher for CDD/UCDDCP; for early work any idle time only
// pushes work past the due date). On parallel-machine instances Assign
// and Starts additionally record the machine of every job and the start
// time of every machine; both stay nil on single-machine schedules, whose
// wire form is therefore unchanged.
type Schedule struct {
	// Seq holds job indices (0-based into Instance.Jobs) in processing
	// order. On parallel-machine schedules the order is machine-major:
	// machine 0's jobs first, each machine's jobs in processing order.
	Seq []int
	// Start is the start time of the first job in Seq (machine 0's start
	// when Starts is nil).
	Start int64
	// X holds the compression of each job, indexed by job id (not by
	// position). nil means "no compression anywhere" and is the normal
	// state for CDD schedules.
	X []int64
	// Assign holds the machine of each job, indexed by job id. nil means
	// every job runs on machine 0 (the single-machine case).
	Assign []int
	// Starts holds the start time of each machine, indexed by machine id.
	// nil means machine 0 starts at Start.
	Starts []int64
}

// machineTimes returns the per-machine running clock initialized from
// Starts (or Start on every machine when Starts is nil).
func (s *Schedule) machineTimes(in *Instance) []int64 {
	t := make([]int64, in.MachineCount())
	for k := range t {
		t[k] = s.Start
	}
	if s.Starts != nil {
		copy(t, s.Starts)
	}
	return t
}

// Completions returns the completion time of every job in processing order
// (indexed by position). The result has length len(s.Seq). On
// parallel-machine schedules each job completes on its assigned machine's
// clock.
func (s *Schedule) Completions(in *Instance) []int64 {
	out := make([]int64, len(s.Seq))
	if s.Assign == nil {
		t := s.Start
		for pos, job := range s.Seq {
			p := int64(in.Jobs[job].P)
			if s.X != nil {
				p -= s.X[job]
			}
			t += p
			out[pos] = t
		}
		return out
	}
	t := s.machineTimes(in)
	for pos, job := range s.Seq {
		p := int64(in.Jobs[job].P)
		if s.X != nil {
			p -= s.X[job]
		}
		k := s.Assign[job]
		t[k] += p
		out[pos] = t[k]
	}
	return out
}

// jobCost advances the clock *t past the job and returns its objective
// contribution: α·E + β·T (+ γ·X) for CDD/UCDDCP, or the job's late work
// min(p, max(0, C−d)) for EARLYWORK (minimizing total late work is
// maximizing total early work).
func (s *Schedule) jobCost(in *Instance, job int, t *int64) int64 {
	j := in.Jobs[job]
	p := int64(j.P)
	var cost int64
	if s.X != nil {
		x := s.X[job]
		p -= x
		cost += int64(j.Gamma) * x
	}
	*t += p
	d := in.D
	if in.Kind == EARLYWORK {
		late := *t - d
		if late > p {
			late = p
		}
		if late > 0 {
			cost += late
		}
		return cost
	}
	if *t < d {
		cost += int64(j.Alpha) * (d - *t)
	} else {
		cost += int64(j.Beta) * (*t - d)
	}
	return cost
}

// Cost evaluates the exact objective value of the schedule:
//
//	Σ α_i·E_i + β_i·T_i + γ_i·X_i
//
// with E_i = max(0, d−C_i) and T_i = max(0, C_i−d), or the total late
// work for EARLYWORK instances. For CDD schedules (X == nil) the
// compression term vanishes. Parallel-machine schedules sum the
// per-machine objectives.
func (s *Schedule) Cost(in *Instance) int64 {
	var cost int64
	if s.Assign == nil {
		t := s.Start
		for _, job := range s.Seq {
			cost += s.jobCost(in, job, &t)
		}
		return cost
	}
	t := s.machineTimes(in)
	for _, job := range s.Seq {
		cost += s.jobCost(in, job, &t[s.Assign[job]])
	}
	return cost
}

// Validate checks that the schedule is feasible for the instance: Seq is a
// permutation of 0..n-1, the start time is non-negative, and every
// compression lies in [0, P_i−M_i].
func (s *Schedule) Validate(in *Instance) error {
	n := in.N()
	if len(s.Seq) != n {
		return fmt.Errorf("problem: schedule has %d positions, instance has %d jobs", len(s.Seq), n)
	}
	if !IsPermutation(s.Seq) {
		return fmt.Errorf("problem: schedule sequence is not a permutation of 0..%d", n-1)
	}
	if s.Start < 0 {
		return fmt.Errorf("problem: negative start time %d", s.Start)
	}
	if s.X != nil {
		if len(s.X) != n {
			return fmt.Errorf("problem: compression vector has length %d, want %d", len(s.X), n)
		}
		for i, x := range s.X {
			if x < 0 || x > int64(in.Jobs[i].MaxCompression()) {
				return fmt.Errorf("problem: job %d compression %d outside [0,%d]", i, x, in.Jobs[i].MaxCompression())
			}
		}
	}
	m := in.MachineCount()
	if s.Assign != nil {
		if len(s.Assign) != n {
			return fmt.Errorf("problem: assignment vector has length %d, want %d", len(s.Assign), n)
		}
		for i, k := range s.Assign {
			if k < 0 || k >= m {
				return fmt.Errorf("problem: job %d assigned to machine %d outside [0,%d)", i, k, m)
			}
		}
	}
	if s.Starts != nil {
		if len(s.Starts) != m {
			return fmt.Errorf("problem: start vector has length %d, want %d machines", len(s.Starts), m)
		}
		for k, t := range s.Starts {
			if t < 0 {
				return fmt.Errorf("problem: machine %d has negative start time %d", k, t)
			}
		}
	}
	return nil
}

// DueDatePosition returns the 1-based position r of the job that completes
// exactly at the due date, or 0 if no job does.
func (s *Schedule) DueDatePosition(in *Instance) int {
	for pos, c := range s.Completions(in) {
		if c == in.D {
			return pos + 1
		}
	}
	return 0
}

// Gantt renders a small textual Gantt chart of the schedule, marking the
// due date. Intended for examples and debugging, not for large n.
func (s *Schedule) Gantt(in *Instance) string {
	var b strings.Builder
	t := s.Start
	fmt.Fprintf(&b, "t=%d |", s.Start)
	for _, job := range s.Seq {
		p := int64(in.Jobs[job].P)
		if s.X != nil {
			p -= s.X[job]
		}
		t += p
		fmt.Fprintf(&b, " J%d→%d |", job+1, t)
	}
	fmt.Fprintf(&b, "  d=%d", in.D)
	return b.String()
}

// IsPermutation reports whether seq is a permutation of 0..len(seq)-1.
func IsPermutation(seq []int) bool {
	seen := make([]bool, len(seq))
	for _, v := range seq {
		if v < 0 || v >= len(seq) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// IdentitySequence returns the sequence 0,1,…,n-1.
func IdentitySequence(n int) []int {
	seq := make([]int, n)
	for i := range seq {
		seq[i] = i
	}
	return seq
}

// SequenceCost evaluates Σ α·E + β·T (+ γ·X) for an explicit sequence,
// start time, and optional compression vector without building a Schedule.
func SequenceCost(in *Instance, seq []int, start int64, x []int64) int64 {
	s := Schedule{Seq: seq, Start: start, X: x}
	return s.Cost(in)
}

// VShapeViolations counts adjacent-pair violations of the V-shape property
// around the due date: among early jobs, processing times should be
// non-increasing in P_i/α_i order heuristics; here we use the classic weak
// check that early jobs appear in non-increasing P/α ratio and tardy jobs
// in non-decreasing P/β ratio. The count is a diagnostic used by tests and
// examples; 0 does not imply optimality.
func VShapeViolations(in *Instance, s *Schedule) int {
	comps := s.Completions(in)
	var early, tardy []int
	for pos, job := range s.Seq {
		if comps[pos] <= in.D {
			early = append(early, job)
		} else {
			tardy = append(tardy, job)
		}
	}
	violations := 0
	ratio := func(p, w int) float64 {
		if w == 0 {
			return float64(p) * 1e9
		}
		return float64(p) / float64(w)
	}
	for i := 1; i < len(early); i++ {
		a, b := in.Jobs[early[i-1]], in.Jobs[early[i]]
		if ratio(a.P, a.Alpha) < ratio(b.P, b.Alpha)-1e-12 {
			violations++
		}
	}
	for i := 1; i < len(tardy); i++ {
		a, b := in.Jobs[tardy[i-1]], in.Jobs[tardy[i]]
		if ratio(a.P, a.Beta) > ratio(b.P, b.Beta)+1e-12 {
			violations++
		}
	}
	return violations
}

// SortedByRatio returns job ids sorted by P/weight ratio, descending when
// desc is true. It is a helper for constructive V-shaped heuristics.
func SortedByRatio(in *Instance, weight func(Job) int, desc bool) []int {
	ids := IdentitySequence(in.N())
	sort.SliceStable(ids, func(a, b int) bool {
		ja, jb := in.Jobs[ids[a]], in.Jobs[ids[b]]
		ra := float64(ja.P) / float64(max(1, weight(ja)))
		rb := float64(jb.P) / float64(max(1, weight(jb)))
		if desc {
			return ra > rb
		}
		return ra < rb
	})
	return ids
}
