package problem

import "fmt"

// Text marshaling for Kind, used by the JSON wire forms and the CLI
// flags. Unlike String — which renders unknown values as "Kind(%d)" for
// debugging — both directions fail closed: an out-of-range Kind does not
// serialize and an unrecognized name does not parse, so a malformed kind
// can never round-trip through the server path.

// MarshalText implements encoding.TextMarshaler. It errors on values
// outside the defined kinds instead of leaking a debug rendering.
func (k Kind) MarshalText() ([]byte, error) {
	switch k {
	case CDD, UCDDCP, EARLYWORK:
		return []byte(k.String()), nil
	default:
		return nil, fmt.Errorf("problem: %w: Kind(%d)", ErrUnknownKind, int(k))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler, accepting exactly
// the canonical upper-case names. Unknown names fail closed with
// ErrUnknownKind.
func (k *Kind) UnmarshalText(text []byte) error {
	switch string(text) {
	case "CDD":
		*k = CDD
	case "UCDDCP":
		*k = UCDDCP
	case "EARLYWORK":
		*k = EARLYWORK
	default:
		return fmt.Errorf("problem: %w: %q", ErrUnknownKind, string(text))
	}
	return nil
}

// ParseKind parses a canonical kind name ("CDD", "UCDDCP", "EARLYWORK").
func ParseKind(s string) (Kind, error) {
	var k Kind
	if err := k.UnmarshalText([]byte(s)); err != nil {
		return 0, err
	}
	return k, nil
}
