package problem

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperExampleData(t *testing.T) {
	cddIn := PaperExample(CDD)
	if cddIn.N() != 5 || cddIn.D != 16 {
		t.Fatalf("CDD example: n=%d d=%d, want 5 and 16", cddIn.N(), cddIn.D)
	}
	if !cddIn.Restrictive() {
		t.Error("CDD example (d=16 < ΣP=21) should be restrictive")
	}
	ucddcpIn := PaperExample(UCDDCP)
	if ucddcpIn.D != 22 || ucddcpIn.Restrictive() {
		t.Errorf("UCDDCP example: d=%d restrictive=%v, want 22 and false", ucddcpIn.D, ucddcpIn.Restrictive())
	}
	if got := ucddcpIn.SumP(); got != 21 {
		t.Errorf("ΣP = %d, want 21", got)
	}
	if got := ucddcpIn.SumM(); got != 18 {
		t.Errorf("ΣM = %d, want 18", got)
	}
	if err := cddIn.Validate(); err != nil {
		t.Errorf("CDD example invalid: %v", err)
	}
	if err := ucddcpIn.Validate(); err != nil {
		t.Errorf("UCDDCP example invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *Instance { return PaperExample(UCDDCP) }
	cases := []struct {
		name   string
		mutate func(*Instance)
		want   string
	}{
		{"no jobs", func(in *Instance) { in.Jobs = nil }, "no jobs"},
		{"negative d", func(in *Instance) { in.D = -1 }, "negative due date"},
		{"zero P", func(in *Instance) { in.Jobs[2].P = 0 }, "processing time"},
		{"M above P", func(in *Instance) { in.Jobs[1].M = in.Jobs[1].P + 1 }, "minimum processing time"},
		{"negative alpha", func(in *Instance) { in.Jobs[0].Alpha = -3 }, "earliness penalty"},
		{"negative beta", func(in *Instance) { in.Jobs[0].Beta = -3 }, "tardiness penalty"},
		{"negative gamma", func(in *Instance) { in.Jobs[0].Gamma = -3 }, "compression penalty"},
		{"restrictive UCDDCP", func(in *Instance) { in.D = 5 }, "unrestricted"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := base()
			tc.mutate(in)
			err := in.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid instance")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestConstructorLengthChecks(t *testing.T) {
	if _, err := NewCDD("x", []int{1, 2}, []int{1}, []int{1, 1}, 3); err == nil {
		t.Error("NewCDD accepted mismatched slices")
	}
	if _, err := NewUCDDCP("x", []int{1}, []int{1, 1}, []int{1}, []int{1}, []int{1}, 3); err == nil {
		t.Error("NewUCDDCP accepted mismatched slices")
	}
}

func TestClone(t *testing.T) {
	in := PaperExample(UCDDCP)
	cp := in.Clone()
	cp.Jobs[0].P = 99
	cp.D = 1234
	if in.Jobs[0].P == 99 || in.D == 1234 {
		t.Error("Clone shares state with the original")
	}
}

func TestScheduleCostAgainstManual(t *testing.T) {
	in := PaperExample(CDD)
	// Figure 1 of the paper: start 0, completions {6,11,13,17,21}, d=16.
	s := Schedule{Seq: IdentitySequence(5), Start: 0}
	comps := s.Completions(in)
	want := []int64{6, 11, 13, 17, 21}
	for i := range want {
		if comps[i] != want[i] {
			t.Errorf("completion[%d]=%d want %d", i, comps[i], want[i])
		}
	}
	// Manual penalty at start 0: earliness 10,5,3 and tardiness 1,5.
	manual := int64(7*10 + 9*5 + 6*3 + 3*1 + 2*5)
	if got := s.Cost(in); got != manual {
		t.Errorf("cost=%d want %d", got, manual)
	}
}

func TestScheduleValidate(t *testing.T) {
	in := PaperExample(UCDDCP)
	good := Schedule{Seq: IdentitySequence(5), Start: 3, X: []int64{1, 0, 0, 1, 0}}
	if err := good.Validate(in); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	bad := []Schedule{
		{Seq: []int{0, 1, 2}, Start: 0},                                 // wrong length
		{Seq: []int{0, 1, 2, 3, 3}, Start: 0},                           // not a permutation
		{Seq: IdentitySequence(5), Start: -1},                           // negative start
		{Seq: IdentitySequence(5), Start: 0, X: []int64{0, 0, 0, 0}},    // short X
		{Seq: IdentitySequence(5), Start: 0, X: []int64{2, 0, 0, 0, 0}}, // X > P-M
	}
	for i, s := range bad {
		if err := s.Validate(in); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestIsPermutationQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	// A shuffled identity is always a permutation.
	shuffled := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%40)
		rng := rand.New(rand.NewSource(seed))
		seq := IdentitySequence(n)
		rng.Shuffle(n, func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
		return IsPermutation(seq)
	}
	if err := quick.Check(shuffled, cfg); err != nil {
		t.Error(err)
	}
	// Any duplicate breaks it.
	duplicated := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%40)
		rng := rand.New(rand.NewSource(seed))
		seq := IdentitySequence(n)
		i, j := rng.Intn(n), rng.Intn(n)
		for j == i {
			j = rng.Intn(n)
		}
		seq[i] = seq[j]
		return !IsPermutation(seq)
	}
	if err := quick.Check(duplicated, cfg); err != nil {
		t.Error(err)
	}
}

func TestDueDatePosition(t *testing.T) {
	in := PaperExample(CDD)
	s := Schedule{Seq: IdentitySequence(5), Start: 5} // completions {11,16,...}
	if pos := s.DueDatePosition(in); pos != 2 {
		t.Errorf("due date position %d, want 2", pos)
	}
	s.Start = 4
	if pos := s.DueDatePosition(in); pos != 0 {
		t.Errorf("due date position %d, want 0 (nobody at d)", pos)
	}
}

func TestGanttMentionsJobsAndDueDate(t *testing.T) {
	in := PaperExample(CDD)
	s := Schedule{Seq: IdentitySequence(5), Start: 5}
	g := s.Gantt(in)
	for _, frag := range []string{"J1", "J5", "d=16", "t=5"} {
		if !strings.Contains(g, frag) {
			t.Errorf("Gantt output missing %q: %s", frag, g)
		}
	}
}

func TestKindString(t *testing.T) {
	if CDD.String() != "CDD" || UCDDCP.String() != "UCDDCP" {
		t.Error("Kind.String broken")
	}
	if got := Kind(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown kind formatted as %q", got)
	}
}

func TestSequenceCostMatchesSchedule(t *testing.T) {
	in := PaperExample(UCDDCP)
	seq := []int{4, 3, 2, 1, 0}
	x := []int64{1, 0, 0, 1, 1}
	s := Schedule{Seq: seq, Start: 2, X: x}
	if a, b := s.Cost(in), SequenceCost(in, seq, 2, x); a != b {
		t.Errorf("Schedule.Cost=%d SequenceCost=%d", a, b)
	}
}

func TestVShapeViolationsOnSortedSchedule(t *testing.T) {
	in := PaperExample(CDD)
	// Construct an exaggerated V-shaped order: early side by decreasing
	// P/α, tardy side by increasing P/β.
	desc := SortedByRatio(in, func(j Job) int { return j.Alpha }, true)
	s := Schedule{Seq: desc, Start: 0}
	if v := VShapeViolations(in, &s); v < 0 {
		t.Errorf("violations negative: %d", v)
	}
	// A fully early (huge d) schedule sorted descending by P/α must have
	// zero early-side violations.
	in2 := in.Clone()
	in2.D = 1000
	s2 := Schedule{Seq: desc, Start: 0}
	if v := VShapeViolations(in2, &s2); v != 0 {
		t.Errorf("sorted early-side violations = %d, want 0", v)
	}
}
