package problem

import "testing"

// TestCanonicalHashNameInvariant pins the semantic-content contract: the
// display name does not participate in the hash, every other field does.
func TestCanonicalHashNameInvariant(t *testing.T) {
	base := PaperExample(CDD)
	renamed := base.Clone()
	renamed.Name = "something-else"
	if base.CanonicalHash() != renamed.CanonicalHash() {
		t.Fatalf("renaming changed the hash")
	}
	if base.CanonicalHash() != base.CanonicalHash() {
		t.Fatalf("hash is not deterministic")
	}
	if PaperExample(CDD).CanonicalHash() == PaperExample(UCDDCP).CanonicalHash() {
		t.Fatalf("CDD and UCDDCP paper examples hash equal")
	}
}

// TestCanonicalHashSensitivity flips each field class once and requires a
// different digest.
func TestCanonicalHashSensitivity(t *testing.T) {
	base := PaperExample(UCDDCP)
	mutations := map[string]func(in *Instance){
		"dueDate": func(in *Instance) { in.D++ },
		"p":       func(in *Instance) { in.Jobs[0].P++ },
		"m":       func(in *Instance) { in.Jobs[0].M-- },
		"alpha":   func(in *Instance) { in.Jobs[1].Alpha++ },
		"beta":    func(in *Instance) { in.Jobs[1].Beta++ },
		"gamma":   func(in *Instance) { in.Jobs[2].Gamma++ },
		"order":   func(in *Instance) { in.Jobs[0], in.Jobs[1] = in.Jobs[1], in.Jobs[0] },
		"dropJob": func(in *Instance) { in.Jobs = in.Jobs[:len(in.Jobs)-1] },
	}
	for name, mutate := range mutations {
		m := base.Clone()
		mutate(m)
		if m.CanonicalHash() == base.CanonicalHash() {
			t.Errorf("mutation %q did not change the hash", name)
		}
	}
}
