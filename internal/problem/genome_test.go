package problem_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/problem"
	"repro/internal/xrand"
)

// parallelCDD builds a small valid CDD instance on m machines.
func parallelCDD(t *testing.T, n, m int) *problem.Instance {
	t.Helper()
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + (i*7)%9
		alpha[i] = 1 + i%5
		beta[i] = 1 + i%7
		sum += int64(p[i])
	}
	in, err := problem.NewCDD(fmt.Sprintf("codec-n%d-m%d", n, m), p, alpha, beta, sum/2+1)
	if err != nil {
		t.Fatal(err)
	}
	in.Machines = m
	return in
}

// shuffled returns a random permutation of 0..n-1.
func shuffled(r *xrand.XORWOW, n int) []int {
	seq := problem.IdentitySequence(n)
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		seq[i], seq[j] = seq[j], seq[i]
	}
	return seq
}

// TestGenomeCodecRoundTrip pins the delimiter codec: SplitGenome and
// EncodeGenome are inverses, and GenomeAssignment agrees with the split
// on both the machine-major order and the per-job machine.
func TestGenomeCodecRoundTrip(t *testing.T) {
	r := xrand.New(5)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(8)
		m := 1 + r.Intn(4)
		in := parallelCDD(t, n, m)
		genome := shuffled(r, in.GenomeLen())
		if !in.IsGenome(genome) {
			t.Fatalf("IsGenome rejected a permutation of 0..%d", in.GenomeLen()-1)
		}

		segs := in.SplitGenome(genome)
		if len(segs) != m {
			t.Fatalf("SplitGenome returned %d segments, want %d", len(segs), m)
		}
		back, err := in.EncodeGenome(segs)
		if err != nil {
			t.Fatalf("EncodeGenome(SplitGenome(g)): %v", err)
		}
		// Separator identities may differ after re-encoding (they carry
		// position, not identity), but job placement must be preserved:
		// the job runs of both genomes are identical.
		if fmt.Sprint(in.SplitGenome(back)) != fmt.Sprint(segs) {
			t.Fatalf("round trip moved jobs:\ngenome %v → %v\nre-encoded %v → %v",
				genome, segs, back, in.SplitGenome(back))
		}

		order, assign := in.GenomeAssignment(genome)
		if m == 1 {
			if assign != nil {
				t.Fatalf("single-machine assignment not nil: %v", assign)
			}
			if fmt.Sprint(order) != fmt.Sprint(genome) {
				t.Fatalf("single-machine order %v != genome %v", order, genome)
			}
			continue
		}
		if len(order) != n || len(assign) != n {
			t.Fatalf("order %v / assign %v wrong length for n=%d", order, assign, n)
		}
		at := 0
		for k, seg := range segs {
			for _, job := range seg {
				if order[at] != job {
					t.Fatalf("order[%d] = %d, want %d (machine-major)", at, order[at], job)
				}
				if assign[job] != k {
					t.Fatalf("job %d assigned to machine %d, split puts it on %d", job, assign[job], k)
				}
				at++
			}
		}
	}
}

// TestGenomeStructureRejection pins the fail-closed side of the codec.
func TestGenomeStructureRejection(t *testing.T) {
	in := parallelCDD(t, 4, 3) // genome length 6
	if in.GenomeLen() != 6 {
		t.Fatalf("GenomeLen = %d, want 6", in.GenomeLen())
	}
	if in.IsGenome([]int{0, 1, 2, 3, 4}) {
		t.Error("short genome accepted")
	}
	if in.IsGenome([]int{0, 1, 2, 3, 4, 4}) {
		t.Error("duplicate value accepted")
	}
	if _, err := in.EncodeGenome([][]int{{0, 1}, {2, 3}}); err == nil {
		t.Error("EncodeGenome accepted 2 segments for 3 machines")
	}
	if _, err := in.EncodeGenome([][]int{{0, 1}, {2}, {2}}); err == nil {
		t.Error("EncodeGenome accepted a duplicated job")
	}
	if _, err := in.EncodeGenome([][]int{{0, 1}, {2}, {}}); err == nil {
		t.Error("EncodeGenome accepted a dropped job")
	}
}

// TestGenomeCoded pins the dispatch predicate: parallel instances and
// EARLYWORK take the genome path, single-machine CDD/UCDDCP stay on the
// paper's kernels.
func TestGenomeCoded(t *testing.T) {
	cdd1 := parallelCDD(t, 3, 1)
	if cdd1.GenomeCoded() {
		t.Error("single-machine CDD reported genome-coded")
	}
	cdd2 := parallelCDD(t, 3, 2)
	if !cdd2.GenomeCoded() {
		t.Error("2-machine CDD not genome-coded")
	}
	ew, err := problem.NewEarlyWork("ew", []int{3, 2, 1}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ew.GenomeCoded() {
		t.Error("single-machine EARLYWORK not genome-coded (its cost is the late-work closed form)")
	}
}

// TestKindTextMarshaling is the fail-closed table for the Kind codec:
// both directions reject everything outside the three canonical names,
// with ErrUnknownKind identity preserved for errors.Is callers.
func TestKindTextMarshaling(t *testing.T) {
	valid := []struct {
		kind problem.Kind
		name string
	}{
		{problem.CDD, "CDD"},
		{problem.UCDDCP, "UCDDCP"},
		{problem.EARLYWORK, "EARLYWORK"},
	}
	for _, tc := range valid {
		text, err := tc.kind.MarshalText()
		if err != nil || string(text) != tc.name {
			t.Errorf("MarshalText(%v) = %q, %v; want %q", tc.kind, text, err, tc.name)
		}
		var k problem.Kind
		if err := k.UnmarshalText([]byte(tc.name)); err != nil || k != tc.kind {
			t.Errorf("UnmarshalText(%q) = %v, %v; want %v", tc.name, k, err, tc.kind)
		}
		if parsed, err := problem.ParseKind(tc.name); err != nil || parsed != tc.kind {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", tc.name, parsed, err, tc.kind)
		}
	}

	rejected := []string{
		"", "cdd", "Cdd", "ucddcp", "earlywork", "EarlyWork",
		"LATEWORK", "CDD ", " CDD", "CDD\n", "Kind(0)", "3", "UCDDCP2",
	}
	for _, name := range rejected {
		var k problem.Kind
		err := k.UnmarshalText([]byte(name))
		if err == nil {
			t.Errorf("UnmarshalText(%q) accepted an unknown kind", name)
			continue
		}
		if !errors.Is(err, problem.ErrUnknownKind) {
			t.Errorf("UnmarshalText(%q) error %v is not ErrUnknownKind", name, err)
		}
		if _, err := problem.ParseKind(name); !errors.Is(err, problem.ErrUnknownKind) {
			t.Errorf("ParseKind(%q) error %v is not ErrUnknownKind", name, err)
		}
	}

	for _, k := range []problem.Kind{problem.Kind(-1), problem.Kind(3), problem.Kind(42)} {
		if text, err := k.MarshalText(); err == nil {
			t.Errorf("MarshalText(%d) leaked %q for an undefined kind", int(k), text)
		} else if !errors.Is(err, problem.ErrUnknownKind) {
			t.Errorf("MarshalText(%d) error %v is not ErrUnknownKind", int(k), err)
		}
	}
}

// TestCanonicalHashCoversMachines pins the cache-key contract: the
// machine count participates in the hash, with the zero value and an
// explicit 1 hashing identically (both mean the single-machine problem).
func TestCanonicalHashCoversMachines(t *testing.T) {
	base := parallelCDD(t, 5, 0)
	one := base.Clone()
	one.Machines = 1
	if base.CanonicalHash() != one.CanonicalHash() {
		t.Error("Machines 0 and 1 hash differently")
	}
	three := base.Clone()
	three.Machines = 3
	if base.CanonicalHash() == three.CanonicalHash() {
		t.Error("machine count does not participate in the canonical hash")
	}
}
