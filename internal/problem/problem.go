// Package problem defines the data model for the two scheduling problems
// studied in Awasthi et al., "GPGPU-based Parallel Algorithms for Scheduling
// Against Due Date" (IPDPSW 2016): the Common Due-Date problem (CDD) and the
// Unrestricted Common Due-Date problem with Controllable Processing Times
// (UCDDCP).
//
// Both problems schedule n jobs on a single machine against a common due
// date d. Each job i has a processing time P_i, an earliness penalty α_i per
// unit time and a tardiness penalty β_i per unit time. In the controllable
// variant a job may additionally be compressed from P_i down to a minimum
// processing time M_i at a compression penalty γ_i per unit of reduction.
//
// The package holds only the instance/schedule model and exact objective
// evaluation; the O(n) per-sequence optimizers live in internal/cdd and
// internal/ucddcp.
package problem

import (
	"errors"
	"fmt"
)

// Job is a single job of a CDD or UCDDCP instance. All quantities are
// integral, as in the OR-library benchmark data.
type Job struct {
	// P is the (uncompressed) processing time, P >= 1.
	P int
	// M is the minimum processing time after compression, 1 <= M <= P.
	// For plain CDD instances M == P (no compression possible).
	M int
	// Alpha is the earliness penalty per unit time, Alpha >= 0.
	Alpha int
	// Beta is the tardiness penalty per unit time, Beta >= 0.
	Beta int
	// Gamma is the compression penalty per unit of processing-time
	// reduction, Gamma >= 0. Unused when M == P.
	Gamma int
}

// MaxCompression returns the largest admissible reduction of the job's
// processing time, P - M.
func (j Job) MaxCompression() int { return j.P - j.M }

// Kind distinguishes the two problems of the paper.
type Kind int

const (
	// CDD is the Common Due-Date problem: minimize Σ α_i·E_i + β_i·T_i.
	CDD Kind = iota
	// UCDDCP is the Unrestricted Common Due-Date problem with Controllable
	// Processing Times: minimize Σ α_i·E_i + β_i·T_i + γ_i·X_i subject to
	// d ≥ Σ P_i.
	UCDDCP
	// EARLYWORK is early-work maximization on identical parallel machines
	// against a common due date (Li, arXiv:2007.12388): maximize the total
	// work executed before d. It is expressed internally as minimization
	// of the complementary total late work Σ_k max(0, load_k − d), so the
	// solver stack's cost budgets and atomic-min reductions apply
	// unchanged; maximal early work and minimal late work coincide because
	// their sum is the constant ΣP.
	EARLYWORK
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CDD:
		return "CDD"
	case UCDDCP:
		return "UCDDCP"
	case EARLYWORK:
		return "EARLYWORK"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Instance is one problem instance: a job set and a common due date.
type Instance struct {
	// Name identifies the instance (e.g. "cdd_n50_k3_h0.6").
	Name string
	// Kind selects the objective (CDD, UCDDCP or EARLYWORK).
	Kind Kind
	// Jobs are the jobs to schedule; len(Jobs) == n.
	Jobs []Job
	// D is the common due date.
	D int64
	// Machines is the number of identical parallel machines. Zero and one
	// both mean the single-machine problem of the paper (the zero value
	// keeps every pre-existing literal valid); use MachineCount for the
	// normalized count.
	Machines int
}

// N returns the number of jobs.
func (in *Instance) N() int { return len(in.Jobs) }

// MachineCount returns the normalized machine count: Machines, with the
// zero value reading as 1 (the single-machine problem).
func (in *Instance) MachineCount() int {
	if in.Machines < 1 {
		return 1
	}
	return in.Machines
}

// GenomeLen returns the length of the delimiter-encoded solution genome:
// a permutation of n jobs plus m−1 machine separators (values ≥ n), whose
// maximal runs of job values map in order to machines 0..m−1. For
// single-machine instances this is exactly N(), so a genome degenerates
// to the plain job sequence of the paper.
func (in *Instance) GenomeLen() int { return in.N() + in.MachineCount() - 1 }

// GenomeCoded reports whether solutions for this instance are delimiter
// genomes scored machine-by-machine rather than single sequences on the
// paper's original kernels: any multi-machine instance, plus EARLYWORK
// (whose cost is the late-work closed form even on one machine). When
// false, solutions are plain job permutations and every evaluator takes
// the pre-generalization path, bit-identical to the single-machine stack.
func (in *Instance) GenomeCoded() bool {
	return in.MachineCount() > 1 || in.Kind == EARLYWORK
}

// SumP returns the sum of all uncompressed processing times.
func (in *Instance) SumP() int64 {
	var s int64
	for _, j := range in.Jobs {
		s += int64(j.P)
	}
	return s
}

// SumM returns the sum of all minimum processing times.
func (in *Instance) SumM() int64 {
	var s int64
	for _, j := range in.Jobs {
		s += int64(j.M)
	}
	return s
}

// Restrictive reports whether the due date is restrictive, i.e. smaller
// than the sum of the processing times. The OR-library CDD benchmark uses
// restrictive due dates d = ⌊h·ΣP⌋ with h < 1; UCDDCP requires d ≥ ΣP.
func (in *Instance) Restrictive() bool { return in.D < in.SumP() }

// Sentinel errors of instance validation and parsing; callers branch
// with errors.Is (the batch service maps them to 422 responses).
var (
	// ErrUnknownKind reports a Kind value or name outside the three
	// defined problems. Parsing fails closed on it.
	ErrUnknownKind = errors.New("unknown problem kind")
	// ErrMachines reports an invalid machine count (< 1 when explicitly
	// set; the zero value is read as 1).
	ErrMachines = errors.New("invalid machine count")
)

// Validate checks structural invariants of the instance. It returns a
// descriptive error for the first violated invariant, or nil.
func (in *Instance) Validate() error {
	if in.Kind != CDD && in.Kind != UCDDCP && in.Kind != EARLYWORK {
		return fmt.Errorf("problem: %w: Kind(%d)", ErrUnknownKind, int(in.Kind))
	}
	if in.Machines < 0 {
		return fmt.Errorf("problem: %w: %d machines", ErrMachines, in.Machines)
	}
	if len(in.Jobs) == 0 {
		return errors.New("problem: instance has no jobs")
	}
	if in.D < 0 {
		return fmt.Errorf("problem: negative due date %d", in.D)
	}
	for i, j := range in.Jobs {
		switch {
		case j.P < 1:
			return fmt.Errorf("problem: job %d has processing time %d < 1", i, j.P)
		case j.M < 1 || j.M > j.P:
			return fmt.Errorf("problem: job %d has minimum processing time %d outside [1,%d]", i, j.M, j.P)
		case j.Alpha < 0:
			return fmt.Errorf("problem: job %d has negative earliness penalty %d", i, j.Alpha)
		case j.Beta < 0:
			return fmt.Errorf("problem: job %d has negative tardiness penalty %d", i, j.Beta)
		case j.Gamma < 0:
			return fmt.Errorf("problem: job %d has negative compression penalty %d", i, j.Gamma)
		}
	}
	if in.Kind == UCDDCP && in.Restrictive() {
		return fmt.Errorf("problem: UCDDCP requires d >= ΣP (unrestricted), got d=%d < ΣP=%d", in.D, in.SumP())
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{Name: in.Name, Kind: in.Kind, D: in.D, Machines: in.Machines}
	out.Jobs = make([]Job, len(in.Jobs))
	copy(out.Jobs, in.Jobs)
	return out
}

// NewCDD builds a CDD instance from parallel parameter slices. The slices
// must have equal length. Minimum processing times are set to P (no
// compression) and γ to zero.
func NewCDD(name string, p, alpha, beta []int, d int64) (*Instance, error) {
	if len(p) != len(alpha) || len(p) != len(beta) {
		return nil, fmt.Errorf("problem: mismatched slice lengths p=%d alpha=%d beta=%d", len(p), len(alpha), len(beta))
	}
	in := &Instance{Name: name, Kind: CDD, D: d, Jobs: make([]Job, len(p))}
	for i := range p {
		in.Jobs[i] = Job{P: p[i], M: p[i], Alpha: alpha[i], Beta: beta[i]}
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// NewUCDDCP builds a UCDDCP instance from parallel parameter slices.
func NewUCDDCP(name string, p, m, alpha, beta, gamma []int, d int64) (*Instance, error) {
	n := len(p)
	if len(m) != n || len(alpha) != n || len(beta) != n || len(gamma) != n {
		return nil, fmt.Errorf("problem: mismatched slice lengths (n=%d)", n)
	}
	in := &Instance{Name: name, Kind: UCDDCP, D: d, Jobs: make([]Job, n)}
	for i := range p {
		in.Jobs[i] = Job{P: p[i], M: m[i], Alpha: alpha[i], Beta: beta[i], Gamma: gamma[i]}
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// NewEarlyWork builds an early-work-maximization instance: n jobs with
// processing times p on machines identical parallel machines against the
// common due date d. Early-work instances carry no earliness/tardiness
// penalties (the objective is the work itself), so α and β are zero and
// M = P.
func NewEarlyWork(name string, p []int, machines int, d int64) (*Instance, error) {
	if machines < 1 {
		return nil, fmt.Errorf("problem: %w: %d machines", ErrMachines, machines)
	}
	in := &Instance{Name: name, Kind: EARLYWORK, D: d, Machines: machines, Jobs: make([]Job, len(p))}
	for i := range p {
		in.Jobs[i] = Job{P: p[i], M: p[i]}
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// PaperExample returns the 5-job instance of Table I of the paper. With the
// identity sequence and d = 16 the optimal CDD penalty is 81; with d = 22
// the optimal UCDDCP penalty for the identity sequence is 77.
func PaperExample(kind Kind) *Instance {
	p := []int{6, 5, 2, 4, 4}
	m := []int{5, 5, 2, 3, 3}
	alpha := []int{7, 9, 6, 9, 3}
	beta := []int{9, 5, 4, 3, 2}
	gamma := []int{5, 4, 3, 2, 1}
	if kind == CDD {
		in, err := NewCDD("paper-example-cdd", p, alpha, beta, 16)
		if err != nil {
			panic(err) // static data; cannot fail
		}
		return in
	}
	in, err := NewUCDDCP("paper-example-ucddcp", p, m, alpha, beta, gamma, 22)
	if err != nil {
		panic(err) // static data; cannot fail
	}
	return in
}
