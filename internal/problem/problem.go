// Package problem defines the data model for the two scheduling problems
// studied in Awasthi et al., "GPGPU-based Parallel Algorithms for Scheduling
// Against Due Date" (IPDPSW 2016): the Common Due-Date problem (CDD) and the
// Unrestricted Common Due-Date problem with Controllable Processing Times
// (UCDDCP).
//
// Both problems schedule n jobs on a single machine against a common due
// date d. Each job i has a processing time P_i, an earliness penalty α_i per
// unit time and a tardiness penalty β_i per unit time. In the controllable
// variant a job may additionally be compressed from P_i down to a minimum
// processing time M_i at a compression penalty γ_i per unit of reduction.
//
// The package holds only the instance/schedule model and exact objective
// evaluation; the O(n) per-sequence optimizers live in internal/cdd and
// internal/ucddcp.
package problem

import (
	"errors"
	"fmt"
)

// Job is a single job of a CDD or UCDDCP instance. All quantities are
// integral, as in the OR-library benchmark data.
type Job struct {
	// P is the (uncompressed) processing time, P >= 1.
	P int
	// M is the minimum processing time after compression, 1 <= M <= P.
	// For plain CDD instances M == P (no compression possible).
	M int
	// Alpha is the earliness penalty per unit time, Alpha >= 0.
	Alpha int
	// Beta is the tardiness penalty per unit time, Beta >= 0.
	Beta int
	// Gamma is the compression penalty per unit of processing-time
	// reduction, Gamma >= 0. Unused when M == P.
	Gamma int
}

// MaxCompression returns the largest admissible reduction of the job's
// processing time, P - M.
func (j Job) MaxCompression() int { return j.P - j.M }

// Kind distinguishes the two problems of the paper.
type Kind int

const (
	// CDD is the Common Due-Date problem: minimize Σ α_i·E_i + β_i·T_i.
	CDD Kind = iota
	// UCDDCP is the Unrestricted Common Due-Date problem with Controllable
	// Processing Times: minimize Σ α_i·E_i + β_i·T_i + γ_i·X_i subject to
	// d ≥ Σ P_i.
	UCDDCP
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CDD:
		return "CDD"
	case UCDDCP:
		return "UCDDCP"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Instance is one problem instance: a job set and a common due date.
type Instance struct {
	// Name identifies the instance (e.g. "cdd_n50_k3_h0.6").
	Name string
	// Kind selects the objective (CDD or UCDDCP).
	Kind Kind
	// Jobs are the jobs to schedule; len(Jobs) == n.
	Jobs []Job
	// D is the common due date.
	D int64
}

// N returns the number of jobs.
func (in *Instance) N() int { return len(in.Jobs) }

// SumP returns the sum of all uncompressed processing times.
func (in *Instance) SumP() int64 {
	var s int64
	for _, j := range in.Jobs {
		s += int64(j.P)
	}
	return s
}

// SumM returns the sum of all minimum processing times.
func (in *Instance) SumM() int64 {
	var s int64
	for _, j := range in.Jobs {
		s += int64(j.M)
	}
	return s
}

// Restrictive reports whether the due date is restrictive, i.e. smaller
// than the sum of the processing times. The OR-library CDD benchmark uses
// restrictive due dates d = ⌊h·ΣP⌋ with h < 1; UCDDCP requires d ≥ ΣP.
func (in *Instance) Restrictive() bool { return in.D < in.SumP() }

// Validate checks structural invariants of the instance. It returns a
// descriptive error for the first violated invariant, or nil.
func (in *Instance) Validate() error {
	if len(in.Jobs) == 0 {
		return errors.New("problem: instance has no jobs")
	}
	if in.D < 0 {
		return fmt.Errorf("problem: negative due date %d", in.D)
	}
	for i, j := range in.Jobs {
		switch {
		case j.P < 1:
			return fmt.Errorf("problem: job %d has processing time %d < 1", i, j.P)
		case j.M < 1 || j.M > j.P:
			return fmt.Errorf("problem: job %d has minimum processing time %d outside [1,%d]", i, j.M, j.P)
		case j.Alpha < 0:
			return fmt.Errorf("problem: job %d has negative earliness penalty %d", i, j.Alpha)
		case j.Beta < 0:
			return fmt.Errorf("problem: job %d has negative tardiness penalty %d", i, j.Beta)
		case j.Gamma < 0:
			return fmt.Errorf("problem: job %d has negative compression penalty %d", i, j.Gamma)
		}
	}
	if in.Kind == UCDDCP && in.Restrictive() {
		return fmt.Errorf("problem: UCDDCP requires d >= ΣP (unrestricted), got d=%d < ΣP=%d", in.D, in.SumP())
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{Name: in.Name, Kind: in.Kind, D: in.D}
	out.Jobs = make([]Job, len(in.Jobs))
	copy(out.Jobs, in.Jobs)
	return out
}

// NewCDD builds a CDD instance from parallel parameter slices. The slices
// must have equal length. Minimum processing times are set to P (no
// compression) and γ to zero.
func NewCDD(name string, p, alpha, beta []int, d int64) (*Instance, error) {
	if len(p) != len(alpha) || len(p) != len(beta) {
		return nil, fmt.Errorf("problem: mismatched slice lengths p=%d alpha=%d beta=%d", len(p), len(alpha), len(beta))
	}
	in := &Instance{Name: name, Kind: CDD, D: d, Jobs: make([]Job, len(p))}
	for i := range p {
		in.Jobs[i] = Job{P: p[i], M: p[i], Alpha: alpha[i], Beta: beta[i]}
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// NewUCDDCP builds a UCDDCP instance from parallel parameter slices.
func NewUCDDCP(name string, p, m, alpha, beta, gamma []int, d int64) (*Instance, error) {
	n := len(p)
	if len(m) != n || len(alpha) != n || len(beta) != n || len(gamma) != n {
		return nil, fmt.Errorf("problem: mismatched slice lengths (n=%d)", n)
	}
	in := &Instance{Name: name, Kind: UCDDCP, D: d, Jobs: make([]Job, n)}
	for i := range p {
		in.Jobs[i] = Job{P: p[i], M: m[i], Alpha: alpha[i], Beta: beta[i], Gamma: gamma[i]}
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// PaperExample returns the 5-job instance of Table I of the paper. With the
// identity sequence and d = 16 the optimal CDD penalty is 81; with d = 22
// the optimal UCDDCP penalty for the identity sequence is 77.
func PaperExample(kind Kind) *Instance {
	p := []int{6, 5, 2, 4, 4}
	m := []int{5, 5, 2, 3, 3}
	alpha := []int{7, 9, 6, 9, 3}
	beta := []int{9, 5, 4, 3, 2}
	gamma := []int{5, 4, 3, 2, 1}
	if kind == CDD {
		in, err := NewCDD("paper-example-cdd", p, alpha, beta, 16)
		if err != nil {
			panic(err) // static data; cannot fail
		}
		return in
	}
	in, err := NewUCDDCP("paper-example-ucddcp", p, m, alpha, beta, gamma, 22)
	if err != nil {
		panic(err) // static data; cannot fail
	}
	return in
}
