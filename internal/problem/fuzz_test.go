package problem_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/orlib"
	"repro/internal/problem"
)

// FuzzParseInstance throws arbitrary bytes at every instance parser in the
// repository — the JSON interchange reader and the two OR-library text
// readers — and asserts the parser contract: never panic, never hang,
// never allocate unboundedly, and when a parse succeeds the result must
// pass Validate and survive a write/re-read round trip unchanged.
func FuzzParseInstance(f *testing.F) {
	// A valid JSON instance, a valid sch-format record, a valid
	// controllable record, and adversarial headers.
	f.Add([]byte(`{"name":"x","kind":"CDD","dueDate":16,"jobs":[{"p":6,"alpha":7,"beta":9}]}`), uint64(1))
	f.Add([]byte(`{"name":"u","kind":"UCDDCP","dueDate":12,"jobs":[{"p":6,"m":5,"alpha":7,"beta":9,"gamma":5},{"p":5,"m":4,"alpha":9,"beta":5,"gamma":4}]}`), uint64(1))
	f.Add([]byte("1\n6 7 9\n5 9 5\n"), uint64(2))
	f.Add([]byte("1\n6 5 7 9 5\n5 5 9 5 4\n"), uint64(2))
	f.Add([]byte("999999999999999999\n1 1 1\n"), uint64(3))
	f.Add([]byte("-5\n"), uint64(1))
	// Parallel-machine and early-work seeds: a 3-machine CDD, a 2-machine
	// EARLYWORK, a negative machine count (must fail closed), an unknown
	// kind, and a processing-times-only early-work record.
	f.Add([]byte(`{"name":"pm","kind":"CDD","dueDate":8,"machines":3,"jobs":[{"p":6,"alpha":7,"beta":9},{"p":5,"alpha":9,"beta":5}]}`), uint64(2))
	f.Add([]byte(`{"name":"ew","kind":"EARLYWORK","dueDate":7,"machines":2,"jobs":[{"p":6,"alpha":0,"beta":0},{"p":5,"alpha":0,"beta":0},{"p":4,"alpha":0,"beta":0}]}`), uint64(3))
	f.Add([]byte(`{"name":"bad","kind":"CDD","dueDate":8,"machines":-1,"jobs":[{"p":6,"alpha":7,"beta":9}]}`), uint64(1))
	f.Add([]byte(`{"name":"bad","kind":"LATEWORK","dueDate":8,"jobs":[{"p":6,"alpha":7,"beta":9}]}`), uint64(1))
	f.Add([]byte("1\n6\n5\n4\n"), uint64(3))
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint64) {
		if in, err := problem.ReadInstanceJSON(bytes.NewReader(data)); err == nil {
			if verr := in.Validate(); verr != nil {
				t.Fatalf("ReadInstanceJSON accepted an invalid instance: %v", verr)
			}
			var buf bytes.Buffer
			if werr := problem.WriteInstanceJSON(&buf, in); werr != nil {
				t.Fatalf("cannot re-serialize a parsed instance: %v", werr)
			}
			back, rerr := problem.ReadInstanceJSON(&buf)
			if rerr != nil {
				t.Fatalf("round trip failed to parse: %v", rerr)
			}
			if !reflect.DeepEqual(in, back) {
				t.Fatalf("round trip changed the instance:\n%+v\nvs\n%+v", in, back)
			}
		}

		n := 1 + int(nRaw%16)
		if raws, err := orlib.ReadCDD(bytes.NewReader(data), n); err == nil {
			for k, raw := range raws {
				if in, ierr := orlib.CDDInstance(raw, n, k, 0.6); ierr == nil {
					if verr := in.Validate(); verr != nil {
						t.Fatalf("CDDInstance built an invalid instance: %v", verr)
					}
				}
			}
		}
		if raws, err := orlib.ReadUCDDCP(bytes.NewReader(data), n); err == nil {
			for k, raw := range raws {
				if in, ierr := orlib.UCDDCPInstance(raw, n, k); ierr == nil {
					if verr := in.Validate(); verr != nil {
						t.Fatalf("UCDDCPInstance built an invalid instance: %v", verr)
					}
				}
			}
		}
		if raws, err := orlib.ReadEarlyWork(bytes.NewReader(data), n); err == nil {
			machines := 1 + int(nRaw%4)
			for k, raw := range raws {
				if in, ierr := orlib.EarlyWorkInstance(raw, n, k, machines, 0.6); ierr == nil {
					if verr := in.Validate(); verr != nil {
						t.Fatalf("EarlyWorkInstance built an invalid instance: %v", verr)
					}
				}
			}
		}
	})
}
