package ucddcp

import (
	"math/rand"
	"testing"

	"repro/internal/problem"
)

// applyMove mutates cand with one random move from the metaheuristics'
// move families and returns the touched positions (possibly containing
// duplicates and no-op entries).
func applyMove(rng *rand.Rand, cand []int, scratch []int) []int {
	n := len(cand)
	if n == 1 {
		return scratch[:0]
	}
	switch rng.Intn(5) {
	case 0: // swap
		i, j := rng.Intn(n), rng.Intn(n-1)
		if j >= i {
			j++
		}
		cand[i], cand[j] = cand[j], cand[i]
		return append(scratch[:0], i, j)
	case 1: // k-position shuffle
		k := 2 + rng.Intn(3)
		if k > n {
			k = n
		}
		pos := rng.Perm(n)[:k]
		first := cand[pos[0]]
		for t := 0; t < k-1; t++ {
			cand[pos[t]] = cand[pos[t+1]]
		}
		cand[pos[k-1]] = first
		return append(scratch[:0], pos...)
	case 2: // insert
		i, j := rng.Intn(n), rng.Intn(n)
		v := cand[i]
		if i < j {
			copy(cand[i:j], cand[i+1:j+1])
		} else {
			copy(cand[j+1:i+1], cand[j:i])
		}
		cand[j] = v
		lo, hi := i, j
		if lo > hi {
			lo, hi = hi, lo
		}
		scratch = scratch[:0]
		for p := lo; p <= hi; p++ {
			scratch = append(scratch, p)
		}
		return scratch
	case 3: // reverse
		i, j := rng.Intn(n), rng.Intn(n)
		if i > j {
			i, j = j, i
		}
		for l, r := i, j; l < r; l, r = l+1, r-1 {
			cand[l], cand[r] = cand[r], cand[l]
		}
		scratch = scratch[:0]
		for p := i; p <= j; p++ {
			scratch = append(scratch, p)
		}
		return scratch
	default: // wholesale reshuffle (fallback path)
		rng.Shuffle(n, func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
		scratch = scratch[:0]
		for p := 0; p < n; p++ {
			scratch = append(scratch, p)
		}
		return scratch
	}
}

// TestDeltaMatchesFullRandomMoves drives the propose/commit protocol with
// randomized move sequences and asserts every proposed cost is
// bit-identical to a scratch evaluation of the candidate.
func TestDeltaMatchesFullRandomMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(48)
		in := randomInstance(rng, n, 6)
		full := NewEvaluator(in)
		de := NewDeltaEvaluator(in)

		base := randomSequence(rng, n)
		if got, want := de.Reset(base), full.Cost(base); got != want {
			t.Fatalf("trial %d: Reset cost %d, full %d", trial, got, want)
		}
		cand := make([]int, n)
		scratch := make([]int, 0, n)
		for step := 0; step < 100; step++ {
			copy(cand, base)
			touched := applyMove(rng, cand, scratch)
			got := de.Propose(cand, touched)
			want := full.Cost(cand)
			if got != want {
				t.Fatalf("trial %d step %d (n=%d, d=%d): Propose %d, full %d\nbase=%v\ncand=%v\ntouched=%v",
					trial, step, n, in.D, got, want, base, cand, touched)
			}
			if rng.Intn(2) == 0 {
				de.Commit()
				copy(base, cand)
			}
		}
		probe := randomSequence(rng, n)
		if got, want := de.Cost(probe), full.Cost(probe); got != want {
			t.Fatalf("trial %d: stateless Cost %d, full %d", trial, got, want)
		}
	}
}

// TestDeltaDegenerateDueDates exercises the r = 0 regimes the paper's
// UCDDCP domain excludes but the evaluator handles: restrictive due dates
// (d < ΣP) down to d = 0, where the whole sequence is the tardy side.
func TestDeltaDegenerateDueDates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(16)
		p := make([]int, n)
		m := make([]int, n)
		alpha := make([]int, n)
		beta := make([]int, n)
		gamma := make([]int, n)
		var sum int64
		for i := 0; i < n; i++ {
			p[i] = 2 + rng.Intn(8)
			m[i] = 1 + rng.Intn(p[i])
			alpha[i] = rng.Intn(9)
			beta[i] = rng.Intn(9)
			gamma[i] = rng.Intn(6)
			sum += int64(p[i])
		}
		for _, d := range []int64{0, 1, sum / 2, sum, sum + 5} {
			// Restrictive due dates are outside problem.NewUCDDCP's domain
			// (it enforces d ≥ ΣP), so assemble the instance directly.
			in := &problem.Instance{Name: "deg", Kind: problem.UCDDCP, D: d, Jobs: make([]problem.Job, n)}
			for i := 0; i < n; i++ {
				in.Jobs[i] = problem.Job{P: p[i], M: m[i], Alpha: alpha[i], Beta: beta[i], Gamma: gamma[i]}
			}
			full := NewEvaluator(in)
			de := NewDeltaEvaluator(in)
			base := randomSequence(rng, n)
			de.Reset(base)
			cand := make([]int, n)
			scratch := make([]int, 0, n)
			for step := 0; step < 30; step++ {
				copy(cand, base)
				touched := applyMove(rng, cand, scratch)
				if got, want := de.Propose(cand, touched), full.Cost(cand); got != want {
					t.Fatalf("d=%d n=%d step %d: Propose %d, full %d\ncand=%v", d, n, step, got, want, cand)
				}
				if rng.Intn(3) != 0 {
					de.Commit()
					copy(base, cand)
				}
			}
		}
	}
}

// TestDeltaInt32Parity cross-checks the device-index instantiation against
// the host instantiation move for move.
func TestDeltaInt32Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(20)
		in := randomInstance(rng, n, 5)
		p, m, alpha, beta, gamma := ParamArrays(in)
		dlHost := NewDelta[int](p, m, alpha, beta, gamma, in.D)
		dlDev := NewDelta[int32](p, m, alpha, beta, gamma, in.D)
		base := randomSequence(rng, n)
		base32 := make([]int32, n)
		for i, v := range base {
			base32[i] = int32(v)
		}
		if h, d := dlHost.Reset(base), dlDev.Reset(base32); h != d {
			t.Fatalf("trial %d: Reset host %d dev %d", trial, h, d)
		}
		cand := make([]int, n)
		cand32 := make([]int32, n)
		scratch := make([]int, 0, n)
		for step := 0; step < 50; step++ {
			copy(cand, base)
			touched := applyMove(rng, cand, scratch)
			for i, v := range cand {
				cand32[i] = int32(v)
			}
			if h, d := dlHost.Propose(cand, touched), dlDev.Propose(cand32, touched); h != d {
				t.Fatalf("trial %d step %d: Propose host %d dev %d", trial, step, h, d)
			}
			if rng.Intn(2) == 0 {
				dlHost.Commit()
				dlDev.Commit()
				copy(base, cand)
			}
		}
	}
}
