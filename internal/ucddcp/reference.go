package ucddcp

import (
	"repro/internal/cdd"
	"repro/internal/problem"
)

// ReferenceOptimize computes the exact optimum for a fixed sequence by
// enumerating every integer compression vector x ∈ Π[0, P_i−M_i] and, for
// each, timing the residual CDD problem optimally with the (separately
// verified) linear CDD algorithm. An integer-optimal x exists because for
// any fixed timing the objective is linear in each x_i with integer
// breakpoints. The cost is exponential in the number of compressible jobs
// and the function exists solely as a test oracle.
func ReferenceOptimize(in *problem.Instance, seq []int) Result {
	mod := in.Clone()
	x := make([]int64, in.N())
	best := Result{Cost: -1}
	var recurse func(i int, gammaCost int64)
	recurse = func(i int, gammaCost int64) {
		if i == len(seq) {
			res := cdd.OptimizeSequence(mod, seq)
			total := res.Cost + gammaCost
			if best.Cost < 0 || total < best.Cost {
				bx := make([]int64, len(x))
				copy(bx, x)
				best = Result{Cost: total, Start: res.Start, DueJob: res.DueJob, X: bx}
			}
			return
		}
		job := seq[i]
		u := in.Jobs[job].MaxCompression()
		for xi := 0; xi <= u; xi++ {
			x[job] = int64(xi)
			mod.Jobs[job].P = in.Jobs[job].P - xi
			recurse(i+1, gammaCost+int64(in.Jobs[job].Gamma)*int64(xi))
		}
		x[job] = 0
		mod.Jobs[job].P = in.Jobs[job].P
	}
	recurse(0, 0)
	return best
}
