package ucddcp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/problem"
)

// TestPaperExampleUCDDCP reproduces the worked example of Section IV-B:
// Table I data, identity sequence, d = 22. The paper reports an optimal
// penalty of 77, with jobs 4 and 5 compressed to their minimum processing
// times and job 2 completing at the due date.
func TestPaperExampleUCDDCP(t *testing.T) {
	in := problem.PaperExample(problem.UCDDCP)
	res := OptimizeSequence(in, problem.IdentitySequence(5))
	if res.Cost != 77 {
		t.Errorf("paper example cost = %d, want 77", res.Cost)
	}
	if res.DueJob != 2 {
		t.Errorf("due-date job position = %d, want 2", res.DueJob)
	}
	wantX := []int64{0, 0, 0, 1, 1}
	for i, w := range wantX {
		if res.X[i] != w {
			t.Errorf("X[%d] = %d, want %d (full X=%v)", i, res.X[i], w, res.X)
		}
	}
	// The reported cost must be the exact objective of the reported
	// schedule.
	if c := problem.SequenceCost(in, problem.IdentitySequence(5), res.Start, res.X); c != res.Cost {
		t.Errorf("schedule evaluates to %d, result claims %d", c, res.Cost)
	}
}

// TestPaperExampleIntermediateCompression replays the two compression steps
// the paper illustrates in Figures 5 and 6: compressing job 5 improves the
// CDD-optimal schedule by 1, compressing job 4 by another 3.
func TestPaperExampleIntermediateCompression(t *testing.T) {
	in := problem.PaperExample(problem.UCDDCP)
	seq := problem.IdentitySequence(5)
	// CDD-optimal timing of the uncompressed sequence has cost 81 at d=22.
	none := problem.SequenceCost(in, seq, 11, nil)
	if none != 81 {
		t.Fatalf("uncompressed cost = %d, want 81", none)
	}
	withJob5 := problem.SequenceCost(in, seq, 11, []int64{0, 0, 0, 0, 1})
	if none-withJob5 != 1 {
		t.Errorf("compressing job 5 improves by %d, want 1", none-withJob5)
	}
	withBoth := problem.SequenceCost(in, seq, 11, []int64{0, 0, 0, 1, 1})
	if withJob5-withBoth != 3 {
		t.Errorf("compressing job 4 improves by %d, want 3", withJob5-withBoth)
	}
	if withBoth != 77 {
		t.Errorf("final cost = %d, want 77", withBoth)
	}
}

// randomInstance builds a random unrestricted controllable instance.
// maxU bounds the per-job compression capacity.
func randomInstance(rng *rand.Rand, n, maxU int) *problem.Instance {
	p := make([]int, n)
	m := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	gamma := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 2 + rng.Intn(12)
		u := rng.Intn(maxU + 1)
		if u >= p[i] {
			u = p[i] - 1
		}
		m[i] = p[i] - u
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
		gamma[i] = 1 + rng.Intn(10)
		sum += int64(p[i])
	}
	d := sum + int64(rng.Intn(int(sum/2+1)))
	in, err := problem.NewUCDDCP("rand", p, m, alpha, beta, gamma, d)
	if err != nil {
		panic(err)
	}
	return in
}

func randomSequence(rng *rand.Rand, n int) []int {
	seq := problem.IdentitySequence(n)
	rng.Shuffle(n, func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
	return seq
}

// hasCrossing reports whether any tardy-side job of the result finished
// strictly before the due date — the regime where the paper's
// all-or-nothing rule can overshoot.
func hasCrossing(in *problem.Instance, seq []int, res Result) bool {
	s := problem.Schedule{Seq: seq, Start: res.Start, X: res.X}
	comps := s.Completions(in)
	for pos := res.DueJob; pos < len(seq); pos++ {
		if comps[pos] < in.D {
			return true
		}
	}
	return false
}

// TestAgainstReference cross-checks the linear algorithm against the
// exhaustive compression oracle. Outside the crossing regime the linear
// algorithm must be exact; inside it, it must stay feasible (never below
// the true optimum) and within a small factor.
func TestAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	crossings, exact, trials := 0, 0, 0
	var worstGap float64
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(7)
		in := randomInstance(rng, n, 2)
		seq := randomSequence(rng, n)
		got := OptimizeSequence(in, seq)
		want := ReferenceOptimize(in, seq)
		trials++
		if got.Cost < want.Cost {
			t.Fatalf("trial %d: linear algorithm %d beats exhaustive optimum %d — oracle or feasibility bug\njobs=%+v d=%d seq=%v x=%v",
				trial, got.Cost, want.Cost, in.Jobs, in.D, seq, got.X)
		}
		if hasCrossing(in, seq, got) {
			crossings++
			gap := float64(got.Cost-want.Cost) / float64(maxI64(want.Cost, 1))
			if gap > worstGap {
				worstGap = gap
			}
			continue
		}
		if got.Cost != want.Cost {
			t.Fatalf("trial %d (no crossing): linear %d != optimum %d\njobs=%+v d=%d seq=%v gotX=%v wantX=%v",
				trial, got.Cost, want.Cost, in.Jobs, in.D, seq, got.X, want.X)
		}
		exact++
	}
	t.Logf("trials=%d exact=%d crossing=%d worst crossing gap=%.3f", trials, exact, crossings, worstGap)
	if exact == 0 {
		t.Error("no crossing-free trials at all; generator regime is wrong")
	}
	if worstGap > 0.5 {
		t.Errorf("crossing-regime overshoot too large: %.3f", worstGap)
	}
}

// TestCrossingRegime forces the regime where compression capacity can
// exceed residual tardiness (large U, tight unrestricted due date). The
// all-or-nothing rule may then overshoot; assert it stays feasible and
// close to the exhaustive optimum, and that crossing actually occurs so
// the code path is exercised.
func TestCrossingRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	crossings, trials := 0, 0
	var worstGap float64
	for trial := 0; trial < 250; trial++ {
		n := 2 + rng.Intn(5)
		in := randomInstance(rng, n, 10) // capacity up to P-1
		in.D = in.SumP()                 // tightest unrestricted due date
		seq := randomSequence(rng, n)
		got := OptimizeSequence(in, seq)
		want := ReferenceOptimize(in, seq)
		trials++
		if got.Cost < want.Cost {
			t.Fatalf("trial %d: %d beats optimum %d", trial, got.Cost, want.Cost)
		}
		if hasCrossing(in, seq, got) {
			crossings++
		}
		gap := float64(got.Cost-want.Cost) / float64(maxI64(want.Cost, 1))
		if gap > worstGap {
			worstGap = gap
		}
	}
	t.Logf("trials=%d crossings=%d worstGap=%.3f", trials, crossings, worstGap)
	if worstGap > 1.0 {
		t.Errorf("overshoot beyond documented bound: %.3f", worstGap)
	}
}

// TestQuickFeasibility uses testing/quick: the result must always describe
// a feasible schedule whose exact evaluation equals the reported cost, and
// compressions must respect the per-job bounds.
func TestQuickFeasibility(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(5))}
	property := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%10)
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, n, 4)
		seq := randomSequence(rng, n)
		res := OptimizeSequence(in, seq)
		s := problem.Schedule{Seq: seq, Start: res.Start, X: res.X}
		if err := s.Validate(in); err != nil {
			return false
		}
		return s.Cost(in) == res.Cost
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestCompressionNeverHurts asserts the compression phase never returns a
// worse cost than the plain CDD timing of the same sequence.
func TestCompressionNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		in := randomInstance(rng, n, 3)
		seq := randomSequence(rng, n)
		res := OptimizeSequence(in, seq)
		plain := problem.SequenceCost(in, seq, res.Start, nil)
		// Compare against the best uncompressed timing instead of the same
		// start: recompute via a zero-compression evaluation.
		uncompressed := OptimizeSequenceNoCompression(in, seq)
		if res.Cost > uncompressed {
			t.Fatalf("trial %d: compression phase worsened cost: %d > %d (plain at same start %d)",
				trial, res.Cost, uncompressed, plain)
		}
	}
}

// TestNoCompressionCapacity checks that an instance with M == P everywhere
// reduces exactly to the CDD optimum.
func TestNoCompressionCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		in := randomInstance(rng, n, 0)
		seq := randomSequence(rng, n)
		res := OptimizeSequence(in, seq)
		if want := OptimizeSequenceNoCompression(in, seq); res.Cost != want {
			t.Fatalf("trial %d: with zero capacity cost %d, CDD optimum %d", trial, res.Cost, want)
		}
		for i, x := range res.X {
			if x != 0 {
				t.Fatalf("trial %d: job %d compressed by %d with zero capacity", trial, i, x)
			}
		}
	}
}

// TestEvaluatorReuse verifies scratch state does not leak between calls.
func TestEvaluatorReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := randomInstance(rng, 15, 3)
	e := NewEvaluator(in)
	seqA := randomSequence(rng, 15)
	seqB := randomSequence(rng, 15)
	a1, b1 := e.Cost(seqA), e.Cost(seqB)
	a2, b2 := e.Cost(seqA), e.Cost(seqB)
	if a1 != a2 || b1 != b2 {
		t.Errorf("evaluator not reusable: a %d/%d, b %d/%d", a1, a2, b1, b2)
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func BenchmarkOptimizeSequence(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10, 100, 1000} {
		in := randomInstance(rng, n, 5)
		seq := randomSequence(rng, n)
		e := NewEvaluator(in)
		name := map[int]string{10: "n10", 100: "n100", 1000: "n1000"}[n]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.Cost(seq)
			}
		})
	}
}
