package ucddcp

import "repro/internal/cdd"

// This file holds the batched form of the two-phase UCDDCP core: B
// sequences stored as rows of one flat matrix scored per call, each row
// through the exact single-row OptimizeArrays — so costs and abstract
// op counts are bit-identical to the per-sequence path by construction
// (the verify oracle chain and FuzzBatchEvaluator enforce it anyway).
// The batch win is amortization, not a different kernel: one call
// reuses one set of hoisted SoA columns and scratch rows across B
// evaluations, and always evaluates with x = nil, so the per-call
// n-element compression-vector zeroing of Evaluator.Cost (which must
// keep its Result contract) disappears. A pair-interleaved variant
// (two rows per sweep, independent running-sum chains) was measured
// against this loop and won nothing: the sweep is throughput-bound,
// not latency-bound, so the extra live state only costs registers.

// BatchCostArrays scores B = len(costs) sequences stored row-major in
// rows (len(rows) ≥ B·n) into costs. comp (length ≥ n) is the
// completion-time scratch row and scratch (length ≥ n) the compression
// phase's early-side buffer; both are reused across rows, so the call
// is allocation-free.
func BatchCostArrays[S cdd.Index](rows []S, n int, p, m, alpha, beta, gamma []int64, d int64, comp, scratch, costs []int64) {
	for i := range costs {
		costs[i], _, _, _ = OptimizeArrays(rows[i*n:(i+1)*n], p, m, alpha, beta, gamma, d, comp[:n], scratch[:n], nil)
	}
}

// BatchFitnessArrays is the device-kernel form of BatchCostArrays: it
// additionally records each row's abstract operation count (the value
// OptimizeArrays returns, which the simulated device converts into cycle
// charges) into ops, index-aligned with costs.
func BatchFitnessArrays[S cdd.Index](rows []S, n int, p, m, alpha, beta, gamma []int64, d int64, comp, scratch, costs []int64, ops []int) {
	for i := range costs {
		costs[i], _, _, ops[i] = OptimizeArrays(rows[i*n:(i+1)*n], p, m, alpha, beta, gamma, d, comp[:n], scratch[:n], nil)
	}
}
