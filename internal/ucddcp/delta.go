package ucddcp

import (
	"repro/internal/cdd"
	"repro/internal/problem"
)

// Delta is the incremental UCDDCP evaluator. Phase 1 (the CDD timing of
// the uncompressed sequence) is fully incremental through cdd.Delta —
// O(k + log n · log k) per proposal — while the compression phase, whose
// all-or-nothing decisions are global, re-runs on materialized completion
// times in one O(n) sweep. That still removes the completion-time sweep
// and the standalone cost pass from the candidate evaluation, and commits
// are windowed updates of the phase-1 cache.
//
// The generic index type lets the host drivers ([]int) and the simulated
// GPU pipeline ([]int32) share the implementation. Not safe for
// concurrent use.
type Delta[S cdd.Index] struct {
	p, m, alpha, beta, gamma []int64
	d                        int64
	dl                       *cdd.Delta[S]
	comp, scratch            []int64
	cost                     int64 // committed UCDDCP cost
	pendCost                 int64
	pendValid                bool
}

// NewDelta builds an incremental evaluator over the parameter arrays (as
// produced by ParamArrays) and due date. Reset must be called before the
// first Propose.
func NewDelta[S cdd.Index](p, m, alpha, beta, gamma []int64, d int64) *Delta[S] {
	n := len(p)
	return &Delta[S]{
		p: p, m: m, alpha: alpha, beta: beta, gamma: gamma, d: d,
		dl:      cdd.NewDelta[S](p, alpha, beta, d),
		comp:    make([]int64, n),
		scratch: make([]int64, n),
	}
}

// Reset caches seq as the committed base sequence and returns its
// optimized UCDDCP cost.
func (dl *Delta[S]) Reset(seq []S) int64 {
	dl.dl.Reset(seq)
	dl.cost = dl.evalFull(seq)
	dl.pendValid = false
	return dl.cost
}

// evalFull is a stateless fused full pass over seq using the delta's
// scratch buffers (the propose/commit cache is untouched).
func (dl *Delta[S]) evalFull(seq []S) int64 {
	cost, _, _, _ := OptimizeArrays(seq, dl.p, dl.m, dl.alpha, dl.beta, dl.gamma, dl.d, dl.comp, dl.scratch, nil)
	return cost
}

// Propose evaluates cand, which must equal the committed base sequence
// everywhere outside positions, returning its optimized cost —
// bit-identical to a full pass — without mutating the committed cache.
func (dl *Delta[S]) Propose(cand []S, positions []int) int64 {
	dl.dl.Propose(cand, positions)
	_, shiftAll, r := dl.dl.Pending()
	dl.dl.MaterializeComp(dl.comp)
	if shiftAll != 0 {
		for pos := range dl.comp {
			dl.comp[pos] += shiftAll
		}
	}
	cost, _, _ := compressArrays(cand, dl.p, dl.m, dl.alpha, dl.beta, dl.gamma, dl.d, r, dl.comp, dl.scratch, nil)
	dl.pendCost = cost
	dl.pendValid = true
	return cost
}

// Commit adopts the pending candidate as the new committed base sequence.
// Panics without a pending proposal.
func (dl *Delta[S]) Commit() {
	dl.dl.Commit()
	dl.cost = dl.pendCost
	dl.pendValid = false
}

// Committed returns the committed base sequence's optimized cost.
func (dl *Delta[S]) Committed() int64 { return dl.cost }

// DeltaEvaluator is the host-side incremental evaluator for the UCDDCP
// problem, satisfying both the plain fitness interface and the
// propose/commit protocol. Not safe for concurrent use.
type DeltaEvaluator struct {
	in *problem.Instance
	dl *Delta[int]
}

// NewDeltaEvaluator returns an incremental evaluator for the instance.
func NewDeltaEvaluator(in *problem.Instance) *DeltaEvaluator {
	p, m, alpha, beta, gamma := ParamArrays(in)
	return &DeltaEvaluator{in: in, dl: NewDelta[int](p, m, alpha, beta, gamma, in.D)}
}

// Instance returns the instance the evaluator was built for.
func (e *DeltaEvaluator) Instance() *problem.Instance { return e.in }

// Cost evaluates seq from scratch with the fused full pass. It is
// independent of the propose/commit cache (a pending proposal survives it).
func (e *DeltaEvaluator) Cost(seq []int) int64 { return e.dl.evalFull(seq) }

// Reset caches seq as the committed base sequence and returns its cost.
func (e *DeltaEvaluator) Reset(seq []int) int64 { return e.dl.Reset(seq) }

// Propose evaluates a candidate differing from the base at (a subset of)
// positions without mutating the cache.
func (e *DeltaEvaluator) Propose(cand []int, positions []int) int64 {
	return e.dl.Propose(cand, positions)
}

// Commit adopts the pending candidate as the new base sequence.
func (e *DeltaEvaluator) Commit() { e.dl.Commit() }
