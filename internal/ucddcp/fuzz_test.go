package ucddcp_test

import (
	"testing"

	"repro/internal/problem"
	"repro/internal/ucddcp"
	"repro/internal/xrand"
)

// ucddcpFromBytes decodes a fuzzer payload into a valid UCDDCP instance:
// five bytes per job (p, m, α, β, γ, with m folded into [1, p] and zero
// penalties allowed), due date in the unrestricted band [ΣP, 2·ΣP].
// Returns nil when the payload is too short.
func ucddcpFromBytes(data []byte, dRaw uint64) *problem.Instance {
	n := len(data) / 5
	if n < 1 {
		return nil
	}
	if n > 20 {
		n = 20
	}
	p := make([]int, n)
	m := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	gamma := make([]int, n)
	var sum uint64
	for i := 0; i < n; i++ {
		p[i] = 1 + int(data[5*i]%20)
		m[i] = 1 + int(data[5*i+1])%p[i]
		alpha[i] = int(data[5*i+2] % 11)
		beta[i] = int(data[5*i+3] % 16)
		gamma[i] = int(data[5*i+4] % 11)
		sum += uint64(p[i])
	}
	in, err := problem.NewUCDDCP("fuzz", p, m, alpha, beta, gamma, int64(sum+dRaw%(sum+1)))
	if err != nil {
		panic(err) // valid by construction
	}
	return in
}

// FuzzUCDDCPDeltaVsFull drives the controllable problem's incremental
// evaluator (whose Propose must re-run the two-phase compression on the
// corrected completion times) through a random walk of swap and
// segment-reversal moves, cross-checking every proposal against the
// stateless full pass.
func FuzzUCDDCPDeltaVsFull(f *testing.F) {
	f.Add([]byte{6, 5, 7, 9, 5, 5, 5, 9, 5, 4, 2, 2, 6, 4, 3, 4, 3, 9, 3, 2, 4, 3, 3, 2, 1}, uint64(1), uint64(1))
	f.Add([]byte{20, 0, 0, 0, 10, 1, 0, 10, 15, 0}, uint64(5), uint64(9))
	f.Fuzz(func(t *testing.T, data []byte, dRaw, seed uint64) {
		in := ucddcpFromBytes(data, dRaw)
		if in == nil {
			t.Skip("payload too short for one job")
		}
		n := in.N()
		rng := xrand.New(seed | 1)
		dl := ucddcp.NewDeltaEvaluator(in)
		full := ucddcp.NewEvaluator(in)
		base := problem.IdentitySequence(n)
		if got, want := dl.Reset(base), full.Cost(base); got != want {
			t.Fatalf("Reset=%d, full=%d on identity", got, want)
		}
		cand := make([]int, n)
		for step := 0; step < 24; step++ {
			copy(cand, base)
			var pos []int
			if rng.Intn(2) == 0 || n < 3 {
				i, j := rng.Intn(n), rng.Intn(n)
				cand[i], cand[j] = cand[j], cand[i]
				pos = []int{i, j}
			} else {
				l := rng.Intn(n - 1)
				r := l + 1 + rng.Intn(n-l-1)
				for a, b := l, r; a < b; a, b = a+1, b-1 {
					cand[a], cand[b] = cand[b], cand[a]
				}
				for k := l; k <= r; k++ {
					pos = append(pos, k)
				}
			}
			if got, want := dl.Propose(cand, pos), full.Cost(cand); got != want {
				t.Fatalf("step %d: Propose=%d, full=%d (d=%d base=%v cand=%v pos=%v)",
					step, got, want, in.D, base, cand, pos)
			}
			if rng.Intn(2) == 0 {
				dl.Commit()
				copy(base, cand)
			}
		}
	})
}
