package ucddcp

import "repro/internal/cdd"

// This file holds the array-based generic cores of the two-phase UCDDCP
// linear algorithm, shared verbatim between the host evaluator ([]int
// sequences) and the simulated GPU fitness kernel ([]int32 rows), so the
// two cannot drift. The cores are fused: the CDD phase runs inline
// (carrying only the Σα/Σβ aggregates its breakpoint walk needs), the
// tardy-side compression applies shifts and accumulates the final penalty
// inside the decision loop itself, and the early side folds the penalty
// into its apply sweep — the standalone O(n) final-cost pass of the
// original implementation is gone.

// OptimizeArrays runs the full two-phase algorithm on primitive parameter
// arrays (indexed by job id). comp and scratch are caller-provided
// length-n scratch; on return comp holds the final (shifted, compressed)
// completion times. x, when non-nil, must be zeroed length-n storage
// indexed by job id and receives the per-job compressions (the device
// kernel passes nil). The returned ops is the abstract operation count the
// simulated device converts into cycle charges.
func OptimizeArrays[S cdd.Index](seq []S, p, m, alpha, beta, gamma []int64, d int64, comp, scratch, x []int64) (cost, start int64, dueJob, ops int) {
	n := len(seq)

	// Phase 1: CDD timing of the uncompressed sequence. Only the due-date
	// position r and the resulting shift are needed downstream, so the walk
	// carries just the Σα/Σβ aggregates.
	var t int64
	tau := 0
	var a, b int64
	for pos, job := range seq {
		t += p[job]
		comp[pos] = t
		if t <= d {
			tau = pos + 1
			a += alpha[job]
		} else {
			b += beta[job]
		}
	}
	ops = 6 * n
	r := 0
	var shiftAll int64
	if tau > 0 && !(comp[tau-1] < d && b >= a) {
		r = tau
		a -= alpha[seq[r-1]]
		b += beta[seq[r-1]]
		for r > 1 && a > b {
			r--
			a -= alpha[seq[r-1]]
			b += beta[seq[r-1]]
			ops += 4
		}
		shiftAll = d - comp[r-1]
	}
	if shiftAll != 0 {
		for pos := range comp[:n] {
			comp[pos] += shiftAll
		}
		ops += n
	}

	cost, x0, cops := compressArrays(seq, p, m, alpha, beta, gamma, d, r, comp, scratch, x)
	ops += cops
	start = comp[0] - (p[seq[0]] - x0)
	return cost, start, r, ops
}

// compressArrays runs the all-or-nothing compression phase (Section IV-B)
// over comp, which must hold the phase-1 completion times with the optimal
// CDD shift already applied; r is the 1-based due-date position (0 in the
// degenerate no-due-job case). It returns the exact total objective value
// Σ α·E + β·T + γ·X of the schedule it builds — penalties are accumulated
// inside the apply sweeps — together with the compression of the job at
// position 0 (which the caller needs for the start time). scratch is
// length-n; x is as in OptimizeArrays. On return comp holds the final
// completion times.
func compressArrays[S cdd.Index](seq []S, p, m, alpha, beta, gamma []int64, d int64, r int, comp, scratch, x []int64) (cost, x0 int64, ops int) {
	n := len(seq)

	// Tardy side — ascending sweep over positions r..n-1. Invariants at
	// cursor pos: shift = Σ compressions decided at positions < pos (plus
	// pos itself once decided); positions q < pos already hold their final
	// completion in comp[q], positions q ≥ pos currently complete at
	// comp[q]−shift; tp = smallest position whose current completion
	// exceeds d (the still-tardy set, completions strictly increasing);
	// sbPos/sbTp = Σ β over positions ≥ pos resp. ≥ tp. The shift is
	// applied to comp[pos] immediately after the decision — shAcc[pos] of
	// the two-pass formulation is exactly the shift at that moment — and
	// the position's final penalty is folded in right there.
	var shift int64
	tp := r
	var sbTp int64
	for q := tp; q < n; q++ {
		sbTp += beta[seq[q]]
	}
	for tp < n && comp[tp] <= d { // only reachable when r == 0
		sbTp -= beta[seq[tp]]
		tp++
	}
	sbPos := sbTp
	for q := tp - 1; q >= r; q-- {
		sbPos += beta[seq[q]]
	}
	ops = 2 * (n - r)
	for pos := r; pos < n; pos++ {
		for tp < n {
			cur := comp[tp] // tp < pos: already final
			if tp >= pos {
				cur = comp[tp] - shift
			}
			if cur > d {
				break
			}
			sbTp -= beta[seq[tp]]
			tp++
		}
		job := seq[pos]
		u := p[job] - m[job]
		if u > 0 {
			// Compressing position pos shifts positions ≥ pos left; the
			// benefiting jobs are the still-tardy ones among them, i.e.
			// positions ≥ max(pos, tp).
			benefit := sbPos
			if tp > pos {
				benefit = sbTp
			}
			if benefit > gamma[job] {
				shift += u
				cost += gamma[job] * u
				if x != nil {
					x[job] = u
				}
				if pos == 0 {
					x0 = u
				}
			}
		}
		comp[pos] -= shift
		c := comp[pos]
		if c < d {
			cost += alpha[job] * (d - c)
		} else {
			cost += beta[job] * (c - d)
		}
		sbPos -= beta[job]
		ops += 10
	}

	// Early side — positions 0..r-1. Compressing the job at position pos
	// keeps its completion fixed and pushes positions 0..pos-1 right, so
	// the benefit is the α-sum of the preceding positions, independent of
	// other early compressions. Decisions sweep forward recording each
	// position's compression in scratch; the apply sweep walks backward
	// accumulating the right-shift and folding in the final penalties.
	var aPrefix int64
	for pos := 0; pos < r; pos++ {
		job := seq[pos]
		u := p[job] - m[job]
		xe := int64(0)
		if u > 0 && aPrefix > gamma[job] {
			xe = u
			cost += gamma[job] * u
			if x != nil {
				x[job] = u
			}
			if pos == 0 {
				x0 = u
			}
		}
		scratch[pos] = xe
		aPrefix += alpha[job]
		ops += 5
	}
	var rightShift int64
	for pos := r - 1; pos >= 0; pos-- {
		comp[pos] += rightShift
		rightShift += scratch[pos]
		job := seq[pos]
		c := comp[pos]
		if c < d {
			cost += alpha[job] * (d - c)
		} else {
			cost += beta[job] * (c - d)
		}
		ops += 6
	}
	return cost, x0, ops
}
