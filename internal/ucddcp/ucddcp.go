// Package ucddcp implements the O(n) optimizer for a fixed job sequence of
// the Unrestricted Common Due-Date problem with Controllable Processing
// Times, after Awasthi, Lässig and Kramer, "Un-restricted common due-date
// problem with controllable processing times: Linear algorithm for a given
// job sequence" (ICEIS 2015), as used as the inner layer of the two-layered
// GPU approach in Awasthi et al. (IPDPSW 2016).
//
// The algorithm runs in two phases:
//
//  1. CDD phase — time the uncompressed sequence optimally with the linear
//     CDD algorithm. By Property 1 of the paper, the position r of the job
//     completing at the due date does not change when compression is
//     introduced.
//  2. Compression phase — by Property 2, if compressing a job improves the
//     solution at all, compressing it to its minimum processing time is
//     optimal ("all or nothing"). A tardy job j (position > r) is
//     compressed when the tardiness penalties of the still-tardy jobs from
//     j onwards exceed γ_j; compressing it pulls the whole suffix towards
//     the due date. An early (or on-time) job j is compressed when the
//     earliness penalties of all preceding jobs exceed γ_j; compressing it
//     pushes the prefix right, towards the due date, while job j's own
//     completion stays fixed.
//
// With the due-date job anchored at position r, a tardy job can never be
// pulled across the due date by compression: the completion of the job at
// position q > r is d + Σ_{k=r+1..q}(P_k−X_k) ≥ d + (q−r)·min M ≥ d+1, so
// the all-or-nothing rule is exact and the benefit sums are plain suffix
// sums (confirmed against the exhaustive reference solver in tests). The
// tardy side nevertheless uses a two-pointer sweep over the still-tardy
// suffix so that the degenerate r = 0 case (restrictive due date or
// all-zero α, outside the paper's UCDDCP domain) is also handled
// gracefully; there the start-time anchor replaces the due-date anchor and
// consumed tardiness must be tracked. The returned cost is always the
// exact objective value of the schedule actually constructed.
package ucddcp

import (
	"repro/internal/cdd"
	"repro/internal/problem"
)

// Result describes the optimized timing and compression of a fixed
// sequence.
type Result struct {
	// Cost is the total penalty Σ α·E + β·T + γ·X of the returned
	// schedule, evaluated exactly.
	Cost int64
	// Start is the start time of the first job.
	Start int64
	// DueJob is the 1-based position of the job completing at the due date
	// after the CDD phase (Property 1: unchanged by compression), or 0 in
	// the degenerate no-due-job case.
	DueJob int
	// X is the compression per job, indexed by job id. Results returned by
	// Evaluator.Optimize alias the evaluator's scratch buffer and are
	// valid until the next call; OptimizeSequence returns a private copy.
	X []int64
}

// OptimizeSequence optimizes the timing and compressions of the fixed
// sequence seq. The returned Result owns its X slice.
func OptimizeSequence(in *problem.Instance, seq []int) Result {
	e := NewEvaluator(in)
	res := e.Optimize(seq)
	x := make([]int64, len(res.X))
	copy(x, res.X)
	res.X = x
	return res
}

// OptimizeSequenceNoCompression returns the optimal cost of the sequence
// with all compressions forced to zero — the plain CDD timing of the same
// sequence. It is the natural upper bound for Optimize's cost.
func OptimizeSequenceNoCompression(in *problem.Instance, seq []int) int64 {
	return cdd.OptimizeSequence(in, seq).Cost
}

// Evaluator evaluates sequences of one UCDDCP instance repeatedly without
// allocation. Not safe for concurrent use; create one per goroutine (or
// per simulated GPU thread).
type Evaluator struct {
	in *problem.Instance
	// Job parameters widened to int64 once, indexed by job id.
	p, m, alpha, beta, gamma []int64
	comp                     []int64 // completion times by position
	x                        []int64 // compression by job id
	scratch                  []int64 // early-side per-position compressions
}

// NewEvaluator returns an evaluator for the given instance.
func NewEvaluator(in *problem.Instance) *Evaluator {
	p, m, alpha, beta, gamma := ParamArrays(in)
	return &Evaluator{
		in: in, p: p, m: m, alpha: alpha, beta: beta, gamma: gamma,
		comp:    make([]int64, in.N()),
		x:       make([]int64, in.N()),
		scratch: make([]int64, in.N()),
	}
}

// ParamArrays widens the instance's job parameters into the job-indexed
// int64 arrays the array-based evaluation cores consume (the layout the
// GPU pipeline keeps in device memory).
func ParamArrays(in *problem.Instance) (p, m, alpha, beta, gamma []int64) {
	n := in.N()
	p = make([]int64, n)
	m = make([]int64, n)
	alpha = make([]int64, n)
	beta = make([]int64, n)
	gamma = make([]int64, n)
	for i, j := range in.Jobs {
		p[i], m[i] = int64(j.P), int64(j.M)
		alpha[i], beta[i], gamma[i] = int64(j.Alpha), int64(j.Beta), int64(j.Gamma)
	}
	return p, m, alpha, beta, gamma
}

// Instance returns the instance the evaluator was built for.
func (e *Evaluator) Instance() *problem.Instance { return e.in }

// Cost returns only the optimized penalty of the sequence; it is the
// fitness function used by the metaheuristics.
func (e *Evaluator) Cost(seq []int) int64 { return e.Optimize(seq).Cost }

// Optimize runs the two-phase linear algorithm on the sequence, delegating
// to the fused array core shared with the simulated GPU fitness kernel
// (see OptimizeArrays): the CDD phase runs inline and the compression
// sweeps fold the final penalty accumulation into their apply loops, so no
// standalone cost pass remains. The Result's X slice aliases evaluator
// scratch and is valid until the next call.
func (e *Evaluator) Optimize(seq []int) Result {
	n := len(seq)
	x := e.x[:n]
	for i := range x {
		x[i] = 0
	}
	cost, start, r, _ := OptimizeArrays(seq, e.p, e.m, e.alpha, e.beta, e.gamma, e.in.D, e.comp[:n], e.scratch[:n], x)
	return Result{Cost: cost, Start: start, DueJob: r, X: x}
}
