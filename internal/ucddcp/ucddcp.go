// Package ucddcp implements the O(n) optimizer for a fixed job sequence of
// the Unrestricted Common Due-Date problem with Controllable Processing
// Times, after Awasthi, Lässig and Kramer, "Un-restricted common due-date
// problem with controllable processing times: Linear algorithm for a given
// job sequence" (ICEIS 2015), as used as the inner layer of the two-layered
// GPU approach in Awasthi et al. (IPDPSW 2016).
//
// The algorithm runs in two phases:
//
//  1. CDD phase — time the uncompressed sequence optimally with the linear
//     CDD algorithm. By Property 1 of the paper, the position r of the job
//     completing at the due date does not change when compression is
//     introduced.
//  2. Compression phase — by Property 2, if compressing a job improves the
//     solution at all, compressing it to its minimum processing time is
//     optimal ("all or nothing"). A tardy job j (position > r) is
//     compressed when the tardiness penalties of the still-tardy jobs from
//     j onwards exceed γ_j; compressing it pulls the whole suffix towards
//     the due date. An early (or on-time) job j is compressed when the
//     earliness penalties of all preceding jobs exceed γ_j; compressing it
//     pushes the prefix right, towards the due date, while job j's own
//     completion stays fixed.
//
// With the due-date job anchored at position r, a tardy job can never be
// pulled across the due date by compression: the completion of the job at
// position q > r is d + Σ_{k=r+1..q}(P_k−X_k) ≥ d + (q−r)·min M ≥ d+1, so
// the all-or-nothing rule is exact and the benefit sums are plain suffix
// sums (confirmed against the exhaustive reference solver in tests). The
// tardy side nevertheless uses a two-pointer sweep over the still-tardy
// suffix so that the degenerate r = 0 case (restrictive due date or
// all-zero α, outside the paper's UCDDCP domain) is also handled
// gracefully; there the start-time anchor replaces the due-date anchor and
// consumed tardiness must be tracked. The returned cost is always the
// exact objective value of the schedule actually constructed.
package ucddcp

import (
	"repro/internal/cdd"
	"repro/internal/problem"
)

// Result describes the optimized timing and compression of a fixed
// sequence.
type Result struct {
	// Cost is the total penalty Σ α·E + β·T + γ·X of the returned
	// schedule, evaluated exactly.
	Cost int64
	// Start is the start time of the first job.
	Start int64
	// DueJob is the 1-based position of the job completing at the due date
	// after the CDD phase (Property 1: unchanged by compression), or 0 in
	// the degenerate no-due-job case.
	DueJob int
	// X is the compression per job, indexed by job id. Results returned by
	// Evaluator.Optimize alias the evaluator's scratch buffer and are
	// valid until the next call; OptimizeSequence returns a private copy.
	X []int64
}

// OptimizeSequence optimizes the timing and compressions of the fixed
// sequence seq. The returned Result owns its X slice.
func OptimizeSequence(in *problem.Instance, seq []int) Result {
	e := NewEvaluator(in)
	res := e.Optimize(seq)
	x := make([]int64, len(res.X))
	copy(x, res.X)
	res.X = x
	return res
}

// OptimizeSequenceNoCompression returns the optimal cost of the sequence
// with all compressions forced to zero — the plain CDD timing of the same
// sequence. It is the natural upper bound for Optimize's cost.
func OptimizeSequenceNoCompression(in *problem.Instance, seq []int) int64 {
	return cdd.OptimizeSequence(in, seq).Cost
}

// Evaluator evaluates sequences of one UCDDCP instance repeatedly without
// allocation. Not safe for concurrent use; create one per goroutine (or
// per simulated GPU thread).
type Evaluator struct {
	in    *problem.Instance
	cdd   *cdd.Evaluator
	comp  []int64 // completion times by position
	x     []int64 // compression by job id
	shAcc []int64 // cumulative tardy-side compression applied up to each position
}

// NewEvaluator returns an evaluator for the given instance.
func NewEvaluator(in *problem.Instance) *Evaluator {
	return &Evaluator{
		in:    in,
		cdd:   cdd.NewEvaluator(in),
		comp:  make([]int64, in.N()),
		x:     make([]int64, in.N()),
		shAcc: make([]int64, in.N()),
	}
}

// Instance returns the instance the evaluator was built for.
func (e *Evaluator) Instance() *problem.Instance { return e.in }

// Cost returns only the optimized penalty of the sequence; it is the
// fitness function used by the metaheuristics.
func (e *Evaluator) Cost(seq []int) int64 { return e.Optimize(seq).Cost }

// Optimize runs the two-phase linear algorithm on the sequence. The
// Result's X slice aliases evaluator scratch and is valid until the next
// call.
func (e *Evaluator) Optimize(seq []int) Result {
	jobs := e.in.Jobs
	d := e.in.D
	n := len(seq)

	// Phase 1: optimal timing of the uncompressed sequence.
	base := e.cdd.Optimize(seq)
	comp := e.comp[:n]
	t := base.Start
	for pos, job := range seq {
		t += int64(jobs[job].P)
		comp[pos] = t
	}
	x := e.x[:n]
	for i := range x {
		x[i] = 0
	}
	r := base.DueJob // 1-based; 0-based index of the due-date job is r-1

	// Phase 2a: tardy side — 0-based positions r..n-1. (When r == 0, no
	// job completes at d — restrictive due date or all-zero α — and the
	// whole sequence is treated as the tardy side; compressing any job
	// then shortens the suffix while the start time is unaffected.)
	//
	// Invariants of the ascending sweep at cursor position pos:
	//   shift        = Σ of compressions decided at positions < pos; every
	//                  position q ≥ pos currently completes at comp[q]−shift.
	//   shAcc[q]     = Σ of compressions decided at positions ≤ q (q < pos);
	//                  position q < pos currently completes at comp[q]−shAcc[q].
	//   tp           = smallest position whose current completion exceeds d
	//                  (the still-tardy set is exactly {q : q ≥ tp} because
	//                  current completions are strictly increasing: each
	//                  step adds P−x ≥ M ≥ 1).
	//   sbPos, sbTp  = Σ β over positions ≥ pos resp. ≥ tp.
	shAcc := e.shAcc[:n]
	var shift int64
	tp := r
	var sbTp int64
	for q := tp; q < n; q++ {
		sbTp += int64(jobs[seq[q]].Beta)
	}
	for tp < n && comp[tp] <= d { // only reachable when r == 0
		sbTp -= int64(jobs[seq[tp]].Beta)
		tp++
	}
	sbPos := sbTp
	if r < tp {
		// sbPos must start as the suffix sum from position r.
		sbPos = sbTp
		for q := tp - 1; q >= r; q-- {
			sbPos += int64(jobs[seq[q]].Beta)
		}
	}
	for pos := r; pos < n; pos++ {
		// Advance tp past positions whose tardiness has been consumed.
		for tp < n {
			cur := comp[tp] - shift
			if tp < pos {
				cur = comp[tp] - shAcc[tp]
			}
			if cur > d {
				break
			}
			sbTp -= int64(jobs[seq[tp]].Beta)
			tp++
		}
		job := seq[pos]
		u := int64(jobs[job].MaxCompression())
		if u > 0 {
			// Compressing position pos shifts positions ≥ pos left; the
			// benefiting jobs are the still-tardy ones among them, i.e.
			// positions ≥ max(pos, tp).
			benefit := sbPos
			if tp > pos {
				benefit = sbTp
			}
			if benefit > int64(jobs[job].Gamma) {
				x[job] = u
				shift += u
			}
		}
		shAcc[pos] = shift
		sbPos -= int64(jobs[seq[pos]].Beta)
	}
	// Apply tardy-side shifts to completion times.
	if shift > 0 {
		for pos := r; pos < n; pos++ {
			comp[pos] -= shAcc[pos]
		}
	}

	// Phase 2b: early side — 0-based positions 0..r-1. Compressing the job
	// at position pos keeps its completion fixed and pushes positions
	// 0..pos-1 right by its compression, so the benefit is the α-sum of
	// the preceding positions, independent of other early compressions
	// (all predecessors remain strictly early: their completions stay
	// below the compressed job's new start time, which is below d).
	var alphaPrefix int64
	for pos := 0; pos < r; pos++ {
		job := seq[pos]
		u := int64(jobs[job].MaxCompression())
		if u > 0 && alphaPrefix > int64(jobs[job].Gamma) {
			x[job] = u
		}
		alphaPrefix += int64(jobs[job].Alpha)
	}
	// Apply early-side shifts: position pos moves right by the total
	// compression of early positions after it.
	var rightShift int64
	for pos := r - 1; pos >= 0; pos-- {
		comp[pos] += rightShift
		rightShift += x[seq[pos]]
	}

	// Exact final cost from the resulting schedule.
	var cost int64
	for pos, job := range seq {
		j := jobs[job]
		c := comp[pos]
		if c < d {
			cost += int64(j.Alpha) * (d - c)
		} else {
			cost += int64(j.Beta) * (c - d)
		}
		cost += int64(j.Gamma) * x[job]
	}
	start := comp[0] - (int64(jobs[seq[0]].P) - x[seq[0]])
	return Result{Cost: cost, Start: start, DueJob: r, X: x}
}
