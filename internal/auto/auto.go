// Package auto is the self-tuning portfolio layer behind the facade's
// AUTO algorithm: a calibrated picker that maps an instance's shape
// (problem kind, job count, machine count) to the predicted-best static
// algorithm×engine pairing, plus the candidate sets an online race
// launches when a wall-clock budget allows comparing configurations
// live.
//
// The package deliberately knows pairings only by name ("SA" on
// "cpu-parallel"), never by the facade's enum types — the root package
// registers the AUTO driver and owns the dispatch, so auto stays
// import-cycle-free and testable in isolation. Every Choice the picker
// returns is validated against KnownPairings: a corrupt or hostile
// calibration file can change which known pairing is picked, but can
// never smuggle an unregistered one past the registry (FuzzAutoPick
// pins this).
package auto

import (
	"sort"

	"repro/internal/problem"
	"repro/internal/xrand"
)

// Choice is one concrete dispatch target: a registered pairing plus the
// tuning overrides the calibration sweep found best for its bucket.
// Zero override fields mean "leave the caller's option untouched".
type Choice struct {
	// Algorithm and Engine name the pairing in the facade's textual form
	// ("SA", "DPSO", "TA", "ES", "EXACT-DP" × "gpu", "cpu-parallel",
	// "cpu-serial").
	Algorithm string `json:"algorithm"`
	Engine    string `json:"engine"`
	// Grid and Block override the ensemble geometry (0 = keep).
	Grid  int `json:"grid,omitempty"`
	Block int `json:"block,omitempty"`
	// Iterations overrides the per-chain iteration budget (0 = keep).
	Iterations int `json:"iterations,omitempty"`
	// Workers overrides the host goroutine bound (0 = keep).
	Workers int `json:"workers,omitempty"`
}

// Pairing renders the choice's registry key ("SA/cpu-parallel") — the
// form used by Metrics.AutoPick and the race phase names.
func (c Choice) Pairing() string { return c.Algorithm + "/" + c.Engine }

// valid reports whether the choice names a known registered pairing and
// carries sane (non-negative) overrides. EXACT-DP is excluded: its
// dispatch is owned by the DP gates (Decision.AttemptDP), and as a
// bucket choice it could dead-end on kinds outside its exact domain.
func (c Choice) valid() bool {
	return c.Algorithm != "EXACT-DP" && KnownPairings[c.Pairing()] &&
		c.Grid >= 0 && c.Block >= 0 && c.Iterations >= 0 && c.Workers >= 0
}

// KnownPairings enumerates every static pairing the picker may return —
// the facade registry minus AUTO itself (the meta-driver never recurses).
// TestKnownPairingsRegistered in the root package asserts this set is a
// subset of the live duedate.Pairings(), so a registry change that drops
// a pairing fails fast here instead of at dispatch time.
var KnownPairings = map[string]bool{
	"SA/gpu":              true,
	"SA/cpu-parallel":     true,
	"SA/cpu-serial":       true,
	"DPSO/gpu":            true,
	"DPSO/cpu-parallel":   true,
	"DPSO/cpu-serial":     true,
	"TA/cpu-parallel":     true,
	"TA/cpu-serial":       true,
	"ES/cpu-parallel":     true,
	"ES/cpu-serial":       true,
	"EXACT-DP/cpu-serial": true,
}

// fallback is the pick of last resort when no calibration bucket applies
// (or the table is corrupt): the paper's best performer on the portable
// engine.
var fallback = Choice{Algorithm: "SA", Engine: "cpu-parallel"}

// Fallback returns the built-in default choice (SA on cpu-parallel).
func Fallback() Choice { return fallback }

// Decision is the picker's routing verdict for one instance shape.
type Decision struct {
	// AttemptDP routes the instance through EXACT-DP first: the shape is
	// inside the calibration's DP gates, so a proven optimum is likely
	// cheap. The dispatcher must still tolerate a typed decline (no
	// agreeable order, state budget) and fall back to Choice.
	AttemptDP bool
	// Choice is the predicted-best static pairing for a model-mode
	// (no-deadline) dispatch; always a member of KnownPairings.
	Choice Choice
	// Candidates is the racing set, leader first, deduplicated, every
	// entry in KnownPairings. Length 1 means "nothing worth racing" and
	// the dispatcher runs Choice directly even under a deadline.
	Candidates []Choice
}

// Pick routes one instance shape through the calibration table: DP gates
// first, then the smallest bucket of the kind covering n, with the
// built-in fallback when nothing matches. A nil receiver uses the gates
// and buckets of the embedded default table. The returned choices are
// always valid per KnownPairings regardless of the table's content.
func (c *Calibration) Pick(kind problem.Kind, n, machines int) Decision {
	if c == nil {
		c = Default()
	}
	d := Decision{Choice: fallback}
	switch {
	case kind == problem.CDD && machines <= 1 && n <= c.DP.CDDMaxN:
		d.AttemptDP = true
	case kind == problem.EARLYWORK && n <= c.DP.EarlyWorkMaxN:
		d.AttemptDP = true
	}
	if b := c.bucket(kind, n); b != nil {
		if b.Choice.valid() {
			d.Choice = b.Choice
		}
		for _, cand := range b.Candidates {
			if cand.valid() {
				d.Candidates = append(d.Candidates, cand)
			}
		}
	}
	d.Candidates = dedupChoices(d.Choice, d.Candidates)
	return d
}

// bucket returns the tightest bucket of the kind covering n: the
// smallest MaxN ≥ n, else the kind's open-ended bucket (MaxN ≤ 0), else
// the kind's largest bucket, else nil.
func (c *Calibration) bucket(kind problem.Kind, n int) *Bucket {
	var best, widest *Bucket
	for i := range c.Buckets {
		b := &c.Buckets[i]
		if b.Kind != kind.String() {
			continue
		}
		if b.MaxN <= 0 || b.MaxN >= n {
			if best == nil || boundOf(b) < boundOf(best) {
				best = b
			}
		}
		if widest == nil || boundOf(b) > boundOf(widest) {
			widest = b
		}
	}
	if best != nil {
		return best
	}
	return widest
}

// boundOf orders buckets: an unset MaxN is open-ended (sorts last).
func boundOf(b *Bucket) int {
	if b.MaxN <= 0 {
		return int(^uint(0) >> 1)
	}
	return b.MaxN
}

// dedupChoices places the leader first and removes pairing duplicates,
// keeping each pairing's first override set.
func dedupChoices(leader Choice, cands []Choice) []Choice {
	out := []Choice{leader}
	seen := map[string]bool{leader.Pairing(): true}
	for _, c := range cands {
		if seen[c.Pairing()] {
			continue
		}
		seen[c.Pairing()] = true
		out = append(out, c)
	}
	return out
}

// RaceSeeds derives one deterministic RNG seed per racing candidate from
// the caller's seed by SplitMix64 stream-splitting (the same generator
// xrand.NewStream uses to decorrelate chains): candidate i always
// receives the i-th split of the caller seed, so a race's per-candidate
// trajectories are reproducible even though which candidate wins a
// wall-clock race is not. Zero splits are remapped to 1 to respect the
// facade's Seed-0 sentinel.
func RaceSeeds(seed uint64, k int) []uint64 {
	state := seed
	out := make([]uint64, k)
	for i := range out {
		s := xrand.SplitMix64(&state)
		if s == 0 {
			s = 1
		}
		out[i] = s
	}
	return out
}

// sortBuckets normalizes table order (kind, then MaxN with open-ended
// last) so Marshal output is stable for diffing checked-in tables.
func sortBuckets(bs []Bucket) {
	sort.SliceStable(bs, func(i, j int) bool {
		if bs[i].Kind != bs[j].Kind {
			return bs[i].Kind < bs[j].Kind
		}
		return boundOf(&bs[i]) < boundOf(&bs[j])
	})
}
