package auto

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// CalibrationVersion is the schema version this package reads and
// writes; Parse rejects other versions so a stale checked-in table fails
// loudly instead of silently mis-routing.
const CalibrationVersion = 1

// DPGate bounds the instance shapes routed through EXACT-DP before any
// metaheuristic runs. The gates are deliberately generous: an attempt
// inside the gate can still decline with a typed error (no agreeable
// order, state budget exceeded) and costs only the O(n log n) domain
// check, so the gate's job is to skip hopeless attempts on big
// instances, not to predict success exactly.
type DPGate struct {
	// CDDMaxN admits single-machine CDD instances with n ≤ CDDMaxN to a
	// DP attempt (the DP itself additionally requires agreeable weights).
	CDDMaxN int `json:"cddMaxN"`
	// EarlyWorkMaxN admits EARLYWORK instances (any machine count) with
	// n ≤ EarlyWorkMaxN.
	EarlyWorkMaxN int `json:"earlyWorkMaxN"`
}

// Bucket is one row of the cost model: for instances of Kind with
// n ≤ MaxN, Choice is the measured-best configuration and Candidates the
// near-best set worth racing when a deadline allows it.
type Bucket struct {
	// Kind is the problem kind's textual name ("CDD", "UCDDCP",
	// "EARLYWORK").
	Kind string `json:"kind"`
	// MaxN is the bucket's inclusive upper job count; ≤ 0 means
	// open-ended (the kind's tail bucket).
	MaxN int `json:"maxN,omitempty"`
	// Choice is the predicted-best configuration for the bucket.
	Choice Choice `json:"choice"`
	// Candidates is the racing set (the sweep's top configurations);
	// Choice is implicitly its leader and need not be repeated.
	Candidates []Choice `json:"candidates,omitempty"`
	// MeanCost and Trials record the sweep evidence behind Choice (the
	// winning configuration's mean best cost over the bucket's fixed-seed
	// instances); informational only.
	MeanCost float64 `json:"meanCost,omitempty"`
	Trials   int     `json:"trials,omitempty"`
}

// Calibration is the offline cost model consulted by Pick: DP routing
// gates plus per-(kind, size) buckets, fit by cmd/autocal from
// fixed-seed sweeps and checked in as internal/auto/calibration.json.
type Calibration struct {
	// Version is the schema version (CalibrationVersion).
	Version int `json:"version"`
	// Source describes the sweep that produced the table (autocal
	// parameters); informational only.
	Source string `json:"source,omitempty"`
	// DP holds the EXACT-DP routing gates.
	DP DPGate `json:"dp"`
	// Buckets holds the model rows, sorted by kind then MaxN.
	Buckets []Bucket `json:"buckets"`
}

//go:embed calibration.json
var defaultCalibrationJSON []byte

var (
	defaultOnce sync.Once
	defaultCal  *Calibration
)

// Default returns the embedded checked-in calibration table. The
// embedded table is validated at first use; a build that embeds a
// corrupt table panics on the first AUTO solve rather than mis-routing
// silently.
func Default() *Calibration {
	defaultOnce.Do(func() {
		c, err := Parse(defaultCalibrationJSON)
		if err != nil {
			panic(fmt.Sprintf("auto: embedded calibration.json invalid: %v", err))
		}
		defaultCal = c
	})
	return defaultCal
}

// Parse decodes and validates a calibration table. Unknown pairings in
// buckets are tolerated here (Pick filters them per-lookup) so a table
// written by a newer binary still loads; structural problems — wrong
// version, malformed JSON — are errors.
func Parse(b []byte) (*Calibration, error) {
	var c Calibration
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("auto: parse calibration: %w", err)
	}
	if c.Version != CalibrationVersion {
		return nil, fmt.Errorf("auto: calibration version %d, want %d", c.Version, CalibrationVersion)
	}
	sortBuckets(c.Buckets)
	return &c, nil
}

// Load reads a calibration table from disk (cmd/autocal round-trips
// through it).
func Load(path string) (*Calibration, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("auto: load calibration: %w", err)
	}
	return Parse(b)
}

// Marshal renders the table in the checked-in format: sorted buckets,
// two-space indentation, trailing newline.
func (c *Calibration) Marshal() ([]byte, error) {
	sortBuckets(c.Buckets)
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
