package auto

import (
	"reflect"
	"testing"

	"repro/internal/problem"
)

func TestDefaultCalibrationLoads(t *testing.T) {
	c := Default()
	if c.Version != CalibrationVersion {
		t.Fatalf("embedded table version %d, want %d", c.Version, CalibrationVersion)
	}
	if len(c.Buckets) == 0 {
		t.Fatal("embedded table has no buckets")
	}
	if c.DP.CDDMaxN <= 0 || c.DP.EarlyWorkMaxN <= 0 {
		t.Fatalf("embedded DP gates are not set: %+v", c.DP)
	}
	for _, b := range c.Buckets {
		if !b.Choice.valid() {
			t.Errorf("bucket %s/%d carries an invalid choice %+v", b.Kind, b.MaxN, b.Choice)
		}
		for _, cand := range b.Candidates {
			if !cand.valid() {
				t.Errorf("bucket %s/%d carries an invalid candidate %+v", b.Kind, b.MaxN, cand)
			}
		}
	}
}

func TestPickDPGates(t *testing.T) {
	c := Default()
	cases := []struct {
		kind     problem.Kind
		n, m     int
		wantDP   bool
		scenario string
	}{
		{problem.CDD, 20, 1, true, "small single-machine CDD inside the gate"},
		{problem.CDD, c.DP.CDDMaxN, 1, true, "CDD exactly at the gate"},
		{problem.CDD, c.DP.CDDMaxN + 1, 1, false, "CDD just past the gate"},
		{problem.CDD, 20, 2, false, "multi-machine CDD is outside the DP domain"},
		{problem.EARLYWORK, 50, 3, true, "early work inside the gate at any machine count"},
		{problem.EARLYWORK, c.DP.EarlyWorkMaxN + 1, 1, false, "early work past the gate"},
		{problem.UCDDCP, 10, 1, false, "UCDDCP has no DP"},
	}
	for _, tc := range cases {
		if got := c.Pick(tc.kind, tc.n, tc.m).AttemptDP; got != tc.wantDP {
			t.Errorf("%s: Pick(%v, n=%d, m=%d).AttemptDP = %t, want %t",
				tc.scenario, tc.kind, tc.n, tc.m, got, tc.wantDP)
		}
	}
}

func TestPickChoicesAlwaysKnown(t *testing.T) {
	for _, kind := range []problem.Kind{problem.CDD, problem.UCDDCP, problem.EARLYWORK} {
		for _, n := range []int{1, 10, 64, 65, 500, 5000} {
			d := Default().Pick(kind, n, 1)
			if !d.Choice.valid() {
				t.Fatalf("Pick(%v, %d) returned invalid choice %+v", kind, n, d.Choice)
			}
			if len(d.Candidates) == 0 || d.Candidates[0].Pairing() != d.Choice.Pairing() {
				t.Fatalf("Pick(%v, %d) candidates must lead with the choice: %+v", kind, n, d.Candidates)
			}
			seen := map[string]bool{}
			for _, cand := range d.Candidates {
				if !cand.valid() {
					t.Fatalf("Pick(%v, %d) candidate %+v invalid", kind, n, cand)
				}
				if seen[cand.Pairing()] {
					t.Fatalf("Pick(%v, %d) candidates contain duplicate %s", kind, n, cand.Pairing())
				}
				seen[cand.Pairing()] = true
			}
		}
	}
}

// TestPickSanitizesCorruptTable feeds the picker a hostile table: every
// corrupt row must be filtered, falling back to the built-in default,
// and a valid row must survive untouched.
func TestPickSanitizesCorruptTable(t *testing.T) {
	c := &Calibration{
		Version: CalibrationVersion,
		Buckets: []Bucket{
			{Kind: "CDD", MaxN: 64, Choice: Choice{Algorithm: "EVIL", Engine: "gpu"},
				Candidates: []Choice{
					{Algorithm: "SA", Engine: "no-such-engine"},
					{Algorithm: "TA", Engine: "cpu-parallel", Grid: -1},
					{Algorithm: "DPSO", Engine: "cpu-serial"}, // the one valid candidate
				}},
			{Kind: "UCDDCP", MaxN: 64, Choice: Choice{Algorithm: "EXACT-DP", Engine: "cpu-serial"}},
			{Kind: "EARLYWORK", MaxN: 64, Choice: Choice{Algorithm: "ES", Engine: "cpu-parallel", Workers: 4}},
		},
	}
	d := c.Pick(problem.CDD, 10, 1)
	if d.Choice != fallback {
		t.Fatalf("corrupt choice not replaced by fallback: %+v", d.Choice)
	}
	wantCands := []Choice{fallback, {Algorithm: "DPSO", Engine: "cpu-serial"}}
	if !reflect.DeepEqual(d.Candidates, wantCands) {
		t.Fatalf("corrupt candidates not filtered: got %+v, want %+v", d.Candidates, wantCands)
	}

	// EXACT-DP as a bucket choice is rejected (DP dispatch is gate-owned).
	if d := c.Pick(problem.UCDDCP, 10, 1); d.Choice != fallback {
		t.Fatalf("EXACT-DP bucket choice not rejected: %+v", d.Choice)
	}

	// A valid row passes through with its overrides intact.
	if d := c.Pick(problem.EARLYWORK, 10, 1); d.Choice.Pairing() != "ES/cpu-parallel" || d.Choice.Workers != 4 {
		t.Fatalf("valid row mangled: %+v", d.Choice)
	}
}

func TestPickNilCalibrationUsesDefault(t *testing.T) {
	var c *Calibration
	got := c.Pick(problem.CDD, 10, 1)
	want := Default().Pick(problem.CDD, 10, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("nil-receiver Pick = %+v, want the default table's %+v", got, want)
	}
}

// TestBucketSelection pins the tightest-bucket rule: smallest MaxN ≥ n
// wins, the open-ended bucket catches the tail, and a kind whose every
// bucket is below n still resolves to its widest bucket.
func TestBucketSelection(t *testing.T) {
	c := &Calibration{Version: CalibrationVersion, Buckets: []Bucket{
		{Kind: "CDD", MaxN: 64, Choice: Choice{Algorithm: "SA", Engine: "cpu-serial"}},
		{Kind: "CDD", MaxN: 256, Choice: Choice{Algorithm: "TA", Engine: "cpu-serial"}},
		{Kind: "CDD", Choice: Choice{Algorithm: "ES", Engine: "cpu-serial"}},
		{Kind: "UCDDCP", MaxN: 32, Choice: Choice{Algorithm: "DPSO", Engine: "cpu-serial"}},
	}}
	for _, tc := range []struct {
		kind problem.Kind
		n    int
		want string
	}{
		{problem.CDD, 10, "SA/cpu-serial"},
		{problem.CDD, 64, "SA/cpu-serial"},
		{problem.CDD, 65, "TA/cpu-serial"},
		{problem.CDD, 1000, "ES/cpu-serial"},
		{problem.UCDDCP, 10, "DPSO/cpu-serial"},
		// No UCDDCP bucket covers n=100 and there is no tail bucket: the
		// widest available row still applies.
		{problem.UCDDCP, 100, "DPSO/cpu-serial"},
		// No EARLYWORK rows at all: built-in fallback.
		{problem.EARLYWORK, 10, fallback.Pairing()},
	} {
		if got := c.Pick(tc.kind, tc.n, 1).Choice.Pairing(); got != tc.want {
			t.Errorf("Pick(%v, n=%d) = %s, want %s", tc.kind, tc.n, got, tc.want)
		}
	}
}

func TestRaceSeedsDeterministicAndNonZero(t *testing.T) {
	a := RaceSeeds(42, 3)
	b := RaceSeeds(42, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("RaceSeeds not deterministic: %v vs %v", a, b)
	}
	if len(a) != 3 {
		t.Fatalf("RaceSeeds(42, 3) returned %d seeds", len(a))
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if s == 0 {
			t.Fatal("RaceSeeds produced the Seed-0 sentinel")
		}
		if seen[s] {
			t.Fatalf("RaceSeeds produced duplicate seed %d in %v", s, a)
		}
		seen[s] = true
	}
	// A prefix of a longer split must match (candidate i's stream does not
	// depend on how many lanes race).
	long := RaceSeeds(42, 5)
	if !reflect.DeepEqual(a, long[:3]) {
		t.Fatalf("RaceSeeds prefix not stable: %v vs %v", a, long[:3])
	}
	if reflect.DeepEqual(RaceSeeds(43, 3), a) {
		t.Fatal("different caller seeds produced identical race seeds")
	}
	// Seed 0 must not panic and still yields nonzero lanes.
	for _, s := range RaceSeeds(0, 4) {
		if s == 0 {
			t.Fatal("RaceSeeds(0, ...) produced a zero seed")
		}
	}
}

func TestCalibrationMarshalRoundTrip(t *testing.T) {
	orig := Default()
	blob, err := orig.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	again, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(again) {
		t.Fatalf("Marshal/Parse/Marshal is not a fixed point:\nfirst:  %s\nsecond: %s", blob, again)
	}
	// The embedded bytes themselves are the canonical form (checked-in
	// file stays regenerable without diff noise).
	if string(blob) != string(defaultCalibrationJSON) {
		t.Fatal("checked-in calibration.json is not in canonical Marshal form; regenerate with cmd/autocal")
	}
}

func TestParseRejectsBadTables(t *testing.T) {
	if _, err := Parse([]byte("{")); err == nil {
		t.Fatal("Parse accepted malformed JSON")
	}
	if _, err := Parse([]byte(`{"version": 99}`)); err == nil {
		t.Fatal("Parse accepted a future schema version")
	}
}

// FuzzAutoPick is satellite coverage for the picker's core safety
// property: whatever bytes are presented as a calibration table, every
// choice and candidate Pick returns must be a known registered pairing
// with sane overrides — a hostile table can never smuggle an
// unregistered pairing into the dispatcher.
func FuzzAutoPick(f *testing.F) {
	f.Add(defaultCalibrationJSON, 20, 1)
	f.Add([]byte(`{"version":1,"buckets":[{"kind":"CDD","choice":{"algorithm":"EVIL","engine":"gpu"}}]}`), 10, 1)
	f.Add([]byte(`{"version":1,"buckets":[{"kind":"CDD","maxN":-5,"choice":{"algorithm":"SA","engine":"cpu-parallel","grid":-7}}]}`), 3, 2)
	f.Add([]byte(`{"version":1,"dp":{"cddMaxN":-1,"earlyWorkMaxN":999999}}`), 100, 0)
	f.Fuzz(func(t *testing.T, blob []byte, n, machines int) {
		c, err := Parse(blob)
		if err != nil {
			return // structurally invalid tables are rejected up front
		}
		for _, kind := range []problem.Kind{problem.CDD, problem.UCDDCP, problem.EARLYWORK} {
			d := c.Pick(kind, n, machines)
			if !d.Choice.valid() {
				t.Fatalf("Pick(%v, %d, %d) returned unknown/invalid choice %+v", kind, n, machines, d.Choice)
			}
			if len(d.Candidates) == 0 || d.Candidates[0].Pairing() != d.Choice.Pairing() {
				t.Fatalf("candidates must lead with the choice: %+v", d.Candidates)
			}
			seen := map[string]bool{}
			for _, cand := range d.Candidates {
				if !cand.valid() {
					t.Fatalf("Pick(%v, %d, %d) leaked invalid candidate %+v", kind, n, machines, cand)
				}
				if seen[cand.Pairing()] {
					t.Fatalf("duplicate candidate %s", cand.Pairing())
				}
				seen[cand.Pairing()] = true
			}
		}
	})
}
