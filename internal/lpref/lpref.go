// Package lpref builds and solves the per-sequence linear program of
// Section III of the paper. Once the binary sequencing variables δ_ij of
// the 0-1 integer programming formulation are fixed (i.e. a job sequence
// is chosen), the remaining problem — optimal completion times and
// processing-time reductions — is the LP
//
//	minimize   Σ α_i·E_i + β_i·T_i + γ_i·X_i
//	subject to E_i ≥ d − C_i,  T_i ≥ C_i − d,  0 ≤ X_i ≤ P_i − M_i,
//	           C_i = s + Σ_{k≤i} (P_k − X_k),  s ≥ 0,
//
// which this package solves with the dense two-phase simplex of
// internal/simplex. The paper's point is that iterating a general LP
// solver inside a metaheuristic is far too slow, motivating the O(n)
// specialized algorithms of Section IV; tests pin the LP optimum to those
// algorithms and BenchmarkLPvsLinear quantifies the gap.
package lpref

import (
	"fmt"
	"math"

	"repro/internal/problem"
	"repro/internal/simplex"
)

// Result is the LP optimum for a fixed sequence.
type Result struct {
	// Cost is the optimal objective value (integral for integer data, up
	// to floating-point round-off).
	Cost float64
	// Start is the optimal start time s of the first job.
	Start float64
	// X is the compression per job (indexed by job id).
	X []float64
	// Iterations counts simplex pivots.
	Iterations int
}

// Build constructs the per-sequence LP in the standard form of
// internal/simplex (min cᵀx, Ax = b, x ≥ 0, b ≥ 0).
//
// Variable layout (all ≥ 0):
//
//	x[0]                 s, the start time
//	x[1..n]              X_i by position
//	x[n+1..2n]           E_i by position
//	x[2n+1..3n]          T_i by position
//	x[3n+1..4n]          surplus of the earliness rows
//	x[4n+1..5n]          surplus of the tardiness rows
//	x[5n+1..6n]          slacks of the compression bounds
func Build(in *problem.Instance, seq []int) *simplex.Problem {
	n := len(seq)
	nv := 6*n + 1
	rows := 3 * n
	p := &simplex.Problem{
		A: make([][]float64, rows),
		B: make([]float64, rows),
		C: make([]float64, nv),
	}
	for i := range p.A {
		p.A[i] = make([]float64, nv)
	}
	// Objective.
	for pos, job := range seq {
		j := in.Jobs[job]
		p.C[1+pos] = float64(j.Gamma)
		p.C[1+n+pos] = float64(j.Alpha)
		p.C[1+2*n+pos] = float64(j.Beta)
	}
	d := float64(in.D)
	prefix := 0.0
	for pos, job := range seq {
		prefix += float64(in.Jobs[job].P)
		// C_pos = s + prefix − Σ_{k≤pos} X_k.
		// Earliness row: E + C ≥ d  ⇒  E + s − ΣX − sur = d − prefix.
		rowE := p.A[pos]
		rowE[1+n+pos] = 1 // E
		rowE[0] = 1       // s
		for k := 0; k <= pos; k++ {
			rowE[1+k] = -1 // −X_k
		}
		rowE[1+3*n+pos] = -1 // surplus
		p.B[pos] = d - prefix
		// Tardiness row: T − C ≥ −d ⇒ T − s + ΣX − sur = prefix − d.
		rowT := p.A[n+pos]
		rowT[1+2*n+pos] = 1 // T
		rowT[0] = -1        // −s
		for k := 0; k <= pos; k++ {
			rowT[1+k] = 1 // +X_k
		}
		rowT[1+4*n+pos] = -1 // surplus
		p.B[n+pos] = prefix - d
		// Compression bound: X + slack = U.
		rowX := p.A[2*n+pos]
		rowX[1+pos] = 1
		rowX[1+5*n+pos] = 1
		p.B[2*n+pos] = float64(in.Jobs[seq[pos]].MaxCompression())
	}
	// Standard form needs b ≥ 0: negate rows with negative RHS.
	for i := range p.B {
		if p.B[i] < 0 {
			p.B[i] = -p.B[i]
			for j := range p.A[i] {
				p.A[i][j] = -p.A[i][j]
			}
		}
	}
	return p
}

// Solve builds and solves the per-sequence LP, returning the optimum with
// the compressions mapped back to job ids.
func Solve(in *problem.Instance, seq []int) (Result, error) {
	lp := Build(in, seq)
	sol, err := simplex.Solve(lp)
	if err != nil {
		return Result{}, err
	}
	if sol.Status != simplex.Optimal {
		return Result{}, fmt.Errorf("lpref: LP %v for sequence of %s", sol.Status, in.Name)
	}
	res := Result{
		Cost:       sol.Objective,
		Start:      sol.X[0],
		X:          make([]float64, in.N()),
		Iterations: sol.Iterations,
	}
	for pos, job := range seq {
		res.X[job] = sol.X[1+pos]
	}
	return res, nil
}

// RoundedCost returns the LP optimum rounded to the nearest integer —
// safe for the all-integer instances of this repository, where an integer
// optimum exists.
func (r Result) RoundedCost() int64 { return int64(math.Round(r.Cost)) }
