package lpref

import (
	"math/rand"
	"testing"

	"repro/internal/cdd"
	"repro/internal/orlib"
	"repro/internal/problem"
	"repro/internal/ucddcp"
)

// TestLPMatchesLinearCDD pins the LP optimum to the O(n) CDD algorithm on
// random benchmark instances — the equivalence the paper's two-layered
// decomposition rests on.
func TestLPMatchesLinearCDD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(12)
		ins, err := orlib.BenchmarkCDD(n, 1, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		in := ins[rng.Intn(len(ins))]
		seq := problem.IdentitySequence(n)
		rng.Shuffle(n, func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })

		lp, err := Solve(in, seq)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := cdd.OptimizeSequence(in, seq).Cost
		if lp.RoundedCost() != want {
			t.Fatalf("trial %d (n=%d): LP %v (%d), linear algorithm %d",
				trial, n, lp.Cost, lp.RoundedCost(), want)
		}
	}
}

// TestLPMatchesLinearUCDDCP does the same for the controllable problem,
// validating both the compression bounds and Property 1/2 reasoning.
func TestLPMatchesLinearUCDDCP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		ins, err := orlib.BenchmarkUCDDCP(n, 1, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		in := ins[0]
		seq := problem.IdentitySequence(n)
		rng.Shuffle(n, func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })

		lp, err := Solve(in, seq)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := ucddcp.OptimizeSequence(in, seq).Cost
		if lp.RoundedCost() != want {
			t.Fatalf("trial %d (n=%d): LP %v (%d), linear algorithm %d",
				trial, n, lp.Cost, lp.RoundedCost(), want)
		}
	}
}

// TestPaperExampleLP solves the worked example's LPs: 81 for CDD (d=16)
// and 77 for UCDDCP (d=22).
func TestPaperExampleLP(t *testing.T) {
	seq := problem.IdentitySequence(5)
	lpC, err := Solve(problem.PaperExample(problem.CDD), seq)
	if err != nil {
		t.Fatal(err)
	}
	if lpC.RoundedCost() != 81 {
		t.Errorf("CDD LP = %v, want 81", lpC.Cost)
	}
	lpU, err := Solve(problem.PaperExample(problem.UCDDCP), seq)
	if err != nil {
		t.Fatal(err)
	}
	if lpU.RoundedCost() != 77 {
		t.Errorf("UCDDCP LP = %v, want 77", lpU.Cost)
	}
	// The LP must also find the compressions of jobs 4 and 5.
	if lpU.X[3] < 0.999 || lpU.X[4] < 0.999 {
		t.Errorf("LP compressions = %v, want jobs 4 and 5 compressed by 1", lpU.X)
	}
}

// TestLPStartFeasible checks the LP's start time stays non-negative and
// reproduces the exact schedule cost.
func TestLPStartFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		ins, err := orlib.BenchmarkCDD(n, 1, uint64(trial+100))
		if err != nil {
			t.Fatal(err)
		}
		in := ins[0] // h = 0.2, strongly restrictive
		seq := problem.IdentitySequence(n)
		lp, err := Solve(in, seq)
		if err != nil {
			t.Fatal(err)
		}
		if lp.Start < -1e-9 {
			t.Fatalf("trial %d: negative LP start %v", trial, lp.Start)
		}
	}
}

// BenchmarkLPvsLinear quantifies the paper's motivation for the O(n)
// algorithms: the general LP solve versus the specialized evaluation of
// the same sequence.
func BenchmarkLPvsLinear(b *testing.B) {
	ins, err := orlib.BenchmarkCDD(30, 1, 9)
	if err != nil {
		b.Fatal(err)
	}
	in := ins[2]
	seq := problem.IdentitySequence(30)
	b.Run("LP_simplex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Solve(in, seq); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("linear_On", func(b *testing.B) {
		eval := cdd.NewEvaluator(in)
		for i := 0; i < b.N; i++ {
			eval.Cost(seq)
		}
	})
}
