package es

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/problem"
	"repro/internal/xrand"
)

func randomCDD(rng *rand.Rand, n int) *problem.Instance {
	p := make([]int, n)
	alpha := make([]int, n)
	beta := make([]int, n)
	var sum int64
	for i := 0; i < n; i++ {
		p[i] = 1 + rng.Intn(20)
		alpha[i] = 1 + rng.Intn(10)
		beta[i] = 1 + rng.Intn(15)
		sum += int64(p[i])
	}
	in, err := problem.NewCDD("t", p, alpha, beta, int64(float64(sum)*0.6))
	if err != nil {
		panic(err)
	}
	return in
}

func TestBestMonotoneUnderPlusSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randomCDD(rng, 20)
	eval := core.NewEvaluator(in)
	s := New(DefaultConfig(), eval, xrand.New(1))
	_, prev := s.Best()
	for g := 0; g < 60; g++ {
		s.Step()
		_, cur := s.Best()
		if cur > prev {
			t.Fatalf("(μ+λ) selection lost the best: %d -> %d", prev, cur)
		}
		prev = cur
	}
}

func TestImprovesOverRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 4; trial++ {
		in := randomCDD(rng, 25)
		eval := core.NewEvaluator(in)
		xr := xrand.New(uint64(trial + 10))
		_, randCost := core.RandomSolution(eval, xr)
		cfg := DefaultConfig()
		cfg.Generations = 100
		best := New(cfg, eval, xr).Run()
		if best > randCost {
			t.Errorf("trial %d: ES best %d worse than random %d", trial, best, randCost)
		}
	}
}

func TestPopulationStaysPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomCDD(rng, 12)
	eval := core.NewEvaluator(in)
	s := New(DefaultConfig(), eval, xrand.New(5))
	for g := 0; g < 30; g++ {
		s.Step()
	}
	for i := 0; i < s.cfg.Mu; i++ {
		if !problem.IsPermutation(s.pop[i].seq) {
			t.Fatalf("parent %d is not a permutation: %v", i, s.pop[i].seq)
		}
		if got := eval.Cost(s.pop[i].seq); got != s.pop[i].cost {
			t.Fatalf("parent %d cached cost %d != %d", i, s.pop[i].cost, got)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := randomCDD(rng, 18)
	run := func() int64 {
		eval := core.NewEvaluator(in)
		cfg := DefaultConfig()
		cfg.Generations = 50
		return New(cfg, eval, xrand.New(77)).Run()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed differs: %d vs %d", a, b)
	}
}

func TestEvaluationAccounting(t *testing.T) {
	in := problem.PaperExample(problem.CDD)
	eval := core.NewEvaluator(in)
	cfg := DefaultConfig()
	cfg.Mu, cfg.Lambda, cfg.Generations = 4, 12, 10
	s := New(cfg, eval, xrand.New(8))
	s.Run()
	if got := s.Evaluations(); got != 4+12*10 {
		t.Errorf("evaluations = %d, want 124", got)
	}
}
