// Package es implements a (μ+λ) Evolution Strategy on job permutations,
// the second member of the Feldmann–Biskup [18] metaheuristic family used
// as a CPU comparator in this repository's speedup experiments. Each
// generation creates λ offspring by mutating uniformly chosen parents
// (partial shuffle or swap) and keeps the best μ of parents ∪ offspring.
package es

import (
	"sort"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/xrand"
)

// DefaultConfig returns (16+48)-ES parameters with the paper's
// perturbation size as the mutation strength.
func DefaultConfig() Config {
	return Config{
		Generations: 250,
		Mu:          16,
		Lambda:      48,
		Pert:        4,
		SwapProb:    0.5,
	}
}

// Config are the ES parameters.
type Config struct {
	// Generations is the number of selection rounds.
	Generations int
	// Mu is the parent population size.
	Mu int
	// Lambda is the offspring count per generation.
	Lambda int
	// Pert is the partial-shuffle mutation size.
	Pert int
	// SwapProb is the probability that a mutation is a plain swap instead
	// of a partial shuffle (mixing the two keeps small moves available).
	SwapProb float64
}

func (c Config) normalized(n int) Config {
	d := DefaultConfig()
	if c.Generations <= 0 {
		c.Generations = d.Generations
	}
	if c.Mu <= 0 {
		c.Mu = d.Mu
	}
	if c.Lambda <= 0 {
		c.Lambda = d.Lambda
	}
	if c.Pert <= 0 {
		c.Pert = d.Pert
	}
	if c.Pert > n {
		c.Pert = n
	}
	if c.SwapProb < 0 || c.SwapProb > 1 {
		c.SwapProb = d.SwapProb
	}
	return c
}

type individual struct {
	seq  []int
	cost int64
}

// Strategy is a (μ+λ) evolution strategy bound to one instance.
type Strategy struct {
	cfg   Config
	eval  core.Evaluator
	rng   *xrand.XORWOW
	ops   *perm.Ops
	pop   []individual // parents ∪ offspring, parents in pop[:Mu]
	evals int64
}

// New creates and evaluates the initial random population.
func New(cfg Config, eval core.Evaluator, rng *xrand.XORWOW) *Strategy {
	n := eval.Instance().GenomeLen()
	cfg = cfg.normalized(n)
	s := &Strategy{cfg: cfg, eval: eval, rng: rng, ops: perm.NewOps(n)}
	s.pop = make([]individual, cfg.Mu+cfg.Lambda)
	for i := range s.pop {
		s.pop[i].seq = make([]int, n)
	}
	for i := 0; i < cfg.Mu; i++ {
		copy(s.pop[i].seq, perm.Random(rng, n))
		s.pop[i].cost = eval.Cost(s.pop[i].seq)
		s.evals++
	}
	s.sortParents()
	return s
}

func (s *Strategy) sortParents() {
	sort.SliceStable(s.pop[:s.cfg.Mu], func(a, b int) bool {
		return s.pop[a].cost < s.pop[b].cost
	})
}

// Step runs one generation and returns the best cost after selection.
func (s *Strategy) Step() int64 {
	mu, lambda := s.cfg.Mu, s.cfg.Lambda
	for i := 0; i < lambda; i++ {
		parent := &s.pop[s.rng.Intn(mu)]
		child := &s.pop[mu+i]
		copy(child.seq, parent.seq)
		if s.rng.Float64() < s.cfg.SwapProb {
			perm.Swap(s.rng, child.seq)
		} else {
			s.ops.PartialShuffle(s.rng, child.seq, s.cfg.Pert)
		}
		child.cost = s.eval.Cost(child.seq)
		s.evals++
	}
	// (μ+λ) selection: best μ of the whole pool become the new parents.
	sort.SliceStable(s.pop, func(a, b int) bool {
		return s.pop[a].cost < s.pop[b].cost
	})
	return s.pop[0].cost
}

// Run executes the configured generations and returns the best cost.
func (s *Strategy) Run() int64 {
	best := s.pop[0].cost
	for g := 0; g < s.cfg.Generations; g++ {
		best = s.Step()
	}
	return best
}

// Best returns the best sequence (borrowed) and its cost.
func (s *Strategy) Best() ([]int, int64) { return s.pop[0].seq, s.pop[0].cost }

// Evaluations returns the number of fitness evaluations performed.
func (s *Strategy) Evaluations() int64 { return s.evals }
