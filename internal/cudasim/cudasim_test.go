package cudasim

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func testDevice() *Device { return NewDevice(GT560M()) }

func TestDim3Roundtrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	property := func(xr, yr, zr uint8, pick uint16) bool {
		d := Dim3{X: int(xr%7) + 1, Y: int(yr%5) + 1, Z: int(zr%3) + 1}
		i := int(pick) % d.Count()
		idx := d.unflatten(i)
		return d.Linear(idx) == i
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func TestDimHelper(t *testing.T) {
	d := Dim(192)
	if d.Count() != 192 || !d.Valid() {
		t.Errorf("Dim(192) = %v", d)
	}
	if (Dim3{X: 0, Y: 1, Z: 1}).Valid() {
		t.Error("zero extent considered valid")
	}
	if got := Dim(4).String(); got != "(4,1,1)" {
		t.Errorf("String() = %q", got)
	}
}

func TestGlobalThreadIDsUniqueAndDense(t *testing.T) {
	d := testDevice()
	const blocks, tpb = 4, 192
	seen := make([]int32, blocks*tpb)
	d.MustLaunch(LaunchConfig{Name: "ids", Grid: Dim(blocks), Block: Dim(tpb)}, func(c *Ctx) {
		atomic.AddInt32(&seen[c.GlobalThreadID()], 1)
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("thread id %d executed %d times", i, v)
		}
	}
}

func TestWarpAndLane(t *testing.T) {
	d := testDevice()
	var bad int32
	d.MustLaunch(LaunchConfig{Name: "warp", Grid: Dim(1), Block: Dim(100)}, func(c *Ctx) {
		tid := c.ThreadInBlock()
		if c.WarpID() != tid/32 || c.LaneID() != tid%32 {
			atomic.AddInt32(&bad, 1)
		}
	})
	if bad != 0 {
		t.Errorf("%d threads had wrong warp/lane ids", bad)
	}
}

// TestSyncThreadsStaging reproduces the paper's fitness-kernel pattern:
// every thread writes one element of shared memory, the block
// synchronizes, then every thread reads all elements. Without a working
// barrier some thread would observe a zero.
func TestSyncThreadsStaging(t *testing.T) {
	d := testDevice()
	const tpb = 192
	var zeros int32
	d.MustLaunch(LaunchConfig{Name: "stage", Grid: Dim(2), Block: Dim(tpb), Cooperative: true}, func(c *Ctx) {
		sh := c.SharedInt64(0, tpb)
		sh[c.ThreadInBlock()] = int64(c.ThreadInBlock()) + 1
		c.ChargeShared(1)
		c.SyncThreads()
		var sum int64
		for _, v := range sh {
			if v == 0 {
				atomic.AddInt32(&zeros, 1)
			}
			sum += v
		}
		c.ChargeShared(tpb)
		if sum != tpb*(tpb+1)/2 {
			atomic.AddInt32(&zeros, 1)
		}
	})
	if zeros != 0 {
		t.Fatalf("barrier failed: %d stale reads", zeros)
	}
}

// TestBarrierReuse drives the same barrier through many phases with
// alternating writers/readers.
func TestBarrierReuse(t *testing.T) {
	d := testDevice()
	const tpb = 64
	const rounds = 50
	var bad int32
	d.MustLaunch(LaunchConfig{Name: "rounds", Grid: Dim(1), Block: Dim(tpb), Cooperative: true}, func(c *Ctx) {
		sh := c.SharedInt64(0, 1)
		for round := 0; round < rounds; round++ {
			if c.ThreadInBlock() == round%tpb {
				sh[0] = int64(round)
			}
			c.SyncThreads()
			if sh[0] != int64(round) {
				atomic.AddInt32(&bad, 1)
			}
			c.SyncThreads()
		}
	})
	if bad != 0 {
		t.Fatalf("%d stale reads across barrier phases", bad)
	}
}

func TestSyncThreadsPanicsWithoutCooperative(t *testing.T) {
	d := testDevice()
	defer func() {
		if recover() == nil {
			t.Error("SyncThreads in non-cooperative launch did not panic")
		}
	}()
	_ = d.Launch(LaunchConfig{Name: "bad", Grid: Dim(1), Block: Dim(2)}, func(c *Ctx) {
		c.SyncThreads()
	})
}

func TestSharedSlotSizeMismatchPanics(t *testing.T) {
	d := testDevice()
	defer func() {
		if recover() == nil {
			t.Error("shared slot size mismatch did not panic")
		}
	}()
	_ = d.Launch(LaunchConfig{Name: "bad", Grid: Dim(1), Block: Dim(1)}, func(c *Ctx) {
		c.SharedInt64(0, 4)
		c.SharedInt64(0, 8)
	})
}

func TestAtomicMinEqualsSerialMin(t *testing.T) {
	d := testDevice()
	const n = 768
	vals := make([]int64, n)
	rng := rand.New(rand.NewSource(7))
	for i := range vals {
		vals[i] = rng.Int63n(1 << 40)
	}
	src := NewBufferFrom(d, vals)
	best := NewBufferFrom(d, []int64{1 << 62})
	d.MustLaunch(LaunchConfig{Name: "reduce", Grid: Dim(4), Block: Dim(192)}, func(c *Ctx) {
		v := src.Load(c, c.GlobalThreadID())
		AtomicMinInt64(c, best, 0, v)
	})
	want := vals[0]
	for _, v := range vals {
		if v < want {
			want = v
		}
	}
	out := make([]int64, 1)
	best.CopyToHost(out)
	if out[0] != want {
		t.Errorf("atomic min = %d, serial min = %d", out[0], want)
	}
}

func TestAtomicAddAndLoadStore(t *testing.T) {
	d := testDevice()
	acc := NewBufferFrom(d, []int64{0, 0})
	d.MustLaunch(LaunchConfig{Name: "add", Grid: Dim(3), Block: Dim(100)}, func(c *Ctx) {
		AtomicAddInt64(c, acc, 0, 1)
		AtomicStoreInt64(c, acc, 1, 7)
		if AtomicLoadInt64(c, acc, 1) != 7 {
			AtomicAddInt64(c, acc, 0, 1<<30) // poison on failure
		}
	})
	out := make([]int64, 2)
	acc.CopyToHost(out)
	if out[0] != 300 {
		t.Errorf("atomic add total = %d, want 300", out[0])
	}
}

func TestConstantMemory(t *testing.T) {
	d := testDevice()
	d.SetConstantInt("d", 16)
	d.SetConstantFloat("mu", 0.88)
	var badI, badF int32
	d.MustLaunch(LaunchConfig{Name: "const", Grid: Dim(2), Block: Dim(32)}, func(c *Ctx) {
		if c.ConstInt("d") != 16 {
			atomic.AddInt32(&badI, 1)
		}
		if c.ConstFloat("mu") != 0.88 {
			atomic.AddInt32(&badF, 1)
		}
	})
	if badI != 0 || badF != 0 {
		t.Errorf("constant reads failed: int=%d float=%d", badI, badF)
	}
}

func TestConstantMissingPanics(t *testing.T) {
	d := testDevice()
	defer func() {
		if recover() == nil {
			t.Error("missing constant did not panic")
		}
	}()
	_ = d.Launch(LaunchConfig{Name: "missing", Grid: Dim(1), Block: Dim(1)}, func(c *Ctx) {
		c.ConstInt("never-set")
	})
}

func TestLaunchValidation(t *testing.T) {
	d := testDevice()
	nop := func(c *Ctx) {}
	cases := []LaunchConfig{
		{Grid: Dim(0), Block: Dim(1)},
		{Grid: Dim(1), Block: Dim3{X: 1, Y: 0, Z: 1}},
		{Grid: Dim(1), Block: Dim(2048)},                            // beyond MaxThreadsPerBlock
		{Grid: Dim(1), Block: Dim(1), SharedBytesPerBlock: 1 << 20}, // beyond shared budget
	}
	for i, cfg := range cases {
		if err := d.Launch(cfg, nop); err == nil {
			t.Errorf("case %d: invalid launch accepted: %+v", i, cfg)
		}
	}
}

func TestBufferHostRoundtrip(t *testing.T) {
	d := testDevice()
	src := []int64{5, 4, 3, 2, 1}
	b := NewBufferFrom(d, src)
	if b.Len() != 5 || b.Bytes() != 40 {
		t.Errorf("Len=%d Bytes=%d", b.Len(), b.Bytes())
	}
	dst := make([]int64, 5)
	b.CopyToHost(dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
	h2d, d2h := d.Profiler().Transfers()
	if h2d.Count != 1 || h2d.Bytes != 40 {
		t.Errorf("H2D stats = %+v", h2d)
	}
	if d2h.Count != 1 || d2h.Bytes != 40 {
		t.Errorf("D2H stats = %+v", d2h)
	}
	if d.SimTime() <= 0 {
		t.Error("transfers did not advance the simulated clock")
	}
}

// TestTimingMoreWorkTakesLonger checks monotonicity of the model: a kernel
// charging more arithmetic per thread must take longer simulated time.
func TestTimingMoreWorkTakesLonger(t *testing.T) {
	timeFor := func(charge int) float64 {
		d := testDevice()
		d.MustLaunch(LaunchConfig{Name: "w", Grid: Dim(4), Block: Dim(192)}, func(c *Ctx) {
			c.ChargeArith(charge)
		})
		return d.SimTime()
	}
	t1, t2 := timeFor(1000), timeFor(10000)
	if t2 <= t1 {
		t.Errorf("10x work not slower: %g vs %g", t1, t2)
	}
}

// TestTimingBlockSerialization checks the Figure-11 shape: with more
// blocks than SMs, simulated time grows roughly linearly in the number of
// block waves.
func TestTimingBlockSerialization(t *testing.T) {
	timeFor := func(blocks int) float64 {
		d := testDevice()
		d.MustLaunch(LaunchConfig{Name: "w", Grid: Dim(blocks), Block: Dim(192)}, func(c *Ctx) {
			c.ChargeArith(100000)
		})
		return d.SimTime()
	}
	t4, t8, t16 := timeFor(4), timeFor(8), timeFor(16)
	if !(t4 < t8 && t8 < t16) {
		t.Fatalf("no serialization growth: %g %g %g", t4, t8, t16)
	}
	// 16 blocks on 4 SMs is 4 waves: expect ≈ 4× the 1-wave time within
	// slack for the constant launch overhead.
	if ratio := t16 / t4; ratio < 2.5 || ratio > 5 {
		t.Errorf("16-block/4-block ratio = %.2f, want ≈ 4", ratio)
	}
}

// TestTimingRegisterPressure checks the occupancy knob: a launch declaring
// huge register usage hides memory latency worse and must be slower.
func TestTimingRegisterPressure(t *testing.T) {
	timeFor := func(regs int) float64 {
		d := testDevice()
		d.MustLaunch(LaunchConfig{Name: "w", Grid: Dim(4), Block: Dim(192), RegsPerThread: regs}, func(c *Ctx) {
			c.ChargeGlobal(1000, false)
		})
		return d.SimTime()
	}
	light, heavy := timeFor(16), timeFor(256)
	if heavy <= light {
		t.Errorf("register pressure has no effect: light=%g heavy=%g", light, heavy)
	}
}

func TestEventElapsed(t *testing.T) {
	d := testDevice()
	e1 := d.Record()
	d.MustLaunch(LaunchConfig{Name: "w", Grid: Dim(1), Block: Dim(32)}, func(c *Ctx) {
		c.ChargeArith(1000)
	})
	e2 := d.Record()
	if e1.ElapsedSeconds(e2) <= 0 {
		t.Error("event pair measured no elapsed simulated time")
	}
}

func TestProfilerReport(t *testing.T) {
	d := testDevice()
	d.MustLaunch(LaunchConfig{Name: "fitness", Grid: Dim(2), Block: Dim(64)}, func(c *Ctx) {
		c.ChargeArith(10)
		c.ChargeShared(2)
	})
	b := NewBuffer[int64](d, 8)
	b.CopyToHost(make([]int64, 8))
	rep := d.Profiler().Report()
	for _, frag := range []string{"fitness", "H2D", "D2H"} {
		if !strings.Contains(rep, frag) {
			t.Errorf("report missing %q:\n%s", frag, rep)
		}
	}
	ks := d.Profiler().Kernel("fitness")
	if ks.Launches != 1 || ks.Threads != 128 {
		t.Errorf("kernel stats = %+v", ks)
	}
	if ks.SharedAccesses != 2*128 {
		t.Errorf("shared accesses = %d, want 256", ks.SharedAccesses)
	}
	d.Profiler().Reset()
	if got := d.Profiler().Kernel("fitness"); got.Launches != 0 {
		t.Error("Reset did not clear stats")
	}
}

func TestResetSimTime(t *testing.T) {
	d := testDevice()
	d.MustLaunch(LaunchConfig{Name: "w", Grid: Dim(1), Block: Dim(1)}, func(c *Ctx) { c.ChargeArith(5) })
	if d.SimTime() == 0 {
		t.Fatal("no time accumulated")
	}
	d.ResetSimTime()
	if d.SimTime() != 0 {
		t.Error("ResetSimTime did not zero the clock")
	}
}

func TestSpecValidate(t *testing.T) {
	good := GT560M()
	if err := good.Validate(); err != nil {
		t.Fatalf("GT560M spec invalid: %v", err)
	}
	bad := good
	bad.SMs = 0
	if bad.Validate() == nil {
		t.Error("zero-SM spec accepted")
	}
	bad = good
	bad.ClockMHz = 0
	if bad.Validate() == nil {
		t.Error("zero-clock spec accepted")
	}
}

func BenchmarkLaunchOverheadSequential(b *testing.B) {
	d := testDevice()
	cfg := LaunchConfig{Name: "nop", Grid: Dim(4), Block: Dim(192)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.MustLaunch(cfg, func(c *Ctx) {})
	}
}

func BenchmarkLaunchOverheadCooperative(b *testing.B) {
	d := testDevice()
	cfg := LaunchConfig{Name: "nop", Grid: Dim(4), Block: Dim(192), Cooperative: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.MustLaunch(cfg, func(c *Ctx) { c.SyncThreads() })
	}
}
