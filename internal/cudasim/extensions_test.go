package cudasim

import (
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMemoryAccounting(t *testing.T) {
	d := testDevice()
	if d.MemoryInUse() != 0 {
		t.Fatalf("fresh device has %d B in use", d.MemoryInUse())
	}
	b := NewBuffer[int64](d, 1000)
	if got := d.MemoryInUse(); got != 8000 {
		t.Errorf("in use = %d, want 8000", got)
	}
	b2 := NewBuffer[int32](d, 10)
	if got := d.MemoryInUse(); got != 8040 {
		t.Errorf("in use = %d, want 8040", got)
	}
	b.Free()
	if got := d.MemoryInUse(); got != 40 {
		t.Errorf("after free in use = %d, want 40", got)
	}
	b2.Free()
	if got := d.MemoryInUse(); got != 0 {
		t.Errorf("after all frees in use = %d", got)
	}
}

func TestOutOfMemory(t *testing.T) {
	spec := GT560M()
	spec.GlobalMemBytes = 1024
	d := NewDevice(spec)
	if _, err := TryNewBuffer[int64](d, 100); err != nil {
		t.Fatalf("800 B allocation failed under 1 KiB capacity: %v", err)
	}
	if _, err := TryNewBuffer[int64](d, 100); err == nil {
		t.Fatal("second 800 B allocation should exceed 1 KiB capacity")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewBuffer did not panic on OOM")
		}
	}()
	NewBuffer[int64](d, 1000)
}

func TestUnlimitedMemory(t *testing.T) {
	spec := GT560M()
	spec.GlobalMemBytes = 0
	d := NewDevice(spec)
	if _, err := TryNewBuffer[int64](d, 1_000_000); err != nil {
		t.Fatalf("unlimited device rejected allocation: %v", err)
	}
}

func TestTextureSnapshotSemantics(t *testing.T) {
	d := testDevice()
	b := NewBufferFrom(d, []int64{1, 2, 3, 4})
	tex := NewTexture(b)
	b.Raw()[0] = 99 // later writes must not be visible through the texture
	var got int64
	d.MustLaunch(LaunchConfig{Name: "tex", Grid: Dim(1), Block: Dim(1)}, func(c *Ctx) {
		var cache TexCache
		got = tex.Fetch(c, &cache, 0)
	})
	if got != 1 {
		t.Errorf("texture fetch = %d, want the bind-time value 1", got)
	}
	if tex.Len() != 4 {
		t.Errorf("Len = %d", tex.Len())
	}
}

// TestTextureLocalityModel: sequential fetches through the cache must be
// far cheaper than scattered ones, and the profiler must see the misses.
func TestTextureLocalityModel(t *testing.T) {
	const n = 4096
	run := func(stride int) float64 {
		d := testDevice()
		data := make([]int64, n)
		b := NewBufferFrom(d, data)
		tex := NewTexture(b)
		d.MustLaunch(LaunchConfig{Name: "scan", Grid: Dim(1), Block: Dim(1)}, func(c *Ctx) {
			var cache TexCache
			idx := 0
			for i := 0; i < n; i++ {
				tex.Fetch(c, &cache, idx)
				idx = (idx + stride) % n
			}
		})
		return d.SimTime()
	}
	sequential := run(1)
	scattered := run(TexLineElems*7 + 3)
	if scattered <= sequential*2 {
		t.Errorf("texture cache model has no locality effect: seq=%g scattered=%g", sequential, scattered)
	}
}

func TestTextureCountersInProfiler(t *testing.T) {
	d := testDevice()
	b := NewBufferFrom(d, make([]int64, 64))
	tex := NewTexture(b)
	d.MustLaunch(LaunchConfig{Name: "texprof", Grid: Dim(1), Block: Dim(4)}, func(c *Ctx) {
		var cache TexCache
		for i := 0; i < 32; i++ {
			tex.Fetch(c, &cache, i)
		}
	})
	ks := d.Profiler().Kernel("texprof")
	if ks.TexFetches != 4*32 {
		t.Errorf("tex fetches = %d, want 128", ks.TexFetches)
	}
	if ks.TexMisses == 0 || ks.TexMisses >= ks.TexFetches {
		t.Errorf("tex misses = %d of %d, expected some but not all", ks.TexMisses, ks.TexFetches)
	}
}

// TestStreamsOverlapAccounting: two equal kernels on two streams must
// advance the device clock by roughly one kernel's duration after Join,
// not two.
func TestStreamsOverlapAccounting(t *testing.T) {
	work := func(c *Ctx) { c.ChargeArith(100000) }
	cfg := LaunchConfig{Name: "w", Grid: Dim(2), Block: Dim(64)}

	serial := testDevice()
	serial.MustLaunch(cfg, work)
	serial.MustLaunch(cfg, work)
	serialTime := serial.SimTime()

	overlapped := testDevice()
	s1, s2 := overlapped.NewStream(), overlapped.NewStream()
	if err := s1.Launch(cfg, work); err != nil {
		t.Fatal(err)
	}
	if err := s2.Launch(cfg, work); err != nil {
		t.Fatal(err)
	}
	if overlapped.SimTime() > serialTime/4 {
		t.Errorf("stream launches advanced the device clock prematurely: %g", overlapped.SimTime())
	}
	if s1.SimTime() <= 0 || s2.SimTime() <= 0 {
		t.Fatal("stream timelines empty")
	}
	overlapped.Join(s1, s2)
	joined := overlapped.SimTime()
	if joined <= serialTime*0.4 || joined >= serialTime*0.75 {
		t.Errorf("overlapped time = %g, want ≈ half of serial %g", joined, serialTime)
	}
	if s1.SimTime() != 0 || s2.SimTime() != 0 {
		t.Error("Join did not reset the stream timelines")
	}
}

// TestStreamExecutionStillRuns: stream launches must actually execute the
// kernel (they only change accounting).
func TestStreamExecutionStillRuns(t *testing.T) {
	d := testDevice()
	s := d.NewStream()
	var ran int32
	if err := s.Launch(LaunchConfig{Name: "r", Grid: Dim(1), Block: Dim(8)}, func(c *Ctx) {
		atomic.AddInt32(&ran, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 8 {
		t.Errorf("stream kernel ran %d threads, want 8", ran)
	}
}

func TestTraceTimeline(t *testing.T) {
	d := testDevice().EnableTrace()
	b := NewBufferFrom(d, make([]int64, 128)) // one H2D event
	d.MustLaunch(LaunchConfig{Name: "alpha", Grid: Dim(2), Block: Dim(32)}, func(c *Ctx) {
		c.ChargeArith(1000)
	})
	d.MustLaunch(LaunchConfig{Name: "beta", Grid: Dim(1), Block: Dim(32)}, func(c *Ctx) {
		c.ChargeArith(1000)
	})
	b.CopyToHost(make([]int64, 128)) // one D2H event
	events := d.TraceEvents()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	// Events are ordered and non-overlapping on the simulated timeline.
	for i := 1; i < len(events); i++ {
		prevEnd := events[i-1].Ts + events[i-1].Dur
		if events[i].Ts < prevEnd-1e-9 {
			t.Errorf("event %d (%s) starts at %v before previous ends %v",
				i, events[i].Name, events[i].Ts, prevEnd)
		}
	}
	names := map[string]bool{}
	for _, e := range events {
		names[e.Name] = true
		if e.Ph != "X" || e.Dur <= 0 {
			t.Errorf("malformed event %+v", e)
		}
	}
	for _, want := range []string{"alpha", "beta", "memcpy"} {
		if !names[want] {
			t.Errorf("missing event %q", want)
		}
	}
	var buf strings.Builder
	if err := d.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var back []TraceEvent
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(back) != 4 {
		t.Errorf("roundtrip lost events: %d", len(back))
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	d := testDevice()
	d.MustLaunch(LaunchConfig{Name: "x", Grid: Dim(1), Block: Dim(1)}, func(c *Ctx) {})
	if got := d.TraceEvents(); got != nil {
		t.Errorf("tracing recorded %d events without EnableTrace", len(got))
	}
}
