package cudasim

import (
	"encoding/json"
	"io"
	"sync"
)

// Tracing records every kernel launch and host↔device transfer on the
// simulated timeline and exports them in the Chrome trace-event format
// (load into chrome://tracing or Perfetto) — the timeline view the Nvidia
// profiler offers for real devices. Enable with Device.EnableTrace before
// launching work; events carry simulated timestamps.

// TraceEvent is one complete event ("ph":"X") on the simulated timeline.
type TraceEvent struct {
	// Name is the kernel or transfer label.
	Name string `json:"name"`
	// Cat groups events: "kernel", "h2d", "d2h".
	Cat string `json:"cat"`
	// Ph is the Chrome trace phase; always "X" (complete event).
	Ph string `json:"ph"`
	// Ts is the start timestamp in microseconds of simulated time.
	Ts float64 `json:"ts"`
	// Dur is the duration in microseconds of simulated time.
	Dur float64 `json:"dur"`
	// Pid and Tid place the event on a track; the device is pid 0 and
	// kernels/copies are separated by tid.
	Pid int `json:"pid"`
	Tid int `json:"tid"`
}

// tracer accumulates events; nil when tracing is disabled.
type tracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

// EnableTrace turns on timeline recording for all subsequent launches and
// transfers. Returns the device for chaining.
func (d *Device) EnableTrace() *Device {
	d.mu.Lock()
	if d.trace == nil {
		d.trace = &tracer{}
	}
	d.mu.Unlock()
	return d
}

// TraceEvents returns a copy of the recorded events (empty when tracing
// was never enabled).
func (d *Device) TraceEvents() []TraceEvent {
	d.mu.Lock()
	tr := d.trace
	d.mu.Unlock()
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]TraceEvent, len(tr.events))
	copy(out, tr.events)
	return out
}

// WriteTrace serializes the timeline as a Chrome trace-event JSON array.
func (d *Device) WriteTrace(w io.Writer) error {
	events := d.TraceEvents()
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// recordTraceEvent appends one event if tracing is enabled. start and dur
// are simulated seconds.
func (d *Device) recordTraceEvent(name, cat string, start, dur float64, tid int) {
	d.mu.Lock()
	tr := d.trace
	d.mu.Unlock()
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.events = append(tr.events, TraceEvent{
		Name: name,
		Cat:  cat,
		Ph:   "X",
		Ts:   start * 1e6,
		Dur:  dur * 1e6,
		Pid:  0,
		Tid:  tid,
	})
	tr.mu.Unlock()
}
