// Package cudasim is a CUDA-like execution model in pure Go. It stands in
// for the Nvidia GPU + CUDA runtime of the paper (which evaluated on a
// GeForce GT 560M): kernels are Go functions launched over a grid of
// thread blocks; threads within a block run as goroutines with a real
// __syncthreads barrier; blocks are scheduled across simulated streaming
// multiprocessors backed by a host worker pool, so launches genuinely run
// in parallel on the host cores.
//
// Beyond functional semantics the package carries a cycle-level timing
// model (global/shared/constant memory latencies, warp-granular execution,
// SM occupancy limited by registers and resident-warp capacity, PCIe
// transfer cost) so that experiments can report a *simulated device time*
// with the qualitative shape of the paper's runtime curves, alongside real
// host wall-clock times. DESIGN.md documents the substitution.
package cudasim

import "fmt"

// DeviceSpec describes the simulated hardware. All limits are enforced at
// launch time; the timing fields drive the performance model.
type DeviceSpec struct {
	// Name of the modelled device.
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// CoresPerSM is the number of scalar cores per SM; together with
	// WarpSize it sets the warp issue throughput.
	CoresPerSM int
	// WarpSize is the SIMT width (32 on all Nvidia hardware).
	WarpSize int
	// MaxThreadsPerBlock is the per-block thread limit (1024 on the
	// paper's device).
	MaxThreadsPerBlock int
	// MaxResidentWarps is the per-SM warp residency limit used for
	// latency hiding.
	MaxResidentWarps int
	// RegistersPerSM is the register file size per SM (32-bit registers);
	// it bounds occupancy when kernels declare RegsPerThread.
	RegistersPerSM int
	// SharedMemPerBlock is the shared-memory budget per block in bytes.
	SharedMemPerBlock int
	// ClockMHz is the shader clock in MHz; cycles/clock = seconds.
	ClockMHz float64
	// PCIeGBPerSec is the host↔device copy bandwidth in GB/s.
	PCIeGBPerSec float64
	// TransferLatencySec is the fixed per-memcpy latency in seconds.
	TransferLatencySec float64
	// KernelLaunchSec is the fixed per-kernel-launch overhead in seconds.
	KernelLaunchSec float64
	// GlobalMemBytes is the device-memory capacity; buffer allocations
	// beyond it fail. Zero means unlimited.
	GlobalMemBytes int64
}

// Validate reports the first implausible field of the spec.
func (s DeviceSpec) Validate() error {
	switch {
	case s.SMs < 1:
		return fmt.Errorf("cudasim: spec needs at least one SM, got %d", s.SMs)
	case s.WarpSize < 1:
		return fmt.Errorf("cudasim: warp size %d < 1", s.WarpSize)
	case s.CoresPerSM < 1:
		return fmt.Errorf("cudasim: cores per SM %d < 1", s.CoresPerSM)
	case s.MaxThreadsPerBlock < 1:
		return fmt.Errorf("cudasim: max threads per block %d < 1", s.MaxThreadsPerBlock)
	case s.MaxResidentWarps < 1:
		return fmt.Errorf("cudasim: max resident warps %d < 1", s.MaxResidentWarps)
	case s.ClockMHz <= 0:
		return fmt.Errorf("cudasim: clock %f MHz", s.ClockMHz)
	case s.PCIeGBPerSec <= 0:
		return fmt.Errorf("cudasim: PCIe bandwidth %f GB/s", s.PCIeGBPerSec)
	}
	return nil
}

// GT560M returns a spec modelled on the paper's GeForce GT 560M
// (GF116: 192 CUDA cores over 4 SMs, 2 GB device memory, PCIe 2.0 ×16).
func GT560M() DeviceSpec {
	return DeviceSpec{
		Name:               "GeForce GT 560M (simulated)",
		SMs:                4,
		CoresPerSM:         48,
		WarpSize:           32,
		MaxThreadsPerBlock: 1024,
		MaxResidentWarps:   48,
		RegistersPerSM:     32768,
		SharedMemPerBlock:  48 * 1024,
		ClockMHz:           1550,
		PCIeGBPerSec:       8,
		TransferLatencySec: 10e-6,
		KernelLaunchSec:    5e-6,
		GlobalMemBytes:     2 << 30, // the paper's card has 2 GB
	}
}

// Cycle charges of the instruction classes used by the timing model. The
// values are coarse but in the published latency ballparks for Fermi/
// Kepler-class hardware; only ratios matter for the reproduced shapes.
const (
	// CyclesArith is one fused arithmetic/logic operation.
	CyclesArith = 1
	// CyclesShared is a shared-memory access (bank-conflict free).
	CyclesShared = 2
	// CyclesConstant is a constant-memory broadcast hit.
	CyclesConstant = 1
	// CyclesGlobalCoalesced is the amortized cost of a coalesced global
	// memory access.
	CyclesGlobalCoalesced = 40
	// CyclesGlobalScattered is an uncoalesced global access.
	CyclesGlobalScattered = 400
	// CyclesAtomic is an atomic RMW resolved in L2, serialized.
	CyclesAtomic = 100
)
