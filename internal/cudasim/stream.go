package cudasim

import "sync"

// Stream models a CUDA stream for *timing* purposes: kernels launched on
// distinct streams may overlap on the device, so their simulated
// durations accumulate on per-stream timelines and only the longest
// timeline advances the device clock when the streams are joined.
//
// Execution remains host-synchronous (a stream launch runs to completion
// before returning, like every launch in this simulator); what streams
// change is the accounting. The model is optimistic — perfectly
// overlapping kernels — which brackets the benefit concurrent kernels
// could offer; the ablation benchmarks use it to bound the value of
// overlapping the four pipeline kernels.
type Stream struct {
	dev *Device
	mu  sync.Mutex
	t   float64 // seconds accumulated on this stream since creation/join
}

// NewStream creates an empty stream timeline on the device.
func (d *Device) NewStream() *Stream {
	return &Stream{dev: d}
}

// SimTime returns the stream's accumulated seconds since the last join.
func (s *Stream) SimTime() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t
}

// Launch executes the kernel like Device.Launch but charges its simulated
// duration to the stream's private timeline instead of the device clock.
// The profiler records the kernel as usual.
func (s *Stream) Launch(cfg LaunchConfig, kernel Kernel) error {
	before := s.dev.SimTime()
	if err := s.dev.Launch(cfg, kernel); err != nil {
		return err
	}
	// Move the kernel's device-clock charge onto the stream.
	after := s.dev.SimTime()
	delta := after - before
	s.dev.mu.Lock()
	s.dev.simTime -= delta
	s.dev.mu.Unlock()
	s.mu.Lock()
	s.t += delta
	s.mu.Unlock()
	return nil
}

// Join advances the device clock by the longest of the given stream
// timelines (the overlapped execution time) and resets them. It is the
// accounting analogue of synchronizing all streams.
func (d *Device) Join(streams ...*Stream) {
	var longest float64
	for _, s := range streams {
		s.mu.Lock()
		if s.t > longest {
			longest = s.t
		}
		s.t = 0
		s.mu.Unlock()
	}
	d.mu.Lock()
	d.simTime += longest
	d.mu.Unlock()
}
