package cudasim

import (
	"sync/atomic"
	"unsafe"
)

// Buffer is a typed global-memory allocation on a simulated device,
// mirroring a cudaMalloc'd array. Host code moves data with CopyFromHost
// and CopyToHost (which advance the simulated clock by the PCIe transfer
// model); device code reads and writes through Load/Store (which charge
// global-memory latency) or — in hot loops — through Raw combined with an
// explicit ChargeGlobal.
type Buffer[T any] struct {
	dev  *Device
	data []T
}

// NewBuffer allocates a device buffer of n elements; it panics when the
// device is out of memory (use TryNewBuffer to handle that case).
func NewBuffer[T any](d *Device, n int) *Buffer[T] {
	b, err := TryNewBuffer[T](d, n)
	if err != nil {
		panic(err)
	}
	return b
}

// TryNewBuffer allocates a device buffer of n elements, failing when the
// device's memory capacity would be exceeded (cudaMalloc semantics).
func TryNewBuffer[T any](d *Device, n int) (*Buffer[T], error) {
	var zero T
	if err := d.reserve(int64(n) * int64(unsafe.Sizeof(zero))); err != nil {
		return nil, err
	}
	return &Buffer[T]{dev: d, data: make([]T, n)}, nil
}

// Free releases the buffer's device memory. Using the buffer after Free
// is a bug (the backing store is dropped to surface it).
func (b *Buffer[T]) Free() {
	b.dev.release(int64(b.Bytes()))
	b.data = nil
}

// NewBufferFrom allocates a device buffer and fills it from src with a
// timed host-to-device copy.
func NewBufferFrom[T any](d *Device, src []T) *Buffer[T] {
	b := NewBuffer[T](d, len(src))
	b.CopyFromHost(src)
	return b
}

// Len returns the element count.
func (b *Buffer[T]) Len() int { return len(b.data) }

// Bytes returns the allocation size in bytes.
func (b *Buffer[T]) Bytes() int {
	var zero T
	return len(b.data) * int(unsafe.Sizeof(zero))
}

// CopyFromHost copies src into the buffer (host → device), advancing the
// simulated clock by the transfer model. len(src) must not exceed Len.
func (b *Buffer[T]) CopyFromHost(src []T) {
	copy(b.data, src)
	var zero T
	b.dev.chargeTransfer(len(src)*int(unsafe.Sizeof(zero)), true)
}

// CopyToHost copies the buffer into dst (device → host) with transfer
// accounting.
func (b *Buffer[T]) CopyToHost(dst []T) {
	copy(dst, b.data)
	var zero T
	b.dev.chargeTransfer(len(dst)*int(unsafe.Sizeof(zero)), false)
}

// Load reads element i from device code, charging one coalesced global
// access.
func (b *Buffer[T]) Load(c *Ctx, i int) T {
	c.ChargeGlobal(1, true)
	return b.data[i]
}

// LoadScattered reads element i charging an uncoalesced access.
func (b *Buffer[T]) LoadScattered(c *Ctx, i int) T {
	c.ChargeGlobal(1, false)
	return b.data[i]
}

// Store writes element i from device code, charging one coalesced global
// access.
func (b *Buffer[T]) Store(c *Ctx, i int, v T) {
	c.ChargeGlobal(1, true)
	b.data[i] = v
}

// CopyRegionToHost copies len(dst) elements starting at element offset to
// the host with transfer accounting — the analogue of a cudaMemcpy from a
// sub-range (e.g. fetching only the winning thread's sequence back, as in
// Figure 9 of the paper).
func (b *Buffer[T]) CopyRegionToHost(dst []T, offset int) {
	copy(dst, b.data[offset:])
	var zero T
	b.dev.chargeTransfer(len(dst)*int(unsafe.Sizeof(zero)), false)
}

// Raw exposes the backing slice for device hot loops; callers account the
// traffic themselves via Ctx.ChargeGlobal. As on real hardware, concurrent
// unsynchronized access to the same element is a race.
func (b *Buffer[T]) Raw() []T { return b.data }

// AtomicMinInt64 performs an atomic minimum on element i of an int64
// buffer, the reduction primitive of the paper's fourth kernel (resolved
// in the L2 cache on real hardware, hence the serialized cost). It returns
// the value previously stored.
func AtomicMinInt64(c *Ctx, b *Buffer[int64], i int, v int64) int64 {
	c.memCycles += CyclesAtomic
	c.counts.atomics++
	addr := &b.data[i]
	for {
		old := atomic.LoadInt64(addr)
		if v >= old {
			return old
		}
		if atomic.CompareAndSwapInt64(addr, old, v) {
			return old
		}
	}
}

// AtomicAddInt64 atomically adds v to element i and returns the previous
// value.
func AtomicAddInt64(c *Ctx, b *Buffer[int64], i int, v int64) int64 {
	c.memCycles += CyclesAtomic
	c.counts.atomics++
	return atomic.AddInt64(&b.data[i], v) - v
}

// AtomicStoreInt64 atomically stores v into element i.
func AtomicStoreInt64(c *Ctx, b *Buffer[int64], i int, v int64) {
	c.memCycles += CyclesAtomic
	c.counts.atomics++
	atomic.StoreInt64(&b.data[i], v)
}

// AtomicLoadInt64 atomically reads element i.
func AtomicLoadInt64(c *Ctx, b *Buffer[int64], i int) int64 {
	c.memCycles += CyclesAtomic
	c.counts.atomics++
	return atomic.LoadInt64(&b.data[i])
}
